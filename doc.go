// Package repro is a from-scratch Go reproduction of "Knowing When You're
// Wrong: Building Fast and Reliable Approximate Query Processing Systems"
// (Agarwal et al., SIGMOD 2014): a BlinkDB-style sampling-based AQP engine
// whose error bars are validated at runtime by the Kleiner et al.
// diagnostic, together with the systems optimizations (Poissonized
// resampling, scan consolidation, operator pushdown, physical-plan tuning)
// that make the whole pipeline interactive.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every figure; cmd/aqpbench prints
// them as tables.
package repro
