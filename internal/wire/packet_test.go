package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestPacketRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 100, maxChunk - 1, maxChunk, maxChunk + 1, 2*maxChunk + 5} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var buf bytes.Buffer
		wseq := uint8(3)
		if err := writePacket(&buf, &wseq, payload); err != nil {
			t.Fatalf("size %d: write: %v", size, err)
		}
		rseq := uint8(3)
		got, err := readPacket(&buf, &rseq, 3*maxChunk)
		if err != nil {
			t.Fatalf("size %d: read: %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: payload corrupted", size)
		}
		if rseq != wseq {
			t.Fatalf("size %d: reader seq %d, writer seq %d", size, rseq, wseq)
		}
		if buf.Len() != 0 {
			t.Fatalf("size %d: %d trailing bytes", size, buf.Len())
		}
	}
}

func TestPacketSequenceMismatch(t *testing.T) {
	var buf bytes.Buffer
	seq := uint8(0)
	if err := writePacket(&buf, &seq, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	rseq := uint8(5)
	if _, err := readPacket(&buf, &rseq, 1024); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed on sequence mismatch, got %v", err)
	}
}

func TestPacketOversize(t *testing.T) {
	var buf bytes.Buffer
	seq := uint8(0)
	if err := writePacket(&buf, &seq, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	rseq := uint8(0)
	if _, err := readPacket(&buf, &rseq, 1024); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed on oversize payload, got %v", err)
	}
	// A header that lies about its length must hit the cap before any
	// allocation-by-header-value.
	hdr := []byte{0xff, 0xff, 0xff, 0x00}
	rseq = 0
	if _, err := readPacket(bytes.NewReader(hdr), &rseq, 1024); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed on lying header, got %v", err)
	}
}

func TestLenencRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xfa, 0xfb, 0xffff, 0x10000, 0xffffff, 0x1000000, 1 << 40} {
		b := appendLenencInt(nil, v)
		got, n, ok := lenencInt(b)
		if !ok || got != v || n != len(b) {
			t.Fatalf("lenenc %d: got %d n=%d ok=%v", v, got, n, ok)
		}
	}
	for _, s := range []string{"", "x", "hello world"} {
		b := appendLenencBytes(nil, []byte(s))
		got, n, ok := lenencBytes(b)
		if !ok || string(got) != s || n != len(b) {
			t.Fatalf("lenenc %q: got %q n=%d ok=%v", s, got, n, ok)
		}
	}
	// Truncations must fail, not over-read.
	if _, _, ok := lenencInt([]byte{0xfc, 0x01}); ok {
		t.Fatal("truncated 2-byte lenenc int accepted")
	}
	if _, _, ok := lenencBytes([]byte{0x05, 'a', 'b'}); ok {
		t.Fatal("truncated lenenc string accepted")
	}
}

func TestErrPayloadRoundTrip(t *testing.T) {
	e := parseErrPayload(errPayload(errServerShutdown, "08S01", "shutting down"))
	if e.Code != errServerShutdown || e.State != "08S01" || e.Message != "shutting down" {
		t.Fatalf("round trip: %+v", e)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	salt := newSalt()
	if len(salt) != saltLen {
		t.Fatalf("salt length %d", len(salt))
	}
	greeting := handshakeV10(42, salt, "8.0.0-aqpd")
	got, err := parseGreeting(greeting)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, salt) {
		t.Fatalf("client recovered salt %x, server sent %x", got, salt)
	}
}

func TestParseHandshakeResponse(t *testing.T) {
	// Build a well-formed HandshakeResponse41 the way the client does.
	salt := newSalt()
	auth := nativeScramble(salt, "sesame")
	caps := uint32(capProtocol41 | capSecureConnection | capPluginAuth | capConnectWithDB)
	p := []byte{byte(caps), byte(caps >> 8), byte(caps >> 16), byte(caps >> 24),
		0, 0, 0, 1, charsetUTF8}
	p = append(p, make([]byte, 23)...)
	p = append(p, "alice"...)
	p = append(p, 0)
	p = append(p, byte(len(auth)))
	p = append(p, auth...)
	p = append(p, "aqp"...)
	p = append(p, 0)
	p = append(p, authPluginName...)
	p = append(p, 0)

	r, err := parseHandshakeResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.User != "alice" || r.Database != "aqp" || r.Plugin != authPluginName {
		t.Fatalf("parsed %+v", r)
	}
	if !bytes.Equal(r.AuthResp, auth) {
		t.Fatal("auth response corrupted")
	}

	// The auth table must accept this exchange and refuse wrong secrets.
	ok := NativePassword(map[string]string{"alice": "sesame"})
	if err := ok(ConnInfo{User: "alice"}, salt, r.AuthResp); err != nil {
		t.Fatalf("valid credentials refused: %v", err)
	}
	if err := ok(ConnInfo{User: "alice"}, salt, nativeScramble(salt, "wrong")); err == nil {
		t.Fatal("bad password accepted")
	}
	if err := ok(ConnInfo{User: "mallory"}, salt, r.AuthResp); err == nil {
		t.Fatal("unknown user accepted")
	}

	// Truncations and pre-4.1 clients are malformed, never a panic.
	for i := 0; i < len(p); i += 7 {
		if _, err := parseHandshakeResponse(p[:i]); err == nil && i < 33 {
			t.Fatalf("truncated response (%d bytes) accepted", i)
		}
	}
	old := append([]byte(nil), p...)
	old[1] &^= 0x02 // clear capProtocol41
	if _, err := parseHandshakeResponse(old); !errors.Is(err, ErrMalformed) {
		t.Fatalf("pre-4.1 response: want ErrMalformed, got %v", err)
	}
}
