package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Submitter answers one SQL query under admission control. *serve.Server
// implements it; tests substitute fakes.
type Submitter interface {
	Submit(ctx context.Context, query string) (*core.Answer, error)
}

// Config tunes a Listener.
type Config struct {
	// Auth vets connections after the handshake (nil = admit everyone).
	Auth AuthFunc
	// MaxConns bounds concurrently open connections (0 = 256). Excess
	// connections are greeted with ER_CON_COUNT_ERROR and closed — the
	// connection limit layered above the admission queue's query limit.
	MaxConns int
	// MaxPacket bounds one command payload (0 = 1 MiB). Oversized
	// payloads are a metered protocol error that closes the connection.
	MaxPacket int
	// Version is the server version string in the handshake
	// (0 = "8.0.0-aqpd"). Stock clients parse it for feature gating, so
	// it should look like a MySQL version.
	Version string
	// Metrics, when non-nil, receives the aqp_conn_* gauges and counters.
	Metrics *obs.Registry
	// EventLog, when non-nil, receives kind=conn lifecycle records.
	EventLog *obs.EventLog
}

func (c Config) maxConns() int {
	if c.MaxConns <= 0 {
		return 256
	}
	return c.MaxConns
}

func (c Config) maxPacket() int {
	if c.MaxPacket <= 0 {
		return defaultMaxPacket
	}
	return c.MaxPacket
}

func (c Config) version() string {
	if c.Version == "" {
		return "8.0.0-aqpd"
	}
	return c.Version
}

// Listener accepts MySQL-wire connections and routes their queries into
// the admission layer. Construct with Serve.
type Listener struct {
	sub Submitter
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	conns    map[uint64]*conn
	draining bool

	wg     sync.WaitGroup // accept loop + one goroutine per connection
	nextID atomic.Uint64

	gOpen   *obs.Gauge
	gActive *obs.Gauge
	opened  *obs.Counter
	closed  *obs.Counter
	queries *obs.Counter
}

// conn is one wire connection's state.
type conn struct {
	id     uint64
	nc     net.Conn
	br     *bufio.Reader
	info   ConnInfo
	nq     int64
	busy   atomic.Bool
	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time
}

// Serve starts accepting connections on ln. The returned Listener owns
// ln: Shutdown (or Close on the listener) stops the accept loop.
func Serve(ln net.Listener, sub Submitter, cfg Config) *Listener {
	reg := cfg.Metrics
	l := &Listener{
		sub:   sub,
		cfg:   cfg,
		ln:    ln,
		conns: map[uint64]*conn{},
		gOpen: reg.Gauge("aqp_conn_open",
			"MySQL-wire connections currently open."),
		gActive: reg.Gauge("aqp_conn_queries_active",
			"Wire queries currently executing (admission wait included)."),
		opened: reg.Counter("aqp_conn_opened_total",
			"MySQL-wire connections accepted."),
		closed: reg.Counter("aqp_conn_closed_total",
			"MySQL-wire connections closed."),
		queries: reg.Counter("aqp_conn_queries_total",
			"COM_QUERY commands received over the wire."),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// connError meters one connection-level error by kind
// ("protocol" | "auth" | "io").
func (l *Listener) connError(kind string) {
	l.cfg.Metrics.Counter("aqp_conn_errors_total",
		"Wire connection errors by kind.", "kind", kind).Inc()
}

// connReject meters one refused connection by reason.
func (l *Listener) connReject(reason string) {
	l.cfg.Metrics.Counter("aqp_conn_rejected_total",
		"Wire connections refused before the command phase, by reason.",
		"reason", reason).Inc()
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			l.mu.Lock()
			draining := l.draining
			l.mu.Unlock()
			if draining {
				return
			}
			l.connError("io")
			continue
		}
		l.mu.Lock()
		if l.draining {
			l.mu.Unlock()
			l.refuse(nc, errServerShutdown, "08S01", "Server shutdown in progress", "shutting_down")
			continue
		}
		if len(l.conns) >= l.cfg.maxConns() {
			l.mu.Unlock()
			l.refuse(nc, errTooManyConnections, "08004", "Too many connections", "too_many_connections")
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		c := &conn{
			id:     l.nextID.Add(1),
			nc:     nc,
			br:     bufio.NewReader(nc),
			ctx:    ctx,
			cancel: cancel,
			start:  time.Now(),
		}
		c.info = ConnInfo{ID: c.id, Remote: nc.RemoteAddr().String()}
		l.conns[c.id] = c
		open := len(l.conns)
		l.mu.Unlock()
		l.gOpen.Set(int64(open))
		l.opened.Inc()
		l.wg.Add(1)
		go l.handleConn(c)
	}
}

// refuse greets a connection with an ERR packet and closes it, without
// ever granting it a connection slot.
func (l *Listener) refuse(nc net.Conn, code uint16, state, msg, reason string) {
	l.connReject(reason)
	l.cfg.EventLog.EmitConn(obs.ConnEvent{
		Transport: "mysql", Remote: nc.RemoteAddr().String(),
		Event: reason, Err: msg,
	})
	seq := uint8(0)
	nc.SetWriteDeadline(time.Now().Add(time.Second))    //nolint:errcheck
	writePacket(nc, &seq, errPayload(code, state, msg)) //nolint:errcheck
	nc.Close()                                          //nolint:errcheck
}

// handleConn drives one connection: handshake, auth, command loop.
func (l *Listener) handleConn(c *conn) {
	defer l.wg.Done()
	defer func() {
		c.cancel()
		c.nc.Close() //nolint:errcheck
		l.mu.Lock()
		delete(l.conns, c.id)
		open := len(l.conns)
		l.mu.Unlock()
		l.gOpen.Set(int64(open))
		l.closed.Inc()
		l.cfg.EventLog.EmitConn(obs.ConnEvent{
			Transport: "mysql", ConnID: c.id, Remote: c.info.Remote,
			User: c.info.User, Event: "close", Queries: c.nq,
			DurMs: float64(time.Since(c.start)) / 1e6,
		})
	}()
	if !l.handshake(c) {
		return
	}
	l.cfg.EventLog.EmitConn(obs.ConnEvent{
		Transport: "mysql", ConnID: c.id, Remote: c.info.Remote,
		User: c.info.User, Event: "open",
	})
	l.commandLoop(c)
}

// handshake runs the greeting/response/auth exchange. It reports whether
// the connection may proceed to the command phase.
func (l *Listener) handshake(c *conn) bool {
	salt := newSalt()
	seq := uint8(0)
	if err := writePacket(c.nc, &seq, handshakeV10(uint32(c.id), salt, l.cfg.version())); err != nil {
		l.connError("io")
		return false
	}
	payload, err := readPacket(c.br, &seq, l.cfg.maxPacket())
	if err != nil {
		l.protocolError(c, &seq, err)
		return false
	}
	resp, err := parseHandshakeResponse(payload)
	if err != nil {
		l.connError("protocol")
		l.cfg.EventLog.EmitConn(obs.ConnEvent{
			Transport: "mysql", ConnID: c.id, Remote: c.info.Remote,
			Event: "protocol_error", Err: err.Error(),
		})
		writePacket(c.nc, &seq, errPayload(errHandshake, "08S01", "Bad handshake")) //nolint:errcheck
		return false
	}
	c.info.User = resp.User
	c.info.Database = resp.Database
	if l.cfg.Auth != nil {
		if err := l.cfg.Auth(c.info, salt, resp.AuthResp); err != nil {
			l.connError("auth")
			l.cfg.EventLog.EmitConn(obs.ConnEvent{
				Transport: "mysql", ConnID: c.id, Remote: c.info.Remote,
				User: resp.User, Event: "auth_error", Err: err.Error(),
			})
			writePacket(c.nc, &seq, errPayload(errAccessDenied, "28000", //nolint:errcheck
				fmt.Sprintf("Access denied for user '%s'", resp.User)))
			return false
		}
	}
	return writePacket(c.nc, &seq, okPayload()) == nil
}

// protocolError handles a failed command read: a clean disconnect closes
// silently, a drain-induced wakeup answers ER_SERVER_SHUTDOWN, anything
// else is metered and (for decodable violations) answered with an ERR
// packet before the connection closes. It never panics on malformed
// input — the connection just dies, observably.
func (l *Listener) protocolError(c *conn, seq *uint8, err error) {
	if l.drainingNow() {
		// Woken by Drain's read deadline (or racing with it): tell the
		// client the server is going away rather than resetting.
		s := uint8(1)
		writePacket(c.nc, &s, errPayload(errServerShutdown, "08S01", "Server shutdown in progress")) //nolint:errcheck
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return // client went away between (or inside) commands
	}
	if errors.Is(err, ErrMalformed) {
		l.connError("protocol")
		l.cfg.EventLog.EmitConn(obs.ConnEvent{
			Transport: "mysql", ConnID: c.id, Remote: c.info.Remote,
			User: c.info.User, Event: "protocol_error", Err: err.Error(),
		})
		code := uint16(errMalformedPacket)
		if strings.Contains(err.Error(), "exceeds") {
			// Oversized payloads get the dedicated code clients know.
			code = errNetPacketTooLarge
		}
		s := uint8(1)
		writePacket(c.nc, &s, errPayload(code, "HY000", err.Error())) //nolint:errcheck
		return
	}
	l.connError("io")
}

// commandLoop serves commands until the client quits, the connection
// dies, or the listener drains.
func (l *Listener) commandLoop(c *conn) {
	for {
		if l.drainingNow() {
			// Sequence id 1: the client reads this as the response to its
			// in-flight (or next) command, so the drain surfaces as a
			// decodable ERR rather than a reset mid-exchange.
			s := uint8(1)
			writePacket(c.nc, &s, errPayload(errServerShutdown, "08S01", "Server shutdown in progress")) //nolint:errcheck
			return
		}
		seq := uint8(0)
		payload, err := readPacket(c.br, &seq, l.cfg.maxPacket())
		if err != nil {
			l.protocolError(c, &seq, err)
			return
		}
		if len(payload) == 0 {
			l.protocolError(c, &seq, fmt.Errorf("%w: empty command", ErrMalformed))
			return
		}
		c.busy.Store(true)
		ok := l.dispatch(c, &seq, payload)
		c.busy.Store(false)
		if !ok {
			return
		}
	}
}

// dispatch executes one command payload; false ends the connection.
func (l *Listener) dispatch(c *conn, seq *uint8, payload []byte) bool {
	switch payload[0] {
	case 0x01: // COM_QUIT
		return false
	case 0x0e: // COM_PING
		c.nq++
		return writePacket(c.nc, seq, okPayload()) == nil
	case 0x02: // COM_INIT_DB
		c.info.Database = string(payload[1:])
		return writePacket(c.nc, seq, okPayload()) == nil
	case 0x03: // COM_QUERY
		return l.handleQuery(c, seq, string(payload[1:]))
	case 0x16, 0x17, 0x19: // COM_STMT_PREPARE / EXECUTE / CLOSE
		return writePacket(c.nc, seq, errPayload(errUnsupportedPS, "HY000",
			"prepared statements are not supported; use the text protocol")) == nil
	default:
		return writePacket(c.nc, seq, errPayload(errUnknownCom, "08S01",
			fmt.Sprintf("Unknown command 0x%02x", payload[0]))) == nil
	}
}

// parseTraceComment extracts trace identity from an optional
// /*traceparent=<W3C value>*/ comment prefix — the wire protocol has no
// headers, so trace propagation rides in a comment the parser would
// otherwise ignore. The comment is stripped before submission so the
// trace ring, event log, and history record the clean SQL. A missing or
// malformed comment mints a root context, mirroring the HTTP front end.
func parseTraceComment(sql string) (obs.TraceContext, string) {
	const prefix = "/*traceparent="
	trimmed := strings.TrimLeft(sql, " \t\r\n")
	if strings.HasPrefix(trimmed, prefix) {
		if end := strings.Index(trimmed, "*/"); end >= len(prefix) {
			value := trimmed[len(prefix):end]
			rest := strings.TrimLeft(trimmed[end+2:], " \t\r\n")
			if tc, ok := obs.ParseTraceparent(value); ok {
				return tc, rest
			}
			return obs.NewTraceContext(), rest
		}
	}
	return obs.NewTraceContext(), sql
}

// handleQuery answers one COM_QUERY through the admission layer. Errors
// map to the MySQL codes clients expect: queue overflow →
// ER_OUT_OF_RESOURCES, drain → ER_SERVER_SHUTDOWN (connection then
// closes), deadline → ER_QUERY_TIMEOUT, cancellation →
// ER_QUERY_INTERRUPTED, engine refusals → ER_PARSE_ERROR.
// Successful resultsets carry a trailing trace_id column (the same ID
// the HTTP front end echoes in its traceparent header).
func (l *Listener) handleQuery(c *conn, seq *uint8, sql string) bool {
	c.nq++
	l.queries.Inc()
	tc, sql := parseTraceComment(sql)
	ctx := obs.ContextWithTrace(c.ctx, tc)
	l.gActive.Inc()
	ans, err := l.sub.Submit(ctx, sql)
	l.gActive.Dec()
	if err != nil {
		code, _ := serve.Classify(err)
		switch code {
		case "queue_full":
			return writePacket(c.nc, seq, errPayload(errOutOfResources, "HY000",
				"admission queue full; retry")) == nil
		case "shutting_down":
			writePacket(c.nc, seq, errPayload(errServerShutdown, "08S01", //nolint:errcheck
				"Server shutdown in progress"))
			return false
		case "deadline":
			return writePacket(c.nc, seq, errPayload(errQueryTimeout, "HY000",
				err.Error())) == nil
		case "cancelled":
			return writePacket(c.nc, seq, errPayload(errQueryInterrupted, "70100",
				err.Error())) == nil
		default:
			return writePacket(c.nc, seq, errPayload(errParse, "42000",
				err.Error())) == nil
		}
	}
	if err := writeResultset(c.nc, seq, ans, tc.TraceIDString()); err != nil {
		l.connError("io")
		return false
	}
	return true
}

func (l *Listener) drainingNow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.draining
}

// Drain stops accepting connections and begins winding down existing
// ones: idle connections are woken (via a read deadline) and told the
// server is shutting down with a proper ERR packet; busy connections
// finish their current command — whose admission-layer rejection, if the
// serve layer is also draining, already surfaced as ER_SERVER_SHUTDOWN —
// and are then told the same. Drain is idempotent and returns
// immediately; use Shutdown to wait.
func (l *Listener) Drain() {
	l.mu.Lock()
	if l.draining {
		l.mu.Unlock()
		return
	}
	l.draining = true
	conns := make([]*conn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.ln.Close() //nolint:errcheck
	for _, c := range conns {
		if !c.busy.Load() {
			// Wake the blocked command read; the handler answers with
			// ER_SERVER_SHUTDOWN and closes.
			c.nc.SetReadDeadline(time.Now()) //nolint:errcheck
		}
	}
}

// Shutdown drains and waits for every connection goroutine to exit. If
// ctx expires first, remaining connections are force-closed (cancelling
// their in-flight queries) and the wait resumes; the error then reports
// how many were cut.
func (l *Listener) Shutdown(ctx context.Context) error {
	l.Drain()
	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	l.mu.Lock()
	cut := len(l.conns)
	for _, c := range l.conns {
		c.cancel()
		c.nc.Close() //nolint:errcheck
	}
	l.mu.Unlock()
	<-done
	if cut > 0 {
		return fmt.Errorf("wire: drain deadline: force-closed %d connections: %w", cut, ctx.Err())
	}
	return ctx.Err()
}

// Open returns the number of currently open connections.
func (l *Listener) Open() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}
