package wire_test

// Cross-transport trace propagation: the same W3C traceparent presented
// over HTTP (header) and over the MySQL wire protocol (leading
// /*traceparent=...*/ comment) must land the caller's trace ID in every
// observer — the span ring, the event log, and the durable history
// record — and be echoed back to the caller on both transports.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/serve"
	"repro/internal/wire"
)

func TestTracePropagationAcrossTransports(t *testing.T) {
	const (
		httpTID = "0af7651916cd43dd8448eb211c80319c"
		httpTP  = "00-" + httpTID + "-b7ad6b7169203331-01"
		wireTID = "4bf92f3577b34da6a3ce929d0e0e4736"
		wireTP  = "00-" + wireTID + "-00f067aa0ba902b7-01"
	)

	tracer := obs.NewTracer(obs.Config{})
	var elogBuf bytes.Buffer
	elog := obs.NewEventLog(&elogBuf, obs.Config{})
	dir := t.TempDir()
	hist, err := history.Open(dir, history.Options{SampleInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hist.Close() //nolint:errcheck

	eng := testEngine(t, core.Config{Obs: tracer, EventLog: elog, History: hist})
	st := startStack(t, eng, serve.Config{Metrics: tracer.Registry()}, wire.Config{})

	const sql = "SELECT AVG(Price) FROM Orders"

	// HTTP: traceparent request header in, trace ID echoed in both the
	// response header and the trace_id JSON field.
	body, _ := json.Marshal(serve.QueryRequest{SQL: sql})
	req, err := http.NewRequest("POST", st.hs.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", httpTP)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status %d", resp.StatusCode)
	}
	echo := resp.Header.Get("traceparent")
	if !strings.Contains(echo, httpTID) {
		t.Errorf("response traceparent %q does not carry trace ID %s", echo, httpTID)
	}
	var qr serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != httpTID {
		t.Errorf("response trace_id = %q, want %s", qr.TraceID, httpTID)
	}

	// Wire: traceparent comment prefix in, trace ID echoed as the
	// trailing trace_id resultset column.
	cli, err := wire.Dial(st.addr, wire.ClientOptions{User: "root", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	rs, err := cli.Query("/*traceparent=" + wireTP + "*/ " + sql)
	if err != nil {
		t.Fatal(err)
	}
	tidCol := -1
	for i, c := range rs.Columns {
		if c == "trace_id" {
			tidCol = i
		}
	}
	if tidCol < 0 {
		t.Fatalf("resultset has no trace_id column: %v", rs.Columns)
	}
	if len(rs.Rows) == 0 || rs.Rows[0][tidCol] != wireTID {
		t.Fatalf("wire trace_id cell = %v, want %s", rs.Rows, wireTID)
	}

	// Span ring: both queries appear with the caller-supplied trace IDs.
	ringIDs := map[string]bool{}
	for _, snap := range tracer.Recent() {
		ringIDs[snap.TraceID] = true
	}
	for _, want := range []string{httpTID, wireTID} {
		if !ringIDs[want] {
			t.Errorf("span ring is missing trace %s (have %v)", want, ringIDs)
		}
	}

	// Event log: one JSON record per query, each carrying its trace_id.
	elogText := elogBuf.String()
	for _, want := range []string{httpTID, wireTID} {
		if !strings.Contains(elogText, `"trace_id":"`+want+`"`) {
			t.Errorf("event log is missing trace_id %s:\n%s", want, elogText)
		}
	}

	// History: the durable query records join back by the same trace IDs.
	if err := hist.Sync(); err != nil {
		t.Fatal(err)
	}
	histIDs := map[string]bool{}
	if _, err := history.ReplayDir(dir, func(r *history.Record) {
		if r.Query != nil {
			histIDs[r.Query.TraceID] = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{httpTID, wireTID} {
		if !histIDs[want] {
			t.Errorf("history is missing trace %s (have %v)", want, histIDs)
		}
	}
}

// TestTracePropagationMintsRoot: with no caller trace context, both
// transports mint a root trace and still echo it back.
func TestTracePropagationMintsRoot(t *testing.T) {
	tracer := obs.NewTracer(obs.Config{})
	eng := testEngine(t, core.Config{Obs: tracer})
	st := startStack(t, eng, serve.Config{Metrics: tracer.Registry()}, wire.Config{})

	ans, resp := httpQuery(t, st.hs.URL, "SELECT AVG(Price) FROM Orders")
	if len(ans.TraceID) != 32 {
		t.Errorf("minted trace_id = %q, want 32 hex chars", ans.TraceID)
	}
	if !strings.Contains(resp.Header.Get("traceparent"), ans.TraceID) {
		t.Errorf("header %q does not carry minted trace %s",
			resp.Header.Get("traceparent"), ans.TraceID)
	}

	cli, err := wire.Dial(st.addr, wire.ClientOptions{User: "root", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close() //nolint:errcheck
	rs, err := cli.Query("SELECT AVG(Price) FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	last := len(rs.Columns) - 1
	if last < 0 || rs.Columns[last] != "trace_id" {
		t.Fatalf("wire resultset missing trace_id column: %v", rs.Columns)
	}
	wireTID := rs.Rows[0][last]
	if len(wireTID) != 32 || wireTID == ans.TraceID {
		t.Errorf("wire minted trace_id = %q (http %q), want a fresh 32-hex id",
			wireTID, ans.TraceID)
	}
}
