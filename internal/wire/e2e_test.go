package wire_test

// End-to-end tests that hold the network front end to the engine's core
// guarantee: the transport must not perturb the answer. The same SQL
// through core.Engine.Query, the HTTP/JSON API, and a real MySQL wire
// client (our own, speaking the text protocol over TCP) must produce
// bit-identical estimates, CI bounds and verdicts — and the connection
// machinery must survive churn, abrupt disconnects and drain without
// leaking goroutines or miscounting gauges.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/wire"
)

// testEngine registers a sampled Orders table on a fresh engine.
func testEngine(t *testing.T, cfg core.Config) *core.Engine {
	t.Helper()
	const n = 4000
	src := rng.New(321)
	price := make(table.Float64Col, n)
	region := make(table.StringCol, n)
	names := []string{"east", "west", "north"}
	for i := 0; i < n; i++ {
		price[i] = 10 + 5*src.NormFloat64()
		region[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Price", Type: table.Float64},
		{Name: "Region", Type: table.String},
	}, price, region)
	e := core.New(cfg)
	if err := e.RegisterTable("Orders", tbl); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildSamples("Orders", 1000); err != nil {
		t.Fatal(err)
	}
	return e
}

// stack is a full in-process front end: engine, admission layer, both
// listeners.
type stack struct {
	eng  *core.Engine
	srv  *serve.Server
	wl   *wire.Listener
	hs   *httptest.Server
	reg  *obs.Registry
	addr string // wire listener address
}

func startStack(t *testing.T, eng *core.Engine, scfg serve.Config, wcfg wire.Config) *stack {
	t.Helper()
	reg := scfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		scfg.Metrics = reg
	}
	if wcfg.Metrics == nil {
		wcfg.Metrics = reg
	}
	srv := serve.New(eng, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := wire.Serve(ln, srv, wcfg)
	hs := httptest.NewServer(serve.NewHTTPHandler(srv, serve.HTTPOptions{}))
	st := &stack{eng: eng, srv: srv, wl: wl, hs: hs, reg: reg, addr: ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		wl.Drain()
		srv.Shutdown(ctx) //nolint:errcheck
		hs.Close()
		wl.Shutdown(ctx) //nolint:errcheck
		eng.Close()
	})
	return st
}

// httpQuery posts one query to the JSON API and decodes the response.
func httpQuery(t *testing.T, url, sql string) (*serve.QueryResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(serve.QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("status %d with undecodable body: %v", resp.StatusCode, err)
		}
		t.Fatalf("status %d: %s (%s)", resp.StatusCode, e.Error, e.Code)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp
}

// sameBits asserts two floats are bit-identical (NaN == NaN).
func sameBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: got %x (%v) want %x (%v)", what,
			math.Float64bits(got), got, math.Float64bits(want), want)
	}
}

// parseCell parses a wire text-protocol float cell.
func parseCell(t *testing.T, what, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("%s: bad float cell %q: %v", what, cell, err)
	}
	return v
}

// TestTransportEquality is the headline satellite: the same query via
// core.Engine.Query, POST /query, and a MySQL wire client returns
// bit-identical estimates, interval endpoints, relative errors, and
// identical technique/verdict strings.
func TestTransportEquality(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	st := startStack(t, eng, serve.Config{MaxInFlight: 4}, wire.Config{})

	cli, err := wire.Dial(st.addr, wire.ClientOptions{User: "root", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	queries := []string{
		"SELECT AVG(Price) FROM Orders",
		"SELECT SUM(Price), COUNT(Price) FROM Orders WHERE Region = 'east'",
		"SELECT AVG(Price) FROM Orders GROUP BY Region",
	}
	for _, q := range queries {
		want, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: direct: %v", q, err)
		}

		// HTTP path.
		hr, _ := httpQuery(t, st.hs.URL, q)
		if len(hr.Groups) != len(want.Groups) {
			t.Fatalf("%s: http groups %d want %d", q, len(hr.Groups), len(want.Groups))
		}
		for i, g := range want.Groups {
			hg := hr.Groups[i]
			if hg.Key != g.Key {
				t.Errorf("%s: http group %d key %q want %q", q, i, hg.Key, g.Key)
			}
			for j, a := range g.Aggs {
				ha := hg.Aggs[j]
				pre := fmt.Sprintf("%s: http group %d agg %s", q, i, a.Name)
				sameBits(t, pre+" estimate", float64(ha.Estimate), a.Estimate)
				sameBits(t, pre+" lo", float64(ha.Lo), a.ErrorBar.Lo())
				sameBits(t, pre+" hi", float64(ha.Hi), a.ErrorBar.Hi())
				sameBits(t, pre+" rel_err", float64(ha.RelErr), a.RelErr)
				if ha.Technique != a.Technique {
					t.Errorf("%s technique %q want %q", pre, ha.Technique, a.Technique)
				}
				if ha.Verdict != serve.Verdict(a) {
					t.Errorf("%s verdict %q want %q", pre, ha.Verdict, serve.Verdict(a))
				}
			}
		}

		// Wire path.
		rs, err := cli.Query(q)
		if err != nil {
			t.Fatalf("%s: wire: %v", q, err)
		}
		if len(rs.Rows) != len(want.Groups) {
			t.Fatalf("%s: wire rows %d want %d", q, len(rs.Rows), len(want.Groups))
		}
		grouped := false
		for _, g := range want.Groups {
			if g.Key != "" {
				grouped = true
			}
		}
		for i, g := range want.Groups {
			row := rs.Rows[i]
			off := 0
			if grouped {
				if row[0] != g.Key {
					t.Errorf("%s: wire row %d group %q want %q", q, i, row[0], g.Key)
				}
				off = 1
			}
			for j, a := range g.Aggs {
				base := off + 7*j
				pre := fmt.Sprintf("%s: wire row %d agg %s", q, i, a.Name)
				if col := rs.Columns[base]; col != a.Name {
					t.Errorf("%s: column %q want %q", pre, col, a.Name)
				}
				sameBits(t, pre+" estimate", parseCell(t, pre, row[base]), a.Estimate)
				sameBits(t, pre+" lo", parseCell(t, pre, row[base+1]), a.ErrorBar.Lo())
				sameBits(t, pre+" hi", parseCell(t, pre, row[base+2]), a.ErrorBar.Hi())
				sameBits(t, pre+" rel_err", parseCell(t, pre, row[base+3]), a.RelErr)
				if row[base+4] != a.Technique {
					t.Errorf("%s technique %q want %q", pre, row[base+4], a.Technique)
				}
				if row[base+5] != serve.Verdict(a) {
					t.Errorf("%s verdict %q want %q", pre, row[base+5], serve.Verdict(a))
				}
				exact := "0"
				if a.Exact {
					exact = "1"
				}
				if row[base+6] != exact {
					t.Errorf("%s exact %q want %q", pre, row[base+6], exact)
				}
			}
		}
	}
}

// TestWirePing exercises COM_PING and COM_INIT_DB round trips.
func TestWirePing(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	st := startStack(t, eng, serve.Config{}, wire.Config{})
	cli, err := wire.Dial(st.addr, wire.ClientOptions{User: "anyone", Database: "aqp", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestWireBadQuery asserts a parse error surfaces as ERR 1064 and leaves
// the connection usable.
func TestWireBadQuery(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	st := startStack(t, eng, serve.Config{}, wire.Config{})
	cli, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Query("SELECT FROM WHERE")
	var se *wire.ServerError
	if !errors.As(err, &se) || se.Code != 1064 {
		t.Fatalf("want ERR 1064, got %v", err)
	}
	if _, err := cli.Query("SELECT AVG(Price) FROM Orders"); err != nil {
		t.Fatalf("connection unusable after parse error: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestConnChurn hammers the front end with connect/query/disconnect
// cycles — some clients severing TCP mid-exchange, some racing tiny
// per-query deadlines — and asserts no goroutine leaks and all
// connection gauges back at zero after drain. Run under -race this is
// the concurrency-safety pin for the whole wire layer.
func TestConnChurn(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	reg := obs.NewRegistry()
	st := startStack(t, eng,
		serve.Config{MaxInFlight: 4, MaxQueue: 64, Metrics: reg},
		wire.Config{MaxConns: 64})

	// Warm every path once so lazily-created goroutines (engine workers,
	// HTTP keep-alive readers) are part of the baseline, then flush idle
	// client connections and measure.
	warm, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Query("SELECT AVG(Price) FROM Orders"); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	httpQuery(t, st.hs.URL, "SELECT AVG(Price) FROM Orders")
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	runtime.GC()
	before := runtime.NumGoroutine()

	const (
		workers = 24
		iters   = 8
	)
	var wg sync.WaitGroup
	var queries, aborted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cli, err := wire.Dial(st.addr, wire.ClientOptions{
					User: "churn", Timeout: 10 * time.Second})
				if err != nil {
					t.Errorf("worker %d dial: %v", w, err)
					return
				}
				switch (w + i) % 3 {
				case 0: // clean query + quit
					if _, err := cli.Query("SELECT AVG(Price) FROM Orders"); err != nil {
						t.Errorf("worker %d query: %v", w, err)
					} else {
						queries.Add(1)
					}
					cli.Close()
				case 1: // sever TCP with a query possibly in flight
					go cli.Query("SELECT SUM(Price) FROM Orders GROUP BY Region") //nolint:errcheck
					cli.CloseAbruptly()
					aborted.Add(1)
				case 2: // HTTP alongside, then wire ping, then quit
					if resp, err := http.Get(st.hs.URL + "/healthz"); err != nil {
						t.Errorf("worker %d healthz: %v", w, err)
					} else {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
					}
					if err := cli.Ping(); err != nil {
						t.Errorf("worker %d ping: %v", w, err)
					}
					cli.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	if queries.Load() == 0 {
		t.Fatal("no queries completed")
	}

	// Drain: all connections must unwind, gauges must return to zero.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st.wl.Drain()
	if err := st.wl.Shutdown(ctx); err != nil {
		t.Fatalf("wire shutdown: %v", err)
	}
	if n := st.wl.Open(); n != 0 {
		t.Fatalf("connections still open after shutdown: %d", n)
	}
	waitFor(t, "aqp_conn_open gauge zero", func() bool {
		return reg.Gauge("aqp_conn_open", "").Value() == 0
	})
	waitFor(t, "aqp_conn_queries_active gauge zero", func() bool {
		return reg.Gauge("aqp_conn_queries_active", "").Value() == 0
	})
	waitFor(t, "aqp_http_inflight gauge zero", func() bool {
		return reg.Gauge("aqp_http_inflight", "").Value() == 0
	})
	unwound := func() bool {
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}
	deadline := time.Now().Add(10 * time.Second)
	for !unwound() {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not unwind: %d > baseline %d\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("churn: %d clean queries, %d aborted connections", queries.Load(), aborted.Load())
}

// blockingEngine wires a gate UDF into a test engine: every SLOW()
// invocation blocks until release is closed, so a test can hold the
// single execution slot deterministically.
func blockingEngine(t *testing.T) (eng *core.Engine, started <-chan struct{}, release chan<- struct{}) {
	t.Helper()
	eng = testEngine(t, core.Config{Seed: 7, Workers: 1})
	s := make(chan struct{})
	r := make(chan struct{})
	var once sync.Once
	eng.RegisterUDF("SLOW", func(values, weights []float64) float64 {
		once.Do(func() { close(s) })
		<-r
		return 0
	})
	return eng, s, r
}

// TestDrainRejectsQueuedWire is the drain-gap regression at the wire
// layer: a query still queued when shutdown begins must come back as a
// decodable ERR 1053 (server shutdown), not a connection reset, and must
// leave a durable RejectRecord for availability SLOs.
func TestDrainRejectsQueuedWire(t *testing.T) {
	eng, started, release := blockingEngine(t)
	reg := obs.NewRegistry()
	hist, err := history.Open(t.TempDir(), history.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer hist.Close()
	st := startStack(t, eng,
		serve.Config{MaxInFlight: 1, MaxQueue: 4, Metrics: reg, History: hist},
		wire.Config{})

	slow, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() {
		_, err := slow.Query("SELECT SLOW(Price) FROM Orders")
		slowDone <- err
	}()
	<-started // the slot is held

	queued, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	queuedDone := make(chan error, 1)
	go func() {
		_, err := queued.Query("SELECT AVG(Price) FROM Orders")
		queuedDone <- err
	}()
	waitFor(t, "second query queued", func() bool { return st.srv.Queued() == 1 })

	// Shutdown while one query runs and one waits. The queued one must
	// get a proper wire error, durably recorded as a reject.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- st.srv.Shutdown(ctx)
	}()

	var se *wire.ServerError
	select {
	case err := <-queuedDone:
		if !errors.As(err, &se) || se.Code != 1053 {
			t.Fatalf("queued query: want ERR 1053, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued query did not fail during drain")
	}

	close(release) // let the in-flight query finish
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight query should complete during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if n := hist.Stats().Records["reject"]; n < 1 {
		t.Fatalf("want >= 1 durable RejectRecord, got %d", n)
	}
	found := false
	for _, c := range reg.CounterSamples() {
		if c.Name == "aqp_serve_rejected_total" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("aqp_serve_rejected_total not incremented")
	}
}

// TestDrainRejectsQueuedHTTP is the same regression at the HTTP layer:
// 503 with a retryable shutting_down code, not a dropped connection.
func TestDrainRejectsQueuedHTTP(t *testing.T) {
	eng, started, release := blockingEngine(t)
	reg := obs.NewRegistry()
	st := startStack(t, eng,
		serve.Config{MaxInFlight: 1, MaxQueue: 4, Metrics: reg},
		wire.Config{})

	slowDone := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(serve.QueryRequest{SQL: "SELECT SLOW(Price) FROM Orders"})
		resp, err := http.Post(st.hs.URL+"/query", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		slowDone <- err
	}()
	<-started

	queuedDone := make(chan *http.Response, 1)
	go func() {
		body, _ := json.Marshal(serve.QueryRequest{SQL: "SELECT AVG(Price) FROM Orders"})
		resp, err := http.Post(st.hs.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("queued POST: %v", err)
			queuedDone <- nil
			return
		}
		queuedDone <- resp
	}()
	waitFor(t, "second query queued", func() bool { return st.srv.Queued() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- st.srv.Shutdown(ctx)
	}()

	select {
	case resp := <-queuedDone:
		if resp == nil {
			t.Fatal("no response")
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queued query: status %d want 503", resp.StatusCode)
		}
		var e serve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("503 body not JSON: %v", err)
		}
		if e.Code != "shutting_down" || !e.Retryable {
			t.Fatalf("want retryable shutting_down, got %+v", e)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 missing Retry-After")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued query did not fail during drain")
	}

	// healthz flips to draining.
	hresp, err := http.Get(st.hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d want 503", hresp.StatusCode)
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight POST: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
