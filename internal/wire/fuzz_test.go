package wire

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeSubmitter answers every query with a fixed tiny answer, so fuzzing
// exercises the protocol layer without an engine.
type fakeSubmitter struct{}

func (fakeSubmitter) Submit(ctx context.Context, query string) (*core.Answer, error) {
	return &core.Answer{
		SQL: query,
		Groups: []core.GroupAnswer{{
			Aggs: []core.AggAnswer{{Name: "avg", Estimate: 1.5, Technique: "closed-form"}},
		}},
	}, nil
}

var fuzzServer struct {
	once sync.Once
	addr string
}

// fuzzServerAddr lazily boots one shared wire listener for the whole fuzz
// process.
func fuzzServerAddr(f *testing.F) string {
	fuzzServer.once.Do(func() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatal(err)
		}
		Serve(ln, fakeSubmitter{}, Config{MaxPacket: 64 << 10})
		fuzzServer.addr = ln.Addr().String()
	})
	return fuzzServer.addr
}

// validHandshakeResponse frames a well-formed HandshakeResponse41 (empty
// auth, no database) at sequence id 1, as a real client would send it.
func validHandshakeResponse() []byte {
	caps := uint32(capProtocol41 | capSecureConnection | capPluginAuth)
	p := []byte{byte(caps), byte(caps >> 8), byte(caps >> 16), byte(caps >> 24),
		0, 0, 0, 1, charsetUTF8}
	p = append(p, make([]byte, 23)...)
	p = append(p, "fuzz"...)
	p = append(p, 0, 0) // user NUL, zero-length auth
	p = append(p, authPluginName...)
	p = append(p, 0)
	var buf bytes.Buffer
	seq := uint8(1)
	writePacket(&buf, &seq, p) //nolint:errcheck
	return buf.Bytes()
}

// frame frames one payload at the given starting sequence id.
func frame(seq uint8, payload []byte) []byte {
	var buf bytes.Buffer
	writePacket(&buf, &seq, payload) //nolint:errcheck
	return buf.Bytes()
}

// FuzzWirePacket throws adversarial bytes at every decoding layer: the
// frame reader, the handshake-response parser, the lenenc primitives, the
// client-side greeting/ERR parsers, and a live server connection fed the
// bytes as its post-greeting client stream. The invariant under fuzz: no
// panic, no unbounded allocation; a live connection either proceeds or
// closes.
func FuzzWirePacket(f *testing.F) {
	// Seed corpus: one valid exchange and the classic protocol attacks.
	f.Add(validHandshakeResponse())
	f.Add(append(validHandshakeResponse(), frame(0, append([]byte{0x03}, "SELECT AVG(Price) FROM Orders"...))...))
	f.Add(append(validHandshakeResponse(), frame(0, []byte{0x0e})...))                         // ping
	f.Add(append(validHandshakeResponse(), frame(0, []byte{0x01})...))                         // quit
	f.Add(frame(0, []byte("wrong sequence")))                                                  // seq 0, server expects 1
	f.Add([]byte{0xff, 0xff, 0xff, 0x01})                                                      // 16MB length header, no body
	f.Add([]byte{0x05, 0x00, 0x00, 0x01, 0xfb})                                                // NULL marker payload
	f.Add([]byte{0x02, 0x00, 0x00})                                                            // truncated header
	f.Add(frame(1, []byte{0xfe}))                                                              // lone lenenc-8 marker
	f.Add(frame(1, bytes.Repeat([]byte{0xff}, 64)))                                            // ERR-marker soup
	f.Add(frame(1, append([]byte{0x00, 0x02, 0x00, 0x00}, bytes.Repeat([]byte{0xcc}, 40)...))) // 4.1 caps, garbage body

	f.Fuzz(func(t *testing.T, data []byte) {
		// Pure decoders: must never panic, whatever the bytes.
		seq := uint8(0)
		readPacket(bytes.NewReader(data), &seq, 64<<10) //nolint:errcheck
		parseHandshakeResponse(data)                    //nolint:errcheck
		parseErrPayload(data)
		parseGreeting(data) //nolint:errcheck
		lenencInt(data)
		lenencBytes(data)
		nullTermBytes(data)
		if _, err := columnName(data); err == nil && len(data) < 5 {
			t.Fatalf("column name decoded from %d bytes", len(data))
		}

		// Live connection: data is the raw client stream after the
		// greeting. The server must answer, refuse, or close — never
		// panic (a panic crashes this process and fails the fuzz run).
		nc, err := net.Dial("tcp", fuzzServerAddr(f))
		if err != nil {
			t.Skip("dial:", err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(500 * time.Millisecond)) //nolint:errcheck
		greet := make([]byte, 4)
		if _, err := io.ReadFull(nc, greet); err != nil {
			t.Skip("greeting:", err)
		}
		n := int(greet[0]) | int(greet[1])<<8 | int(greet[2])<<16
		if _, err := io.CopyN(io.Discard, nc, int64(n)); err != nil {
			t.Skip("greeting body:", err)
		}
		nc.Write(data)                 //nolint:errcheck
		nc.(*net.TCPConn).CloseWrite() //nolint:errcheck — server sees EOF after data
		io.Copy(io.Discard, nc)        //nolint:errcheck
	})
}
