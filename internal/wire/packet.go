// Package wire speaks a minimal server-side subset of the MySQL
// client/server protocol, so any tooling with a MySQL driver can issue
// approximate queries and read estimates with error bars out of ordinary
// resultsets (the VerdictDB argument: a standard interface is what makes
// an AQP engine adoptable). The subset: HandshakeV10 +
// HandshakeResponse41 with a mysql_native_password auth hook, COM_QUERY /
// COM_PING / COM_INIT_DB / COM_QUIT, and text-protocol resultsets. Every
// query routes through the serve admission layer, so connection traffic
// is governed by the same in-flight bounds, FIFO queue, deadlines and
// shared-scan batching as in-process callers.
//
// The decoder trusts nothing: every length is bounds-checked against the
// configured packet cap, malformed frames surface ErrMalformed (the
// connection closes with a metered error, never a panic — FuzzWirePacket
// pins this), and sequence-id violations are protocol errors.
package wire

import (
	"errors"
	"fmt"
	"io"
)

const (
	// maxChunk is the largest single-frame payload the framing can carry;
	// longer payloads continue in follow-up frames.
	maxChunk = 0xffffff
	// defaultMaxPacket bounds a reassembled payload unless configured.
	defaultMaxPacket = 1 << 20
)

// ErrMalformed reports a protocol violation in an incoming packet. The
// connection that produced it is closed.
var ErrMalformed = errors.New("wire: malformed packet")

// readPacket reads one protocol payload: a sequence of frames, each a
// 3-byte little-endian length + 1-byte sequence id header, reassembled
// until a frame shorter than maxChunk ends the payload. The sequence id
// must match *seq and increments per frame. max bounds the reassembled
// size.
func readPacket(r io.Reader, seq *uint8, max int) ([]byte, error) {
	var hdr [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
		if hdr[3] != *seq {
			return nil, fmt.Errorf("%w: sequence id %d, want %d", ErrMalformed, hdr[3], *seq)
		}
		*seq++
		if len(payload)+n > max {
			return nil, fmt.Errorf("%w: payload exceeds %d bytes", ErrMalformed, max)
		}
		if n > 0 {
			chunk := make([]byte, n)
			if _, err := io.ReadFull(r, chunk); err != nil {
				return nil, err
			}
			payload = append(payload, chunk...)
		}
		if n < maxChunk {
			return payload, nil
		}
	}
}

// writePacket frames and writes one payload, splitting at maxChunk (a
// payload of exactly k·maxChunk bytes is terminated by an empty frame,
// per protocol).
func writePacket(w io.Writer, seq *uint8, payload []byte) error {
	var hdr [4]byte
	for {
		n := len(payload)
		if n > maxChunk {
			n = maxChunk
		}
		hdr[0], hdr[1], hdr[2], hdr[3] = byte(n), byte(n>>8), byte(n>>16), *seq
		*seq++
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
		if n < maxChunk {
			return nil
		}
	}
}

// appendLenencInt appends a length-encoded integer.
func appendLenencInt(b []byte, v uint64) []byte {
	switch {
	case v < 0xfb:
		return append(b, byte(v))
	case v <= 0xffff:
		return append(b, 0xfc, byte(v), byte(v>>8))
	case v <= 0xffffff:
		return append(b, 0xfd, byte(v), byte(v>>8), byte(v>>16))
	default:
		return append(b, 0xfe, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// lenencInt decodes a length-encoded integer, returning the value and the
// number of bytes consumed. ok is false on truncation or on the 0xfb
// (NULL) and 0xff (ERR-marker) first bytes, which are not integers.
func lenencInt(b []byte) (v uint64, n int, ok bool) {
	if len(b) == 0 {
		return 0, 0, false
	}
	switch c := b[0]; {
	case c < 0xfb:
		return uint64(c), 1, true
	case c == 0xfc:
		if len(b) < 3 {
			return 0, 0, false
		}
		return uint64(b[1]) | uint64(b[2])<<8, 3, true
	case c == 0xfd:
		if len(b) < 4 {
			return 0, 0, false
		}
		return uint64(b[1]) | uint64(b[2])<<8 | uint64(b[3])<<16, 4, true
	case c == 0xfe:
		if len(b) < 9 {
			return 0, 0, false
		}
		v = uint64(b[1]) | uint64(b[2])<<8 | uint64(b[3])<<16 | uint64(b[4])<<24 |
			uint64(b[5])<<32 | uint64(b[6])<<40 | uint64(b[7])<<48 | uint64(b[8])<<56
		return v, 9, true
	default: // 0xfb (NULL), 0xff (ERR)
		return 0, 0, false
	}
}

// appendLenencBytes appends a length-encoded string.
func appendLenencBytes(b, s []byte) []byte {
	b = appendLenencInt(b, uint64(len(s)))
	return append(b, s...)
}

// lenencBytes decodes a length-encoded string, returning the value and
// bytes consumed.
func lenencBytes(b []byte) (s []byte, n int, ok bool) {
	v, n, ok := lenencInt(b)
	if !ok {
		return nil, 0, false
	}
	if uint64(len(b)-n) < v {
		return nil, 0, false
	}
	return b[n : n+int(v)], n + int(v), true
}

// nullTermBytes splits b at the first NUL, returning the prefix and the
// remainder after the NUL.
func nullTermBytes(b []byte) (s, rest []byte, ok bool) {
	for i, c := range b {
		if c == 0 {
			return b[:i], b[i+1:], true
		}
	}
	return nil, nil, false
}

// MySQL error codes for the subset of outcomes the daemon produces.
const (
	errTooManyConnections = 1040 // ER_CON_COUNT_ERROR
	errHandshake          = 1043 // ER_HANDSHAKE_ERROR
	errAccessDenied       = 1045 // ER_ACCESS_DENIED_ERROR
	errUnknownCom         = 1047 // ER_UNKNOWN_COM_ERROR
	errOutOfResources     = 1041 // ER_OUT_OF_RESOURCES (admission queue full)
	errServerShutdown     = 1053 // ER_SERVER_SHUTDOWN
	errParse              = 1064 // ER_PARSE_ERROR
	errNetPacketTooLarge  = 1153 // ER_NET_PACKET_TOO_LARGE
	errUnsupportedPS      = 1295 // ER_UNSUPPORTED_PS
	errQueryInterrupted   = 1317 // ER_QUERY_INTERRUPTED
	errMalformedPacket    = 1835 // ER_MALFORMED_PACKET
	errQueryTimeout       = 3024 // ER_QUERY_TIMEOUT
)

// okPayload builds an OK packet (affected rows 0, insert id 0, autocommit
// status, no warnings).
func okPayload() []byte {
	return []byte{0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00}
}

// eofPayload builds an EOF packet (no warnings, autocommit status).
func eofPayload() []byte {
	return []byte{0xfe, 0x00, 0x00, 0x02, 0x00}
}

// errPayload builds an ERR packet with a SQLSTATE marker.
func errPayload(code uint16, sqlState, msg string) []byte {
	if len(sqlState) != 5 {
		sqlState = "HY000"
	}
	b := make([]byte, 0, 9+len(msg))
	b = append(b, 0xff, byte(code), byte(code>>8), '#')
	b = append(b, sqlState...)
	return append(b, msg...)
}

// parseErrPayload decodes an ERR packet into a *ServerError.
func parseErrPayload(p []byte) *ServerError {
	e := &ServerError{}
	if len(p) < 3 {
		return e
	}
	e.Code = uint16(p[1]) | uint16(p[2])<<8
	rest := p[3:]
	if len(rest) >= 6 && rest[0] == '#' {
		e.State = string(rest[1:6])
		rest = rest[6:]
	}
	e.Message = string(rest)
	return e
}

// ServerError is an ERR packet surfaced to a client.
type ServerError struct {
	Code    uint16
	State   string
	Message string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("wire: server error %d (%s): %s", e.Code, e.State, e.Message)
}
