package wire_test

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/wire"
)

// counterValue sums one counter family's series, optionally filtered by a
// label substring.
func counterValue(reg *obs.Registry, name, labelSub string) int64 {
	var total int64
	for _, c := range reg.CounterSamples() {
		if c.Name == name && (labelSub == "" || strings.Contains(c.Labels, labelSub)) {
			total += c.Value
		}
	}
	return total
}

func TestMaxConnsRefusal(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	reg := obs.NewRegistry()
	st := startStack(t, eng, serve.Config{Metrics: reg}, wire.Config{MaxConns: 2})

	c1, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	_, err = wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	var se *wire.ServerError
	if !errors.As(err, &se) || se.Code != 1040 {
		t.Fatalf("third connection: want ERR 1040, got %v", err)
	}
	if n := counterValue(reg, "aqp_conn_rejected_total", "too_many_connections"); n < 1 {
		t.Fatalf("aqp_conn_rejected_total{too_many_connections} = %d, want >= 1", n)
	}

	// Capacity frees on close: the limit is a gauge, not a ratchet.
	c1.Close()
	waitFor(t, "slot freed", func() bool { return st.wl.Open() < 2 })
	c3, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("connection after free: %v", err)
	}
	c3.Close()
}

func TestAuthHook(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	st := startStack(t, eng, serve.Config{},
		wire.Config{Auth: wire.NativePassword(map[string]string{"alice": "sesame"})})

	if _, err := wire.Dial(st.addr, wire.ClientOptions{
		User: "alice", Password: "wrong", Timeout: 5 * time.Second}); err == nil {
		t.Fatal("bad password admitted")
	} else {
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != 1045 {
			t.Fatalf("want ERR 1045, got %v", err)
		}
	}
	if _, err := wire.Dial(st.addr, wire.ClientOptions{
		User: "mallory", Password: "sesame", Timeout: 5 * time.Second}); err == nil {
		t.Fatal("unknown user admitted")
	}
	cli, err := wire.Dial(st.addr, wire.ClientOptions{
		User: "alice", Password: "sesame", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("valid credentials refused: %v", err)
	}
	defer cli.Close()
	if _, err := cli.Query("SELECT AVG(Price) FROM Orders"); err != nil {
		t.Fatal(err)
	}
}

// rawGreetedConn dials and consumes the server greeting, returning a
// socket positioned where the handshake response belongs.
func rawGreetedConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(nc, hdr); err != nil {
		t.Fatal(err)
	}
	n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
	if _, err := io.CopyN(io.Discard, nc, int64(n)); err != nil {
		t.Fatal(err)
	}
	return nc
}

// readERRCode reads one packet and decodes it as an ERR, returning the
// code (0 on anything else).
func readERRCode(t *testing.T, nc net.Conn) uint16 {
	t.Helper()
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(nc, hdr); err != nil {
		return 0
	}
	n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
	p := make([]byte, n)
	if _, err := io.ReadFull(nc, p); err != nil {
		return 0
	}
	if len(p) < 3 || p[0] != 0xff {
		return 0
	}
	return uint16(p[1]) | uint16(p[2])<<8
}

func TestMalformedPacketClosesWithMeteredError(t *testing.T) {
	eng := testEngine(t, core.Config{Seed: 7})
	reg := obs.NewRegistry()
	st := startStack(t, eng, serve.Config{Metrics: reg}, wire.Config{})

	// Wrong sequence id in the handshake response.
	nc := rawGreetedConn(t, st.addr)
	nc.Write([]byte{0x05, 0x00, 0x00, 0x07, 1, 2, 3, 4, 5}) //nolint:errcheck — seq 7, server expects 1
	if code := readERRCode(t, nc); code != 1835 {
		t.Fatalf("bad sequence: want ERR 1835, got %d", code)
	}
	// The connection is closed after the ERR: next read is EOF.
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("expected clean close, got %v", err)
	}
	waitFor(t, "protocol error metered", func() bool {
		return counterValue(reg, "aqp_conn_errors_total", "protocol") >= 1
	})

	// An oversize command after a valid handshake.
	cli, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	before := counterValue(reg, "aqp_conn_errors_total", "protocol")
	_, err = cli.Query(strings.Repeat("x", 2<<20)) // past the 1 MiB default cap
	var se *wire.ServerError
	if !errors.As(err, &se) || se.Code != 1153 {
		t.Fatalf("oversize command: want ERR 1153, got %v", err)
	}
	waitFor(t, "oversize metered", func() bool {
		return counterValue(reg, "aqp_conn_errors_total", "protocol") > before
	})
	waitFor(t, "gauges at zero", func() bool {
		return reg.Gauge("aqp_conn_queries_active", "").Value() == 0
	})
}

func TestQueueFullWire(t *testing.T) {
	eng, started, release := blockingEngine(t)
	defer close(release)
	st := startStack(t, eng,
		serve.Config{MaxInFlight: 1, MaxQueue: -1}, // no queue: saturate = reject
		wire.Config{})

	slow, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() {
		_, err := slow.Query("SELECT SLOW(Price) FROM Orders")
		slowDone <- err
	}()
	<-started

	cli, err := wire.Dial(st.addr, wire.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Query("SELECT AVG(Price) FROM Orders")
	var se *wire.ServerError
	if !errors.As(err, &se) || se.Code != 1041 {
		t.Fatalf("saturated: want ERR 1041, got %v", err)
	}
	// The refused connection stays usable for a retry.
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection unusable after queue-full: %v", err)
	}
}
