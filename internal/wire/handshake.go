package wire

import (
	"crypto/rand"
	"crypto/sha1"
	"crypto/subtle"
	"fmt"
)

// Capability flags (the subset the daemon advertises or inspects).
const (
	capLongPassword     = 0x00000001
	capConnectWithDB    = 0x00000008
	capProtocol41       = 0x00000200
	capTransactions     = 0x00002000
	capSecureConnection = 0x00008000
	capPluginAuth       = 0x00080000
	capPluginAuthLenenc = 0x00200000
	capDeprecateEOF     = 0x01000000 // never advertised: we speak EOF-terminated resultsets
)

const serverCapabilityFlags uint32 = capLongPassword | capConnectWithDB | capProtocol41 |
	capTransactions | capSecureConnection | capPluginAuth

// authPluginName is the only auth method the daemon speaks. Its scramble
// needs no TLS to avoid sending plaintext passwords, and every stock
// client supports it.
const authPluginName = "mysql_native_password"

// charsetUTF8 is utf8_general_ci, the charset byte advertised both ways.
const charsetUTF8 = 0x21

// saltLen is the auth-plugin-data length for mysql_native_password.
const saltLen = 20

// newSalt draws the random handshake scramble. Bytes are printable ASCII
// (classic server behaviour: some clients mishandle NUL bytes in the
// salt).
func newSalt() []byte {
	salt := make([]byte, saltLen)
	if _, err := rand.Read(salt); err != nil {
		// crypto/rand failing means the process is in a bad way; a
		// deterministic salt only weakens auth replay resistance, never
		// correctness.
		for i := range salt {
			salt[i] = byte(i + 1)
		}
	}
	for i := range salt {
		salt[i] = '!' + salt[i]%94 // 0x21..0x7e
	}
	return salt
}

// handshakeV10 builds the server greeting payload.
func handshakeV10(connID uint32, salt []byte, version string) []byte {
	b := make([]byte, 0, 64+len(version))
	b = append(b, 0x0a) // protocol version
	b = append(b, version...)
	b = append(b, 0)
	b = append(b, byte(connID), byte(connID>>8), byte(connID>>16), byte(connID>>24))
	b = append(b, salt[:8]...)
	caps := serverCapabilityFlags
	b = append(b, 0)                              // filler
	b = append(b, byte(caps&0xff), byte(caps>>8)) // caps lower
	b = append(b, charsetUTF8)
	b = append(b, 0x02, 0x00) // status: autocommit
	b = append(b, byte(caps>>16&0xff), byte(caps>>24))
	b = append(b, byte(saltLen+1)) // auth plugin data length (incl. NUL)
	b = append(b, make([]byte, 10)...)
	b = append(b, salt[8:]...)
	b = append(b, 0)
	b = append(b, authPluginName...)
	b = append(b, 0)
	return b
}

// handshakeResponse is a parsed HandshakeResponse41.
type handshakeResponse struct {
	caps      uint32
	maxPacket uint32
	charset   byte
	User      string
	Database  string
	Plugin    string
	AuthResp  []byte
}

// parseHandshakeResponse decodes a HandshakeResponse41 payload. Every
// field is bounds-checked; violations return ErrMalformed.
func parseHandshakeResponse(p []byte) (*handshakeResponse, error) {
	if len(p) < 32 {
		return nil, fmt.Errorf("%w: handshake response %d bytes, want >= 32", ErrMalformed, len(p))
	}
	r := &handshakeResponse{
		caps:      uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24,
		maxPacket: uint32(p[4]) | uint32(p[5])<<8 | uint32(p[6])<<16 | uint32(p[7])<<24,
		charset:   p[8],
	}
	if r.caps&capProtocol41 == 0 {
		return nil, fmt.Errorf("%w: pre-4.1 clients are not supported", ErrMalformed)
	}
	rest := p[32:] // 4+4+1+23 bytes of fixed header
	user, rest, ok := nullTermBytes(rest)
	if !ok {
		return nil, fmt.Errorf("%w: unterminated username", ErrMalformed)
	}
	r.User = string(user)
	switch {
	case r.caps&capPluginAuthLenenc != 0:
		auth, n, ok := lenencBytes(rest)
		if !ok {
			return nil, fmt.Errorf("%w: truncated lenenc auth response", ErrMalformed)
		}
		r.AuthResp = append([]byte(nil), auth...)
		rest = rest[n:]
	case r.caps&capSecureConnection != 0:
		if len(rest) < 1 || len(rest) < 1+int(rest[0]) {
			return nil, fmt.Errorf("%w: truncated auth response", ErrMalformed)
		}
		r.AuthResp = append([]byte(nil), rest[1:1+int(rest[0])]...)
		rest = rest[1+int(rest[0]):]
	default:
		auth, after, ok := nullTermBytes(rest)
		if !ok {
			return nil, fmt.Errorf("%w: unterminated auth response", ErrMalformed)
		}
		r.AuthResp = append([]byte(nil), auth...)
		rest = after
	}
	if r.caps&capConnectWithDB != 0 && len(rest) > 0 {
		db, after, ok := nullTermBytes(rest)
		if !ok {
			// Tolerate an unterminated trailing database name.
			db, after = rest, nil
		}
		r.Database = string(db)
		rest = after
	}
	if r.caps&capPluginAuth != 0 && len(rest) > 0 {
		plugin, _, ok := nullTermBytes(rest)
		if !ok {
			plugin = rest
		}
		r.Plugin = string(plugin)
	}
	return r, nil
}

// nativeScramble computes the mysql_native_password token:
// SHA1(password) XOR SHA1(salt ‖ SHA1(SHA1(password))). Empty passwords
// send an empty token.
func nativeScramble(salt []byte, password string) []byte {
	if password == "" {
		return nil
	}
	h1 := sha1.Sum([]byte(password))
	h2 := sha1.Sum(h1[:])
	mix := sha1.New()
	mix.Write(salt)
	mix.Write(h2[:])
	h3 := mix.Sum(nil)
	out := make([]byte, sha1.Size)
	for i := range out {
		out[i] = h1[i] ^ h3[i]
	}
	return out
}

// ConnInfo identifies one wire connection to the auth hook and the event
// log: the tenancy handle.
type ConnInfo struct {
	ID       uint64
	Remote   string
	User     string
	Database string
}

// AuthFunc vets one connection after the handshake: it receives the
// connection identity, the salt the server sent, and the client's auth
// response (the mysql_native_password scramble, or whatever the client's
// plugin produced). A non-nil error refuses the connection with
// ER_ACCESS_DENIED_ERROR. A nil AuthFunc admits everyone.
type AuthFunc func(info ConnInfo, salt, authResponse []byte) error

// NativePassword returns an AuthFunc checking mysql_native_password
// scrambles against a user→password table (constant-time comparison).
// Unknown users are refused.
func NativePassword(users map[string]string) AuthFunc {
	return func(info ConnInfo, salt, authResponse []byte) error {
		password, ok := users[info.User]
		if !ok {
			return fmt.Errorf("unknown user %q", info.User)
		}
		want := nativeScramble(salt, password)
		if len(want) != len(authResponse) ||
			subtle.ConstantTimeCompare(want, authResponse) != 1 {
			return fmt.Errorf("bad password for user %q", info.User)
		}
		return nil
	}
}
