package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// A minimal MySQL text-protocol client: enough to handshake, authenticate
// with mysql_native_password, and run COM_QUERY / COM_PING against any
// 4.1+ server. It exists so the end-to-end tests and the aqpbench load
// generator can hold the daemon to the protocol from the outside without
// pulling in a driver dependency; it is not a general-purpose client.

// ClientOptions configures Dial.
type ClientOptions struct {
	User     string
	Password string
	Database string
	// MaxPacket bounds one response payload (0 = 16 MiB: resultsets are
	// bigger than commands).
	MaxPacket int
	// Timeout applies to the dial and each subsequent command round trip
	// (0 = none).
	Timeout time.Duration
}

func (o ClientOptions) maxPacket() int {
	if o.MaxPacket <= 0 {
		return 16 << 20
	}
	return o.MaxPacket
}

// Client is one wire connection.
type Client struct {
	nc  net.Conn
	br  *bufio.Reader
	opt ClientOptions
}

// Resultset is a decoded text-protocol resultset. NULL cells decode as
// empty strings (the daemon never emits NULL).
type Resultset struct {
	Columns []string
	Rows    [][]string
}

// Dial connects, handshakes and authenticates.
func Dial(addr string, opt ClientOptions) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, opt.Timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, br: bufio.NewReader(nc), opt: opt}
	if err := c.handshake(); err != nil {
		nc.Close() //nolint:errcheck
		return nil, err
	}
	return c, nil
}

func (c *Client) deadline() {
	if c.opt.Timeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.opt.Timeout)) //nolint:errcheck
	}
}

func (c *Client) handshake() error {
	c.deadline()
	seq := uint8(0)
	greeting, err := readPacket(c.br, &seq, c.opt.maxPacket())
	if err != nil {
		return fmt.Errorf("wire: reading greeting: %w", err)
	}
	if len(greeting) > 0 && greeting[0] == 0xff {
		return parseErrPayload(greeting) // refused pre-handshake (limits)
	}
	salt, err := parseGreeting(greeting)
	if err != nil {
		return err
	}
	caps := uint32(capProtocol41 | capSecureConnection | capPluginAuth | capLongPassword)
	if c.opt.Database != "" {
		caps |= capConnectWithDB
	}
	auth := nativeScramble(salt, c.opt.Password)
	resp := make([]byte, 0, 64)
	resp = append(resp, byte(caps), byte(caps>>8), byte(caps>>16), byte(caps>>24))
	resp = append(resp, 0x00, 0x00, 0x00, 0x01) // max packet 1<<24
	resp = append(resp, charsetUTF8)
	resp = append(resp, make([]byte, 23)...)
	resp = append(resp, c.opt.User...)
	resp = append(resp, 0)
	resp = append(resp, byte(len(auth)))
	resp = append(resp, auth...)
	if c.opt.Database != "" {
		resp = append(resp, c.opt.Database...)
		resp = append(resp, 0)
	}
	resp = append(resp, authPluginName...)
	resp = append(resp, 0)
	if err := writePacket(c.nc, &seq, resp); err != nil {
		return fmt.Errorf("wire: sending handshake response: %w", err)
	}
	verdict, err := readPacket(c.br, &seq, c.opt.maxPacket())
	if err != nil {
		return fmt.Errorf("wire: reading auth verdict: %w", err)
	}
	if len(verdict) > 0 && verdict[0] == 0xff {
		return parseErrPayload(verdict)
	}
	if len(verdict) == 0 || verdict[0] != 0x00 {
		return fmt.Errorf("%w: unexpected auth verdict", ErrMalformed)
	}
	return nil
}

// parseGreeting extracts the full 20-byte salt from a HandshakeV10
// payload.
func parseGreeting(p []byte) ([]byte, error) {
	if len(p) < 1 || p[0] != 0x0a {
		return nil, fmt.Errorf("%w: unsupported greeting", ErrMalformed)
	}
	_, rest, ok := nullTermBytes(p[1:]) // server version
	if !ok || len(rest) < 4+8+1 {
		return nil, fmt.Errorf("%w: truncated greeting", ErrMalformed)
	}
	rest = rest[4:] // connection id
	salt := append([]byte(nil), rest[:8]...)
	rest = rest[8+1:] // salt part 1, filler
	// caps lower (2), charset (1), status (2), caps upper (2), auth data
	// len (1), reserved (10)
	if len(rest) < 18 {
		return salt, nil // pre-4.1-style short greeting: 8-byte salt only
	}
	rest = rest[18:]
	// Salt part 2: 12 bytes (13 with trailing NUL) by convention.
	n := 12
	if len(rest) < n {
		n = len(rest)
	}
	return append(salt, rest[:n]...), nil
}

// Ping round-trips COM_PING.
func (c *Client) Ping() error {
	c.deadline()
	seq := uint8(0)
	if err := writePacket(c.nc, &seq, []byte{0x0e}); err != nil {
		return err
	}
	p, err := readPacket(c.br, &seq, c.opt.maxPacket())
	if err != nil {
		return err
	}
	if len(p) > 0 && p[0] == 0xff {
		return parseErrPayload(p)
	}
	return nil
}

// Query runs one COM_QUERY and decodes the text-protocol response.
func (c *Client) Query(sql string) (*Resultset, error) {
	c.deadline()
	seq := uint8(0)
	if err := writePacket(c.nc, &seq, append([]byte{0x03}, sql...)); err != nil {
		return nil, err
	}
	first, err := readPacket(c.br, &seq, c.opt.maxPacket())
	if err != nil {
		return nil, err
	}
	if len(first) == 0 {
		return nil, fmt.Errorf("%w: empty response", ErrMalformed)
	}
	switch first[0] {
	case 0xff:
		return nil, parseErrPayload(first)
	case 0x00:
		return &Resultset{}, nil // OK: statement with no resultset
	}
	ncols, n, ok := lenencInt(first)
	if !ok || n != len(first) || ncols == 0 || ncols > 1<<16 {
		return nil, fmt.Errorf("%w: bad column count", ErrMalformed)
	}
	rs := &Resultset{}
	for i := uint64(0); i < ncols; i++ {
		def, err := readPacket(c.br, &seq, c.opt.maxPacket())
		if err != nil {
			return nil, err
		}
		name, err := columnName(def)
		if err != nil {
			return nil, err
		}
		rs.Columns = append(rs.Columns, name)
	}
	// EOF after column definitions.
	if p, err := readPacket(c.br, &seq, c.opt.maxPacket()); err != nil {
		return nil, err
	} else if len(p) == 0 || p[0] != 0xfe {
		return nil, fmt.Errorf("%w: missing column EOF", ErrMalformed)
	}
	for {
		p, err := readPacket(c.br, &seq, c.opt.maxPacket())
		if err != nil {
			return nil, err
		}
		if len(p) > 0 && p[0] == 0xff {
			return nil, parseErrPayload(p)
		}
		if len(p) > 0 && p[0] == 0xfe && len(p) < 9 {
			return rs, nil // terminating EOF
		}
		row := make([]string, 0, ncols)
		for len(p) > 0 {
			if p[0] == 0xfb { // NULL
				row = append(row, "")
				p = p[1:]
				continue
			}
			cell, n, ok := lenencBytes(p)
			if !ok {
				return nil, fmt.Errorf("%w: truncated row", ErrMalformed)
			}
			row = append(row, string(cell))
			p = p[n:]
		}
		if uint64(len(row)) != ncols {
			return nil, fmt.Errorf("%w: row has %d cells, want %d", ErrMalformed, len(row), ncols)
		}
		rs.Rows = append(rs.Rows, row)
	}
}

// columnName extracts the display name from a ColumnDefinition41 payload.
func columnName(def []byte) (string, error) {
	rest := def
	for i := 0; i < 4; i++ { // catalog, schema, table, org_table
		_, n, ok := lenencBytes(rest)
		if !ok {
			return "", fmt.Errorf("%w: truncated column definition", ErrMalformed)
		}
		rest = rest[n:]
	}
	name, _, ok := lenencBytes(rest)
	if !ok {
		return "", fmt.Errorf("%w: truncated column name", ErrMalformed)
	}
	return string(name), nil
}

// Close sends COM_QUIT (best effort) and closes the socket.
func (c *Client) Close() error {
	seq := uint8(0)
	writePacket(c.nc, &seq, []byte{0x01}) //nolint:errcheck
	return c.nc.Close()
}

// CloseAbruptly severs the TCP connection with no COM_QUIT — the churn
// tests use it to model clients dying mid-exchange.
func (c *Client) CloseAbruptly() error {
	return c.nc.Close()
}
