package wire

import (
	"io"

	"repro/internal/core"
	"repro/internal/serve"
)

// Text-protocol resultsets. An answer renders as one row per group with,
// per aggregate alias a, the columns:
//
//	a            DOUBLE   the estimate
//	a_lo, a_hi   DOUBLE   the α confidence interval endpoints
//	a_rel_err    DOUBLE   half-width / |estimate|
//	a_technique  VARCHAR  error-estimation method ("closed-form", ...)
//	a_verdict    VARCHAR  runtime diagnostic verdict ("accept" | "reject")
//	a_exact      VARCHAR  "1" after an exact fallback, else "0"
//
// Grouped queries get a leading VARCHAR "group" column and every row
// ends with a VARCHAR "trace_id" column carrying the query's W3C trace
// ID — the join key into /debug/queries, the event log, and the durable
// history. Floats are rendered in shortest round-trip form
// (serve.FormatF64): parsing a cell back yields the identical float64
// bits core.Run produced, which the end-to-end equality test asserts.

// Column type bytes (text protocol).
const (
	typeDouble    = 0x05
	typeVarString = 0xfd
)

// colDef41 builds a ColumnDefinition41 payload.
func colDef41(name string, typ byte) []byte {
	b := make([]byte, 0, 48+2*len(name))
	b = appendLenencBytes(b, []byte("def")) // catalog
	b = appendLenencBytes(b, []byte("aqp")) // schema
	b = appendLenencBytes(b, nil)           // table
	b = appendLenencBytes(b, nil)           // org_table
	b = appendLenencBytes(b, []byte(name))  // name
	b = appendLenencBytes(b, []byte(name))  // org_name
	b = append(b, 0x0c)                     // fixed-length fields
	charset := byte(charsetUTF8)
	if typ == typeDouble {
		charset = 0x3f // binary
	}
	b = append(b, charset, 0x00)          // charset
	b = append(b, 0xff, 0x00, 0x00, 0x00) // column length
	b = append(b, typ)
	b = append(b, 0x00, 0x00) // flags
	decimals := byte(0x1f)    // "dynamic" for doubles
	if typ == typeVarString {
		decimals = 0
	}
	b = append(b, decimals)
	b = append(b, 0x00, 0x00) // filler
	return b
}

// answerColumns derives the column plan for an answer: names, types, and
// whether a leading group column is present.
func answerColumns(ans *core.Answer) (names []string, types []byte) {
	grouped := false
	for _, g := range ans.Groups {
		if g.Key != "" {
			grouped = true
			break
		}
	}
	if grouped {
		names = append(names, "group")
		types = append(types, typeVarString)
	}
	if len(ans.Groups) > 0 {
		for _, a := range ans.Groups[0].Aggs {
			names = append(names,
				a.Name, a.Name+"_lo", a.Name+"_hi", a.Name+"_rel_err",
				a.Name+"_technique", a.Name+"_verdict", a.Name+"_exact")
			types = append(types,
				typeDouble, typeDouble, typeDouble, typeDouble,
				typeVarString, typeVarString, typeVarString)
		}
	}
	return names, types
}

// answerRow renders one group as a text-protocol row.
func answerRow(g core.GroupAnswer, grouped bool) []string {
	row := make([]string, 0, 1+7*len(g.Aggs))
	if grouped {
		row = append(row, g.Key)
	}
	for _, a := range g.Aggs {
		exact := "0"
		if a.Exact {
			exact = "1"
		}
		row = append(row,
			serve.FormatF64(a.Estimate),
			serve.FormatF64(a.ErrorBar.Lo()),
			serve.FormatF64(a.ErrorBar.Hi()),
			serve.FormatF64(a.RelErr),
			a.Technique,
			serve.Verdict(a),
			exact)
	}
	return row
}

// writeResultset writes an answer as a text-protocol resultset: column
// count, column definitions, EOF, rows, EOF. traceID, when non-empty,
// is appended as a trailing VARCHAR "trace_id" column on every row.
func writeResultset(w io.Writer, seq *uint8, ans *core.Answer, traceID string) error {
	names, types := answerColumns(ans)
	if len(names) == 0 {
		// A query with no groups (empty table edge): an OK packet is the
		// protocol-legal empty answer.
		return writePacket(w, seq, okPayload())
	}
	if traceID != "" {
		names = append(names, "trace_id")
		types = append(types, typeVarString)
	}
	if err := writePacket(w, seq, appendLenencInt(nil, uint64(len(names)))); err != nil {
		return err
	}
	for i, name := range names {
		if err := writePacket(w, seq, colDef41(name, types[i])); err != nil {
			return err
		}
	}
	if err := writePacket(w, seq, eofPayload()); err != nil {
		return err
	}
	grouped := names[0] == "group"
	for _, g := range ans.Groups {
		var row []byte
		for _, cell := range answerRow(g, grouped) {
			row = appendLenencBytes(row, []byte(cell))
		}
		if traceID != "" {
			row = appendLenencBytes(row, []byte(traceID))
		}
		if err := writePacket(w, seq, row); err != nil {
			return err
		}
	}
	return writePacket(w, seq, eofPayload())
}
