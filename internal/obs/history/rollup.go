package history

// Registry rollups: the store's background tick samples every registered
// counter (and each histogram's count/sum) and writes the cumulative
// value into the same 1s/10s/60s ring geometry the SLO monitor uses.
// Windowed deltas over those rings turn the engine's cumulative metrics
// into rates — "rows scanned per second over the last minute" — without
// an external scraper.

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// cumSlot holds the last cumulative value observed inside a time slot.
type cumSlot struct {
	start int64
	val   float64
}

type cumRing struct {
	res [][]cumSlot
}

func newCumRing() *cumRing {
	r := &cumRing{res: make([][]cumSlot, len(ringRes))}
	for i, g := range ringRes {
		r.res[i] = make([]cumSlot, g.slots)
	}
	return r
}

func (r *cumRing) record(sec int64, val float64) {
	for i, g := range ringRes {
		aligned := (sec / g.step) * g.step
		s := &r.res[i][int(aligned/g.step)%g.slots]
		s.start, s.val = aligned, val
	}
}

// delta returns the value change across (now-windowSec, now] and the
// actual span covered; ok is false with fewer than two samples retained.
func (r *cumRing) delta(now, windowSec int64) (d float64, spanSec int64, ok bool) {
	if windowSec > maxRetentionSec {
		windowSec = maxRetentionSec
	}
	ri := len(ringRes) - 1
	for i, g := range ringRes {
		if windowSec <= g.step*int64(g.slots) {
			ri = i
			break
		}
	}
	lo := now - windowSec
	var oldest, newest *cumSlot
	for j := range r.res[ri] {
		s := &r.res[ri][j]
		if s.start == 0 || s.start <= lo-ringRes[ri].step+1 || s.start > now {
			continue
		}
		if oldest == nil || s.start < oldest.start {
			oldest = s
		}
		if newest == nil || s.start > newest.start {
			newest = s
		}
	}
	if oldest == nil || newest == nil || newest.start == oldest.start {
		return 0, 0, false
	}
	return newest.val - oldest.val, newest.start - oldest.start, true
}

// SeriesRate is one metric series' windowed delta, as served by
// /debug/history.
type SeriesRate struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Delta  float64 `json:"delta"`
	PerSec float64 `json:"per_sec"`
	// SpanSec is the actual sampled span the delta covers (at most the
	// requested window).
	SpanSec int64 `json:"span_sec"`
}

type rollup struct {
	mu     sync.Mutex
	series map[string]*cumRing
}

func newRollup() *rollup {
	return &rollup{series: map[string]*cumRing{}}
}

func seriesKey(name, labels string) string { return name + "{" + labels + "}" }

// sample captures the current value of every counter and histogram series.
func (r *rollup) sample(sec int64, reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := func(name, labels string, val float64) {
		key := seriesKey(name, labels)
		ring, ok := r.series[key]
		if !ok {
			ring = newCumRing()
			r.series[key] = ring
		}
		ring.record(sec, val)
	}
	for _, c := range reg.CounterSamples() {
		rec(c.Name, c.Labels, float64(c.Value))
	}
	for _, h := range reg.HistogramStats() {
		rec(h.Name+"_count", h.Labels, float64(h.Count))
		rec(h.Name+"_sum", h.Labels, h.Sum)
	}
}

// rates returns every series' delta over the window, sorted by series key;
// series without two retained samples are omitted.
func (r *rollup) rates(now, windowSec int64) []SeriesRate {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []SeriesRate
	for _, k := range keys {
		d, span, ok := r.series[k].delta(now, windowSec)
		if !ok {
			continue
		}
		name, labels, _ := strings.Cut(k, "{")
		labels = strings.TrimSuffix(labels, "}")
		out = append(out, SeriesRate{
			Name: name, Labels: labels, Delta: d,
			PerSec: d / float64(span), SpanSec: span,
		})
	}
	return out
}
