package history

// On-disk segment format. A history directory holds size-rotated segment
// files named seg-XXXXXXXX.hist (XXXXXXXX = zero-padded decimal sequence
// number). Each segment is:
//
//	[8]  magic "AQPHIST1"
//	[4]  little-endian uint32 format version (currently 1)
//	[4]  reserved (zero)
//	[..] records, back to back
//
// and each record is framed as
//
//	[4]  little-endian uint32 payload length
//	[4]  little-endian uint32 CRC-32 (IEEE) of the payload
//	[..] JSON payload (one Record)
//
// A process run never appends to a pre-existing segment: OpenHistory
// starts a fresh segment numbered one past the highest on disk, so a
// torn tail left by a crash is confined to the last segment of the dead
// run and can never be written past. Replay reads segments in sequence
// order and, inside a segment, stops at the first frame that fails the
// length, CRC or JSON checks — the bad tail is skipped and counted, the
// records before it survive.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segMagic      = "AQPHIST1"
	segVersion    = 1
	segHeaderLen  = 16
	frameOverhead = 8 // length + CRC
	// maxRecordLen bounds a single record frame; anything larger is treated
	// as a corrupt length field rather than an allocation request.
	maxRecordLen = 16 << 20
)

func segmentName(seq int) string {
	return fmt.Sprintf("seg-%08d.hist", seq)
}

// segmentSeq parses a segment file name; ok is false for foreign files.
func segmentSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".hist") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".hist"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment file names in dir in sequence order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("history: reading dir: %w", err)
	}
	type seg struct {
		name string
		seq  int
	}
	var segs []seg
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := segmentSeq(e.Name()); ok {
			segs = append(segs, seg{e.Name(), seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	names := make([]string, len(segs))
	for i, s := range segs {
		names[i] = s.name
	}
	return names, nil
}

func writeSegmentHeader(w io.Writer) error {
	var h [segHeaderLen]byte
	copy(h[:8], segMagic)
	binary.LittleEndian.PutUint32(h[8:12], segVersion)
	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("history: writing segment header: %w", err)
	}
	return nil
}

// encodeFrame renders one record as a framed payload ready to append.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("history: encoding record: %w", err)
	}
	buf := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameOverhead:], payload)
	return buf, nil
}

// SegmentStats summarizes one replayed segment file.
type SegmentStats struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	// TailSkipped marks a segment whose final frames failed validation
	// (torn write or corruption); replay kept the records before the tear.
	TailSkipped bool   `json:"tail_skipped,omitempty"`
	TailErr     string `json:"tail_err,omitempty"`
}

// ReplaySegment streams the records of one segment file through fn,
// stopping (without error) at the first corrupt or torn frame. A segment
// whose header is missing or malformed yields zero records and a
// TailSkipped stat — a fail-closed read, never a guess.
func ReplaySegment(path string, fn func(*Record)) (SegmentStats, error) {
	st := SegmentStats{Name: filepath.Base(path)}
	data, err := os.ReadFile(path)
	if err != nil {
		return st, fmt.Errorf("history: reading segment: %w", err)
	}
	st.Bytes = int64(len(data))
	if len(data) < segHeaderLen || string(data[:8]) != segMagic {
		st.TailSkipped = true
		st.TailErr = "bad segment header"
		return st, nil
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != segVersion {
		st.TailSkipped = true
		st.TailErr = fmt.Sprintf("unsupported segment version %d", v)
		return st, nil
	}
	off := segHeaderLen
	for off < len(data) {
		if len(data)-off < frameOverhead {
			st.TailSkipped = true
			st.TailErr = "torn frame header"
			return st, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen || len(data)-off-frameOverhead < n {
			st.TailSkipped = true
			st.TailErr = "torn record payload"
			return st, nil
		}
		payload := data[off+frameOverhead : off+frameOverhead+n]
		if crc32.ChecksumIEEE(payload) != sum {
			st.TailSkipped = true
			st.TailErr = "record checksum mismatch"
			return st, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			st.TailSkipped = true
			st.TailErr = "record decode: " + err.Error()
			return st, nil
		}
		fn(&rec)
		st.Records++
		off += frameOverhead + n
	}
	return st, nil
}

// ReplayDir streams every record in dir's segments, in segment order,
// through fn. It returns per-segment stats; corruption inside a segment
// truncates that segment's contribution but never aborts the replay.
func ReplayDir(dir string, fn func(*Record)) ([]SegmentStats, error) {
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []SegmentStats
	for _, name := range names {
		st, err := ReplaySegment(filepath.Join(dir, name), fn)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}
