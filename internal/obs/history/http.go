package history

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// The three debug surfaces. They render JSON (pretty-printed: these are
// operator pages, not scrape targets — the machine-readable form of the
// same data is the aqp_history_*/aqp_slo_* metrics on /metrics).

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// WorkloadHandler serves the profiler's snapshot: every profile, busiest
// first — the JSON twin of aqpshell's \profile table.
func (s *Store) WorkloadHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		profiles := s.Profiles()
		writeJSON(w, struct {
			Profiles []Profile `json:"profiles"`
			Count    int       `json:"count"`
		}{profiles, len(profiles)})
	})
}

// SLOHandler serves every declared SLO's current evaluation.
func (s *Store) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			SLOs []SLOStatus `json:"slos"`
		}{s.SLOStatuses()})
	})
}

// StatsHandler serves the store's bookkeeping plus windowed metric rates
// (?window=SECONDS, default 60).
func (s *Store) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		window := 60
		if v := r.URL.Query().Get("window"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				window = n
			}
		}
		writeJSON(w, struct {
			Stats     Stats        `json:"stats"`
			WindowSec int          `json:"window_sec"`
			Rates     []SeriesRate `json:"rates"`
		}{s.Stats(), window, s.Rates(window)})
	})
}
