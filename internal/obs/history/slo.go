package history

// The accuracy/latency SLO monitor. Specs are declarative ("p99 latency
// ≤ 250ms over 5 minutes", "empirical coverage ≥ 93% on Sessions");
// evaluation runs over sliding windows on an in-memory multi-resolution
// ring — 1s slots for short windows, 10s and 60s rollups for long ones —
// so a 2-hour window costs the same handful of slot reads as a 1-minute
// one. The exported number is the SRE error-budget burn rate:
//
//	budget    = 1 - Objective            (allowed bad fraction)
//	burn rate = badFraction / budget
//
// burn 1.0 means the window is consuming its budget exactly as fast as
// the objective allows; above 1.0 the SLO is breaching.

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/alert"
)

// SLO kinds.
const (
	// SLOLatency: a query is good when its end-to-end latency is at most
	// ThresholdMs. "p99 ≤ X ms" is Objective 0.99 with ThresholdMs X.
	SLOLatency = "latency"
	// SLOCoverage: an audit is good when the CI contained ground truth.
	// "coverage ≥ 93%" is Objective 0.93.
	SLOCoverage = "coverage"
	// SLOAvailability: an event is bad when the query failed with an
	// engine error or was rejected at admission. Cancellations (client
	// abandoned) count as good.
	SLOAvailability = "availability"
)

// SLOSpec declares one objective.
type SLOSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "latency" | "coverage" | "availability"
	// Objective is the target good-event fraction in (0,1).
	Objective float64 `json:"objective"`
	// ThresholdMs is the latency cut-off (latency SLOs only). It is
	// effectively rounded up to the nearest latency-bucket bound.
	ThresholdMs float64 `json:"threshold_ms,omitempty"`
	// Table scopes a coverage SLO to one table ("" = all tables).
	Table string `json:"table,omitempty"`
	// WindowSec is the sliding evaluation window (0 = 300).
	WindowSec int `json:"window_sec,omitempty"`
}

func (s SLOSpec) windowSec() int64 {
	if s.WindowSec <= 0 {
		return 300
	}
	return int64(s.WindowSec)
}

// SLOStatus is one spec's current evaluation.
type SLOStatus struct {
	Spec   SLOSpec `json:"spec"`
	Events int64   `json:"events"`
	Bad    int64   `json:"bad"`
	// GoodFraction is 1 when the window holds no events — an idle system
	// burns no budget.
	GoodFraction float64 `json:"good_fraction"`
	// BurnRate is badFraction / (1 - Objective).
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is 1 - BurnRate (negative once the window's budget
	// is overspent).
	BudgetRemaining float64 `json:"budget_remaining"`
	Breaching       bool    `json:"breaching"`
}

// Ring geometry: resolutions and slot counts. Retention is the coarsest
// ring's span: 128 minutes.
var ringRes = []struct {
	step  int64 // seconds per slot
	slots int
}{
	{1, 128},
	{10, 96},
	{60, 128},
}

const maxRetentionSec = 60 * 128

// tsSlot is one time slot of event counts. lat is indexed like
// obs.LatencyBuckets (+Inf tail) and only allocated on the global ring.
type tsSlot struct {
	start     int64 // aligned unix sec; 0 = empty
	n         int64 // finished queries
	errs      int64 // outcome "error"
	rejects   int64 // admission rejections
	audits    int64
	uncovered int64
	lat       []int64
}

// tsRing is one event stream at all resolutions.
type tsRing struct {
	res [][]tsSlot
}

func newTSRing() *tsRing {
	r := &tsRing{res: make([][]tsSlot, len(ringRes))}
	for i, g := range ringRes {
		r.res[i] = make([]tsSlot, g.slots)
	}
	return r
}

// slotAt returns the (reset-if-stale) slot for sec at resolution i.
func (r *tsRing) slotAt(i int, sec int64) *tsSlot {
	step := ringRes[i].step
	aligned := (sec / step) * step
	s := &r.res[i][int(aligned/step)%ringRes[i].slots]
	if s.start != aligned {
		*s = tsSlot{start: aligned}
	}
	return s
}

// window sums the slots covering (now-windowSec, now] at the finest
// resolution that retains the whole window.
func (r *tsRing) window(now, windowSec int64) tsSlot {
	if windowSec > maxRetentionSec {
		windowSec = maxRetentionSec
	}
	ri := len(ringRes) - 1
	for i, g := range ringRes {
		if windowSec <= g.step*int64(g.slots) {
			ri = i
			break
		}
	}
	step := ringRes[ri].step
	var sum tsSlot
	lo := now - windowSec
	for j := range r.res[ri] {
		s := &r.res[ri][j]
		if s.start == 0 || s.start <= lo-step+1 || s.start > now {
			continue
		}
		sum.n += s.n
		sum.errs += s.errs
		sum.rejects += s.rejects
		sum.audits += s.audits
		sum.uncovered += s.uncovered
		if s.lat != nil {
			if sum.lat == nil {
				sum.lat = make([]int64, len(s.lat))
			}
			for b, c := range s.lat {
				sum.lat[b] += c
			}
		}
	}
	return sum
}

// latBoundsMs are obs.LatencyBuckets converted to milliseconds.
var latBoundsMs = func() []float64 {
	out := make([]float64, len(obs.LatencyBuckets))
	for i, s := range obs.LatencyBuckets {
		out[i] = s * 1000
	}
	return out
}()

// monitor is the SLO evaluation state.
type monitor struct {
	mu     sync.Mutex
	specs  []SLOSpec
	global *tsRing
	// tables holds per-table audit rings; the "" key aggregates all.
	tables   map[string]*tsRing
	breached map[string]bool
	reg      *obs.Registry
	alerts   *alert.Bus
	rollup   *rollup
}

func newMonitor(specs []SLOSpec, reg *obs.Registry, alerts *alert.Bus) *monitor {
	m := &monitor{
		specs:    append([]SLOSpec(nil), specs...),
		global:   newTSRing(),
		tables:   map[string]*tsRing{},
		breached: map[string]bool{},
		reg:      reg,
		alerts:   alerts,
		rollup:   newRollup(),
	}
	for i := range m.specs {
		if m.specs[i].Objective <= 0 || m.specs[i].Objective >= 1 {
			m.specs[i].Objective = 0.99
		}
	}
	return m
}

// recordQuery folds one finished (or failed) query at unix-second sec.
func (m *monitor) recordQuery(sec int64, totalMs float64, outcome string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bi := sort.SearchFloat64s(latBoundsMs, totalMs)
	for i := range ringRes {
		s := m.global.slotAt(i, sec)
		s.n++
		if outcome == "error" {
			s.errs++
		}
		if s.lat == nil {
			s.lat = make([]int64, len(latBoundsMs)+1)
		}
		s.lat[bi]++
	}
}

func (m *monitor) recordReject(sec int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range ringRes {
		m.global.slotAt(i, sec).rejects++
	}
}

func (m *monitor) recordAudit(sec int64, table string, covered bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, key := range []string{"", table} {
		r, ok := m.tables[key]
		if !ok {
			r = newTSRing()
			m.tables[key] = r
		}
		for i := range ringRes {
			s := r.slotAt(i, sec)
			s.audits++
			if !covered {
				s.uncovered++
			}
		}
		if table == "" {
			break
		}
	}
}

// goodLatency counts window events with latency ≤ thresholdMs using the
// bucket whose bound first reaches the threshold (i.e. the threshold is
// rounded up to a bucket bound; +Inf never counts).
func goodLatency(lat []int64, thresholdMs float64) int64 {
	if lat == nil {
		return 0
	}
	cut := sort.SearchFloat64s(latBoundsMs, thresholdMs)
	if cut < len(latBoundsMs) {
		cut++ // the bucket containing the threshold counts good
	}
	var good int64
	for i := 0; i < cut && i < len(lat); i++ {
		good += lat[i]
	}
	return good
}

// evaluate computes every spec's status at unix-second now, exporting
// gauges and breach transitions to the registry when one is attached and
// raising/resolving burn alerts on the alert bus when one is attached.
func (m *monitor) evaluate(now int64) []SLOStatus {
	m.mu.Lock()
	out := make([]SLOStatus, 0, len(m.specs))
	var began, ended []SLOStatus // breach transitions, alerted outside mu
	for _, spec := range m.specs {
		st := SLOStatus{Spec: spec, GoodFraction: 1}
		w := spec.windowSec()
		switch spec.Kind {
		case SLOCoverage:
			if r, ok := m.tables[spec.Table]; ok {
				sum := r.window(now, w)
				st.Events = sum.audits
				st.Bad = sum.uncovered
			}
		case SLOAvailability:
			sum := m.global.window(now, w)
			st.Events = sum.n + sum.rejects
			st.Bad = sum.errs + sum.rejects
		default: // SLOLatency
			sum := m.global.window(now, w)
			st.Events = sum.n
			st.Bad = sum.n - goodLatency(sum.lat, spec.ThresholdMs)
		}
		budget := 1 - spec.Objective
		if st.Events > 0 {
			bad := float64(st.Bad) / float64(st.Events)
			st.GoodFraction = 1 - bad
			st.BurnRate = bad / budget
		}
		st.BudgetRemaining = 1 - st.BurnRate
		st.Breaching = st.BurnRate > 1
		if math.IsNaN(st.BurnRate) || math.IsInf(st.BurnRate, 0) {
			st.BurnRate, st.BudgetRemaining = 0, 1
		}
		was := m.breached[st.Spec.Name]
		m.exportLocked(st, was)
		m.breached[st.Spec.Name] = st.Breaching
		if st.Breaching && !was {
			began = append(began, st)
		} else if !st.Breaching && was {
			ended = append(ended, st)
		}
		out = append(out, st)
	}
	m.mu.Unlock()
	for _, st := range began {
		sev := alert.SeverityWarning
		if st.BurnRate >= 2 {
			sev = alert.SeverityCritical
		}
		m.alerts.Raise(alert.Alert{
			Source: "slo", Kind: "burn", Key: st.Spec.Name, Severity: sev,
			Observed: st.BurnRate, Expected: 1,
			Message: fmt.Sprintf(
				"SLO %s (%s, objective %.3g): burn rate %.2f over %ds window — error budget consuming faster than the objective allows",
				st.Spec.Name, st.Spec.Kind, st.Spec.Objective, st.BurnRate, st.Spec.windowSec()),
		})
	}
	for _, st := range ended {
		m.alerts.Resolve("slo", "burn", st.Spec.Name)
	}
	return out
}

func (m *monitor) exportLocked(st SLOStatus, was bool) {
	if m.reg == nil {
		return
	}
	name := st.Spec.Name
	m.reg.GaugeFloat("aqp_slo_burn_rate",
		"Error-budget burn rate per SLO (above 1 = breaching).",
		"slo", name).Set(st.BurnRate)
	m.reg.GaugeFloat("aqp_slo_good_fraction",
		"Good-event fraction in the SLO's sliding window.",
		"slo", name).Set(st.GoodFraction)
	breach := int64(0)
	if st.Breaching {
		breach = 1
	}
	m.reg.Gauge("aqp_slo_breaching",
		"1 while the SLO's burn rate exceeds 1.", "slo", name).Set(breach)
	if st.Breaching && !was {
		m.reg.Counter("aqp_slo_breaches_total",
			"Transitions into breach, per SLO.", "slo", name).Inc()
	}
}
