// Package history is the engine's durable telemetry layer: an append-only
// segment log of query, audit and admission records; an online workload
// profiler keyed by (table, sample, aggregate-kind, predicate-signature);
// and a sliding-window SLO monitor with error-budget burn rates. Open
// replays existing segments so profiles, lifetime counters and recent
// coverage windows resume across restarts instead of resetting.
//
// Like the rest of the obs tree, the layer is inert by construction: it
// only reads finished answers and trace snapshots, consumes no engine
// randomness, and swallows its own I/O errors (counted, never raised), so
// answers and error bars are bit-identical with history on or off.
package history

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/alert"
)

// Options configures a Store.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it would exceed
	// this size (0 = 8 MiB).
	MaxSegmentBytes int64
	// FsyncEvery is the durability knob: 1 fsyncs after every record,
	// N > 1 after every Nth record, 0 never fsyncs explicitly (the OS
	// flushes; rotation and Close always sync).
	FsyncEvery int
	// SLOs declares the objectives the monitor evaluates.
	SLOs []SLOSpec
	// Registry, when set, receives aqp_history_* and aqp_slo_* metrics
	// and is the source the time-series rollups sample.
	Registry *obs.Registry
	// SampleInterval is the background tick for registry rollups and SLO
	// evaluation (0 = 1s; negative disables the background goroutine —
	// evaluation then only happens on demand).
	SampleInterval time.Duration
	// ProfileEpsilon is the GK-sketch rank error for profile quantiles
	// (0 = 0.02).
	ProfileEpsilon float64
	// Alerts, when set, receives SLO burn alerts on the unified bus: a
	// spec transitioning into breach raises a (source="slo", kind="burn",
	// key=spec name) episode; leaving breach resolves it.
	Alerts *alert.Bus
}

func (o Options) maxSegmentBytes() int64 {
	if o.MaxSegmentBytes <= 0 {
		return 8 << 20
	}
	return o.MaxSegmentBytes
}

// ReplayStats summarizes the startup replay.
type ReplayStats struct {
	Segments     int     `json:"segments"`
	Records      int64   `json:"records"`
	SkippedTails int     `json:"skipped_tails"`
	Ms           float64 `json:"ms"`
}

// Stats is a point-in-time snapshot of the store, served by /debug/history.
type Stats struct {
	Dir           string `json:"dir"`
	ActiveSegment string `json:"active_segment"`
	Segments      int    `json:"segments"`
	// Records counts appends by kind in this process; Lifetime adds the
	// records replayed at Open, so it survives restarts.
	Records     map[string]int64 `json:"records"`
	Lifetime    map[string]int64 `json:"lifetime"`
	Bytes       int64            `json:"bytes_written"`
	Fsyncs      int64            `json:"fsyncs"`
	WriteErrors int64            `json:"write_errors"`
	LastErr     string           `json:"last_err,omitempty"`
	FsyncEvery  int              `json:"fsync_every"`
	Replay      ReplayStats      `json:"replay"`
}

// Store is the persistent history log plus its in-memory derivations
// (profiler, SLO monitor, rollups). All methods are nil-safe no-ops, so
// callers thread an optional *Store through hot paths unconditionally.
type Store struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File
	seq       int
	segBytes  int64
	segments  int
	sinceSync int
	counts    map[string]int64
	replayed  map[string]int64
	bytes     int64
	fsyncs    int64
	werrs     int64
	lastErr   error
	replay    ReplayStats
	closed    bool

	prof *profiler
	mon  *monitor

	tick chan struct{} // closed to stop the sampler
	done chan struct{} // closed when the sampler exits
}

// Open opens (creating if needed) the history directory, replays every
// existing segment into the profiler and recent-window monitor state, and
// starts a fresh active segment. Replay is fail-soft: a corrupt segment
// tail loses only the records after the tear.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: creating dir: %w", err)
	}
	s := &Store{
		dir:      dir,
		opt:      opt,
		counts:   map[string]int64{},
		replayed: map[string]int64{},
		prof:     newProfiler(opt.ProfileEpsilon),
		mon:      newMonitor(opt.SLOs, opt.Registry, opt.Alerts),
	}
	start := time.Now()
	nowSec := start.Unix()
	maxSeq := -1
	segStats, err := ReplayDir(dir, func(rec *Record) {
		s.replayed[rec.Kind]++
		s.replay.Records++
		s.foldReplayed(rec, nowSec)
	})
	if err != nil {
		return nil, err
	}
	for _, st := range segStats {
		s.replay.Segments++
		if st.TailSkipped {
			s.replay.SkippedTails++
		}
		if seq, ok := segmentSeq(st.Name); ok && seq > maxSeq {
			maxSeq = seq
		}
	}
	s.replay.Ms = float64(time.Since(start)) / float64(time.Millisecond)
	s.segments = len(segStats)
	s.seq = maxSeq + 1
	if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}
	s.registerMetrics()
	if opt.SampleInterval >= 0 {
		s.tick = make(chan struct{})
		s.done = make(chan struct{})
		go s.sampler()
	}
	return s, nil
}

// foldReplayed feeds a replayed record into the in-memory state. Profiles
// and lifetime counters accept any age; the sliding-window monitor only
// sees records still inside its retention, stamped at their recorded
// time, so "coverage over the last N minutes" genuinely survives a quick
// restart.
func (s *Store) foldReplayed(rec *Record, nowSec int64) {
	sec := rec.TS / int64(time.Second)
	inWindow := sec > nowSec-maxRetentionSec && sec <= nowSec
	switch {
	case rec.Query != nil:
		s.prof.foldQuery(rec.Query)
		if inWindow {
			s.mon.recordQuery(sec, rec.Query.TotalMs, rec.Query.Outcome)
		}
	case rec.Audit != nil:
		s.prof.foldAudit(rec.Audit)
		if inWindow {
			s.mon.recordAudit(sec, rec.Audit.Table, rec.Audit.Covered)
		}
	case rec.Reject != nil:
		if inWindow {
			s.mon.recordReject(sec)
		}
	}
}

func (s *Store) openSegmentLocked() error {
	path := filepath.Join(s.dir, segmentName(s.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("history: creating segment: %w", err)
	}
	if err := writeSegmentHeader(f); err != nil {
		f.Close()
		return err
	}
	s.f = f
	s.segBytes = segHeaderLen
	s.segments++
	return nil
}

// AppendQuery records one finished query.
func (s *Store) AppendQuery(q QueryRecord) {
	if s == nil {
		return
	}
	now := time.Now()
	q.sanitize()
	s.prof.foldQuery(&q)
	s.mon.recordQuery(now.Unix(), q.TotalMs, q.Outcome)
	s.append(&Record{Kind: KindQuery, TS: now.UnixNano(), Query: &q})
}

// AppendAudit records one watchdog audit outcome.
func (s *Store) AppendAudit(a AuditRecord) {
	if s == nil {
		return
	}
	now := time.Now()
	a.sanitize()
	s.prof.foldAudit(&a)
	s.mon.recordAudit(now.Unix(), a.Table, a.Covered)
	s.append(&Record{Kind: KindAudit, TS: now.UnixNano(), Audit: &a})
}

// AppendReject records one admission rejection.
func (s *Store) AppendReject(reason string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mon.recordReject(now.Unix())
	s.append(&Record{Kind: KindReject, TS: now.UnixNano(),
		Reject: &RejectRecord{Reason: reason}})
}

// append frames and persists one record. Write failures are counted and
// remembered, never surfaced to the query path: losing telemetry must not
// fail queries.
func (s *Store) append(rec *Record) {
	frame, err := encodeFrame(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.werrs++
		s.lastErr = err
		return
	}
	if s.closed || s.f == nil {
		return
	}
	if s.segBytes+int64(len(frame)) > s.opt.maxSegmentBytes() &&
		s.segBytes > segHeaderLen {
		s.rotateLocked()
	}
	if _, err := s.f.Write(frame); err != nil {
		s.werrs++
		s.lastErr = err
		return
	}
	s.segBytes += int64(len(frame))
	s.bytes += int64(len(frame))
	s.counts[rec.Kind]++
	if s.opt.FsyncEvery > 0 {
		s.sinceSync++
		if s.sinceSync >= s.opt.FsyncEvery {
			if err := s.f.Sync(); err != nil {
				s.werrs++
				s.lastErr = err
			} else {
				s.fsyncs++
			}
			s.sinceSync = 0
		}
	}
	if reg := s.opt.Registry; reg != nil {
		reg.Counter("aqp_history_records_total",
			"History records appended, by kind.", "kind", rec.Kind).Inc()
		reg.Counter("aqp_history_bytes_total",
			"Bytes appended to history segments.").Add(int64(len(frame)))
	}
}

func (s *Store) rotateLocked() {
	if err := s.f.Sync(); err == nil {
		s.fsyncs++
	}
	s.f.Close()
	s.seq++
	s.sinceSync = 0
	if err := s.openSegmentLocked(); err != nil {
		s.werrs++
		s.lastErr = err
		s.f = nil
	}
}

// Sync forces the active segment to stable storage.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.werrs++
		s.lastErr = err
		return err
	}
	s.fsyncs++
	s.sinceSync = 0
	return nil
}

// Close stops the background sampler and syncs and closes the active
// segment. The store is unusable afterwards; appends become no-ops.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tick := s.tick
	done := s.done
	s.mu.Unlock()
	if tick != nil {
		close(tick)
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// sampler is the background tick: registry rollups plus SLO evaluation.
func (s *Store) sampler() {
	defer close(s.done)
	iv := s.opt.SampleInterval
	if iv == 0 {
		iv = time.Second
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-s.tick:
			return
		case now := <-t.C:
			sec := now.Unix()
			s.mon.rollup.sample(sec, s.opt.Registry)
			s.mon.evaluate(sec)
		}
	}
}

func (s *Store) registerMetrics() {
	reg := s.opt.Registry
	if reg == nil {
		return
	}
	reg.Counter("aqp_history_replayed_records_total",
		"Records recovered from segments at startup.").Add(s.replay.Records)
	reg.Counter("aqp_history_replay_skipped_tails_total",
		"Segments whose corrupt tail was skipped during replay.").
		Add(int64(s.replay.SkippedTails))
}

// Profile returns the profile for one key.
func (s *Store) Profile(k Key) (Profile, bool) {
	if s == nil {
		return Profile{}, false
	}
	return s.prof.profile(k)
}

// Profiles returns every workload profile, busiest first.
func (s *Store) Profiles() []Profile {
	if s == nil {
		return nil
	}
	return s.prof.snapshot()
}

// SLOStatuses evaluates every declared SLO now.
func (s *Store) SLOStatuses() []SLOStatus {
	if s == nil {
		return nil
	}
	return s.mon.evaluate(time.Now().Unix())
}

// Rates returns windowed deltas of every rolled-up metric series.
func (s *Store) Rates(windowSec int) []SeriesRate {
	if s == nil {
		return nil
	}
	return s.mon.rollup.rates(time.Now().Unix(), int64(windowSec))
}

// Replay folds every record under path — a single segment file or a
// directory of segments — into workload profiles without opening a
// store, so operators can inspect the telemetry of a dead process.
func Replay(path string) ([]Profile, []SegmentStats, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	prof := newProfiler(0)
	fold := func(rec *Record) {
		switch {
		case rec.Query != nil:
			prof.foldQuery(rec.Query)
		case rec.Audit != nil:
			prof.foldAudit(rec.Audit)
		}
	}
	var stats []SegmentStats
	if info.IsDir() {
		stats, err = ReplayDir(path, fold)
	} else {
		var st SegmentStats
		st, err = ReplaySegment(path, fold)
		stats = []SegmentStats{st}
	}
	if err != nil {
		return nil, nil, err
	}
	return prof.snapshot(), stats, nil
}

// Stats snapshots the store's bookkeeping.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:           s.dir,
		ActiveSegment: segmentName(s.seq),
		Segments:      s.segments,
		Records:       map[string]int64{},
		Lifetime:      map[string]int64{},
		Bytes:         s.bytes,
		Fsyncs:        s.fsyncs,
		WriteErrors:   s.werrs,
		FsyncEvery:    s.opt.FsyncEvery,
		Replay:        s.replay,
	}
	for k, v := range s.counts {
		st.Records[k] = v
		st.Lifetime[k] += v
	}
	for k, v := range s.replayed {
		st.Lifetime[k] += v
	}
	if s.lastErr != nil {
		st.LastErr = s.lastErr.Error()
	}
	return st
}
