package history

import "math"

// Record kinds. Every record in a segment is exactly one of these.
const (
	KindQuery  = "query"  // one finished query (core.finishQuery)
	KindAudit  = "audit"  // one watchdog ground-truth comparison
	KindReject = "reject" // one admission-layer rejection (never executed)
)

// Record is the unit of the history log: a kind tag, a wall-clock
// timestamp, and exactly one populated payload. All float fields are
// sanitized to finite values before appending because the payload is
// JSON — NaN half-widths become the -1 "undefined" sentinel (RelErr) or
// zero (everything else).
type Record struct {
	Kind string `json:"kind"`
	// TS is the record's wall-clock time in Unix nanoseconds.
	TS     int64         `json:"ts"`
	Query  *QueryRecord  `json:"query,omitempty"`
	Audit  *AuditRecord  `json:"audit,omitempty"`
	Reject *RejectRecord `json:"reject,omitempty"`
}

// QueryRecord is the durable residue of one finished query: identity,
// plan shape (table, sample, canonical predicate), outcome, latency
// breakdown, and per-aggregate error behaviour — everything the workload
// profiler and a future constraint planner need, nothing more (group
// values and estimates stay in the event log; the history store is about
// shapes, not answers).
type QueryRecord struct {
	QID uint64 `json:"qid"`
	// TraceID is the query's distributed-trace id (32 hex chars, "" when
	// tracing is off) — the join key back to the span ring, event log and
	// any exported OTLP spans.
	TraceID     string             `json:"trace_id,omitempty"`
	SQL         string             `json:"sql"`
	Table       string             `json:"table,omitempty"`
	Sample      string             `json:"sample,omitempty"`    // sample row count, or "exact"
	Predicate   string             `json:"predicate,omitempty"` // canonical predicate signature
	Outcome     string             `json:"outcome"`             // "ok" | "cancelled" | "error"
	TotalMs     float64            `json:"total_ms"`
	QueueWaitMs float64            `json:"queue_wait_ms,omitempty"`
	StagesMs    map[string]float64 `json:"stages_ms,omitempty"`
	// Selectivity is rows passing the predicate over rows inspected
	// (-1 when the query scanned nothing).
	Selectivity float64 `json:"selectivity"`
	// SampleFraction is sample rows over population rows (1 for exact
	// execution, 0 when the population size is unknown).
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	// KBudget is the bootstrap replicate budget the plan allowed; KUsed is
	// the largest replicate count the adaptive stopping rule actually ran.
	KBudget    int         `json:"k_budget,omitempty"`
	KUsed      int         `json:"k_used,omitempty"`
	SharedScan bool        `json:"shared_scan,omitempty"`
	FellBack   bool        `json:"fell_back,omitempty"`
	Aggs       []AggSample `json:"aggs,omitempty"`
}

// AggSample is one aggregate's error outcome inside a QueryRecord.
type AggSample struct {
	// Kind is the aggregate kind ("AVG", "SUM", ..., or the UDF name).
	Kind string `json:"kind"`
	// RelErr is the half-width over |estimate| (-1 when undefined: exact
	// answers and zero-centered estimates).
	RelErr    float64 `json:"rel_err"`
	Technique string  `json:"technique,omitempty"`
	Rejected  bool    `json:"rejected,omitempty"`
	Exact     bool    `json:"exact,omitempty"`
}

// AuditRecord is one audited aggregate: the watchdog re-ran the query
// exactly and compared the approximate CI against ground truth.
type AuditRecord struct {
	QID uint64 `json:"qid"`
	// TraceID joins the audit back to the audited query's trace.
	TraceID   string `json:"trace_id,omitempty"`
	Table     string `json:"table,omitempty"`
	Sample    string `json:"sample,omitempty"`
	Predicate string `json:"predicate,omitempty"`
	// Kind is the aggregate kind; Agg the full label (e.g. "AVG(Time)").
	Kind    string  `json:"kind"`
	Agg     string  `json:"agg"`
	Group   string  `json:"group,omitempty"`
	Covered bool    `json:"covered"`
	Truth   float64 `json:"truth"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

// RejectRecord is one admission rejection: the query never reached the
// engine, so no QueryRecord exists — but availability SLOs must still see
// it.
type RejectRecord struct {
	Reason string `json:"reason"`
}

// finite clamps non-finite floats to zero so records always JSON-encode.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// finiteRel maps a non-finite relative error to the -1 sentinel.
func finiteRel(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return -1
	}
	return v
}

func (q *QueryRecord) sanitize() {
	q.TotalMs = finite(q.TotalMs)
	q.QueueWaitMs = finite(q.QueueWaitMs)
	q.Selectivity = finite(q.Selectivity)
	q.SampleFraction = finite(q.SampleFraction)
	for k, v := range q.StagesMs {
		q.StagesMs[k] = finite(v)
	}
	for i := range q.Aggs {
		q.Aggs[i].RelErr = finiteRel(q.Aggs[i].RelErr)
	}
}

func (a *AuditRecord) sanitize() {
	a.Truth = finite(a.Truth)
	a.Lo = finite(a.Lo)
	a.Hi = finite(a.Hi)
}
