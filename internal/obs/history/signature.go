package history

// Predicate-signature canonicalization. Two WHERE clauses that differ only
// in their literal constants describe the same predicate *shape* — the
// thing whose selectivity distribution is worth learning. The signature
// replaces every literal with "?", lower-cases column names, and renders
// the rest structurally, so
//
//	WHERE Time > 100 AND Browser = 'chrome'
//	WHERE Time > 250 AND Browser = 'safari'
//
// both canonicalize to ((time > ?) AND (browser = ?)) and share a profile
// key. The rendering deliberately does NOT sort commutative operands or
// normalize flipped comparisons: the parser already fixes an
// association order, and collapsing semantically-equal-but-differently-
// written predicates would hide real workload structure (clients that
// phrase a filter differently are different clients).

import (
	"strings"

	"repro/internal/sql"
)

// NoPredicate is the signature of a query without a WHERE clause.
const NoPredicate = "true"

// PredicateSignature canonicalizes a predicate expression: literals
// become "?", column names lower-case, structure preserved. A nil
// expression (no WHERE clause) yields NoPredicate.
func PredicateSignature(e sql.Expr) string {
	if e == nil {
		return NoPredicate
	}
	var b strings.Builder
	signExpr(&b, e)
	return b.String()
}

func signExpr(b *strings.Builder, e sql.Expr) {
	switch n := e.(type) {
	case nil:
		b.WriteString(NoPredicate)
	case *sql.Literal:
		b.WriteByte('?')
	case *sql.ColumnRef:
		b.WriteString(strings.ToLower(n.Name))
	case *sql.Star:
		b.WriteByte('*')
	case *sql.Binary:
		b.WriteByte('(')
		signExpr(b, n.L)
		b.WriteByte(' ')
		b.WriteString(n.Op)
		b.WriteByte(' ')
		signExpr(b, n.R)
		b.WriteByte(')')
	case *sql.Unary:
		b.WriteByte('(')
		b.WriteString(n.Op)
		b.WriteByte(' ')
		signExpr(b, n.E)
		b.WriteByte(')')
	case *sql.FuncCall:
		b.WriteString(strings.ToUpper(n.Name))
		b.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			signExpr(b, a)
		}
		b.WriteByte(')')
	default:
		// Future node types degrade to their SQL rendering rather than
		// silently merging into one bucket.
		b.WriteString(e.String())
	}
}
