package history

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sql"
)

func testQueryRecord(qid uint64, sel float64) QueryRecord {
	return QueryRecord{
		QID:            qid,
		SQL:            "SELECT AVG(X) FROM T WHERE X < 10",
		Table:          "T",
		Sample:         "1000",
		Predicate:      "(x < ?)",
		Outcome:        "ok",
		TotalMs:        2.5,
		StagesMs:       map[string]float64{"scan": 1.5, "estimate": 0.5},
		Selectivity:    sel,
		SampleFraction: 0.1,
		KBudget:        100,
		KUsed:          40,
		Aggs:           []AggSample{{Kind: "AVG", RelErr: 0.02, Technique: "closed-form"}},
	}
}

func testKey() Key {
	return Key{Table: "T", Sample: "1000", Agg: "AVG", Predicate: "(x < ?)"}
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SampleInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.AppendQuery(testQueryRecord(1, 0.5))
	s.AppendAudit(AuditRecord{QID: 1, Table: "T", Sample: "1000",
		Predicate: "(x < ?)", Kind: "AVG", Agg: "AVG(X)",
		Covered: true, Truth: 5, Lo: 4, Hi: 6})
	s.AppendReject("queue_full")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	segs, err := ReplayDir(dir, func(rec *Record) {
		kinds = append(kinds, rec.Kind)
		if rec.TS <= 0 {
			t.Errorf("record %q has no timestamp", rec.Kind)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].TailSkipped {
		t.Fatalf("segments = %+v, want one clean segment", segs)
	}
	want := []string{KindQuery, KindAudit, KindReject}
	if len(kinds) != len(want) {
		t.Fatalf("replayed %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("replayed %v, want %v", kinds, want)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 2048, SampleInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		s.AppendQuery(testQueryRecord(uint64(i), 0.5))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	segs, err := ReplayDir(dir, func(*Record) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("%d records in %d segment(s), want rotation under a 2KiB cap",
			n, len(segs))
	}
	if count != n {
		t.Fatalf("replayed %d records across rotated segments, want %d", count, n)
	}
}

// TestCorruptTailSkipped pins the fail-soft contract: a torn or corrupted
// segment tail loses only the records after the tear — replay keeps the
// prefix and reports the skip instead of failing the open.
func TestCorruptTailSkipped(t *testing.T) {
	write := func(t *testing.T) (dir, seg string, records int) {
		dir = t.TempDir()
		s, err := Open(dir, Options{SampleInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			s.AppendQuery(testQueryRecord(uint64(i), 0.5))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, filepath.Join(dir, segmentName(0)), 10
	}

	t.Run("truncated", func(t *testing.T) {
		_, seg, n := write(t)
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, st.Size()-5); err != nil {
			t.Fatal(err)
		}
		stats, err := ReplaySegment(seg, func(*Record) {})
		if err != nil {
			t.Fatalf("truncated tail failed the replay: %v", err)
		}
		if !stats.TailSkipped || stats.Records != int(n-1) {
			t.Fatalf("replay = %+v, want %d records with tail skipped", stats, n-1)
		}
	})

	t.Run("corrupt-crc", func(t *testing.T) {
		_, seg, n := write(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF // flip a payload byte of the last record
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		stats, err := ReplaySegment(seg, func(*Record) {})
		if err != nil {
			t.Fatalf("corrupt tail failed the replay: %v", err)
		}
		if !stats.TailSkipped || stats.Records != int(n-1) {
			t.Fatalf("replay = %+v, want %d records with tail skipped", stats, n-1)
		}
	})

	t.Run("garbage-appended", func(t *testing.T) {
		dir, seg, n := write(t)
		f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("\x99\x99garbage after the last frame")); err != nil {
			t.Fatal(err)
		}
		f.Close()
		// The whole-store open must also survive it.
		s, err := Open(dir, Options{SampleInterval: -1})
		if err != nil {
			t.Fatalf("Open over corrupt tail: %v", err)
		}
		defer s.Close()
		st := s.Stats()
		if st.Replay.Records != int64(n) || st.Replay.SkippedTails != 1 {
			t.Fatalf("replay stats = %+v, want %d records and 1 skipped tail",
				st.Replay, n)
		}
	})
}

// TestKillAndReopen simulates a crash: the first store is abandoned
// without Close after a sync point, and a fresh Open must resume profiles,
// lifetime counters, and coverage with no record loss before the fsync.
func TestKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{FsyncEvery: 1, SampleInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		s1.AppendQuery(testQueryRecord(uint64(i), 0.3))
	}
	for i := 0; i < 4; i++ {
		s1.AppendAudit(AuditRecord{QID: uint64(i), Table: "T", Sample: "1000",
			Predicate: "(x < ?)", Kind: "AVG", Agg: "AVG(X)",
			Covered: i != 0, Truth: 5, Lo: 4, Hi: 6})
	}
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "dies" here. (The leaked descriptor is
	// harmless to the test; a dead process would have dropped it.)

	s2, err := Open(dir, Options{SampleInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Replay.Records; got != n+4 {
		t.Fatalf("replayed %d records, want %d (no loss before the fsync point)",
			got, n+4)
	}
	prof, ok := s2.Profile(testKey())
	if !ok {
		t.Fatal("profile did not survive the restart")
	}
	if prof.Queries != n {
		t.Fatalf("resumed profile has %d queries, want %d", prof.Queries, n)
	}
	if prof.Selectivity.N != n || math.Abs(prof.Selectivity.Mean-0.3) > 1e-9 {
		t.Fatalf("resumed selectivity dist = %+v, want n=%d mean=0.3",
			prof.Selectivity, n)
	}
	if prof.Audits != 4 || prof.Covered != 3 {
		t.Fatalf("resumed audits = %d covered = %d, want 4/3",
			prof.Audits, prof.Covered)
	}
	if math.Abs(prof.Coverage-0.75) > 1e-9 {
		t.Fatalf("resumed coverage = %v, want 0.75", prof.Coverage)
	}
	// A second restart must still see everything, including the records
	// that the second run's lifetime counters attribute to replay.
	lt := s2.Stats().Lifetime
	if lt[KindQuery] != n || lt[KindAudit] != 4 {
		t.Fatalf("lifetime = %v, want %d queries and 4 audits", lt, n)
	}
}

func TestProfilerFold(t *testing.T) {
	p := newProfiler(0)
	sels := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	for i, sel := range sels {
		q := testQueryRecord(uint64(i), sel)
		q.FellBack = i == 0
		p.foldQuery(&q)
	}
	// Non-ok and table-less records must not fold.
	bad := testQueryRecord(99, 0.9)
	bad.Outcome = "error"
	p.foldQuery(&bad)
	anon := testQueryRecord(100, 0.9)
	anon.Table = ""
	p.foldQuery(&anon)

	prof, ok := p.profile(testKey())
	if !ok {
		t.Fatal("profile missing after folds")
	}
	if prof.Queries != int64(len(sels)) {
		t.Fatalf("queries = %d, want %d", prof.Queries, len(sels))
	}
	if math.Abs(prof.Selectivity.Mean-0.3) > 1e-9 {
		t.Fatalf("selectivity mean = %v, want 0.3", prof.Selectivity.Mean)
	}
	if prof.Selectivity.P50 < 0.2 || prof.Selectivity.P50 > 0.4 {
		t.Fatalf("selectivity p50 = %v, want within [0.2, 0.4]", prof.Selectivity.P50)
	}
	if math.Abs(prof.KUsedMean-40) > 1e-9 || prof.KUsedMax != 40 {
		t.Fatalf("k used mean/max = %v/%d, want 40/40", prof.KUsedMean, prof.KUsedMax)
	}
	if math.Abs(prof.SampleFraction-0.1) > 1e-9 {
		t.Fatalf("sample fraction = %v, want 0.1", prof.SampleFraction)
	}
	if prof.FellBack != 1 {
		t.Fatalf("fell back = %d, want 1", prof.FellBack)
	}
	if prof.Techniques["closed-form"] != int64(len(sels)) {
		t.Fatalf("techniques = %v, want closed-form=%d", prof.Techniques, len(sels))
	}
	if d, ok := prof.StagesMs["scan"]; !ok || d.N != int64(len(sels)) {
		t.Fatalf("scan stage dist = %+v, want %d observations", prof.StagesMs, len(sels))
	}
	if len(p.accs) != 1 {
		t.Fatalf("%d profile keys, want 1 (bad records must not fold)", len(p.accs))
	}
}

func TestSLOMonitorMath(t *testing.T) {
	specs := []SLOSpec{
		{Name: "lat", Kind: SLOLatency, Objective: 0.9, ThresholdMs: 100, WindowSec: 60},
		{Name: "cov", Kind: SLOCoverage, Objective: 0.93, Table: "T", WindowSec: 60},
		{Name: "avail", Kind: SLOAvailability, Objective: 0.99, WindowSec: 60},
	}
	m := newMonitor(specs, nil, nil)
	now := int64(100000)
	for i := 0; i < 8; i++ {
		m.recordQuery(now, 10, "ok") // fast and good
	}
	m.recordQuery(now, 500, "error") // slow and bad
	m.recordQuery(now, 500, "error")
	m.recordReject(now)
	m.recordReject(now)
	for i := 0; i < 8; i++ {
		m.recordAudit(now, "T", i < 6) // 6 covered, 2 not
	}

	byName := map[string]SLOStatus{}
	for _, st := range m.evaluate(now + 1) {
		byName[st.Spec.Name] = st
	}

	lat := byName["lat"]
	if lat.Events != 10 || lat.Bad != 2 {
		t.Fatalf("latency events/bad = %d/%d, want 10/2", lat.Events, lat.Bad)
	}
	// bad fraction 0.2 against a 0.1 budget: burn 2, breaching.
	if math.Abs(lat.BurnRate-2) > 1e-9 || !lat.Breaching {
		t.Fatalf("latency burn = %v breaching = %v, want 2/true",
			lat.BurnRate, lat.Breaching)
	}

	cov := byName["cov"]
	if cov.Events != 8 || cov.Bad != 2 {
		t.Fatalf("coverage events/bad = %d/%d, want 8/2", cov.Events, cov.Bad)
	}
	wantBurn := 0.25 / 0.07
	if math.Abs(cov.BurnRate-wantBurn) > 1e-6 || !cov.Breaching {
		t.Fatalf("coverage burn = %v, want %v", cov.BurnRate, wantBurn)
	}

	av := byName["avail"]
	// 10 finished + 2 rejected events; 2 errors + 2 rejects bad.
	if av.Events != 12 || av.Bad != 4 {
		t.Fatalf("availability events/bad = %d/%d, want 12/4", av.Events, av.Bad)
	}
	if !av.Breaching {
		t.Fatal("availability not breaching at 1/3 bad against a 1% budget")
	}

	// An idle window burns nothing.
	for _, st := range m.evaluate(now + 10000) {
		if st.Events != 0 || st.BurnRate != 0 || st.Breaching {
			t.Fatalf("idle window status = %+v, want zero burn", st)
		}
		if st.GoodFraction != 1 {
			t.Fatalf("idle good fraction = %v, want 1", st.GoodFraction)
		}
	}
}

// TestSLOWindowResolution pins the multi-resolution ring: an event 500s
// in the past is outside a 60s window (1s ring) but inside a 600s window
// (10s ring).
func TestSLOWindowResolution(t *testing.T) {
	m := newMonitor([]SLOSpec{
		{Name: "short", Kind: SLOLatency, Objective: 0.5, ThresholdMs: 1, WindowSec: 60},
		{Name: "long", Kind: SLOLatency, Objective: 0.5, ThresholdMs: 1, WindowSec: 600},
	}, nil, nil)
	now := int64(200000)
	m.recordQuery(now-500, 50, "ok")
	byName := map[string]SLOStatus{}
	for _, st := range m.evaluate(now) {
		byName[st.Spec.Name] = st
	}
	if byName["short"].Events != 0 {
		t.Fatalf("60s window saw %d events, want 0", byName["short"].Events)
	}
	if byName["long"].Events != 1 {
		t.Fatalf("600s window saw %d events, want 1", byName["long"].Events)
	}
}

func TestPredicateSignature(t *testing.T) {
	cases := []struct {
		expr sql.Expr
		want string
	}{
		{nil, NoPredicate},
		{
			&sql.Binary{Op: "=",
				L: &sql.ColumnRef{Name: "City"},
				R: &sql.Literal{Str: "NYC", IsStr: true}},
			"(city = ?)",
		},
		{
			&sql.Binary{Op: "AND",
				L: &sql.Binary{Op: ">",
					L: &sql.ColumnRef{Name: "Time"},
					R: &sql.Literal{Num: 100}},
				R: &sql.Binary{Op: "=",
					L: &sql.ColumnRef{Name: "Browser"},
					R: &sql.Literal{Str: "chrome", IsStr: true}}},
			"((time > ?) AND (browser = ?))",
		},
		{
			&sql.Unary{Op: "NOT", E: &sql.ColumnRef{Name: "Flag"}},
			"(NOT flag)",
		},
		{
			&sql.FuncCall{Name: "ABS", Args: []sql.Expr{&sql.ColumnRef{Name: "X"}}},
			"ABS(x)",
		},
	}
	for _, c := range cases {
		if got := PredicateSignature(c.expr); got != c.want {
			t.Errorf("signature = %q, want %q", got, c.want)
		}
	}
	// Literal-only difference must collapse to one signature.
	a := &sql.Binary{Op: ">", L: &sql.ColumnRef{Name: "T"}, R: &sql.Literal{Num: 1}}
	b := &sql.Binary{Op: ">", L: &sql.ColumnRef{Name: "t"}, R: &sql.Literal{Num: 999}}
	if PredicateSignature(a) != PredicateSignature(b) {
		t.Error("predicates differing only in literals got distinct signatures")
	}
}

// TestStoreWriteErrorsAreSwallowed pins the inertness contract on the I/O
// path: append failures are counted, never raised.
func TestStoreWriteErrorsAreSwallowed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SampleInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.f.Close() // sabotage the active segment
	s.mu.Unlock()
	s.AppendQuery(testQueryRecord(1, 0.5)) // must not panic or error out
	st := s.Stats()
	if st.WriteErrors == 0 || st.LastErr == "" {
		t.Fatalf("stats = %+v, want the write failure counted", st)
	}
	// The in-memory fold still happened: telemetry degrades, profiles don't.
	if _, ok := s.Profile(testKey()); !ok {
		t.Fatal("profile fold skipped on write error")
	}
	s.mu.Lock()
	s.f = nil // avoid double-close in Close
	s.mu.Unlock()
	s.Close()
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.AppendQuery(QueryRecord{})
	s.AppendAudit(AuditRecord{})
	s.AppendReject("x")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Profiles() != nil || s.SLOStatuses() != nil || s.Rates(60) != nil {
		t.Fatal("nil store returned data")
	}
	if _, ok := s.Profile(Key{}); ok {
		t.Fatal("nil store returned a profile")
	}
	if st := s.Stats(); st.Records != nil {
		t.Fatal("nil store returned stats")
	}
}

// TestReplayRecentWindowResumes pins replay's monitor contract: records
// inside the retention window land in the rings at their recorded time,
// older ones only in the profiles.
func TestReplayRecentWindowResumes(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{
		SampleInterval: -1,
		SLOs: []SLOSpec{
			{Name: "lat", Kind: SLOLatency, Objective: 0.5,
				ThresholdMs: 1000, WindowSec: maxRetentionSec},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.AppendQuery(testQueryRecord(1, 0.5))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{
		SampleInterval: -1,
		SLOs: []SLOSpec{
			{Name: "lat", Kind: SLOLatency, Objective: 0.5,
				ThresholdMs: 1000, WindowSec: maxRetentionSec},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sts := s2.SLOStatuses()
	if len(sts) != 1 || sts[0].Events != 1 {
		t.Fatalf("post-restart SLO window = %+v, want the replayed event", sts)
	}
}
