package history

// The online workload profiler. Every finished query folds into one
// profile per (table, sample, aggregate-kind, predicate-signature) key;
// every watchdog audit folds its coverage outcome into the same key.
// Profiles are exactly the priors a constraint planner needs: "for AVG
// over Sessions' 1%-sample with predicate shape (time > ?), selectivity
// is ~0.3 (p99 0.5), relative CI width ~1.2% at sample fraction 0.01,
// the adaptive bootstrap stops after ~40 replicates, and audited coverage
// is 94%". Distributions are tracked as mean + Greenwald–Khanna sketch
// quantiles, so memory per profile is bounded regardless of query count.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Key identifies one workload profile.
type Key struct {
	Table string `json:"table"`
	// Sample is the sample-size label ("exact" or the row count).
	Sample string `json:"sample"`
	// Agg is the aggregate kind ("AVG", "SUM", ..., or a UDF name).
	Agg string `json:"agg"`
	// Predicate is the canonical predicate signature.
	Predicate string `json:"predicate"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%s", k.Table, k.Sample, k.Agg, k.Predicate)
}

// Dist summarizes one tracked distribution: observation count, mean, and
// GK-sketch quantiles (each within the sketch's rank guarantee).
type Dist struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// Profile is the exported snapshot of one profile key.
type Profile struct {
	Key     Key   `json:"key"`
	Queries int64 `json:"queries"`
	// Selectivity is the observed fraction of inspected rows passing the
	// predicate.
	Selectivity Dist `json:"selectivity"`
	// RelWidth is the relative CI half-width of this aggregate kind's
	// estimates (undefined-rel-err aggregates excluded).
	RelWidth Dist `json:"rel_width"`
	// SampleFraction is the mean sample-rows/population-rows ratio, the
	// x-axis against which RelWidth is the y.
	SampleFraction float64 `json:"sample_fraction"`
	// KBudgetMean/KUsedMean/KUsedMax track the bootstrap replicate budget
	// versus what the adaptive stopping rule actually needed.
	KBudgetMean float64 `json:"k_budget_mean"`
	KUsedMean   float64 `json:"k_used_mean"`
	KUsedMax    int     `json:"k_used_max"`
	// StagesMs is the per-stage latency distribution in milliseconds.
	StagesMs map[string]Dist `json:"stages_ms,omitempty"`
	// Audits/Covered/Coverage are the watchdog's ground-truth verdicts for
	// this key; Coverage is 0 until the first audit lands.
	Audits   int64   `json:"audits"`
	Covered  int64   `json:"covered"`
	Coverage float64 `json:"coverage"`
	// Rejected counts aggregates the runtime diagnostic rejected; FellBack
	// counts queries that fell back to exact execution.
	Rejected   int64            `json:"rejected"`
	FellBack   int64            `json:"fell_back"`
	SharedScan int64            `json:"shared_scan"`
	Techniques map[string]int64 `json:"techniques,omitempty"`
}

// distAcc accumulates one distribution online.
type distAcc struct {
	n   int64
	sum float64
	gk  *stats.GKSketch
}

func newDistAcc(eps float64) *distAcc {
	return &distAcc{gk: stats.NewGKSketch(eps)}
}

func (d *distAcc) add(v float64) {
	d.n++
	d.sum += v
	d.gk.Add(v)
}

func (d *distAcc) snapshot() Dist {
	if d == nil || d.n == 0 {
		return Dist{}
	}
	return Dist{
		N:    d.n,
		Mean: d.sum / float64(d.n),
		P50:  d.gk.Quantile(0.50),
		P90:  d.gk.Quantile(0.90),
		P99:  d.gk.Quantile(0.99),
	}
}

// profAcc is the mutable per-key state behind a Profile.
type profAcc struct {
	queries    int64
	sel        *distAcc
	rel        *distAcc
	fracSum    float64
	fracN      int64
	kBudgetSum int64
	kUsedSum   int64
	kUsedN     int64
	kUsedMax   int
	stages     map[string]*distAcc
	audits     int64
	covered    int64
	rejected   int64
	fellBack   int64
	shared     int64
	techniques map[string]int64
}

// profiler folds records into keyed profiles. It has its own lock so the
// HTTP surfaces never contend with the store's write path beyond a map
// read.
type profiler struct {
	mu   sync.Mutex
	eps  float64
	accs map[Key]*profAcc
}

func newProfiler(eps float64) *profiler {
	if eps <= 0 || eps >= 1 {
		eps = 0.02
	}
	return &profiler{eps: eps, accs: map[Key]*profAcc{}}
}

func (p *profiler) acc(k Key) *profAcc {
	a, ok := p.accs[k]
	if !ok {
		a = &profAcc{
			sel:        newDistAcc(p.eps),
			rel:        newDistAcc(p.eps),
			stages:     map[string]*distAcc{},
			techniques: map[string]int64{},
		}
		p.accs[k] = a
	}
	return a
}

// foldQuery folds one finished query. Queries with several aggregate
// kinds contribute to several keys: query-level facts (selectivity,
// stage latencies, sample fraction, K) fold once per distinct kind,
// aggregate-level facts once per aggregate.
func (p *profiler) foldQuery(q *QueryRecord) {
	if q.Outcome != "ok" || q.Table == "" {
		return // failed queries carry no calibrated shape to learn from
	}
	byKind := map[string][]*AggSample{}
	order := []string{}
	for i := range q.Aggs {
		a := &q.Aggs[i]
		if _, ok := byKind[a.Kind]; !ok {
			order = append(order, a.Kind)
		}
		byKind[a.Kind] = append(byKind[a.Kind], a)
	}
	if len(order) == 0 {
		order = append(order, "")
		byKind[""] = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, kind := range order {
		acc := p.acc(Key{Table: q.Table, Sample: q.Sample, Agg: kind,
			Predicate: q.Predicate})
		acc.queries++
		if q.Selectivity >= 0 {
			acc.sel.add(q.Selectivity)
		}
		if q.SampleFraction > 0 {
			acc.fracSum += q.SampleFraction
			acc.fracN++
		}
		if q.KBudget > 0 {
			acc.kBudgetSum += int64(q.KBudget)
		}
		if q.KUsed > 0 {
			acc.kUsedSum += int64(q.KUsed)
			acc.kUsedN++
			if q.KUsed > acc.kUsedMax {
				acc.kUsedMax = q.KUsed
			}
		}
		for stage, ms := range q.StagesMs {
			d, ok := acc.stages[stage]
			if !ok {
				d = newDistAcc(p.eps)
				acc.stages[stage] = d
			}
			d.add(ms)
		}
		if q.FellBack {
			acc.fellBack++
		}
		if q.SharedScan {
			acc.shared++
		}
		for _, a := range byKind[kind] {
			if a.RelErr >= 0 {
				acc.rel.add(a.RelErr)
			}
			if a.Technique != "" {
				acc.techniques[a.Technique]++
			}
			if a.Rejected {
				acc.rejected++
			}
		}
	}
}

// foldAudit folds one watchdog audit outcome.
func (p *profiler) foldAudit(a *AuditRecord) {
	if a.Table == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	acc := p.acc(Key{Table: a.Table, Sample: a.Sample, Agg: a.Kind,
		Predicate: a.Predicate})
	acc.audits++
	if a.Covered {
		acc.covered++
	}
}

func (a *profAcc) snapshot(k Key) Profile {
	pr := Profile{
		Key:         k,
		Queries:     a.queries,
		Selectivity: a.sel.snapshot(),
		RelWidth:    a.rel.snapshot(),
		KUsedMax:    a.kUsedMax,
		Audits:      a.audits,
		Covered:     a.covered,
		Rejected:    a.rejected,
		FellBack:    a.fellBack,
		SharedScan:  a.shared,
	}
	if a.fracN > 0 {
		pr.SampleFraction = a.fracSum / float64(a.fracN)
	}
	if a.queries > 0 {
		pr.KBudgetMean = float64(a.kBudgetSum) / float64(a.queries)
	}
	if a.kUsedN > 0 {
		pr.KUsedMean = float64(a.kUsedSum) / float64(a.kUsedN)
	}
	if a.audits > 0 {
		pr.Coverage = float64(a.covered) / float64(a.audits)
	}
	if len(a.stages) > 0 {
		pr.StagesMs = make(map[string]Dist, len(a.stages))
		for s, d := range a.stages {
			pr.StagesMs[s] = d.snapshot()
		}
	}
	if len(a.techniques) > 0 {
		pr.Techniques = make(map[string]int64, len(a.techniques))
		for t, n := range a.techniques {
			pr.Techniques[t] = n
		}
	}
	return pr
}

// snapshot returns every profile, busiest first (ties broken by key so
// the ordering is deterministic).
func (p *profiler) snapshot() []Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Profile, 0, len(p.accs))
	for k, a := range p.accs {
		out = append(out, a.snapshot(k))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queries != out[j].Queries {
			return out[i].Queries > out[j].Queries
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

func (p *profiler) profile(k Key) (Profile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.accs[k]
	if !ok {
		return Profile{}, false
	}
	return a.snapshot(k), true
}

// FormatWorkload renders profiles as the text table shown by aqpshell's
// \profile command and -history mode — the same data /debug/workload
// serves as JSON.
func FormatWorkload(profiles []Profile) string {
	if len(profiles) == 0 {
		return "no profiles (no finished queries recorded)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %8s %8s %9s %8s %7s %9s\n",
		"profile (table/sample/agg/predicate)", "queries", "sel.p50",
		"relw.p50", "k.used", "audits", "coverage")
	for _, p := range profiles {
		cov := "-"
		if p.Audits > 0 {
			cov = fmt.Sprintf("%.1f%%", 100*p.Coverage)
		}
		fmt.Fprintf(&b, "%-52s %8d %8.4f %9.5f %8.1f %7d %9s\n",
			truncKey(p.Key.String(), 52), p.Queries, p.Selectivity.P50,
			p.RelWidth.P50, p.KUsedMean, p.Audits, cov)
		if p.Rejected > 0 || p.FellBack > 0 {
			fmt.Fprintf(&b, "%-52s %8s rejected=%d fell_back=%d\n",
				"", "", p.Rejected, p.FellBack)
		}
	}
	return b.String()
}

func truncKey(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
