package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// emitOne round-trips a single event through a fresh log and returns the
// decoded record.
func emitOne(t *testing.T, opt EventLogOptions, ev QueryEvent) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	NewEventLog(&buf, opt).Emit(ev)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("event is not one JSON line: %v\n%s", err, buf.String())
	}
	return rec
}

func TestEventLogJSONRoundTrip(t *testing.T) {
	ev := QueryEvent{
		Trace: TraceSnapshot{
			ID: 7, SQL: "SELECT AVG(x) FROM t", Outcome: "ok",
			TotalMs: 12.5, QueueWaitMs: 3.25,
			Spans: []SpanSnapshot{
				{Stage: "scan", Ms: 8},
				{Stage: "estimate", Ms: 2},
				{Stage: "estimate", Ms: 1}, // repeated stages accumulate
			},
		},
		SampleRows: 1000, BootstrapK: 100, FellBack: true,
		Aggs: []AggEvent{{
			Name: "avg(x)", Estimate: 5, Lo: 4, Hi: 6, RelErr: 0.2,
			Technique: "closed-form", Verdict: "accept",
		}},
	}
	rec := emitOne(t, EventLogOptions{}, ev)

	if rec["level"] != "INFO" {
		t.Fatalf("healthy query level = %v, want INFO", rec["level"])
	}
	if rec["kind"] != "query" || rec["qid"] != float64(7) ||
		rec["sql"] != "SELECT AVG(x) FROM t" || rec["outcome"] != "ok" {
		t.Fatalf("identity fields wrong: %v", rec)
	}
	if rec["queue_wait_ms"] != 3.25 || rec["total_ms"] != 12.5 {
		t.Fatalf("latency fields wrong: %v", rec)
	}
	if rec["sample_rows"] != float64(1000) || rec["bootstrap_k"] != float64(100) ||
		rec["fell_back"] != true {
		t.Fatalf("plan fields wrong: %v", rec)
	}
	stages := rec["stages_ms"].(map[string]any)
	if stages["scan"] != float64(8) || stages["estimate"] != float64(3) {
		t.Fatalf("stages_ms wrong (repeats must accumulate): %v", stages)
	}
	agg := rec["aggs"].([]any)[0].(map[string]any)
	if agg["name"] != "avg(x)" || agg["verdict"] != "accept" || agg["lo"] != float64(4) {
		t.Fatalf("agg fields wrong: %v", agg)
	}
	for _, absent := range []string{"slow", "miscalibrated", "error"} {
		if _, ok := rec[absent]; ok {
			t.Fatalf("healthy query carries %q: %v", absent, rec)
		}
	}

	// Zero queue wait is omitted, not emitted as 0.
	ev.Trace.QueueWaitMs = 0
	if rec := emitOne(t, EventLogOptions{}, ev); rec["queue_wait_ms"] != nil {
		t.Fatalf("zero queue wait emitted: %v", rec)
	}
}

func TestEventLogWarnLevels(t *testing.T) {
	base := QueryEvent{Trace: TraceSnapshot{SQL: "q", Outcome: "ok", TotalMs: 1}}

	slow := base
	slow.Trace.TotalMs = 250
	rec := emitOne(t, EventLogOptions{SlowQueryMs: 200}, slow)
	if rec["level"] != "WARN" || rec["slow"] != true {
		t.Fatalf("slow query not flagged at Warn: %v", rec)
	}

	rejected := base
	rejected.Aggs = []AggEvent{{Name: "max(x)", Verdict: "reject"}}
	rec = emitOne(t, EventLogOptions{}, rejected)
	if rec["level"] != "WARN" || rec["miscalibrated"] != true {
		t.Fatalf("rejected verdict not flagged at Warn: %v", rec)
	}

	wide := base
	wide.Aggs = []AggEvent{{Name: "avg(x)", Verdict: "accept", RelErr: 0.5}}
	rec = emitOne(t, EventLogOptions{MaxRelErr: 0.1}, wide)
	if rec["level"] != "WARN" || rec["miscalibrated"] != true {
		t.Fatalf("rel-err past MaxRelErr not flagged at Warn: %v", rec)
	}

	failed := base
	failed.Trace.Outcome = "error"
	failed.Trace.Err = "exec blew up"
	rec = emitOne(t, EventLogOptions{}, failed)
	if rec["level"] != "WARN" || rec["error"] != "exec blew up" {
		t.Fatalf("failed query not flagged at Warn: %v", rec)
	}
}

func TestEventLogNilIsNoop(t *testing.T) {
	var l *EventLog
	l.Emit(QueryEvent{Trace: TraceSnapshot{SQL: "q"}}) // must not panic
}

// TestEventLogConcurrentEmits drives one log from many goroutines; the
// locked writer must keep every record an intact JSON line.
func TestEventLogConcurrentEmits(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, EventLogOptions{})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Emit(QueryEvent{Trace: TraceSnapshot{
					ID: uint64(w*per + i), SQL: fmt.Sprintf("SELECT %d", w),
					Outcome: "ok", TotalMs: 1,
				}})
			}
		}(w)
	}
	wg.Wait()
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved write corrupted a record: %v\n%s", err, sc.Text())
		}
		lines++
	}
	if lines != workers*per {
		t.Fatalf("got %d records, want %d", lines, workers*per)
	}
}

// TestQueueWaitRoundTrip pins the queue-wait plumbing end to end at the
// obs layer: SetQueueWait before Finish must surface in the snapshot, the
// JSON encoding and the human-readable trace.
func TestQueueWaitRoundTrip(t *testing.T) {
	tr := NewTracer(Options{})
	qt := tr.StartQuery("SELECT 1")
	qt.SetQueueWait(1500 * time.Microsecond)
	qt.StartSpan(StageScan).End()
	qt.Finish(nil)

	snap, ok := qt.Snapshot()
	if !ok {
		t.Fatal("Snapshot must report done after Finish")
	}
	if snap.QueueWaitMs != 1.5 {
		t.Fatalf("QueueWaitMs = %v, want 1.5", snap.QueueWaitMs)
	}
	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"queue_wait_ms":1.5`)) {
		t.Fatalf("JSON missing queue_wait_ms: %s", js)
	}
	if out := FormatTrace(snap); !bytes.Contains([]byte(out), []byte("queue_wait=1.500ms")) {
		t.Fatalf("FormatTrace missing queue wait:\n%s", out)
	}

	// An unqueued query omits the field entirely.
	qt2 := tr.StartQuery("SELECT 2")
	qt2.Finish(errors.New("nope"))
	snap2, _ := qt2.Snapshot()
	if js, _ := json.Marshal(snap2); bytes.Contains(js, []byte("queue_wait_ms")) {
		t.Fatalf("zero queue wait must be omitted: %s", js)
	}
}
