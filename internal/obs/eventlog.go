package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
)

// EventLog emits one structured JSON record per query — the flight
// recorder next to the trace ring's flight deck: greppable, shippable to
// a log pipeline, and carrying enough to answer "which queries were slow
// or miscalibrated, and why" without scraping /debug/queries. Records are
// written through log/slog, so the output is standard JSON lines.
//
// A nil *EventLog is a no-op, mirroring the rest of the obs package:
// instrumented paths pay one pointer comparison when logging is off. The
// log only reads finished answers and trace snapshots — it consumes no
// engine randomness and cannot perturb results.
type EventLog struct {
	log *slog.Logger
	opt EventLogOptions
}

// lockedWriter serializes Write calls: slog handlers issue one Write per
// record, but concurrent queries share the destination.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// NewEventLog returns an event log writing JSON lines to w.
func NewEventLog(w io.Writer, opt EventLogOptions) *EventLog {
	h := slog.NewJSONHandler(&lockedWriter{w: w}, nil)
	return &EventLog{log: slog.New(h), opt: opt}
}

// AggEvent is one aggregate's outcome inside a query event.
type AggEvent struct {
	Group     string  `json:"group,omitempty"`
	Name      string  `json:"name"`
	Estimate  float64 `json:"estimate"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	RelErr    float64 `json:"rel_err"`
	Technique string  `json:"technique"`
	// Verdict is the runtime diagnostic's decision: "accept" or "reject".
	Verdict string `json:"verdict"`
	// Exact marks an answer computed on the full dataset (fallback or
	// exact execution).
	Exact bool `json:"exact,omitempty"`
}

// QueryEvent is the one-record-per-query payload handed to Emit. Trace
// supplies identity, outcome, queue wait and per-stage latencies; the
// rest comes from the answer.
type QueryEvent struct {
	Trace      TraceSnapshot
	Kind       string // "query" (default) or "audit"
	SampleRows int
	BootstrapK int
	FellBack   bool
	// BlocksSkipped counts zone-map blocks the scan pruned for this query.
	BlocksSkipped int64
	// BlocksDecoded counts compressed blocks the scan actually decoded
	// (zero on raw backings; skipped blocks are never decoded).
	BlocksDecoded int64
	// DecodeNs is the wall time spent decoding compressed blocks.
	DecodeNs int64
	// SharedScan marks a query answered from a shared-scan batch rather
	// than its own physical pass.
	SharedScan bool
	// Cached marks an answer replayed from the answer cache — no scan,
	// decode, or resampling happened for this record.
	Cached bool
	// CacheHits counts decoded blocks served from the block cache.
	CacheHits int64
	// CacheBytes is the decoded bytes those hits avoided re-decoding.
	CacheBytes int64
	Aggs       []AggEvent
}

// Emit writes one record. Slow queries (total latency past the threshold),
// miscalibrated queries (a rejected verdict, or relative error past
// MaxRelErr) and failed queries log at Warn; everything else at Info.
func (l *EventLog) Emit(ev QueryEvent) {
	if l == nil {
		return
	}
	t := ev.Trace
	slow := t.TotalMs >= l.opt.slowMs()
	miscal := false
	for _, a := range ev.Aggs {
		if a.Verdict == "reject" {
			miscal = true
		}
		if l.opt.MaxRelErr > 0 && a.RelErr > l.opt.MaxRelErr {
			miscal = true
		}
	}
	kind := ev.Kind
	if kind == "" {
		kind = "query"
	}
	attrs := []slog.Attr{
		slog.String("kind", kind),
		slog.Uint64("qid", t.ID),
		slog.String("sql", t.SQL),
		slog.String("outcome", t.Outcome),
		slog.Float64("total_ms", t.TotalMs),
	}
	if t.TraceID != "" {
		attrs = append(attrs, slog.String("trace_id", t.TraceID))
	}
	if t.QueueWaitMs > 0 {
		attrs = append(attrs, slog.Float64("queue_wait_ms", t.QueueWaitMs))
	}
	if ev.SampleRows > 0 {
		attrs = append(attrs, slog.Int("sample_rows", ev.SampleRows))
	}
	if ev.BootstrapK > 0 {
		attrs = append(attrs, slog.Int("bootstrap_k", ev.BootstrapK))
	}
	if ev.FellBack {
		attrs = append(attrs, slog.Bool("fell_back", true))
	}
	if ev.BlocksSkipped > 0 {
		attrs = append(attrs, slog.Int64("blocks_skipped", ev.BlocksSkipped))
	}
	if ev.BlocksDecoded > 0 {
		attrs = append(attrs, slog.Int64("blocks_decoded", ev.BlocksDecoded))
	}
	if ev.DecodeNs > 0 {
		attrs = append(attrs, slog.Int64("decode_ns", ev.DecodeNs))
	}
	if ev.SharedScan {
		attrs = append(attrs, slog.Bool("shared_scan", true))
	}
	if ev.Cached {
		attrs = append(attrs, slog.Bool("cached", true))
	}
	if ev.CacheHits > 0 {
		attrs = append(attrs, slog.Int64("cache_hits", ev.CacheHits))
	}
	if ev.CacheBytes > 0 {
		attrs = append(attrs, slog.Int64("cache_bytes", ev.CacheBytes))
	}
	if slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if miscal {
		attrs = append(attrs, slog.Bool("miscalibrated", true))
	}
	if t.Err != "" {
		attrs = append(attrs, slog.String("error", t.Err))
	}
	if stages := StageLatencies(t.Spans); len(stages) > 0 {
		attrs = append(attrs, slog.Any("stages_ms", stages))
	}
	if len(ev.Aggs) > 0 {
		attrs = append(attrs, slog.Any("aggs", ev.Aggs))
	}
	level := slog.LevelInfo
	if slow || miscal || t.Outcome == "error" {
		level = slog.LevelWarn
	}
	l.log.LogAttrs(context.Background(), level, "query", attrs...)
}

// ConnEvent is one connection-lifecycle record from a network front end:
// a MySQL-wire connection opening or closing, an auth failure, a protocol
// violation, or a connection-limit rejection. It lands in the same JSON
// event stream as query records, distinguished by kind=conn.
type ConnEvent struct {
	// Transport is the listener that produced the event: "mysql" | "http".
	Transport string
	// ConnID is the listener-scoped connection id (the id the MySQL
	// handshake advertised); zero for transports without one.
	ConnID uint64
	// Remote is the peer address.
	Remote string
	// User is the authenticated user, when known.
	User string
	// Event is the lifecycle step: "open" | "close" | "auth_error" |
	// "protocol_error" | "too_many_connections".
	Event string
	// Queries counts commands served over the connection (close events).
	Queries int64
	// DurMs is the connection's lifetime (close events).
	DurMs float64
	// Err carries the error that ended or rejected the connection.
	Err string
}

// EmitConn writes one connection-lifecycle record. Errors (auth failures,
// protocol violations, limit rejections, or any event carrying Err) log
// at Warn, clean opens and closes at Info.
func (l *EventLog) EmitConn(ev ConnEvent) {
	if l == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("kind", "conn"),
		slog.String("transport", ev.Transport),
		slog.String("event", ev.Event),
	}
	if ev.ConnID != 0 {
		attrs = append(attrs, slog.Uint64("conn_id", ev.ConnID))
	}
	if ev.Remote != "" {
		attrs = append(attrs, slog.String("remote", ev.Remote))
	}
	if ev.User != "" {
		attrs = append(attrs, slog.String("user", ev.User))
	}
	if ev.Queries > 0 {
		attrs = append(attrs, slog.Int64("queries", ev.Queries))
	}
	if ev.DurMs > 0 {
		attrs = append(attrs, slog.Float64("dur_ms", ev.DurMs))
	}
	if ev.Err != "" {
		attrs = append(attrs, slog.String("error", ev.Err))
	}
	level := slog.LevelInfo
	if ev.Err != "" || ev.Event == "auth_error" ||
		ev.Event == "protocol_error" || ev.Event == "too_many_connections" {
		level = slog.LevelWarn
	}
	l.log.LogAttrs(context.Background(), level, "conn", attrs...)
}

// StageLatencies flattens the top-level stage spans to a name→ms map;
// repeated stages (e.g. two diagnostics in a GROUP BY fan-out) accumulate.
// The event log and the history store share this breakdown.
func StageLatencies(spans []SpanSnapshot) map[string]float64 {
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]float64, len(spans))
	for _, s := range spans {
		out[s.Stage] += s.Ms
	}
	return out
}
