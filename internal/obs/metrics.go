package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op, so callers can thread counters
// through hot paths unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (in-flight queries, queue depth).
// Unlike Counter it may go down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set overwrites the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// GaugeF is an atomic float-valued gauge for ratio-scale instantaneous
// values (empirical coverage, reject rates) that the integer Gauge cannot
// represent. A nil *GaugeF is a no-op.
type GaugeF struct {
	v atomic.Uint64 // float64 bits
}

// Set overwrites the gauge value.
func (g *GaugeF) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *GaugeF) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Histogram is a fixed-bucket latency/throughput histogram with atomic
// buckets. Bounds are upper bucket boundaries in ascending order; an
// implicit +Inf bucket catches the tail. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// using Prometheus's histogram_quantile interpolation: linear within the
// containing bucket, with the +Inf bucket reported as its lower bound.
// Returns NaN for an empty histogram or q outside [0,1]. Concurrent
// Observe calls may skew the estimate by the in-flight observations; the
// buckets themselves are read atomically.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (bound-lo)*frac
		}
		cum += c
	}
	// Tail bucket: no finite upper bound to interpolate toward.
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return math.NaN()
}

// Default bucket layouts for the repo's metric families.
var (
	// LatencyBuckets spans 100µs local stages to minute-scale fallbacks.
	LatencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
	// ThroughputBuckets covers kernel rates from 10⁴ to 10⁹ rows/s.
	ThroughputBuckets = []float64{
		1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9,
	}
	// SimSecondsBuckets extends the latency layout to the cost model's
	// minutes-long naive pipelines.
	SimSecondsBuckets = []float64{
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
	}
	// RatioBuckets covers the simulated-vs-wall inflation factor.
	RatioBuckets = []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1e3, 3e3, 1e4, 1e5, 1e6}
)

// family is one metric name with its help text, type and label series.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "gaugef" | "histogram"
	bounds []float64
	series map[string]any // label string -> *Counter | *Gauge | *GaugeF | *Histogram
	order  []string       // label strings in registration order
}

// Registry holds named counters and histograms and renders them in the
// Prometheus text exposition format. A nil *Registry is a no-op: every
// lookup returns a nil metric whose methods do nothing, so instrumented
// code pays a single branch when telemetry is disabled.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter returns (registering on first use) the counter with the given
// name and label pairs ("key", "value", ...). Help text is set on first
// registration. Mismatched metric types return a nil no-op metric.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.metric(name, help, "counter", nil, labels)
	c, _ := m.(*Counter)
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.metric(name, help, "gauge", nil, labels)
	g, _ := m.(*Gauge)
	return g
}

// GaugeFloat returns (registering on first use) the float-valued gauge
// with the given name and label pairs. It shares the Prometheus "gauge"
// type with Gauge but holds a float64 — use it for ratios and rates.
func (r *Registry) GaugeFloat(name, help string, labels ...string) *GaugeF {
	if r == nil {
		return nil
	}
	m := r.metric(name, help, "gaugef", nil, labels)
	g, _ := m.(*GaugeF)
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket bounds and label pairs. Bounds are fixed at first
// registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.metric(name, help, "histogram", bounds, labels)
	h, _ := m.(*Histogram)
	return h
}

func (r *Registry) metric(name, help, typ string, bounds []float64, labels []string) any {
	key := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds,
			series: map[string]any{}}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		return nil // type clash: degrade to a no-op rather than corrupt
	}
	s, ok := f.series[key]
	if !ok {
		switch typ {
		case "counter":
			s = &Counter{}
		case "gauge":
			s = &Gauge{}
		case "gaugef":
			s = &GaugeF{}
		default:
			s = newHistogram(f.bounds)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// labelString renders ("k","v","k2","v2") as `k="v",k2="v2"`. Pairs keep
// their given order; an odd trailing key is dropped.
func labelString(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one line per
// series, cumulative histogram buckets with an explicit +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	// Registration is rare and cheap; hold the lock for the whole render.
	// Series values are atomics, so in-flight Add/Observe never block.
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name,
				strings.ReplaceAll(strings.ReplaceAll(f.help, `\`, `\\`), "\n", `\n`))
		}
		typ := f.typ
		if typ == "gaugef" {
			typ = "gauge" // the exposition format has no float/int split
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ)
		for _, key := range f.order {
			switch m := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, wrapLabels(key), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, wrapLabels(key), m.Value())
			case *GaugeF:
				fmt.Fprintf(w, "%s%s %s\n", f.name, wrapLabels(key), formatFloat(m.Value()))
			case *Histogram:
				cum := int64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						wrapLabels(joinLabels(key, `le="`+formatFloat(b)+`"`)), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					wrapLabels(joinLabels(key, `le="+Inf"`)), m.Count())
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, wrapLabels(key), formatFloat(m.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, wrapLabels(key), m.Count())
			}
		}
	}
}

// CounterSample is one counter series' current value, as returned by
// CounterSamples.
type CounterSample struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// CounterSamples snapshots every registered counter series, sorted by name
// then label registration order. The history subsystem's time-series
// rollups sample this periodically to turn cumulative counters into
// windowed rates.
func (r *Registry) CounterSamples() []CounterSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var out []CounterSample
	for _, name := range names {
		f := r.fams[name]
		for _, key := range f.order {
			c, ok := f.series[key].(*Counter)
			if !ok {
				continue
			}
			out = append(out, CounterSample{Name: f.name, Labels: key, Value: c.Value()})
		}
	}
	return out
}

// HistogramStat is one histogram series with its derived quantiles, as
// rendered by /debug/histograms.
type HistogramStat struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// HistogramStats snapshots every registered histogram series with
// interpolated p50/p90/p99, sorted by name then label registration order.
// Non-finite quantiles (empty series) are reported as zero so the result
// always JSON-encodes.
func (r *Registry) HistogramStats() []HistogramStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var out []HistogramStat
	finite := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	for _, name := range names {
		f := r.fams[name]
		for _, key := range f.order {
			h, ok := f.series[key].(*Histogram)
			if !ok {
				continue
			}
			out = append(out, HistogramStat{
				Name:   f.name,
				Labels: key,
				Count:  h.Count(),
				Sum:    finite(h.Sum()),
				P50:    finite(h.Quantile(0.50)),
				P90:    finite(h.Quantile(0.90)),
				P99:    finite(h.Quantile(0.99)),
			})
		}
	}
	return out
}

func wrapLabels(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
