package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestWriteChromeTrace pins the trace-event encoding against a hand-built
// snapshot: one metadata event, one whole-query X event, one X event per
// span (children flattened onto the same track), with ts/dur scaled from
// milliseconds to the format's microseconds.
func TestWriteChromeTrace(t *testing.T) {
	snap := TraceSnapshot{
		ID: 42, SQL: "SELECT AVG(x) FROM t", Outcome: "ok",
		TotalMs: 10, QueueWaitMs: 2,
		Spans: []SpanSnapshot{{
			Stage: "scan", StartMs: 1, Ms: 4,
			Attrs:    map[string]any{"rows_scanned": int64(100)},
			Children: []SpanSnapshot{{Stage: "part", StartMs: 2, Ms: 1}},
		}, {
			Stage: "estimate", StartMs: 6, Ms: 3,
		}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace-event JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// metadata + query + scan + part + estimate.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(doc.TraceEvents), doc.TraceEvents)
	}
	meta := doc.TraceEvents[0]
	if meta.Phase != "M" || meta.Args["name"] != snap.SQL {
		t.Fatalf("metadata event wrong: %+v", meta)
	}
	query := doc.TraceEvents[1]
	if query.Phase != "X" || query.Ts != 0 || query.Dur != 10000 {
		t.Fatalf("query event not scaled to microseconds: %+v", query)
	}
	if query.Args["queue_wait_ms"] != float64(2) || query.Args["outcome"] != "ok" {
		t.Fatalf("query args wrong: %+v", query.Args)
	}
	byName := map[string][2]float64{}
	for _, ev := range doc.TraceEvents[2:] {
		if ev.Phase != "X" {
			t.Fatalf("span event phase = %q, want X", ev.Phase)
		}
		byName[ev.Name] = [2]float64{ev.Ts, ev.Dur}
	}
	for name, want := range map[string][2]float64{
		"scan": {1000, 4000}, "part": {2000, 1000}, "estimate": {6000, 3000},
	} {
		if byName[name] != want {
			t.Fatalf("%s ts/dur = %v, want %v", name, byName[name], want)
		}
	}
}

// TestChromeTraceEndpoint exercises /debug/queries/{id}/trace over HTTP:
// a live trace renders, an unknown id is 404, a non-numeric id is 400.
func TestChromeTraceEndpoint(t *testing.T) {
	tr := NewTracer(Options{})
	qt := tr.StartQuery("SELECT COUNT(*) FROM t")
	qt.StartSpan(StageScan).End()
	qt.Finish(nil)
	last, _ := tr.Last()

	srv, err := Serve("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	status, body := get("/debug/queries/1/trace")
	if status != http.StatusOK {
		t.Fatalf("live trace: status %d, body %s", status, body)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("endpoint body is not JSON: %v", err)
	}
	events := doc["traceEvents"].([]any)
	if len(events) < 3 {
		t.Fatalf("trace has %d events, want metadata+query+scan", len(events))
	}
	if args := events[1].(map[string]any)["args"].(map[string]any); args["qid"] != float64(last.ID) {
		t.Fatalf("trace qid = %v, want %d", args["qid"], last.ID)
	}

	if status, _ := get("/debug/queries/99999/trace"); status != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", status)
	}
	if status, _ := get("/debug/queries/nope/trace"); status != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", status)
	}
}
