package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", header)
	}
	if got := tc.TraceIDString(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace ID = %s", got)
	}
	// The caller's span becomes our parent; we mint a fresh local span.
	if got := tc.ParentString(); got != "b7ad6b7169203331" {
		t.Errorf("parent = %s, want caller's span ID", got)
	}
	if tc.SpanIDString() == "b7ad6b7169203331" {
		t.Error("local span ID must differ from the caller's")
	}
	if !tc.Valid() {
		t.Error("parsed context not Valid")
	}
	// Round trip: our outgoing header carries the same trace ID and our
	// own span ID.
	out := tc.Traceparent()
	tc2, ok := ParseTraceparent(out)
	if !ok {
		t.Fatalf("ParseTraceparent rejected our own header %q", out)
	}
	if tc2.TraceIDString() != tc.TraceIDString() {
		t.Errorf("round-trip trace ID %s != %s", tc2.TraceIDString(), tc.TraceIDString())
	}
	if tc2.ParentString() != tc.SpanIDString() {
		t.Errorf("round-trip parent %s != our span %s", tc2.ParentString(), tc.SpanIDString())
	}
}

func TestParseTraceparentUppercaseAndPadding(t *testing.T) {
	tc, ok := ParseTraceparent("  00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01  ")
	if !ok {
		t.Fatal("uppercase hex with surrounding space must parse")
	}
	if tc.TraceIDString() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace ID = %s", tc.TraceIDString())
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// A future version may carry extra fields; the known prefix still parses.
	if _, ok := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Error("future version with trailing field must parse")
	}
	// Version 00 must have exactly four fields.
	if _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); ok {
		t.Error("version 00 with trailing field must be rejected")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version ff forbidden
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span ID
		"00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",  // short trace ID
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",  // short span ID
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g", // bad flags hex
		"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad version hex
		"00-xaf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad trace hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", s)
		}
	}
}

func TestNewTraceContext(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if !a.Valid() || !b.Valid() {
		t.Fatal("minted contexts must be valid")
	}
	if a.TraceID == b.TraceID {
		t.Error("two minted trace IDs collided")
	}
	if a.ParentString() != "" {
		t.Errorf("root context has parent %q", a.ParentString())
	}
	if !strings.HasPrefix(a.Traceparent(), "00-") {
		t.Errorf("traceparent = %q", a.Traceparent())
	}
}

func TestEnsureTrace(t *testing.T) {
	ctx, tc := EnsureTrace(context.Background())
	if !tc.Valid() {
		t.Fatal("EnsureTrace minted an invalid context")
	}
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatal("EnsureTrace did not attach the context it returned")
	}
	// Idempotent: a second call preserves the existing identity.
	_, tc2 := EnsureTrace(ctx)
	if tc2 != tc {
		t.Error("EnsureTrace replaced an existing trace context")
	}
}
