package obs

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every exported method through nil receivers: a
// disabled tracer must propagate no-ops through arbitrarily deep chains.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Registry() != nil {
		t.Fatal("nil tracer should return nil registry")
	}
	qt := tr.StartQuery("SELECT 1")
	if qt != nil {
		t.Fatal("nil tracer should return nil query trace")
	}
	s := qt.Root().StartSpan("scan").StartSpan("child")
	s.SetAttr("k", 1)
	s.AddInt("rows", 10)
	s.AddDuration(time.Millisecond)
	s.End()
	s.Metrics().Counter("c", "h").Add(3)
	s.Metrics().Histogram("hh", "h", LatencyBuckets).Observe(1)
	qt.Finish(nil)
	if _, ok := tr.Last(); ok {
		t.Fatal("nil tracer should have no traces")
	}
	if tr.Recent() != nil {
		t.Fatal("nil tracer Recent should be nil")
	}
	var reg *Registry
	reg.Counter("x", "h").Inc()
	reg.WritePrometheus(&strings.Builder{})
}

func TestCounterAndHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("aqp_test_total", "help", "kind", "a")
	c.Add(3)
	c.Inc()
	if got := reg.Counter("aqp_test_total", "help", "kind", "a").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4 (same series must be shared)", got)
	}
	if got := reg.Counter("aqp_test_total", "help", "kind", "b").Value(); got != 0 {
		t.Fatalf("distinct label series not isolated: %d", got)
	}

	h := reg.Histogram("aqp_test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5 (NaN dropped)", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 55.65", h.Sum())
	}
	// Bucket boundaries are inclusive (Prometheus `le` semantics).
	if got := h.counts[0].Load(); got != 2 {
		t.Fatalf("le=0.1 bucket = %d, want 2 (0.05 and 0.1)", got)
	}
	if got := h.counts[3].Load(); got != 1 {
		t.Fatalf("+Inf overflow bucket = %d, want 1", got)
	}
}

func TestTypeClashDegradesToNoop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h").Inc()
	if h := reg.Histogram("m", "h", LatencyBuckets); h != nil {
		t.Fatal("type clash should return a nil no-op histogram")
	}
	if c := reg.Counter("m", "h"); c.Value() != 1 {
		t.Fatal("original counter must survive a type clash")
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?Inf|[-+0-9.eE]+)$`)

// checkPromText asserts every line of a /metrics payload is a comment or a
// well-formed sample line, and that histograms expose _bucket/_sum/_count.
func checkPromText(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty exposition")
	}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# HELP ") || strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(ln) {
			t.Fatalf("malformed exposition line: %q", ln)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("aqp_queries_total", "Queries.", "outcome", "ok").Add(7)
	reg.Counter("aqp_queries_total", "Queries.", "outcome", "error").Add(2)
	h := reg.Histogram("aqp_stage_duration_seconds", "Stage latency.",
		[]float64{0.001, 0.01}, "stage", "scan")
	h.Observe(0.0005)
	h.Observe(0.5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	checkPromText(t, text)
	for _, want := range []string{
		`aqp_queries_total{outcome="ok"} 7`,
		`aqp_queries_total{outcome="error"} 2`,
		`aqp_stage_duration_seconds_bucket{stage="scan",le="0.001"} 1`,
		`aqp_stage_duration_seconds_bucket{stage="scan",le="+Inf"} 2`,
		`aqp_stage_duration_seconds_count{stage="scan"} 2`,
		"# TYPE aqp_stage_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h", "q", "a\"b\\c\nd").Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `q="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("c_total", "h").Inc()
				reg.Histogram("h_seconds", "h", LatencyBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c_total", "h").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("h_seconds", "h", LatencyBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTraceRingBound(t *testing.T) {
	tr := NewTracer(Options{RingSize: 3})
	for i := 0; i < 5; i++ {
		qt := tr.StartQuery(fmt.Sprintf("q%d", i))
		qt.StartSpan(StageScan).End()
		qt.Finish(nil)
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(recent))
	}
	for i, want := range []string{"q4", "q3", "q2"} {
		if recent[i].SQL != want {
			t.Fatalf("recent[%d].SQL = %q, want %q (newest first)", i, recent[i].SQL, want)
		}
	}
	last, ok := tr.Last()
	if !ok || last.ID != 5 {
		t.Fatalf("Last = %+v ok=%v, want trace id 5", last, ok)
	}
}

func TestSpanAttrsAndStructure(t *testing.T) {
	mk := func() TraceSnapshot {
		tr := NewTracer(Options{})
		qt := tr.StartQuery("SELECT AVG(x) FROM t")
		s := qt.StartSpan(StageScan)
		s.AddInt("rows_scanned", 100)
		s.AddInt("rows_scanned", 50)
		s.AddInt("zero", 0) // must not create the attribute
		s.SetAttr("rel_err", math.NaN())
		c := s.StartSpan("part")
		c.SetAttr("idx", 1)
		c.End()
		s.End()
		qt.Finish(nil)
		last, _ := tr.Last()
		return last
	}
	snap := mk()
	scan := snap.Spans[0]
	if scan.Attrs["rows_scanned"] != int64(150) {
		t.Fatalf("AddInt accumulation = %v, want 150", scan.Attrs["rows_scanned"])
	}
	if _, ok := scan.Attrs["zero"]; ok {
		t.Fatal("zero AddInt must not create an attribute")
	}
	if scan.Attrs["rel_err"] != "NaN" {
		t.Fatalf("NaN attr = %v (%T), want JSON-safe string", scan.Attrs["rel_err"], scan.Attrs["rel_err"])
	}
	if len(scan.Children) != 1 || scan.Children[0].Stage != "part" {
		t.Fatalf("child span lost: %+v", scan.Children)
	}
	// Structure is timing-independent: two identical runs agree.
	if a, b := mk().Structure(), mk().Structure(); a != b {
		t.Fatalf("structures differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(snap.Structure(), "scan(rel_err=NaN,rows_scanned=150)") {
		t.Fatalf("structure missing attrs: %s", snap.Structure())
	}
}

func TestFinishRecordsMetricsAndOutcome(t *testing.T) {
	tr := NewTracer(Options{})
	qt := tr.StartQuery("boom")
	qt.StartSpan(StageParse).End()
	qt.Finish(errors.New("parse failed"))
	qt.Finish(errors.New("twice")) // idempotent

	if got := tr.Registry().Counter("aqp_queries_total", "", "outcome", "error").Value(); got != 1 {
		t.Fatalf("error outcome counter = %d, want 1", got)
	}
	if got := tr.Registry().Histogram("aqp_stage_duration_seconds", "",
		LatencyBuckets, "stage", StageParse).Count(); got != 1 {
		t.Fatalf("stage histogram count = %d, want 1", got)
	}
	last, _ := tr.Last()
	if last.Err != "parse failed" {
		t.Fatalf("trace error = %q", last.Err)
	}
	if len(tr.Recent()) != 1 {
		t.Fatal("double Finish must record the trace once")
	}
}

func TestFormatTrace(t *testing.T) {
	tr := NewTracer(Options{})
	qt := tr.StartQuery("SELECT 1")
	s := qt.StartSpan(StageScan)
	s.AddInt("rows_scanned", 10)
	s.End()
	qt.Finish(nil)
	last, _ := tr.Last()
	out := FormatTrace(last)
	if !strings.Contains(out, "scan") || !strings.Contains(out, "rows_scanned=10") {
		t.Fatalf("FormatTrace output missing content:\n%s", out)
	}
}
