package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// NewLogSink returns a sink that emits one structured slog record per
// transition. With a nil logger the default slog logger is used; aqpd
// passes its JSON handler so alerts interleave with query events.
func NewLogSink(logger *slog.Logger) Sink {
	if logger == nil {
		logger = slog.Default()
	}
	return SinkFunc(func(ev Event) {
		level := slog.LevelWarn
		if ev.State == StateResolved {
			level = slog.LevelInfo
		} else if ev.Severity == SeverityCritical {
			level = slog.LevelError
		}
		attrs := []slog.Attr{
			slog.String("state", string(ev.State)),
			slog.String("source", ev.Source),
			slog.String("kind", ev.Kind),
			slog.String("key", ev.Key),
			slog.String("severity", string(ev.Severity)),
			slog.Int("count", ev.Count),
			slog.Float64("observed", ev.Observed),
			slog.Float64("expected", ev.Expected),
		}
		if ev.Message != "" {
			attrs = append(attrs, slog.String("message", ev.Message))
		}
		logger.LogAttrs(context.Background(), level, "alert", attrs...)
	})
}

// WebhookOptions tunes a webhook sink.
type WebhookOptions struct {
	// QueueSize bounds pending deliveries (0 = 64); overflow drops.
	QueueSize int
	// MaxRetries is extra attempts per delivery after the first (0 = 3).
	MaxRetries int
	// RetryBackoff is the base inter-attempt delay, scaled linearly
	// (0 = 250ms).
	RetryBackoff time.Duration
	// Timeout bounds each POST (0 = 5s).
	Timeout time.Duration
	// Metrics receives aqp_alert_webhook_* series.
	Metrics *obs.Registry
}

func (o WebhookOptions) queueSize() int {
	if o.QueueSize <= 0 {
		return 64
	}
	return o.QueueSize
}

func (o WebhookOptions) maxRetries() int {
	if o.MaxRetries <= 0 {
		return 3
	}
	return o.MaxRetries
}

func (o WebhookOptions) retryBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return o.RetryBackoff
}

func (o WebhookOptions) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 5 * time.Second
	}
	return o.Timeout
}

// WebhookSink POSTs each transition as a JSON document to a generic
// endpoint, from its own goroutine with bounded queueing and retries —
// Notify never blocks the bus.
type WebhookSink struct {
	url    string
	opt    WebhookOptions
	client *http.Client
	ch     chan Event
	wg     sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	mSent    *obs.Counter
	mDropped *obs.Counter
	mRetries *obs.Counter
}

// NewWebhookSink builds a webhook sink and starts its delivery worker.
func NewWebhookSink(url string, opt WebhookOptions) *WebhookSink {
	s := &WebhookSink{
		url:    url,
		opt:    opt,
		client: &http.Client{Timeout: opt.timeout()},
		ch:     make(chan Event, opt.queueSize()),
	}
	reg := opt.Metrics
	s.mSent = reg.Counter("aqp_alert_webhook_total",
		"Alert webhook deliveries, by result.", "result", "ok")
	s.mDropped = reg.Counter("aqp_alert_webhook_total",
		"Alert webhook deliveries, by result.", "result", "dropped")
	s.mRetries = reg.Counter("aqp_alert_webhook_retries_total",
		"Webhook POST attempts retried after a failure.")
	s.wg.Add(1)
	go s.worker()
	return s
}

// Notify implements Sink: a non-blocking enqueue.
func (s *WebhookSink) Notify(ev Event) {
	if s == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.mDropped.Inc()
		return
	}
	select {
	case s.ch <- ev:
	default:
		s.mDropped.Inc()
	}
}

// Close drains pending deliveries and stops the worker.
func (s *WebhookSink) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *WebhookSink) worker() {
	defer s.wg.Done()
	for ev := range s.ch {
		if s.deliver(ev) {
			s.mSent.Inc()
		} else {
			s.mDropped.Inc()
		}
	}
}

func (s *WebhookSink) deliver(ev Event) bool {
	body, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	attempts := 1 + s.opt.maxRetries()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			s.mRetries.Inc()
			time.Sleep(time.Duration(i) * s.opt.retryBackoff())
		}
		resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return true
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return false
		}
	}
	return false
}
