package alert

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWebhookSinkDelivers(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	sink := NewWebhookSink(srv.URL, WebhookOptions{})
	sink.Notify(Event{Alert: Alert{Source: "watchdog", Kind: "undercoverage",
		Key: "A@1000", Severity: SeverityCritical}, State: StateFiring, Count: 1, Seq: 1})
	sink.Notify(Event{Alert: Alert{Source: "watchdog", Kind: "undercoverage",
		Key: "A@1000"}, State: StateResolved, Count: 1, Seq: 2})
	sink.Close() // drains the queue

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("webhook received %d events, want 2", len(got))
	}
	if got[0].State != StateFiring || got[1].State != StateResolved {
		t.Fatalf("states = %s, %s", got[0].State, got[1].State)
	}
	if got[0].Key != "A@1000" || got[0].Source != "watchdog" {
		t.Fatalf("event fields lost in transit: %+v", got[0])
	}
}

func TestWebhookSinkRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	sink := NewWebhookSink(srv.URL, WebhookOptions{
		MaxRetries: 3, RetryBackoff: time.Millisecond, Metrics: reg,
	})
	sink.Notify(Event{Alert: Alert{Source: "s", Kind: "k", Key: "x"}, State: StateFiring})
	sink.Close()

	if calls.Load() != 3 {
		t.Fatalf("webhook saw %d attempts, want 3 (two 502s then a 200)", calls.Load())
	}
	if v := reg.Counter("aqp_alert_webhook_total",
		"Webhook alert deliveries, by result.", "result", "ok").Value(); v != 1 {
		t.Errorf("ok deliveries = %d, want 1", v)
	}
	if v := reg.Counter("aqp_alert_webhook_retries_total",
		"Webhook delivery attempts retried after a failure.").Value(); v != 2 {
		t.Errorf("retries = %d, want 2", v)
	}
}

// TestWebhookSinkNeverBlocks: with the endpoint wedged and the queue
// full, Notify returns immediately and drops are metered.
func TestWebhookSinkNeverBlocks(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	sink := NewWebhookSink(srv.URL, WebhookOptions{QueueSize: 2, Metrics: reg})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 20; i++ {
			sink.Notify(Event{Alert: Alert{Source: "s", Kind: "k", Key: "x"}, State: StateFiring})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Notify blocked on a wedged webhook")
	}
	close(release)
	sink.Close()
	if v := reg.Counter("aqp_alert_webhook_total",
		"Webhook alert deliveries, by result.", "result", "dropped").Value(); v == 0 {
		t.Error("overflow was not metered as dropped")
	}
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	sink := NewLogSink(logger)
	sink.Notify(Event{Alert: Alert{Source: "slo", Kind: "burn", Key: "latency-p99",
		Severity: SeverityCritical, Observed: 2.5, Expected: 1},
		State: StateFiring, Count: 1})
	sink.Notify(Event{Alert: Alert{Source: "slo", Kind: "burn", Key: "latency-p99"},
		State: StateResolved, Count: 1})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("log sink wrote %d lines, want 2: %s", len(lines), out)
	}
	for i, want := range []string{"firing", "resolved"} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("log line %d not JSON: %v", i, err)
		}
		if rec["state"] != want || rec["key"] != "latency-p99" {
			t.Errorf("line %d = %v", i, rec)
		}
	}
	// Critical firing logs at error level.
	if !strings.Contains(lines[0], `"level":"ERROR"`) {
		t.Errorf("critical firing not at ERROR level: %s", lines[0])
	}
}
