package alert_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/estimator"
	"repro/internal/obs/alert"
	"repro/internal/watchdog"
)

// TestAlertPipelineEndToEnd drives the full chain the ISSUE's alert
// smoke requires: induced undercoverage in the calibration watchdog →
// raise on the unified bus → webhook sink delivers a firing event; then
// recovery → clear → the same webhook receives the resolved event.
func TestAlertPipelineEndToEnd(t *testing.T) {
	events := make(chan alert.Event, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev alert.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		events <- ev
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	webhook := alert.NewWebhookSink(srv.URL, alert.WebhookOptions{})
	defer webhook.Close()
	bus := alert.New(alert.Config{Sinks: []alert.Sink{webhook}})

	// The same watchdog→bus bridge core.New installs.
	wd := watchdog.New(watchdog.Config{
		Window: 16, MinAudits: 16, AuditFraction: 1,
		Nominal: 0.5, Tolerance: 1, Synchronous: true,
	})
	defer wd.Close()
	wd.SetAlertNotifier(func(a watchdog.Alert, firing bool) {
		if !firing {
			bus.Resolve("watchdog", string(a.Kind), a.Key.String())
			return
		}
		bus.Raise(alert.Alert{
			Source:   "watchdog",
			Kind:     string(a.Kind),
			Key:      a.Key.String(),
			Severity: alert.SeverityCritical,
			Message:  a.Message,
			Observed: a.Observed,
			Expected: a.Expected,
		})
	})
	// Truth misses the interval for "miss" queries, covers it otherwise.
	wd.Bind(func(_ context.Context, sql string) (map[watchdog.AggInstance]float64, error) {
		truth := 0.0
		if strings.Contains(sql, "miss") {
			truth = 10
		}
		return map[watchdog.AggInstance]float64{{Agg: "A"}: truth}, nil
	})

	rec := func(sql string) watchdog.Record {
		return watchdog.Record{SQL: sql, Sample: "1000", Aggs: []watchdog.AggRecord{{
			Agg: "A", Interval: estimator.Interval{Center: 0, HalfWidth: 1},
			Technique: "closed-form",
		}}}
	}

	// 6 covered + 11 missed: coverage 5/16 < Band(0.5,16,1).lo = 0.375 →
	// undercoverage fires (same arithmetic the watchdog edge test pins).
	for i := 0; i < 6; i++ {
		wd.Observe(rec("cover"))
	}
	for i := 0; i < 11; i++ {
		wd.Observe(rec("miss"))
	}

	var firing alert.Event
	select {
	case firing = <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("webhook never received the firing alert")
	}
	if firing.State != alert.StateFiring || firing.Source != "watchdog" ||
		firing.Kind != "undercoverage" || firing.Key != "A@1000" {
		t.Fatalf("firing event = %+v", firing)
	}
	if len(bus.Active()) != 1 {
		t.Fatalf("bus active = %+v, want the one undercoverage episode", bus.Active())
	}

	// Recover at the nominal rate until the window re-enters the band.
	for i := 0; i < 8; i++ {
		wd.Observe(rec("cover"))
		wd.Observe(rec("miss"))
	}

	var resolved alert.Event
	select {
	case resolved = <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("webhook never received the resolved alert")
	}
	if resolved.State != alert.StateResolved || resolved.Key != "A@1000" ||
		resolved.Kind != "undercoverage" {
		t.Fatalf("resolved event = %+v", resolved)
	}
	if len(bus.Active()) != 0 {
		t.Fatalf("bus still active after recovery: %+v", bus.Active())
	}
}
