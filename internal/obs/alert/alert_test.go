package alert

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// countingSink tallies transitions by state.
type countingSink struct {
	firing   atomic.Int64
	resolved atomic.Int64
}

func (c *countingSink) Notify(ev Event) {
	switch ev.State {
	case StateFiring:
		c.firing.Add(1)
	case StateResolved:
		c.resolved.Add(1)
	}
}

func TestBusLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &countingSink{}
	b := New(Config{Metrics: reg, Sinks: []Sink{sink}})

	a := Alert{Source: "serve", Kind: "reject_spike", Key: "queue_full",
		Severity: SeverityWarning, Observed: 9, Expected: 8}
	b.Raise(a)
	if got := b.Active(); len(got) != 1 || got[0].State != StateFiring || got[0].Count != 1 {
		t.Fatalf("after first raise: %+v", got)
	}
	if sink.firing.Load() != 1 {
		t.Fatalf("firing notifications = %d, want 1", sink.firing.Load())
	}

	// Re-raises coalesce: count climbs, observed refreshes, no re-notify.
	a.Observed = 12
	b.Raise(a)
	b.Raise(a)
	act := b.Active()
	if len(act) != 1 || act[0].Count != 3 || act[0].Observed != 12 {
		t.Fatalf("after coalescing raises: %+v", act)
	}
	if sink.firing.Load() != 1 {
		t.Fatalf("coalesced raises re-notified: %d", sink.firing.Load())
	}

	b.Resolve("serve", "reject_spike", "queue_full")
	if got := b.Active(); len(got) != 0 {
		t.Fatalf("still active after resolve: %+v", got)
	}
	if sink.resolved.Load() != 1 {
		t.Fatalf("resolved notifications = %d, want 1", sink.resolved.Load())
	}
	hist := b.History()
	if len(hist) != 2 || hist[0].State != StateFiring || hist[1].State != StateResolved {
		t.Fatalf("history = %+v", hist)
	}
	if hist[1].ResolvedAt.IsZero() {
		t.Error("resolved event has zero ResolvedAt")
	}
	if hist[1].Count != 3 {
		t.Errorf("resolved event count = %d, want 3", hist[1].Count)
	}
	if hist[1].Seq <= hist[0].Seq {
		t.Errorf("seq not monotone: %d then %d", hist[0].Seq, hist[1].Seq)
	}

	// Resolving a key that is not firing is a no-op.
	b.Resolve("serve", "reject_spike", "queue_full")
	if sink.resolved.Load() != 1 {
		t.Error("double resolve re-notified")
	}

	if v := reg.Counter("aqp_alerts_total",
		"Alert episodes opened, by source, kind and severity.",
		"source", "serve", "kind", "reject_spike", "severity", "warning").Value(); v != 1 {
		t.Errorf("aqp_alerts_total = %d, want 1", v)
	}
	if v := reg.Gauge("aqp_alerts_active", "Alert episodes currently firing.").Value(); v != 0 {
		t.Errorf("aqp_alerts_active = %d, want 0", v)
	}
}

// TestBusConcurrent hammers raise/coalesce/resolve from many goroutines
// under -race: the invariant is that every firing notification is
// eventually matched by exactly one resolved notification and the bus
// ends empty.
func TestBusConcurrent(t *testing.T) {
	sink := &countingSink{}
	b := New(Config{History: 4096, Sinks: []Sink{sink}})
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g+i)%len(keys)]
				b.Raise(Alert{Source: "test", Kind: "load", Key: k,
					Severity: SeverityInfo, Observed: float64(i)})
				if i%3 == 0 {
					b.Resolve("test", "load", k)
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiesce: resolve everything still firing.
	for _, k := range keys {
		b.Resolve("test", "load", k)
	}

	if got := b.Active(); len(got) != 0 {
		t.Fatalf("%d episodes still active after full resolve", len(got))
	}
	f, r := sink.firing.Load(), sink.resolved.Load()
	if f == 0 || f != r {
		t.Fatalf("firing=%d resolved=%d, want equal and nonzero", f, r)
	}
	// History alternates per key: a resolve may only follow a raise.
	state := map[string]State{}
	for _, ev := range b.History() {
		prev := state[ev.Key]
		if ev.State == StateResolved && prev != StateFiring {
			t.Fatalf("resolved %q without a preceding firing", ev.Key)
		}
		state[ev.Key] = ev.State
	}
}

func TestBusHistoryRing(t *testing.T) {
	b := New(Config{History: 4})
	for i := 0; i < 6; i++ {
		b.Raise(Alert{Source: "s", Kind: "k", Key: string(rune('a' + i))})
	}
	hist := b.History()
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want 4 (ring cap)", len(hist))
	}
	// Oldest-first unroll: the two earliest episodes were overwritten.
	if hist[0].Key != "c" || hist[3].Key != "f" {
		t.Fatalf("ring order wrong: %q..%q", hist[0].Key, hist[3].Key)
	}
}

func TestBusHandler(t *testing.T) {
	b := New(Config{})
	b.Raise(Alert{Source: "slo", Kind: "burn", Key: "latency-p99",
		Severity: SeverityCritical, Observed: 2.5, Expected: 1})
	rr := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/alerts", nil))
	var body struct {
		Active  []Event `json:"active"`
		History []Event `json:"history"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/alerts not JSON: %v", err)
	}
	if len(body.Active) != 1 || body.Active[0].Key != "latency-p99" ||
		body.Active[0].State != StateFiring {
		t.Fatalf("active = %+v", body.Active)
	}
	if len(body.History) != 1 {
		t.Fatalf("history = %+v", body.History)
	}
}

func TestNilBusNoops(t *testing.T) {
	var b *Bus
	b.Raise(Alert{Source: "s", Kind: "k", Key: "x"}) // must not panic
	b.Resolve("s", "k", "x")
	if b.Active() != nil || b.History() != nil {
		t.Error("nil bus returned state")
	}
}
