// Package alert is the unified alert pipeline: one typed stream joining
// the watchdog's calibration alerts (undercoverage / overcoverage /
// reject drift), the SLO monitor's error-budget burn breaches, and the
// serve layer's rejection/queue-saturation spikes — the three "knowing
// when you're wrong" signals the paper's §4 diagnostics motivate, which
// previously lived on disconnected in-process surfaces.
//
// A Bus holds firing alerts keyed by (source, kind, key): the first
// Raise of a key opens a firing episode (counted, recorded, fanned out
// to sinks); repeated raises coalesce into the open episode without
// re-notifying; Resolve closes it and notifies again with
// State=resolved. Sinks are notified outside the bus lock and must not
// block for long — the webhook sink queues and retries on its own
// goroutine. A nil *Bus is a no-op, mirroring the rest of internal/obs.
package alert

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Severity grades an alert.
type Severity string

const (
	SeverityInfo     Severity = "info"
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// Alert is one condition as reported by a producer.
type Alert struct {
	// Source names the producing subsystem: "watchdog", "slo", "serve".
	Source string `json:"source"`
	// Kind is the condition class within the source ("undercoverage",
	// "burn", "reject_spike", ...).
	Kind string `json:"kind"`
	// Key identifies the specific instance (aggregate×sample key, SLO
	// name, rejection reason). Dedup is by (Source, Kind, Key).
	Key      string   `json:"key"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message,omitempty"`
	// Observed/Expected carry the condition's measurement (coverage vs
	// nominal, burn rate vs 1, rejections vs threshold).
	Observed float64 `json:"observed,omitempty"`
	Expected float64 `json:"expected,omitempty"`
	// Labels carries extra dimensions (table, window, trace IDs...).
	Labels map[string]string `json:"labels,omitempty"`
}

// State is an episode's lifecycle position.
type State string

const (
	StateFiring   State = "firing"
	StateResolved State = "resolved"
)

// Event is one alert episode transition as delivered to sinks and kept
// in the bus history.
type Event struct {
	Alert
	State State `json:"state"`
	// Count is how many raises coalesced into the episode so far.
	Count int `json:"count"`
	// Seq orders events bus-wide (monotone, 1-based).
	Seq       uint64    `json:"seq"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// ResolvedAt stays the zero time while the episode is firing.
	ResolvedAt time.Time `json:"resolved_at"`
}

// Sink receives episode transitions (firing, then resolved). Notify is
// called outside the bus lock, sequentially per bus.
type Sink interface {
	Notify(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Notify implements Sink.
func (f SinkFunc) Notify(ev Event) { f(ev) }

// Config tunes a Bus.
type Config struct {
	// History bounds the in-memory ring of past transitions (0 = 128).
	History int
	// Metrics receives aqp_alert_* series (nil = unmetered).
	Metrics *obs.Registry
	// Sinks receive every firing/resolved transition.
	Sinks []Sink
}

type busKey struct {
	source, kind, key string
}

// Bus is the alert pipeline hub. Nil is a no-op.
type Bus struct {
	cfg Config

	mu      sync.Mutex
	active  map[busKey]*Event
	order   []busKey // insertion order of active episodes
	history []Event  // ring, oldest first once full
	histAt  int
	full    bool
	seq     uint64

	mActive *obs.Gauge
}

// New builds a bus.
func New(cfg Config) *Bus {
	b := &Bus{cfg: cfg, active: make(map[busKey]*Event)}
	b.history = make([]Event, 0, cfg.historySize())
	b.mActive = cfg.Metrics.Gauge("aqp_alerts_active",
		"Alert episodes currently firing.")
	return b
}

func (c Config) historySize() int {
	if c.History <= 0 {
		return 128
	}
	return c.History
}

// AddSink registers an additional sink. Not safe to call concurrently
// with Raise/Resolve; wire sinks up before the bus sees traffic.
func (b *Bus) AddSink(s Sink) {
	if b == nil || s == nil {
		return
	}
	b.cfg.Sinks = append(b.cfg.Sinks, s)
}

// Raise reports a condition. The first raise of a (source, kind, key)
// opens a firing episode and notifies sinks; while the episode stays
// open, further raises coalesce into it (Count, Observed, Message,
// LastSeen refresh) without re-notifying.
func (b *Bus) Raise(a Alert) {
	if b == nil {
		return
	}
	now := time.Now()
	k := busKey{a.Source, a.Kind, a.Key}
	b.mu.Lock()
	if ev, ok := b.active[k]; ok {
		ev.Count++
		ev.Observed = a.Observed
		ev.Expected = a.Expected
		if a.Message != "" {
			ev.Message = a.Message
		}
		if a.Severity != "" {
			ev.Severity = a.Severity
		}
		ev.LastSeen = now
		b.mu.Unlock()
		return
	}
	b.seq++
	ev := &Event{
		Alert:     a,
		State:     StateFiring,
		Count:     1,
		Seq:       b.seq,
		FirstSeen: now,
		LastSeen:  now,
	}
	b.active[k] = ev
	b.order = append(b.order, k)
	b.pushHistoryLocked(*ev)
	b.mActive.Set(int64(len(b.active)))
	b.cfg.Metrics.Counter("aqp_alerts_total",
		"Alert episodes opened, by source, kind and severity.",
		"source", a.Source, "kind", a.Kind, "severity", string(a.Severity)).Inc()
	out := *ev
	b.mu.Unlock()
	b.notify(out)
}

// Resolve closes the open episode for (source, kind, key), if any, and
// notifies sinks with State=resolved. Resolving a key that is not
// firing is a no-op, so producers can call it unconditionally on
// recovery.
func (b *Bus) Resolve(source, kind, key string) {
	if b == nil {
		return
	}
	k := busKey{source, kind, key}
	b.mu.Lock()
	ev, ok := b.active[k]
	if !ok {
		b.mu.Unlock()
		return
	}
	delete(b.active, k)
	for i, ord := range b.order {
		if ord == k {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.seq++
	ev.State = StateResolved
	ev.Seq = b.seq
	ev.ResolvedAt = time.Now()
	b.pushHistoryLocked(*ev)
	b.mActive.Set(int64(len(b.active)))
	out := *ev
	b.mu.Unlock()
	b.notify(out)
}

func (b *Bus) pushHistoryLocked(ev Event) {
	max := b.cfg.historySize()
	if len(b.history) < max {
		b.history = append(b.history, ev)
		return
	}
	b.history[b.histAt] = ev
	b.histAt = (b.histAt + 1) % max
	b.full = true
}

func (b *Bus) notify(ev Event) {
	for _, s := range b.cfg.Sinks {
		s.Notify(ev)
	}
}

// Active returns the firing episodes in the order they opened.
func (b *Bus) Active() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.order))
	for _, k := range b.order {
		if ev, ok := b.active[k]; ok {
			out = append(out, *ev)
		}
	}
	return out
}

// History returns past transitions, oldest first.
func (b *Bus) History() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.full {
		return append([]Event(nil), b.history...)
	}
	out := make([]Event, 0, len(b.history))
	out = append(out, b.history[b.histAt:]...)
	out = append(out, b.history[:b.histAt]...)
	return out
}

// Handler serves the bus state as JSON — mounted at /debug/alerts.
func (b *Bus) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Active  []Event `json:"active"`
			History []Event `json:"history"`
		}{Active: b.Active(), History: b.History()})
	})
}
