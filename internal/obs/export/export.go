// Package export ships finished query traces out of the process as
// OTLP/HTTP JSON (the ExportTraceServiceRequest shape any OpenTelemetry
// collector accepts) and/or as JSON lines appended to a local file for
// air-gapped runs.
//
// The exporter is deliberately decoupled from the query path: Finish
// hands a snapshot to ExportTrace, which does one non-blocking send into
// a bounded queue and returns — on overflow the trace is dropped and
// metered (aqp_export_dropped_total) rather than ever delaying a query.
// A single background worker batches snapshots, flushes by size or
// interval, retries failed posts with linear backoff, and drops (again
// metered) when retries are exhausted. Like the rest of internal/obs it
// consumes no engine randomness, so answers are bit-identical with
// export enabled or disabled.
package export

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes the exporter. Zero values take the documented defaults.
type Config struct {
	// URL is the OTLP/HTTP traces endpoint (e.g.
	// "http://collector:4318/v1/traces"). Empty disables HTTP posting.
	URL string
	// Path appends OTLP-shaped JSON lines (one ExportTraceServiceRequest
	// per flushed batch) to a file — the filesink fallback. Empty
	// disables it. At least one of URL and Path must be set.
	Path string
	// ServiceName becomes the OTLP resource's service.name ("aqp").
	ServiceName string
	// MaxBatch flushes when this many traces are buffered (0 = 64).
	MaxBatch int
	// FlushInterval flushes a partial batch this often (0 = 2s).
	FlushInterval time.Duration
	// QueueSize bounds the handoff queue between the query path and the
	// worker (0 = 256); overflow drops, never blocks.
	QueueSize int
	// MaxRetries is how many additional attempts a failed POST gets
	// before its batch is dropped (0 = 3).
	MaxRetries int
	// RetryBackoff is the base delay between attempts, scaled linearly
	// (0 = 250ms).
	RetryBackoff time.Duration
	// Timeout bounds each POST (0 = 5s).
	Timeout time.Duration
	// Metrics receives aqp_export_* series (nil = unmetered).
	Metrics *obs.Registry
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 64
	}
	return c.MaxBatch
}

func (c Config) flushInterval() time.Duration {
	if c.FlushInterval <= 0 {
		return 2 * time.Second
	}
	return c.FlushInterval
}

func (c Config) queueSize() int {
	if c.QueueSize <= 0 {
		return 256
	}
	return c.QueueSize
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 5 * time.Second
	}
	return c.Timeout
}

func (c Config) serviceName() string {
	if c.ServiceName == "" {
		return "aqp"
	}
	return c.ServiceName
}

// Exporter implements obs.SpanExporter. Construct with New, attach via
// Tracer.SetExporter, and Close on shutdown to flush the tail.
type Exporter struct {
	cfg    Config
	ch     chan obs.TraceSnapshot
	flush  chan chan struct{}
	file   *os.File
	client *http.Client

	mu     sync.RWMutex // guards closed vs. sends on ch
	closed bool
	wg     sync.WaitGroup

	mTraces  *obs.Counter
	mDropQ   *obs.Counter
	mDropS   *obs.Counter
	mDropW   *obs.Counter
	mBatchOK *obs.Counter
	mBatchNG *obs.Counter
	mRetries *obs.Counter
	mQueue   *obs.Gauge
}

// New builds an exporter and starts its worker. At least one of
// Config.URL and Config.Path must be set.
func New(cfg Config) (*Exporter, error) {
	if cfg.URL == "" && cfg.Path == "" {
		return nil, errors.New("export: config needs a URL or a Path")
	}
	e := &Exporter{
		cfg:   cfg,
		ch:    make(chan obs.TraceSnapshot, cfg.queueSize()),
		flush: make(chan chan struct{}),
	}
	if cfg.Path != "" {
		f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("export: open filesink: %w", err)
		}
		e.file = f
	}
	if cfg.URL != "" {
		e.client = &http.Client{Timeout: cfg.timeout()}
	}
	reg := cfg.Metrics
	e.mTraces = reg.Counter("aqp_export_traces_total",
		"Traces accepted into the export queue.")
	e.mDropQ = reg.Counter("aqp_export_dropped_total",
		"Traces dropped by the exporter, by reason.", "reason", "queue_full")
	e.mDropS = reg.Counter("aqp_export_dropped_total",
		"Traces dropped by the exporter, by reason.", "reason", "send_failed")
	e.mDropW = reg.Counter("aqp_export_dropped_total",
		"Traces dropped by the exporter, by reason.", "reason", "write_failed")
	e.mBatchOK = reg.Counter("aqp_export_batches_total",
		"Export batches flushed, by result.", "result", "ok")
	e.mBatchNG = reg.Counter("aqp_export_batches_total",
		"Export batches flushed, by result.", "result", "error")
	e.mRetries = reg.Counter("aqp_export_retries_total",
		"POST attempts retried after a failure.")
	e.mQueue = reg.Gauge("aqp_export_queue_depth",
		"Traces waiting in the export queue.")
	e.wg.Add(1)
	go e.worker()
	return e, nil
}

// ExportTrace enqueues a finished trace. It never blocks: when the
// queue is full (or the exporter is closed) the trace is dropped and
// aqp_export_dropped_total{reason="queue_full"} is bumped.
func (e *Exporter) ExportTrace(t obs.TraceSnapshot) {
	if e == nil {
		return
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.mDropQ.Inc()
		return
	}
	select {
	case e.ch <- t:
		e.mTraces.Inc()
		e.mQueue.Set(int64(len(e.ch)))
	default:
		e.mDropQ.Inc()
	}
}

// Flush synchronously drains the queue and sends any buffered batch.
// Intended for tests and shutdown paths; a closed exporter returns
// immediately.
func (e *Exporter) Flush() {
	if e == nil {
		return
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return
	}
	ack := make(chan struct{})
	e.flush <- ack
	e.mu.RUnlock()
	<-ack
}

// Close flushes buffered traces and stops the worker. Traces exported
// after Close are dropped (metered).
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.ch)
	e.mu.Unlock()
	e.wg.Wait()
	if e.file != nil {
		return e.file.Close()
	}
	return nil
}

func (e *Exporter) worker() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.flushInterval())
	defer ticker.Stop()
	var batch []obs.TraceSnapshot
	send := func() {
		if len(batch) > 0 {
			e.send(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case t, ok := <-e.ch:
			if !ok {
				send()
				return
			}
			e.mQueue.Set(int64(len(e.ch)))
			batch = append(batch, t)
			if len(batch) >= e.cfg.maxBatch() {
				send()
			}
		case <-ticker.C:
			send()
		case ack := <-e.flush:
			// Drain whatever the query path already enqueued, then send.
		drain:
			for {
				select {
				case t, ok := <-e.ch:
					if !ok {
						break drain
					}
					batch = append(batch, t)
				default:
					break drain
				}
			}
			e.mQueue.Set(int64(len(e.ch)))
			send()
			close(ack)
		}
	}
}

func (e *Exporter) send(batch []obs.TraceSnapshot) {
	body, err := json.Marshal(otlpRequest(e.cfg.serviceName(), batch))
	if err != nil {
		e.mDropS.Add(int64(len(batch)))
		e.mBatchNG.Inc()
		return
	}
	ok := true
	if e.file != nil {
		if _, err := e.file.Write(append(body, '\n')); err != nil {
			e.mDropW.Add(int64(len(batch)))
			ok = false
		}
	}
	if e.client != nil && !e.post(body) {
		e.mDropS.Add(int64(len(batch)))
		ok = false
	}
	if ok {
		e.mBatchOK.Inc()
	} else {
		e.mBatchNG.Inc()
	}
}

// post attempts the OTLP POST with linear-backoff retries; it reports
// whether the collector eventually accepted the batch.
func (e *Exporter) post(body []byte) bool {
	attempts := 1 + e.cfg.maxRetries()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			e.mRetries.Inc()
			time.Sleep(time.Duration(i) * e.cfg.retryBackoff())
		}
		resp, err := e.client.Post(e.cfg.URL, "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return true
		}
		// 4xx means the payload is unacceptable; retrying cannot help.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return false
		}
	}
	return false
}
