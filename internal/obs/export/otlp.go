// OTLP/HTTP JSON mapping. The wire shape follows the proto3 JSON
// encoding of opentelemetry.proto.collector.trace.v1.ExportTraceServiceRequest:
// resourceSpans → scopeSpans → spans, hex-encoded ids, nanosecond
// timestamps as decimal strings, and attributes as {key, value:{...}}
// pairs. Only the subset the engine emits is modelled — enough for any
// OTLP collector to ingest without a translation shim.
package export

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

const (
	spanKindInternal = 1
	spanKindServer   = 2

	statusCodeError = 2
)

type otlpExportRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            *otlpStatus    `json:"status,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // int64 renders as string in proto3 JSON
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

func strAttr(key, v string) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpValue{StringValue: &v}}
}

func anyAttr(key string, v any) otlpKeyValue {
	switch x := v.(type) {
	case string:
		return strAttr(key, x)
	case bool:
		return otlpKeyValue{Key: key, Value: otlpValue{BoolValue: &x}}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpKeyValue{Key: key, Value: otlpValue{IntValue: &s}}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpKeyValue{Key: key, Value: otlpValue{IntValue: &s}}
	case uint64:
		s := strconv.FormatUint(x, 10)
		return otlpKeyValue{Key: key, Value: otlpValue{IntValue: &s}}
	case float64:
		return otlpKeyValue{Key: key, Value: otlpValue{DoubleValue: &x}}
	default:
		return strAttr(key, fmt.Sprint(v))
	}
}

func nanos(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// childSpanID derives a deterministic span id for a nested stage span
// from the root span id and the child's tree path — the engine records
// no per-span runtime ids, and deterministic derivation keeps export
// off the query path's allocation budget and out of the RNG entirely.
func childSpanID(rootSpanID, path string) string {
	h := fnv.New64a()
	h.Write([]byte(rootSpanID))
	h.Write([]byte{0})
	h.Write([]byte(path))
	sum := h.Sum64()
	if sum == 0 {
		sum = 1
	}
	return fmt.Sprintf("%016x", sum)
}

// otlpRequest renders a batch of finished traces as one
// ExportTraceServiceRequest. Traces that predate trace-context binding
// (no TraceID on the snapshot) get a freshly minted identity so they
// still export.
func otlpRequest(serviceName string, batch []obs.TraceSnapshot) otlpExportRequest {
	spans := make([]otlpSpan, 0, len(batch)*4)
	for _, t := range batch {
		traceID, spanID, parent := t.TraceID, t.SpanID, t.ParentSpanID
		if traceID == "" || spanID == "" {
			tc := obs.NewTraceContext()
			traceID, spanID, parent = tc.TraceIDString(), tc.SpanIDString(), ""
		}
		start := t.Start
		end := start.Add(time.Duration(t.TotalMs * float64(time.Millisecond)))
		root := otlpSpan{
			TraceID:           traceID,
			SpanID:            spanID,
			ParentSpanID:      parent,
			Name:              "query",
			Kind:              spanKindServer,
			StartTimeUnixNano: nanos(start),
			EndTimeUnixNano:   nanos(end),
			Attributes: []otlpKeyValue{
				strAttr("db.statement", t.SQL),
				anyAttr("aqp.query_id", t.ID),
				strAttr("aqp.outcome", t.Outcome),
			},
		}
		if t.QueueWaitMs > 0 {
			root.Attributes = append(root.Attributes, anyAttr("aqp.queue_wait_ms", t.QueueWaitMs))
		}
		if t.Outcome == "error" || t.Outcome == "cancelled" {
			root.Status = &otlpStatus{Code: statusCodeError, Message: t.Err}
		}
		spans = append(spans, root)
		for i, s := range t.Spans {
			spans = appendSpanTree(spans, traceID, spanID, spanID,
				strconv.Itoa(i), start, s)
		}
	}
	return otlpExportRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKeyValue{
			strAttr("service.name", serviceName),
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "repro/internal/obs"},
			Spans: spans,
		}},
	}}}
}

func appendSpanTree(out []otlpSpan, traceID, rootSpanID, parentID, path string,
	qstart time.Time, s obs.SpanSnapshot) []otlpSpan {
	id := childSpanID(rootSpanID, path)
	start := qstart.Add(time.Duration(s.StartMs * float64(time.Millisecond)))
	end := start.Add(time.Duration(s.Ms * float64(time.Millisecond)))
	sp := otlpSpan{
		TraceID:           traceID,
		SpanID:            id,
		ParentSpanID:      parentID,
		Name:              s.Stage,
		Kind:              spanKindInternal,
		StartTimeUnixNano: nanos(start),
		EndTimeUnixNano:   nanos(end),
	}
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sp.Attributes = append(sp.Attributes, anyAttr("aqp."+k, s.Attrs[k]))
		}
	}
	out = append(out, sp)
	for i, c := range s.Children {
		out = appendSpanTree(out, traceID, rootSpanID, id,
			path+"."+strconv.Itoa(i), qstart, c)
	}
	return out
}
