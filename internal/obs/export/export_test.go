package export

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func testSnapshot(traceID, spanID string) obs.TraceSnapshot {
	return obs.TraceSnapshot{
		ID:      7,
		SQL:     "SELECT AVG(X) FROM T",
		TraceID: traceID,
		SpanID:  spanID,
		Start:   time.Unix(1700000000, 0),
		TotalMs: 12.5,
		Outcome: "ok",
		Spans: []obs.SpanSnapshot{
			{Stage: "analyze", StartMs: 0.1, Ms: 0.4},
			{Stage: "scan", StartMs: 0.5, Ms: 10,
				Attrs: map[string]any{"rows": 1000},
				Children: []obs.SpanSnapshot{
					{Stage: "estimate", StartMs: 2, Ms: 3},
				}},
		},
	}
}

// TestExporterPostsOTLP pins the wire shape: one ExportTraceServiceRequest
// with the service resource, a SERVER root span carrying the snapshot's
// trace identity, and INTERNAL children parented under it.
func TestExporterPostsOTLP(t *testing.T) {
	var mu sync.Mutex
	var bodies [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf [1 << 16]byte
		n, _ := r.Body.Read(buf[:])
		mu.Lock()
		bodies = append(bodies, append([]byte(nil), buf[:n]...))
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	exp, err := New(Config{URL: srv.URL, ServiceName: "aqp-test", Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	const spanID = "b7ad6b7169203331"
	exp.ExportTrace(testSnapshot(traceID, spanID))
	exp.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 {
		t.Fatalf("collector received %d batches, want 1", len(bodies))
	}
	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Kind         int    `json:"kind"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(bodies[0], &req); err != nil {
		t.Fatalf("collector body is not JSON: %v", err)
	}
	if len(req.ResourceSpans) != 1 || len(req.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected envelope shape: %s", bodies[0])
	}
	res := req.ResourceSpans[0]
	foundService := false
	for _, kv := range res.Resource.Attributes {
		if kv.Key == "service.name" && kv.Value.StringValue == "aqp-test" {
			foundService = true
		}
	}
	if !foundService {
		t.Error("resource is missing service.name=aqp-test")
	}
	spans := res.ScopeSpans[0].Spans
	if len(spans) != 4 { // root + analyze + scan + estimate
		t.Fatalf("exported %d spans, want 4", len(spans))
	}
	root := spans[0]
	if root.Name != "query" || root.Kind != 2 {
		t.Errorf("root span = %q kind %d, want \"query\" kind 2 (SERVER)", root.Name, root.Kind)
	}
	if root.TraceID != traceID || root.SpanID != spanID {
		t.Errorf("root identity %s/%s, want %s/%s", root.TraceID, root.SpanID, traceID, spanID)
	}
	byName := map[string]int{}
	for i, s := range spans {
		byName[s.Name] = i
		if s.TraceID != traceID {
			t.Errorf("span %s has trace ID %s", s.Name, s.TraceID)
		}
		if i > 0 && s.Kind != 1 {
			t.Errorf("child span %s kind %d, want 1 (INTERNAL)", s.Name, s.Kind)
		}
		if s.Start == "" || s.End == "" {
			t.Errorf("span %s missing timestamps", s.Name)
		}
	}
	if spans[byName["scan"]].ParentSpanID != spanID {
		t.Error("scan span not parented under the root")
	}
	if spans[byName["estimate"]].ParentSpanID != spans[byName["scan"]].SpanID {
		t.Error("estimate span not parented under scan")
	}
}

// TestExporterOverflowDropsNotBlocks pins the queue-overflow contract:
// with the worker wedged on a slow collector, excess ExportTrace calls
// return immediately and the overflow is metered, never blocking the
// caller (the query path).
func TestExporterOverflowDropsNotBlocks(t *testing.T) {
	release := make(chan struct{})
	var wedged sync.Once
	wedgedC := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wedged.Do(func() { close(wedgedC) })
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	exp, err := New(Config{
		URL:       srv.URL,
		QueueSize: 4,
		MaxBatch:  1, // every trace is its own batch → worker wedges on the first
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	exp.ExportTrace(testSnapshot("", ""))
	<-wedgedC // worker is now stuck inside the POST

	// Fill the queue and then some; all calls must return promptly.
	var done atomic.Bool
	go func() {
		for i := 0; i < 50; i++ {
			exp.ExportTrace(testSnapshot("", ""))
		}
		done.Store(true)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !done.Load() {
		if time.Now().After(deadline) {
			t.Fatal("ExportTrace blocked with a wedged worker and a full queue")
		}
		time.Sleep(time.Millisecond)
	}

	dropped := reg.Counter("aqp_export_dropped_total",
		"Traces dropped by the exporter, by reason.", "reason", "queue_full").Value()
	if dropped < 46 { // 50 sends, 4 queue slots
		t.Errorf("dropped counter = %d, want >= 46", dropped)
	}
	close(release) // unwedge so Close's tail flush finishes fast
	exp.Close()
}

// TestExporterFilesink pins the air-gapped path: batches land as JSON
// lines in the configured file, one ExportTraceServiceRequest per line.
func TestExporterFilesink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	exp, err := New(Config{Path: path, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	exp.ExportTrace(testSnapshot("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"))
	exp.Flush()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var req map[string]any
	if err := json.Unmarshal(data, &req); err != nil {
		t.Fatalf("filesink line is not JSON: %v", err)
	}
	if _, ok := req["resourceSpans"]; !ok {
		t.Error("filesink line is missing resourceSpans")
	}
}

// TestExporterMintsIdentityForLegacySnapshots: traces recorded without a
// bound trace context still export, with a fresh identity.
func TestExporterMintsIdentityForLegacySnapshots(t *testing.T) {
	req := otlpRequest("aqp", []obs.TraceSnapshot{testSnapshot("", "")})
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 {
		t.Fatal("no spans exported")
	}
	if spans[0].TraceID == "" || spans[0].SpanID == "" {
		t.Error("legacy snapshot exported without a minted identity")
	}
}

// TestChildSpanIDDeterministic: stage span IDs derive from the root span
// and tree path only, so re-exporting the same trace yields the same IDs.
func TestChildSpanIDDeterministic(t *testing.T) {
	a := childSpanID("b7ad6b7169203331", "0.2")
	b := childSpanID("b7ad6b7169203331", "0.2")
	c := childSpanID("b7ad6b7169203331", "0.3")
	if a != b {
		t.Errorf("same inputs gave %s and %s", a, b)
	}
	if a == c {
		t.Error("different paths collided")
	}
	if len(a) != 16 {
		t.Errorf("span ID %q is not 16 hex chars", a)
	}
}
