package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), as consumed by chrome://tracing and https://ui.perfetto.dev.
// Timestamps and durations are microseconds; ts is relative to the
// query's start so traces from different queries all begin at zero.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders a finished query trace in the Chrome
// trace-event JSON format, one complete event per span (span attributes
// become event args) plus a metadata event naming the process after the
// query. Spans are recorded by the goroutine driving the pipeline, so
// everything lands on one timeline track.
func WriteChromeTrace(w io.Writer, t TraceSnapshot) error {
	events := []chromeEvent{{
		Name:  "process_name",
		Phase: "M",
		PID:   1,
		TID:   1,
		Args:  map[string]any{"name": t.SQL},
	}, {
		Name:  "query",
		Cat:   "query",
		Phase: "X",
		Ts:    0,
		Dur:   t.TotalMs * 1000,
		PID:   1,
		TID:   1,
		Args: map[string]any{
			"qid":           t.ID,
			"sql":           t.SQL,
			"outcome":       t.Outcome,
			"queue_wait_ms": t.QueueWaitMs,
		},
	}}
	for _, s := range t.Spans {
		events = appendChromeSpan(events, s)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

func appendChromeSpan(events []chromeEvent, s SpanSnapshot) []chromeEvent {
	ev := chromeEvent{
		Name:  s.Stage,
		Cat:   "stage",
		Phase: "X",
		Ts:    s.StartMs * 1000,
		Dur:   s.Ms * 1000,
		PID:   1,
		TID:   1,
	}
	if len(s.Attrs) > 0 {
		ev.Args = s.Attrs
	}
	events = append(events, ev)
	for _, c := range s.Children {
		events = appendChromeSpan(events, c)
	}
	return events
}
