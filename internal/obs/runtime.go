package obs

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntimeMetrics appends Go runtime gauges — heap, GC and goroutine
// state — to a Prometheus text exposition. The engine's own registry holds
// only query-derived series; these come from runtime.ReadMemStats at
// scrape time, so an operator watching /metrics sees memory pressure and
// goroutine leaks next to query latency without a sidecar exporter.
//
// ReadMemStats stops the world for on the order of tens of microseconds;
// at scrape cadence (seconds) that is noise.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("go_goroutines", "Number of goroutines that currently exist.",
		uint64(runtime.NumGoroutine()))
	gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", ms.HeapAlloc)
	gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", ms.HeapSys)
	gauge("go_heap_objects", "Number of allocated heap objects.", ms.HeapObjects)
	gauge("go_next_gc_bytes", "Heap size target of the next GC cycle.", ms.NextGC)

	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n"+
		"# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n"+
		"# TYPE go_gc_pause_seconds_total counter\ngo_gc_pause_seconds_total %s\n",
		formatFloat(float64(ms.PauseTotalNs)/1e9))
	fmt.Fprintf(w, "# HELP go_alloc_bytes_total Cumulative bytes allocated for heap objects.\n"+
		"# TYPE go_alloc_bytes_total counter\ngo_alloc_bytes_total %d\n", ms.TotalAlloc)
}
