package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeMetricsAndDebugQueries(t *testing.T) {
	tr := NewTracer(Options{RingSize: 4})
	for i := 0; i < 6; i++ {
		qt := tr.StartQuery(fmt.Sprintf("SELECT %d", i))
		s := qt.StartSpan(StageScan)
		s.AddInt("rows_scanned", int64(100*(i+1)))
		s.End()
		qt.Finish(nil)
	}

	srv, err := Serve("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	checkPromText(t, metrics)
	if !strings.Contains(metrics, `aqp_queries_total{outcome="ok"} 6`) {
		t.Fatalf("/metrics missing query counter:\n%s", metrics)
	}

	body, ctype := get("/debug/queries")
	if ctype != "application/json" {
		t.Fatalf("/debug/queries content type = %q", ctype)
	}
	var traces []TraceSnapshot
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/queries is not valid JSON: %v\n%s", err, body)
	}
	if len(traces) != 4 {
		t.Fatalf("got %d traces, want ring size 4", len(traces))
	}
	if traces[0].SQL != "SELECT 5" {
		t.Fatalf("traces[0].SQL = %q, want newest first", traces[0].SQL)
	}
	if len(traces[0].Spans) != 1 || traces[0].Spans[0].Stage != StageScan {
		t.Fatalf("span tree lost in JSON: %+v", traces[0].Spans)
	}

	limited, _ := get("/debug/queries?n=2")
	if err := json.Unmarshal([]byte(limited), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("?n=2 returned %d traces", len(traces))
	}
}

func TestServeNilTracer(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve(nil tracer) should error")
	}
}
