// Package obs is the engine's zero-dependency telemetry subsystem: per-query
// trace spans mirroring the paper's pipeline stages (parse → plan → scan →
// bootstrap-kernel → diagnostic → fallback), a bounded ring of recent query
// traces, and a metrics registry of atomic counters and fixed-bucket
// histograms rendered in the Prometheus text format.
//
// Everything is nil-safe: a nil *Tracer (telemetry disabled) propagates nil
// *QueryTrace, *Span and *Registry values whose methods are no-ops, so
// instrumented hot paths pay one pointer comparison and nothing else.
// Tracing never consumes engine randomness — answers, error bars and
// diagnostic verdicts are bit-identical with telemetry on or off, and two
// runs with the same seed produce the same span structure (stages and
// attributes; only durations vary).
package obs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical stage names, matching the paper's Figs. 7–9 pipeline
// components (see DESIGN.md).
const (
	StageParse      = "parse"
	StagePlan       = "plan"
	StageScan       = "scan"
	StageBootstrap  = "bootstrap-kernel"
	StageDiagnostic = "diagnostic"
	StageEstimate   = "estimate"
	StageFallback   = "fallback"
	StageClusterSim = "cluster-sim"
)

// SpanExporter receives finished traces for out-of-process export (see
// internal/obs/export). Implementations must never block: Finish calls
// ExportTrace synchronously on the query path, so exporters enqueue into
// a bounded buffer and drop (metered) on overflow.
type SpanExporter interface {
	ExportTrace(TraceSnapshot)
}

// exporterBox wraps the interface so Tracer can hold it in an
// atomic.Pointer (interfaces are not directly atomically storable).
type exporterBox struct{ exp SpanExporter }

// Tracer records per-query traces into a bounded ring and aggregates
// metrics into a Registry. Nil disables everything.
type Tracer struct {
	reg  *Registry
	ring *traceRing
	qid  atomic.Uint64
	exp  atomic.Pointer[exporterBox]
}

// NewTracer returns a tracer with an empty registry and trace ring.
func NewTracer(opt Options) *Tracer {
	return &Tracer{reg: NewRegistry(),
		ring: &traceRing{buf: make([]TraceSnapshot, opt.ringSize())}}
}

// Registry returns the tracer's metrics registry (nil for a nil tracer).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// SetExporter attaches (or, with nil, detaches) a span exporter; every
// subsequently finished trace is offered to it after the ring push.
func (t *Tracer) SetExporter(exp SpanExporter) {
	if t == nil {
		return
	}
	if exp == nil {
		t.exp.Store(nil)
		return
	}
	t.exp.Store(&exporterBox{exp: exp})
}

// StartQuery opens a trace for one query. The returned QueryTrace (nil for
// a nil tracer) collects top-level stage spans and is published to the
// ring by Finish.
func (t *Tracer) StartQuery(sql string) *QueryTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	qt := &QueryTrace{tr: t, id: t.qid.Add(1), sql: sql, start: now}
	qt.root = &Span{qt: qt, stage: "query", start: now}
	return qt
}

// Recent returns the ring's traces ordered newest first: Recent()[0] is
// the most recently finished query, Recent()[1] the one before it, and so
// on. The ordering is part of the API contract — /debug/queries, Last and
// the shell's -explain all rely on it — and is covered by tests.
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Last returns the most recently finished trace.
func (t *Tracer) Last() (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	rs := t.ring.snapshot()
	if len(rs) == 0 {
		return TraceSnapshot{}, false
	}
	return rs[0], true
}

// QueryTrace is one query's span tree while it is being recorded.
type QueryTrace struct {
	tr    *Tracer
	id    uint64
	sql   string
	start time.Time

	mu        sync.Mutex
	root      *Span
	tc        TraceContext
	queueWait time.Duration
	done      bool
	snap      TraceSnapshot
}

// SetTraceContext binds the query's distributed-trace identity; the IDs
// land on the finished TraceSnapshot and flow to the event log, history
// and exporter. A no-op after Finish or for an invalid context.
func (q *QueryTrace) SetTraceContext(tc TraceContext) {
	if q == nil || !tc.Valid() {
		return
	}
	q.mu.Lock()
	if !q.done {
		q.tc = tc
	}
	q.mu.Unlock()
}

// TraceContext returns the identity bound by SetTraceContext (zero value
// if none was bound).
func (q *QueryTrace) TraceContext() TraceContext {
	if q == nil {
		return TraceContext{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tc
}

// ID returns the tracer-scoped query id (0 for a nil trace).
func (q *QueryTrace) ID() uint64 {
	if q == nil {
		return 0
	}
	return q.id
}

// Root returns the trace's root span; top-level stage spans are its
// children.
func (q *QueryTrace) Root() *Span {
	if q == nil {
		return nil
	}
	return q.root
}

// Metrics returns the owning tracer's registry (nil-safe).
func (q *QueryTrace) Metrics() *Registry {
	if q == nil {
		return nil
	}
	return q.tr.Registry()
}

// StartSpan opens a top-level stage span.
func (q *QueryTrace) StartSpan(stage string) *Span {
	if q == nil {
		return nil
	}
	return q.root.StartSpan(stage)
}

// SetQueueWait records the time the query spent waiting for an execution
// slot before StartQuery — the admission layer's queue delay, which is
// otherwise invisible to the span tree because the trace only opens once
// the query starts executing.
func (q *QueryTrace) SetQueueWait(d time.Duration) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.queueWait = d
	q.mu.Unlock()
}

// Snapshot returns the finished trace. It reports false before Finish.
func (q *QueryTrace) Snapshot() (TraceSnapshot, bool) {
	if q == nil {
		return TraceSnapshot{}, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.snap, q.done
}

// Finish closes the trace: total duration is recorded, the snapshot is
// pushed into the tracer's ring, and per-stage latency plus query outcome
// metrics are observed. Finishing twice is a no-op.
func (q *QueryTrace) Finish(err error) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.done {
		q.mu.Unlock()
		return
	}
	q.done = true
	q.root.dur = time.Since(q.start)
	outcome := Outcome(err)
	snap := TraceSnapshot{
		ID:          q.id,
		SQL:         q.sql,
		Start:       q.start,
		TotalMs:     float64(q.root.dur) / float64(time.Millisecond),
		QueueWaitMs: float64(q.queueWait) / float64(time.Millisecond),
		Outcome:     outcome,
	}
	if q.tc.Valid() {
		snap.TraceID = q.tc.TraceIDString()
		snap.SpanID = q.tc.SpanIDString()
		snap.ParentSpanID = q.tc.ParentString()
	}
	if err != nil {
		snap.Err = err.Error()
	}
	for _, c := range q.root.children {
		snap.Spans = append(snap.Spans, c.snapshotLocked())
	}
	q.snap = snap
	q.mu.Unlock()

	q.tr.ring.push(snap)
	if box := q.tr.exp.Load(); box != nil {
		box.exp.ExportTrace(snap)
	}
	reg := q.tr.Registry()
	reg.Counter("aqp_queries_total",
		"Queries answered, by outcome.", "outcome", outcome).Inc()
	reg.Histogram("aqp_query_duration_seconds",
		"End-to-end local query latency.", LatencyBuckets).
		Observe(q.root.dur.Seconds())
	h := func(stage string) *Histogram {
		return reg.Histogram("aqp_stage_duration_seconds",
			"Per-stage local latency (the Figs. 7–9 breakdown).",
			LatencyBuckets, "stage", stage)
	}
	for _, s := range snap.Spans {
		h(s.Stage).Observe(s.Ms / 1e3)
	}
}

// Span is one pipeline stage (or sub-stage) of a trace. Methods are
// nil-safe; spans must only be mutated by the goroutine driving the query
// pipeline (the executor's internal fan-out does not touch spans).
type Span struct {
	qt       *QueryTrace
	stage    string
	start    time.Time
	dur      time.Duration
	attrs    []Attr
	children []*Span
}

// Attr is one key/value attribute on a span. Values are JSON-encodable
// scalars (string, int64, float64, bool).
type Attr struct {
	Key   string
	Value any
}

// StartSpan opens a child span.
func (s *Span) StartSpan(stage string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{qt: s.qt, stage: stage, start: time.Now()}
	s.qt.mu.Lock()
	s.children = append(s.children, c)
	s.qt.mu.Unlock()
	return c
}

// End fixes the span's duration at time-since-start. Spans accumulated
// with AddDuration need no End; calling End after AddDuration keeps the
// accumulated total.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.qt.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
	}
	s.qt.mu.Unlock()
}

// AddDuration accumulates execution time into the span — for stages whose
// work is fragmented across the per-group/per-aggregate loop (the
// bootstrap kernel and the diagnostic run once per aggregate).
func (s *Span) AddDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.qt.mu.Lock()
	s.dur += d
	s.qt.mu.Unlock()
}

// Metrics returns the registry of the tracer owning this span (nil-safe).
func (s *Span) Metrics() *Registry {
	if s == nil {
		return nil
	}
	return s.qt.Metrics()
}

// SetAttr sets an attribute, replacing an existing value for the key.
// Non-finite floats are stored as strings so traces stay JSON-encodable.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if f, ok := value.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
		value = formatFloat(f)
	}
	s.qt.mu.Lock()
	defer s.qt.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AddInt accumulates n into an integer attribute. Zero increments do not
// create the attribute — counter attrs only appear on spans that did the
// corresponding work.
func (s *Span) AddInt(key string, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.qt.mu.Lock()
	defer s.qt.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			if v, ok := s.attrs[i].Value.(int64); ok {
				s.attrs[i].Value = v + n
			}
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: n})
}

// snapshotLocked renders the span subtree; the caller holds qt.mu.
func (s *Span) snapshotLocked() SpanSnapshot {
	dur := s.dur
	if dur == 0 {
		dur = time.Since(s.start)
	}
	out := SpanSnapshot{
		Stage:   s.stage,
		StartMs: float64(s.start.Sub(s.qt.start)) / float64(time.Millisecond),
		Ms:      float64(dur) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshotLocked())
	}
	return out
}

// Outcome classifies a query's final error into the label used by
// aqp_queries_total and TraceSnapshot.Outcome: "ok", "cancelled" (the error
// wraps context.Canceled or context.DeadlineExceeded — an abandoned query,
// not an engine failure), or "error".
func Outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "error"
	}
}

// TraceSnapshot is a finished query trace, as served by /debug/queries
// (newest first — the ring's Recent ordering is preserved in the JSON).
type TraceSnapshot struct {
	ID  uint64 `json:"id"`
	SQL string `json:"sql"`
	// TraceID/SpanID/ParentSpanID are the query's W3C trace-context
	// identity (32/16/16 lowercase hex): the trace ID a client sent via
	// traceparent (or a server-minted root), the span this process owns
	// for the query, and the caller's span ("" for a root). They join
	// the span ring to the event log, history records, audit records and
	// exported OTLP spans.
	TraceID      string    `json:"trace_id,omitempty"`
	SpanID       string    `json:"span_id,omitempty"`
	ParentSpanID string    `json:"parent_span_id,omitempty"`
	Start        time.Time `json:"start"`
	TotalMs      float64   `json:"total_ms"`
	// QueueWaitMs is the admission-queue delay before execution began
	// (zero for queries that bypassed a serving layer).
	QueueWaitMs float64        `json:"queue_wait_ms,omitempty"`
	Outcome     string         `json:"outcome,omitempty"`
	Err         string         `json:"error,omitempty"`
	Spans       []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one recorded span.
type SpanSnapshot struct {
	Stage string `json:"stage"`
	// StartMs is the span's start offset from the query's start — the
	// field the Chrome trace-event export needs to lay spans on a
	// timeline rather than just report durations.
	StartMs  float64        `json:"start_ms"`
	Ms       float64        `json:"ms"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Structure renders the trace's timing-independent shape — stage names,
// nesting and attributes, durations excluded — for determinism checks:
// two runs with the same seed must produce equal structures.
func (t TraceSnapshot) Structure() string {
	var b strings.Builder
	b.WriteString(t.SQL)
	for _, s := range t.Spans {
		s.structure(&b, 1)
	}
	return b.String()
}

func (s SpanSnapshot) structure(b *strings.Builder, depth int) {
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Stage)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('(')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%v", k, s.Attrs[k])
		}
		b.WriteByte(')')
	}
	for _, c := range s.Children {
		c.structure(b, depth+1)
	}
}

// FormatTrace renders a human-readable span tree (the aqpshell -explain
// output): total latency, outcome, queue wait when the query waited for an
// admission slot, and the error for failed queries.
func FormatTrace(t TraceSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace q%d: %.3fms total", t.ID, t.TotalMs)
	if t.Outcome != "" {
		fmt.Fprintf(&b, ", outcome=%s", t.Outcome)
	}
	if t.QueueWaitMs > 0 {
		fmt.Fprintf(&b, ", queue_wait=%.3fms", t.QueueWaitMs)
	}
	if t.Err != "" {
		fmt.Fprintf(&b, " (error: %s)", t.Err)
	}
	b.WriteByte('\n')
	for _, s := range t.Spans {
		s.format(&b, 1)
	}
	return b.String()
}

func (s SpanSnapshot) format(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%-18s %9.3fms", strings.Repeat("  ", depth), s.Stage, s.Ms)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%v", k, s.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.format(b, depth+1)
	}
}

// traceRing is a bounded ring of finished traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceSnapshot
	next int
	n    int
}

func (r *traceRing) push(t TraceSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot returns the retained traces, newest first.
func (r *traceRing) snapshot() []TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
