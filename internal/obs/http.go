package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the tracer's HTTP surface:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/queries  recent query traces as JSON, newest first (?n= limits)
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		traces := t.Recent()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(traces) {
				traces = traces[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Server is a live metrics endpoint.
type Server struct {
	// Addr is the bound address (useful with a ":0" listen request).
	Addr string
	srv  *http.Server
}

// Serve starts an HTTP server for the tracer's Handler on addr. The
// returned Server reports the bound address and must be Closed by the
// caller.
func Serve(addr string, t *Tracer) (*Server, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: cannot serve a nil tracer")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: t.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
