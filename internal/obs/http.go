package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
)

// Debug-page list clamping, shared by every JSON debug surface that
// renders a variable-length list (/debug/queries here, /debug/cache in
// the engine): ?limit= (alias ?n=) selects the entry count, defaulting
// to DebugLimitDefault and clamped to DebugLimitMax so a stray request
// cannot serialize an unbounded document.
const (
	DebugLimitDefault = 64
	DebugLimitMax     = 1024
)

// LimitParam parses the shared ?limit= (alias ?n=) query parameter:
// missing or malformed values yield def, negatives yield 0, and
// anything above max clamps to max.
func LimitParam(q url.Values, def, max int) int {
	s := q.Get("limit")
	if s == "" {
		s = q.Get("n")
	}
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	if n < 0 {
		return 0
	}
	if n > max {
		return max
	}
	return n
}

// Route is an extra HTTP route mounted on the tracer's debug mux — the
// hook the engine uses to attach surfaces owned by other subsystems (the
// calibration watchdog's /debug/calibration page).
type Route struct {
	Pattern string
	Handler http.Handler
}

// Handler returns the tracer's HTTP surface:
//
//	/metrics                   Prometheus text exposition: the registry
//	                           plus Go runtime gauges (heap, GC, goroutines)
//	/debug/queries             recent query traces as JSON, newest first
//	                           (ordering matches Tracer.Recent). Filters:
//	                           ?outcome=ok|cancelled|error, ?trace_id=<hex>,
//	                           and ?limit= (?n= is an alias) applied after
//	                           the filters — default 64, capped at 1024
//	                           (the shared LimitParam clamp).
//	/debug/queries/{id}/trace  one query as Chrome trace-event JSON, for
//	                           chrome://tracing or ui.perfetto.dev
//	/debug/histograms          registered histograms with p50/p90/p99
//	/debug/pprof/...           the standard net/http/pprof surface
//
// Extra routes are mounted verbatim after the built-ins.
func (t *Tracer) Handler(extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Registry().WritePrometheus(w)
		WriteRuntimeMetrics(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		traces := t.Recent()
		q := r.URL.Query()
		if outcome := q.Get("outcome"); outcome != "" {
			kept := traces[:0:0]
			for _, tr := range traces {
				if tr.Outcome == outcome {
					kept = append(kept, tr)
				}
			}
			traces = kept
		}
		if tid := q.Get("trace_id"); tid != "" {
			kept := traces[:0:0]
			for _, tr := range traces {
				if tr.TraceID == tid {
					kept = append(kept, tr)
				}
			}
			traces = kept
		}
		if n := LimitParam(q, DebugLimitDefault, DebugLimitMax); n < len(traces) {
			traces = traces[:n]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/queries/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad query id", http.StatusBadRequest)
			return
		}
		for _, tr := range t.Recent() {
			if tr.ID == id {
				w.Header().Set("Content-Type", "application/json")
				if err := WriteChromeTrace(w, tr); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
				return
			}
		}
		http.Error(w, fmt.Sprintf("query %d not in the trace ring", id), http.StatusNotFound)
	})
	mux.HandleFunc("/debug/histograms", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Registry().HistogramStats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// Server is a live metrics endpoint.
type Server struct {
	// Addr is the bound address (useful with a ":0" listen request).
	Addr string
	srv  *http.Server
}

// Serve starts an HTTP server for the tracer's Handler on addr, with any
// extra routes mounted alongside the built-ins. The returned Server
// reports the bound address and must be Closed by the caller.
func Serve(addr string, t *Tracer, extra ...Route) (*Server, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: cannot serve a nil tracer")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener on %q: %w", addr, err)
	}
	srv := &http.Server{Handler: t.Handler(extra...)}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
