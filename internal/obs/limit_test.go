package obs

import (
	"net/url"
	"testing"
)

// TestLimitParam pins the shared ?limit= clamp used by /debug/queries and
// /debug/cache: default on absence or garbage, floor at zero, cap at max,
// and the legacy ?n= alias.
func TestLimitParam(t *testing.T) {
	cases := []struct {
		query string
		want  int
	}{
		{"", DebugLimitDefault},
		{"limit=", DebugLimitDefault},
		{"limit=abc", DebugLimitDefault},
		{"limit=7", 7},
		{"limit=0", 0},
		{"limit=-3", 0},
		{"limit=999999", DebugLimitMax},
		{"n=5", 5},
		{"limit=7&n=5", 7}, // limit wins over the alias
	}
	for _, tc := range cases {
		q, err := url.ParseQuery(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		if got := LimitParam(q, DebugLimitDefault, DebugLimitMax); got != tc.want {
			t.Errorf("LimitParam(%q) = %d, want %d", tc.query, got, tc.want)
		}
	}
	if got := LimitParam(url.Values{}, 10, 20); got != 10 {
		t.Errorf("custom default: got %d, want 10", got)
	}
	if got := LimitParam(url.Values{"limit": {"50"}}, 10, 20); got != 20 {
		t.Errorf("custom cap: got %d, want 20", got)
	}
}
