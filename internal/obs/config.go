package obs

// Config collects the telemetry knobs shared by the tracer and the event
// log. The zero value means "defaults everywhere", so existing call sites
// that construct Options or EventLogOptions literals keep working — both
// names are aliases of Config and the tracer and event log each read only
// the fields they care about.
type Config struct {
	// RingSize bounds the in-memory ring of recent query traces
	// (0 = 64). Read by NewTracer.
	RingSize int
	// SlowQueryMs is the latency threshold above which a query's event is
	// emitted at Warn level with slow=true (0 = 1000). Read by NewEventLog.
	SlowQueryMs float64
	// MaxRelErr, when positive, marks queries whose worst aggregate
	// relative error exceeds it as miscalibrated=true (Warn level), in
	// addition to queries with a rejected diagnostic verdict. Read by
	// NewEventLog.
	MaxRelErr float64
	// ExportURL, when set, enables the OTLP/HTTP JSON span exporter
	// (internal/obs/export) posting finished traces to this endpoint
	// (e.g. "http://collector:4318/v1/traces"). Read by core.New when it
	// wires the engine's tracer.
	ExportURL string
	// ExportPath, when set, enables the exporter's filesink fallback for
	// air-gapped runs: OTLP-shaped JSON lines appended to this file. May
	// be combined with ExportURL (spans go to both).
	ExportPath string
}

// Options configures a Tracer. It is an alias of Config: a tracer reads
// only RingSize.
type Options = Config

// EventLogOptions tunes an EventLog. It is an alias of Config: an event
// log reads only SlowQueryMs and MaxRelErr.
type EventLogOptions = Config

func (o Config) slowMs() float64 {
	if o.SlowQueryMs <= 0 {
		return 1000
	}
	return o.SlowQueryMs
}

func (o Config) ringSize() int {
	if o.RingSize <= 0 {
		return 64
	}
	return o.RingSize
}
