package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// W3C trace-context identity for one query. The engine never generates
// these from its own seeded RNG — IDs come from crypto/rand (with a
// time+counter fallback), so tracing consumes no engine randomness and
// cannot perturb sampling, bootstrap, or any other seeded decision.
//
// A TraceContext travels on the context.Context: transports
// (serve/http, wire) parse an incoming traceparent or mint a root one,
// inject it with ContextWithTrace, and the engine binds it to the
// query's trace via QueryTrace.SetTraceContext. SpanID is the span this
// process owns for the query; Parent is the caller's span (zero for a
// locally minted root).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Parent  [8]byte
}

// Valid reports whether the context carries usable identifiers: a
// non-zero trace ID and a non-zero span ID, per the W3C spec.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString renders the trace ID as 32 lowercase hex characters.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString renders this process's span ID as 16 hex characters.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// ParentString renders the caller's span ID, or "" for a root.
func (tc TraceContext) ParentString() string {
	if tc.Parent == ([8]byte{}) {
		return ""
	}
	return hex.EncodeToString(tc.Parent[:])
}

// Traceparent renders the context as a W3C traceparent header value,
// version 00, sampled flag set.
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", tc.TraceIDString(), tc.SpanIDString())
}

// idFallback feeds the (never expected) path where crypto/rand fails:
// a monotone counter mixed with wall time still yields unique IDs.
var idFallback atomic.Uint64

func randomBytes(b []byte) {
	if _, err := rand.Read(b); err != nil {
		n := idFallback.Add(1)
		var seed [16]byte
		binary.LittleEndian.PutUint64(seed[0:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(seed[8:16], n*0x9e3779b97f4a7c15)
		copy(b, seed[:])
		for i := 16; i < len(b); i++ {
			b[i] = byte(n >> (8 * (i % 8)))
		}
	}
}

// NewTraceContext mints a root context: fresh trace ID, fresh span ID,
// no parent.
func NewTraceContext() TraceContext {
	var tc TraceContext
	for tc.TraceID == ([16]byte{}) {
		randomBytes(tc.TraceID[:])
	}
	for tc.SpanID == ([8]byte{}) {
		randomBytes(tc.SpanID[:])
	}
	return tc
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>"). The caller's
// span ID becomes Parent and a fresh local span ID is minted, so the
// returned context is ready to identify this process's work. Returns
// ok=false for malformed values, version ff, or all-zero IDs — callers
// should then mint a root with NewTraceContext.
func ParseTraceparent(s string) (TraceContext, bool) {
	var tc TraceContext
	s = strings.TrimSpace(s)
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return tc, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) || strings.EqualFold(version, "ff") {
		return tc, false
	}
	// Future versions may append fields; version 00 must have exactly 4.
	if version == "00" && len(parts) != 4 {
		return tc, false
	}
	if len(traceID) != 32 || len(spanID) != 16 || len(flags) != 2 || !isHex(flags) {
		return tc, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(strings.ToLower(traceID))); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.Parent[:], []byte(strings.ToLower(spanID))); err != nil {
		return TraceContext{}, false
	}
	if tc.TraceID == ([16]byte{}) || tc.Parent == ([8]byte{}) {
		return TraceContext{}, false
	}
	for tc.SpanID == ([8]byte{}) {
		randomBytes(tc.SpanID[:])
	}
	return tc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace context to ctx.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context attached by
// ContextWithTrace, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// EnsureTrace returns a context guaranteed to carry a valid trace
// context, minting a root when none is attached. The engine calls this
// at every public entry point so direct library callers get trace IDs
// without going through a transport.
func EnsureTrace(ctx context.Context) (context.Context, TraceContext) {
	if tc, ok := TraceFromContext(ctx); ok {
		return ctx, tc
	}
	tc := NewTraceContext()
	return ContextWithTrace(ctx, tc), tc
}
