package exec

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/table"
)

// backingVariants returns the same logical table behind all three storage
// backings: raw slices, in-memory compressed blocks, and an mmap-backed
// store file. Cleanup of the store mapping is registered on t.
func backingVariants(t *testing.T, raw *table.Table) map[string]*table.Table {
	t.Helper()
	raw.BuildZones()
	comp := table.Compress(raw)
	path := filepath.Join(t.TempDir(), "t.aqps")
	if err := table.WriteStore(path, raw); err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := table.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closer.Close() })
	return map[string]*table.Table{"raw": raw, "compressed": comp, "mmap": mapped}
}

var backingQueries = []string{
	"SELECT AVG(Time) FROM Sessions",
	"SELECT COUNT(*), SUM(Time) FROM Sessions WHERE City = 'NYC'",
	"SELECT City, AVG(Time), COUNT(*) FROM Sessions GROUP BY City",
	"SELECT PERCENTILE(Time, 0.5) FROM Sessions WHERE Time > 40",
	"SELECT AVG(Time * 2 + user) FROM Sessions WHERE user < 500 AND Time > 30",
}

func backingOpts() plan.Options {
	return plan.Options{BootstrapK: 40, Alpha: 0.95, Diagnostics: true,
		DiagSizes: []int{40, 80, 160}, DiagP: 20,
		ScanConsolidation: true, OperatorPushdown: true}
}

// TestRunBackingBitEquality is the tentpole's core invariant: answers,
// resample estimates and diagnostic verdicts are bit-identical whether the
// table is raw, block-compressed in memory, or decoded lazily out of an
// mmap store — at every worker count.
func TestRunBackingBitEquality(t *testing.T) {
	variants := backingVariants(t, sessionsTable(8*table.BlockRows+613, 41))
	for qi, q := range backingQueries {
		p := mustPlan(t, q, backingOpts())
		var want *Result
		for _, name := range []string{"raw", "compressed", "mmap"} {
			for _, workers := range []int{1, 4} {
				tables := map[string]*StoredTable{
					"Sessions": {Data: variants[name], PopRows: 1 << 20},
				}
				got, err := Run(context.Background(), p, tables, nil,
					Config{Workers: workers, Seed: uint64(300 + qi)})
				if err != nil {
					t.Fatalf("%s workers=%d %q: %v", name, workers, q, err)
				}
				if want == nil {
					want = got
					continue
				}
				resultsEqual(t, name+": "+q, got, want)
				// Logical scan accounting is backing-invariant too.
				if got.Counters.RowsScanned != want.Counters.RowsScanned ||
					got.Counters.BytesScanned != want.Counters.BytesScanned {
					t.Errorf("%s %q: scan counters %+v != %+v",
						name, q, got.Counters, want.Counters)
				}
			}
		}
	}
}

// TestRunBackingDecodeCounters pins the decode accounting: lazy backings
// report decoded blocks and decode time, raw backings report zero.
func TestRunBackingDecodeCounters(t *testing.T) {
	variants := backingVariants(t, sessionsTable(4*table.BlockRows, 42))
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'", backingOpts())
	run := func(data *table.Table) Counters {
		tables := map[string]*StoredTable{"Sessions": {Data: data, PopRows: 1 << 20}}
		res, err := Run(context.Background(), p, tables, nil, Config{Workers: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	if c := run(variants["raw"]); c.BlocksDecoded != 0 || c.DecodeNanos != 0 {
		t.Errorf("raw backing metered decodes: %+v", c)
	}
	for _, name := range []string{"compressed", "mmap"} {
		if c := run(variants[name]); c.BlocksDecoded == 0 {
			t.Errorf("%s backing metered no decoded blocks: %+v", name, c)
		}
	}
}

// TestSkippedBlocksAreNeverDecoded is the decode-after-admission invariant:
// a block pruned by its zone-map envelope costs neither I/O nor decode.
func TestSkippedBlocksAreNeverDecoded(t *testing.T) {
	n := 64 * table.ZoneBlockRows
	q := "SELECT AVG(Time), COUNT(*) FROM Sessions WHERE Time < 655"
	run := func(zones bool) Counters {
		ct := table.Compress(clusteredSessions(n, 23))
		if !zones {
			ct.DropZones()
		}
		tables := map[string]*StoredTable{"Sessions": {Data: ct, PopRows: n * 10}}
		p := mustPlan(t, q, plan.Options{BootstrapK: 20, Alpha: 0.95,
			ScanConsolidation: true, OperatorPushdown: true})
		res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	plain := run(false)
	pruned := run(true)
	if pruned.BlocksSkipped != 63 {
		t.Fatalf("blocks skipped = %d, want 63", pruned.BlocksSkipped)
	}
	if pruned.BlocksDecoded >= plain.BlocksDecoded {
		t.Errorf("pruning did not reduce decodes: %d >= %d",
			pruned.BlocksDecoded, plain.BlocksDecoded)
	}
	// Time < 655 admits only block 0 of 64; with zones on, decodes of the
	// predicate+projection column are bounded by the admitted blocks plus
	// the string column's full scan. Sanity-bound: far below the unpruned
	// decode count rather than an exact constant (the bootstrap/diagnostic
	// stages gather from the filtered rows only).
	if pruned.BlocksDecoded > plain.BlocksDecoded/4 {
		t.Errorf("pruned decodes %d suspiciously high (unpruned %d)",
			pruned.BlocksDecoded, plain.BlocksDecoded)
	}
}

// TestRunSharedBackingBitEquality runs a shared-scan batch over each
// backing and asserts the batch answers match the raw-backing batch
// bit-for-bit, with the physical pass still shared.
func TestRunSharedBackingBitEquality(t *testing.T) {
	variants := backingVariants(t, sessionsTable(6*table.BlockRows+100, 43))
	build := func(data *table.Table) ([]*Result, []error) {
		tables := map[string]*StoredTable{"Sessions": {Data: data, PopRows: 1 << 20}}
		items := make([]SharedItem, len(backingQueries))
		for i, q := range backingQueries {
			items[i] = SharedItem{
				Plan: mustPlan(t, q, backingOpts()),
				Cfg:  Config{Workers: 4, Seed: uint64(500 + i)},
			}
		}
		return RunShared(context.Background(), items, tables, nil)
	}
	want, errs := build(variants["raw"])
	for i, err := range errs {
		if err != nil {
			t.Fatalf("raw %q: %v", backingQueries[i], err)
		}
	}
	for _, name := range []string{"compressed", "mmap"} {
		got, errs := build(variants[name])
		var scans int64
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s %q: %v", name, backingQueries[i], err)
			}
			resultsEqual(t, name+": "+backingQueries[i], got[i], want[i])
			scans += int64(got[i].Counters.Scans)
		}
		if scans != 1 {
			t.Errorf("%s: batch-summed Scans = %d, want 1", name, scans)
		}
	}
}

// TestRunSharedDecodeChargedOnce pins the decode accounting of the shared
// pass over lazy backings: the whole batch's BlocksDecoded/DecodeNanos are
// charged to exactly one member (the one that also carries Scans=1), every
// follower reports zero, and the batch total is bounded by what the same
// queries would have decoded run solo — never double-charged across the
// fan-out on top of the per-evaluation decode cost.
func TestRunSharedDecodeChargedOnce(t *testing.T) {
	variants := backingVariants(t, sessionsTable(6*table.BlockRows+100, 45))
	queries := make([]string, 8)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"SELECT AVG(Time), COUNT(*) FROM Sessions WHERE Time > %d", 30+2*i)
	}
	for _, name := range []string{"compressed", "mmap"} {
		tables := map[string]*StoredTable{
			"Sessions": {Data: variants[name], PopRows: 1 << 20},
		}
		solo, err := Run(context.Background(),
			mustPlan(t, queries[0], backingOpts()), tables, nil,
			Config{Workers: 4, Seed: 600})
		if err != nil {
			t.Fatal(err)
		}
		if solo.Counters.BlocksDecoded == 0 {
			t.Fatalf("%s: solo run decoded no blocks; batch assertion would be vacuous", name)
		}

		items := make([]SharedItem, len(queries))
		for i, q := range queries {
			items[i] = SharedItem{
				Plan: mustPlan(t, q, backingOpts()),
				Cfg:  Config{Workers: 4, Seed: uint64(600 + i)},
			}
		}
		results, errs := RunShared(context.Background(), items, tables, nil)
		var decoded, nanos int64
		scans, carriers := 0, 0
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s %q: %v", name, queries[i], err)
			}
			c := results[i].Counters
			decoded += c.BlocksDecoded
			nanos += c.DecodeNanos
			scans += c.Scans
			if c.BlocksDecoded > 0 || c.DecodeNanos > 0 {
				carriers++
				if c.Scans != 1 {
					t.Errorf("%s: member %d carries decode counters but Scans=%d, want the physical-pass member",
						name, i, c.Scans)
				}
			}
		}
		if carriers != 1 {
			t.Errorf("%s: %d members carry decode counters, want exactly 1", name, carriers)
		}
		if scans != 1 {
			t.Errorf("%s: batch summed Scans = %d, want 1", name, scans)
		}
		if nanos <= 0 {
			t.Errorf("%s: batch summed DecodeNanos = 0, want the pass's decode time charged", name)
		}
		// The shared pass still evaluates each member's predicate and
		// projection, so decodes scale with members — but a regression that
		// re-ran the physical scan per member would at least double this.
		lo, hi := solo.Counters.BlocksDecoded, int64(len(queries))*solo.Counters.BlocksDecoded
		if decoded < lo || decoded > hi {
			t.Errorf("%s: batch summed BlocksDecoded = %d, want within [%d, %d] (solo run decoded %d)",
				name, decoded, lo, hi, solo.Counters.BlocksDecoded)
		}
	}
}

// TestConcurrentCompressedQueries hammers one compressed table from many
// goroutines; run with -race this pins that lazy decode paths share no
// mutable state beyond the atomics that meter them.
func TestConcurrentCompressedQueries(t *testing.T) {
	ct := table.Compress(sessionsTable(4*table.BlockRows, 44))
	tables := map[string]*StoredTable{"Sessions": {Data: ct, PopRows: 1 << 20}}
	p := mustPlan(t, "SELECT City, AVG(Time) FROM Sessions WHERE Time > 40 GROUP BY City",
		backingOpts())
	ref, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := Run(context.Background(), p, tables, nil,
					Config{Workers: 4, Seed: 11})
				if err != nil {
					t.Error(err)
					return
				}
				resultsEqual(t, "concurrent", res, ref)
			}
		}()
	}
	wg.Wait()
}
