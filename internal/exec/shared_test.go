package exec

import (
	"context"
	"testing"

	"repro/internal/plan"
)

// resultsEqual asserts two Results are bit-identical in everything a query
// answer is built from: group keys, values, resample estimates and
// diagnostic verdicts.
func resultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil result (got=%v want=%v)", label, got == nil, want == nil)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	if got.SampleRows != want.SampleRows {
		t.Errorf("%s: sample rows %d != %d", label, got.SampleRows, want.SampleRows)
	}
	for gi := range want.Groups {
		g, w := got.Groups[gi], want.Groups[gi]
		if g.Key != w.Key {
			t.Fatalf("%s: group %d key %q != %q", label, gi, g.Key, w.Key)
		}
		if len(g.Aggs) != len(w.Aggs) {
			t.Fatalf("%s: group %q has %d aggs, want %d", label, g.Key, len(g.Aggs), len(w.Aggs))
		}
		for ai := range w.Aggs {
			a, b := g.Aggs[ai], w.Aggs[ai]
			if a.Value != b.Value {
				t.Errorf("%s: group %q agg %d value %v != %v", label, g.Key, ai, a.Value, b.Value)
			}
			if len(a.Bootstrap) != len(b.Bootstrap) {
				t.Fatalf("%s: group %q agg %d has %d resamples, want %d",
					label, g.Key, ai, len(a.Bootstrap), len(b.Bootstrap))
			}
			for k := range b.Bootstrap {
				if a.Bootstrap[k] != b.Bootstrap[k] {
					t.Fatalf("%s: group %q agg %d resample %d: %v != %v",
						label, g.Key, ai, k, a.Bootstrap[k], b.Bootstrap[k])
				}
			}
			if (a.Diag == nil) != (b.Diag == nil) {
				t.Fatalf("%s: group %q agg %d diagnostic presence differs", label, g.Key, ai)
			}
			if a.Diag != nil && (a.Diag.OK != b.Diag.OK || a.Diag.Reason != b.Diag.Reason) {
				t.Errorf("%s: group %q agg %d diagnostic %+v != %+v",
					label, g.Key, ai, a.Diag, b.Diag)
			}
		}
	}
}

func TestRunSharedMatchesSerial(t *testing.T) {
	tables := storedSessions(16*1024, 31)
	tables["Sessions"].Data.BuildZones()
	full := plan.Options{BootstrapK: 40, Alpha: 0.95, Diagnostics: true,
		DiagSizes: []int{40, 80, 160}, DiagP: 20,
		ScanConsolidation: true, OperatorPushdown: true}
	queries := []struct {
		q   string
		opt plan.Options
	}{
		{"SELECT AVG(Time) FROM Sessions", full},
		{"SELECT COUNT(*), SUM(Time) FROM Sessions WHERE City = 'NYC'", full},
		{"SELECT City, AVG(Time) FROM Sessions GROUP BY City", full},
		{"SELECT PERCENTILE(Time, 0.5) FROM Sessions WHERE Time > 40", full},
		{"SELECT AVG(Time) FROM Sessions WHERE Time > 40", full},
		{"SELECT AVG(Time) FROM Sessions", plan.Options{}}, // no error estimation
	}

	// Serial reference: each plan through Run on its own.
	serial := make([]*Result, len(queries))
	for i, qq := range queries {
		p := mustPlan(t, qq.q, qq.opt)
		res, err := Run(context.Background(), p, tables, nil,
			Config{Workers: 4, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatalf("serial %q: %v", qq.q, err)
		}
		serial[i] = res
	}

	items := make([]SharedItem, len(queries))
	for i, qq := range queries {
		items[i] = SharedItem{
			Plan: mustPlan(t, qq.q, qq.opt),
			Cfg:  Config{Workers: 4, Seed: uint64(100 + i)},
		}
	}
	results, errs := RunShared(context.Background(), items, tables, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shared %q: %v", queries[i].q, err)
		}
	}
	var scans, subqueries int64
	for i := range queries {
		resultsEqual(t, queries[i].q, results[i], serial[i])
		scans += int64(results[i].Counters.Scans)
		subqueries += int64(results[i].Counters.Subqueries)
	}
	// The whole batch performed ONE physical pass; logical work is still
	// metered per member.
	if scans != 1 {
		t.Errorf("batch-summed Scans = %d, want 1", scans)
	}
	if subqueries != int64(len(queries)) {
		t.Errorf("batch-summed Subqueries = %d, want %d", subqueries, len(queries))
	}
}

func TestRunSharedDedupsIdenticalPlans(t *testing.T) {
	tables := storedSessions(8000, 32)
	opt := plan.Options{BootstrapK: 30, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	q := "SELECT AVG(Time) FROM Sessions WHERE City = 'SF'"

	items := make([]SharedItem, 4)
	for i := range items {
		items[i] = SharedItem{Plan: mustPlan(t, q, opt), Cfg: Config{Workers: 2, Seed: 5}}
	}
	// A same-query, different-seed member must NOT be deduped with them:
	// its resample streams differ.
	other := SharedItem{Plan: mustPlan(t, q, opt), Cfg: Config{Workers: 2, Seed: 6}}
	items = append(items, other)

	results, errs := RunShared(context.Background(), items, tables, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	for i := 1; i < 4; i++ {
		resultsEqual(t, "follower", results[i], results[0])
		if c := results[i].Counters; c != (Counters{}) {
			t.Errorf("follower %d carries counters %+v, want zero", i, c)
		}
	}
	// Different seed: distinct resamples, same plain value.
	if results[4].Groups[0].Aggs[0].Value != results[0].Groups[0].Aggs[0].Value {
		t.Error("plain value differs across seeds")
	}
	b0, b4 := results[0].Groups[0].Aggs[0].Bootstrap, results[4].Groups[0].Aggs[0].Bootstrap
	same := true
	for k := range b0 {
		if b0[k] != b4[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical resample estimates")
	}
	var scans int64
	for _, r := range results {
		scans += int64(r.Counters.Scans)
	}
	if scans != 1 {
		t.Errorf("batch-summed Scans = %d, want 1", scans)
	}

	// The serial reference still matches through the dedup path.
	ref, err := Run(context.Background(), mustPlan(t, q, opt), tables, nil,
		Config{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "dedup-vs-serial", results[0], ref)
}

func TestRunSharedPerItemErrors(t *testing.T) {
	tables := storedSessions(4000, 33)
	items := []SharedItem{
		{Plan: mustPlan(t, "SELECT AVG(Time) FROM Sessions", plan.Options{}),
			Cfg: Config{Workers: 2, Seed: 1}},
		{Plan: mustPlan(t, "SELECT AVG(nope) FROM Sessions", plan.Options{}),
			Cfg: Config{Workers: 2, Seed: 2}},
		{Plan: mustPlan(t, "SELECT AVG(Time) FROM Elsewhere", plan.Options{}),
			Cfg: Config{Workers: 2, Seed: 3}},
	}
	results, errs := RunShared(context.Background(), items, tables, nil)
	if errs[0] != nil || results[0] == nil {
		t.Fatalf("healthy batchmate failed: %v", errs[0])
	}
	if errs[1] == nil {
		t.Error("bad column did not error")
	}
	if errs[2] == nil {
		t.Error("unknown table did not error")
	}
	if results[0].Counters.Scans != 1 {
		t.Errorf("survivor counters: %+v", results[0].Counters)
	}
}

func TestRunSharedWorkerCountInvariance(t *testing.T) {
	tables := storedSessions(10000, 34)
	tables["Sessions"].Data.BuildZones()
	opt := plan.Options{BootstrapK: 25, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	qs := []string{
		"SELECT AVG(Time) FROM Sessions WHERE Time > 70",
		"SELECT City, COUNT(*) FROM Sessions GROUP BY City",
	}
	var ref []*Result
	for _, workers := range []int{1, 2, 8} {
		items := make([]SharedItem, len(qs))
		for i, q := range qs {
			items[i] = SharedItem{Plan: mustPlan(t, q, opt),
				Cfg: Config{Workers: workers, Seed: uint64(50 + i)}}
		}
		results, errs := RunShared(context.Background(), items, tables, nil)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, err)
			}
		}
		if ref == nil {
			ref = results
			continue
		}
		for i := range qs {
			resultsEqual(t, qs[i], results[i], ref[i])
		}
	}
}
