package exec

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/plan"
)

// SharedItem is one query's slot in a shared-scan batch: its plan, its own
// cancellation context (nil means the batch context) and its own Config —
// per-query spans land on the query's own trace, and the query's seed
// drives its bootstrap streams exactly as in solo execution.
type SharedItem struct {
	Ctx  context.Context
	Plan *plan.Plan
	Cfg  Config
}

// RunShared executes a batch of plans against the SAME stored table with
// ONE physical pass (§5.3.1's scan consolidation lifted across queries):
// every distinct filter predicate and projection expression in the batch is
// evaluated once per partition, and each query's bootstrap/diagnostic
// pipeline then runs over its share of the pass, in parallel, under its own
// context. Results and confidence intervals are bit-identical to running
// each plan through Run serially: scans contribute no randomness, and all
// resampling randomness derives from per-(seed, stream) RNGs that do not
// depend on how the scan was performed.
//
// Plans that are byte-identical (same Explain rendering and seed) are
// executed once; followers receive the leader's groups with zeroed
// counters, so summing Counters across the batch still meters the physical
// work exactly once.
//
// Errors are per-item: one query's bad predicate or cancelled context does
// not fail its batchmates. Cancelling ctx (the batch context, used for the
// shared scan) fails every item still in flight.
func RunShared(ctx context.Context, items []SharedItem, tables map[string]*StoredTable, udfs Registry) ([]*Result, []error) {
	results := make([]*Result, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return results, errs
	}

	// Resolve plans and dedup identical ones. Every item must target the
	// same stored table — the batch former groups by (table, sample), so a
	// mismatch here is a caller bug surfaced per-item, not a panic.
	type distinct struct {
		item  int   // leader item index
		dupes []int // follower items with identical plans
		nodes nodeSet
	}
	var st *StoredTable
	var distincts []*distinct
	bySig := map[string]*distinct{}
	for i, it := range items {
		nodes := collect(it.Plan.Root)
		if nodes.scan == nil || nodes.agg == nil {
			errs[i] = fmt.Errorf("exec: plan lacks scan or aggregate")
			continue
		}
		ist, ok := tables[nodes.scan.Table]
		if !ok {
			errs[i] = fmt.Errorf("exec: unknown table %q", nodes.scan.Table)
			continue
		}
		if st == nil {
			st = ist
		} else if ist != st {
			errs[i] = fmt.Errorf("exec: shared batch mixes stored tables (%q is not the batch's table)",
				nodes.scan.Table)
			continue
		}
		sig := fmt.Sprintf("%d|%s", it.Cfg.Seed, it.Plan.Explain())
		if d, ok := bySig[sig]; ok {
			d.dupes = append(d.dupes, i)
			continue
		}
		d := &distinct{item: i, nodes: nodes}
		bySig[sig] = d
		distincts = append(distincts, d)
	}
	if st == nil {
		return results, errs
	}
	tbl := st.Data

	// One physical pass for all distinct plans. Each member gets its own
	// scan span (on its own trace) bracketing the shared pass, carrying
	// that member's counter share.
	members := make([]nodeSet, len(distincts))
	scanSpans := make([]*obs.Span, len(distincts))
	for di, d := range distincts {
		members[di] = d.nodes
		scanSpans[di] = items[d.item].Cfg.Span.StartSpan(obs.StageScan)
	}
	scanCfg := items[distincts[0].item].Cfg
	scanCfg.Span = nil
	bases, scanErrs := scanFilterProjectMulti(ctx, members, tbl, st, scanCfg)
	for di := range distincts {
		scanSpans[di].End()
	}

	// Fan back out: every distinct plan's downstream pipeline (grouping,
	// bootstrap, diagnostic) runs concurrently under its own context.
	var wg sync.WaitGroup
	for di, d := range distincts {
		if scanErrs[di] != nil {
			errs[d.item] = fmt.Errorf("exec: scan of table %q: %w",
				d.nodes.scan.Table, scanErrs[di])
			continue
		}
		wg.Add(1)
		go func(di int, d *distinct) {
			defer wg.Done()
			it := items[d.item]
			base := bases[di]
			addCounterAttrs(scanSpans[di], base.counters)
			res := &Result{SampleRows: tbl.NumRows()}
			res.Counters.add(base.counters)
			ictx := it.Ctx
			if ictx == nil {
				ictx = ctx
			}
			if err := runDownstream(ictx, d.nodes, st, tbl, base, udfs, it.Cfg,
				scanSpans[di], res); err != nil {
				errs[d.item] = err
				return
			}
			results[d.item] = res
		}(di, d)
	}
	wg.Wait()

	// Followers of deduped plans share the leader's groups. Their counters
	// are zeroed: the physical work happened exactly once, on the leader,
	// and follower traces carry no exec-stage spans to account for.
	for _, d := range distincts {
		for _, f := range d.dupes {
			if errs[d.item] != nil {
				errs[f] = errs[d.item]
				continue
			}
			r := *results[d.item]
			r.Counters = Counters{}
			results[f] = &r
		}
	}
	return results, errs
}
