package exec

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/table"
)

// sessionsTable builds a deterministic Sessions table with a Time column,
// a City string column and an int64 user id column.
func sessionsTable(n int, seed uint64) *table.Table {
	src := rng.New(seed)
	times := make(table.Float64Col, n)
	cities := make(table.StringCol, n)
	users := make(table.Int64Col, n)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < n; i++ {
		times[i] = 60 + 20*src.NormFloat64()
		cities[i] = names[src.Intn(len(names))]
		users[i] = int64(src.Intn(1000))
	}
	return table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
		{Name: "user", Type: table.Int64},
	}, times, cities, users)
}

func mustPlan(t *testing.T, q string, opt plan.Options, udfNames ...string) *plan.Plan {
	t.Helper()
	isUDF := func(name string) bool {
		for _, u := range udfNames {
			if u == name {
				return true
			}
		}
		return false
	}
	def, err := plan.Analyze(sql.MustParse(q).(*sql.Select), isUDF)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(def, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func storedSessions(n int, seed uint64) map[string]*StoredTable {
	return map[string]*StoredTable{
		"Sessions": {Data: sessionsTable(n, seed), PopRows: n * 10},
	}
}

// --- Expression evaluation ---

func TestEvalNumericArithmetic(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "x", Type: table.Float64}},
		table.Float64Col{1, 2, 3})
	e := sql.MustParse("SELECT AVG(x * 2 + 1) FROM t").(*sql.Select).
		Items[0].Expr.(*sql.FuncCall).Args[0]
	vals, err := EvalNumeric(e, tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals = %v", vals)
			break
		}
	}
}

func TestEvalNumericWithSelection(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "x", Type: table.Float64}},
		table.Float64Col{10, 20, 30, 40})
	e := &sql.ColumnRef{Name: "x"}
	vals, err := EvalNumeric(e, tbl, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 40 || vals[1] != 20 {
		t.Errorf("vals = %v", vals)
	}
}

func TestEvalNumericIntCoercionAndScalar(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "n", Type: table.Int64}},
		table.Int64Col{1, 2})
	vals, err := EvalNumeric(&sql.ColumnRef{Name: "n"}, tbl, nil)
	if err != nil || vals[1] != 2 {
		t.Errorf("int coercion: %v %v", vals, err)
	}
	lit, err := EvalNumeric(&sql.Literal{Num: 7}, tbl, nil)
	if err != nil || len(lit) != 2 || lit[0] != 7 {
		t.Errorf("scalar broadcast: %v %v", lit, err)
	}
}

func TestEvalNumericErrors(t *testing.T) {
	tbl := sessionsTable(10, 1)
	if _, err := EvalNumeric(&sql.ColumnRef{Name: "nope"}, tbl, nil); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := EvalNumeric(&sql.ColumnRef{Name: "City"}, tbl, nil); err == nil {
		t.Error("string column accepted as numeric")
	}
	bad := &sql.Binary{Op: "+", L: &sql.ColumnRef{Name: "City"}, R: &sql.Literal{Num: 1}}
	if _, err := EvalNumeric(bad, tbl, nil); err == nil {
		t.Error("string arithmetic accepted")
	}
}

func TestEvalPredicateStringAndNumeric(t *testing.T) {
	tbl := sessionsTable(1000, 2)
	pred := sql.MustParse("SELECT COUNT(*) FROM t WHERE City = 'NYC' AND Time > 60").(*sql.Select).Where
	sel, err := EvalPredicate(pred, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	for _, i := range sel {
		if cities[i] != "NYC" || times[i] <= 60 {
			t.Fatalf("row %d fails predicate", i)
		}
	}
	// Verify completeness: count matches a manual scan.
	want := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if cities[i] == "NYC" && times[i] > 60 {
			want++
		}
	}
	if len(sel) != want {
		t.Errorf("selected %d rows, want %d", len(sel), want)
	}
}

func TestEvalPredicateOrNotComparators(t *testing.T) {
	tbl := sessionsTable(500, 3)
	pred := sql.MustParse(
		"SELECT COUNT(*) FROM t WHERE NOT (City = 'SF') OR Time <= 50").(*sql.Select).Where
	sel, err := EvalPredicate(pred, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	for _, i := range sel {
		if !(cities[i] != "SF" || times[i] <= 50) {
			t.Fatalf("row %d fails predicate", i)
		}
	}
}

func TestEvalPredicateErrors(t *testing.T) {
	tbl := sessionsTable(10, 4)
	if _, err := EvalPredicate(&sql.ColumnRef{Name: "Time"}, tbl); err == nil {
		t.Error("non-boolean WHERE accepted")
	}
	mixed := &sql.Binary{Op: "=", L: &sql.ColumnRef{Name: "City"}, R: &sql.Literal{Num: 3}}
	if _, err := EvalPredicate(mixed, tbl); err == nil {
		t.Error("string-vs-number comparison accepted")
	}
}

// --- End-to-end plan execution ---

func TestRunPlainAggregate(t *testing.T) {
	tables := storedSessions(10000, 5)
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions", plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || len(res.Groups[0].Aggs) != 1 {
		t.Fatalf("result shape: %+v", res.Groups)
	}
	got := res.Groups[0].Aggs[0].Value
	want, _ := tables["Sessions"].Data.Float64ColumnByName("Time")
	if math.Abs(got-stats.Mean(want)) > 1e-9 {
		t.Errorf("AVG = %v, want %v", got, stats.Mean(want))
	}
	c := res.Counters
	if c.Scans != 1 || c.Subqueries != 1 {
		t.Errorf("counters: %+v", c)
	}
	if c.RowsScanned != 10000 {
		t.Errorf("rows scanned = %d", c.RowsScanned)
	}
}

func TestRunFilteredAggregateMatchesManual(t *testing.T) {
	tables := storedSessions(20000, 6)
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'", plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables["Sessions"].Data
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	var m stats.Moments
	for i := range cities {
		if cities[i] == "NYC" {
			m.Add(times[i])
		}
	}
	if math.Abs(res.Groups[0].Aggs[0].Value-m.Mean()) > 1e-9 {
		t.Errorf("filtered AVG = %v, want %v", res.Groups[0].Aggs[0].Value, m.Mean())
	}
	if res.Counters.RowsAfterFilter != int64(m.Count()) {
		t.Errorf("rows after filter = %d, want %v",
			res.Counters.RowsAfterFilter, m.Count())
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	tables := storedSessions(9973, 7) // prime size exercises partition edges
	q := "SELECT SUM(Time), COUNT(*), MIN(Time), MAX(Time) FROM Sessions WHERE Time > 55"
	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		p := mustPlan(t, q, plan.Options{})
		res, err := Run(context.Background(), p, tables, nil, Config{Workers: workers, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for ai := range ref.Groups[0].Aggs {
			a, b := ref.Groups[0].Aggs[ai].Value, res.Groups[0].Aggs[ai].Value
			if math.Abs(a-b) > 1e-6*math.Abs(a) {
				t.Errorf("workers=%d agg %d: %v != %v", workers, ai, b, a)
			}
		}
	}
}

func TestRunScaledSumAndCount(t *testing.T) {
	// PopRows = 10x sample rows: COUNT(*) must estimate ~PopRows, and
	// SUM must estimate ~10x the sample sum.
	tables := storedSessions(5000, 8)
	p := mustPlan(t, "SELECT COUNT(*), SUM(Time) FROM Sessions", plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	count := res.Groups[0].Aggs[0].Value
	if count != 50000 {
		t.Errorf("scaled COUNT = %v, want 50000", count)
	}
	times, _ := tables["Sessions"].Data.Float64ColumnByName("Time")
	wantSum := 10 * stats.Sum(times)
	if math.Abs(res.Groups[0].Aggs[1].Value-wantSum)/wantSum > 1e-9 {
		t.Errorf("scaled SUM = %v, want %v", res.Groups[0].Aggs[1].Value, wantSum)
	}
}

func TestRunGroupBy(t *testing.T) {
	tables := storedSessions(8000, 9)
	p := mustPlan(t, "SELECT City, AVG(Time) FROM Sessions GROUP BY City", plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d, want 4 cities", len(res.Groups))
	}
	// Keys sorted, values match manual computation.
	tbl := tables["Sessions"].Data
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	for _, g := range res.Groups {
		var m stats.Moments
		for i := range cities {
			if cities[i] == g.Key {
				m.Add(times[i])
			}
		}
		if math.Abs(g.Aggs[0].Value-m.Mean()) > 1e-9 {
			t.Errorf("group %s AVG = %v, want %v", g.Key, g.Aggs[0].Value, m.Mean())
		}
	}
}

func TestRunBootstrapProducesSaneDistribution(t *testing.T) {
	tables := storedSessions(20000, 10)
	opt := plan.Options{BootstrapK: 80, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions", opt)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Groups[0].Aggs[0]
	if len(out.Bootstrap) != 80 {
		t.Fatalf("bootstrap estimates = %d", len(out.Bootstrap))
	}
	// Bootstrap SE should approximate s/sqrt(n).
	times, _ := tables["Sessions"].Data.Float64ColumnByName("Time")
	wantSE := math.Sqrt(stats.SampleVariance(times) / 20000)
	se := stats.Stddev(out.Bootstrap)
	if se < 0.5*wantSE || se > 2*wantSE {
		t.Errorf("bootstrap SE = %v, want ~%v", se, wantSE)
	}
	// Consolidated: still one scan, one subquery.
	if res.Counters.Scans != 1 || res.Counters.Subqueries != 1 {
		t.Errorf("consolidated counters: %+v", res.Counters)
	}
	if res.Counters.WeightDraws != 80*20000 {
		t.Errorf("weight draws = %d, want %d", res.Counters.WeightDraws, 80*20000)
	}
}

func TestRunBootstrapDeterministicAcrossWorkerCounts(t *testing.T) {
	tables := storedSessions(5000, 11)
	opt := plan.Options{BootstrapK: 40, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	var ref []float64
	for _, workers := range []int{1, 3, 7} {
		p := mustPlan(t, "SELECT AVG(Time) FROM Sessions", opt)
		res, err := Run(context.Background(), p, tables, nil, Config{Workers: workers, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b := res.Groups[0].Aggs[0].Bootstrap
		if ref == nil {
			ref = b
			continue
		}
		for i := range ref {
			if b[i] != ref[i] {
				t.Fatalf("workers=%d: resample %d differs (%v vs %v)",
					workers, i, b[i], ref[i])
			}
		}
	}
}

func TestRunNaiveCountersChargeSubqueries(t *testing.T) {
	tables := storedSessions(20000, 12)
	naive := plan.Options{BootstrapK: 50, Alpha: 0.95,
		ScanConsolidation: false, OperatorPushdown: false}
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'", naive)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Subqueries != 1+50 {
		t.Errorf("naive subqueries = %d, want 51", c.Subqueries)
	}
	if c.Scans != 1+50 {
		t.Errorf("naive scans = %d, want 51", c.Scans)
	}
	// Unpushed resampling draws weights for every scanned row.
	if c.WeightDraws != 50*20000 {
		t.Errorf("unpushed weight draws = %d, want %d", c.WeightDraws, 50*20000)
	}

	pushed := plan.Options{BootstrapK: 50, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	p2 := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'", pushed)
	res2, err := Run(context.Background(), p2, tables, nil, Config{Workers: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters.WeightDraws >= c.WeightDraws {
		t.Errorf("pushdown did not reduce weight draws: %d vs %d",
			res2.Counters.WeightDraws, c.WeightDraws)
	}
	// ~1/4 of rows are NYC.
	ratio := float64(res2.Counters.WeightDraws) / float64(c.WeightDraws)
	if ratio > 0.35 {
		t.Errorf("pushdown ratio = %v, want ~0.25", ratio)
	}
}

func TestRunDiagnosticOperator(t *testing.T) {
	tables := storedSessions(60000, 13)
	opt := plan.DefaultOptions(60000)
	opt.BootstrapK = 40
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions", opt)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Groups[0].Aggs[0]
	if out.Diag == nil {
		t.Fatal("diagnostic result missing")
	}
	if !out.Diag.OK {
		t.Errorf("diagnostic rejected Gaussian AVG: %s", out.Diag.Reason)
	}
	if res.Counters.DiagSubqueries == 0 {
		t.Error("diagnostic subquery count not recorded")
	}
	// Consolidated diagnostic: no extra logical subqueries.
	if res.Counters.Subqueries != 1 {
		t.Errorf("consolidated pipeline subqueries = %d, want 1", res.Counters.Subqueries)
	}
}

func TestRunNaiveDiagnosticCost(t *testing.T) {
	tables := storedSessions(60000, 14)
	opt := plan.DefaultOptions(60000)
	opt.BootstrapK = 20
	opt.ScanConsolidation = false
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions", opt)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Closed-form ξ for AVG: 3 sizes × 100 subsamples = 300 extra
	// subqueries, plus 1 + K bootstrap.
	want := 1 + 20 + 3*100
	if res.Counters.Subqueries != want {
		t.Errorf("naive subqueries = %d, want %d", res.Counters.Subqueries, want)
	}
}

func TestRunDiagnosticShrinksLadderWhenFilterTight(t *testing.T) {
	tables := storedSessions(20000, 15)
	opt := plan.DefaultOptions(20000) // ladder sized for the full table
	opt.BootstrapK = 20
	// ~25% of rows are NYC, so the configured ladder cannot fit and the
	// executor must shrink it rather than fail.
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'", opt)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Aggs[0].Diag == nil {
		t.Fatal("diagnostic missing")
	}
}

func TestRunUDF(t *testing.T) {
	tables := storedSessions(10000, 16)
	udfs := Registry{"CLAMPEDMEAN": func(values, weights []float64) float64 {
		var m stats.Moments
		for i, v := range values {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			if v > 100 {
				v = 100
			}
			m.AddWeighted(v, w)
		}
		return m.Mean()
	}}
	opt := plan.Options{BootstrapK: 30, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	p := mustPlan(t, "SELECT CLAMPEDMEAN(Time) FROM Sessions", opt, "CLAMPEDMEAN")
	res, err := Run(context.Background(), p, tables, udfs, Config{Workers: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Groups[0].Aggs[0]
	if math.IsNaN(out.Value) {
		t.Error("UDF value NaN")
	}
	if len(out.Bootstrap) != 30 {
		t.Error("UDF bootstrap missing")
	}
}

func TestRunErrors(t *testing.T) {
	tables := storedSessions(100, 17)
	p := mustPlan(t, "SELECT AVG(Time) FROM NoSuchTable", plan.Options{})
	if _, err := Run(context.Background(), p, tables, nil, Config{}); err == nil {
		t.Error("unknown table accepted")
	}
	p2 := mustPlan(t, "SELECT MYUDF(Time) FROM Sessions", plan.Options{}, "MYUDF")
	if _, err := Run(context.Background(), p2, tables, nil, Config{}); err == nil {
		t.Error("unregistered UDF accepted")
	}
	p3 := mustPlan(t, "SELECT AVG(nope) FROM Sessions", plan.Options{})
	if _, err := Run(context.Background(), p3, tables, nil, Config{}); err == nil {
		t.Error("unknown aggregation column accepted")
	}
}

func TestRunPercentile(t *testing.T) {
	tables := storedSessions(10000, 18)
	p := mustPlan(t, "SELECT PERCENTILE(Time, 0.5) FROM Sessions", plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	times, _ := tables["Sessions"].Data.Float64ColumnByName("Time")
	want := stats.Quantile(times, 0.5)
	if math.Abs(res.Groups[0].Aggs[0].Value-want) > 1e-9 {
		t.Errorf("median = %v, want %v", res.Groups[0].Aggs[0].Value, want)
	}
}

func TestQueryForScaledCountSemantics(t *testing.T) {
	st := &StoredTable{PopRows: 1000}
	q, err := queryFor(plan.AggSpec{Kind: estimator.Count}, st, 100, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ungrouped COUNT sees the full masked column: 20 ones among 100 rows
	// of a sample representing 1000 population rows → estimate 200.
	masked := make([]float64, 100)
	for i := 0; i < 20; i++ {
		masked[i] = 1
	}
	if got := q.Eval(masked); got != 200 {
		t.Errorf("scaled COUNT = %v, want 200", got)
	}
	// Grouped COUNT uses the fixed-scale closure over its group's rows.
	qg, err := queryFor(plan.AggSpec{Kind: estimator.Count}, st, 100, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, 20)
	for i := range ones {
		ones[i] = 1
	}
	if got := qg.Eval(ones); got != 200 {
		t.Errorf("grouped scaled COUNT = %v, want 200", got)
	}
}

func BenchmarkRunConsolidatedPipeline(b *testing.B) {
	tables := storedSessions(100000, 20)
	opt := plan.DefaultOptions(100000)
	def, _ := plan.Analyze(sql.MustParse(
		"SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'").(*sql.Select), nil)
	p, _ := plan.Build(def, opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), p, tables, nil, Config{Workers: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunNaivePipeline(b *testing.B) {
	tables := storedSessions(100000, 21)
	opt := plan.DefaultOptions(100000)
	opt.ScanConsolidation = false
	opt.OperatorPushdown = false
	def, _ := plan.Analyze(sql.MustParse(
		"SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'").(*sql.Select), nil)
	p, _ := plan.Build(def, opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), p, tables, nil, Config{Workers: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunUserTableSample(t *testing.T) {
	tables := storedSessions(20000, 30)
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions TABLESAMPLE POISSONIZED (100)",
		plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Groups[0].Aggs[0].Value
	times, _ := tables["Sessions"].Data.Float64ColumnByName("Time")
	plain := stats.Mean(times)
	// A Poissonized resample mean is a perturbation of the plain mean,
	// not equal to it, but close (n = 20000 → SE ~ s/sqrt(n)).
	se := math.Sqrt(stats.SampleVariance(times) / 20000)
	if got == plain {
		t.Error("TABLESAMPLE clause ignored: value equals plain mean exactly")
	}
	if math.Abs(got-plain) > 6*se {
		t.Errorf("resampled mean %v implausibly far from %v", got, plain)
	}
	if res.Counters.WeightDraws == 0 {
		t.Error("no weight draws recorded for the user sample")
	}
	// A rate of 400 (Poisson(4) weights) still estimates the same mean.
	p4 := mustPlan(t, "SELECT AVG(Time) FROM Sessions TABLESAMPLE POISSONIZED (400)",
		plan.Options{})
	res4, err := Run(context.Background(), p4, tables, nil, Config{Workers: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res4.Groups[0].Aggs[0].Value-plain) > 6*se {
		t.Errorf("rate-4 resampled mean %v far from %v", res4.Groups[0].Aggs[0].Value, plain)
	}
}

func TestRunUserTableSampleDeterministic(t *testing.T) {
	tables := storedSessions(5000, 31)
	p := mustPlan(t, "SELECT SUM(Time) FROM Sessions TABLESAMPLE POISSONIZED (100)",
		plan.Options{})
	a, err := Run(context.Background(), p, tables, nil, Config{Workers: 3, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), p, tables, nil, Config{Workers: 1, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if a.Groups[0].Aggs[0].Value != b.Groups[0].Aggs[0].Value {
		t.Error("user-sample evaluation not deterministic across worker counts")
	}
}

// TestNaiveUnionRewriteExecutes runs the literal §5.2 UNION ALL rewrite
// through the engine's own SQL surface: each subquery draws its own
// Poissonized resample, and the collected resample answers form a
// bootstrap distribution statistically equivalent to the consolidated
// Bootstrap operator's.
func TestNaiveUnionRewriteExecutes(t *testing.T) {
	tables := storedSessions(10000, 32)
	def, err := plan.Analyze(sql.MustParse(
		"SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'").(*sql.Select), nil)
	if err != nil {
		t.Fatal(err)
	}
	const k = 60
	text := plan.NaiveRewriteSQL(def, k)
	inner := text[strings.Index(text, "FROM (")+len("FROM (") : strings.LastIndex(text, ") AS resamples")]
	union, ok := sql.MustParse(inner).(*sql.UnionAll)
	if !ok {
		t.Fatalf("rewrite did not parse as UNION ALL: %s", inner)
	}
	if len(union.Selects) != k {
		t.Fatalf("subqueries = %d", len(union.Selects))
	}
	var resampleAnswers []float64
	for i, sub := range union.Selects {
		subDef, err := plan.Analyze(sub, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(subDef, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		resampleAnswers = append(resampleAnswers, res.Groups[0].Aggs[0].Value)
	}
	// Compare against the consolidated bootstrap distribution.
	opt := plan.Options{BootstrapK: k, Alpha: 0.95,
		ScanConsolidation: true, OperatorPushdown: true}
	p, _ := plan.Build(def, opt)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	consolidated := res.Groups[0].Aggs[0].Bootstrap

	mUnion, mCons := stats.Mean(resampleAnswers), stats.Mean(consolidated)
	seUnion, seCons := stats.Stddev(resampleAnswers), stats.Stddev(consolidated)
	if math.Abs(mUnion-mCons) > 4*(seUnion+seCons)/math.Sqrt(k) {
		t.Errorf("union-rewrite mean %v vs consolidated %v", mUnion, mCons)
	}
	if r := seUnion / seCons; r < 0.6 || r > 1.7 {
		t.Errorf("bootstrap spread mismatch: union %v vs consolidated %v", seUnion, seCons)
	}
}

func TestRunEmptyFilterResult(t *testing.T) {
	tables := storedSessions(1000, 33)
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NOWHERE'",
		plan.Options{BootstrapK: 10, Alpha: 0.95,
			ScanConsolidation: true, OperatorPushdown: true})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Groups[0].Aggs[0].Value) {
		t.Errorf("AVG over zero rows = %v, want NaN", res.Groups[0].Aggs[0].Value)
	}
	if res.Counters.RowsAfterFilter != 0 {
		t.Errorf("rows after filter = %d", res.Counters.RowsAfterFilter)
	}
	// COUNT over zero matching rows is a well-defined 0 (masked column of
	// zeros, scaled).
	p2 := mustPlan(t, "SELECT COUNT(*) FROM Sessions WHERE City = 'NOWHERE'",
		plan.Options{})
	res2, err := Run(context.Background(), p2, tables, nil, Config{Workers: 2, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Groups[0].Aggs[0].Value; got != 0 {
		t.Errorf("COUNT over zero rows = %v, want 0", got)
	}
}

func TestRunEmptyGroupByResult(t *testing.T) {
	tables := storedSessions(1000, 34)
	p := mustPlan(t, "SELECT City, AVG(Time) FROM Sessions WHERE Time > 1e12 GROUP BY City",
		plan.Options{})
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("groups = %d, want 0 when nothing matches", len(res.Groups))
	}
}

// TestOperatorMatrix sweeps every arithmetic and comparison operator over
// numeric and string operands through the SQL surface.
func TestOperatorMatrix(t *testing.T) {
	tbl := table.MustNew(table.Schema{
		{Name: "a", Type: table.Float64},
		{Name: "b", Type: table.Float64},
		{Name: "s", Type: table.String},
	}, table.Float64Col{6, 2}, table.Float64Col{3, 3}, table.StringCol{"x", "y"})

	arith := []struct {
		expr string
		want []float64
	}{
		{"a + b", []float64{9, 5}},
		{"a - b", []float64{3, -1}},
		{"a * b", []float64{18, 6}},
		{"a / b", []float64{2, 2.0 / 3}},
		{"-a", []float64{-6, -2}},
	}
	for _, c := range arith {
		e := sql.MustParse("SELECT AVG(" + c.expr + ") FROM t").(*sql.Select).
			Items[0].Expr.(*sql.FuncCall).Args[0]
		got, err := EvalNumeric(e, tbl, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Errorf("%s: row %d = %v, want %v", c.expr, i, got[i], c.want[i])
			}
		}
	}

	numCmp := []struct {
		pred string
		want []int // matching row indices
	}{
		{"a = 6", []int{0}},
		{"a != 6", []int{1}},
		{"a < 3", []int{1}},
		{"a <= 2", []int{1}},
		{"a > 3", []int{0}},
		{"a >= 6", []int{0}},
	}
	for _, c := range numCmp {
		pred := sql.MustParse("SELECT COUNT(*) FROM t WHERE " + c.pred).(*sql.Select).Where
		sel, err := EvalPredicate(pred, tbl)
		if err != nil {
			t.Fatalf("%s: %v", c.pred, err)
		}
		if len(sel) != len(c.want) {
			t.Errorf("%s: sel = %v, want %v", c.pred, sel, c.want)
			continue
		}
		for i := range c.want {
			if sel[i] != c.want[i] {
				t.Errorf("%s: sel = %v, want %v", c.pred, sel, c.want)
			}
		}
	}

	strCmp := []struct {
		pred string
		rows int
	}{
		{"s = 'x'", 1},
		{"s != 'x'", 1},
		{"s < 'y'", 1},
		{"s <= 'y'", 2},
		{"s > 'x'", 1},
		{"s >= 'x'", 2},
	}
	for _, c := range strCmp {
		pred := sql.MustParse("SELECT COUNT(*) FROM t WHERE " + c.pred).(*sql.Select).Where
		sel, err := EvalPredicate(pred, tbl)
		if err != nil {
			t.Fatalf("%s: %v", c.pred, err)
		}
		if len(sel) != c.rows {
			t.Errorf("%s: matched %d rows, want %d", c.pred, len(sel), c.rows)
		}
	}
}

func TestEvalExprErrorPaths(t *testing.T) {
	tbl := sessionsTable(10, 40)
	bad := []string{
		"SELECT COUNT(*) FROM t WHERE NOT Time",           // NOT non-boolean
		"SELECT COUNT(*) FROM t WHERE (Time > 1) + 2 > 0", // arithmetic on boolean
		"SELECT COUNT(*) FROM t WHERE City AND City",      // AND on strings
		"SELECT AVG(-City) FROM t",                        // negate string
	}
	for _, q := range bad {
		sel := sql.MustParse(q).(*sql.Select)
		var err error
		if sel.Where != nil {
			_, err = EvalPredicate(sel.Where, tbl)
		} else {
			_, err = EvalNumeric(sel.Items[0].Expr.(*sql.FuncCall).Args[0], tbl, nil)
		}
		if err == nil {
			t.Errorf("%s: expected evaluation error", q)
		}
	}
}

func TestRunDiagnosticTooFewRows(t *testing.T) {
	tables := storedSessions(5000, 41)
	opt := plan.DefaultOptions(5000)
	opt.BootstrapK = 10
	// Selectivity ~0: a filter matching almost nothing leaves too few rows
	// for any diagnostic ladder; the operator must report an explicit
	// rejection rather than failing.
	p := mustPlan(t, "SELECT AVG(Time) FROM Sessions WHERE Time > 1e9", opt)
	res, err := Run(context.Background(), p, tables, nil, Config{Workers: 2, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Groups[0].Aggs[0].Diag
	if d == nil {
		t.Fatal("diagnostic result missing")
	}
	if d.OK {
		t.Error("diagnostic accepted with no usable rows")
	}
	if d.Reason == "" {
		t.Error("rejection must carry a reason")
	}
}
