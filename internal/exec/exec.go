package exec

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/diagnostic"
	"repro/internal/estimator"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sql"
	"repro/internal/table"
)

// UDF is a user-defined aggregate over weighted data (nil weights = all
// ones, weight zero = row absent).
type UDF func(values, weights []float64) float64

// Registry maps upper-cased UDF names to implementations.
type Registry map[string]UDF

// StoredTable is a stored sample plus the bookkeeping the executor needs:
// the size of the population it was drawn from (for scaled SUM/COUNT) and
// whether the storage layer considers it memory-resident (for the cost
// model).
type StoredTable struct {
	Data *table.Table
	// PopRows is |D|, the row count of the dataset the sample represents.
	// Zero means the table IS the full dataset.
	PopRows int
	// Cached marks the sample as resident in cluster memory.
	Cached bool
}

// Config controls physical execution.
type Config struct {
	// Workers is the local degree of parallelism (goroutines over table
	// partitions and over bootstrap resamples). <= 0 means 1.
	Workers int
	// Seed drives all randomness (resampling weights, diagnostics).
	Seed uint64
	// Span, when non-nil, receives per-stage child spans (scan,
	// bootstrap-kernel, diagnostic) carrying the stage's share of the
	// work counters as attributes, and feeds Counters plus kernel
	// throughput into the span's metrics registry. Nil disables telemetry
	// at the cost of one branch; execution results are identical either
	// way (tracing consumes no randomness).
	Span *obs.Span
	// Blocks, when non-nil, is the cross-query decoded-block cache: reader
	// gathers consult it before paying a codec decode. Hits are metered in
	// Counters.CacheHits/CacheBytes. Nil reproduces decode-every-time
	// behavior exactly.
	Blocks *cache.BlockCache
	// Preds, when non-nil, memoizes zone-map skip lists per (table,
	// predicate text) and feeds measured-selectivity hints back into the
	// scan. Hints affect allocation sizes only, never answers.
	Preds *cache.PredMemo
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// Counters meters the work a plan performed. The naive (§5.2) and
// consolidated (§5.3) pipelines produce radically different counters for
// the same query; the cluster cost model turns them into simulated time.
type Counters struct {
	// Subqueries is the number of logical subqueries run against the
	// stored sample (each one a separate scan in the naive rewrite).
	Subqueries int
	// Scans is the number of physical passes over the sample this
	// process actually performed.
	Scans int
	// RowsScanned and BytesScanned total the base-table rows/bytes read
	// across all physical scans.
	RowsScanned  int64
	BytesScanned int64
	// RowsAfterFilter is the number of rows surviving the filter in one
	// pass.
	RowsAfterFilter int64
	// BlocksSkipped is the number of zone-map blocks the scan proved empty
	// and never evaluated the predicate over. Skipping is pure saving: it
	// does not reduce RowsScanned/BytesScanned (which meter the logical
	// pass the cost model prices) and never changes RowsAfterFilter.
	BlocksSkipped int64
	// BlocksDecoded counts storage blocks decoded from block-compressed or
	// mmap-backed columns during this execution; raw tables report zero.
	// DecodeNanos is the wall time spent inside those decodes. Together
	// with BlocksSkipped they make the decode-after-admission invariant
	// observable: skipped blocks never appear in BlocksDecoded.
	BlocksDecoded int64
	DecodeNanos   int64
	// CacheHits counts storage blocks served from the cross-query decoded-
	// block cache instead of being decoded; CacheBytes totals the bytes
	// those hits copied out of the cache. A cached block appears in
	// CacheHits, a decoded one in BlocksDecoded — the two never double
	// count. Always zero when no cache is attached.
	CacheHits  int64
	CacheBytes int64
	// WeightDraws is the number of Poisson weight draws the plan's
	// resample placement implies (pushdown reduces this).
	WeightDraws int64
	// DiagSubqueries counts the diagnostic's subsample query executions.
	DiagSubqueries int
	// Tasks is the number of parallel tasks launched locally.
	Tasks int
}

// add accumulates o into c.
func (c *Counters) add(o Counters) {
	c.Subqueries += o.Subqueries
	c.Scans += o.Scans
	c.RowsScanned += o.RowsScanned
	c.BytesScanned += o.BytesScanned
	c.RowsAfterFilter += o.RowsAfterFilter
	c.BlocksSkipped += o.BlocksSkipped
	c.BlocksDecoded += o.BlocksDecoded
	c.DecodeNanos += o.DecodeNanos
	c.CacheHits += o.CacheHits
	c.CacheBytes += o.CacheBytes
	c.WeightDraws += o.WeightDraws
	c.DiagSubqueries += o.DiagSubqueries
	c.Tasks += o.Tasks
}

// AggOutput is one aggregate's result for one group.
type AggOutput struct {
	Spec  plan.AggSpec
	Query estimator.Query
	// Value is the approximate answer θ(S) (or θ on the full table when
	// the scan target is not a sample).
	Value float64
	// Values is the projected aggregation column for this group — the
	// post-filter inputs θ consumed. Downstream consumers use it for
	// closed-form variance estimates without a second scan.
	Values []float64
	// Bootstrap holds the K resample estimates when error estimation ran.
	Bootstrap []float64
	// Diag is the diagnostic verdict when the diagnostic operator ran.
	Diag *diagnostic.Result
}

// GroupOutput is the set of aggregate results for one group key.
type GroupOutput struct {
	Key  string
	Aggs []AggOutput
}

// Result is the output of executing a plan.
type Result struct {
	Groups     []GroupOutput
	Counters   Counters
	SampleRows int
}

// Run executes the plan against the given tables. Execution is faithful to
// the plan's §5.3 flags:
//
//   - Consolidated resampling computes the plain answer and all resample
//     aggregates in a single pass; the naive form physically re-executes
//     scan → filter → project once per resample.
//   - Pushdown controls whether Poisson weights are drawn for all scanned
//     rows or only for rows surviving the filter.
//   - The naive diagnostic is *accounted* at its full logical cost
//     (sizes × p × (K+1) subqueries, each a separate scan of the sample)
//     while the subsample mathematics is computed once — physically
//     re-scanning tens of thousands of times would only reproduce, slowly,
//     the same per-subsample inputs.
//
// Execution honours ctx: cancellation is checked at every stage boundary,
// between naive rescans, between (group, aggregate) work units, inside the
// diagnostic's subsample loop and inside the kernel's block loop, so a
// cancelled query aborts within one block (8 KiB of values) of resampling
// work. A cancelled Run returns an error wrapping ctx.Err() after all its
// worker goroutines have exited.
func Run(ctx context.Context, p *plan.Plan, tables map[string]*StoredTable, udfs Registry, cfg Config) (*Result, error) {
	nodes := collect(p.Root)
	if nodes.scan == nil || nodes.agg == nil {
		return nil, fmt.Errorf("exec: plan lacks scan or aggregate")
	}
	st, ok := tables[nodes.scan.Table]
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", nodes.scan.Table)
	}
	tbl := st.Data

	res := &Result{SampleRows: tbl.NumRows()}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exec: before scan: %w", err)
	}

	// --- Scan, filter, project (one physical pass, parallel). ---
	scanSpan := cfg.Span.StartSpan(obs.StageScan)
	base, err := scanFilterProject(ctx, nodes, tbl, st, cfg)
	if err != nil {
		return nil, fmt.Errorf("exec: scan of table %q: %w", nodes.scan.Table, err)
	}
	scanSpan.End()
	addCounterAttrs(scanSpan, base.counters)
	res.Counters.add(base.counters)

	if err := runDownstream(ctx, nodes, st, tbl, base, udfs, cfg, scanSpan, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runDownstream drives everything after the physical pass — group
// partitioning, naive rescans, bootstrap, diagnostics — and finalizes the
// result's counters. It is shared between Run (one query, one scan) and
// RunShared (many queries fanned out of one scan): base carries whichever
// scan produced this query's inputs, and res.Counters already holds that
// scan's share. scanSpan receives the user-rate weight draws, which are
// base-answer cost.
func runDownstream(ctx context.Context, nodes nodeSet, st *StoredTable, tbl *table.Table, base *scanResult, udfs Registry, cfg Config, scanSpan *obs.Span, res *Result) error {
	traced := cfg.Span != nil

	// --- Group partitioning. ---
	groups, err := splitGroups(nodes.agg, tbl, base)
	if err != nil {
		return fmt.Errorf("exec: grouping on table %q: %w", nodes.scan.Table, err)
	}

	k := 0
	if nodes.boot != nil {
		k = nodes.boot.K
	}
	var bootSpan, diagSpan *obs.Span
	if traced {
		if k > 0 {
			bootSpan = cfg.Span.StartSpan(obs.StageBootstrap)
			bootSpan.SetAttr("k", k)
			bootSpan.SetAttr("consolidated",
				nodes.resample != nil && nodes.resample.Consolidated)
		}
		if nodes.diag != nil {
			diagSpan = cfg.Span.StartSpan(obs.StageDiagnostic)
		}
	}

	// The naive (§5.2) plan executes each bootstrap resample as its own
	// subquery: physically re-run scan → filter → project once per
	// resample. The per-resample weights themselves are drawn in
	// bootstrapEstimates below; this loop performs (and meters) the
	// repeated scans the UNION ALL rewrite pays for. The rescans belong
	// to the bootstrap stage — they are error-estimation cost, not base
	// answer cost.
	if k > 0 && (nodes.resample == nil || !nodes.resample.Consolidated) {
		start := now(traced)
		var naive Counters
		for r := 0; r < k; r++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("exec: naive resample scan %d of table %q: %w",
					r, nodes.scan.Table, err)
			}
			rescan, err := scanFilterProject(ctx, nodes, tbl, st, cfg)
			if err != nil {
				return fmt.Errorf("exec: naive resample scan %d of table %q: %w",
					r, nodes.scan.Table, err)
			}
			naive.add(Counters{
				Subqueries:    1,
				Scans:         1,
				RowsScanned:   rescan.counters.RowsScanned,
				BytesScanned:  rescan.counters.BytesScanned,
				BlocksSkipped: rescan.counters.BlocksSkipped,
				BlocksDecoded: rescan.counters.BlocksDecoded,
				DecodeNanos:   rescan.counters.DecodeNanos,
				CacheHits:     rescan.counters.CacheHits,
				CacheBytes:    rescan.counters.CacheBytes,
				Tasks:         rescan.counters.Tasks,
			})
		}
		res.Counters.add(naive)
		if traced {
			bootSpan.AddDuration(time.Since(start))
			addCounterAttrs(bootSpan, naive)
		}
	}

	for _, g := range groups {
		gout := GroupOutput{Key: g.key}
		for ai, spec := range nodes.agg.Aggs {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("exec: group %q aggregate %d: %w", g.key, ai, err)
			}
			q, err := queryFor(spec, st, tbl.NumRows(), len(nodes.agg.GroupBy) > 0, udfs)
			if err != nil {
				return fmt.Errorf("exec: group %q aggregate %d: %w", g.key, ai, err)
			}
			values := g.values[ai]
			out := AggOutput{Spec: spec, Query: q, Value: q.Eval(values), Values: values}
			if nodes.resample != nil && nodes.resample.UserRate > 0 {
				// Explicit TABLESAMPLE POISSONIZED (rate): the base
				// answer itself is one Poissonized resample (§5.2's SQL
				// building block). Its weight draws are base-scan work.
				src := rng.NewWithStream(cfg.Seed,
					hashStream("usersample", g.key, ai, 0))
				w := make([]float64, len(values))
				for i := range w {
					w[i] = float64(src.Poisson(nodes.resample.UserRate))
				}
				out.Value = q.EvalWeighted(values, w)
				res.Counters.WeightDraws += int64(len(values))
				scanSpan.AddInt("weight_draws", int64(len(values)))
			}

			if k > 0 {
				start := now(traced)
				ests, c, err := bootstrapEstimates(ctx, nodes, values, q, k, cfg,
					tbl.NumRows(), g.key, ai)
				if err != nil {
					return fmt.Errorf("exec: bootstrap for group %q aggregate %d: %w",
						g.key, ai, err)
				}
				out.Bootstrap = ests
				res.Counters.add(c)
				if traced {
					d := time.Since(start)
					bootSpan.AddDuration(d)
					addCounterAttrs(bootSpan, c)
					bootSpan.AddInt("resamples", int64(k))
					if secs := d.Seconds(); secs > 0 {
						cfg.Span.Metrics().Histogram("aqp_kernel_rows_per_second",
							"Multi-resample kernel throughput (resamples × rows / wall time).",
							obs.ThroughputBuckets).
							Observe(float64(k) * float64(len(values)) / secs)
					}
				}
			}
			if nodes.diag != nil {
				start := now(traced)
				dres, c, err := runDiagnostic(ctx, nodes, values, q, k, cfg, diagSpan, g.key, ai)
				if err != nil {
					return fmt.Errorf("exec: diagnostic for group %q aggregate %d: %w",
						g.key, ai, err)
				}
				out.Diag = dres
				res.Counters.add(c)
				if traced {
					diagSpan.AddDuration(time.Since(start))
					addCounterAttrs(diagSpan, c)
					if dres.OK {
						diagSpan.AddInt("accepted", 1)
					} else {
						diagSpan.AddInt("rejected", 1)
					}
				}
			}
			gout.Aggs = append(gout.Aggs, out)
		}
		res.Groups = append(res.Groups, gout)
	}
	if traced {
		recordCounters(cfg.Span.Metrics(), res.Counters)
	}
	return nil
}

// now avoids the clock syscall on untraced hot paths.
func now(traced bool) time.Time {
	if !traced {
		return time.Time{}
	}
	return time.Now()
}

// addCounterAttrs attaches a stage's counter share as additive span
// attributes. Summing each key over every span of a trace reproduces the
// run's Result.Counters (asserted by TestSpanCountersMatchResultCounters).
func addCounterAttrs(s *obs.Span, c Counters) {
	s.AddInt("subqueries", int64(c.Subqueries))
	s.AddInt("scans", int64(c.Scans))
	s.AddInt("rows_scanned", c.RowsScanned)
	s.AddInt("bytes_scanned", c.BytesScanned)
	s.AddInt("rows_after_filter", c.RowsAfterFilter)
	s.AddInt("blocks_skipped", c.BlocksSkipped)
	s.AddInt("blocks_decoded", c.BlocksDecoded)
	s.AddInt("decode_ns", c.DecodeNanos)
	s.AddInt("cache_hits", c.CacheHits)
	s.AddInt("cache_bytes", c.CacheBytes)
	s.AddInt("weight_draws", c.WeightDraws)
	s.AddInt("diag_subqueries", int64(c.DiagSubqueries))
	s.AddInt("tasks", int64(c.Tasks))
}

// recordCounters feeds one execution's counters into the metrics registry,
// so aggregate work accounting no longer relies on hand-merging Counters
// structs alone.
func recordCounters(reg *obs.Registry, c Counters) {
	reg.Counter("aqp_exec_subqueries_total", "Logical subqueries executed.").Add(int64(c.Subqueries))
	reg.Counter("aqp_exec_scans_total", "Physical passes over stored samples.").Add(int64(c.Scans))
	reg.Counter("aqp_exec_rows_scanned_total", "Base-table rows read.").Add(c.RowsScanned)
	reg.Counter("aqp_exec_bytes_scanned_total", "Base-table bytes read.").Add(c.BytesScanned)
	reg.Counter("aqp_exec_blocks_skipped_total", "Zone-map blocks pruned from predicate evaluation.").Add(c.BlocksSkipped)
	reg.Counter("aqp_storage_blocks_skipped_total", "Storage blocks never decoded thanks to zone-map pruning.").Add(c.BlocksSkipped)
	reg.Counter("aqp_storage_blocks_decoded_total", "Storage blocks decoded from compressed/mmap columns.").Add(c.BlocksDecoded)
	reg.Counter("aqp_storage_decode_ns_total", "Wall nanoseconds spent decoding storage blocks.").Add(c.DecodeNanos)
	reg.Counter("aqp_storage_cache_hits_total", "Storage blocks served from the decoded-block cache.").Add(c.CacheHits)
	reg.Counter("aqp_storage_cache_bytes_total", "Bytes copied out of the decoded-block cache.").Add(c.CacheBytes)
	reg.Counter("aqp_exec_weight_draws_total", "Poisson resampling weight draws.").Add(c.WeightDraws)
	reg.Counter("aqp_exec_diag_subqueries_total", "Diagnostic subsample query executions.").Add(int64(c.DiagSubqueries))
	reg.Counter("aqp_exec_tasks_total", "Parallel tasks launched locally.").Add(int64(c.Tasks))
}

// nodeSet is the flattened plan chain.
type nodeSet struct {
	scan     *plan.Scan
	filter   *plan.Filter
	project  *plan.Project
	resample *plan.Resample
	agg      *plan.Aggregate
	boot     *plan.Bootstrap
	diag     *plan.Diagnostic
}

func collect(root plan.Node) nodeSet {
	var ns nodeSet
	plan.Walk(root, func(n plan.Node) {
		switch v := n.(type) {
		case *plan.Scan:
			ns.scan = v
		case *plan.Filter:
			ns.filter = v
		case *plan.Project:
			ns.project = v
		case *plan.Resample:
			ns.resample = v
		case *plan.Aggregate:
			ns.agg = v
		case *plan.Bootstrap:
			ns.boot = v
		case *plan.Diagnostic:
			ns.diag = v
		}
	})
	return ns
}

// scanResult is the outcome of the scan→filter→project pass.
type scanResult struct {
	sel      []int       // filtered row indices into the table
	cols     [][]float64 // one value column per aggregate input expression
	counters Counters
}

// scanFilterProject performs the single physical pass for one query. It is
// the one-member case of scanFilterProjectMulti.
func scanFilterProject(ctx context.Context, nodes nodeSet, tbl *table.Table, st *StoredTable, cfg Config) (*scanResult, error) {
	outs, errs := scanFilterProjectMulti(ctx, []nodeSet{nodes}, tbl, st, cfg)
	if errs[0] != nil {
		return nil, errs[0]
	}
	return outs[0], nil
}

// predWork is one distinct filter predicate appearing in a member batch,
// with its precomputed zone-map skip list. With a predicate memo
// attached, sig carries the literal-normalized shape signature and hint a
// remembered selectivity in [0,1] (-1 = unknown).
type predWork struct {
	pred    sql.Expr
	skip    []bool
	skipped int64
	sig     string
	hint    float64
}

// colWork describes how one distinct projected column is computed: which
// predicate selects its rows, which expression produces its values (nil =
// indicator), and whether it is the full-length masked form scaled sums
// need.
type colWork struct {
	predKey string
	input   sql.Expr
	masked  bool
}

// colKeyFor derives the dedup key for one aggregate's input column. Keys
// combine the evaluation mode, the predicate and the expression text, so
// two aggregates — in the same query or different batched queries — share
// one evaluation exactly when they would compute identical vectors.
func colKeyFor(spec plan.AggSpec, predKey string, masked bool) (string, colWork) {
	isSum := spec.Kind == estimator.Sum || spec.Kind == estimator.Count
	switch {
	case isSum && masked:
		// Scaled sums evaluate over ALL sample rows, with zeros where the
		// filter fails, so that the self-normalizing |D|·Σwx/Σw estimator
		// sees the filter as part of the statistic. (Grouped queries fall
		// back to conditional per-group columns; each group is treated as
		// a separate query, per §2.1.)
		key := "m|" + predKey + "|"
		if spec.Input != nil {
			key += spec.Input.String()
		}
		return key, colWork{predKey: predKey, input: spec.Input, masked: true}
	case spec.Input == nil:
		// COUNT(*) under GROUP BY: indicator 1 per surviving row.
		return "1|" + predKey, colWork{predKey: predKey}
	default:
		return "o|" + predKey + "|" + spec.Input.String(), colWork{predKey: predKey, input: spec.Input}
	}
}

// scanFilterProjectMulti performs ONE physical pass over tbl on behalf of
// every member query: each partition is visited once, every distinct
// filter predicate is evaluated once per partition (with zone-map block
// skipping), and every distinct (predicate, expression, mode) projection
// column is materialized once and aliased into each member's scanResult.
// This is §5.3.1's scan consolidation applied across queries instead of
// across one query's bootstrap subqueries.
//
// Errors are per-member: a bad predicate or projection in one member
// yields errs[m] without failing the rest of the batch. Cancellation is
// global and fails every member. Physical-scan counters (Scans,
// RowsScanned, BytesScanned, Tasks) are charged to the first successful
// member; every member is charged its own Subqueries/RowsAfterFilter, and
// each distinct predicate's BlocksSkipped goes to the first successful
// member using it — so summing members' counters meters the physical work
// exactly once regardless of batch size or worker count.
func scanFilterProjectMulti(ctx context.Context, members []nodeSet, tbl *table.Table, st *StoredTable, cfg Config) ([]*scanResult, []error) {
	errs := make([]error, len(members))
	results := make([]*scanResult, len(members))

	// --- Plan the shared work: distinct predicates and projections. ---
	preds := map[string]*predWork{}
	colWorks := map[string]colWork{}
	memberPred := make([]string, len(members))
	memberCols := make([][]string, len(members))
	for m, nodes := range members {
		pk := ""
		if nodes.filter != nil {
			pk = nodes.filter.Pred.String()
			if _, ok := preds[pk]; !ok {
				// The skip list is a pure function of (table zones, predicate
				// text), so the predicate memo replays it for repeated
				// predicates without re-walking the range analyzer. Skip
				// lists are exact-keyed — literals decide which blocks are
				// admissible — while the selectivity hint below shares one
				// estimate across all literals of the same shape.
				pw := &predWork{pred: nodes.filter.Pred, hint: -1}
				if skip, skipped, ok := cfg.Preds.Lookup(tbl, pk); ok {
					pw.skip, pw.skipped = skip, skipped
				} else {
					pw.skip, pw.skipped = blockSkip(tbl, nodes.filter.Pred)
					cfg.Preds.Store(tbl, pk, pw.skip, pw.skipped)
				}
				if cfg.Preds != nil {
					pw.sig = history.PredicateSignature(nodes.filter.Pred)
					if h, ok := cfg.Preds.Hint(tbl, pw.sig); ok {
						pw.hint = h
					}
				}
				preds[pk] = pw
			}
		} else if _, ok := preds[pk]; !ok {
			preds[pk] = &predWork{hint: -1}
		}
		memberPred[m] = pk
		keys := make([]string, len(nodes.agg.Aggs))
		masked := len(nodes.agg.GroupBy) == 0
		for ai, spec := range nodes.agg.Aggs {
			key, w := colKeyFor(spec, pk, masked)
			if _, ok := colWorks[key]; !ok {
				colWorks[key] = w
			}
			keys[ai] = key
		}
		memberCols[m] = keys
	}

	// --- One parallel pass over the partitions. ---
	// Partitions are block-aligned so each one decodes (and zone-checks)
	// whole storage blocks; the merge below concatenates partition outputs
	// in row order, so answers are identical to any other split.
	done := ctx.Done()
	parts := tbl.PartitionAligned(cfg.workers())
	offsets := make([]int, len(parts))
	off := 0
	for i, p := range parts {
		offsets[i] = off
		off += p.NumRows()
	}
	type partOut struct {
		sels   map[string][]int     // predKey -> absolute surviving indices
		cols   map[string][]float64 // colKey -> values
		errs   map[string]error     // predKey / colKey -> evaluation error
		meter  decodeMeter          // lazy-decode work this partition performed
		ctxErr error
	}
	outs := make([]partOut, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *table.Table) {
			defer wg.Done()
			o := &outs[i]
			o.sels = map[string][]int{}
			o.cols = map[string][]float64{}
			o.errs = map[string]error{}
			if done != nil {
				select {
				case <-done:
					o.ctxErr = ctx.Err()
					return
				default:
				}
			}
			n0 := part.NumRows()
			// Distinct predicates first: every projection selects by one.
			localSel := map[string][]int{} // partition-relative; nil = all rows
			for pk, pw := range preds {
				if pw.pred == nil {
					localSel[pk] = nil
					abs := make([]int, n0)
					for j := range abs {
						abs[j] = offsets[i] + j
					}
					o.sels[pk] = abs
					continue
				}
				sel, err := evalPredicateSkipping(ctx, pw.pred, part, offsets[i], pw.skip, &o.meter, cfg.Blocks, pw.hint)
				if err != nil {
					o.errs[pk] = err
					continue
				}
				localSel[pk] = sel
				abs := make([]int, len(sel))
				for j, r := range sel {
					abs[j] = offsets[i] + r
				}
				o.sels[pk] = abs
			}
			// Then every distinct projection column, each evaluated once.
			for key, cw := range colWorks {
				if _, bad := o.errs[cw.predKey]; bad {
					continue
				}
				sel := localSel[cw.predKey]
				n := n0
				if sel != nil {
					n = len(sel)
				}
				var vals []float64
				var err error
				switch {
				case cw.masked:
					vals, err = maskedColumn(cw.input, part, sel, &o.meter, cfg.Blocks)
				case cw.input == nil:
					vals = make([]float64, n)
					for j := range vals {
						vals[j] = 1
					}
				default:
					vals, err = evalNumericMetered(cw.input, part, sel, &o.meter, cfg.Blocks)
				}
				if err != nil {
					o.errs[key] = err
					continue
				}
				o.cols[key] = vals
			}
		}(i, part)
	}
	wg.Wait()

	// --- Merge partition outputs per distinct key. ---
	var ctxErr error
	var decode decodeMeter
	keyErrs := map[string]error{}
	for _, o := range outs {
		if o.ctxErr != nil {
			ctxErr = o.ctxErr
		}
		decode.blocks += o.meter.blocks
		decode.nanos += o.meter.nanos
		decode.hits += o.meter.hits
		decode.hitBytes += o.meter.hitBytes
		for k, e := range o.errs {
			if keyErrs[k] == nil {
				keyErrs[k] = e
			}
		}
	}
	if ctxErr != nil {
		for m := range errs {
			errs[m] = ctxErr
		}
		return results, errs
	}
	selByPred := map[string][]int{}
	for pk := range preds {
		if keyErrs[pk] != nil {
			continue
		}
		var sel []int
		for _, o := range outs {
			sel = append(sel, o.sels[pk]...)
		}
		selByPred[pk] = sel
		// Feed the measured selectivity back into the memo so the NEXT scan
		// of this predicate shape pre-sizes its selection vectors correctly.
		if pw := preds[pk]; cfg.Preds != nil && pw.pred != nil && tbl.NumRows() > 0 {
			cfg.Preds.ObserveSelectivity(tbl, pw.sig,
				float64(len(sel))/float64(tbl.NumRows()))
		}
	}
	colByKey := map[string][]float64{}
	for key, cw := range colWorks {
		if keyErrs[key] != nil || keyErrs[cw.predKey] != nil {
			continue
		}
		var vals []float64
		for _, o := range outs {
			vals = append(vals, o.cols[key]...)
		}
		colByKey[key] = vals
	}

	// --- Fan out: alias the shared columns into per-member results. ---
	physCharged := false
	skipCharged := map[string]bool{}
	for m := range members {
		pk := memberPred[m]
		if err := keyErrs[pk]; err != nil {
			errs[m] = err
			continue
		}
		cols := make([][]float64, len(memberCols[m]))
		var memberErr error
		for ai, key := range memberCols[m] {
			if err := keyErrs[key]; err != nil {
				memberErr = err
				break
			}
			cols[ai] = colByKey[key]
		}
		if memberErr != nil {
			errs[m] = memberErr
			continue
		}
		r := &scanResult{sel: selByPred[pk], cols: cols}
		r.counters = Counters{
			Subqueries:      1,
			RowsAfterFilter: int64(len(r.sel)),
		}
		if !physCharged {
			physCharged = true
			r.counters.Scans = 1
			r.counters.RowsScanned = int64(tbl.NumRows())
			r.counters.BytesScanned = tbl.SizeBytes()
			r.counters.BlocksDecoded = decode.blocks
			r.counters.DecodeNanos = decode.nanos
			r.counters.CacheHits = decode.hits
			r.counters.CacheBytes = decode.hitBytes
			r.counters.Tasks = len(parts)
		}
		if !skipCharged[pk] {
			skipCharged[pk] = true
			r.counters.BlocksSkipped = preds[pk].skipped
		}
		results[m] = r
	}
	return results, errs
}

// maskedColumn evaluates the aggregation input over ALL rows of the part,
// zeroing rows the filter rejected. A nil input is COUNT(*)'s indicator.
func maskedColumn(input sql.Expr, part *table.Table, sel []int, m *decodeMeter, cc *cache.BlockCache) ([]float64, error) {
	n := part.NumRows()
	out := make([]float64, n)
	if input == nil {
		if sel == nil {
			for i := range out {
				out[i] = 1
			}
		} else {
			for _, j := range sel {
				out[j] = 1
			}
		}
		return out, nil
	}
	vals, err := evalNumericMetered(input, part, nil, m, cc)
	if err != nil {
		return nil, err
	}
	if sel == nil {
		copy(out, vals)
	} else {
		for _, j := range sel {
			out[j] = vals[j]
		}
	}
	return out, nil
}

// group is one GROUP BY bucket with per-aggregate value columns.
type group struct {
	key    string
	values [][]float64
}

func splitGroups(agg *plan.Aggregate, tbl *table.Table, base *scanResult) ([]group, error) {
	if len(agg.GroupBy) == 0 {
		return []group{{key: "", values: base.cols}}, nil
	}
	if len(agg.GroupBy) > 1 {
		return nil, fmt.Errorf("exec: multi-column GROUP BY not supported (got %d columns)",
			len(agg.GroupBy))
	}
	col := tbl.ColumnByName(agg.GroupBy[0])
	if col == nil {
		return nil, fmt.Errorf("exec: unknown GROUP BY column %q", agg.GroupBy[0])
	}
	// Raw columns index directly; block-backed columns go through a
	// block-buffered cursor (base.sel is ascending, so each touched block
	// decodes once).
	var keyOf func(row int) string
	switch c := col.(type) {
	case table.StringCol:
		keyOf = func(row int) string { return c[row] }
	case table.Int64Col:
		keyOf = func(row int) string { return strconv.FormatInt(c[row], 10) }
	case table.Float64Col:
		keyOf = func(row int) string {
			return strconv.FormatFloat(c[row], 'g', -1, 64)
		}
	default:
		switch col.Type() {
		case table.String:
			cu, err := table.NewStrCursor(col)
			if err != nil {
				return nil, fmt.Errorf("exec: GROUP BY column %q: %w", agg.GroupBy[0], err)
			}
			keyOf = cu.At
		case table.Int64:
			cu, err := table.NewI64Cursor(col)
			if err != nil {
				return nil, fmt.Errorf("exec: GROUP BY column %q: %w", agg.GroupBy[0], err)
			}
			keyOf = func(row int) string { return strconv.FormatInt(cu.At(row), 10) }
		case table.Float64:
			cu, err := table.NewF64Cursor(col)
			if err != nil {
				return nil, fmt.Errorf("exec: GROUP BY column %q: %w", agg.GroupBy[0], err)
			}
			keyOf = func(row int) string {
				return strconv.FormatFloat(cu.At(row), 'g', -1, 64)
			}
		default:
			keyOf = func(int) string { return "" }
		}
	}
	idxByKey := map[string][]int{}
	for pos, row := range base.sel {
		k := keyOf(row)
		idxByKey[k] = append(idxByKey[k], pos)
	}
	keys := make([]string, 0, len(idxByKey))
	for k := range idxByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]group, 0, len(keys))
	for _, k := range keys {
		positions := idxByKey[k]
		vals := make([][]float64, len(base.cols))
		for ai, colVals := range base.cols {
			sub := make([]float64, len(positions))
			for j, pos := range positions {
				sub[j] = colVals[pos]
			}
			vals[ai] = sub
		}
		out = append(out, group{key: k, values: vals})
	}
	return out, nil
}

// queryFor translates an AggSpec into an estimator.Query, resolving scaling
// and UDF bodies.
func queryFor(spec plan.AggSpec, st *StoredTable, sampleRows int, grouped bool, udfs Registry) (estimator.Query, error) {
	switch spec.Kind {
	case estimator.UDF:
		fn, ok := udfs[spec.UDFName]
		if !ok {
			return estimator.Query{}, fmt.Errorf("exec: unregistered UDF %q", spec.UDFName)
		}
		return estimator.Query{Kind: estimator.UDF, Fn: fn, FnName: spec.UDFName}, nil
	case estimator.Sum, estimator.Count:
		if st.PopRows <= 0 {
			return estimator.Query{Kind: spec.Kind}, nil
		}
		if !grouped {
			// Ungrouped scaled sums evaluate over the full-sample masked
			// column (zeros where the filter fails), so Query's
			// self-normalized |D|·Σwx/Σw form applies directly.
			return estimator.Query{Kind: spec.Kind, PopN: st.PopRows}, nil
		}
		// Grouped sums see only their group's rows; scale by the fixed
		// |D|/|S| factor. (The resample-size noise this admits is the
		// price of treating each group as a separate query, §2.1.)
		scale := float64(st.PopRows) / float64(sampleRows)
		return estimator.Query{
			Kind:   estimator.UDF,
			FnName: spec.Kind.String() + "_scaled",
			Fn: func(values, weights []float64) float64 {
				sum := 0.0
				if weights == nil {
					for _, v := range values {
						sum += v
					}
				} else {
					for i, v := range values {
						sum += v * weights[i]
					}
				}
				return scale * sum
			},
		}, nil
	default:
		return estimator.Query{Kind: spec.Kind, Pct: spec.Pct}, nil
	}
}

// bootstrapEstimates computes the K resample estimates on the blocked
// multi-resample kernel (internal/kernel): the value column is streamed
// block-major once, with fused Σw·x / Σw accumulators for the closed-form
// family and the generic weighted-θ fallback (pooled weight buffers) for
// quantiles and UDFs. Per-(resample, block) RNG streams make the result
// bit-identical at every worker count. Naive mode charges one full
// subquery per resample elsewhere; scannedRows is the pre-filter row
// count, charged for weight draws when pushdown is off.
func bootstrapEstimates(ctx context.Context, nodes nodeSet, values []float64, q estimator.Query, k int, cfg Config, scannedRows int, groupKey string, aggIdx int) ([]float64, Counters, error) {
	var c Counters
	stream := hashStream("boot", groupKey, aggIdx, 0)
	var ests []float64
	if q.FusedApplicable() {
		sums := kernel.FusedSums(ctx, values, k, cfg.Seed, stream, cfg.workers())
		if err := ctx.Err(); err != nil {
			return nil, c, err
		}
		ests = make([]float64, k)
		for r := range ests {
			ests[r] = q.FinalizeFused(sums.WX[r], sums.W[r], len(values))
		}
		c.Tasks += sums.Tasks
	} else {
		var tasks int
		ests, tasks = kernel.Generic(ctx, values, k, cfg.Seed, stream, cfg.workers(), q.EvalWeighted)
		if err := ctx.Err(); err != nil {
			return nil, c, err
		}
		c.Tasks += tasks
	}
	pushed := nodes.resample == nil || nodes.resample.Pushed
	if pushed {
		c.WeightDraws += int64(k) * int64(len(values))
	} else {
		c.WeightDraws += int64(k) * int64(scannedRows)
	}
	return ests, c, nil
}

// runDiagnostic executes the diagnostic operator for one aggregate. Under
// tracing, each (group, aggregate) verdict becomes a child span of the
// diagnostic stage span, and ξ's resample draws are counted through the
// estimator's own accounting hook.
func runDiagnostic(ctx context.Context, nodes nodeSet, values []float64, q estimator.Query, k int, cfg Config, diagSpan *obs.Span, groupKey string, aggIdx int) (*diagnostic.Result, Counters, error) {
	var c Counters
	verdictSpan := diagSpan.StartSpan("verdict")
	if verdictSpan != nil {
		if groupKey != "" {
			verdictSpan.SetAttr("group", groupKey)
		}
		verdictSpan.SetAttr("agg", aggIdx)
	}
	dcfg := diagnostic.Config{
		SubsampleSizes: nodes.diag.Sizes,
		P:              nodes.diag.P,
		C1:             0.2, C2: 0.2, C3: 0.5,
		Rho:     0.95,
		Alpha:   0.95,
		Shuffle: true,
		// Fan the per-size subsample queries across the executor's worker
		// pool; verdicts are worker-count-invariant (per-subsample streams).
		Workers: cfg.workers(),
		Span:    verdictSpan,
	}
	if dcfg.SubsampleSizes[len(dcfg.SubsampleSizes)-1]*dcfg.P > len(values) {
		// Not enough filtered rows for the configured ladder: shrink it.
		// Below 16 rows per largest subsample the verdict would be noise,
		// so reject conservatively instead.
		b3 := len(values) / (2 * dcfg.P)
		if b3 < 16 {
			res := &diagnostic.Result{
				OK:     false,
				Reason: "too few rows after filtering for a meaningful diagnosis",
			}
			if verdictSpan != nil {
				verdictSpan.SetAttr("verdict", "reject")
				verdictSpan.SetAttr("reason", res.Reason)
				verdictSpan.End()
				verdictSpan.Metrics().Counter("aqp_diagnostic_verdicts_total",
					"Diagnostic verdicts, by outcome.", "verdict", "reject").Inc()
			}
			return res, c, nil
		}
		dcfg.SubsampleSizes = []int{b3 / 4, b3 / 2, b3}
	}
	var xi estimator.Estimator
	if q.ClosedFormApplicable() {
		// Diagnostic subsamples are small (tens to hundreds of rows), so
		// the Student-t critical value matters; with z the widths would be
		// biased slightly narrow at every ladder size.
		xi = estimator.ClosedForm{UseStudentT: true}
	} else {
		kk := k
		if kk <= 0 {
			kk = estimator.DefaultBootstrapK
		}
		xi = estimator.Bootstrap{K: kk, Obs: verdictSpan.Metrics()}
	}
	src := rng.NewWithStream(cfg.Seed, hashStream("diag", groupKey, aggIdx, 0))
	dres, err := diagnostic.Run(ctx, src, values, q, xi, dcfg)
	verdictSpan.End()
	if err != nil {
		return nil, c, err
	}
	c.DiagSubqueries += dres.SubsampleQueries
	if !nodes.diag.Consolidated {
		// Naive accounting: every subsample query — including the K
		// bootstrap replications per subsample when ξ is the bootstrap —
		// is a separate subquery against the stored sample.
		per := 1
		if !q.ClosedFormApplicable() {
			per = k + 1
			if k <= 0 {
				per = estimator.DefaultBootstrapK + 1
			}
		}
		n := len(dcfg.SubsampleSizes) * dcfg.P * per
		c.Subqueries += n
		c.Scans += n
	}
	return &dres, c, nil
}

// hashStream derives a deterministic RNG stream id from execution
// coordinates.
func hashStream(kind, groupKey string, aggIdx, r int) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(kind)
	mix(groupKey)
	h ^= uint64(aggIdx)
	h *= 1099511628211
	h ^= uint64(r)
	h *= 1099511628211
	return h
}

// Ensure sql import is used even if expression helpers move.
var _ sql.Expr = (*sql.Literal)(nil)
