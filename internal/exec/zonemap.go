package exec

import (
	"math"

	"repro/internal/sql"
	"repro/internal/table"
)

// Zone-map pruning: a conservative predicate-range analyzer derives, per
// column, an interval outside which no row can satisfy the filter; blocks
// whose zone-map envelope is disjoint from that interval are skipped
// without evaluating the predicate on their rows. "Conservative" means the
// derived interval always contains the true feasible set — unsupported
// constructs (NOT, arithmetic over columns, column-column comparisons,
// string predicates, !=) widen to (-∞, +∞) rather than guess — so pruning
// can only skip blocks with zero matching rows and never changes the
// selection vector (pinned by TestZoneSkipPreservesSelection).

// colRange is the feasible interval for one column: lo < x < hi with the
// strictness flags controlling whether the endpoints themselves survive.
type colRange struct {
	lo, hi             float64
	loStrict, hiStrict bool
}

func fullRange() colRange {
	return colRange{lo: math.Inf(-1), hi: math.Inf(1)}
}

// intersect narrows r by o (AND of two constraints).
func (r colRange) intersect(o colRange) colRange {
	out := r
	if o.lo > out.lo || (o.lo == out.lo && o.loStrict) {
		out.lo, out.loStrict = o.lo, o.loStrict || (o.lo == out.lo && out.loStrict)
	}
	if o.hi < out.hi || (o.hi == out.hi && o.hiStrict) {
		out.hi, out.hiStrict = o.hi, o.hiStrict || (o.hi == out.hi && out.hiStrict)
	}
	return out
}

// hull widens r to cover both r and o (OR of two constraints).
func (r colRange) hull(o colRange) colRange {
	out := r
	if o.lo < out.lo {
		out.lo, out.loStrict = o.lo, o.loStrict
	} else if o.lo == out.lo {
		out.loStrict = out.loStrict && o.loStrict
	}
	if o.hi > out.hi {
		out.hi, out.hiStrict = o.hi, o.hiStrict
	} else if o.hi == out.hi {
		out.hiStrict = out.hiStrict && o.hiStrict
	}
	return out
}

// excludes reports whether a block with envelope [mn, mx] provably contains
// no value in the range. NaN envelopes (corrupt data) compare false on
// every branch and are never skipped.
func (r colRange) excludes(mn, mx float64) bool {
	if mx < r.lo || (r.loStrict && mx <= r.lo) {
		return true
	}
	if mn > r.hi || (r.hiStrict && mn >= r.hi) {
		return true
	}
	return false
}

// predRanges derives per-column feasible intervals from a predicate. A nil
// map means "no usable constraint". The analysis handles conjunctions and
// disjunctions of comparisons between one bare column reference and one
// numeric literal; anything else contributes no constraint.
func predRanges(e sql.Expr) map[string]colRange {
	switch ex := e.(type) {
	case *sql.Binary:
		switch ex.Op {
		case "AND":
			l, r := predRanges(ex.L), predRanges(ex.R)
			if l == nil {
				return r
			}
			for col, rr := range r {
				if lr, ok := l[col]; ok {
					l[col] = lr.intersect(rr)
				} else {
					l[col] = rr
				}
			}
			return l
		case "OR":
			// A disjunction constrains a column only when BOTH branches do:
			// the unconstrained branch could match anything.
			l, r := predRanges(ex.L), predRanges(ex.R)
			if l == nil || r == nil {
				return nil
			}
			out := map[string]colRange{}
			for col, lr := range l {
				if rr, ok := r[col]; ok {
					out[col] = lr.hull(rr)
				}
			}
			if len(out) == 0 {
				return nil
			}
			return out
		case "=", "<", "<=", ">", ">=":
			col, lit, flipped := splitCmp(ex)
			if col == "" {
				return nil
			}
			op := ex.Op
			if flipped {
				op = flipCmp(op)
			}
			r := fullRange()
			switch op {
			case "=":
				r.lo, r.hi = lit, lit
			case "<":
				r.hi, r.hiStrict = lit, true
			case "<=":
				r.hi = lit
			case ">":
				r.lo, r.loStrict = lit, true
			case ">=":
				r.lo = lit
			}
			return map[string]colRange{col: r}
		}
	}
	return nil
}

// splitCmp extracts (column, literal) from a comparison where one side is a
// bare column reference and the other a numeric literal, reporting whether
// the column was on the right (so the operator must flip).
func splitCmp(ex *sql.Binary) (col string, lit float64, flipped bool) {
	if c, ok := ex.L.(*sql.ColumnRef); ok {
		if l, ok := ex.R.(*sql.Literal); ok && !l.IsStr {
			return c.Name, l.Num, false
		}
	}
	if c, ok := ex.R.(*sql.ColumnRef); ok {
		if l, ok := ex.L.(*sql.Literal); ok && !l.IsStr {
			return c.Name, l.Num, true
		}
	}
	return "", 0, false
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // "=" is symmetric
}

// blockSkip combines the predicate's ranges with the table's zone maps into
// a per-block skip list. It returns (nil, 0) when the table has no zone
// maps, the predicate yields no usable ranges, or nothing is skippable —
// callers then fall back to the plain single-pass filter.
func blockSkip(tbl *table.Table, pred sql.Expr) ([]bool, int64) {
	z := tbl.Zones()
	if z == nil || pred == nil {
		return nil, 0
	}
	ranges := predRanges(pred)
	if len(ranges) == 0 {
		return nil, 0
	}
	nb := z.NumBlocks()
	var skip []bool
	var skipped int64
	for col, r := range ranges {
		idx := tbl.Schema().Index(col)
		if idx < 0 {
			continue
		}
		cz, ok := z.Column(idx)
		if !ok {
			continue
		}
		for b := 0; b < nb; b++ {
			if r.excludes(cz.Mins[b], cz.Maxs[b]) {
				if skip == nil {
					skip = make([]bool, nb)
				}
				if !skip[b] {
					skip[b] = true
					skipped++
				}
			}
		}
	}
	return skip, skipped
}
