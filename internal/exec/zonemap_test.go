package exec

import (
	"context"
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sql"
	"repro/internal/table"
)

func wherePred(t *testing.T, cond string) sql.Expr {
	t.Helper()
	return sql.MustParse("SELECT COUNT(*) FROM t WHERE " + cond).(*sql.Select).Where
}

// --- Predicate-range analysis ---

func TestPredRangesComparisons(t *testing.T) {
	inf := math.Inf(1)
	for _, tc := range []struct {
		cond               string
		lo, hi             float64
		loStrict, hiStrict bool
	}{
		{"x > 5", 5, inf, true, false},
		{"x >= 5", 5, inf, false, false},
		{"x < 5", -inf, 5, false, true},
		{"x <= 5", -inf, 5, false, false},
		{"x = 5", 5, 5, false, false},
		{"5 > x", -inf, 5, false, true}, // flipped: x < 5
		{"5 <= x", 5, inf, false, false},
		{"x > 2 AND x < 10", 2, 10, true, true},
		{"x > 2 AND x >= 4", 4, inf, false, false},
		{"x < 2 OR (x > 10 AND x < 20)", -inf, 20, false, true},
		{"x = 3 OR x = 7", 3, 7, false, false},
	} {
		ranges := predRanges(wherePred(t, tc.cond))
		r, ok := ranges["x"]
		if !ok {
			t.Errorf("%q: no range for x (got %v)", tc.cond, ranges)
			continue
		}
		if r.lo != tc.lo || r.hi != tc.hi ||
			r.loStrict != tc.loStrict || r.hiStrict != tc.hiStrict {
			t.Errorf("%q: range %+v, want [lo=%v strict=%v, hi=%v strict=%v]",
				tc.cond, r, tc.lo, tc.loStrict, tc.hi, tc.hiStrict)
		}
	}
}

func TestPredRangesConservativeWidening(t *testing.T) {
	// Unsupported constructs must yield no constraint, never a guess.
	for _, cond := range []string{
		"NOT (x > 5)",
		"x != 5",
		"x + 1 > 5",
		"x > y",
		"City = 'NYC'",
		"x < 2 OR y > 3", // no column constrained on both branches
	} {
		if r := predRanges(wherePred(t, cond)); len(r) != 0 {
			t.Errorf("%q: derived ranges %v, want none", cond, r)
		}
	}
	// AND with an unsupported branch keeps the supported side only.
	r := predRanges(wherePred(t, "City = 'NYC' AND x < 7"))
	if len(r) != 1 || r["x"].hi != 7 || !r["x"].hiStrict {
		t.Errorf("mixed AND: ranges %v", r)
	}
	// OR's hull must cover both branches even with shared columns.
	r = predRanges(wherePred(t, "(x > 2 AND y > 0) OR (x < 1 AND y < 10)"))
	if xr := r["x"]; !math.IsInf(xr.lo, -1) || !math.IsInf(xr.hi, 1) {
		t.Errorf("disjoint OR hull for x: %+v", xr)
	}
}

func TestColRangeExcludes(t *testing.T) {
	r := colRange{lo: 10, hi: 20, loStrict: true, hiStrict: false}
	for _, tc := range []struct {
		mn, mx float64
		want   bool
	}{
		{0, 9, true},                    // entirely below
		{0, 10, true},                   // touches strict lower bound only
		{0, 11, false},                  // overlaps
		{21, 30, true},                  // entirely above
		{20, 30, false},                 // touches inclusive upper bound
		{math.NaN(), math.NaN(), false}, // corrupt envelope: never skip
	} {
		if got := r.excludes(tc.mn, tc.mx); got != tc.want {
			t.Errorf("excludes(%v, %v) = %v, want %v", tc.mn, tc.mx, got, tc.want)
		}
	}
}

// --- Skipping never changes the selection ---

// clusteredSessions builds a Sessions table whose Time column is
// monotonically increasing (zone-clustered: block envelopes are tight and
// disjoint) with a string City column riding along.
func clusteredSessions(n int, seed uint64) *table.Table {
	src := rng.New(seed)
	times := make(table.Float64Col, n)
	cities := make(table.StringCol, n)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < n; i++ {
		times[i] = float64(i) + 0.25*src.Float64()
		cities[i] = names[src.Intn(len(names))]
	}
	return table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
}

func TestZoneSkipPreservesSelection(t *testing.T) {
	n := 8*table.ZoneBlockRows + 500 // short tail block
	tbl := clusteredSessions(n, 21)
	tbl.BuildZones()
	anySkipped := false
	for _, cond := range []string{
		"Time < 100",
		"Time > 8300",
		"Time >= 2048 AND Time < 2100",
		"City = 'NYC' AND Time < 512",
		"Time < 100 OR Time > 8400",
		"Time = 3000",
		"NOT (City = 'NYC')", // no ranges: skip list must be nil
	} {
		pred := wherePred(t, cond)
		want, err := EvalPredicate(pred, tbl)
		if err != nil {
			t.Fatalf("%q: %v", cond, err)
		}
		skip, skipped := blockSkip(tbl, pred)
		if skipped > 0 {
			anySkipped = true
		}
		got, err := evalPredicateSkipping(context.Background(), pred, tbl, 0, skip, nil, nil, -1)
		if err != nil {
			t.Fatalf("%q: %v", cond, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: skipping selected %d rows, plain selected %d (skipped %d blocks)",
				cond, len(got), len(want), skipped)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: selection diverges at %d: %d != %d", cond, i, got[i], want[i])
			}
		}
	}
	if !anySkipped {
		t.Error("no predicate skipped any block on zone-clustered data")
	}
}

func TestZoneSkipAcrossPartitions(t *testing.T) {
	// The partitioned scan path hands evalPredicateSkipping a view plus the
	// view's absolute offset; block alignment is relative to the base table.
	n := 5*table.ZoneBlockRows + 77
	tbl := clusteredSessions(n, 22)
	tbl.BuildZones()
	pred := wherePred(t, "Time >= 1500 AND Time < 3600")
	want, err := EvalPredicate(pred, tbl)
	if err != nil {
		t.Fatal(err)
	}
	skip, skipped := blockSkip(tbl, pred)
	if skipped == 0 {
		t.Fatal("expected skippable blocks")
	}
	for _, workers := range []int{1, 2, 3, 7} {
		parts := tbl.Partition(workers)
		var got []int
		offset := 0
		for _, part := range parts {
			sel, err := evalPredicateSkipping(context.Background(), pred, part, offset, skip, nil, nil, -1)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range sel {
				got = append(got, offset+i)
			}
			offset += part.NumRows()
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d: %d != %d", workers, i, got[i], want[i])
			}
		}
	}
}

// --- End-to-end: pruning changes counters, never answers ---

func TestRunZoneMapSkipping(t *testing.T) {
	n := 64 * table.ZoneBlockRows
	q := "SELECT AVG(Time), COUNT(*) FROM Sessions WHERE Time < 655"
	run := func(zones bool, workers int) *Result {
		tbl := clusteredSessions(n, 23)
		if zones {
			tbl.BuildZones()
		}
		tables := map[string]*StoredTable{
			"Sessions": {Data: tbl, PopRows: n * 10},
		}
		p := mustPlan(t, q, plan.Options{BootstrapK: 20, Alpha: 0.95,
			ScanConsolidation: true, OperatorPushdown: true})
		res, err := Run(context.Background(), p, tables, nil,
			Config{Workers: workers, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(false, 4)
	if plain.Counters.BlocksSkipped != 0 {
		t.Fatalf("no zones but %d blocks skipped", plain.Counters.BlocksSkipped)
	}
	pruned := run(true, 4)
	// Time < 655 touches only block 0 of 64: all 63 others are provably
	// empty and the filter is ~1% selective.
	if pruned.Counters.BlocksSkipped != 63 {
		t.Errorf("blocks skipped = %d, want 63", pruned.Counters.BlocksSkipped)
	}
	// Pruning is invisible everywhere else: identical selection accounting,
	// identical scan accounting (RowsScanned meters logical scan size), and
	// bit-identical answers and resample estimates.
	if pruned.Counters.RowsScanned != plain.Counters.RowsScanned ||
		pruned.Counters.RowsAfterFilter != plain.Counters.RowsAfterFilter {
		t.Errorf("pruned counters %+v vs plain %+v", pruned.Counters, plain.Counters)
	}
	for gi := range plain.Groups {
		for ai := range plain.Groups[gi].Aggs {
			a, b := plain.Groups[gi].Aggs[ai], pruned.Groups[gi].Aggs[ai]
			if a.Value != b.Value {
				t.Errorf("agg %d value %v != %v", ai, b.Value, a.Value)
			}
			for k := range a.Bootstrap {
				if a.Bootstrap[k] != b.Bootstrap[k] {
					t.Fatalf("agg %d resample %d: %v != %v",
						ai, k, b.Bootstrap[k], a.Bootstrap[k])
				}
			}
		}
	}
	// Skip accounting is worker-count invariant (the skip bitmap is
	// computed globally, not per partition).
	for _, workers := range []int{1, 3, 8} {
		if got := run(true, workers).Counters.BlocksSkipped; got != 63 {
			t.Errorf("workers=%d: blocks skipped = %d, want 63", workers, got)
		}
	}
}
