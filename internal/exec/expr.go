// Package exec physically executes logical plans over columnar tables: it
// evaluates filter predicates and projection expressions vectorized over
// column slices, runs scans in parallel over table partitions, applies
// Poissonized resampling weights, computes plain and weighted aggregates,
// and drives the bootstrap and diagnostic operators. It also meters the
// work performed (scans, rows, weight draws, subqueries) so the cluster
// cost model can translate a plan's execution into simulated wall-clock
// time at production scale.
package exec

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/sql"
	"repro/internal/table"
)

// Scratch pooling: predicate evaluation allocates a handful of transient
// vectors (gathered columns, arithmetic intermediates, boolean masks) per
// partition per query, which at serving rates dominates the allocator. A
// scratch tracks every pooled slice handed out during one evaluation so
// the caller can return them all at once. Only EvalPredicate uses a
// scratch: its intermediates are provably dead once the selection vector
// (freshly allocated, never pooled) is built. EvalNumeric passes nil —
// its result vectors are retained by aggregation — and a nil scratch
// degrades every get to a plain make.
//
// The pools hold *[]T rather than []T so Put doesn't allocate (staticcheck
// SA6002).
var (
	f64Pool = sync.Pool{New: func() any {
		s := make([]float64, 0, table.ZoneBlockRows)
		return &s
	}}
	boolPool = sync.Pool{New: func() any {
		s := make([]bool, 0, table.ZoneBlockRows)
		return &s
	}}
)

type scratch struct {
	f64s  []*[]float64
	bools []*[]bool
}

func (sc *scratch) getF64(n int) []float64 {
	if sc == nil {
		return make([]float64, n)
	}
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	sc.f64s = append(sc.f64s, p)
	return (*p)[:n]
}

func (sc *scratch) getBool(n int) []bool {
	if sc == nil {
		return make([]bool, n)
	}
	p := boolPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	sc.bools = append(sc.bools, p)
	return (*p)[:n]
}

// release returns every slice handed out by this scratch to the pools. The
// caller must not retain any value produced during the evaluation.
func (sc *scratch) release() {
	if sc == nil {
		return
	}
	for _, p := range sc.f64s {
		f64Pool.Put(p)
	}
	for _, p := range sc.bools {
		boolPool.Put(p)
	}
	sc.f64s, sc.bools = sc.f64s[:0], sc.bools[:0]
}

// value is the result of evaluating an expression over a batch of rows:
// exactly one of the vectors is non-nil, or the value is a scalar constant
// broadcast over the batch.
type value struct {
	nums   []float64
	strs   []string
	bools  []bool
	scalar bool
	numS   float64
	strS   string
	isStr  bool
}

func (v value) numAt(i int) float64 {
	if v.scalar {
		return v.numS
	}
	return v.nums[i]
}

func (v value) strAt(i int) string {
	if v.scalar {
		return v.strS
	}
	return v.strs[i]
}

// evalExpr evaluates e over the n rows of tbl, using sel as a selection
// vector when non-nil (row i of the batch is tbl row sel[i]). sc, when
// non-nil, supplies pooled scratch for the transient vectors.
func evalExpr(e sql.Expr, tbl *table.Table, sel []int, n int, sc *scratch) (value, error) {
	switch ex := e.(type) {
	case *sql.Literal:
		if ex.IsStr {
			return value{scalar: true, strS: ex.Str, isStr: true}, nil
		}
		return value{scalar: true, numS: ex.Num}, nil

	case *sql.ColumnRef:
		col := tbl.ColumnByName(ex.Name)
		if col == nil {
			return value{}, fmt.Errorf("exec: unknown column %q", ex.Name)
		}
		switch c := col.(type) {
		case table.Float64Col:
			return value{nums: gatherF64(c, sel, n, sc)}, nil
		case table.Int64Col:
			return value{nums: gatherI64(c, sel, n, sc)}, nil
		case table.StringCol:
			out := make([]string, n)
			for i := 0; i < n; i++ {
				out[i] = c[rowIdx(sel, i)]
			}
			return value{strs: out, isStr: true}, nil
		default:
			return value{}, fmt.Errorf("exec: unsupported column type for %q", ex.Name)
		}

	case *sql.Unary:
		inner, err := evalExpr(ex.E, tbl, sel, n, sc)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case "-":
			if inner.isStr {
				return value{}, fmt.Errorf("exec: cannot negate a string")
			}
			if inner.scalar {
				return value{scalar: true, numS: -inner.numS}, nil
			}
			out := sc.getF64(n)
			for i := range out {
				out[i] = -inner.nums[i]
			}
			return value{nums: out}, nil
		case "NOT":
			if inner.bools == nil {
				return value{}, fmt.Errorf("exec: NOT applied to non-boolean")
			}
			out := sc.getBool(n)
			for i := range out {
				out[i] = !inner.bools[i]
			}
			return value{bools: out}, nil
		default:
			return value{}, fmt.Errorf("exec: unknown unary operator %q", ex.Op)
		}

	case *sql.Binary:
		return evalBinary(ex, tbl, sel, n, sc)

	case *sql.FuncCall:
		return value{}, fmt.Errorf("exec: nested aggregate %s in row expression", ex.Name)

	case *sql.Star:
		return value{}, fmt.Errorf("exec: * outside COUNT")

	default:
		return value{}, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func rowIdx(sel []int, i int) int {
	if sel == nil {
		return i
	}
	return sel[i]
}

// gatherF64 materializes a float64 column over the selection. With sel ==
// nil it returns the column's own storage — callers must treat the result
// as read-only, and it is never tracked by the scratch.
func gatherF64(c table.Float64Col, sel []int, n int, sc *scratch) []float64 {
	if sel == nil {
		return c[:n]
	}
	out := sc.getF64(n)
	for i, j := range sel {
		out[i] = c[j]
	}
	return out
}

// gatherI64 widens an int64 column to float64 over the selection, with a
// branch-free sel == nil fast path mirroring gatherF64.
func gatherI64(c table.Int64Col, sel []int, n int, sc *scratch) []float64 {
	out := sc.getF64(n)
	if sel == nil {
		for i, v := range c[:n] {
			out[i] = float64(v)
		}
		return out
	}
	for i, j := range sel {
		out[i] = float64(c[j])
	}
	return out
}

func evalBinary(ex *sql.Binary, tbl *table.Table, sel []int, n int, sc *scratch) (value, error) {
	l, err := evalExpr(ex.L, tbl, sel, n, sc)
	if err != nil {
		return value{}, err
	}
	r, err := evalExpr(ex.R, tbl, sel, n, sc)
	if err != nil {
		return value{}, err
	}
	switch ex.Op {
	case "AND", "OR":
		if l.bools == nil || r.bools == nil {
			return value{}, fmt.Errorf("exec: %s applied to non-boolean operands", ex.Op)
		}
		out := sc.getBool(n)
		if ex.Op == "AND" {
			for i := range out {
				out[i] = l.bools[i] && r.bools[i]
			}
		} else {
			for i := range out {
				out[i] = l.bools[i] || r.bools[i]
			}
		}
		return value{bools: out}, nil

	case "+", "-", "*", "/":
		if l.isStr || r.isStr || l.bools != nil || r.bools != nil {
			return value{}, fmt.Errorf("exec: arithmetic %q on non-numeric operands", ex.Op)
		}
		if l.scalar && r.scalar {
			return value{scalar: true, numS: applyArith(ex.Op, l.numS, r.numS)}, nil
		}
		out := sc.getF64(n)
		for i := range out {
			out[i] = applyArith(ex.Op, l.numAt(i), r.numAt(i))
		}
		return value{nums: out}, nil

	case "=", "!=", "<", "<=", ">", ">=":
		out := sc.getBool(n)
		switch {
		case l.isStr && r.isStr:
			for i := range out {
				out[i] = applyStrCmp(ex.Op, l.strAt(i), r.strAt(i))
			}
		case !l.isStr && !r.isStr && l.bools == nil && r.bools == nil:
			for i := range out {
				out[i] = applyNumCmp(ex.Op, l.numAt(i), r.numAt(i))
			}
		default:
			return value{}, fmt.Errorf("exec: comparison %q between mismatched types", ex.Op)
		}
		return value{bools: out}, nil

	default:
		return value{}, fmt.Errorf("exec: unknown operator %q", ex.Op)
	}
}

func applyArith(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	default: // "/"
		return a / b
	}
}

func applyNumCmp(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default: // ">="
		return a >= b
	}
}

func applyStrCmp(op string, a, b string) bool {
	c := strings.Compare(a, b)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// EvalNumeric evaluates a numeric row expression over the selected rows of
// tbl, returning one float64 per selected row. sel == nil means all rows.
// Results are retained by aggregation, so no scratch pooling is used here.
func EvalNumeric(e sql.Expr, tbl *table.Table, sel []int) ([]float64, error) {
	n := tbl.NumRows()
	if sel != nil {
		n = len(sel)
	}
	v, err := evalExpr(e, tbl, sel, n, nil)
	if err != nil {
		return nil, err
	}
	if v.isStr || v.bools != nil {
		return nil, fmt.Errorf("exec: expression %s is not numeric", e)
	}
	if v.scalar {
		out := make([]float64, n)
		for i := range out {
			out[i] = v.numS
		}
		return out, nil
	}
	return v.nums, nil
}

// EvalPredicate evaluates a boolean predicate over all rows of tbl and
// returns the selection vector of matching row indices. Every intermediate
// vector is pooled: only the freshly built selection escapes.
func EvalPredicate(e sql.Expr, tbl *table.Table) ([]int, error) {
	n := tbl.NumRows()
	sc := &scratch{}
	defer sc.release()
	v, err := evalExpr(e, tbl, nil, n, sc)
	if err != nil {
		return nil, err
	}
	if v.bools == nil {
		return nil, fmt.Errorf("exec: WHERE expression %s is not boolean", e)
	}
	sel := make([]int, 0, n/2)
	for i, keep := range v.bools {
		if keep {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

// evalPredicateSkipping is EvalPredicate with zone-map pruning: blocks
// marked in skip (indexed by absolute block number, i.e. (absOffset+row) /
// table.ZoneBlockRows) are omitted from evaluation entirely — their rows
// provably cannot match. absOffset is the partition's starting row in the
// base table. Returned indices are partition-relative, matching
// EvalPredicate. A nil skip degrades to the single-pass path.
func evalPredicateSkipping(e sql.Expr, tbl *table.Table, absOffset int, skip []bool) ([]int, error) {
	if skip == nil {
		return EvalPredicate(e, tbl)
	}
	n := tbl.NumRows()
	sel := make([]int, 0, n/2)
	sc := &scratch{}
	defer sc.release()
	// Walk the partition in runs aligned to the base table's zone blocks.
	// The first run may be short when the partition starts mid-block.
	for row := 0; row < n; {
		abs := absOffset + row
		block := abs / table.ZoneBlockRows
		end := (block+1)*table.ZoneBlockRows - absOffset
		if end > n {
			end = n
		}
		if block < len(skip) && skip[block] {
			row = end
			continue
		}
		view := tbl.Slice(row, end)
		v, err := evalExpr(e, view, nil, end-row, sc)
		if err != nil {
			return nil, err
		}
		if v.bools == nil {
			return nil, fmt.Errorf("exec: WHERE expression %s is not boolean", e)
		}
		for i, keep := range v.bools {
			if keep {
				sel = append(sel, row+i)
			}
		}
		sc.release()
		row = end
	}
	return sel, nil
}
