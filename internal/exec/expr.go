// Package exec physically executes logical plans over columnar tables: it
// evaluates filter predicates and projection expressions vectorized over
// column slices, runs scans in parallel over table partitions, applies
// Poissonized resampling weights, computes plain and weighted aggregates,
// and drives the bootstrap and diagnostic operators. It also meters the
// work performed (scans, rows, weight draws, subqueries) so the cluster
// cost model can translate a plan's execution into simulated wall-clock
// time at production scale.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/table"
)

// value is the result of evaluating an expression over a batch of rows:
// exactly one of the vectors is non-nil, or the value is a scalar constant
// broadcast over the batch.
type value struct {
	nums   []float64
	strs   []string
	bools  []bool
	scalar bool
	numS   float64
	strS   string
	isStr  bool
}

func (v value) numAt(i int) float64 {
	if v.scalar {
		return v.numS
	}
	return v.nums[i]
}

func (v value) strAt(i int) string {
	if v.scalar {
		return v.strS
	}
	return v.strs[i]
}

// evalExpr evaluates e over the n rows of tbl, using sel as a selection
// vector when non-nil (row i of the batch is tbl row sel[i]).
func evalExpr(e sql.Expr, tbl *table.Table, sel []int, n int) (value, error) {
	switch ex := e.(type) {
	case *sql.Literal:
		if ex.IsStr {
			return value{scalar: true, strS: ex.Str, isStr: true}, nil
		}
		return value{scalar: true, numS: ex.Num}, nil

	case *sql.ColumnRef:
		col := tbl.ColumnByName(ex.Name)
		if col == nil {
			return value{}, fmt.Errorf("exec: unknown column %q", ex.Name)
		}
		switch c := col.(type) {
		case table.Float64Col:
			return value{nums: gatherF64(c, sel, n)}, nil
		case table.Int64Col:
			out := make([]float64, n)
			for i := 0; i < n; i++ {
				out[i] = float64(c[rowIdx(sel, i)])
			}
			return value{nums: out}, nil
		case table.StringCol:
			out := make([]string, n)
			for i := 0; i < n; i++ {
				out[i] = c[rowIdx(sel, i)]
			}
			return value{strs: out, isStr: true}, nil
		default:
			return value{}, fmt.Errorf("exec: unsupported column type for %q", ex.Name)
		}

	case *sql.Unary:
		inner, err := evalExpr(ex.E, tbl, sel, n)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case "-":
			if inner.isStr {
				return value{}, fmt.Errorf("exec: cannot negate a string")
			}
			if inner.scalar {
				return value{scalar: true, numS: -inner.numS}, nil
			}
			out := make([]float64, n)
			for i := range out {
				out[i] = -inner.nums[i]
			}
			return value{nums: out}, nil
		case "NOT":
			if inner.bools == nil {
				return value{}, fmt.Errorf("exec: NOT applied to non-boolean")
			}
			out := make([]bool, n)
			for i := range out {
				out[i] = !inner.bools[i]
			}
			return value{bools: out}, nil
		default:
			return value{}, fmt.Errorf("exec: unknown unary operator %q", ex.Op)
		}

	case *sql.Binary:
		return evalBinary(ex, tbl, sel, n)

	case *sql.FuncCall:
		return value{}, fmt.Errorf("exec: nested aggregate %s in row expression", ex.Name)

	case *sql.Star:
		return value{}, fmt.Errorf("exec: * outside COUNT")

	default:
		return value{}, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func rowIdx(sel []int, i int) int {
	if sel == nil {
		return i
	}
	return sel[i]
}

func gatherF64(c table.Float64Col, sel []int, n int) []float64 {
	if sel == nil {
		return c[:n]
	}
	out := make([]float64, n)
	for i, j := range sel {
		out[i] = c[j]
	}
	return out
}

func evalBinary(ex *sql.Binary, tbl *table.Table, sel []int, n int) (value, error) {
	l, err := evalExpr(ex.L, tbl, sel, n)
	if err != nil {
		return value{}, err
	}
	r, err := evalExpr(ex.R, tbl, sel, n)
	if err != nil {
		return value{}, err
	}
	switch ex.Op {
	case "AND", "OR":
		if l.bools == nil || r.bools == nil {
			return value{}, fmt.Errorf("exec: %s applied to non-boolean operands", ex.Op)
		}
		out := make([]bool, n)
		if ex.Op == "AND" {
			for i := range out {
				out[i] = l.bools[i] && r.bools[i]
			}
		} else {
			for i := range out {
				out[i] = l.bools[i] || r.bools[i]
			}
		}
		return value{bools: out}, nil

	case "+", "-", "*", "/":
		if l.isStr || r.isStr || l.bools != nil || r.bools != nil {
			return value{}, fmt.Errorf("exec: arithmetic %q on non-numeric operands", ex.Op)
		}
		if l.scalar && r.scalar {
			return value{scalar: true, numS: applyArith(ex.Op, l.numS, r.numS)}, nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = applyArith(ex.Op, l.numAt(i), r.numAt(i))
		}
		return value{nums: out}, nil

	case "=", "!=", "<", "<=", ">", ">=":
		out := make([]bool, n)
		switch {
		case l.isStr && r.isStr:
			for i := range out {
				out[i] = applyStrCmp(ex.Op, l.strAt(i), r.strAt(i))
			}
		case !l.isStr && !r.isStr && l.bools == nil && r.bools == nil:
			for i := range out {
				out[i] = applyNumCmp(ex.Op, l.numAt(i), r.numAt(i))
			}
		default:
			return value{}, fmt.Errorf("exec: comparison %q between mismatched types", ex.Op)
		}
		return value{bools: out}, nil

	default:
		return value{}, fmt.Errorf("exec: unknown operator %q", ex.Op)
	}
}

func applyArith(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	default: // "/"
		return a / b
	}
}

func applyNumCmp(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default: // ">="
		return a >= b
	}
}

func applyStrCmp(op string, a, b string) bool {
	c := strings.Compare(a, b)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// EvalNumeric evaluates a numeric row expression over the selected rows of
// tbl, returning one float64 per selected row. sel == nil means all rows.
func EvalNumeric(e sql.Expr, tbl *table.Table, sel []int) ([]float64, error) {
	n := tbl.NumRows()
	if sel != nil {
		n = len(sel)
	}
	v, err := evalExpr(e, tbl, sel, n)
	if err != nil {
		return nil, err
	}
	if v.isStr || v.bools != nil {
		return nil, fmt.Errorf("exec: expression %s is not numeric", e)
	}
	if v.scalar {
		out := make([]float64, n)
		for i := range out {
			out[i] = v.numS
		}
		return out, nil
	}
	return v.nums, nil
}

// EvalPredicate evaluates a boolean predicate over all rows of tbl and
// returns the selection vector of matching row indices.
func EvalPredicate(e sql.Expr, tbl *table.Table) ([]int, error) {
	n := tbl.NumRows()
	v, err := evalExpr(e, tbl, nil, n)
	if err != nil {
		return nil, err
	}
	if v.bools == nil {
		return nil, fmt.Errorf("exec: WHERE expression %s is not boolean", e)
	}
	sel := make([]int, 0, n/2)
	for i, keep := range v.bools {
		if keep {
			sel = append(sel, i)
		}
	}
	return sel, nil
}
