// Package exec physically executes logical plans over columnar tables: it
// evaluates filter predicates and projection expressions vectorized over
// column slices, runs scans in parallel over table partitions, applies
// Poissonized resampling weights, computes plain and weighted aggregates,
// and drives the bootstrap and diagnostic operators. It also meters the
// work performed (scans, rows, weight draws, subqueries) so the cluster
// cost model can translate a plan's execution into simulated wall-clock
// time at production scale.
package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/sql"
	"repro/internal/table"
)

// Scratch pooling: predicate evaluation allocates a handful of transient
// vectors (gathered columns, arithmetic intermediates, boolean masks) per
// partition per query, which at serving rates dominates the allocator. A
// scratch tracks every pooled slice handed out during one evaluation so
// the caller can return them all at once. Only EvalPredicate uses a
// scratch: its intermediates are provably dead once the selection vector
// (freshly allocated, never pooled) is built. EvalNumeric passes nil —
// its result vectors are retained by aggregation — and a nil scratch
// degrades every get to a plain make.
//
// The pools hold *[]T rather than []T so Put doesn't allocate (staticcheck
// SA6002).
var (
	f64Pool = sync.Pool{New: func() any {
		s := make([]float64, 0, table.ZoneBlockRows)
		return &s
	}}
	boolPool = sync.Pool{New: func() any {
		s := make([]bool, 0, table.ZoneBlockRows)
		return &s
	}}
)

// Pool accounting: every pooled get and put is counted so tests can pin
// that scratch discipline holds on every exit branch — errors, context
// cancellation and block-cache hits included (a cache hit skips the
// decode but its gather output still comes from, and returns to, the
// pool).
var (
	poolGets atomic.Int64
	poolPuts atomic.Int64
)

// PoolOutstanding reports pooled scratch slices currently checked out
// (gets minus puts). Between queries — once Run/RunShared has returned —
// the value must be unchanged from before the query; the leak regression
// test pins this across success, error, cancellation and cache-hit
// paths.
func PoolOutstanding() int64 { return poolGets.Load() - poolPuts.Load() }

// decodeMeter accumulates lazy-decode work (blocks decoded, wall ns spent
// decoding) during expression evaluation; it flows into Counters so the
// storage layer's cost is visible per query, per stage and on /metrics.
// With a block cache attached, hits/hitBytes count blocks (and copied
// bytes) served from the cache instead of decoding — those blocks are NOT
// charged to blocks, so BlocksDecoded keeps meaning "codec work done".
type decodeMeter struct {
	blocks   int64
	nanos    int64
	hits     int64
	hitBytes int64
}

type scratch struct {
	f64s  []*[]float64
	bools []*[]bool
	// noPool makes every get a fresh allocation that release ignores — for
	// projection paths whose outputs are retained by aggregation but that
	// still want decode metering through m.
	noPool bool
	// m, when non-nil, receives decode work performed during evaluation.
	m *decodeMeter
	// blocks, when non-nil, is the cross-query decoded-block cache; reader
	// gathers consult it before decoding.
	blocks *cache.BlockCache
}

func (sc *scratch) meter() *decodeMeter {
	if sc == nil {
		return nil
	}
	return sc.m
}

func (sc *scratch) cache() *cache.BlockCache {
	if sc == nil {
		return nil
	}
	return sc.blocks
}

func (sc *scratch) getF64(n int) []float64 {
	if sc == nil || sc.noPool {
		return make([]float64, n)
	}
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	sc.f64s = append(sc.f64s, p)
	poolGets.Add(1)
	return (*p)[:n]
}

func (sc *scratch) getBool(n int) []bool {
	if sc == nil || sc.noPool {
		return make([]bool, n)
	}
	p := boolPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	sc.bools = append(sc.bools, p)
	poolGets.Add(1)
	return (*p)[:n]
}

// release returns every slice handed out by this scratch to the pools. The
// caller must not retain any value produced during the evaluation. It is
// safe (and a no-op) on nil and noPool scratches, and callers run it via
// defer so every return branch — including mid-gather errors and context
// cancellation — hands its buffers back to the pool instead of leaking
// them to the GC.
func (sc *scratch) release() {
	if sc == nil {
		return
	}
	for _, p := range sc.f64s {
		f64Pool.Put(p)
	}
	for _, p := range sc.bools {
		boolPool.Put(p)
	}
	poolPuts.Add(int64(len(sc.f64s) + len(sc.bools)))
	sc.f64s, sc.bools = sc.f64s[:0], sc.bools[:0]
}

// value is the result of evaluating an expression over a batch of rows:
// exactly one of the vectors is non-nil, or the value is a scalar constant
// broadcast over the batch.
type value struct {
	nums   []float64
	strs   []string
	bools  []bool
	scalar bool
	numS   float64
	strS   string
	isStr  bool
}

func (v value) numAt(i int) float64 {
	if v.scalar {
		return v.numS
	}
	return v.nums[i]
}

func (v value) strAt(i int) string {
	if v.scalar {
		return v.strS
	}
	return v.strs[i]
}

// evalExpr evaluates e over the n rows of tbl, using sel as a selection
// vector when non-nil (row i of the batch is tbl row sel[i]). sc, when
// non-nil, supplies pooled scratch for the transient vectors.
func evalExpr(e sql.Expr, tbl *table.Table, sel []int, n int, sc *scratch) (value, error) {
	switch ex := e.(type) {
	case *sql.Literal:
		if ex.IsStr {
			return value{scalar: true, strS: ex.Str, isStr: true}, nil
		}
		return value{scalar: true, numS: ex.Num}, nil

	case *sql.ColumnRef:
		col := tbl.ColumnByName(ex.Name)
		if col == nil {
			return value{}, fmt.Errorf("exec: unknown column %q", ex.Name)
		}
		switch c := col.(type) {
		case table.Float64Col:
			return value{nums: gatherF64(c, sel, n, sc)}, nil
		case table.Int64Col:
			return value{nums: gatherI64(c, sel, n, sc)}, nil
		case table.StringCol:
			out := make([]string, n)
			for i := 0; i < n; i++ {
				out[i] = c[rowIdx(sel, i)]
			}
			return value{strs: out, isStr: true}, nil
		default:
			// Block-backed columns: decode after admission, through the
			// reader interfaces, metering the decode work.
			if r, ok := col.(table.F64Reader); ok {
				return value{nums: gatherReaderF64(r, sel, n, sc)}, nil
			}
			if r, ok := col.(table.StrReader); ok {
				return value{strs: gatherReaderStr(r, sel, n, sc), isStr: true}, nil
			}
			return value{}, fmt.Errorf("exec: unsupported column type for %q", ex.Name)
		}

	case *sql.Unary:
		inner, err := evalExpr(ex.E, tbl, sel, n, sc)
		if err != nil {
			return value{}, err
		}
		switch ex.Op {
		case "-":
			if inner.isStr {
				return value{}, fmt.Errorf("exec: cannot negate a string")
			}
			if inner.scalar {
				return value{scalar: true, numS: -inner.numS}, nil
			}
			out := sc.getF64(n)
			for i := range out {
				out[i] = -inner.nums[i]
			}
			return value{nums: out}, nil
		case "NOT":
			if inner.bools == nil {
				return value{}, fmt.Errorf("exec: NOT applied to non-boolean")
			}
			out := sc.getBool(n)
			for i := range out {
				out[i] = !inner.bools[i]
			}
			return value{bools: out}, nil
		default:
			return value{}, fmt.Errorf("exec: unknown unary operator %q", ex.Op)
		}

	case *sql.Binary:
		return evalBinary(ex, tbl, sel, n, sc)

	case *sql.FuncCall:
		return value{}, fmt.Errorf("exec: nested aggregate %s in row expression", ex.Name)

	case *sql.Star:
		return value{}, fmt.Errorf("exec: * outside COUNT")

	default:
		return value{}, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func rowIdx(sel []int, i int) int {
	if sel == nil {
		return i
	}
	return sel[i]
}

// gatherF64 materializes a float64 column over the selection. With sel ==
// nil it returns the column's own storage — callers must treat the result
// as read-only, and it is never tracked by the scratch.
func gatherF64(c table.Float64Col, sel []int, n int, sc *scratch) []float64 {
	if sel == nil {
		return c[:n]
	}
	out := sc.getF64(n)
	for i, j := range sel {
		out[i] = c[j]
	}
	return out
}

// gatherI64 widens an int64 column to float64 over the selection, with a
// branch-free sel == nil fast path mirroring gatherF64.
func gatherI64(c table.Int64Col, sel []int, n int, sc *scratch) []float64 {
	out := sc.getF64(n)
	if sel == nil {
		for i, v := range c[:n] {
			out[i] = float64(v)
		}
		return out
	}
	for i, j := range sel {
		out[i] = float64(c[j])
	}
	return out
}

// gatherReaderF64 materializes a lazily decoded numeric column over the
// selection. sel == nil decodes rows [0, n) straight into scratch; a
// selection decodes one block at a time into a pooled buffer, refilling
// whenever the next selected row leaves the current block (selections are
// produced in ascending row order, so each touched block decodes once).
// All buffers come from sc, so the caller's deferred release reclaims them
// on every return path, error and cancellation included.
func gatherReaderF64(r table.F64Reader, sel []int, n int, sc *scratch) []float64 {
	out := sc.getF64(n)
	m := sc.meter()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var blocks, hits, hitBytes int64
	base, boff := table.BlockBase(r)
	br, cacheable := base.(table.F64Reader)
	cc := sc.cache()
	switch {
	case cc != nil && cacheable && sel == nil:
		// Cross-query cache, full-range read: walk the base column's
		// blocks, copying each block's cached decode (filling on a miss).
		// A hit replaces the codec decode with a memcpy; the decoded values
		// are bit-identical either way, since block decodes are
		// deterministic.
		baseLen := base.Len()
		for covered := 0; covered < n; {
			abs := boff + covered
			b := abs / table.BlockRows
			bStart := b * table.BlockRows
			bLen := baseLen - bStart
			if bLen > table.BlockRows {
				bLen = table.BlockRows
			}
			vals, hit := cc.GetF64(base, b, bLen, func(dst []float64) { br.ReadF64(dst, bStart) })
			k := copy(out[covered:], vals[abs-bStart:])
			covered += k
			if hit {
				hits++
				hitBytes += int64(k) * 8
			} else {
				blocks++
			}
		}
	case cc != nil && cacheable && boff%table.BlockRows == 0:
		// Selection over a block-aligned view (partitions and the skipping
		// block walk are both zone-aligned): selections ascend, so each
		// touched base block is fetched from the cache exactly once.
		baseLen := base.Len()
		rows := r.Len()
		var vals []float64
		lo, hi := 0, 0 // empty window
		for i, j := range sel {
			if j < lo || j >= hi {
				lo = j - j%table.BlockRows
				hi = lo + table.BlockRows
				if hi > rows {
					hi = rows
				}
				b := (boff + lo) / table.BlockRows
				bStart := b * table.BlockRows
				bLen := baseLen - bStart
				if bLen > table.BlockRows {
					bLen = table.BlockRows
				}
				var hit bool
				vals, hit = cc.GetF64(base, b, bLen, func(dst []float64) { br.ReadF64(dst, bStart) })
				if hit {
					hits++
					hitBytes += int64(bLen) * 8
				} else {
					blocks++
				}
			}
			out[i] = vals[j-lo]
		}
	case sel == nil:
		r.ReadF64(out, 0)
		blocks = int64((n + table.ZoneBlockRows - 1) / table.ZoneBlockRows)
	default:
		buf := sc.getF64(table.ZoneBlockRows)
		rows := r.Len()
		lo, hi := 0, 0 // empty window
		for i, j := range sel {
			if j < lo || j >= hi {
				lo = j - j%table.ZoneBlockRows
				hi = lo + table.ZoneBlockRows
				if hi > rows {
					hi = rows
				}
				r.ReadF64(buf[:hi-lo], lo)
				blocks++
			}
			out[i] = buf[j-lo]
		}
	}
	if m != nil {
		m.blocks += blocks
		m.hits += hits
		m.hitBytes += hitBytes
		m.nanos += time.Since(start).Nanoseconds()
	}
	return out
}

// gatherReaderStr is gatherReaderF64 for string columns. String outputs are
// retained by comparison results only transiently, but string slices are
// not pooled; allocation here matches the raw StringCol path.
func gatherReaderStr(r table.StrReader, sel []int, n int, sc *scratch) []string {
	out := make([]string, n)
	m := sc.meter()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var blocks, hits, hitBytes int64
	base, boff := table.BlockBase(r)
	br, cacheable := base.(table.StrReader)
	cc := sc.cache()
	switch {
	case cc != nil && cacheable && sel == nil:
		baseLen := base.Len()
		for covered := 0; covered < n; {
			abs := boff + covered
			b := abs / table.BlockRows
			bStart := b * table.BlockRows
			bLen := baseLen - bStart
			if bLen > table.BlockRows {
				bLen = table.BlockRows
			}
			vals, hit := cc.GetStr(base, b, bLen, func(dst []string) { br.ReadStr(dst, bStart) })
			k := copy(out[covered:], vals[abs-bStart:])
			covered += k
			if hit {
				hits++
				hitBytes += int64(k) * 16 // string headers; payload bytes are shared
			} else {
				blocks++
			}
		}
	case cc != nil && cacheable && boff%table.BlockRows == 0:
		baseLen := base.Len()
		rows := r.Len()
		var vals []string
		lo, hi := 0, 0
		for i, j := range sel {
			if j < lo || j >= hi {
				lo = j - j%table.BlockRows
				hi = lo + table.BlockRows
				if hi > rows {
					hi = rows
				}
				b := (boff + lo) / table.BlockRows
				bStart := b * table.BlockRows
				bLen := baseLen - bStart
				if bLen > table.BlockRows {
					bLen = table.BlockRows
				}
				var hit bool
				vals, hit = cc.GetStr(base, b, bLen, func(dst []string) { br.ReadStr(dst, bStart) })
				if hit {
					hits++
					hitBytes += int64(bLen) * 16
				} else {
					blocks++
				}
			}
			out[i] = vals[j-lo]
		}
	case sel == nil:
		r.ReadStr(out, 0)
		blocks = int64((n + table.ZoneBlockRows - 1) / table.ZoneBlockRows)
	default:
		buf := make([]string, table.ZoneBlockRows)
		rows := r.Len()
		lo, hi := 0, 0
		for i, j := range sel {
			if j < lo || j >= hi {
				lo = j - j%table.ZoneBlockRows
				hi = lo + table.ZoneBlockRows
				if hi > rows {
					hi = rows
				}
				r.ReadStr(buf[:hi-lo], lo)
				blocks++
			}
			out[i] = buf[j-lo]
		}
	}
	if m != nil {
		m.blocks += blocks
		m.hits += hits
		m.hitBytes += hitBytes
		m.nanos += time.Since(start).Nanoseconds()
	}
	return out
}

func evalBinary(ex *sql.Binary, tbl *table.Table, sel []int, n int, sc *scratch) (value, error) {
	l, err := evalExpr(ex.L, tbl, sel, n, sc)
	if err != nil {
		return value{}, err
	}
	r, err := evalExpr(ex.R, tbl, sel, n, sc)
	if err != nil {
		return value{}, err
	}
	switch ex.Op {
	case "AND", "OR":
		if l.bools == nil || r.bools == nil {
			return value{}, fmt.Errorf("exec: %s applied to non-boolean operands", ex.Op)
		}
		out := sc.getBool(n)
		if ex.Op == "AND" {
			for i := range out {
				out[i] = l.bools[i] && r.bools[i]
			}
		} else {
			for i := range out {
				out[i] = l.bools[i] || r.bools[i]
			}
		}
		return value{bools: out}, nil

	case "+", "-", "*", "/":
		if l.isStr || r.isStr || l.bools != nil || r.bools != nil {
			return value{}, fmt.Errorf("exec: arithmetic %q on non-numeric operands", ex.Op)
		}
		if l.scalar && r.scalar {
			return value{scalar: true, numS: applyArith(ex.Op, l.numS, r.numS)}, nil
		}
		out := sc.getF64(n)
		for i := range out {
			out[i] = applyArith(ex.Op, l.numAt(i), r.numAt(i))
		}
		return value{nums: out}, nil

	case "=", "!=", "<", "<=", ">", ">=":
		out := sc.getBool(n)
		switch {
		case l.isStr && r.isStr:
			for i := range out {
				out[i] = applyStrCmp(ex.Op, l.strAt(i), r.strAt(i))
			}
		case !l.isStr && !r.isStr && l.bools == nil && r.bools == nil:
			for i := range out {
				out[i] = applyNumCmp(ex.Op, l.numAt(i), r.numAt(i))
			}
		default:
			return value{}, fmt.Errorf("exec: comparison %q between mismatched types", ex.Op)
		}
		return value{bools: out}, nil

	default:
		return value{}, fmt.Errorf("exec: unknown operator %q", ex.Op)
	}
}

func applyArith(op string, a, b float64) float64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	default: // "/"
		return a / b
	}
}

func applyNumCmp(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default: // ">="
		return a >= b
	}
}

func applyStrCmp(op string, a, b string) bool {
	c := strings.Compare(a, b)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// EvalNumeric evaluates a numeric row expression over the selected rows of
// tbl, returning one float64 per selected row. sel == nil means all rows.
// Results are retained by aggregation, so no scratch pooling is used here.
func EvalNumeric(e sql.Expr, tbl *table.Table, sel []int) ([]float64, error) {
	return evalNumericMetered(e, tbl, sel, nil, nil)
}

// evalNumericMetered is EvalNumeric with decode metering: allocations stay
// fresh (outputs are retained), but block decodes performed on lazy columns
// are charged to m, and cc (when non-nil) serves decoded blocks across
// queries.
func evalNumericMetered(e sql.Expr, tbl *table.Table, sel []int, m *decodeMeter, cc *cache.BlockCache) ([]float64, error) {
	n := tbl.NumRows()
	if sel != nil {
		n = len(sel)
	}
	var sc *scratch
	if m != nil || cc != nil {
		sc = &scratch{noPool: true, m: m, blocks: cc}
	}
	v, err := evalExpr(e, tbl, sel, n, sc)
	if err != nil {
		return nil, err
	}
	if v.isStr || v.bools != nil {
		return nil, fmt.Errorf("exec: expression %s is not numeric", e)
	}
	if v.scalar {
		out := make([]float64, n)
		for i := range out {
			out[i] = v.numS
		}
		return out, nil
	}
	return v.nums, nil
}

// EvalPredicate evaluates a boolean predicate over all rows of tbl and
// returns the selection vector of matching row indices. Every intermediate
// vector is pooled: only the freshly built selection escapes.
func EvalPredicate(e sql.Expr, tbl *table.Table) ([]int, error) {
	n := tbl.NumRows()
	sc := &scratch{}
	defer sc.release()
	v, err := evalExpr(e, tbl, nil, n, sc)
	if err != nil {
		return nil, err
	}
	if v.bools == nil {
		return nil, fmt.Errorf("exec: WHERE expression %s is not boolean", e)
	}
	sel := make([]int, 0, n/2)
	for i, keep := range v.bools {
		if keep {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

// evalPredicateSkipping is EvalPredicate with zone-map pruning and lazy
// decode: blocks marked in skip (indexed by absolute block number, i.e.
// (absOffset+row) / table.ZoneBlockRows) are omitted from evaluation
// entirely — their rows provably cannot match, so on block-backed tables
// they are never decoded (and on mmap stores never faulted in). absOffset
// is the partition's starting row in the base table. Returned indices are
// partition-relative, matching EvalPredicate.
//
// The block walk also runs, skip list or not, whenever the table decodes
// lazily: evaluating one block at a time keeps decode output in pooled
// block-sized scratch instead of materializing whole partition columns.
// Only a nil skip over a raw table degrades to the single-pass path.
//
// Cancellation is checked between blocks (every ctxCheckBlocks); the
// deferred release hands all pooled buffers back on that return path too.
// selHint, when in [0,1], is a remembered selectivity for this predicate
// shape from the predicate memo; it pre-sizes the selection vector so a
// repeated shape neither over-allocates (a 1% filter reserving n/2) nor
// regrows repeatedly (a 90% filter starting at n/2). Capacity only —
// never affects which rows match.
func evalPredicateSkipping(ctx context.Context, e sql.Expr, tbl *table.Table, absOffset int, skip []bool, m *decodeMeter, cc *cache.BlockCache, selHint float64) ([]int, error) {
	if skip == nil && !tbl.Lazy() {
		return EvalPredicate(e, tbl)
	}
	const ctxCheckBlocks = 64
	n := tbl.NumRows()
	selCap := n / 2
	if selHint >= 0 && selHint <= 1 {
		selCap = int(selHint*float64(n)) + 16
		if selCap > n {
			selCap = n
		}
	}
	sel := make([]int, 0, selCap)
	sc := &scratch{m: m, blocks: cc}
	defer sc.release()
	// Walk the partition in runs aligned to the base table's zone blocks.
	// The first run may be short when the partition starts mid-block.
	visited := 0
	for row := 0; row < n; {
		abs := absOffset + row
		block := abs / table.ZoneBlockRows
		end := (block+1)*table.ZoneBlockRows - absOffset
		if end > n {
			end = n
		}
		if block < len(skip) && skip[block] {
			row = end
			continue
		}
		if visited%ctxCheckBlocks == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		visited++
		view := tbl.Slice(row, end)
		v, err := evalExpr(e, view, nil, end-row, sc)
		if err != nil {
			return nil, err
		}
		if v.bools == nil {
			return nil, fmt.Errorf("exec: WHERE expression %s is not boolean", e)
		}
		for i, keep := range v.bools {
			if keep {
				sel = append(sel, row+i)
			}
		}
		sc.release()
		row = end
	}
	return sel, nil
}
