package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/table"
	"repro/internal/watchdog"
)

// bucketTable registers a Sessions table whose rows are assigned to
// `buckets` random disjoint buckets via column B; averaging one bucket per
// query gives approximately independent coverage trials.
func bucketTable(t *testing.T, cfg Config, n, buckets int) *Engine {
	t.Helper()
	src := rng.New(555)
	times := make(table.Float64Col, n)
	bs := make(table.StringCol, n)
	for i := 0; i < n; i++ {
		times[i] = 60 + 20*src.NormFloat64()
		bs[i] = fmt.Sprintf("b%d", src.Intn(buckets))
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "B", Type: table.String},
	}, times, bs)
	e := New(cfg)
	if err := e.RegisterTable("Sessions", tbl); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWatchdogFlagsMiscalibratedMax is the acceptance criterion for the
// dangerous direction: a deliberately miscalibrated estimator — bootstrap
// error bars on MAX over a heavy tail, the paper's Fig. 1 failure mode,
// with the per-query diagnostic and the fallback both disabled so nothing
// else catches it — must raise an undercoverage alert within one rolling
// window. Everything is deterministic under the fixed seed: the audit
// cadence is a counter, the sample is fixed, and exact re-execution
// consumes no randomness.
func TestWatchdogFlagsMiscalibratedMax(t *testing.T) {
	wd := watchdog.New(watchdog.Config{
		Window: 64, MinAudits: 8, AuditFraction: 1, Synchronous: true,
	})
	e := heavyTailTable(t, Config{
		Seed: 21, BootstrapK: 40,
		SkipDiagnostics: true, DisableFallback: true,
		Watchdog: wd,
	}, 50000)
	if err := e.BuildSamples("T", 1000); err != nil {
		t.Fatal(err)
	}

	// Self-check the miscalibration premise: the sample's MAX undershoots
	// the population's, and the bootstrap interval cannot reach it.
	approx, err := e.Query("SELECT MAX(v) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.QueryExact("SELECT MAX(v) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if hi := approx.Groups[0].Aggs[0].ErrorBar.Hi(); hi >= exact.Groups[0].Aggs[0].Estimate {
		t.Fatalf("premise broken: MAX interval hi %g reaches truth %g — pick a different seed",
			hi, exact.Groups[0].Aggs[0].Estimate)
	}

	// Serve one window's worth of distinct MAX queries; every one is
	// audited, every interval misses the truth, so the alert must fire as
	// soon as MinAudits accrue — well within the 64-query window.
	for i := 0; i < 12; i++ {
		q := fmt.Sprintf("SELECT MAX(v) FROM T WHERE v > 0.%d", i)
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	alerts := wd.ActiveAlerts()
	var under *watchdog.Alert
	for i := range alerts {
		if alerts[i].Kind == watchdog.Undercoverage {
			under = &alerts[i]
		}
	}
	if under == nil {
		t.Fatalf("no undercoverage alert after a window of missed intervals; status: %+v",
			wd.Status())
	}
	if under.Window > 64 {
		t.Fatalf("alert needed %d audits, more than one rolling window", under.Window)
	}
	if under.Observed >= under.Lo {
		t.Fatalf("alert inconsistent: observed %v within band [%v,%v]",
			under.Observed, under.Lo, under.Hi)
	}
}

// TestWatchdogQuietOnCalibratedQueries is the false-positive acceptance
// criterion: 200+ distinct queries answered with well-calibrated CLT
// intervals, every one audited, must never trip an alert — the binomial
// tolerance band absorbs the sampling noise of ~95% empirical coverage.
//
// The workload matters: each query averages a different random disjoint
// bucket of the population, so the coverage trials are (approximately)
// independent Bernoulli draws. Filters that nest (WHERE x < c for rising
// c) would make the trials near-perfectly correlated and the binomial
// band meaningless.
func TestWatchdogQuietOnCalibratedQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("200 audited queries; skipped under -short")
	}
	wd := watchdog.New(watchdog.Config{
		Window: 200, MinAudits: 20, AuditFraction: 1, Synchronous: true,
	})
	// Diagnostics are skipped: their subsample ladder sees ~1/256 of each
	// subsample after the bucket filter and rejects on junk verdicts,
	// which would fall every query back to exact and leave no intervals
	// to audit. The subject here is interval calibration, not the
	// per-query diagnostic.
	e := bucketTable(t, Config{Seed: 22, SkipDiagnostics: true, Watchdog: wd}, 80000, 256)
	if err := e.BuildSamples("Sessions", 20000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 210; i++ {
		q := fmt.Sprintf("SELECT AVG(Time) FROM Sessions WHERE B = 'b%d'", i)
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if alerts := wd.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("calibrated estimator raised alerts: %+v", alerts)
	}
	if h := wd.History(); len(h) != 0 {
		t.Fatalf("calibrated estimator has alert history: %+v", h)
	}
	// The quiet verdict must rest on real audits, not an empty window.
	st := wd.Status()
	if len(st.Keys) == 0 {
		t.Fatal("watchdog observed no keys")
	}
	k := st.Keys[0]
	if k.CoverageWindow < 150 {
		t.Fatalf("only %d audited trials accrued, want >= 150", k.CoverageWindow)
	}
	if k.Coverage < k.CoverageLo || k.Coverage > k.CoverageHi {
		t.Fatalf("coverage %v outside band [%v,%v] yet no alert",
			k.Coverage, k.CoverageLo, k.CoverageHi)
	}
}

// TestTelemetryDoesNotPerturbAnswers extends PR 2's inertness invariant to
// the full observability stack: tracer + event log + watchdog with every
// query audited must leave answers bit-identical to a bare engine.
func TestTelemetryDoesNotPerturbAnswers(t *testing.T) {
	mk := func(full bool) *Engine {
		cfg := Config{Seed: 23, Workers: 3, BootstrapK: 30}
		if full {
			cfg.Obs = obs.NewTracer(obs.Options{})
			cfg.EventLog = obs.NewEventLog(io.Discard, obs.EventLogOptions{})
			cfg.Watchdog = watchdog.New(watchdog.Config{
				AuditFraction: 1, Synchronous: true,
				Metrics: cfg.Obs.Registry(),
			})
		}
		e, _ := buildSessions(t, cfg, 30000)
		if err := e.BuildSamples("Sessions", 8000); err != nil {
			t.Fatal(err)
		}
		return e
	}
	loaded, plain := mk(true), mk(false)
	for _, q := range obsTestQueries {
		a, err := loaded.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Groups) != len(b.Groups) {
			t.Fatalf("%s: group counts differ", q)
		}
		for gi := range a.Groups {
			for ai := range a.Groups[gi].Aggs {
				x, y := a.Groups[gi].Aggs[ai], b.Groups[gi].Aggs[ai]
				if x.Estimate != y.Estimate ||
					x.ErrorBar.HalfWidth != y.ErrorBar.HalfWidth ||
					x.DiagnosticOK != y.DiagnosticOK ||
					x.Technique != y.Technique {
					t.Fatalf("%s: full telemetry %+v != bare %+v", q, x, y)
				}
			}
		}
	}
}

// TestEventLogRecordsQueriesAndAudits asserts the one-record-per-query
// contract end to end: served queries, watchdog audits and failed parses
// all appear as parseable JSON lines with the promised fields.
func TestEventLogRecordsQueriesAndAudits(t *testing.T) {
	var buf bytes.Buffer
	wd := watchdog.New(watchdog.Config{AuditFraction: 1, Synchronous: true})
	e, _ := buildSessions(t, Config{
		Seed: 24, BootstrapK: 30,
		Obs:      obs.NewTracer(obs.Options{}),
		EventLog: obs.NewEventLog(&buf, obs.EventLogOptions{}),
		Watchdog: wd,
	}, 20000)
	if err := e.BuildSamples("Sessions", 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT AVG(Time) FROM Sessions"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryExact("SELECT COUNT(*) FROM Sessions"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT FROM nonsense"); err == nil {
		t.Fatal("parse error expected")
	}

	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable event line %q: %v", sc.Text(), err)
		}
		kind, _ := rec["kind"].(string)
		kinds = append(kinds, kind)
		if rec["sql"] == "" {
			t.Fatalf("event without sql: %v", rec)
		}
		switch kind {
		case "query":
			if _, ok := rec["outcome"].(string); !ok {
				t.Fatalf("query event without outcome: %v", rec)
			}
		case "audit":
		default:
			t.Fatalf("unexpected event kind %q", kind)
		}
	}
	joined := strings.Join(kinds, ",")
	// AVG query then its audit record, exact COUNT, failed parse.
	if got, want := joined, "query,audit,query,query"; got != want {
		t.Fatalf("event kinds = %s, want %s", got, want)
	}
	// Re-run to inspect one full query record's fields.
	buf.Reset()
	if _, err := e.Query("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'"); err != nil {
		t.Fatal(err)
	}
	// The query record comes first; its audit record follows.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"qid", "sql", "outcome", "total_ms", "sample_rows", "stages_ms", "aggs"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("query event missing %q: %v", key, rec)
		}
	}
	aggs := rec["aggs"].([]any)
	agg := aggs[0].(map[string]any)
	if agg["verdict"] != "accept" && agg["verdict"] != "reject" {
		t.Fatalf("agg verdict = %v", agg["verdict"])
	}
}
