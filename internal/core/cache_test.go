package core

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/table"
)

// cacheTestQueries exercises every decoded-block kind (float64 scans,
// string group keys and filters) plus grouped and filtered aggregates, so
// bit-identity over them covers the cache's full read surface.
var cacheTestQueries = []string{
	"SELECT AVG(Time) FROM Sessions",
	"SELECT COUNT(*), SUM(Time) FROM Sessions WHERE City = 'NYC'",
	"SELECT City, AVG(Time) FROM Sessions GROUP BY City",
	"SELECT PERCENTILE(Time, 0.9) FROM Sessions WHERE Time > 40",
}

// cacheAnswerBits flattens an answer's statistical content to raw bits:
// any cache-induced drift, however small, breaks equality.
func cacheAnswerBits(ans *Answer) []uint64 {
	var bits []uint64
	for _, g := range ans.Groups {
		for _, a := range g.Aggs {
			bits = append(bits,
				math.Float64bits(a.Estimate),
				math.Float64bits(a.ErrorBar.Lo()),
				math.Float64bits(a.ErrorBar.Hi()))
		}
	}
	return bits
}

func bitsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildCachedSessions builds a Sessions engine with samples; cacheBytes=0
// is the cache-off reference configuration.
func buildCachedSessions(t *testing.T, cfg Config, n, sampleRows int) *Engine {
	t.Helper()
	e, _ := buildSessions(t, cfg, n)
	if err := e.BuildSamples("Sessions", sampleRows); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCacheBitIdentityAcrossBackings pins the ISSUE's core acceptance
// criterion: with any budget, answers are bit-identical to cache-off
// across raw, compressed, and mmap-backed base tables, on both the solo
// Run path and RunSharedBatch, including repeat executions that are served
// from the block and answer caches.
func TestCacheBitIdentityAcrossBackings(t *testing.T) {
	const n, sampleRows = 30000, 4000
	backings := map[string]Config{
		"raw":        {Seed: 71},
		"compressed": {Seed: 71, Backing: table.BackingCompressed},
	}
	for name, base := range backings {
		base := base
		t.Run(name, func(t *testing.T) {
			base.SampleBacking = table.BackingCompressed
			off := buildCachedSessions(t, base, n, sampleRows)
			cfgOn := base
			cfgOn.CacheBytes = 8 << 20
			on := buildCachedSessions(t, cfgOn, n, sampleRows)

			for _, q := range cacheTestQueries {
				ref, err := off.Query(q)
				if err != nil {
					t.Fatalf("cache-off %q: %v", q, err)
				}
				for round := 0; round < 3; round++ {
					got, err := on.Query(q)
					if err != nil {
						t.Fatalf("cache-on %q round %d: %v", q, round, err)
					}
					if !bitsEqual(cacheAnswerBits(ref), cacheAnswerBits(got)) {
						t.Fatalf("%q round %d: cached answer diverged from cache-off", q, round)
					}
					if round > 0 && !got.Cached {
						t.Errorf("%q round %d: repeat not served from the answer cache", q, round)
					}
				}
			}

			// Shared-scan batches must match too, warm or cold.
			reqs := make([]BatchRequest, len(cacheTestQueries))
			for i, q := range cacheTestQueries {
				reqs[i] = BatchRequest{Query: q}
			}
			for round := 0; round < 2; round++ {
				offResp := off.RunSharedBatch(reqs)
				onResp := on.RunSharedBatch(reqs)
				for i := range reqs {
					if offResp[i].Err != nil || onResp[i].Err != nil {
						t.Fatalf("batch %q: %v / %v", reqs[i].Query, offResp[i].Err, onResp[i].Err)
					}
					if !bitsEqual(cacheAnswerBits(offResp[i].Ans), cacheAnswerBits(onResp[i].Ans)) {
						t.Fatalf("batch %q round %d diverged", reqs[i].Query, round)
					}
				}
			}

			st := on.CacheStatsSnapshot(0)
			if !st.Enabled {
				t.Fatal("cache-on engine reports caching disabled")
			}
			if st.Block.Hits+st.Answer.Hits == 0 {
				t.Error("repeat rounds produced no cache hits at all")
			}
		})
	}
}

// TestCacheBitIdentityMmapStore covers the third backing: a disk-backed
// (mmap) base table registered from table.OpenStore, with compressed
// samples on top, read warm and cold under a block budget.
func TestCacheBitIdentityMmapStore(t *testing.T) {
	const n, sampleRows = 20000, 3000
	build := func(cacheBytes int64) *Engine {
		t.Helper()
		eRaw, raw := buildSessions(t, Config{Seed: 72}, n)
		eRaw.Close()
		path := filepath.Join(t.TempDir(), "sessions.blk")
		if err := table.WriteStore(path, raw); err != nil {
			t.Fatal(err)
		}
		tbl, closer, err := table.OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closer.Close() })
		e := New(Config{Seed: 72, SampleBacking: table.BackingCompressed, CacheBytes: cacheBytes})
		if err := e.RegisterTable("Sessions", tbl); err != nil {
			t.Fatal(err)
		}
		if err := e.BuildSamples("Sessions", sampleRows); err != nil {
			t.Fatal(err)
		}
		return e
	}
	off := build(0)
	on := build(4 << 20)
	for _, q := range cacheTestQueries {
		ref, err := off.Query(q)
		if err != nil {
			t.Fatalf("cache-off %q: %v", q, err)
		}
		for round := 0; round < 2; round++ {
			got, err := on.Query(q)
			if err != nil {
				t.Fatalf("cache-on %q: %v", q, err)
			}
			if !bitsEqual(cacheAnswerBits(ref), cacheAnswerBits(got)) {
				t.Fatalf("%q round %d: mmap-backed cached answer diverged", q, round)
			}
		}
	}
}

// TestCacheDisabledByDefault pins CacheBytes=0 as a true off switch: no
// cache structures exist and the snapshot reports disabled.
func TestCacheDisabledByDefault(t *testing.T) {
	e := buildCachedSessions(t, Config{Seed: 73}, 10000, 2000)
	defer e.Close()
	if st := e.CacheStatsSnapshot(4); st.Enabled {
		t.Fatal("default engine reports caching enabled")
	}
	a1, err := e.Query(cacheTestQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Query(cacheTestQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cached || a2.Cached {
		t.Fatal("answers marked Cached with caching off")
	}
	if a1.Counters.CacheHits != 0 || a2.Counters.CacheBytes != 0 {
		t.Fatal("cache counters nonzero with caching off")
	}
}

// TestAnswerCacheReplayAndInvalidation pins the replay contract (Cached
// flag, zeroed counters, identical bits) and generation-based
// invalidation: any catalog change makes previously cached answers
// unreachable.
func TestAnswerCacheReplayAndInvalidation(t *testing.T) {
	e := buildCachedSessions(t, Config{Seed: 74, CacheBytes: 4 << 20,
		SampleBacking: table.BackingCompressed}, 20000, 3000)
	defer e.Close()
	q := "SELECT City, AVG(Time) FROM Sessions GROUP BY City"

	cold, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first execution marked Cached")
	}
	warm, err := e.Query("  SELECT   City, AVG(Time) FROM Sessions GROUP BY City ")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("whitespace-variant repeat missed the answer cache (canonicalization)")
	}
	if !bitsEqual(cacheAnswerBits(cold), cacheAnswerBits(warm)) {
		t.Fatal("replayed answer differs from the original")
	}
	if warm.Counters.BlocksDecoded != 0 || warm.Counters.RowsScanned != 0 {
		t.Fatalf("replay reported fresh work: %+v", warm.Counters)
	}

	// Different BootstrapK budgets must not share entries.
	capped, err := e.RunWithOptions(context.Background(), q, RunOptions{BootstrapK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Cached {
		t.Fatal("k-capped run replayed a full-k answer")
	}

	gen := e.CatalogGeneration()
	other := table.MustNew(table.Schema{{Name: "x", Type: table.Float64}},
		table.Float64Col{1, 2, 3})
	if err := e.RegisterTable("Other", other); err != nil {
		t.Fatal(err)
	}
	if e.CatalogGeneration() == gen {
		t.Fatal("RegisterTable did not bump the catalog generation")
	}
	after, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("stale answer served across a catalog change")
	}
	if !bitsEqual(cacheAnswerBits(cold), cacheAnswerBits(after)) {
		t.Fatal("re-executed answer diverged after catalog change")
	}

	// Sample rebuilds invalidate too.
	gen = e.CatalogGeneration()
	if err := e.BuildSamples("Sessions", 3000); err != nil {
		t.Fatal(err)
	}
	if e.CatalogGeneration() == gen {
		t.Fatal("BuildSamples did not bump the catalog generation")
	}
	if ans, err := e.Query(q); err != nil {
		t.Fatal(err)
	} else if ans.Cached {
		t.Fatal("stale answer served across a sample rebuild")
	}
}

// TestAnswerCacheTTLExpiry pins that an expired answer re-executes rather
// than replays.
func TestAnswerCacheTTLExpiry(t *testing.T) {
	e := buildCachedSessions(t, Config{Seed: 75, CacheBytes: 4 << 20,
		CacheTTL: 30 * time.Millisecond}, 10000, 2000)
	defer e.Close()
	q := cacheTestQueries[0]
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if ans, err := e.Query(q); err != nil || !ans.Cached {
		t.Fatalf("fresh repeat not replayed: %v, cached=%v", err, ans != nil && ans.Cached)
	}
	time.Sleep(60 * time.Millisecond)
	if ans, err := e.Query(q); err != nil {
		t.Fatal(err)
	} else if ans.Cached {
		t.Fatal("expired answer replayed past its TTL")
	}
}

// TestCacheChurnRace is the ISSUE's -race stress: concurrent queries fill
// and evict a deliberately tight block budget while catalog changes
// (RegisterTable) invalidate the answer layer mid-flight. Every answer
// must stay bit-identical to the cache-off reference, and the block layer
// must never exceed its budget by more than one block.
func TestCacheChurnRace(t *testing.T) {
	const n, sampleRows = 30000, 6000
	workers, rounds := 6, 8
	if testing.Short() {
		workers, rounds = 4, 3
	}
	base := Config{Seed: 76, SampleBacking: table.BackingCompressed, Workers: 2}
	off := buildCachedSessions(t, base, n, sampleRows)
	defer off.Close()
	refs := make(map[string][]uint64, len(cacheTestQueries))
	for _, q := range cacheTestQueries {
		ans, err := off.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		refs[q] = cacheAnswerBits(ans)
	}

	cfg := base
	// A budget of a few blocks forces constant eviction under load.
	budget := int64(3 * (table.BlockRows*8 + 96))
	cfg.CacheBytes = budget
	on := buildCachedSessions(t, cfg, n, sampleRows)
	defer on.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(cacheTestQueries)+rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for qi, q := range cacheTestQueries {
					ans, err := on.Run(context.Background(), q)
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d %q: %w", w, r, q, err)
						return
					}
					if !bitsEqual(refs[q], cacheAnswerBits(ans)) {
						errs <- fmt.Errorf("worker %d round %d query %d diverged under churn", w, r, qi)
						return
					}
				}
			}
		}(w)
	}
	// Catalog churn: new registrations bump the generation while queries
	// are in flight, exercising invalidation under contention.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			tbl := table.MustNew(table.Schema{{Name: "x", Type: table.Float64}},
				table.Float64Col{float64(r)})
			if err := on.RegisterTable(fmt.Sprintf("churn%d", r), tbl); err != nil {
				errs <- fmt.Errorf("churn register %d: %w", r, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := on.CacheStatsSnapshot(0)
	// Eviction happens before insert, so residency can exceed the budget
	// by at most one block (here: one string block, whose payload size is
	// data-dependent — allow a generous single-block bound).
	maxBlock := int64(table.BlockRows*24 + 96)
	if st.Block.Bytes > budget+maxBlock {
		t.Errorf("resident %d exceeds budget %d by more than one block", st.Block.Bytes, budget)
	}
	if st.Block.Evictions == 0 {
		t.Error("tight budget under churn evicted nothing")
	}
}

// TestExecPoolNoLeak is the ISSUE's pooled-scratch audit regression test:
// every release path — exact scans, approximate runs, cache-hit replays,
// failed parses and cancelled queries — must return its pooled buffers.
func TestExecPoolNoLeak(t *testing.T) {
	settle := func(base int64) bool {
		for i := 0; i < 100; i++ {
			if exec.PoolOutstanding() == base {
				return true
			}
			time.Sleep(2 * time.Millisecond)
		}
		return false
	}
	base := exec.PoolOutstanding()

	for _, cacheBytes := range []int64{0, 4 << 20} {
		e := buildCachedSessions(t, Config{Seed: 77, CacheBytes: cacheBytes,
			SampleBacking: table.BackingCompressed}, 20000, 3000)
		for round := 0; round < 2; round++ { // round 2 replays from the answer cache
			for _, q := range cacheTestQueries {
				if _, err := e.Query(q); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := e.QueryExact("SELECT AVG(Time) FROM Sessions"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Query("SELECT AVG(nope) FROM Sessions"); err == nil {
			t.Fatal("bad query accepted")
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		// A fresh query string: already-cached answers replay instantly and
		// would not exercise the cancellation release path.
		if _, err := e.Run(ctx, "SELECT SUM(Time) FROM Sessions WHERE City = 'SF'"); err == nil {
			t.Fatal("cancelled query succeeded")
		}
		e.Close()
		if !settle(base) {
			t.Fatalf("cacheBytes=%d: %d pooled buffers outstanding after all paths",
				cacheBytes, exec.PoolOutstanding()-base)
		}
	}
}
