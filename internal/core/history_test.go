package core

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/watchdog"
)

func openTestHistory(t *testing.T, dir string) *history.Store {
	t.Helper()
	h, err := history.Open(dir, history.Options{
		SampleInterval: -1,
		SLOs: []history.SLOSpec{
			{Name: "lat", Kind: history.SLOLatency, Objective: 0.99, ThresholdMs: 60000},
			{Name: "cov", Kind: history.SLOCoverage, Objective: 0.93},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHistoryDoesNotPerturbAnswers extends the inertness invariant to the
// durable-telemetry layer: tracer + event log + watchdog + history store
// with SLO monitoring must leave answers bit-identical to a bare engine.
func TestHistoryDoesNotPerturbAnswers(t *testing.T) {
	mk := func(full bool) *Engine {
		cfg := Config{Seed: 23, Workers: 3, BootstrapK: 30}
		if full {
			cfg.Obs = obs.NewTracer(obs.Config{})
			cfg.Watchdog = watchdog.New(watchdog.Config{
				AuditFraction: 1, Synchronous: true,
				Metrics: cfg.Obs.Registry(),
			})
			h := openTestHistory(t, t.TempDir())
			t.Cleanup(func() { h.Close() })
			cfg.History = h
		}
		e, _ := buildSessions(t, cfg, 30000)
		if err := e.BuildSamples("Sessions", 8000); err != nil {
			t.Fatal(err)
		}
		return e
	}
	loaded, plain := mk(true), mk(false)
	for _, q := range obsTestQueries {
		a, err := loaded.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Groups) != len(b.Groups) {
			t.Fatalf("%s: group counts differ", q)
		}
		for gi := range a.Groups {
			for ai := range a.Groups[gi].Aggs {
				x, y := a.Groups[gi].Aggs[ai], b.Groups[gi].Aggs[ai]
				if x.Estimate != y.Estimate ||
					x.ErrorBar.HalfWidth != y.ErrorBar.HalfWidth ||
					x.DiagnosticOK != y.DiagnosticOK ||
					x.Technique != y.Technique {
					t.Fatalf("%s: with history %+v != bare %+v", q, x, y)
				}
			}
		}
	}
}

// TestHistoryWriteThrough drives the full pipeline — finishQuery records,
// watchdog audit observer, restart replay — and asserts the workload
// profiler sees the plan shapes the engine executed.
func TestHistoryWriteThrough(t *testing.T) {
	dir := t.TempDir()
	h := openTestHistory(t, dir)
	wd := watchdog.New(watchdog.Config{AuditFraction: 1, Synchronous: true})
	e, _ := buildSessions(t, Config{
		Seed: 31, BootstrapK: 30,
		Obs:      obs.NewTracer(obs.Config{}),
		Watchdog: wd,
		History:  h,
	}, 20000)
	if err := e.BuildSamples("Sessions", 5000); err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("SELECT AVG(Time) FROM Sessions WHERE Time > %d", 30+i)
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	wd.Close() // drain audits through the observer

	key := history.Key{
		Table: "Sessions", Sample: "5000", Agg: "AVG", Predicate: "(time > ?)",
	}
	prof, ok := h.Profile(key)
	if !ok {
		var keys []history.Key
		for _, p := range h.Profiles() {
			keys = append(keys, p.Key)
		}
		t.Fatalf("no profile for %v; have %v", key, keys)
	}
	if prof.Queries != n {
		t.Fatalf("profile has %d queries, want %d", prof.Queries, n)
	}
	if prof.Selectivity.N != n || prof.Selectivity.Mean <= 0 || prof.Selectivity.Mean > 1 {
		t.Fatalf("selectivity dist = %+v, want %d in-(0,1] observations",
			prof.Selectivity, n)
	}
	if prof.SampleFraction <= 0 || prof.SampleFraction > 0.5 {
		t.Fatalf("sample fraction = %v, want ~5000/20000", prof.SampleFraction)
	}
	if _, ok := prof.StagesMs["scan"]; !ok {
		t.Fatalf("profile stages %v lack scan", prof.StagesMs)
	}
	if prof.Audits != n {
		t.Fatalf("profile audits = %d, want %d (every query audited)", prof.Audits, n)
	}
	if prof.Coverage <= 0 {
		t.Fatal("audited coverage not recorded")
	}

	// SLO monitor saw the queries and audits.
	for _, st := range h.SLOStatuses() {
		switch st.Spec.Name {
		case "lat":
			if st.Events != n {
				t.Fatalf("latency SLO saw %d events, want %d", st.Events, n)
			}
		case "cov":
			if st.Events != n {
				t.Fatalf("coverage SLO saw %d events, want %d", st.Events, n)
			}
		}
	}

	// Restart: a fresh store over the same directory resumes the profile.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2 := openTestHistory(t, dir)
	defer h2.Close()
	prof2, ok := h2.Profile(key)
	if !ok || prof2.Queries != n || prof2.Audits != n {
		t.Fatalf("restarted profile = %+v ok=%v, want %d queries and audits resumed",
			prof2, ok, n)
	}
}
