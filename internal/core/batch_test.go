package core

import (
	"context"
	"fmt"
	"testing"
)

// answersEqual asserts two Answers agree on everything a client reads:
// group keys and every per-aggregate field (estimate, error bar, technique,
// diagnostic verdict, exactness). Counters are compared by the caller where
// meaningful — a shared-scan member carries only its share of the pass.
func answersEqual(t *testing.T, label string, got, want *Answer) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil answer (got=%v want=%v)", label, got == nil, want == nil)
	}
	if got.SampleRows != want.SampleRows {
		t.Errorf("%s: sample rows %d != %d", label, got.SampleRows, want.SampleRows)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for gi := range want.Groups {
		g, w := got.Groups[gi], want.Groups[gi]
		if g.Key != w.Key {
			t.Fatalf("%s: group %d key %q != %q", label, gi, g.Key, w.Key)
		}
		if len(g.Aggs) != len(w.Aggs) {
			t.Fatalf("%s: group %q: %d aggs, want %d", label, g.Key, len(g.Aggs), len(w.Aggs))
		}
		for ai := range w.Aggs {
			if g.Aggs[ai] != w.Aggs[ai] {
				t.Errorf("%s: group %q agg %d:\n  got  %+v\n  want %+v",
					label, g.Key, ai, g.Aggs[ai], w.Aggs[ai])
			}
		}
	}
}

func sampledSessions(t *testing.T, cfg Config, n, sample int) *Engine {
	t.Helper()
	e, _ := buildSessions(t, cfg, n)
	if err := e.BuildSamples("Sessions", sample); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBatchKey(t *testing.T) {
	e := sampledSessions(t, Config{Seed: 41, BootstrapK: 20}, 40000, 10000)
	k1, ok := e.BatchKey("SELECT AVG(Time) FROM Sessions")
	if !ok || k1 == "" {
		t.Fatal("sampled query not batchable")
	}
	k2, ok := e.BatchKey("SELECT COUNT(*) FROM Sessions WHERE City = 'NYC'")
	if !ok || k2 != k1 {
		t.Errorf("same (table, sample) keys differ: %q vs %q", k1, k2)
	}
	if _, ok := e.BatchKey("SELECT AVG(Time) FROM"); ok {
		t.Error("malformed query batchable")
	}
	if _, ok := e.BatchKey("SELECT AVG(Time) FROM Nowhere"); ok {
		t.Error("unknown table batchable")
	}
	// No samples: the exact path is never batched.
	exact, _ := buildSessions(t, Config{Seed: 42}, 5000)
	if _, ok := exact.BatchKey("SELECT AVG(Time) FROM Sessions"); ok {
		t.Error("sampleless engine reports batchable")
	}
}

func TestRunSharedBatchMatchesSolo(t *testing.T) {
	mk := func() *Engine {
		return sampledSessions(t, Config{Seed: 43, BootstrapK: 30}, 60000, 20000)
	}
	queries := []string{
		"SELECT AVG(Time) FROM Sessions",
		"SELECT COUNT(*), SUM(Time) FROM Sessions WHERE City = 'NYC'",
		"SELECT City, AVG(Time) FROM Sessions GROUP BY City",
		"SELECT PERCENTILE(Time, 0.5) FROM Sessions WHERE Time > 40",
		"SELECT AVG(Time) FROM Sessions", // identical plan: dedup path
	}

	// Solo reference answers on a fresh engine (same seed => bit-identical
	// randomness per query).
	soloEng := mk()
	solo := make([]*Answer, len(queries))
	for i, q := range queries {
		ans, err := soloEng.RunWithOptions(context.Background(), q, RunOptions{})
		if err != nil {
			t.Fatalf("solo %q: %v", q, err)
		}
		solo[i] = ans
	}

	reqs := make([]BatchRequest, len(queries))
	for i, q := range queries {
		reqs[i] = BatchRequest{Query: q}
	}
	out := mk().RunSharedBatch(reqs)
	for i, q := range queries {
		if out[i].Err != nil {
			t.Fatalf("batched %q: %v", q, out[i].Err)
		}
		answersEqual(t, q, out[i].Ans, solo[i])
		if !out[i].Ans.SharedScan {
			t.Errorf("%q: answer not marked SharedScan", q)
		}
	}
}

// TestRunSharedBatchScansOnce pins the tentpole acceptance criterion: a
// batch of 16 same-sample queries performs exactly ONE physical pass —
// summing Counters.Scans across all 16 answers gives 1.
func TestRunSharedBatchScansOnce(t *testing.T) {
	// Diagnostics off: a marginal rejection would trigger an exact-fallback
	// rescan and muddy the count this test exists to pin.
	e := sampledSessions(t, Config{Seed: 44, BootstrapK: 25, SkipDiagnostics: true},
		60000, 20000)
	reqs := make([]BatchRequest, 16)
	for i := range reqs {
		reqs[i] = BatchRequest{
			Query: fmt.Sprintf("SELECT AVG(Time), COUNT(*) FROM Sessions WHERE Time > %d", 30+i),
		}
	}
	out := e.RunSharedBatch(reqs)
	var scans int64
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
		if r.Ans.FellBack() {
			t.Fatalf("member %d fell back to exact execution; the scan count below would be meaningless", i)
		}
		scans += int64(r.Ans.Counters.Scans)
	}
	if scans != 1 {
		t.Errorf("batch of 16 summed Counters.Scans = %d, want 1", scans)
	}
}

func TestRunSharedBatchRejectedDiagnosticFallsBack(t *testing.T) {
	mk := func() *Engine {
		e := heavyTailTable(t, Config{Seed: 45, BootstrapK: 40}, 120000)
		if err := e.BuildSamples("T", 40000); err != nil {
			t.Fatal(err)
		}
		return e
	}
	queries := []string{
		"SELECT MAX(v) FROM T", // diagnostic rejects MAX on extreme Pareto data
		"SELECT AVG(v) FROM T",
	}
	soloEng := mk()
	solo := make([]*Answer, len(queries))
	for i, q := range queries {
		ans, err := soloEng.RunWithOptions(context.Background(), q, RunOptions{})
		if err != nil {
			t.Fatalf("solo %q: %v", q, err)
		}
		solo[i] = ans
	}
	if !solo[0].FellBack() {
		t.Fatal("MAX on Pareto data did not fall back solo; test premise broken")
	}

	reqs := []BatchRequest{{Query: queries[0]}, {Query: queries[1]}}
	out := mk().RunSharedBatch(reqs)
	for i, q := range queries {
		if out[i].Err != nil {
			t.Fatalf("batched %q: %v", q, out[i].Err)
		}
		answersEqual(t, q, out[i].Ans, solo[i])
	}
	if !out[0].Ans.FellBack() {
		t.Error("batched rejected member did not fall back")
	}
}

func TestRunSharedBatchExactMembersRunSolo(t *testing.T) {
	// An engine with no samples answers exactly; such members bypass the
	// shared pass but still get correct answers from the same call.
	e, tbl := buildSessions(t, Config{Seed: 46}, 20000)
	_ = tbl
	reqs := []BatchRequest{
		{Query: "SELECT AVG(Time) FROM Sessions"},
		{Query: "SELECT COUNT(*) FROM Sessions WHERE City = 'SF'"},
		{Query: "SELECT AVG(nope) FROM Sessions"}, // per-member error
	}
	out := e.RunSharedBatch(reqs)
	for i := 0; i < 2; i++ {
		if out[i].Err != nil {
			t.Fatalf("member %d: %v", i, out[i].Err)
		}
		want, err := e.Query(reqs[i].Query)
		if err != nil {
			t.Fatal(err)
		}
		answersEqual(t, reqs[i].Query, out[i].Ans, want)
		if !out[i].Ans.Groups[0].Aggs[0].Exact {
			t.Errorf("member %d not exact", i)
		}
		if out[i].Ans.SharedScan {
			t.Errorf("member %d marked SharedScan despite solo execution", i)
		}
	}
	if out[2].Err == nil {
		t.Error("bad column did not surface a per-member error")
	}
}

func TestRunSharedBatchHonoursMemberContext(t *testing.T) {
	e := sampledSessions(t, Config{Seed: 47, BootstrapK: 200}, 60000, 20000)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []BatchRequest{
		{Ctx: cancelled, Query: "SELECT AVG(Time) FROM Sessions"},
		{Query: "SELECT COUNT(*) FROM Sessions WHERE City = 'LA'"},
	}
	out := e.RunSharedBatch(reqs)
	if out[0].Err == nil {
		t.Error("cancelled member succeeded")
	}
	if out[1].Err != nil {
		t.Errorf("healthy batchmate failed: %v", out[1].Err)
	}
}
