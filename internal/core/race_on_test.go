//go:build race

package core

// raceDetectorEnabled reports whether this test binary was built with
// -race; wall-clock latency bounds are scaled by the detector's ~10x
// instrumentation slowdown.
const raceDetectorEnabled = true
