package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

// TestEndToEndNaiveVsOptimizedSimulation drives the same query through
// both plan modes with the cluster model attached and checks that the
// simulated production-scale latencies reproduce the paper's headline:
// naive minutes vs. optimized seconds — through the engine, not just the
// simulator.
func TestEndToEndNaiveVsOptimizedSimulation(t *testing.T) {
	cl, err := cluster.New(cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg Config) *Answer {
		t.Helper()
		cfg.Cluster = cl
		cfg.LogicalSampleMB = 20000
		cfg.BootstrapK = 30
		e, _ := buildSessions(t, cfg, 100000)
		if err := e.BuildSamples("Sessions", 40000); err != nil {
			t.Fatal(err)
		}
		// PERCENTILE forces the bootstrap path (QSet-2 flavour).
		ans, err := e.Query("SELECT PERCENTILE(Time, 0.9) FROM Sessions WHERE City = 'NYC'")
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}

	opt := build(Config{Seed: 30, DisableFallback: true})
	naive := build(Config{Seed: 30, DisableFallback: true,
		DisableScanConsolidation: true, DisableOperatorPushdown: true})

	if opt.Simulated == nil || naive.Simulated == nil {
		t.Fatal("simulated breakdowns missing")
	}
	if opt.Simulated.Total() > 20 {
		t.Errorf("optimized simulated total = %.1fs, want interactive", opt.Simulated.Total())
	}
	if naive.Simulated.Total() < 5*opt.Simulated.Total() {
		t.Errorf("naive (%.1fs) not clearly slower than optimized (%.1fs)",
			naive.Simulated.Total(), opt.Simulated.Total())
	}
	// The counters must also reflect the physical difference.
	if naive.Counters.Scans <= opt.Counters.Scans {
		t.Errorf("naive scans (%d) should exceed optimized (%d)",
			naive.Counters.Scans, opt.Counters.Scans)
	}
}

// TestEndToEndAnswerQuality checks the statistical contract across many
// engine answers: 95% error bars over repeated engine runs should bracket
// the exact answer the vast majority of the time.
func TestEndToEndAnswerQuality(t *testing.T) {
	src := rng.New(31)
	n := 150000
	times := make(table.Float64Col, n)
	for i := range times {
		times[i] = src.LogNormal(4, 0.5)
	}
	tbl := table.MustNew(table.Schema{{Name: "Time", Type: table.Float64}}, times)

	truth := stats.Mean(times)
	covered := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		e := New(Config{Seed: uint64(1000 + trial), Workers: 4, SkipDiagnostics: true})
		if err := e.RegisterTable("t", tbl); err != nil {
			t.Fatal(err)
		}
		if err := e.BuildSamples("t", 8000); err != nil {
			t.Fatal(err)
		}
		ans, err := e.Query("SELECT AVG(Time) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if ans.Groups[0].Aggs[0].ErrorBar.Contains(truth) {
			covered++
		}
	}
	if covered < trials*85/100 {
		t.Errorf("error bars covered truth %d/%d times, want ≥ 85%%", covered, trials)
	}
}

// TestDisableScanConsolidationCounters verifies the ablation flag changes
// the physical execution (rescans per resample) without changing the
// statistical outputs beyond resampling noise.
func TestDisableScanConsolidationCounters(t *testing.T) {
	run := func(disable bool) *Answer {
		t.Helper()
		e, _ := buildSessions(t, Config{Seed: 32, BootstrapK: 20,
			SkipDiagnostics: true, DisableScanConsolidation: disable}, 60000)
		if err := e.BuildSamples("Sessions", 20000); err != nil {
			t.Fatal(err)
		}
		ans, err := e.Query("SELECT PERCENTILE(Time, 0.5) FROM Sessions")
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	consolidated := run(false)
	naive := run(true)
	if naive.Counters.Scans != consolidated.Counters.Scans+20 {
		t.Errorf("naive scans = %d, consolidated = %d, want +K=20 difference",
			naive.Counters.Scans, consolidated.Counters.Scans)
	}
	// Same sample and seed: the point estimates must agree exactly.
	a := consolidated.Groups[0].Aggs[0].Estimate
	b := naive.Groups[0].Aggs[0].Estimate
	if a != b {
		t.Errorf("estimates diverge across plan modes: %v vs %v", a, b)
	}
	// Interval widths agree up to bootstrap noise.
	wa := consolidated.Groups[0].Aggs[0].ErrorBar.HalfWidth
	wb := naive.Groups[0].Aggs[0].ErrorBar.HalfWidth
	if math.Abs(wa-wb) > 0.5*math.Max(wa, wb) {
		t.Errorf("interval widths implausibly far: %v vs %v", wa, wb)
	}
}

// TestSkipDiagnosticsPath ensures the diagnostics-off configuration never
// runs the diagnostic operator and never falls back.
func TestSkipDiagnosticsPath(t *testing.T) {
	e := heavyTailTable(t, Config{Seed: 33, BootstrapK: 20, SkipDiagnostics: true}, 60000)
	if err := e.BuildSamples("T", 30000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT MAX(v) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	agg := ans.Groups[0].Aggs[0]
	if !agg.DiagnosticOK {
		t.Error("diagnostics disabled but a verdict was produced")
	}
	if agg.Exact {
		t.Error("no fallback expected without diagnostics")
	}
	if ans.Counters.DiagSubqueries != 0 {
		t.Error("diagnostic subqueries recorded with diagnostics disabled")
	}
}
