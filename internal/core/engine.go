// Package core is the paper's contribution assembled end-to-end: a
// BlinkDB-style approximate query processing engine that answers SQL
// aggregation queries on pre-built samples at interactive speed, attaches
// error bars from the cheapest applicable estimation technique, validates
// those error bars at runtime with the Kleiner et al. diagnostic, and
// falls back — to a larger sample and ultimately to exact execution — for
// queries whose errors cannot be estimated reliably.
//
// The pipeline per query (Fig. 5):
//
//	SQL → logical plan (§5.3 rewrites) → single-scan execution with
//	Poissonized resampling → answer ± error bars → diagnostic verdict →
//	fallback if rejected or the error bound is missed.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/estimator"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/export"
	"repro/internal/obs/history"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/sql"
	"repro/internal/table"
	"repro/internal/watchdog"
)

// Config tunes the engine. Zero values select the paper's defaults.
type Config struct {
	// Workers is the local execution parallelism (0 = 4). It bounds the
	// scan operators, the multi-resample bootstrap kernel, and the
	// diagnostic's per-size subsample fan-out alike; answers are
	// bit-identical at every setting because all randomness is drawn from
	// per-work-unit RNG streams, never from shared per-worker state.
	Workers int
	// Seed makes all sampling and resampling reproducible.
	Seed uint64
	// BootstrapK is the bootstrap resample count (0 = 100).
	BootstrapK int
	// Alpha is the confidence level for error bars (0 = 0.95).
	Alpha float64
	// Diagnostics toggles the runtime diagnostic (default on; set
	// SkipDiagnostics to disable).
	SkipDiagnostics bool
	// ScanConsolidation / OperatorPushdown control the §5.3 rewrites
	// (default on; set the Disable flags for ablations).
	DisableScanConsolidation bool
	DisableOperatorPushdown  bool
	// DisableZoneMaps skips building per-block min/max zone maps at table
	// registration and sample-build time (default on: built once, consulted
	// by the executor to prune blocks that provably cannot satisfy a
	// filter). Pruning never changes answers — this flag exists for
	// ablations and benchmarks.
	DisableZoneMaps bool
	// Backing selects the storage backing applied to tables at
	// registration time (default BackingRaw). BackingCompressed re-encodes
	// each registered table into block-compressed columns (dictionary,
	// run-length, bit-packed, and XOR codecs chosen per block); queries
	// decode blocks lazily after zone-map admission. Samples drawn by
	// BuildSamples are always materialized raw — they are small by
	// construction, and keeping them raw is what holds sample-query
	// latency flat while the base table grows. Answers are bit-identical
	// across backings. BackingMmap is accepted for parity with
	// table.ParseBacking but tables registered through RegisterTable are
	// in-memory; use table.OpenStore to get a disk-backed table and
	// register that.
	Backing table.Backing
	// SampleBacking selects the storage backing for samples drawn by
	// BuildSamples (default BackingRaw, PR-6 behavior: small samples stay
	// raw and decode-free). BackingCompressed block-compresses each sample
	// like registered tables; that makes sampled queries decode-bound,
	// which is exactly the workload the decoded-block cache (CacheBytes)
	// accelerates. Answers are bit-identical across sample backings.
	SampleBacking table.Backing
	// CacheBytes, when positive, enables the cross-query decoded-block
	// cache with this global byte budget: blocks decoded from compressed
	// or mmap-backed columns are kept resident (scan-resistant CLOCK
	// eviction, per-block singleflight) and served to later queries
	// without re-decoding. 0 disables all three cache layers — behavior
	// and answers are then byte-identical to an engine without this
	// feature; with any budget, answers are bit-identical to cache-off
	// (decodes are deterministic, pinned by tests).
	CacheBytes int64
	// CacheTTL bounds answer-cache reuse of a finished answer
	// (0 = cache.DefaultAnswerTTL, 60s). Catalog changes (RegisterTable,
	// BuildSamples, RegisterUDF) invalidate immediately regardless, via
	// the engine's catalog generation counter baked into cache keys.
	CacheTTL time.Duration
	// DisableAnswerCache and DisablePredMemo turn off the answer-reuse and
	// predicate-memo layers individually while CacheBytes keeps the block
	// layer on (ablations; the block layer has no flag — CacheBytes=0 is
	// its off switch).
	DisableAnswerCache bool
	DisablePredMemo    bool
	// FallbackToExact re-runs rejected or out-of-bound queries on the
	// full dataset (default on; disable for pure-approximation mode).
	DisableFallback bool
	// Cluster, when set, attaches simulated production-scale latencies to
	// every answer. LogicalSampleMB scales the local sample to the
	// simulated deployment's sample size (0 = actual local bytes).
	Cluster         *cluster.Cluster
	LogicalSampleMB float64
	// Obs, when set, records a per-stage trace and aggregate metrics for
	// every query (see internal/obs). Nil disables telemetry; answers are
	// bit-identical either way.
	Obs *obs.Tracer
	// ObsConfig tunes the tracer the engine auto-creates when MetricsAddr
	// is set without Obs (trace ring size; the event-log thresholds are
	// read by callers constructing an EventLog). A caller-supplied Obs
	// tracer ignores the ring-size knob (it is already configured), but
	// ExportURL/ExportPath still apply: when either is set and the engine
	// has a tracer, New builds a span exporter (internal/obs/export),
	// attaches it to the tracer, and owns its shutdown via Engine.Close.
	ObsConfig obs.Config
	// MetricsAddr, when non-empty, serves the tracer's /metrics and
	// /debug/queries endpoints on this address (e.g. "127.0.0.1:9090";
	// ":0" picks a free port, see Engine.MetricsEndpoint). Setting it
	// without Obs creates a default tracer.
	MetricsAddr string
	// EventLog, when set, receives one structured JSON record per query
	// (and per watchdog audit). Like Obs it is provably inert: answers
	// are bit-identical with logging on or off.
	EventLog *obs.EventLog
	// Watchdog, when set, receives every approximate query's calibration
	// outcome and re-executes a configured fraction exactly to compare
	// empirical coverage against nominal. New binds the engine's exact
	// path as the watchdog's auditor; when MetricsAddr is also set, the
	// watchdog's /debug/calibration page is mounted on the same server.
	// The engine does not own the watchdog — Close it separately.
	Watchdog *watchdog.Watchdog
	// History, when set, receives one durable record per finished query
	// (and, when a watchdog is also attached, per audit outcome), feeding
	// the persistent workload profiler and SLO monitor. Provably inert:
	// answers are bit-identical with history on or off. When MetricsAddr
	// is set, /debug/workload, /debug/slo and /debug/history are mounted
	// on the same server. The engine does not own the store — Close it
	// separately.
	History *history.Store
	// Alerts, when set, is the unified alert bus the engine bridges the
	// watchdog's raise/clear lifecycle onto (source="watchdog"); when
	// MetricsAddr is set, /debug/alerts is mounted on the same server.
	// Provably inert like the rest of the obs tree. The engine does not
	// own the bus — close its sinks separately.
	Alerts *alert.Bus
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 4
	}
	return c.Workers
}

func (c Config) bootstrapK() int {
	if c.BootstrapK <= 0 {
		return 100
	}
	return c.BootstrapK
}

func (c Config) alpha() float64 {
	if c.Alpha <= 0 {
		return 0.95
	}
	return c.Alpha
}

// registeredTable is one dataset with its sample catalog.
type registeredTable struct {
	full       *table.Table
	samples    []*exec.StoredTable // ascending by rows
	stratified []*stratifiedSample // per group-by key column
}

// Engine is an approximate query processing engine.
//
// An Engine is safe for concurrent use: any number of goroutines may call
// the query methods (Run, Query, QueryExact, ...) simultaneously, and each
// call's answer is bit-identical to what a serial execution of the same
// query would produce — all randomness derives from (Config.Seed, query
// content), never from shared mutable state or execution order.
// Registration methods (RegisterTable, RegisterUDF, BuildSamples,
// BuildStratifiedSample) may also run concurrently with queries: catalogs
// are replaced copy-on-write under the engine mutex, so in-flight queries
// keep the snapshot they started with.
type Engine struct {
	cfg Config

	// mu guards the catalog state below. Query paths take a read-locked
	// snapshot once per query (snapshotTable, udfRegistry); registration
	// replaces slices and maps copy-on-write under the write lock, so
	// readers never observe in-place mutation.
	mu     sync.RWMutex
	tables map[string]*registeredTable
	udfs   exec.Registry
	src    *rng.Source

	obs    *obs.Tracer
	obsSrv *obs.Server
	obsErr error
	elog   *obs.EventLog
	wd     *watchdog.Watchdog
	hist   *history.Store
	alerts *alert.Bus
	exp    *export.Exporter
	qid    atomic.Uint64 // untraced query ids for error wrapping

	// Cross-query reuse layers (all nil when Config.CacheBytes == 0).
	blocks  *cache.BlockCache
	preds   *cache.PredMemo
	answers *cache.AnswerCache
	// gen is the catalog generation: bumped by every registration mutation
	// (RegisterTable, RegisterUDF, BuildSamples, BuildStratifiedSample).
	// Answer-cache keys embed it, so any catalog change invalidates all
	// cached answers by construction.
	gen atomic.Uint64
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:    cfg,
		tables: map[string]*registeredTable{},
		udfs:   exec.Registry{},
		src:    rng.New(cfg.Seed),
		obs:    cfg.Obs,
		elog:   cfg.EventLog,
		wd:     cfg.Watchdog,
		hist:   cfg.History,
		alerts: cfg.Alerts,
	}
	if e.wd != nil {
		e.wd.Bind(e.auditExact)
		if e.hist != nil {
			e.wd.SetAuditObserver(e.observeAudit)
		}
		if e.alerts != nil {
			e.wd.SetAlertNotifier(e.notifyWatchdogAlert)
		}
	}
	if cfg.MetricsAddr != "" && e.obs == nil {
		e.obs = obs.NewTracer(cfg.ObsConfig)
	}
	if cfg.CacheBytes > 0 {
		var reg *obs.Registry
		if e.obs != nil {
			reg = e.obs.Registry()
		}
		e.blocks = cache.NewBlockCache(cache.BlockConfig{Bytes: cfg.CacheBytes, Metrics: reg})
		if !cfg.DisablePredMemo {
			e.preds = cache.NewPredMemo(reg)
		}
		if !cfg.DisableAnswerCache {
			e.answers = cache.NewAnswerCache(cache.AnswerConfig{TTL: cfg.CacheTTL, Metrics: reg})
		}
	}
	if e.obs != nil &&
		(cfg.ObsConfig.ExportURL != "" || cfg.ObsConfig.ExportPath != "") {
		exp, err := export.New(export.Config{
			URL:     cfg.ObsConfig.ExportURL,
			Path:    cfg.ObsConfig.ExportPath,
			Metrics: e.obs.Registry(),
		})
		if err != nil {
			e.obsErr = err
		} else {
			e.exp = exp
			e.obs.SetExporter(exp)
		}
	}
	if cfg.MetricsAddr != "" {
		var extra []obs.Route
		if e.wd != nil {
			extra = append(extra, obs.Route{
				Pattern: "/debug/calibration", Handler: e.wd.Handler(),
			})
		}
		if e.hist != nil {
			extra = append(extra,
				obs.Route{Pattern: "/debug/workload", Handler: e.hist.WorkloadHandler()},
				obs.Route{Pattern: "/debug/slo", Handler: e.hist.SLOHandler()},
				obs.Route{Pattern: "/debug/history", Handler: e.hist.StatsHandler()},
			)
		}
		if e.alerts != nil {
			extra = append(extra, obs.Route{
				Pattern: "/debug/alerts", Handler: e.alerts.Handler(),
			})
		}
		if e.blocks != nil {
			extra = append(extra, obs.Route{
				Pattern: "/debug/cache", Handler: e.cacheHandler(),
			})
		}
		srv, err := obs.Serve(cfg.MetricsAddr, e.obs, extra...)
		e.obsSrv = srv
		if err != nil && e.obsErr == nil {
			e.obsErr = err
		}
	}
	return e
}

// notifyWatchdogAlert bridges the watchdog's raise/clear lifecycle onto
// the unified alert bus. Undercoverage is the dangerous direction (the
// paper's "optimistic and incorrect" intervals) and grades critical;
// overcoverage and reject drift are warnings.
func (e *Engine) notifyWatchdogAlert(a watchdog.Alert, firing bool) {
	kind := string(a.Kind)
	key := a.Key.String()
	if !firing {
		e.alerts.Resolve("watchdog", kind, key)
		return
	}
	sev := alert.SeverityWarning
	if a.Kind == watchdog.Undercoverage {
		sev = alert.SeverityCritical
	}
	e.alerts.Raise(alert.Alert{
		Source: "watchdog", Kind: kind, Key: key, Severity: sev,
		Observed: a.Observed, Expected: a.Expected, Message: a.Message,
		Labels: map[string]string{
			"agg":    a.Key.Agg,
			"sample": a.Key.Sample,
		},
	})
}

// Tracer returns the engine's tracer (nil when telemetry is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.obs }

// MetricsEndpoint returns the bound address of the metrics HTTP endpoint,
// or the listen error when Config.MetricsAddr could not be served. Empty
// address and nil error mean no endpoint was requested.
func (e *Engine) MetricsEndpoint() (string, error) {
	if e.obsErr != nil {
		return "", e.obsErr
	}
	if e.obsSrv == nil {
		return "", nil
	}
	return e.obsSrv.Addr, nil
}

// Close shuts down the metrics endpoint, if one is being served, and
// flushes and stops the span exporter, if the engine built one.
func (e *Engine) Close() error {
	var err error
	if e.obsSrv != nil {
		err = e.obsSrv.Close()
	}
	if e.exp != nil {
		e.obs.SetExporter(nil)
		if cerr := e.exp.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RegisterTable registers a full dataset under the given name. Samples
// must be built explicitly with BuildSamples before approximate queries
// can run; queries on tables without samples execute exactly.
func (e *Engine) RegisterTable(name string, t *table.Table) error {
	if name == "" || t == nil {
		return fmt.Errorf("core: table registration needs a name and data")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return fmt.Errorf("core: table %q already registered", name)
	}
	if e.cfg.Backing != table.BackingRaw && !t.Lazy() {
		// Compress attaches zones as a side effect (the encoder computes
		// per-block envelopes anyway), so the DisableZoneMaps ablation
		// clears them afterwards rather than skipping the build.
		t = table.Compress(t)
		if e.cfg.DisableZoneMaps {
			t.DropZones()
		}
	}
	if !e.cfg.DisableZoneMaps {
		t.BuildZones()
	}
	e.tables[name] = &registeredTable{full: t}
	e.gen.Add(1)
	e.recordStorage(name, t)
	return nil
}

// CatalogGeneration returns the catalog generation counter: it increases
// on every registration mutation and never otherwise. Cached answers are
// keyed by it, so a reader holding a generation can tell whether any
// answer computed under it is still current.
func (e *Engine) CatalogGeneration() uint64 { return e.gen.Load() }

// recordStorage publishes per-table storage gauges: the logical
// (backing-invariant) size and the resident physical size. Called under
// the engine lock from RegisterTable.
func (e *Engine) recordStorage(name string, t *table.Table) {
	if e.obs == nil {
		return
	}
	reg := e.obs.Registry()
	reg.Gauge("aqp_storage_logical_bytes",
		"Logical (uncompressed) bytes per registered table.",
		"table", name).Set(t.SizeBytes())
	reg.Gauge("aqp_storage_resident_bytes",
		"Resident physical bytes per registered table (post-compression).",
		"table", name).Set(t.PhysicalSizeBytes())
}

// RegisterUDF registers a user-defined aggregate. Names are matched
// case-insensitively in SQL (stored upper-cased). The registry is replaced
// copy-on-write so queries already executing keep their snapshot.
func (e *Engine) RegisterUDF(name string, fn exec.UDF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := make(exec.Registry, len(e.udfs)+1)
	for k, v := range e.udfs {
		next[k] = v
	}
	next[upper(name)] = fn
	e.udfs = next
	e.gen.Add(1)
}

// udfRegistry returns the current UDF snapshot. The returned map is never
// mutated after publication, so callers may read it without locks.
func (e *Engine) udfRegistry() exec.Registry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.udfs
}

// snapshotTable returns a point-in-time copy of one table's catalog entry:
// the slice headers are copied under the read lock, and registration only
// ever replaces (never mutates) the underlying arrays, so the snapshot
// stays consistent for the rest of the query.
func (e *Engine) snapshotTable(name string) (*registeredTable, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rt, ok := e.tables[name]
	if !ok {
		return nil, false
	}
	cp := *rt
	return &cp, true
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// BuildSamples draws uniform random samples (without replacement) of the
// given row counts from the named table and adds them to its catalog,
// shuffled so that any contiguous subset is itself a random sample. The
// catalog slice is rebuilt copy-on-write: queries snapshotted before the
// call keep seeing the old catalog.
func (e *Engine) BuildSamples(name string, rowCounts ...int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rt, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("core: unknown table %q", name)
	}
	samples := append([]*exec.StoredTable(nil), rt.samples...)
	for _, n := range rowCounts {
		if n <= 0 || n > rt.full.NumRows() {
			return fmt.Errorf("core: sample size %d invalid for table %q (%d rows)",
				n, name, rt.full.NumRows())
		}
		s := sample.TableWithoutReplacement(e.src.Split(), rt.full, n)
		if e.cfg.SampleBacking != table.BackingRaw && !s.Lazy() {
			// Compressed samples mirror RegisterTable's backing treatment:
			// Compress attaches zones, and the ablation drops them after.
			s = table.Compress(s)
			if e.cfg.DisableZoneMaps {
				s.DropZones()
			}
		}
		if !e.cfg.DisableZoneMaps {
			s.BuildZones()
		}
		samples = append(samples, &exec.StoredTable{
			Data:    s,
			PopRows: rt.full.NumRows(),
			Cached:  true,
		})
	}
	sort.Slice(samples, func(i, j int) bool {
		return samples[i].Data.NumRows() < samples[j].Data.NumRows()
	})
	rt.samples = samples
	e.gen.Add(1)
	return nil
}

// AggAnswer is one aggregate's answer with its error bar and diagnostic
// verdict.
type AggAnswer struct {
	// Name is the output alias.
	Name string
	// Estimate is the approximate answer θ(S) (or the exact answer after
	// fallback).
	Estimate float64
	// ErrorBar is the α confidence interval; zero half-width after an
	// exact fallback.
	ErrorBar estimator.Interval
	// RelErr is the relative error bound (half-width / |estimate|).
	RelErr float64
	// Technique names the error-estimation method used.
	Technique string
	// DiagnosticOK reports the runtime diagnostic's verdict (true when
	// diagnostics are disabled or the answer is exact).
	DiagnosticOK bool
	// DiagnosticReason explains a rejection.
	DiagnosticReason string
	// Exact marks an answer computed on the full dataset.
	Exact bool
}

// GroupAnswer is a group's aggregates.
type GroupAnswer struct {
	Key  string
	Aggs []AggAnswer
}

// Answer is the engine's response to one query.
type Answer struct {
	SQL    string
	Groups []GroupAnswer
	// SampleRows is the size of the sample used (0 for exact execution).
	SampleRows int
	// PopulationRows is the full table's row count at execution time —
	// with SampleRows it gives the sample fraction the workload profiler
	// records.
	PopulationRows int
	// Selectivity is the fraction of scanned rows that survived the
	// predicate in the main execution pass, before any fallback re-run
	// (-1 when nothing was scanned).
	Selectivity float64
	// BootstrapKUsed is the largest bootstrap replicate count the adaptive
	// stopping rule actually ran across the query's aggregates (0 when no
	// bootstrap ran). It is at most Plan.Opt.BootstrapK, the budget.
	BootstrapKUsed int
	// Plan is the executed logical plan.
	Plan *plan.Plan
	// Counters meters the physical work.
	Counters exec.Counters
	// SharedScan marks an answer produced from a shared-scan batch: the
	// physical pass was shared with other queries (and Counters carries
	// only this query's share of it).
	SharedScan bool
	// Cached marks an answer replayed from the engine's answer cache
	// without executing. Its Groups are bit-identical to what re-execution
	// would produce; Counters are zeroed because no physical work happened,
	// and Elapsed is the cache-lookup time.
	Cached bool
	// Elapsed is the local wall-clock execution time.
	Elapsed time.Duration
	// Simulated, when the engine has a cluster model attached, is the
	// production-scale latency breakdown.
	Simulated *cluster.Breakdown
}

// FellBack reports whether any aggregate fell back to exact execution.
func (a *Answer) FellBack() bool {
	for _, g := range a.Groups {
		for _, agg := range g.Aggs {
			if agg.Exact {
				return true
			}
		}
	}
	return false
}

// planOptions assembles plan.Options from the engine config for a sample
// of n rows. kCap, when positive, caps the bootstrap resample count below
// the engine default (the serving layer's per-query resample budget).
func (e *Engine) planOptions(n int, needBootstrap bool, kCap int) plan.Options {
	opt := plan.DefaultOptions(n)
	opt.Alpha = e.cfg.alpha()
	opt.BootstrapK = e.cfg.bootstrapK()
	if kCap > 0 && kCap < opt.BootstrapK {
		opt.BootstrapK = kCap
	}
	if !needBootstrap {
		// Closed-form-only queries need no resamples: error bars and the
		// diagnostic's ξ both come from closed forms (QSet-1 behaviour).
		opt.BootstrapK = 0
	}
	opt.Diagnostics = !e.cfg.SkipDiagnostics
	if opt.Diagnostics {
		// Ladder must fit the sample AND be statistically meaningful:
		// sub-32-row subsamples produce junk verdicts, so diagnostics are
		// skipped (answers still carry error bars) for tiny samples.
		b3 := n / (2 * opt.DiagP)
		if b3 < 32 {
			opt.Diagnostics = false
		} else {
			opt.DiagSizes = []int{b3 / 4, b3 / 2, b3}
		}
	}
	opt.ScanConsolidation = !e.cfg.DisableScanConsolidation
	opt.OperatorPushdown = !e.cfg.DisableOperatorPushdown
	return opt
}

// Explain parses and plans the query and returns the plan tree rendering.
func (e *Engine) Explain(query string) (string, error) {
	def, rt, err := e.analyze(nil, query)
	if err != nil {
		return "", err
	}
	n := rt.full.NumRows()
	needBootstrap := !def.ClosedFormOK()
	if len(rt.samples) > 0 {
		n = rt.samples[len(rt.samples)-1].Data.NumRows()
	}
	p, err := plan.Build(def, e.planOptions(n, needBootstrap, 0))
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// queryID returns a stable identifier for error wrapping: the trace's id
// when telemetry is on, an engine-local counter otherwise, plus a prefix of
// the SQL so errors are attributable without a trace ring at hand.
func (e *Engine) queryID(qt *obs.QueryTrace, query string) string {
	id := qt.ID()
	if id == 0 {
		id = e.qid.Add(1)
	}
	if len(query) > 48 {
		query = query[:48] + "..."
	}
	return fmt.Sprintf("q%d (%s)", id, query)
}

// analyze parses and resolves the query against a point-in-time catalog
// snapshot: the returned *registeredTable is a private copy whose slices
// are never mutated, so the rest of the query runs lock-free.
func (e *Engine) analyze(qt *obs.QueryTrace, query string) (*plan.QueryDef, *registeredTable, error) {
	span := qt.StartSpan(obs.StageParse)
	defer span.End()
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: parse: %w", e.queryID(qt, query), err)
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, nil, fmt.Errorf("core: %s: only single SELECT statements are accepted at the API (UNION ALL is an internal rewrite)", e.queryID(qt, query))
	}
	udfs := e.udfRegistry()
	def, err := plan.Analyze(sel, func(name string) bool {
		_, ok := udfs[name]
		return ok
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s: analyze: %w", e.queryID(qt, query), err)
	}
	rt, ok := e.snapshotTable(def.Table)
	if !ok {
		return nil, nil, fmt.Errorf("core: %s: unknown table %q", e.queryID(qt, query), def.Table)
	}
	span.SetAttr("table", def.Table)
	span.AddInt("aggregates", int64(len(def.Aggs)))
	return def, rt, nil
}
