package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/table"
)

// execConfig assembles the executor configuration for one stage span,
// attaching the engine's cross-query cache layers (nil when caching is
// off, which reproduces decode-every-time execution exactly).
func (e *Engine) execConfig(span *obs.Span) exec.Config {
	return exec.Config{
		Workers: e.cfg.workers(),
		Seed:    e.cfg.Seed,
		Span:    span,
		Blocks:  e.blocks,
		Preds:   e.preds,
	}
}

// answerKey builds the answer-cache key: catalog generation, resample
// cap, and whitespace-canonicalized SQL. The generation makes every
// registration mutation an instant invalidation; the kCap keeps a
// serving-layer-capped answer from being replayed to an uncapped caller.
func answerCacheKey(gen uint64, kCap int, query string) string {
	return fmt.Sprintf("g%d|k%d|%s", gen, kCap, cache.CanonicalSQL(query))
}

// answerCacheGet returns a private deep clone of a cached answer for
// (gen, query, kCap), or nil on a miss. The clone carries zeroed Counters
// (no physical work happened) and Cached=true.
func (e *Engine) answerCacheGet(gen uint64, query string, kCap int) *Answer {
	if e.answers == nil {
		return nil
	}
	v, ok := e.answers.Get(answerCacheKey(gen, kCap, query))
	if !ok {
		return nil
	}
	src := v.(*Answer)
	ans := *src
	ans.Groups = append([]GroupAnswer(nil), src.Groups...)
	for gi := range ans.Groups {
		ans.Groups[gi].Aggs = append([]AggAnswer(nil), src.Groups[gi].Aggs...)
	}
	if src.Simulated != nil {
		sim := *src.Simulated
		ans.Simulated = &sim
	}
	ans.Counters = exec.Counters{}
	ans.Cached = true
	return &ans
}

// answerCachePut stores a deep clone of a finished answer under the
// generation the query STARTED at — if the catalog changed mid-flight the
// entry lands under the old generation and is never served again, rather
// than poisoning the new one.
func (e *Engine) answerCachePut(gen uint64, query string, kCap int, ans *Answer) {
	if e.answers == nil || ans == nil || ans.Cached {
		return
	}
	cp := *ans
	cp.Groups = append([]GroupAnswer(nil), ans.Groups...)
	for gi := range cp.Groups {
		cp.Groups[gi].Aggs = append([]AggAnswer(nil), ans.Groups[gi].Aggs...)
	}
	if ans.Simulated != nil {
		sim := *ans.Simulated
		cp.Simulated = &sim
	}
	e.answers.Put(answerCacheKey(gen, kCap, query), &cp)
}

// CachedAnswer returns a replay of a finished answer for the exact same
// canonical SQL (and resample cap) when one is cached under the current
// catalog generation. It performs no execution and consumes no admission
// or worker resources — the serving layer calls it BEFORE spending an
// admission slot. The replayed answer still gets a query trace, event-log
// record and history entry (marked cached); the watchdog is NOT
// re-observed, since no new statistical work happened. ok=false when the
// answer cache is disabled or has no entry.
func (e *Engine) CachedAnswer(ctx context.Context, query string, kCap int) (*Answer, bool) {
	if e.answers == nil {
		return nil, false
	}
	gen := e.gen.Load()
	start := time.Now()
	ans := e.answerCacheGet(gen, query, kCap)
	if ans == nil {
		return nil, false
	}
	ctx, tc := obs.EnsureTrace(ctx)
	qt := e.obs.StartQuery(query)
	qt.SetTraceContext(tc)
	qt.Root().SetAttr("answer_cached", true)
	ans.Elapsed = time.Since(start)
	e.finishQuery(ctx, qt, query, ans, nil, true)
	return ans, true
}

// CacheStats is the /debug/cache document: per-layer counters plus the
// per-table hot residency breakdown.
type CacheStats struct {
	Enabled    bool               `json:"enabled"`
	Generation uint64             `json:"catalog_generation"`
	Block      cache.BlockStats   `json:"block"`
	Predicate  cache.PredStats    `json:"predicate"`
	Answer     cache.AnswerStats  `json:"answer"`
	Tables     []TableCacheStats  `json:"tables,omitempty"`
}

// TableCacheStats reports how much of one stored table (a registered full
// table or one of its samples) is resident in the block cache.
type TableCacheStats struct {
	// Name is the registered table name; samples append "/sample[rows]".
	Name string `json:"name"`
	// ResidentBytes is decoded bytes of this table held in the cache.
	ResidentBytes int64 `json:"resident_bytes"`
	// PhysicalBytes is the table's stored (encoded) footprint.
	PhysicalBytes int64 `json:"physical_bytes"`
	// LogicalBytes is the decoded size of the whole table; HotFraction is
	// ResidentBytes/LogicalBytes — how much of the table's decoded form is
	// being kept hot.
	LogicalBytes int64   `json:"logical_bytes"`
	HotFraction  float64 `json:"hot_fraction"`
}

// residentBytes sums the block cache's residency over one stored table's
// columns (keyed by base-column identity).
func (e *Engine) residentBytes(t *table.Table) int64 {
	if e.blocks == nil || t == nil {
		return 0
	}
	var n int64
	for i := 0; i < t.NumCols(); i++ {
		if base, _ := table.BlockBase(t.Column(i)); base != nil {
			n += e.blocks.BytesFor(base)
		}
	}
	return n
}

// CacheStatsSnapshot assembles the cache layers' counters and the
// per-table residency breakdown, sorted by resident bytes descending and
// truncated to limit entries (<= 0 means no table breakdown).
func (e *Engine) CacheStatsSnapshot(limit int) CacheStats {
	st := CacheStats{
		Enabled:    e.blocks != nil,
		Generation: e.gen.Load(),
		Block:      e.blocks.Stats(),
		Predicate:  e.preds.Stats(),
		Answer:     e.answers.Stats(),
	}
	if e.blocks == nil || limit <= 0 {
		return st
	}
	e.mu.RLock()
	type named struct {
		name string
		t    *table.Table
	}
	var stored []named
	for name, rt := range e.tables {
		stored = append(stored, named{name, rt.full})
		for _, s := range rt.samples {
			stored = append(stored,
				named{fmt.Sprintf("%s/sample[%d]", name, s.Data.NumRows()), s.Data})
		}
		for _, ss := range rt.stratified {
			stored = append(stored,
				named{fmt.Sprintf("%s/stratified[%s]", name, ss.keyColumn), ss.st.Data})
		}
	}
	e.mu.RUnlock()
	for _, nt := range stored {
		res := e.residentBytes(nt.t)
		if res == 0 {
			continue
		}
		ts := TableCacheStats{
			Name:          nt.name,
			ResidentBytes: res,
			PhysicalBytes: nt.t.PhysicalSizeBytes(),
			LogicalBytes:  nt.t.SizeBytes(),
		}
		if ts.LogicalBytes > 0 {
			ts.HotFraction = float64(res) / float64(ts.LogicalBytes)
			if ts.HotFraction > 1 {
				ts.HotFraction = 1 // accounting overhead can round above the logical size
			}
		}
		st.Tables = append(st.Tables, ts)
	}
	sort.Slice(st.Tables, func(i, j int) bool {
		if st.Tables[i].ResidentBytes != st.Tables[j].ResidentBytes {
			return st.Tables[i].ResidentBytes > st.Tables[j].ResidentBytes
		}
		return st.Tables[i].Name < st.Tables[j].Name
	})
	if len(st.Tables) > limit {
		st.Tables = st.Tables[:limit]
	}
	return st
}

// cacheHandler serves /debug/cache as JSON. The table breakdown honours
// the debug pages' shared ?limit= clamp (obs.LimitParam: default 64,
// cap 1024).
func (e *Engine) cacheHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, _ := url.ParseQuery(r.URL.RawQuery)
		limit := obs.LimitParam(q, obs.DebugLimitDefault, obs.DebugLimitMax)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.CacheStatsSnapshot(limit))
	})
}
