package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/table"
)

// TestEngineBackingBitEquality drives two whole engines — one over raw
// storage, one with Config.Backing compressing every registered table —
// through sample builds and the full approximate pipeline, and asserts
// every answer (estimate, error bar, technique, verdict) is bit-identical.
func TestEngineBackingBitEquality(t *testing.T) {
	queries := []string{
		"SELECT AVG(Time) FROM Sessions",
		"SELECT COUNT(*), SUM(Time) FROM Sessions WHERE City = 'NYC'",
		"SELECT City, AVG(Time) FROM Sessions GROUP BY City",
		"SELECT PERCENTILE(Time, 0.9) FROM Sessions WHERE Time > 40",
	}
	build := func(backing table.Backing) *Engine {
		e, _ := buildSessions(t, Config{Seed: 61, Backing: backing}, 40000)
		if err := e.BuildSamples("Sessions", 2000, 8000); err != nil {
			t.Fatal(err)
		}
		return e
	}
	raw := build(table.BackingRaw)
	comp := build(table.BackingCompressed)
	for _, q := range queries {
		a, err := raw.Query(q)
		if err != nil {
			t.Fatalf("raw %q: %v", q, err)
		}
		b, err := comp.Query(q)
		if err != nil {
			t.Fatalf("compressed %q: %v", q, err)
		}
		if len(a.Groups) != len(b.Groups) {
			t.Fatalf("%q: %d groups vs %d", q, len(b.Groups), len(a.Groups))
		}
		for gi := range a.Groups {
			ga, gb := a.Groups[gi], b.Groups[gi]
			if ga.Key != gb.Key {
				t.Fatalf("%q: group %q vs %q", q, gb.Key, ga.Key)
			}
			for ai := range ga.Aggs {
				x, y := ga.Aggs[ai], gb.Aggs[ai]
				if x.Estimate != y.Estimate ||
					x.ErrorBar.Lo() != y.ErrorBar.Lo() ||
					x.ErrorBar.Hi() != y.ErrorBar.Hi() ||
					x.Technique != y.Technique ||
					x.DiagnosticOK != y.DiagnosticOK {
					t.Errorf("%q group %q agg %s: %+v != %+v", q, ga.Key, x.Name, y, x)
				}
			}
		}
	}
}

// TestStorageGauges pins the aqp_storage_* registration-time metrics: the
// logical size is backing-invariant, the resident size shrinks under
// compression.
func TestStorageGauges(t *testing.T) {
	tr := obs.NewTracer(obs.Options{})
	e, tbl := buildSessions(t, Config{Seed: 62, Obs: tr, Backing: table.BackingCompressed}, 30000)
	defer e.Close()
	reg := tr.Registry()
	logical := reg.Gauge("aqp_storage_logical_bytes", "", "table", "Sessions").Value()
	resident := reg.Gauge("aqp_storage_resident_bytes", "", "table", "Sessions").Value()
	if logical != tbl.SizeBytes() {
		t.Errorf("logical gauge %d, want %d", logical, tbl.SizeBytes())
	}
	if resident <= 0 || resident >= logical {
		t.Errorf("resident gauge %d not in (0, %d)", resident, logical)
	}
}

// TestSampleBuildStreamsBlocks asserts the one-pass property of sample
// builds over compressed tables: gathering the sample decodes each block
// of each column at most once, no matter how shuffled the row draw is.
func TestSampleBuildStreamsBlocks(t *testing.T) {
	n := 16 * table.BlockRows
	e, _ := buildSessions(t, Config{Seed: 63, Backing: table.BackingCompressed}, n)
	before := table.DecodedBlocks()
	if err := e.BuildSamples("Sessions", n/4); err != nil {
		t.Fatal(err)
	}
	decodes := table.DecodedBlocks() - before
	// 2 columns x 16 blocks is the streaming ceiling; a row-at-a-time
	// gather would decode ~n/4 blocks per column.
	if maxDecodes := int64(2 * 16); decodes > maxDecodes {
		t.Errorf("sample build decoded %d blocks, want <= %d", decodes, maxDecodes)
	}
}

// TestStratifiedSampleOverCompressed covers the lazy string-key path in
// BuildStratifiedSample and the per-group answers it feeds.
func TestStratifiedSampleOverCompressed(t *testing.T) {
	raw, _ := buildSessions(t, Config{Seed: 64}, 20000)
	comp, _ := buildSessions(t, Config{Seed: 64, Backing: table.BackingCompressed}, 20000)
	for _, e := range []*Engine{raw, comp} {
		if err := e.BuildStratifiedSample("Sessions", "City", 800); err != nil {
			t.Fatal(err)
		}
	}
	q := "SELECT City, AVG(Time), COUNT(*) FROM Sessions GROUP BY City"
	a, err := raw.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := comp.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range a.Groups {
		for ai := range a.Groups[gi].Aggs {
			x, y := a.Groups[gi].Aggs[ai], b.Groups[gi].Aggs[ai]
			if x.Estimate != y.Estimate {
				t.Errorf("group %q agg %s: %v != %v",
					a.Groups[gi].Key, x.Name, y.Estimate, x.Estimate)
			}
		}
	}
}
