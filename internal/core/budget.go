package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/sample"
)

// EstimateRequiredRows predicts how many sample rows the query needs to
// meet the relative error bound at the engine's confidence level, using
// pilot moments measured on the table's smallest sample (the Fig. 1
// calculation exposed as an API). It requires a single closed-form-able
// aggregate; bootstrap-only queries return an error since their error
// does not follow a simple 1/√n law for all aggregates.
func (e *Engine) EstimateRequiredRows(query string, relErr float64) (int, error) {
	if relErr <= 0 {
		return 0, fmt.Errorf("core: relative error bound must be positive")
	}
	def, rt, err := e.analyze(nil, query)
	if err != nil {
		return 0, err
	}
	if len(rt.samples) == 0 {
		return 0, fmt.Errorf("core: table %q has no samples to pilot on", def.Table)
	}
	if len(def.Aggs) != 1 || !def.ClosedFormOK() {
		return 0, fmt.Errorf("core: required-rows estimation needs a single closed-form aggregate")
	}
	pilot := rt.samples[0]
	ans, err := e.runApproximate(context.Background(), nil, query, def, rt, pilot, 0)
	if err != nil {
		return 0, fmt.Errorf("core: pilot for required-rows estimate: %w", err)
	}
	agg := ans.Groups[0].Aggs[0]
	if math.IsNaN(agg.RelErr) || math.IsInf(agg.RelErr, 0) || agg.RelErr <= 0 {
		return 0, fmt.Errorf("core: pilot produced no usable error estimate")
	}
	// Closed-form half-widths shrink as 1/√n.
	n := float64(pilot.Data.NumRows()) * (agg.RelErr / relErr) * (agg.RelErr / relErr)
	if n < 1 {
		n = 1
	}
	if n > math.MaxInt32 {
		return math.MaxInt32, nil
	}
	return int(math.Ceil(n)), nil
}

// QueryWithTimeBudget answers the query on the largest sample whose
// predicted execution time fits the budget (BlinkDB's response-time
// constrained queries). Prediction calibrates per-row cost on the
// smallest sample, so the first budgeted query on a table pays one pilot
// execution.
func (e *Engine) QueryWithTimeBudget(query string, budget time.Duration) (*Answer, error) {
	return e.RunWithTimeBudget(context.Background(), query, budget)
}

// RunWithTimeBudget is QueryWithTimeBudget honouring cancellation.
func (e *Engine) RunWithTimeBudget(ctx context.Context, query string, budget time.Duration) (ans *Answer, err error) {
	if budget <= 0 {
		return nil, fmt.Errorf("core: time budget must be positive")
	}
	ctx, tc := obs.EnsureTrace(ctx)
	qt := e.obs.StartQuery(query)
	qt.SetTraceContext(tc)
	defer func() { e.finishQuery(ctx, qt, query, ans, err, true) }()
	def, rt, err := e.analyze(qt, query)
	if err != nil {
		return nil, err
	}
	if len(rt.samples) == 0 {
		return e.runExact(ctx, qt, qt.Root(), query, def, rt)
	}
	pilot := rt.samples[0]
	pilotAns, err := e.runApproximate(ctx, qt, query, def, rt, pilot, 0)
	if err != nil {
		return nil, fmt.Errorf("core: budget pilot: %w", err)
	}
	if pilotAns.Elapsed >= budget {
		// Even the smallest sample blows the budget; it is still the best
		// we can do.
		return pilotAns, nil
	}
	perRow := float64(pilotAns.Elapsed) / float64(pilot.Data.NumRows())
	maxRows := int(float64(budget) / perRow * 0.8) // 20% headroom
	best := pilot
	for _, st := range rt.samples {
		if st.Data.NumRows() <= maxRows {
			best = st
		}
	}
	if best == pilot {
		return pilotAns, nil
	}
	return e.runApproximate(ctx, qt, query, def, rt, best, 0)
}

// RequiredSampleSizeForError is a convenience re-export of the Fig. 1
// closed-form calculation for callers holding raw pilot statistics.
func RequiredSampleSizeForError(mean, stddev, relErr, alpha float64) int {
	return sample.RequiredSampleSize(mean, stddev, relErr, alpha)
}
