package core

import (
	"testing"
	"time"
)

func TestEstimateRequiredRows(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 20, SkipDiagnostics: true}, 200000)
	if err := e.BuildSamples("Sessions", 2000, 50000); err != nil {
		t.Fatal(err)
	}
	loose, err := e.EstimateRequiredRows("SELECT AVG(Time) FROM Sessions", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := e.EstimateRequiredRows("SELECT AVG(Time) FROM Sessions", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	// Tightening the bound 10x should require ~100x the rows.
	ratio := float64(tight) / float64(loose)
	if ratio < 50 || ratio > 200 {
		t.Errorf("rows ratio for 10x tighter bound = %v, want ~100", ratio)
	}
	// Sanity: the prediction should be actionable — for Time with CV
	// ~0.33, 5% error needs only a few hundred rows.
	if loose < 20 || loose > 5000 {
		t.Errorf("loose-bound rows = %d, implausible", loose)
	}
}

func TestEstimateRequiredRowsErrors(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 21, SkipDiagnostics: true}, 50000)
	if _, err := e.EstimateRequiredRows("SELECT AVG(Time) FROM Sessions", -1); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := e.EstimateRequiredRows("SELECT AVG(Time) FROM Sessions", 0.01); err == nil {
		t.Error("sampleless table accepted")
	}
	if err := e.BuildSamples("Sessions", 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimateRequiredRows("SELECT MAX(Time) FROM Sessions", 0.01); err == nil {
		t.Error("non-closed-form aggregate accepted")
	}
	if _, err := e.EstimateRequiredRows("SELECT AVG(Time), SUM(Time) FROM Sessions", 0.01); err == nil {
		t.Error("multi-aggregate query accepted")
	}
}

func TestQueryWithTimeBudget(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 22, SkipDiagnostics: true}, 400000)
	if err := e.BuildSamples("Sessions", 2000, 20000, 200000); err != nil {
		t.Fatal(err)
	}
	// A generous budget should pick a large sample.
	generous, err := e.QueryWithTimeBudget("SELECT AVG(Time) FROM Sessions", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if generous.SampleRows < 20000 {
		t.Errorf("generous budget used only %d rows", generous.SampleRows)
	}
	// A microscopic budget sticks with the pilot sample.
	tiny, err := e.QueryWithTimeBudget("SELECT AVG(Time) FROM Sessions", time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.SampleRows != 2000 {
		t.Errorf("tiny budget used %d rows, want pilot 2000", tiny.SampleRows)
	}
	if _, err := e.QueryWithTimeBudget("SELECT AVG(Time) FROM Sessions", 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestQueryWithTimeBudgetNoSamples(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 23}, 10000)
	ans, err := e.QueryWithTimeBudget("SELECT AVG(Time) FROM Sessions", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Groups[0].Aggs[0].Exact {
		t.Error("sampleless table should answer exactly")
	}
}

func TestRequiredSampleSizeForErrorReexport(t *testing.T) {
	n := RequiredSampleSizeForError(10, 5, 0.1, 0.95)
	if n < 90 || n > 102 {
		t.Errorf("n = %d, want ~96", n)
	}
}
