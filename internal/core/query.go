package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimator"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/stats"
)

// RunOptions tunes a single Run call without mutating engine configuration,
// so a serving layer can cap per-query work while other queries run
// concurrently with the engine defaults.
type RunOptions struct {
	// BootstrapK, when positive, caps the resample count for this query
	// below the engine's configured K (it never raises it). The serving
	// layer uses it as a per-query resample budget.
	BootstrapK int
	// QueueWait, when positive, records time the query spent waiting in
	// an admission queue before the engine was invoked. It lands in the
	// trace snapshot (queue_wait_ms), /debug/queries, the event log and
	// aqpshell -explain; it does not affect execution.
	QueueWait time.Duration
}

// Query answers the SQL query approximately on the table's largest sample,
// with error bars and a diagnostic verdict per aggregate. Tables without
// samples are answered exactly. Aggregates whose diagnostic rejects error
// estimation fall back to exact execution (unless disabled).
func (e *Engine) Query(query string) (*Answer, error) {
	return e.Run(context.Background(), query)
}

// Run is Query honouring cancellation: ctx is threaded through planning,
// scan, bootstrap resampling (checked once per 8 KiB kernel block), the
// adaptive-K loop, and the diagnostic worker pool. A cancelled query
// returns an error wrapping ctx.Err() (so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) hold) that carries the qN
// query identifier, and all goroutines it spawned exit before Run returns.
// Engines are safe for concurrent Run calls; answers are bit-identical to
// serial execution because all randomness derives from (seed, stream) pairs
// owned by the query, never from shared mutable state.
func (e *Engine) Run(ctx context.Context, query string) (*Answer, error) {
	return e.RunWithOptions(ctx, query, RunOptions{})
}

// RunWithOptions is Run with per-query overrides.
func (e *Engine) RunWithOptions(ctx context.Context, query string, opts RunOptions) (ans *Answer, err error) {
	var start time.Time
	gen := e.gen.Load()
	if e.answers != nil {
		start = time.Now()
	}
	ctx, tc := obs.EnsureTrace(ctx)
	qt := e.obs.StartQuery(query)
	qt.SetTraceContext(tc)
	if opts.QueueWait > 0 {
		qt.SetQueueWait(opts.QueueWait)
	}
	defer func() { e.finishQuery(ctx, qt, query, ans, err, true) }()
	// Answer reuse: a finished answer for the same canonical SQL, resample
	// cap and catalog generation replays without executing. Re-execution
	// would be bit-identical anyway (all randomness is (seed, stream)
	// derived), so reuse is answer-neutral; the generation in the key makes
	// RegisterTable/BuildSamples invalidate instantly.
	if hit := e.answerCacheGet(gen, query, opts.BootstrapK); hit != nil {
		hit.Elapsed = time.Since(start)
		qt.Root().SetAttr("answer_cached", true)
		return hit, nil
	}
	def, rt, err := e.analyze(qt, query)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", e.queryID(qt, query), err)
	}
	st := e.pickSample(def, rt)
	if st == nil {
		ans, err = e.runExact(ctx, qt, qt.Root(), query, def, rt)
		if err != nil {
			return nil, err
		}
		e.answerCachePut(gen, query, opts.BootstrapK, ans)
		return ans, nil
	}
	ans, err = e.runApproximate(ctx, qt, query, def, rt, st, opts.BootstrapK)
	if err != nil {
		return nil, err
	}
	if !e.cfg.DisableFallback {
		if err := e.applyFallback(ctx, qt, ans, def, rt); err != nil {
			return nil, err
		}
	}
	e.answerCachePut(gen, query, opts.BootstrapK, ans)
	return ans, nil
}

// QueryWithErrorBound answers the query using the smallest sample whose
// error bars satisfy the relative error bound at the engine's confidence
// level (BlinkDB's error-constrained queries). It escalates through the
// sample catalog and finally to exact execution when the bound cannot be
// met approximately or the diagnostic rejects error estimation.
func (e *Engine) QueryWithErrorBound(query string, relErr float64) (*Answer, error) {
	return e.RunWithErrorBound(context.Background(), query, relErr)
}

// RunWithErrorBound is QueryWithErrorBound honouring cancellation; ctx is
// checked between sample escalations and inside each execution.
func (e *Engine) RunWithErrorBound(ctx context.Context, query string, relErr float64) (out *Answer, err error) {
	if relErr <= 0 {
		return nil, fmt.Errorf("core: relative error bound must be positive")
	}
	ctx, tc := obs.EnsureTrace(ctx)
	qt := e.obs.StartQuery(query)
	qt.SetTraceContext(tc)
	defer func() { e.finishQuery(ctx, qt, query, out, err, true) }()
	def, rt, err := e.analyze(qt, query)
	if err != nil {
		return nil, err
	}
	if len(rt.samples) == 0 {
		return e.runExact(ctx, qt, qt.Root(), query, def, rt)
	}
	var last *Answer
	minRows := 0 // samples smaller than this are provably insufficient
	for _, st := range rt.samples {
		if st.Data.NumRows() < minRows {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %s: %w", e.queryID(qt, query), err)
		}
		ans, err := e.runApproximate(ctx, qt, query, def, rt, st, 0)
		if err != nil {
			return nil, err
		}
		last = ans
		ok := true
		worstRel := 0.0
		for _, g := range ans.Groups {
			for _, a := range g.Aggs {
				if !a.DiagnosticOK || math.IsNaN(a.RelErr) || a.RelErr > relErr {
					ok = false
				}
				if !math.IsNaN(a.RelErr) && a.RelErr > worstRel {
					worstRel = a.RelErr
				}
			}
		}
		if ok {
			return ans, nil
		}
		// For closed-form queries the error shrinks as 1/√n: project the
		// required size from this run and skip samples that cannot
		// possibly satisfy the bound (BlinkDB's sample-selection jump).
		if def.ClosedFormOK() && worstRel > relErr && !math.IsInf(worstRel, 0) {
			ratio := worstRel / relErr
			minRows = int(float64(st.Data.NumRows()) * ratio * ratio * 0.8)
		}
	}
	if e.cfg.DisableFallback {
		return last, nil
	}
	return e.fallbackExact(ctx, qt, query, def, rt, "error bound unmet on all samples")
}

// pickSample chooses the sample for an unconstrained query: a stratified
// sample matching the GROUP BY key when one exists and every aggregate is
// scale-invariant (stratification biases population-scaled SUM/COUNT),
// otherwise the largest uniform sample. Nil means "run exactly".
func (e *Engine) pickSample(def *plan.QueryDef, rt *registeredTable) *exec.StoredTable {
	if s := rt.stratifiedFor(def); s != nil && scaleInvariant(def) {
		return s.st
	}
	if len(rt.samples) == 0 {
		return nil
	}
	return rt.samples[len(rt.samples)-1]
}

// scaleInvariant reports whether every aggregate is unaffected by
// non-uniform per-group sampling rates.
func scaleInvariant(def *plan.QueryDef) bool {
	for _, a := range def.Aggs {
		switch a.Kind {
		case estimator.Sum, estimator.Count:
			return false
		}
	}
	return true
}

// QueryExact answers the query exactly on the full dataset.
func (e *Engine) QueryExact(query string) (*Answer, error) {
	return e.RunExact(context.Background(), query)
}

// RunExact is QueryExact honouring cancellation.
func (e *Engine) RunExact(ctx context.Context, query string) (ans *Answer, err error) {
	ctx, tc := obs.EnsureTrace(ctx)
	qt := e.obs.StartQuery(query)
	qt.SetTraceContext(tc)
	defer func() { e.finishQuery(ctx, qt, query, ans, err, false) }()
	def, rt, err := e.analyze(qt, query)
	if err != nil {
		return nil, err
	}
	return e.runExact(ctx, qt, qt.Root(), query, def, rt)
}

// runExact executes the query on the full table with no sampling pipeline.
// Stage spans attach under parent so fallback executions nest inside their
// fallback span rather than appearing as a second top-level pipeline.
func (e *Engine) runExact(ctx context.Context, qt *obs.QueryTrace, parent *obs.Span, query string, def *plan.QueryDef, rt *registeredTable) (*Answer, error) {
	start := time.Now()
	planSpan := parent.StartSpan(obs.StagePlan)
	p, err := plan.Build(def, plan.Options{Alpha: e.cfg.alpha()})
	planSpan.SetAttr("mode", "exact")
	planSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: %s: plan: %w", e.queryID(qt, query), err)
	}
	res, err := exec.Run(ctx, p, map[string]*exec.StoredTable{
		def.Table: {Data: rt.full},
	}, e.udfRegistry(), e.execConfig(parent))
	if err != nil {
		return nil, fmt.Errorf("core: %s: exact execution: %w", e.queryID(qt, query), err)
	}
	ans := &Answer{
		SQL:            query,
		Plan:           p,
		Counters:       res.Counters,
		PopulationRows: rt.full.NumRows(),
		Selectivity:    scanSelectivity(res.Counters),
		Elapsed:        time.Since(start),
	}
	for _, g := range res.Groups {
		ga := GroupAnswer{Key: g.Key}
		for _, out := range g.Aggs {
			ga.Aggs = append(ga.Aggs, AggAnswer{
				Name:         out.Spec.Alias,
				Estimate:     out.Value,
				ErrorBar:     estimator.Interval{Center: out.Value},
				RelErr:       0,
				Technique:    "exact",
				DiagnosticOK: true,
				Exact:        true,
			})
		}
		ans.Groups = append(ans.Groups, ga)
	}
	return ans, nil
}

// runApproximate executes the full §5 pipeline on the given sample. kCap,
// when positive, bounds the resample count for this query only.
func (e *Engine) runApproximate(ctx context.Context, qt *obs.QueryTrace, query string, def *plan.QueryDef, rt *registeredTable, st *exec.StoredTable, kCap int) (*Answer, error) {
	start := time.Now()
	p, opt, err := e.buildApproxPlan(qt, query, def, st, kCap)
	if err != nil {
		return nil, err
	}
	res, err := exec.Run(ctx, p, map[string]*exec.StoredTable{def.Table: st},
		e.udfRegistry(), e.execConfig(qt.Root()))
	if err != nil {
		return nil, fmt.Errorf("core: %s: approximate execution: %w", e.queryID(qt, query), err)
	}
	return e.answerFromResult(qt, query, def, opt, p, res, st, start)
}

// buildApproxPlan builds the §5 approximate plan for one query on one
// sample, emitting the plan stage span. It is shared by the solo path
// (runApproximate) and the shared-scan batch path (RunSharedBatch).
func (e *Engine) buildApproxPlan(qt *obs.QueryTrace, query string, def *plan.QueryDef, st *exec.StoredTable, kCap int) (*plan.Plan, plan.Options, error) {
	n := st.Data.NumRows()
	opt := e.planOptions(n, !def.ClosedFormOK(), kCap)
	planSpan := qt.StartSpan(obs.StagePlan)
	p, err := plan.Build(def, opt)
	planSpan.SetAttr("mode", "approximate")
	planSpan.AddInt("sample_rows", int64(n))
	planSpan.AddInt("bootstrap_k", int64(opt.BootstrapK))
	planSpan.SetAttr("consolidated", opt.ScanConsolidation)
	planSpan.SetAttr("diagnostics", opt.Diagnostics)
	planSpan.End()
	if err != nil {
		return nil, opt, fmt.Errorf("core: %s: plan: %w", e.queryID(qt, query), err)
	}
	return p, opt, nil
}

// answerFromResult turns an executor result into an Answer: error bars per
// aggregate (estimate stage span), diagnostic verdicts, and the optional
// cluster simulation.
func (e *Engine) answerFromResult(qt *obs.QueryTrace, query string, def *plan.QueryDef, opt plan.Options, p *plan.Plan, res *exec.Result, st *exec.StoredTable, start time.Time) (*Answer, error) {
	ans := &Answer{
		SQL:            query,
		SampleRows:     res.SampleRows,
		Plan:           p,
		Counters:       res.Counters,
		PopulationRows: st.PopRows,
		Selectivity:    scanSelectivity(res.Counters),
	}
	alpha := e.cfg.alpha()
	estSpan := qt.StartSpan(obs.StageEstimate)
	maxRel := 0.0
	for _, g := range res.Groups {
		ga := GroupAnswer{Key: g.Key}
		for _, out := range g.Aggs {
			aa := AggAnswer{
				Name:         out.Spec.Alias,
				Estimate:     out.Value,
				DiagnosticOK: true,
			}
			iv, technique, err := e.errorBar(out, alpha)
			if err != nil {
				estSpan.End()
				return nil, fmt.Errorf("core: %s: error bar for %s: %w",
					e.queryID(qt, query), out.Spec.Alias, err)
			}
			aa.ErrorBar = iv
			aa.Technique = technique
			aa.RelErr = iv.RelativeError()
			if len(out.Bootstrap) > ans.BootstrapKUsed {
				ans.BootstrapKUsed = len(out.Bootstrap)
			}
			if !math.IsNaN(aa.RelErr) && aa.RelErr > maxRel {
				maxRel = aa.RelErr
			}
			estSpan.AddInt("technique_"+technique, 1)
			if out.Diag != nil {
				aa.DiagnosticOK = out.Diag.OK
				aa.DiagnosticReason = out.Diag.Reason
			}
			ga.Aggs = append(ga.Aggs, aa)
		}
		ans.Groups = append(ans.Groups, ga)
	}
	estSpan.SetAttr("max_rel_err", maxRel)
	estSpan.End()
	ans.Elapsed = time.Since(start)
	if e.cfg.Cluster != nil {
		b := e.simulate(qt, def, opt, res, st)
		ans.Simulated = &b
	}
	return ans, nil
}

// scanSelectivity derives the predicate pass rate from one execution's
// counters (-1 when nothing was scanned).
func scanSelectivity(c exec.Counters) float64 {
	if c.RowsScanned <= 0 {
		return -1
	}
	return float64(c.RowsAfterFilter) / float64(c.RowsScanned)
}

// errorBar computes the confidence interval for one aggregate output using
// the cheapest applicable technique: closed forms when known, otherwise
// the bootstrap distribution the executor already produced.
func (e *Engine) errorBar(out exec.AggOutput, alpha float64) (estimator.Interval, string, error) {
	spec := estimator.Query{Kind: out.Spec.Kind, Pct: out.Spec.Pct}
	if spec.ClosedFormApplicable() && out.Spec.Kind != estimator.Sum &&
		out.Spec.Kind != estimator.Count {
		iv, err := (estimator.ClosedForm{}).Interval(nil, out.Values, spec, alpha)
		if err != nil {
			return estimator.Interval{}, "", err
		}
		return iv, "closed-form", nil
	}
	if out.Spec.Kind == estimator.Sum || out.Spec.Kind == estimator.Count {
		// Scaled sums: closed form on the scaled query the executor built.
		iv, err := closedFormScaledSum(out, alpha)
		if err == nil {
			return iv, "closed-form", nil
		}
		// Fall through to the bootstrap on error.
	}
	if len(out.Bootstrap) == 0 {
		return estimator.Interval{Center: out.Value, HalfWidth: math.NaN()},
			"none", nil
	}
	half := stats.SymmetricHalfWidth(out.Bootstrap, out.Value, alpha)
	return estimator.Interval{Center: out.Value, HalfWidth: half}, "bootstrap", nil
}

// closedFormScaledSum computes the CLT interval for a population-scaled
// SUM/COUNT: θ̂ = c·Σx with c = |D|/|S|, so σ̂ = c·s·√n_filtered.
func closedFormScaledSum(out exec.AggOutput, alpha float64) (estimator.Interval, error) {
	n := len(out.Values)
	if n == 0 {
		return estimator.Interval{}, fmt.Errorf("core: empty aggregation input")
	}
	sum := stats.Sum(out.Values)
	scale := 1.0
	if sum != 0 {
		scale = out.Value / sum
	}
	s2 := stats.SampleVariance(out.Values)
	if math.IsNaN(s2) {
		s2 = 0
	}
	z := stats.StdNormalQuantile(0.5 + alpha/2)
	half := math.Abs(scale) * z * math.Sqrt(s2*float64(n))
	return estimator.Interval{Center: out.Value, HalfWidth: half}, nil
}

// fallbackExact runs the query exactly under a fallback span, recording the
// fallback in the metrics registry.
func (e *Engine) fallbackExact(ctx context.Context, qt *obs.QueryTrace, query string, def *plan.QueryDef, rt *registeredTable, reason string) (*Answer, error) {
	span := qt.StartSpan(obs.StageFallback)
	span.SetAttr("reason", reason)
	qt.Metrics().Counter("aqp_fallbacks_total",
		"Queries (or aggregates) re-answered exactly after the approximate path failed.",
		"reason", reason).Inc()
	ans, err := e.runExact(ctx, qt, span, query, def, rt)
	span.End()
	return ans, err
}

// applyFallback re-answers exactly any aggregate whose diagnostic rejected
// error estimation, replacing its entry in the answer.
func (e *Engine) applyFallback(ctx context.Context, qt *obs.QueryTrace, ans *Answer, def *plan.QueryDef, rt *registeredTable) error {
	needed := false
	for _, g := range ans.Groups {
		for _, a := range g.Aggs {
			if !a.DiagnosticOK {
				needed = true
			}
		}
	}
	if !needed {
		return nil
	}
	exact, err := e.fallbackExact(ctx, qt, ans.SQL, def, rt, "diagnostic rejected")
	if err != nil {
		return err
	}
	exactByKey := map[string][]AggAnswer{}
	for _, g := range exact.Groups {
		exactByKey[g.Key] = g.Aggs
	}
	for gi := range ans.Groups {
		exAggs, ok := exactByKey[ans.Groups[gi].Key]
		if !ok {
			continue
		}
		for ai := range ans.Groups[gi].Aggs {
			if ans.Groups[gi].Aggs[ai].DiagnosticOK {
				continue
			}
			reason := ans.Groups[gi].Aggs[ai].DiagnosticReason
			ans.Groups[gi].Aggs[ai] = exAggs[ai]
			ans.Groups[gi].Aggs[ai].DiagnosticOK = false
			ans.Groups[gi].Aggs[ai].DiagnosticReason = reason
		}
	}
	ans.Counters.Scans += exact.Counters.Scans
	ans.Counters.Subqueries += exact.Counters.Subqueries
	ans.Counters.RowsScanned += exact.Counters.RowsScanned
	ans.Counters.BytesScanned += exact.Counters.BytesScanned
	ans.Counters.BlocksSkipped += exact.Counters.BlocksSkipped
	ans.Counters.BlocksDecoded += exact.Counters.BlocksDecoded
	ans.Counters.DecodeNanos += exact.Counters.DecodeNanos
	ans.Counters.CacheHits += exact.Counters.CacheHits
	ans.Counters.CacheBytes += exact.Counters.CacheBytes
	ans.Elapsed += exact.Elapsed
	return nil
}

// simulate derives the production-scale latency breakdown for the executed
// pipeline from the measured counters.
func (e *Engine) simulate(qt *obs.QueryTrace, def *plan.QueryDef, opt plan.Options, res *exec.Result, st *exec.StoredTable) cluster.Breakdown {
	span := qt.StartSpan(obs.StageClusterSim)
	simStart := time.Now()
	defer span.End()
	actualMB := float64(st.Data.SizeBytes()) / 1e6
	logicalMB := actualMB
	if e.cfg.LogicalSampleMB > 0 {
		logicalMB = e.cfg.LogicalSampleMB
	}
	// Production rows are wider than our lean columnar test rows; size
	// the logical row count by a production bytes-per-row so the CPU and
	// memory terms stay realistic.
	const logicalBytesPerRow = 200
	logicalRows := logicalMB * 1e6 / logicalBytesPerRow
	rowScale := 1.0
	if res.SampleRows > 0 {
		rowScale = logicalRows / float64(res.SampleRows)
	}
	sel := 1.0
	if res.Counters.RowsScanned > 0 {
		sel = float64(res.Counters.RowsAfterFilter) / float64(res.Counters.RowsScanned)
	}
	sizes := make([]int, len(opt.DiagSizes))
	for i, b := range opt.DiagSizes {
		sizes[i] = int(float64(b) * rowScale)
	}
	k := opt.BootstrapK
	if def.ClosedFormOK() {
		k = 0
	}
	shape := cluster.QueryShape{
		SampleMB:     logicalMB,
		SampleRows:   int64(logicalRows),
		Selectivity:  sel,
		BootstrapK:   k,
		DiagSizes:    sizes,
		DiagP:        opt.DiagP,
		ClosedForm:   def.ClosedFormOK(),
		Consolidated: opt.ScanConsolidation,
		Pushdown:     opt.OperatorPushdown,
		Fanout:       len(res.Groups),
	}
	if !opt.Diagnostics {
		shape.DiagSizes = nil
		shape.DiagP = 0
	}
	src := rng.NewWithStream(e.cfg.Seed, 0xC105)
	b := e.cfg.Cluster.SimulateBreakdown(src, shape)
	span.SetAttr("sim_query_sec", b.QuerySec)
	span.SetAttr("sim_error_sec", b.ErrorSec)
	span.SetAttr("sim_diag_sec", b.DiagSec)
	span.SetAttr("sim_total_sec", b.Total())
	b.Observe(qt.Metrics(), time.Since(simStart))
	return b
}
