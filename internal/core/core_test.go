package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

// buildSessions registers a Sessions table of n rows on a fresh engine.
func buildSessions(t *testing.T, cfg Config, n int) (*Engine, *table.Table) {
	t.Helper()
	src := rng.New(999)
	times := make(table.Float64Col, n)
	cities := make(table.StringCol, n)
	names := []string{"NYC", "SF", "LA", "CHI"}
	for i := 0; i < n; i++ {
		times[i] = 60 + 20*src.NormFloat64()
		cities[i] = names[src.Intn(len(names))]
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
	e := New(cfg)
	if err := e.RegisterTable("Sessions", tbl); err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

// heavyTailTable registers a table whose values break MAX estimation.
func heavyTailTable(t *testing.T, cfg Config, n int) *Engine {
	t.Helper()
	src := rng.New(777)
	vals := make(table.Float64Col, n)
	for i := range vals {
		vals[i] = src.Pareto(1, 1.05)
	}
	tbl := table.MustNew(table.Schema{{Name: "v", Type: table.Float64}}, vals)
	e := New(cfg)
	if err := e.RegisterTable("T", tbl); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRegisterValidation(t *testing.T) {
	e := New(Config{Seed: 1})
	if err := e.RegisterTable("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	tbl := table.MustNew(table.Schema{{Name: "x", Type: table.Float64}},
		table.Float64Col{1})
	if err := e.RegisterTable("t", tbl); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable("t", tbl); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := e.BuildSamples("nope", 10); err == nil {
		t.Error("samples on unknown table accepted")
	}
	if err := e.BuildSamples("t", 100); err == nil {
		t.Error("oversized sample accepted")
	}
}

func TestExactQueryWithoutSamples(t *testing.T) {
	e, tbl := buildSessions(t, Config{Seed: 2}, 20000)
	ans, err := e.Query("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	if err != nil {
		t.Fatal(err)
	}
	agg := ans.Groups[0].Aggs[0]
	if !agg.Exact || agg.Technique != "exact" {
		t.Error("sampleless query should execute exactly")
	}
	// Verify against manual computation.
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	var m stats.Moments
	for i := range cities {
		if cities[i] == "NYC" {
			m.Add(times[i])
		}
	}
	if math.Abs(agg.Estimate-m.Mean()) > 1e-9 {
		t.Errorf("exact AVG = %v, want %v", agg.Estimate, m.Mean())
	}
	if agg.ErrorBar.HalfWidth != 0 {
		t.Error("exact answers have zero-width error bars")
	}
}

func TestApproximateQueryWithErrorBars(t *testing.T) {
	e, tbl := buildSessions(t, Config{Seed: 3}, 100000)
	if err := e.BuildSamples("Sessions", 20000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT AVG(Time) FROM Sessions")
	if err != nil {
		t.Fatal(err)
	}
	if ans.SampleRows != 20000 {
		t.Errorf("sample rows = %d", ans.SampleRows)
	}
	agg := ans.Groups[0].Aggs[0]
	if agg.Exact {
		t.Fatal("expected approximate execution")
	}
	if agg.Technique != "closed-form" {
		t.Errorf("technique = %q, want closed-form for AVG", agg.Technique)
	}
	// The error bar must bracket the true answer (95% CI; seed chosen to
	// pass).
	times, _ := tbl.Float64ColumnByName("Time")
	truth := stats.Mean(times)
	if !agg.ErrorBar.Contains(truth) {
		t.Errorf("error bar %v misses truth %v", agg.ErrorBar, truth)
	}
	if !agg.DiagnosticOK {
		t.Errorf("diagnostic rejected AVG on Gaussian data: %s", agg.DiagnosticReason)
	}
	if agg.RelErr <= 0 || agg.RelErr > 0.05 {
		t.Errorf("relative error = %v, want small and positive", agg.RelErr)
	}
}

func TestScaledCountEstimatesPopulation(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 4}, 80000)
	if err := e.BuildSamples("Sessions", 8000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT COUNT(*) FROM Sessions WHERE City = 'NYC'")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.QueryExact("SELECT COUNT(*) FROM Sessions WHERE City = 'NYC'")
	if err != nil {
		t.Fatal(err)
	}
	approx := ans.Groups[0].Aggs[0]
	truth := exact.Groups[0].Aggs[0].Estimate
	if relDiff := math.Abs(approx.Estimate-truth) / truth; relDiff > 0.1 {
		t.Errorf("approximate COUNT %v vs exact %v (%.1f%% off)",
			approx.Estimate, truth, 100*relDiff)
	}
	if !approx.ErrorBar.Contains(truth) {
		t.Errorf("COUNT error bar %v misses truth %v", approx.ErrorBar, truth)
	}
}

func TestBootstrapTechniqueForComplexAggregates(t *testing.T) {
	// Percentiles at small diagnostic subsample sizes are legitimately
	// noisy; this test is about technique selection, so skip diagnostics.
	e, _ := buildSessions(t, Config{Seed: 5, BootstrapK: 50, SkipDiagnostics: true}, 60000)
	if err := e.BuildSamples("Sessions", 20000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT PERCENTILE(Time, 0.9) FROM Sessions")
	if err != nil {
		t.Fatal(err)
	}
	agg := ans.Groups[0].Aggs[0]
	if agg.Technique != "bootstrap" {
		t.Errorf("technique = %q, want bootstrap for PERCENTILE", agg.Technique)
	}
	if agg.ErrorBar.HalfWidth <= 0 {
		t.Error("bootstrap error bar missing")
	}
}

func TestUDFQueryEndToEnd(t *testing.T) {
	// A 40k-row sample keeps the filtered diagnostic's subsample ladder
	// large enough that its Δ/σ statistics sit clear of the c1/c2
	// acceptance thresholds rather than on the boundary.
	e, _ := buildSessions(t, Config{Seed: 6, BootstrapK: 40}, 60000)
	if err := e.BuildSamples("Sessions", 40000); err != nil {
		t.Fatal(err)
	}
	e.RegisterUDF("trimmed", func(values, weights []float64) float64 {
		var m stats.Moments
		for i, v := range values {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			if v > 0 && v < 150 {
				m.AddWeighted(v, w)
			}
		}
		return m.Mean()
	})
	ans, err := e.Query("SELECT TRIMMED(Time) FROM Sessions WHERE City = 'SF'")
	if err != nil {
		t.Fatal(err)
	}
	agg := ans.Groups[0].Aggs[0]
	if agg.Technique != "bootstrap" {
		t.Errorf("UDF technique = %q", agg.Technique)
	}
	if math.IsNaN(agg.Estimate) {
		t.Error("UDF estimate NaN")
	}
}

func TestDiagnosticRejectionTriggersExactFallback(t *testing.T) {
	e := heavyTailTable(t, Config{Seed: 7, BootstrapK: 40}, 120000)
	if err := e.BuildSamples("T", 40000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT MAX(v) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	agg := ans.Groups[0].Aggs[0]
	if agg.DiagnosticOK {
		t.Fatal("diagnostic accepted MAX on extreme Pareto data")
	}
	if !agg.Exact {
		t.Fatal("rejected aggregate did not fall back to exact execution")
	}
	if !ans.FellBack() {
		t.Error("FellBack() should report the fallback")
	}
	// The exact answer is the true maximum.
	exact, _ := e.QueryExact("SELECT MAX(v) FROM T")
	if agg.Estimate != exact.Groups[0].Aggs[0].Estimate {
		t.Error("fallback answer does not match exact execution")
	}
	if agg.DiagnosticReason == "" {
		t.Error("fallback should preserve the rejection reason")
	}
}

func TestDisableFallbackKeepsApproximation(t *testing.T) {
	e := heavyTailTable(t, Config{Seed: 8, BootstrapK: 40, DisableFallback: true}, 120000)
	if err := e.BuildSamples("T", 40000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT MAX(v) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	agg := ans.Groups[0].Aggs[0]
	if agg.DiagnosticOK {
		t.Fatal("diagnostic accepted MAX on extreme Pareto data")
	}
	if agg.Exact {
		t.Error("fallback ran despite being disabled")
	}
}

func TestQueryWithErrorBoundEscalates(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 9, SkipDiagnostics: true}, 200000)
	if err := e.BuildSamples("Sessions", 2000, 20000, 100000); err != nil {
		t.Fatal(err)
	}
	// A loose bound is satisfied by the smallest sample.
	loose, err := e.QueryWithErrorBound("SELECT AVG(Time) FROM Sessions", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if loose.SampleRows != 2000 {
		t.Errorf("loose bound used %d rows, want smallest (2000)", loose.SampleRows)
	}
	// A tight bound needs a bigger sample.
	tight, err := e.QueryWithErrorBound("SELECT AVG(Time) FROM Sessions", 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if tight.SampleRows <= 2000 && !tight.FellBack() {
		t.Errorf("tight bound satisfied suspiciously by %d rows", tight.SampleRows)
	}
	if tight.Groups[0].Aggs[0].RelErr > 0.002 && !tight.Groups[0].Aggs[0].Exact {
		t.Errorf("tight bound missed: relErr %v", tight.Groups[0].Aggs[0].RelErr)
	}
	// An impossible bound falls back to exact.
	impossible, err := e.QueryWithErrorBound("SELECT AVG(Time) FROM Sessions", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !impossible.Groups[0].Aggs[0].Exact {
		t.Error("impossible bound should fall back to exact execution")
	}
	if _, err := e.QueryWithErrorBound("SELECT AVG(Time) FROM Sessions", -1); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestGroupByAnswers(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 10, SkipDiagnostics: true}, 100000)
	if err := e.BuildSamples("Sessions", 40000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT City, AVG(Time) FROM Sessions GROUP BY City")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Groups) != 4 {
		t.Fatalf("groups = %d", len(ans.Groups))
	}
	exact, err := e.QueryExact("SELECT City, AVG(Time) FROM Sessions GROUP BY City")
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range ans.Groups {
		truth := exact.Groups[i].Aggs[0].Estimate
		if g.Key != exact.Groups[i].Key {
			t.Fatalf("group keys diverge: %q vs %q", g.Key, exact.Groups[i].Key)
		}
		if !g.Aggs[0].ErrorBar.Contains(truth) {
			t.Errorf("group %s error bar %v misses truth %v",
				g.Key, g.Aggs[0].ErrorBar, truth)
		}
	}
}

func TestExplain(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 11}, 50000)
	if err := e.BuildSamples("Sessions", 20000); err != nil {
		t.Fatal(err)
	}
	out, err := e.Explain("SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scan(Sessions)", "Filter", "Aggregate", "Diagnostic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 12}, 1000)
	cases := []string{
		"not sql",
		"SELECT AVG(Time) FROM NoSuch",
		"SELECT NOSUCHUDF(Time) FROM Sessions",
		"SELECT AVG(Time) FROM Sessions UNION ALL SELECT AVG(Time) FROM Sessions",
	}
	for _, q := range cases {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) unexpectedly succeeded", q)
		}
	}
}

func TestSimulatedBreakdownAttached(t *testing.T) {
	cl, err := cluster.New(cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildSessions(t, Config{Seed: 13, Cluster: cl, LogicalSampleMB: 20000}, 100000)
	if err := e.BuildSamples("Sessions", 20000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT AVG(Time) FROM Sessions")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Simulated == nil {
		t.Fatal("simulated breakdown missing")
	}
	if ans.Simulated.Total() <= 0 || ans.Simulated.Total() > 60 {
		t.Errorf("simulated total = %v s, want interactive-scale", ans.Simulated.Total())
	}
}

func TestCountersExposedOnAnswer(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 14, SkipDiagnostics: true}, 50000)
	if err := e.BuildSamples("Sessions", 10000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT AVG(Time) FROM Sessions")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Counters.Scans < 1 || ans.Counters.RowsScanned != 10000 {
		t.Errorf("counters: %+v", ans.Counters)
	}
	if ans.Elapsed <= 0 {
		t.Error("elapsed time not measured")
	}
}

func TestMixedAggregateQuery(t *testing.T) {
	// AVG uses closed form while MAX uses the bootstrap, in one query.
	e, _ := buildSessions(t, Config{Seed: 15, BootstrapK: 40, SkipDiagnostics: true}, 60000)
	if err := e.BuildSamples("Sessions", 20000); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT AVG(Time), MAX(Time) FROM Sessions")
	if err != nil {
		t.Fatal(err)
	}
	aggs := ans.Groups[0].Aggs
	if aggs[0].Technique != "closed-form" {
		t.Errorf("AVG technique = %q", aggs[0].Technique)
	}
	if aggs[1].Technique != "bootstrap" {
		t.Errorf("MAX technique = %q", aggs[1].Technique)
	}
}
