package core

import (
	"context"
	"strconv"
	"time"

	"repro/internal/estimator"
	"repro/internal/obs"
	"repro/internal/obs/history"
	"repro/internal/plan"
	"repro/internal/watchdog"
)

// finishQuery closes the trace and fans the finished query out to the
// engine's passive observers: the structured event log (one JSON record
// per query) and the calibration watchdog. Both consume only the finished
// answer and trace snapshot — no engine randomness, no answer mutation —
// so answers stay bit-identical with observers on or off (asserted by
// TestTelemetryDoesNotPerturbAnswers).
//
// observeWatchdog is false on the exact paths: an exact answer carries no
// estimated interval to hold to account, and the watchdog's own audits
// run through runExact.
//
// ctx supplies the query's trace context when the tracer is disabled (the
// tracer-built snapshot already carries it via SetTraceContext), so the
// trace id reaches history and watchdog records either way.
func (e *Engine) finishQuery(ctx context.Context, qt *obs.QueryTrace, query string, ans *Answer, err error, observeWatchdog bool) {
	qt.Finish(err)
	// Cached replays performed no new statistical work, so the watchdog
	// (which audits interval calibration) must not count them again.
	watch := observeWatchdog && e.wd != nil && err == nil && ans != nil && !ans.Cached
	if e.elog == nil && !watch && e.hist == nil {
		return
	}
	snap, ok := qt.Snapshot()
	if !ok {
		// Tracer disabled but an observer is attached: synthesize the
		// identity fields the observers need.
		snap = obs.TraceSnapshot{SQL: query, Outcome: obs.Outcome(err)}
		if tc, tok := obs.TraceFromContext(ctx); tok {
			snap.TraceID = tc.TraceIDString()
			snap.SpanID = tc.SpanIDString()
			snap.ParentSpanID = tc.ParentString()
		}
		if err != nil {
			snap.Err = err.Error()
		}
		if ans != nil {
			snap.TotalMs = float64(ans.Elapsed) / float64(time.Millisecond)
		}
	}
	if e.elog != nil {
		ev := obs.QueryEvent{Trace: snap}
		if ans != nil {
			ev.SampleRows = ans.SampleRows
			ev.FellBack = ans.FellBack()
			ev.BlocksSkipped = ans.Counters.BlocksSkipped
			ev.BlocksDecoded = ans.Counters.BlocksDecoded
			ev.DecodeNs = ans.Counters.DecodeNanos
			ev.SharedScan = ans.SharedScan
			ev.Cached = ans.Cached
			ev.CacheHits = ans.Counters.CacheHits
			ev.CacheBytes = ans.Counters.CacheBytes
			if ans.Plan != nil {
				ev.BootstrapK = ans.Plan.Opt.BootstrapK
			}
			for _, g := range ans.Groups {
				for _, a := range g.Aggs {
					ev.Aggs = append(ev.Aggs, obs.AggEvent{
						Group:     g.Key,
						Name:      a.Name,
						Estimate:  a.Estimate,
						Lo:        a.ErrorBar.Lo(),
						Hi:        a.ErrorBar.Hi(),
						RelErr:    a.RelErr,
						Technique: a.Technique,
						Verdict:   verdict(a.DiagnosticOK),
						Exact:     a.Exact,
					})
				}
			}
		}
		e.elog.Emit(ev)
	}
	if e.hist != nil {
		e.hist.AppendQuery(historyRecord(snap, query, ans, err))
	}
	if watch {
		e.wd.Observe(watchdogRecord(snap, ans))
	}
}

// historyRecord converts a finished query into the durable history
// record. Failed queries still produce a (minimal) record — availability
// SLOs must see them — but carry no plan shape to profile.
func historyRecord(snap obs.TraceSnapshot, query string, ans *Answer, err error) history.QueryRecord {
	q := history.QueryRecord{
		QID:         snap.ID,
		TraceID:     snap.TraceID,
		SQL:         query,
		Outcome:     snap.Outcome,
		TotalMs:     snap.TotalMs,
		QueueWaitMs: snap.QueueWaitMs,
		StagesMs:    obs.StageLatencies(snap.Spans),
		Selectivity: -1,
	}
	if q.Outcome == "" {
		q.Outcome = obs.Outcome(err)
	}
	if ans == nil {
		return q
	}
	q.Sample = sampleLabel(ans.SampleRows)
	q.Selectivity = ans.Selectivity
	q.KUsed = ans.BootstrapKUsed
	q.SharedScan = ans.SharedScan
	q.FellBack = ans.FellBack()
	if ans.SampleRows > 0 && ans.PopulationRows > 0 {
		q.SampleFraction = float64(ans.SampleRows) / float64(ans.PopulationRows)
	} else if ans.SampleRows == 0 {
		q.SampleFraction = 1 // exact execution reads the population
	}
	var def *plan.QueryDef
	if ans.Plan != nil {
		def = ans.Plan.Def
		q.KBudget = ans.Plan.Opt.BootstrapK
	}
	if def != nil {
		q.Table = def.Table
		q.Predicate = history.PredicateSignature(def.Where)
	}
	for _, g := range ans.Groups {
		for ai, a := range g.Aggs {
			q.Aggs = append(q.Aggs, history.AggSample{
				Kind:      aggKindLabel(def, ai),
				RelErr:    a.RelErr,
				Technique: a.Technique,
				Rejected:  !a.DiagnosticOK,
				Exact:     a.Exact,
			})
		}
	}
	return q
}

// aggKindLabel names the ai-th aggregate's kind ("AVG", ..., or the UDF
// name) from the executed plan's definition.
func aggKindLabel(def *plan.QueryDef, ai int) string {
	if def == nil || ai >= len(def.Aggs) {
		return ""
	}
	spec := def.Aggs[ai]
	if spec.Kind == estimator.UDF && spec.UDFName != "" {
		return spec.UDFName
	}
	return spec.Kind.String()
}

// observeAudit is the watchdog→history bridge: every audit outcome
// becomes a durable audit record and folds into the matching workload
// profile's empirical-coverage window.
func (e *Engine) observeAudit(o watchdog.AuditOutcome) {
	e.hist.AppendAudit(history.AuditRecord{
		QID:       o.QID,
		TraceID:   o.TraceID,
		Table:     o.Table,
		Sample:    o.Sample,
		Predicate: o.Predicate,
		Kind:      o.Kind,
		Agg:       o.Agg,
		Group:     o.Group,
		Covered:   o.Covered,
		Truth:     o.Truth,
		Lo:        o.Interval.Lo(),
		Hi:        o.Interval.Hi(),
	})
}

func verdict(ok bool) string {
	if ok {
		return "accept"
	}
	return "reject"
}

// watchdogRecord converts a finished answer into the watchdog's view: one
// AggRecord per aggregate output, keyed by the sample it was answered on.
func watchdogRecord(snap obs.TraceSnapshot, ans *Answer) watchdog.Record {
	rec := watchdog.Record{QID: snap.ID, TraceID: snap.TraceID,
		SQL: ans.SQL, Sample: sampleLabel(ans.SampleRows)}
	var def *plan.QueryDef
	if ans.Plan != nil {
		def = ans.Plan.Def
	}
	if def != nil {
		rec.Table = def.Table
		rec.Predicate = history.PredicateSignature(def.Where)
	}
	for _, g := range ans.Groups {
		for ai, a := range g.Aggs {
			rec.Aggs = append(rec.Aggs, watchdog.AggRecord{
				Group:     g.Key,
				Agg:       a.Name,
				Kind:      aggKindLabel(def, ai),
				Interval:  a.ErrorBar,
				Technique: a.Technique,
				Rejected:  !a.DiagnosticOK,
				Exact:     a.Exact,
			})
		}
	}
	return rec
}

// sampleLabel names the calibration population a query belongs to: the
// sample's row count, or "exact" for full-data answers.
func sampleLabel(rows int) string {
	if rows <= 0 {
		return "exact"
	}
	return strconv.Itoa(rows)
}

// auditExact is the watchdog's auditor: it re-executes the query exactly —
// outside the trace ring and the watchdog's own observation loop, so
// audits never feed back into the statistics they validate — and returns
// the ground-truth value per aggregate output. Exact execution is
// deterministic, so audits consume no engine randomness.
func (e *Engine) auditExact(ctx context.Context, query string) (map[watchdog.AggInstance]float64, error) {
	def, rt, err := e.analyze(nil, query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ans, err := e.runExact(ctx, nil, nil, query, def, rt)
	if e.elog != nil {
		snap := obs.TraceSnapshot{
			SQL:     query,
			Outcome: obs.Outcome(err),
			TotalMs: float64(time.Since(start)) / float64(time.Millisecond),
		}
		if err != nil {
			snap.Err = err.Error()
		}
		e.elog.Emit(obs.QueryEvent{Trace: snap, Kind: "audit"})
	}
	if err != nil {
		return nil, err
	}
	out := make(map[watchdog.AggInstance]float64)
	for _, g := range ans.Groups {
		for _, a := range g.Aggs {
			out[watchdog.AggInstance{Group: g.Key, Agg: a.Name}] = a.Estimate
		}
	}
	return out, nil
}
