package core

import (
	"context"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/watchdog"
)

// finishQuery closes the trace and fans the finished query out to the
// engine's passive observers: the structured event log (one JSON record
// per query) and the calibration watchdog. Both consume only the finished
// answer and trace snapshot — no engine randomness, no answer mutation —
// so answers stay bit-identical with observers on or off (asserted by
// TestTelemetryDoesNotPerturbAnswers).
//
// observeWatchdog is false on the exact paths: an exact answer carries no
// estimated interval to hold to account, and the watchdog's own audits
// run through runExact.
func (e *Engine) finishQuery(qt *obs.QueryTrace, query string, ans *Answer, err error, observeWatchdog bool) {
	qt.Finish(err)
	watch := observeWatchdog && e.wd != nil && err == nil && ans != nil
	if e.elog == nil && !watch {
		return
	}
	snap, ok := qt.Snapshot()
	if !ok {
		// Tracer disabled but an observer is attached: synthesize the
		// identity fields the observers need.
		snap = obs.TraceSnapshot{SQL: query, Outcome: obs.Outcome(err)}
		if err != nil {
			snap.Err = err.Error()
		}
		if ans != nil {
			snap.TotalMs = float64(ans.Elapsed) / float64(time.Millisecond)
		}
	}
	if e.elog != nil {
		ev := obs.QueryEvent{Trace: snap}
		if ans != nil {
			ev.SampleRows = ans.SampleRows
			ev.FellBack = ans.FellBack()
			ev.BlocksSkipped = ans.Counters.BlocksSkipped
			ev.BlocksDecoded = ans.Counters.BlocksDecoded
			ev.DecodeNs = ans.Counters.DecodeNanos
			ev.SharedScan = ans.SharedScan
			if ans.Plan != nil {
				ev.BootstrapK = ans.Plan.Opt.BootstrapK
			}
			for _, g := range ans.Groups {
				for _, a := range g.Aggs {
					ev.Aggs = append(ev.Aggs, obs.AggEvent{
						Group:     g.Key,
						Name:      a.Name,
						Estimate:  a.Estimate,
						Lo:        a.ErrorBar.Lo(),
						Hi:        a.ErrorBar.Hi(),
						RelErr:    a.RelErr,
						Technique: a.Technique,
						Verdict:   verdict(a.DiagnosticOK),
						Exact:     a.Exact,
					})
				}
			}
		}
		e.elog.Emit(ev)
	}
	if watch {
		e.wd.Observe(watchdogRecord(snap.ID, ans))
	}
}

func verdict(ok bool) string {
	if ok {
		return "accept"
	}
	return "reject"
}

// watchdogRecord converts a finished answer into the watchdog's view: one
// AggRecord per aggregate output, keyed by the sample it was answered on.
func watchdogRecord(qid uint64, ans *Answer) watchdog.Record {
	rec := watchdog.Record{QID: qid, SQL: ans.SQL, Sample: sampleLabel(ans.SampleRows)}
	for _, g := range ans.Groups {
		for _, a := range g.Aggs {
			rec.Aggs = append(rec.Aggs, watchdog.AggRecord{
				Group:     g.Key,
				Agg:       a.Name,
				Interval:  a.ErrorBar,
				Technique: a.Technique,
				Rejected:  !a.DiagnosticOK,
				Exact:     a.Exact,
			})
		}
	}
	return rec
}

// sampleLabel names the calibration population a query belongs to: the
// sample's row count, or "exact" for full-data answers.
func sampleLabel(rows int) string {
	if rows <= 0 {
		return "exact"
	}
	return strconv.Itoa(rows)
}

// auditExact is the watchdog's auditor: it re-executes the query exactly —
// outside the trace ring and the watchdog's own observation loop, so
// audits never feed back into the statistics they validate — and returns
// the ground-truth value per aggregate output. Exact execution is
// deterministic, so audits consume no engine randomness.
func (e *Engine) auditExact(ctx context.Context, query string) (map[watchdog.AggInstance]float64, error) {
	def, rt, err := e.analyze(nil, query)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ans, err := e.runExact(ctx, nil, nil, query, def, rt)
	if e.elog != nil {
		snap := obs.TraceSnapshot{
			SQL:     query,
			Outcome: obs.Outcome(err),
			TotalMs: float64(time.Since(start)) / float64(time.Millisecond),
		}
		if err != nil {
			snap.Err = err.Error()
		}
		e.elog.Emit(obs.QueryEvent{Trace: snap, Kind: "audit"})
	}
	if err != nil {
		return nil, err
	}
	out := make(map[watchdog.AggInstance]float64)
	for _, g := range ans.Groups {
		for _, a := range g.Aggs {
			out[watchdog.AggInstance{Group: g.Key, Agg: a.Name}] = a.Estimate
		}
	}
	return out, nil
}
