package core

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsTestQueries cover the pipeline variants: closed form, scaled sum with
// filter, bootstrap percentile, GROUP BY fan-out.
var obsTestQueries = []string{
	"SELECT AVG(Time) FROM Sessions",
	"SELECT SUM(Time) FROM Sessions WHERE City = 'NYC'",
	"SELECT PERCENTILE(Time, 0.9) FROM Sessions",
	"SELECT AVG(Time), COUNT(*) FROM Sessions GROUP BY City",
}

func tracedPair(t *testing.T, mutate func(*Config)) (traced, plain *Engine) {
	t.Helper()
	mk := func(tr *obs.Tracer) *Engine {
		cfg := Config{Seed: 11, Workers: 3, BootstrapK: 30, Obs: tr}
		if mutate != nil {
			mutate(&cfg)
		}
		e, _ := buildSessions(t, cfg, 30000)
		if err := e.BuildSamples("Sessions", 8000); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return mk(obs.NewTracer(obs.Options{})), mk(nil)
}

// TestTracingDoesNotPerturbAnswers asserts the determinism guarantee:
// telemetry on or off, answers, error bars and verdicts are bit-identical.
func TestTracingDoesNotPerturbAnswers(t *testing.T) {
	traced, plain := tracedPair(t, nil)
	for _, q := range obsTestQueries {
		a, err := traced.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Groups) != len(b.Groups) {
			t.Fatalf("%s: group counts differ", q)
		}
		for gi := range a.Groups {
			for ai := range a.Groups[gi].Aggs {
				x, y := a.Groups[gi].Aggs[ai], b.Groups[gi].Aggs[ai]
				if x.Estimate != y.Estimate ||
					x.ErrorBar.HalfWidth != y.ErrorBar.HalfWidth ||
					x.DiagnosticOK != y.DiagnosticOK ||
					x.Technique != y.Technique {
					t.Fatalf("%s: traced %+v != untraced %+v", q, x, y)
				}
			}
		}
	}
}

// TestSpanStructureDeterminism asserts that two same-seed runs produce the
// same span structure (stages, nesting, attributes; durations excluded).
func TestSpanStructureDeterminism(t *testing.T) {
	run := func() []string {
		e, _ := tracedPair(t, nil)
		var out []string
		for _, q := range obsTestQueries {
			if _, err := e.Query(q); err != nil {
				t.Fatal(err)
			}
			tr, ok := e.Tracer().Last()
			if !ok {
				t.Fatalf("%s: no trace recorded", q)
			}
			out = append(out, tr.Structure())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("structures differ for %q:\n%s\nvs\n%s", obsTestQueries[i], a[i], b[i])
		}
	}
}

// counterAttrSums walks a span tree accumulating the executor counter
// attributes.
func counterAttrSums(spans []obs.SpanSnapshot, into map[string]int64) {
	for _, s := range spans {
		for k, v := range s.Attrs {
			if n, ok := v.(int64); ok {
				into[k] += n
			}
		}
		counterAttrSums(s.Children, into)
	}
}

// TestSpanCountersMatchResultCounters asserts the invariant that summing
// the per-span counter attributes over the whole trace reproduces
// Result.Counters, for the consolidated pipeline, the naive rewrite, and
// exact execution. Fallback is disabled because it merges only the
// scan-side counters into the answer by design.
func TestSpanCountersMatchResultCounters(t *testing.T) {
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
		exact  bool
	}{
		{"consolidated", func(c *Config) { c.DisableFallback = true }, false},
		{"naive", func(c *Config) { c.DisableFallback = true; c.DisableScanConsolidation = true }, false},
		{"exact", func(c *Config) { c.DisableFallback = true }, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e, _ := tracedPair(t, mode.mutate)
			for _, q := range obsTestQueries {
				var ans *Answer
				var err error
				if mode.exact {
					ans, err = e.QueryExact(q)
				} else {
					ans, err = e.Query(q)
				}
				if err != nil {
					t.Fatal(err)
				}
				tr, ok := e.Tracer().Last()
				if !ok {
					t.Fatalf("%s: no trace", q)
				}
				sums := map[string]int64{}
				counterAttrSums(tr.Spans, sums)
				c := ans.Counters
				for _, check := range []struct {
					key  string
					want int64
				}{
					{"subqueries", int64(c.Subqueries)},
					{"scans", int64(c.Scans)},
					{"rows_scanned", c.RowsScanned},
					{"bytes_scanned", c.BytesScanned},
					{"rows_after_filter", c.RowsAfterFilter},
					{"blocks_skipped", c.BlocksSkipped},
					{"weight_draws", c.WeightDraws},
					{"diag_subqueries", int64(c.DiagSubqueries)},
					{"tasks", int64(c.Tasks)},
				} {
					if sums[check.key] != check.want {
						t.Errorf("%s: span attr %s sums to %d, counters say %d\ntrace:\n%s",
							q, check.key, sums[check.key], check.want, tr.Structure())
					}
				}
			}
		})
	}
}

// TestMetricsEndpoint boots an engine with a live metrics endpoint and
// checks both routes end to end.
func TestMetricsEndpoint(t *testing.T) {
	tr := obs.NewTracer(obs.Options{})
	cfg := Config{Seed: 5, Workers: 2, BootstrapK: 20, Obs: tr, MetricsAddr: "127.0.0.1:0"}
	e, _ := buildSessions(t, cfg, 20000)
	if err := e.BuildSamples("Sessions", 7000); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	addr, err := e.MetricsEndpoint()
	if err != nil || addr == "" {
		t.Fatalf("MetricsEndpoint = %q, %v", addr, err)
	}
	if e.Tracer() != tr {
		t.Fatal("engine did not adopt the provided tracer")
	}
	if _, err := e.Query("SELECT AVG(Time) FROM Sessions"); err != nil {
		t.Fatal(err)
	}
	// The percentile query exercises the bootstrap, so resample accounting
	// shows up in the registry.
	if _, err := e.Query("SELECT PERCENTILE(Time, 0.9) FROM Sessions"); err != nil {
		t.Fatal(err)
	}

	body := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := body("/metrics")
	for _, want := range []string{
		`aqp_queries_total{outcome="ok"} 2`,
		"# TYPE aqp_stage_duration_seconds histogram",
		"aqp_exec_rows_scanned_total",
		"aqp_bootstrap_resamples_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	var traces []obs.TraceSnapshot
	if err := json.Unmarshal([]byte(body("/debug/queries")), &traces); err != nil {
		t.Fatalf("/debug/queries not JSON: %v", err)
	}
	if len(traces) != 2 || traces[1].SQL != "SELECT AVG(Time) FROM Sessions" {
		t.Fatalf("unexpected traces: %+v", traces)
	}
}

// TestDefaultTracerFromMetricsAddr checks MetricsAddr alone enables
// telemetry.
func TestDefaultTracerFromMetricsAddr(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 3, MetricsAddr: "127.0.0.1:0"}, 200)
	defer e.Close()
	if e.Tracer() == nil {
		t.Fatal("MetricsAddr without Obs should create a tracer")
	}
	if _, err := e.Query("SELECT AVG(Time) FROM Sessions"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Tracer().Last(); !ok {
		t.Fatal("query left no trace")
	}
}

// TestQueryErrorsCarryIdentifier checks error wrapping: failures name the
// query and preserve the underlying error for errors.Unwrap.
func TestQueryErrorsCarryIdentifier(t *testing.T) {
	e, _ := buildSessions(t, Config{Seed: 2}, 100)
	_, err := e.Query("SELECT AVG(Time) FROM Nowhere")
	if err == nil {
		t.Fatal("unknown table should error")
	}
	if !strings.Contains(err.Error(), "q1") || !strings.Contains(err.Error(), "Nowhere") {
		t.Fatalf("error lacks query identifier: %v", err)
	}
	_, err = e.Query("SELECT MYSTERY(Time) FROM Sessions")
	if err == nil {
		t.Fatal("unregistered UDF should error")
	}
	if !strings.Contains(err.Error(), "q2") {
		t.Fatalf("untraced ids should increment: %v", err)
	}
	if errors.Unwrap(err) == nil {
		t.Fatalf("error not wrapped with %%w: %v", err)
	}
	long := "SELECT AVG(Time) FROM Nowhere WHERE City = 'somewhere far beyond'"
	_, err = e.Query(long)
	if err == nil || !strings.Contains(err.Error(), "...") {
		t.Fatalf("long SQL should be truncated in the identifier: %v", err)
	}
}

// TestNaNRelErrSurvivesJSON ensures a trace with non-finite attributes
// (e.g. rel_err on a zero estimate) still serializes.
func TestNaNRelErrSurvivesJSON(t *testing.T) {
	tr := obs.NewTracer(obs.Options{})
	qt := tr.StartQuery("synthetic")
	qt.Root().StartSpan(obs.StageEstimate).SetAttr("max_rel_err", math.Inf(1))
	qt.Finish(nil)
	last, _ := tr.Last()
	if _, err := json.Marshal(last); err != nil {
		t.Fatalf("trace with +Inf attr not JSON-encodable: %v", err)
	}
}
