package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

// skewedCities builds a table where one city dominates and one is rare, so
// uniform samples starve the rare group.
func skewedCities(t *testing.T, cfg Config, n int) (*Engine, *table.Table) {
	t.Helper()
	src := rng.New(555)
	times := make(table.Float64Col, n)
	cities := make(table.StringCol, n)
	for i := 0; i < n; i++ {
		u := src.Float64()
		switch {
		case u < 0.97:
			cities[i] = "BIG"
			times[i] = 50 + 10*src.NormFloat64()
		case u < 0.995:
			cities[i] = "MID"
			times[i] = 80 + 10*src.NormFloat64()
		default:
			cities[i] = "RARE"
			times[i] = 120 + 10*src.NormFloat64()
		}
	}
	tbl := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
		{Name: "City", Type: table.String},
	}, times, cities)
	e := New(cfg)
	if err := e.RegisterTable("Sessions", tbl); err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func TestBuildStratifiedSampleValidation(t *testing.T) {
	e, _ := skewedCities(t, Config{Seed: 1}, 1000)
	if err := e.BuildStratifiedSample("nope", "City", 10); err == nil {
		t.Error("unknown table accepted")
	}
	if err := e.BuildStratifiedSample("Sessions", "nope", 10); err == nil {
		t.Error("unknown column accepted")
	}
	if err := e.BuildStratifiedSample("Sessions", "Time", 10); err == nil {
		t.Error("numeric key column accepted")
	}
	if err := e.BuildStratifiedSample("Sessions", "City", 0); err == nil {
		t.Error("zero cap accepted")
	}
	if err := e.BuildStratifiedSample("Sessions", "City", 50); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedSampleKeepsRareGroups(t *testing.T) {
	e, tbl := skewedCities(t, Config{Seed: 2, SkipDiagnostics: true, BootstrapK: 30}, 200000)
	// Uniform sample of 2000 rows: RARE (~0.5%) gets ~10 rows.
	if err := e.BuildSamples("Sessions", 2000); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildStratifiedSample("Sessions", "City", 1500); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT City, AVG(Time) FROM Sessions GROUP BY City")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(ans.Groups))
	}
	// Stratified: every group has at least min(groupSize, cap) rows in the
	// sample, so the RARE group's error bar should be tight and correct.
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	var rare stats.Moments
	for i := range cities {
		if cities[i] == "RARE" {
			rare.Add(times[i])
		}
	}
	for _, g := range ans.Groups {
		if g.Key != "RARE" {
			continue
		}
		a := g.Aggs[0]
		if !a.ErrorBar.Contains(rare.Mean()) {
			t.Errorf("RARE error bar %v misses truth %v", a.ErrorBar, rare.Mean())
		}
		if a.RelErr > 0.02 {
			t.Errorf("RARE relative error %v too loose; stratification not used?", a.RelErr)
		}
	}
	// The stratified sample holds ~1500 rows for BIG (capped) plus all of
	// MID/RARE.
	if ans.SampleRows > 6000 || ans.SampleRows < 2500 {
		t.Errorf("stratified sample rows = %d, want a few thousand", ans.SampleRows)
	}
}

func TestStratifiedNotUsedForScaledAggregates(t *testing.T) {
	e, _ := skewedCities(t, Config{Seed: 3, SkipDiagnostics: true}, 50000)
	if err := e.BuildSamples("Sessions", 10000); err != nil {
		t.Fatal(err)
	}
	if err := e.BuildStratifiedSample("Sessions", "City", 100); err != nil {
		t.Fatal(err)
	}
	// COUNT per group is biased under stratification; the engine must fall
	// back to the uniform sample.
	ans, err := e.Query("SELECT City, COUNT(*) FROM Sessions GROUP BY City")
	if err != nil {
		t.Fatal(err)
	}
	if ans.SampleRows != 10000 {
		t.Errorf("scaled aggregate used %d-row sample, want the 10000-row uniform one",
			ans.SampleRows)
	}
	// And an ungrouped query must not pick the stratified sample either.
	ans2, err := e.Query("SELECT AVG(Time) FROM Sessions")
	if err != nil {
		t.Fatal(err)
	}
	if ans2.SampleRows != 10000 {
		t.Errorf("ungrouped query used %d-row sample", ans2.SampleRows)
	}
}

func TestStratifiedGroupMeansUnbiased(t *testing.T) {
	e, tbl := skewedCities(t, Config{Seed: 4, SkipDiagnostics: true, BootstrapK: 20}, 100000)
	if err := e.BuildStratifiedSample("Sessions", "City", 800); err != nil {
		t.Fatal(err)
	}
	ans, err := e.Query("SELECT City, AVG(Time) FROM Sessions GROUP BY City")
	if err != nil {
		t.Fatal(err)
	}
	cities := tbl.ColumnByName("City").(table.StringCol)
	times := tbl.ColumnByName("Time").(table.Float64Col)
	for _, g := range ans.Groups {
		var m stats.Moments
		for i := range cities {
			if cities[i] == g.Key {
				m.Add(times[i])
			}
		}
		if rel := math.Abs(g.Aggs[0].Estimate-m.Mean()) / m.Mean(); rel > 0.03 {
			t.Errorf("group %s estimate %v vs truth %v (%.1f%% off)",
				g.Key, g.Aggs[0].Estimate, m.Mean(), 100*rel)
		}
	}
}
