package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
)

// TestCalibrationCoverage is the end-to-end statistical contract of the
// paper ("knowing when you're wrong"): a 95% confidence interval must
// cover the ground truth in ~95% of independent runs. It executes 200+
// traced queries — each trial re-samples the fixed population under a
// fresh seed and answers through the full engine pipeline — and requires
// the empirical coverage to sit inside a binomial tolerance band around
// the nominal level.
//
// With n trials at p = 0.95 the binomial sd is √(p(1-p)/n) ≈ 1.54% at
// n=200; we reject only below p − 4sd ≈ 88.8%. Over-coverage is allowed:
// the finite-population correction and symmetric half-widths make the
// intervals conservative by design, never anti-conservative.
func TestCalibrationCoverage(t *testing.T) {
	const (
		popRows    = 20000
		sampleRows = 2000
		trials     = 220
	)
	// Fixed skewed population (log-normal-ish session times) shared by all
	// trials; truth is computed exactly on it.
	src := rng.New(1234)
	times := make(table.Float64Col, popRows)
	for i := range times {
		times[i] = math.Exp(1 + 0.6*src.NormFloat64())
	}
	var sum float64
	for _, v := range times {
		sum += v
	}
	truthAvg := sum / popRows
	truthP50 := stats.Quantile(append([]float64(nil), times...), 0.5)

	cases := []struct {
		name  string
		query string
		truth float64
	}{
		{"closed-form-avg", "SELECT AVG(Time) FROM Sessions", truthAvg},
		{"bootstrap-median", "SELECT PERCENTILE(Time, 0.5) FROM Sessions", truthP50},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tr := obs.NewTracer(obs.Options{RingSize: trials})
			covered, degenerate := 0, 0
			for trial := 0; trial < trials; trial++ {
				e := New(Config{Seed: uint64(9000 + trial), BootstrapK: 120,
					SkipDiagnostics: true, DisableFallback: true, Obs: tr})
				tbl := table.MustNew(table.Schema{{Name: "Time", Type: table.Float64}}, times)
				if err := e.RegisterTable("Sessions", tbl); err != nil {
					t.Fatal(err)
				}
				if err := e.BuildSamples("Sessions", sampleRows); err != nil {
					t.Fatal(err)
				}
				ans, err := e.Run(context.Background(), c.query)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				agg := ans.Groups[0].Aggs[0]
				if math.IsNaN(agg.ErrorBar.HalfWidth) || agg.ErrorBar.HalfWidth <= 0 {
					degenerate++
					continue
				}
				if math.Abs(agg.Estimate-c.truth) <= agg.ErrorBar.HalfWidth {
					covered++
				}
			}
			if degenerate > trials/20 {
				t.Fatalf("%d/%d trials produced no usable error bar", degenerate, trials)
			}
			n := trials - degenerate
			coverage := float64(covered) / float64(n)
			sd := math.Sqrt(0.95 * 0.05 / float64(n))
			floor := 0.95 - 4*sd
			t.Logf("coverage %d/%d = %.3f (floor %.3f)", covered, n, coverage, floor)
			if coverage < floor {
				t.Errorf("coverage %.3f below binomial tolerance floor %.3f", coverage, floor)
			}
			// Every trial must have been traced with an ok outcome — these
			// are the "200 seeded trace queries" of the serving contract.
			oks := 0
			for _, snap := range tr.Recent() {
				if snap.Outcome == "ok" {
					oks++
				}
			}
			if oks < trials {
				t.Errorf("traced ok outcomes = %d, want >= %d", oks, trials)
			}
		})
	}
}
