package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/table"
)

// ExampleEngine shows the full pipeline: register data, build samples, ask
// an approximate query, and read the error bar and diagnostic verdict.
func ExampleEngine() {
	// A deterministic dataset of 100k session times.
	src := rng.New(1)
	times := make(table.Float64Col, 100000)
	for i := range times {
		times[i] = 60 + 15*src.NormFloat64()
	}
	sessions := table.MustNew(table.Schema{
		{Name: "Time", Type: table.Float64},
	}, times)

	engine := core.New(core.Config{Seed: 1, Workers: 2})
	if err := engine.RegisterTable("Sessions", sessions); err != nil {
		panic(err)
	}
	if err := engine.BuildSamples("Sessions", 20000); err != nil {
		panic(err)
	}

	ans, err := engine.Query("SELECT AVG(Time) FROM Sessions")
	if err != nil {
		panic(err)
	}
	a := ans.Groups[0].Aggs[0]
	fmt.Printf("technique: %s\n", a.Technique)
	fmt.Printf("diagnostic ok: %v\n", a.DiagnosticOK)
	fmt.Printf("relative error under 1%%: %v\n", a.RelErr < 0.01)

	exact, _ := engine.QueryExact("SELECT AVG(Time) FROM Sessions")
	fmt.Printf("error bar brackets the exact answer: %v\n",
		a.ErrorBar.Contains(exact.Groups[0].Aggs[0].Estimate))
	// Output:
	// technique: closed-form
	// diagnostic ok: true
	// relative error under 1%: true
	// error bar brackets the exact answer: true
}
