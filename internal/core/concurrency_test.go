package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// stressQueries is the mixed workload for the concurrency tests: closed
// forms, scaled sums, bootstrap-only percentiles, a UDF, grouping, and a
// query that triggers the diagnostic's full subsample ladder.
var stressQueries = []string{
	"SELECT AVG(Time) FROM Sessions",
	"SELECT SUM(Time), COUNT(*) FROM Sessions WHERE Time > 50",
	"SELECT PERCENTILE(Time, 0.9) FROM Sessions",
	"SELECT City, AVG(Time) FROM Sessions GROUP BY City",
	"SELECT PERCENTILE(Time, 0.5) FROM Sessions WHERE City = 'NYC'",
	"SELECT RANGE(Time) FROM Sessions",
	"SELECT STDDEV(Time) FROM Sessions GROUP BY City",
}

// stressEngine builds the shared fixture: a sampled Sessions table plus the
// RANGE UDF the workload references.
func stressEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, _ := buildSessions(t, cfg, 20000)
	e.RegisterUDF("RANGE", func(values, _ []float64) float64 {
		if len(values) == 0 {
			return 0
		}
		lo, hi := values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	})
	e.RegisterUDF("STDDEV", func(values, _ []float64) float64 {
		if len(values) < 2 {
			return 0
		}
		var sum float64
		for _, v := range values {
			sum += v
		}
		mean := sum / float64(len(values))
		var ss float64
		for _, v := range values {
			ss += (v - mean) * (v - mean)
		}
		return ss / float64(len(values)-1)
	})
	if err := e.BuildSamples("Sessions", 4000); err != nil {
		t.Fatal(err)
	}
	return e
}

// answerKey flattens the statistically meaningful fields of an answer so
// two answers can be compared for bit-identity.
func answerKey(a *Answer) string {
	s := fmt.Sprintf("sample=%d counters=%+v", a.SampleRows, a.Counters)
	for _, g := range a.Groups {
		s += fmt.Sprintf("|%s", g.Key)
		for _, agg := range g.Aggs {
			s += fmt.Sprintf(";%s est=%x half=%x rel=%x tech=%s diag=%v/%s exact=%v",
				agg.Name, agg.Estimate, agg.ErrorBar.HalfWidth, agg.RelErr,
				agg.Technique, agg.DiagnosticOK, agg.DiagnosticReason, agg.Exact)
		}
	}
	return s
}

// TestConcurrentStress runs the mixed workload from many goroutines against
// one engine and requires every concurrent answer — estimates, error bars,
// diagnostic verdicts, and executor counters — to be bit-identical to the
// serial answer for the same query. Run under -race this is the
// race-cleanliness proof for the whole pipeline.
func TestConcurrentStress(t *testing.T) {
	workers := 8
	rounds := 3
	if testing.Short() {
		workers, rounds = 4, 1
	}
	serial := stressEngine(t, Config{Seed: 42})
	want := make(map[string]string, len(stressQueries))
	for _, q := range stressQueries {
		ans, err := serial.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want[q] = answerKey(ans)
	}

	shared := stressEngine(t, Config{Seed: 42})
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(stressQueries))
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger each worker's starting query so different query
				// shapes overlap in time.
				for i := range stressQueries {
					q := stressQueries[(i+w)%len(stressQueries)]
					ans, err := shared.Run(context.Background(), q)
					if err != nil {
						errs <- fmt.Errorf("worker %d %q: %w", w, q, err)
						return
					}
					if got := answerKey(ans); got != want[q] {
						errs <- fmt.Errorf("worker %d %q: concurrent answer diverged from serial\n got %s\nwant %s",
							w, q, got, want[q])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentCatalogMutation interleaves sample/UDF registration with
// queries; under -race this proves the copy-on-write catalog is sound. The
// queries' answers are not compared (the catalog is changing underneath
// them) — only that each completes without error.
func TestConcurrentCatalogMutation(t *testing.T) {
	e := stressEngine(t, Config{Seed: 5})
	stop := make(chan struct{})
	var mutErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.BuildSamples("Sessions", 500+100*(i%5)); err != nil {
				mutErr = err
				return
			}
			if err := e.BuildStratifiedSample("Sessions", "City", 200); err != nil {
				mutErr = err
				return
			}
			e.RegisterUDF(fmt.Sprintf("F%d", i), func(values, _ []float64) float64 {
				return float64(len(values))
			})
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				for _, q := range stressQueries {
					if _, err := e.Run(context.Background(), q); err != nil {
						t.Errorf("query during mutation: %v", err)
						return
					}
				}
			}
		}()
	}
	// Let queries finish first, then stop the mutator.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	if mutErr != nil {
		t.Fatalf("catalog mutation: %v", mutErr)
	}
}

// settleGoroutines waits for the goroutine count to drop back to at most
// base, tolerating the runtime's own background goroutines.
func settleGoroutines(t *testing.T, base int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n
}

// TestCancellationNoLeaks cancels queries mid-flight — during the
// bootstrap/diagnostic phase, the expensive part — and checks the three
// cancellation contracts: the error wraps context.Canceled and carries the
// qN query id, the engine returns promptly (within 50ms of the cancel,
// i.e. cancellation latency is one kernel block, not one column), and no
// worker goroutine outlives the call.
func TestCancellationNoLeaks(t *testing.T) {
	// Large sample + large K so an uncancelled run takes far longer than
	// the latency bound we assert (roughly seconds, not minutes — the
	// calibration run below executes once uncancelled).
	e, _ := buildSessions(t, Config{Seed: 6, BootstrapK: 1200, Workers: 4}, 20000)
	if err := e.BuildSamples("Sessions", 8000); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT PERCENTILE(Time, 0.9) FROM Sessions"

	// Calibrate: the uncancelled query must be slow enough that an early
	// return could only come from cancellation.
	start := time.Now()
	if _, err := e.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 200*time.Millisecond {
		t.Skipf("uncancelled query too fast (%v) to observe cancellation", full)
	}

	// The 50ms contract is for production builds; the race detector's ~10x
	// instrumentation slowdown inflates wall-clock latency, so scale the
	// bound rather than lose the (still tight) assertion under -race.
	bound := 50 * time.Millisecond
	if raceDetectorEnabled {
		bound = 500 * time.Millisecond
	}
	base := runtime.NumGoroutine()
	for _, delay := range []time.Duration{
		5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		start := time.Now()
		ans, err := e.Run(ctx, q)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			t.Fatalf("delay %v: query completed (%v) despite cancellation", delay, elapsed)
		}
		if ans != nil {
			t.Errorf("delay %v: cancelled query returned a non-nil answer", delay)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("delay %v: error %v does not wrap context.Canceled", delay, err)
		}
		if want := "q"; !containsQueryID(err.Error()) {
			t.Errorf("delay %v: error %q does not carry the %sN query id", delay, err, want)
		}
		if over := elapsed - delay; over > bound {
			t.Errorf("delay %v: returned %v after cancel, want <= %v", delay, over, bound)
		}
	}
	if n := settleGoroutines(t, base); n > base {
		t.Errorf("goroutines leaked: %d before, %d after settle", base, n)
	}
}

// TestDeadlineExceededIdentity covers the deadline flavour of cancellation
// plus the trace outcome label.
func TestDeadlineExceededIdentity(t *testing.T) {
	tr := obs.NewTracer(obs.Options{})
	e, _ := buildSessions(t, Config{Seed: 8, BootstrapK: 20000, Workers: 2, Obs: tr}, 50000)
	if err := e.BuildSamples("Sessions", 40000); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := e.Run(ctx, "SELECT PERCENTILE(Time, 0.5) FROM Sessions")
	if err == nil {
		t.Skip("query finished inside 5ms; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	last, ok := tr.Last()
	if !ok {
		t.Fatal("no trace recorded")
	}
	if last.Outcome != "cancelled" {
		t.Errorf("trace outcome = %q, want %q", last.Outcome, "cancelled")
	}
}

// containsQueryID reports whether the error message carries a "qN" token —
// the engine's per-query identifier.
func containsQueryID(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == 'q' && s[i+1] >= '0' && s[i+1] <= '9' {
			return true
		}
	}
	return false
}

// TestCountersAdditiveUnderConcurrency checks the executor's scan counters
// aggregate exactly: each concurrent run's counters equal the serial run's,
// so shared counter state is not leaking between queries.
func TestCountersAdditiveUnderConcurrency(t *testing.T) {
	e := stressEngine(t, Config{Seed: 10})
	const q = "SELECT SUM(Time) FROM Sessions WHERE Time > 50"
	ref, err := e.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]exec.Counters, 6)
	for i := range got {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ans, err := e.Run(context.Background(), q)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			got[i] = ans.Counters
		}()
	}
	wg.Wait()
	for i, c := range got {
		if c != ref.Counters {
			t.Errorf("run %d counters %+v != serial %+v", i, c, ref.Counters)
		}
	}
}
