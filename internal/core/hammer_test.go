package core

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/watchdog"
)

// TestObsHTTPHammer hits every debug surface concurrently while queries
// (and watchdog audits) run. The assertion is the race detector's: no
// handler may observe tracer, registry, event log or watchdog state
// without synchronization. Statuses are checked too — the trace endpoint
// may 404 once the ring evicts the requested id, everything else must 200.
func TestObsHTTPHammer(t *testing.T) {
	wd := watchdog.New(watchdog.Config{AuditFraction: 0.25, Synchronous: true})
	e, _ := buildSessions(t, Config{
		Seed: 26, Workers: 2, BootstrapK: 20,
		MetricsAddr: "127.0.0.1:0",
		EventLog:    obs.NewEventLog(io.Discard, obs.EventLogOptions{}),
		Watchdog:    wd,
	}, 10000)
	defer e.Close()
	if err := e.BuildSamples("Sessions", 2000); err != nil {
		t.Fatal(err)
	}
	addr, err := e.MetricsEndpoint()
	if err != nil {
		t.Fatal(err)
	}

	const queryWorkers, queriesPer = 3, 8
	var running atomic.Int32
	running.Store(queryWorkers)
	var wg sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer running.Add(-1)
			for i := 0; i < queriesPer; i++ {
				q := fmt.Sprintf("SELECT AVG(Time), COUNT(*) FROM Sessions WHERE Time > %d", 40+w*10+i)
				if _, err := e.Query(q); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	paths := []string{
		"/metrics",
		"/debug/queries",
		"/debug/queries/1/trace",
		"/debug/histograms",
		"/debug/calibration",
		"/debug/pprof/cmdline",
	}
	for _, path := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			// Keep polling as long as any query worker runs, so requests
			// genuinely overlap live mutation; then one final read.
			for done := false; !done; done = running.Load() == 0 {
				resp, err := http.Get("http://" + addr + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("GET %s: read: %v", path, err)
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
				case resp.StatusCode == http.StatusNotFound &&
					path == "/debug/queries/1/trace":
					// Ring eviction; still a valid concurrent read.
				default:
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()

	// The surfaces must have seen real traffic: every query traced, some
	// audited.
	if got := len(e.Tracer().Recent()); got == 0 {
		t.Fatal("no traces recorded")
	}
	if st := wd.Status(); st.Observations != queryWorkers*queriesPer {
		t.Fatalf("watchdog observed %d queries, want %d",
			st.Observations, queryWorkers*queriesPer)
	}
}
