package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestTraceQueriesThroughEngine drives synthetic trace queries through the
// full engine: each query's population becomes a registered table, UDFs
// come from the workload library, and every answer must be a sane estimate
// of the exact answer — the workload → SQL → plan → exec → estimate chain
// end to end.
func TestTraceQueriesThroughEngine(t *testing.T) {
	trace := workload.Generate(workload.TraceConfig{
		Kind:                workload.Conviva,
		NumQueries:          16,
		PopulationSize:      50000,
		Seed:                909,
		AdversarialFraction: 0, // benign data: estimates should be tight
	})
	e := New(Config{Seed: 909, Workers: 2, SkipDiagnostics: true, BootstrapK: 30})
	for _, u := range workload.UDFLibrary {
		e.RegisterUDF(u.Name, u.Fn)
	}
	ran := 0
	for i, spec := range trace {
		tblName := fmt.Sprintf("t%d", i)
		tbl := table.MustNew(table.Schema{{Name: "v", Type: table.Float64}},
			table.Float64Col(spec.Population))
		if err := e.RegisterTable(tblName, tbl); err != nil {
			t.Fatal(err)
		}
		if err := e.BuildSamples(tblName, 10000); err != nil {
			t.Fatal(err)
		}
		q := spec.SQL(tblName, "v")
		ans, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got := ans.Groups[0].Aggs[0].Estimate
		want := spec.Query.Eval(spec.Population)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: degenerate estimate %v", q, got)
			continue
		}
		// On benign data a 10k/50k sample estimate should land within 15%
		// of the exact answer — except MIN/MAX, whose sample extremes
		// systematically undershoot population extremes on unbounded
		// data (precisely the sensitivity §2.3.1 warns about); for those
		// only the ordering sanity is checked.
		switch spec.Query.Kind {
		case estimator.Min:
			if got < want {
				t.Errorf("%s: sample MIN %v below population MIN %v", q, got, want)
			}
		case estimator.Max:
			if got > want {
				t.Errorf("%s: sample MAX %v above population MAX %v", q, got, want)
			}
		default:
			if want != 0 && math.Abs(got-want)/math.Abs(want) > 0.15 {
				t.Errorf("%s: estimate %v vs exact %v (>15%% off)", q, got, want)
			}
		}
		ran++
	}
	if ran < 10 {
		t.Fatalf("only %d trace queries ran", ran)
	}
}
