package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// BatchRequest is one query's slot in a shared-scan batch submission.
type BatchRequest struct {
	// Ctx cancels this member only (nil = background). The shared physical
	// pass itself is not cancelled by a single member: it is one partition
	// sweep serving the whole batch, and batchmates still need it.
	Ctx   context.Context
	Query string
	Opts  RunOptions
}

// BatchResponse pairs one member's answer with its error; exactly one of
// the two is set.
type BatchResponse struct {
	Ans *Answer
	Err error
}

// BatchKey reports whether a query is eligible for shared-scan batching
// and, if so, an opaque key identifying the (table, sample) it would
// execute against — two queries are batchable together exactly when their
// keys are equal. Queries that would run exactly (no usable sample) are
// not batchable: the exact path is the fallback of last resort and is kept
// latency-isolated. The key embeds the sample's storage identity, so a
// BuildSamples call between two BatchKey calls naturally separates old and
// new submissions.
func (e *Engine) BatchKey(query string) (string, bool) {
	def, rt, err := e.analyze(nil, query)
	if err != nil {
		return "", false
	}
	st := e.pickSample(def, rt)
	if st == nil {
		return "", false
	}
	return fmt.Sprintf("%s/%p", def.Table, st.Data), true
}

// cloneAnswer copies a memoized answer for a deduped batch member: same
// groups, error bars and techniques (the inputs are byte-identical), but
// the member's own plan, counter share and wall-clock. Groups are
// deep-copied so a later per-member exact fallback cannot leak into a
// batchmate's answer.
func cloneAnswer(lead *Answer, p *plan.Plan, counters exec.Counters, start time.Time) *Answer {
	ans := *lead
	ans.Plan = p
	ans.Counters = counters
	ans.Groups = append([]GroupAnswer(nil), lead.Groups...)
	for gi := range ans.Groups {
		ans.Groups[gi].Aggs = append([]AggAnswer(nil), lead.Groups[gi].Aggs...)
	}
	if lead.Simulated != nil {
		sim := *lead.Simulated
		ans.Simulated = &sim
	}
	ans.Elapsed = time.Since(start)
	return &ans
}

// RunSharedBatch answers a batch of queries with one shared physical pass
// (exec.RunShared) where possible. Members are grouped on the sample the
// engine would pick for them solo; members picking a different sample, or
// no sample at all (exact execution), run individually and concurrently —
// the batch former upstream groups by BatchKey, so in the common case
// every member shares the scan. Each member keeps its own trace, event-log
// record, watchdog observation, per-member context and rejected-diagnostic
// fallback, and its answer is bit-identical to what RunWithOptions would
// have produced, because scans contribute no randomness.
func (e *Engine) RunSharedBatch(reqs []BatchRequest) []BatchResponse {
	out := make([]BatchResponse, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	gen := e.gen.Load()

	type memberState struct {
		ctx   context.Context
		qt    *obs.QueryTrace
		def   *plan.QueryDef
		rt    *registeredTable
		st    *exec.StoredTable
		p     *plan.Plan
		opt   plan.Options
		start time.Time
	}
	states := make([]*memberState, len(reqs))
	var shared, solo []int
	var batchST *exec.StoredTable
	for i, r := range reqs {
		ms := &memberState{ctx: r.Ctx, start: time.Now()}
		if ms.ctx == nil {
			ms.ctx = context.Background()
		}
		var tc obs.TraceContext
		ms.ctx, tc = obs.EnsureTrace(ms.ctx)
		ms.qt = e.obs.StartQuery(r.Query)
		ms.qt.SetTraceContext(tc)
		if r.Opts.QueueWait > 0 {
			ms.qt.SetQueueWait(r.Opts.QueueWait)
		}
		states[i] = ms
		// Answer reuse applies to batch members too: a replay costs no slot
		// in the shared pass. Replays are answer-neutral because re-execution
		// would be bit-identical anyway (randomness is (seed, stream) derived).
		if hit := e.answerCacheGet(gen, r.Query, r.Opts.BootstrapK); hit != nil {
			hit.Elapsed = time.Since(ms.start)
			ms.qt.Root().SetAttr("answer_cached", true)
			out[i] = BatchResponse{Ans: hit}
			e.finishQuery(ms.ctx, ms.qt, r.Query, hit, nil, true)
			continue
		}
		def, rt, err := e.analyze(ms.qt, r.Query)
		if err != nil {
			out[i].Err = err
			e.finishQuery(ms.ctx, ms.qt, r.Query, nil, err, true)
			continue
		}
		ms.def, ms.rt = def, rt
		ms.st = e.pickSample(def, rt)
		if ms.st == nil {
			solo = append(solo, i)
			continue
		}
		if batchST == nil {
			batchST = ms.st
		}
		if ms.st != batchST {
			// Different sample than the batch's: still answered, just not
			// from the shared pass.
			solo = append(solo, i)
			continue
		}
		p, opt, err := e.buildApproxPlan(ms.qt, r.Query, def, ms.st, r.Opts.BootstrapK)
		if err != nil {
			out[i].Err = err
			e.finishQuery(ms.ctx, ms.qt, r.Query, nil, err, true)
			continue
		}
		ms.p, ms.opt = p, opt
		shared = append(shared, i)
	}

	// Mismatched and exact members run individually, concurrent with the
	// shared pass.
	var wg sync.WaitGroup
	for _, i := range solo {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms := states[i]
			q := reqs[i].Query
			var ans *Answer
			var err error
			if ms.st == nil {
				ans, err = e.runExact(ms.ctx, ms.qt, ms.qt.Root(), q, ms.def, ms.rt)
			} else {
				ans, err = e.runApproximate(ms.ctx, ms.qt, q, ms.def, ms.rt, ms.st,
					reqs[i].Opts.BootstrapK)
				if err == nil && !e.cfg.DisableFallback {
					err = e.applyFallback(ms.ctx, ms.qt, ans, ms.def, ms.rt)
				}
			}
			if err != nil {
				out[i].Err = err
				e.finishQuery(ms.ctx, ms.qt, q, nil, err, true)
				return
			}
			e.answerCachePut(gen, q, reqs[i].Opts.BootstrapK, ans)
			out[i] = BatchResponse{Ans: ans}
			e.finishQuery(ms.ctx, ms.qt, q, ans, nil, true)
		}(i)
	}

	if len(shared) > 0 {
		items := make([]exec.SharedItem, len(shared))
		for si, i := range shared {
			ms := states[i]
			items[si] = exec.SharedItem{
				Ctx:  ms.ctx,
				Plan: ms.p,
				Cfg:  e.execConfig(ms.qt.Root()),
			}
		}
		first := states[shared[0]]
		tables := map[string]*exec.StoredTable{first.def.Table: batchST}
		results, errs := exec.RunShared(context.Background(), items, tables, e.udfRegistry())
		// Answer assembly is memoized alongside the executor's whole-plan
		// dedup: closed-form error bars walk the full projected column, so
		// recomputing them for members whose plans were deduped (identical
		// Explain rendering under one engine seed ⇒ identical Result) would
		// rebuild byte-identical answers the slow way.
		assembled := map[string]*Answer{}
		for si, i := range shared {
			ms := states[i]
			q := reqs[i].Query
			err := errs[si]
			var ans *Answer
			if err == nil {
				sig := ms.p.Explain()
				if lead, ok := assembled[sig]; ok {
					ans = cloneAnswer(lead, ms.p, results[si].Counters, ms.start)
				} else {
					ans, err = e.answerFromResult(ms.qt, q, ms.def, ms.opt, ms.p,
						results[si], ms.st, ms.start)
					if err == nil {
						assembled[sig] = ans
					}
				}
			} else {
				err = fmt.Errorf("core: %s: approximate execution: %w",
					e.queryID(ms.qt, q), err)
			}
			if err == nil {
				ans.SharedScan = true
				if !e.cfg.DisableFallback {
					err = e.applyFallback(ms.ctx, ms.qt, ans, ms.def, ms.rt)
				}
			}
			if err != nil {
				out[i].Err = err
				e.finishQuery(ms.ctx, ms.qt, q, nil, err, true)
				continue
			}
			e.answerCachePut(gen, q, reqs[i].Opts.BootstrapK, ans)
			out[i] = BatchResponse{Ans: ans}
			e.finishQuery(ms.ctx, ms.qt, q, ans, nil, true)
		}
	}
	wg.Wait()
	return out
}
