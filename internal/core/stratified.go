package core

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/table"
)

// stratifiedSample is a per-key-capped sample (BlinkDB's stratified sample
// family): rare groups keep all their rows, large groups are capped, so
// GROUP BY answers have usable error bars for every group — a uniform
// sample starves rare groups.
type stratifiedSample struct {
	keyColumn string
	st        *exec.StoredTable
	// groupFraction maps each key to the sampling fraction its stratum
	// received, needed to scale per-group SUM/COUNT estimates.
	groupFraction map[string]float64
}

// BuildStratifiedSample builds a stratified sample over the named key
// column with at most capPerGroup rows per distinct key. The engine
// prefers it over uniform samples for queries grouping by that column.
// Like BuildSamples, the catalog slice is replaced copy-on-write under the
// engine lock so concurrent queries keep their snapshot.
func (e *Engine) BuildStratifiedSample(name, keyColumn string, capPerGroup int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rt, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("core: unknown table %q", name)
	}
	if capPerGroup <= 0 {
		return fmt.Errorf("core: cap per group must be positive")
	}
	col := rt.full.ColumnByName(keyColumn)
	if col == nil {
		return fmt.Errorf("core: table %q has no column %q", name, keyColumn)
	}
	keys, err := stringKeys(col)
	if err != nil {
		return fmt.Errorf("core: stratified key %q: %w", keyColumn, err)
	}

	// Collect row indices per key, cap each stratum by a seeded shuffle.
	byKey := map[string][]int{}
	for i, k := range keys {
		byKey[k] = append(byKey[k], i)
	}
	groupNames := make([]string, 0, len(byKey))
	for k := range byKey {
		groupNames = append(groupNames, k)
	}
	sort.Strings(groupNames)

	src := e.src.Split()
	var idx []int
	fractions := make(map[string]float64, len(groupNames))
	for _, k := range groupNames {
		rows := byKey[k]
		take := len(rows)
		if take > capPerGroup {
			take = capPerGroup
		}
		src.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		idx = append(idx, rows[:take]...)
		fractions[k] = float64(take) / float64(len(rows))
	}
	// Shuffle the assembled sample so contiguous subsets stay random
	// within strata interleaving.
	src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

	data := rt.full.Gather(idx)
	if !e.cfg.DisableZoneMaps {
		data.BuildZones()
	}
	rt.stratified = append(append([]*stratifiedSample(nil), rt.stratified...),
		&stratifiedSample{
			keyColumn: keyColumn,
			st: &exec.StoredTable{
				Data:    data,
				PopRows: rt.full.NumRows(),
				Cached:  true,
			},
			groupFraction: fractions,
		})
	e.gen.Add(1)
	return nil
}

func stringKeys(col table.Column) ([]string, error) {
	switch c := col.(type) {
	case table.StringCol:
		return c, nil
	case table.StrReader:
		// Block-backed string column: decode once into a flat slice. The
		// stratified build touches every row anyway, so a bulk decode is
		// the cheapest access pattern.
		out := make([]string, c.Len())
		c.ReadStr(out, 0)
		return out, nil
	default:
		return nil, fmt.Errorf("stratified sampling requires a string key column")
	}
}

// stratifiedFor returns a stratified sample matching the query's GROUP BY
// column, or nil.
func (rt *registeredTable) stratifiedFor(def *plan.QueryDef) *stratifiedSample {
	if len(def.GroupBy) != 1 {
		return nil
	}
	for _, s := range rt.stratified {
		if equalFold(s.keyColumn, def.GroupBy[0]) {
			return s
		}
	}
	return nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
