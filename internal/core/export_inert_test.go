package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/alert"
)

// TestExportAndAlertsDoNotPerturbAnswers extends the inertness invariant
// to this PR's observers: with the OTLP span exporter (filesink) and the
// unified alert bus attached, answers, error bars and verdicts stay
// bit-identical to a bare engine. The exporter draws its span identities
// from crypto/rand and its own goroutine; neither may touch the engine's
// seeded RNG stream.
func TestExportAndAlertsDoNotPerturbAnswers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	mk := func(instrumented bool) *Engine {
		cfg := Config{Seed: 11, Workers: 3, BootstrapK: 30}
		if instrumented {
			cfg.Obs = obs.NewTracer(obs.Options{})
			cfg.ObsConfig = obs.Config{ExportPath: path}
			cfg.Alerts = alert.New(alert.Config{})
		}
		e, _ := buildSessions(t, cfg, 30000)
		if err := e.BuildSamples("Sessions", 8000); err != nil {
			t.Fatal(err)
		}
		return e
	}
	wired, plain := mk(true), mk(false)
	defer plain.Close() //nolint:errcheck

	for _, q := range obsTestQueries {
		a, err := wired.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Groups) != len(b.Groups) {
			t.Fatalf("%s: group counts differ", q)
		}
		for gi := range a.Groups {
			for ai := range a.Groups[gi].Aggs {
				x, y := a.Groups[gi].Aggs[ai], b.Groups[gi].Aggs[ai]
				if x.Estimate != y.Estimate ||
					x.ErrorBar.HalfWidth != y.ErrorBar.HalfWidth ||
					x.DiagnosticOK != y.DiagnosticOK ||
					x.Technique != y.Technique {
					t.Fatalf("%s: instrumented %+v != plain %+v", q, x, y)
				}
			}
		}
	}

	// Close drains the exporter; the filesink must actually have run.
	if err := wired.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("exporter filesink never wrote: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("exporter filesink is empty — spans were not exported")
	}
}
