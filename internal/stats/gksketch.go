package stats

import (
	"math"
	"sort"
)

// GKSketch is a Greenwald–Khanna ε-approximate streaming quantile summary.
// After observing n values, Quantile(q) returns a value whose rank is
// within ±εn of the true q-quantile rank while storing O((1/ε)·log(εn))
// tuples. The engine's PERCENTILE aggregate uses it so percentile queries
// stream like any other aggregate instead of buffering whole columns.
type GKSketch struct {
	eps     float64
	n       int
	entries []gkEntry // sorted by v
	buf     []float64 // small insertion buffer, merged on compress
}

type gkEntry struct {
	v     float64
	g     int // rank gap to previous entry's min rank
	delta int // uncertainty in this entry's rank
}

// NewGKSketch returns a sketch with rank error εn. Typical eps: 0.005.
func NewGKSketch(eps float64) *GKSketch {
	if eps <= 0 || eps >= 1 {
		panic("stats: GK sketch eps must be in (0, 1)")
	}
	return &GKSketch{eps: eps}
}

// Add inserts a value into the sketch.
func (s *GKSketch) Add(v float64) {
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.bufCap() {
		s.flush()
	}
}

func (s *GKSketch) bufCap() int {
	c := int(1 / (2 * s.eps))
	if c < 16 {
		c = 16
	}
	return c
}

// Count returns the number of values observed.
func (s *GKSketch) Count() int { return s.n + len(s.buf) }

func (s *GKSketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]gkEntry, 0, len(s.entries)+len(s.buf))
	bi := 0
	for _, e := range s.entries {
		for bi < len(s.buf) && s.buf[bi] <= e.v {
			merged = append(merged, s.newEntry(s.buf[bi], len(merged) == 0))
			bi++
		}
		merged = append(merged, e)
	}
	for bi < len(s.buf) {
		merged = append(merged, gkEntry{v: s.buf[bi], g: 1, delta: 0})
		bi++
	}
	s.n += len(s.buf)
	s.buf = s.buf[:0]
	s.entries = merged
	s.compress()
}

func (s *GKSketch) newEntry(v float64, first bool) gkEntry {
	delta := 0
	if !first && s.n > 0 {
		delta = int(2*s.eps*float64(s.n)) - 1
		if delta < 0 {
			delta = 0
		}
	}
	return gkEntry{v: v, g: 1, delta: delta}
}

func (s *GKSketch) compress() {
	if len(s.entries) < 3 {
		return
	}
	threshold := int(2 * s.eps * float64(s.n))
	out := s.entries[:0]
	out = append(out, s.entries[0])
	for i := 1; i < len(s.entries)-1; i++ {
		e := s.entries[i]
		next := s.entries[i+1]
		if e.g+next.g+next.delta <= threshold {
			// Merge e into next (in place in the original slice so the
			// loop sees the accumulated g).
			s.entries[i+1].g += e.g
			continue
		}
		out = append(out, e)
	}
	out = append(out, s.entries[len(s.entries)-1])
	s.entries = out
}

// Quantile returns an ε-approximate q-quantile of the observed values. It
// returns NaN when the sketch is empty or q lies outside [0, 1].
func (s *GKSketch) Quantile(q float64) float64 {
	s.flush()
	if s.n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := int(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	margin := int(math.Ceil(s.eps * float64(s.n)))
	rmin := 0
	for i, e := range s.entries {
		rmin += e.g
		if i == len(s.entries)-1 || rmin+e.delta >= rank-margin && rmin >= rank-margin {
			return e.v
		}
		// Peek: if the next entry would overshoot rank+margin, stop here.
		next := s.entries[i+1]
		if rmin+next.g+next.delta > rank+margin {
			return e.v
		}
	}
	return s.entries[len(s.entries)-1].v
}

// Size returns the number of stored tuples (a test hook for the space
// bound).
func (s *GKSketch) Size() int { return len(s.entries) }

// Merge folds another sketch into this one (parallel percentile
// reduction). The merged rank error is bounded by the sum of the two
// sketches' errors; both sketches should be built with the same eps. The
// other sketch is flushed but otherwise unmodified.
func (s *GKSketch) Merge(o *GKSketch) {
	s.flush()
	o.flush()
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n = o.n
		s.entries = append(s.entries[:0], o.entries...)
		return
	}
	// Merge the two sorted entry lists; deltas grow by the counterpart's
	// local uncertainty, per Greenwald–Khanna merge semantics.
	merged := make([]gkEntry, 0, len(s.entries)+len(o.entries))
	i, j := 0, 0
	for i < len(s.entries) || j < len(o.entries) {
		switch {
		case j >= len(o.entries):
			merged = append(merged, s.entries[i])
			i++
		case i >= len(s.entries):
			merged = append(merged, o.entries[j])
			j++
		case s.entries[i].v <= o.entries[j].v:
			merged = append(merged, s.entries[i])
			i++
		default:
			merged = append(merged, o.entries[j])
			j++
		}
	}
	s.entries = merged
	s.n += o.n
	s.compress()
}
