// Package stats provides the statistical primitives the AQP pipeline is
// built on: streaming moments (Welford), quantiles (exact and sketched),
// empirical distributions, the normal and Student-t distributions, and the
// symmetric centered interval construction from §2.2 of the paper.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Moments accumulates count, mean, variance, min and max in one pass using
// Welford's numerically stable update. The zero value is an empty
// accumulator ready for use.
type Moments struct {
	n     float64 // total weight
	mean  float64
	m2    float64 // sum of squared deviations (times weight)
	min   float64
	max   float64
	empty bool // tracks "no observations yet"; inverted so zero value works
	seen  bool
}

// Add folds a single observation into the accumulator.
func (m *Moments) Add(x float64) { m.AddWeighted(x, 1) }

// AddWeighted folds an observation with non-negative weight w. Zero-weight
// observations are ignored entirely (they do not affect min/max), matching
// the semantics of Poissonized resampling where weight 0 means "the row is
// absent from this resample".
func (m *Moments) AddWeighted(x, w float64) {
	if w <= 0 {
		return
	}
	if !m.seen {
		m.min, m.max = x, x
		m.seen = true
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n += w
	delta := x - m.mean
	m.mean += delta * w / m.n
	m.m2 += w * delta * (x - m.mean)
}

// Merge folds another accumulator into this one (parallel reduction).
func (m *Moments) Merge(o *Moments) {
	if !o.seen {
		return
	}
	if !m.seen {
		*m = *o
		return
	}
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	m.mean += delta * o.n / n
	m.m2 += o.m2 + delta*delta*m.n*o.n/n
	m.n = n
}

// Count returns the total weight folded in so far.
func (m *Moments) Count() float64 { return m.n }

// Mean returns the weighted mean, or NaN when empty.
func (m *Moments) Mean() float64 {
	if !m.seen {
		return math.NaN()
	}
	return m.mean
}

// Variance returns the population variance, or NaN when empty.
func (m *Moments) Variance() float64 {
	if !m.seen || m.n == 0 {
		return math.NaN()
	}
	return m.m2 / m.n
}

// SampleVariance returns the Bessel-corrected sample variance, or NaN when
// fewer than two units of weight have been observed.
func (m *Moments) SampleVariance() float64 {
	if !m.seen || m.n <= 1 {
		return math.NaN()
	}
	return m.m2 / (m.n - 1)
}

// Stddev returns the population standard deviation.
func (m *Moments) Stddev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation, or NaN when empty.
func (m *Moments) Min() float64 {
	if !m.seen {
		return math.NaN()
	}
	return m.min
}

// Max returns the largest observation, or NaN when empty.
func (m *Moments) Max() float64 {
	if !m.seen {
		return math.NaN()
	}
	return m.max
}

// Sum returns the weighted sum of observations.
func (m *Moments) Sum() float64 {
	if !m.seen {
		return 0
	}
	return m.mean * m.n
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or NaN when empty.
func Variance(xs []float64) float64 {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return m.Variance()
}

// SampleVariance returns the Bessel-corrected variance of xs.
func SampleVariance(xs []float64) float64 {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return m.SampleVariance()
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or NaN when empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN when empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The input is not modified. It returns NaN for empty input or q outside
// [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for pre-sorted input, avoiding the copy.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WeightedQuantile returns the q-quantile of (xs, ws) where ws are
// non-negative weights (e.g. Poissonized resample multiplicities). Rows
// with zero weight are ignored. Returns NaN when total weight is zero.
func WeightedQuantile(xs, ws []float64, q float64) float64 {
	if len(xs) != len(ws) || len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	type wx struct{ x, w float64 }
	items := make([]wx, 0, len(xs))
	total := 0.0
	for i, x := range xs {
		if ws[i] > 0 {
			items = append(items, wx{x, ws[i]})
			total += ws[i]
		}
	}
	if total == 0 {
		return math.NaN()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].x < items[j].x })
	target := q * total
	cum := 0.0
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return it.x
		}
	}
	return items[len(items)-1].x
}

// SymmetricHalfWidth returns the half-width a of the smallest interval
// [center-a, center+a] that covers at least ceil(alpha * len(xs)) of the
// values xs. This is the "smallest symmetric interval around θ(S) that
// covers α·p elements" construction used both for true confidence
// intervals and inside the diagnostic (Algorithm 1).
//
// It returns NaN for empty input or alpha outside (0, 1].
func SymmetricHalfWidth(xs []float64, center, alpha float64) float64 {
	n := len(xs)
	if n == 0 || alpha <= 0 || alpha > 1 {
		return math.NaN()
	}
	devs := make([]float64, n)
	for i, x := range xs {
		devs[i] = math.Abs(x - center)
	}
	sort.Float64s(devs)
	k := int(math.Ceil(alpha * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return devs[k-1]
}

// Histogram is a fixed-width bucket histogram over [lo, hi); values outside
// the range land in clamped edge buckets. It supports the latency and
// speedup CDF plots in the benchmark harness.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	count   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Buckets[idx]++
	h.count++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int { return h.count }

// CDF returns, for each bucket upper edge, the fraction of recorded values
// at or below it.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Buckets))
	cum := 0
	for i, c := range h.Buckets {
		cum += c
		if h.count > 0 {
			out[i] = float64(cum) / float64(h.count)
		}
	}
	return out
}

// ECDF returns an empirical CDF evaluator for xs. The returned function
// reports the fraction of observations <= x.
func ECDF(xs []float64) func(float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	return func(x float64) float64 {
		if len(sorted) == 0 {
			return math.NaN()
		}
		idx := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
		return float64(idx) / n
	}
}
