package stats

import "math"

// NormalPDF returns the density of N(mu, sigma^2) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(N(mu, sigma^2) <= x).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns P(N(0,1) <= z).
func StdNormalCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// StdNormalQuantile returns the p-quantile of the standard normal
// distribution using Acklam's rational approximation refined by one
// Halley step, accurate to ~1e-15 over (0, 1). It returns ±Inf at the
// endpoints and NaN outside [0, 1].
func StdNormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalQuantile returns the p-quantile of N(mu, sigma^2).
func NormalQuantile(p, mu, sigma float64) float64 {
	return mu + sigma*StdNormalQuantile(p)
}

// StudentTQuantile returns the p-quantile of Student's t distribution with
// df degrees of freedom, via the Cornish–Fisher-style expansion of Hill
// (1970). For df >= ~30 it converges to the normal quantile; closed-form
// CLT intervals on small subsamples use the t correction.
func StudentTQuantile(p float64, df float64) float64 {
	if df <= 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 {
		return math.Inf(-1)
	}
	if p == 1 {
		return math.Inf(1)
	}
	if df > 1e6 {
		return StdNormalQuantile(p)
	}
	// Exact small-df cases.
	switch df {
	case 1:
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		a := 4 * p * (1 - p)
		return 2 * (p - 0.5) * math.Sqrt(2/a)
	}
	z := StdNormalQuantile(p)
	g1 := (z*z*z + z) / 4
	g2 := (5*math.Pow(z, 5) + 16*z*z*z + 3*z) / 96
	g3 := (3*math.Pow(z, 7) + 19*math.Pow(z, 5) + 17*z*z*z - 15*z) / 384
	g4 := (79*math.Pow(z, 9) + 776*math.Pow(z, 7) + 1482*math.Pow(z, 5) -
		1920*z*z*z - 945*z) / 92160
	return z + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}
