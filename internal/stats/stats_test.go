package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMomentsBasic(t *testing.T) {
	var m Moments
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if got := m.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := m.Variance(); got != 2 {
		t.Errorf("Variance = %v, want 2", got)
	}
	if got := m.SampleVariance(); got != 2.5 {
		t.Errorf("SampleVariance = %v, want 2.5", got)
	}
	if got := m.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := m.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := m.Sum(); got != 15 {
		t.Errorf("Sum = %v, want 15", got)
	}
	if got := m.Count(); got != 5 {
		t.Errorf("Count = %v, want 5", got)
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Variance()) ||
		!math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Error("empty Moments should report NaN statistics")
	}
	if m.Sum() != 0 || m.Count() != 0 {
		t.Error("empty Moments should report zero Sum and Count")
	}
}

func TestMomentsWeighted(t *testing.T) {
	// Weight-2 observation must equal two weight-1 observations.
	var a, b Moments
	a.AddWeighted(3, 2)
	a.AddWeighted(7, 1)
	b.Add(3)
	b.Add(3)
	b.Add(7)
	if !almostEqual(a.Mean(), b.Mean(), 1e-12) {
		t.Errorf("weighted mean %v != replicated mean %v", a.Mean(), b.Mean())
	}
	if !almostEqual(a.Variance(), b.Variance(), 1e-12) {
		t.Errorf("weighted var %v != replicated var %v", a.Variance(), b.Variance())
	}
}

func TestMomentsZeroWeightIgnored(t *testing.T) {
	var m Moments
	m.AddWeighted(100, 0) // row absent from resample: must not touch min/max
	m.Add(5)
	if m.Min() != 5 || m.Max() != 5 {
		t.Errorf("zero-weight observation affected extremes: min=%v max=%v",
			m.Min(), m.Max())
	}
}

func TestMomentsMerge(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = src.NormFloat64()*3 + 10
	}
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Moments
	for _, x := range xs[:400] {
		left.Add(x)
	}
	for _, x := range xs[400:] {
		right.Add(x)
	}
	left.Merge(&right)
	if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean %v != whole mean %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged var %v != whole var %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Error("merged extremes differ from whole-pass extremes")
	}
}

func TestMomentsMergeWithEmpty(t *testing.T) {
	var a, b Moments
	a.Add(1)
	a.Add(2)
	before := a.Mean()
	a.Merge(&b) // merging empty is a no-op
	if a.Mean() != before {
		t.Error("merging empty accumulator changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.Mean() != before || b.Count() != 2 {
		t.Error("merging into empty accumulator did not copy state")
	}
}

func TestDescriptiveHelpers(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !almostEqual(Variance(xs), 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", Variance(xs))
	}
	if !almostEqual(SampleVariance(xs), 5.0/3, 1e-12) {
		t.Errorf("SampleVariance = %v", SampleVariance(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty-slice helpers should return NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.75, 7.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile(xs, 1.5)) {
		t.Error("Quantile with q>1 should be NaN")
	}
	if got := Quantile([]float64{42}, 0.99); got != 42 {
		t.Errorf("single-element quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestWeightedQuantile(t *testing.T) {
	xs := []float64{1, 2, 3}
	ws := []float64{1, 1, 1}
	if got := WeightedQuantile(xs, ws, 0.5); got != 2 {
		t.Errorf("uniform-weight median = %v, want 2", got)
	}
	// Heavy weight on 3 drags the median to 3.
	if got := WeightedQuantile(xs, []float64{1, 1, 10}, 0.5); got != 3 {
		t.Errorf("skew-weight median = %v, want 3", got)
	}
	// Zero-weight rows are invisible.
	if got := WeightedQuantile(xs, []float64{0, 1, 0}, 0.5); got != 2 {
		t.Errorf("zero-weight median = %v, want 2", got)
	}
	if !math.IsNaN(WeightedQuantile(xs, []float64{0, 0, 0}, 0.5)) {
		t.Error("all-zero weights should yield NaN")
	}
	if !math.IsNaN(WeightedQuantile(xs, []float64{1, 1}, 0.5)) {
		t.Error("length mismatch should yield NaN")
	}
}

func TestSymmetricHalfWidth(t *testing.T) {
	xs := []float64{-3, -1, 0, 1, 3}
	// Around 0 with alpha=0.6: need 3 of 5 values; |devs| sorted = 0,1,1,3,3.
	if got := SymmetricHalfWidth(xs, 0, 0.6); got != 1 {
		t.Errorf("half width = %v, want 1", got)
	}
	// alpha=1 needs all 5: half width 3.
	if got := SymmetricHalfWidth(xs, 0, 1); got != 3 {
		t.Errorf("full-coverage half width = %v, want 3", got)
	}
	if !math.IsNaN(SymmetricHalfWidth(nil, 0, 0.5)) {
		t.Error("empty input should yield NaN")
	}
	if !math.IsNaN(SymmetricHalfWidth(xs, 0, 0)) {
		t.Error("alpha=0 should yield NaN")
	}
}

// Property: the symmetric interval of half-width a actually covers at least
// ceil(alpha*n) points, and shrinking it below the reported width loses
// coverage.
func TestQuickSymmetricHalfWidthCoverage(t *testing.T) {
	src := rng.New(33)
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 1 + s.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.NormFloat64() * 10
		}
		center := s.NormFloat64()
		alpha := 0.05 + 0.9*s.Float64()
		a := SymmetricHalfWidth(xs, center, alpha)
		covered := 0
		for _, x := range xs {
			if math.Abs(x-center) <= a {
				covered++
			}
		}
		need := int(math.Ceil(alpha * float64(n)))
		if need < 1 {
			need = 1
		}
		return covered >= need
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := StdNormalCDF(c.z); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("StdNormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.0001; p < 1; p += 0.0101 {
		z := StdNormalQuantile(p)
		back := StdNormalCDF(z)
		if !almostEqual(back, p, 1e-10) {
			t.Errorf("round trip failed at p=%v: z=%v back=%v", p, z, back)
		}
	}
}

func TestStdNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("quantile(0) should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("quantile(1) should be +Inf")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) || !math.IsNaN(StdNormalQuantile(1.1)) {
		t.Error("quantile outside [0,1] should be NaN")
	}
	if got := StdNormalQuantile(0.975); !almostEqual(got, 1.959963984540054, 1e-9) {
		t.Errorf("quantile(0.975) = %v", got)
	}
}

func TestNormalQuantileScaling(t *testing.T) {
	got := NormalQuantile(0.975, 10, 2)
	want := 10 + 2*1.959963984540054
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("NormalQuantile = %v, want %v", got, want)
	}
}

func TestStudentTQuantile(t *testing.T) {
	// Reference values (R qt()).
	cases := []struct {
		p, df, want, tol float64
	}{
		{0.975, 1, 12.706204736432095, 1e-9}, // exact formula branch
		{0.975, 2, 4.302652729911275, 1e-9},  // exact formula branch
		{0.975, 5, 2.570581835636197, 5e-3},
		{0.975, 10, 2.2281388519649385, 1e-3},
		{0.975, 30, 2.0422724563012373, 1e-4},
		{0.975, 1000, 1.9623390808264078, 1e-6},
	}
	for _, c := range cases {
		if got := StudentTQuantile(c.p, c.df); !almostEqual(got, c.want, c.tol) {
			t.Errorf("t-quantile(p=%v, df=%v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
	if !math.IsNaN(StudentTQuantile(0.5, -1)) {
		t.Error("negative df should yield NaN")
	}
	// Symmetry.
	if got := StudentTQuantile(0.5, 7); !almostEqual(got, 0, 1e-12) {
		t.Errorf("median of t should be 0, got %v", got)
	}
}

func TestHistogramAndCDF(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps into first bucket
	h.Add(99) // clamps into last bucket
	if h.Count() != 12 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Buckets[0] != 2 || h.Buckets[9] != 2 {
		t.Errorf("clamping failed: %v", h.Buckets)
	}
	cdf := h.CDF()
	if cdf[9] != 1 {
		t.Errorf("CDF should end at 1, got %v", cdf[9])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Error("CDF not monotone")
		}
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with hi<=lo did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestECDF(t *testing.T) {
	f := ECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := f(c.x); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGKSketchAccuracy(t *testing.T) {
	src := rng.New(7)
	const n = 50000
	const eps = 0.01
	sk := NewGKSketch(eps)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.LogNormal(0, 1.5)
		sk.Add(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := sk.Quantile(q)
		// Verify rank error: got must sit within ±2εn ranks of the target.
		rank := sort.SearchFloat64s(xs, got)
		target := q * n
		if math.Abs(float64(rank)-target) > 2*eps*n+1 {
			t.Errorf("q=%v: sketch rank %d vs target %v exceeds 2εn", q, rank, target)
		}
	}
}

func TestGKSketchSpaceBound(t *testing.T) {
	sk := NewGKSketch(0.01)
	src := rng.New(8)
	for i := 0; i < 200000; i++ {
		sk.Add(src.Float64())
	}
	sk.flush()
	// The GK bound is O((1/eps) log(eps n)); allow a lenient constant.
	limit := int(20.0 / 0.01)
	if sk.Size() > limit {
		t.Errorf("sketch holds %d tuples, want <= %d", sk.Size(), limit)
	}
}

func TestGKSketchEmptyAndEdge(t *testing.T) {
	sk := NewGKSketch(0.05)
	if !math.IsNaN(sk.Quantile(0.5)) {
		t.Error("empty sketch quantile should be NaN")
	}
	sk.Add(42)
	if got := sk.Quantile(0.5); got != 42 {
		t.Errorf("single-value quantile = %v", got)
	}
	if !math.IsNaN(sk.Quantile(1.5)) {
		t.Error("q>1 should be NaN")
	}
	if sk.Count() != 1 {
		t.Errorf("Count = %d", sk.Count())
	}
}

func TestGKSketchPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGKSketch(0) did not panic")
		}
	}()
	NewGKSketch(0)
}

// Property: GK sketch min/max quantiles bracket every observation batch.
func TestQuickGKSketchBracketing(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		sk := NewGKSketch(0.05)
		n := 10 + s.Intn(500)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := s.NormFloat64() * 100
			sk.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return sk.Quantile(0) >= lo-1e-9 && sk.Quantile(1) <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMomentsAdd(b *testing.B) {
	var m Moments
	for i := 0; i < b.N; i++ {
		m.Add(float64(i))
	}
}

func BenchmarkGKSketchAdd(b *testing.B) {
	sk := NewGKSketch(0.01)
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		sk.Add(src.Float64())
	}
}

func TestGKSketchMerge(t *testing.T) {
	src := rng.New(40)
	const n = 30000
	const eps = 0.01
	a := NewGKSketch(eps)
	b := NewGKSketch(eps)
	all := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		va := src.LogNormal(0, 1)
		vb := src.NormFloat64() * 10
		a.Add(va)
		b.Add(vb)
		all = append(all, va, vb)
	}
	a.Merge(b)
	if a.Count() != 2*n {
		t.Fatalf("merged count = %d", a.Count())
	}
	sort.Float64s(all)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := a.Quantile(q)
		rank := sort.SearchFloat64s(all, got)
		target := q * float64(len(all))
		// Merged error bound: ~2x single-sketch error.
		if math.Abs(float64(rank)-target) > 4*eps*float64(len(all))+1 {
			t.Errorf("merged q=%v: rank %d vs target %v", q, rank, target)
		}
	}
}

func TestGKSketchMergeEdges(t *testing.T) {
	a := NewGKSketch(0.05)
	b := NewGKSketch(0.05)
	a.Merge(b) // both empty: no-op
	if a.Count() != 0 {
		t.Error("merging empties changed count")
	}
	b.Add(1)
	b.Add(2)
	a.Merge(b) // into empty: copies
	if a.Count() != 2 {
		t.Error("merge into empty failed")
	}
	if q := a.Quantile(0.5); q != 1 && q != 2 {
		t.Errorf("merged median = %v, want 1 or 2 (ε-approximate)", q)
	}
	c := NewGKSketch(0.05)
	a.Merge(c) // empty other: no-op
	if a.Count() != 2 {
		t.Error("merging an empty sketch changed count")
	}
}
