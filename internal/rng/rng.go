// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the repository:
// Poisson (with a fast path for rate 1, the heart of Poissonized
// resampling), Gaussian, exponential, Pareto, lognormal and Zipf.
//
// Every experiment in this repository is seeded, so that each figure and
// table can be regenerated bit-for-bit. The generator is a SplitMix64
// stream: it is fast, passes BigCrush, and — crucially for parallel
// resampling — can be split into independent child streams without
// coordination.
package rng

import "math"

// Source is a deterministic pseudo-random stream. The zero value is not
// usable; obtain a Source from New or Split.
//
// Source is not safe for concurrent use. Parallel workers should each own a
// Source obtained via Split, which yields statistically independent streams.
type Source struct {
	state uint64
	gamma uint64 // odd Weyl increment; distinct gammas give distinct streams

	// cached second Gaussian variate from the polar method.
	hasGauss bool
	gauss    float64
}

const (
	goldenGamma = 0x9e3779b97f4a7c15
	mix1        = 0xbf58476d1ce4e5b9
	mix2        = 0x94d049bb133111eb
)

// New returns a Source seeded with seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed, gamma: goldenGamma}
}

// NewWithStream returns a Source on an independent stream identified by
// stream. Distinct stream values yield statistically independent sequences
// even under the same seed, which lets deterministic experiments assign one
// stream per (query, trial) pair.
func NewWithStream(seed, stream uint64) *Source {
	s := StreamSource(seed, stream)
	return &s
}

// StreamSource is the value form of NewWithStream: it returns a Source by
// value so hot loops that open one stream per (resample, block) pair can
// keep the generator on the stack instead of allocating. The stream
// derivation is identical to NewWithStream's.
func StreamSource(seed, stream uint64) Source {
	// Derive an odd gamma from the stream id by running it through the
	// SplitMix64 finalizer; force the low bit so the Weyl sequence has
	// period 2^64.
	g := mix64(stream*goldenGamma + goldenGamma)
	g |= 1
	return Source{state: mix64(seed + g), gamma: g}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mix1
	z = (z ^ (z >> 27)) * mix2
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += s.gamma
	return mix64(s.state)
}

// Split returns a new Source whose future outputs are statistically
// independent of the receiver's. The receiver advances by one step.
func (s *Source) Split() *Source {
	seed := s.Uint64()
	gamma := mix64(s.Uint64()) | 1
	return &Source{state: seed, gamma: gamma}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path: multiply-high; reject to remove modulo bias.
	x := s.Uint64()
	hi, lo := mulHiLo(x, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			x = s.Uint64()
			hi, lo = mulHiLo(x, n)
		}
	}
	return hi
}

func mulHiLo(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	tLo, tHi := t&mask32, t>>32
	t = aLo*bHi + tLo
	hi = aHi*bHi + tHi + t>>32
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard Gaussian variate (mean 0, stddev 1) using
// the Marsaglia polar method with caching of the paired variate.
func (s *Source) NormFloat64() float64 {
	if s.hasGauss {
		s.hasGauss = false
		return s.gauss
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.gauss = v * f
		s.hasGauss = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (s *Source) ExpFloat64() float64 {
	// Inversion; guard against log(0).
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: support [xm, ∞), tail index
// alpha. Smaller alpha means a heavier tail; alpha <= 2 has infinite
// variance, alpha <= 1 infinite mean. These heavy tails are what break
// bootstrap and CLT error bars in the paper's §3.
func (s *Source) Pareto(xm, alpha float64) float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// LogNormal returns exp(N(mu, sigma^2)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// poisson1CDF is the CDF of Poisson(1) truncated at 18; the residual mass
// beyond 18 is below 1e-16 and is absorbed by the final bucket.
var poisson1CDF = func() [19]float64 {
	var cdf [19]float64
	p := math.Exp(-1) // P(X = 0)
	sum := p
	cdf[0] = sum
	for k := 1; k < 19; k++ {
		p /= float64(k) // P(X=k) = e^-1 / k!
		sum += p
		cdf[k] = sum
	}
	cdf[18] = 1
	return cdf
}()

// Poisson1 returns a Poisson(1) variate via table inversion. This is the
// inner loop of Poissonized resampling (each row of each resample draws one
// of these), so it is branch-light: the expected number of comparisons is
// ~2.4.
func (s *Source) Poisson1() int {
	u := s.Float64()
	// Unrolled common cases: P(0)=.3679, P(<=1)=.7358, P(<=2)=.9197.
	if u < poisson1CDF[1] {
		if u < poisson1CDF[0] {
			return 0
		}
		return 1
	}
	if u < poisson1CDF[2] {
		return 2
	}
	for k := 3; k < 19; k++ {
		if u < poisson1CDF[k] {
			return k
		}
	}
	return 18
}

// Poisson returns a Poisson(lambda) variate. Small rates use Knuth's
// product method; large rates use the PTRS transformed-rejection sampler of
// Hörmann, which is O(1) in lambda.
func (s *Source) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda == 1:
		return s.Poisson1()
	case lambda < 30:
		return s.poissonKnuth(lambda)
	default:
		return s.poissonPTRS(lambda)
	}
}

func (s *Source) poissonKnuth(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm ("The transformed
// rejection method for generating Poisson random variables", 1993).
func (s *Source) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Binomial returns a Binomial(n, p) variate. For the moderate n used in
// sampling-without-replacement bookkeeping a simple inversion/waiting-time
// scheme suffices; large n falls back to a Gaussian approximation refined
// by exact trials on the residual.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - s.Binomial(n, 1-p)
	}
	if float64(n)*p < 30 {
		// Waiting-time method: sum geometric inter-arrival gaps.
		logQ := math.Log(1 - p)
		count := 0
		t := 0
		for {
			u := s.Float64()
			if u == 0 {
				continue
			}
			t += int(math.Log(u)/logQ) + 1
			if t > n {
				return count
			}
			count++
		}
	}
	// Gaussian approximation with clamping; adequate for simulator use.
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*s.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Zipf generates integers in [0, n) with P(k) ∝ 1/(k+1)^s, via precomputed
// CDF inversion. It models the skewed group-by key and city/session-key
// distributions in production traces.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (s > 0).
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed integer in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
