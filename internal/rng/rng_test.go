package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestNewWithStreamIndependence(t *testing.T) {
	a := NewWithStream(7, 0)
	b := NewWithStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct streams produced %d collisions in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Child and parent should not track each other.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided %d times in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over 8 buckets.
	s := New(6)
	const buckets = 8
	const draws = 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expect := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from expected %v", b, c, expect)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(10)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoSupportAndMedian(t *testing.T) {
	s := New(12)
	const xm, alpha = 2.0, 3.0
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		v := s.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("pareto variate %v below scale %v", v, xm)
		}
		// Median of Pareto(xm, alpha) is xm * 2^(1/alpha).
		if v < xm*math.Pow(2, 1/alpha) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("pareto median check: %v of mass below true median, want ~0.5", frac)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(13)
	const mu, sigma = 1.5, 0.75
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if s.LogNormal(mu, sigma) < math.Exp(mu) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median check: %v below exp(mu), want ~0.5", frac)
	}
}

func TestPoisson1Moments(t *testing.T) {
	s := New(14)
	const n = 500000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := float64(s.Poisson1())
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("Poisson(1) mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Poisson(1) variance = %v, want ~1", variance)
	}
}

func TestPoisson1MatchesPMF(t *testing.T) {
	s := New(15)
	const n = 1000000
	var counts [6]int
	for i := 0; i < n; i++ {
		k := s.Poisson1()
		if k < len(counts) {
			counts[k]++
		}
	}
	// P(k) = e^-1/k!
	factorial := 1.0
	for k := 0; k < len(counts); k++ {
		if k > 0 {
			factorial *= float64(k)
		}
		want := math.Exp(-1) / factorial
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.003 {
			t.Errorf("P(Poisson1 = %d) = %v, want %v", k, got, want)
		}
	}
}

func TestPoissonMomentsAcrossRates(t *testing.T) {
	for _, lambda := range []float64{0.5, 1, 5, 29, 30, 100, 1000} {
		s := New(16)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/n)+0.01*lambda {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.05 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonEdgeRates(t *testing.T) {
	s := New(17)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.5}, {1000, 0.01}, {100000, 0.2}, {50, 0.9}}
	for _, c := range cases {
		s := New(18)
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := s.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.02*want+0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(19)
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := s.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := s.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
}

func TestZipfSkew(t *testing.T) {
	src := New(20)
	z := NewZipf(src, 100, 1.2)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 must dominate rank 1, which must dominate rank 10.
	if !(counts[0] > counts[1] && counts[1] > counts[10]) {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[1]=%d counts[10]=%d",
			counts[0], counts[1], counts[10])
	}
	// P(0)/P(1) should be about 2^1.2 ≈ 2.3.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.8 || ratio > 2.9 {
		t.Fatalf("Zipf rank ratio = %v, want ~2.3", ratio)
	}
}

func TestZipfPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(src, 0, 1) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

// Property: Uint64n(n) < n for all n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	s := New(21)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the same (seed, stream) pair always reproduces the same prefix.
func TestQuickStreamReproducibility(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a := NewWithStream(seed, stream)
		b := NewWithStream(seed, stream)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Poisson variates are non-negative for any rate.
func TestQuickPoissonNonNegative(t *testing.T) {
	s := New(22)
	f := func(lambdaRaw float64) bool {
		lambda := math.Mod(math.Abs(lambdaRaw), 200)
		return s.Poisson(lambda) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPoisson1(b *testing.B) {
	s := New(1)
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += s.Poisson1()
	}
	sinkInt = sum
}

func BenchmarkPoissonLarge(b *testing.B) {
	s := New(1)
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += s.Poisson(1000)
	}
	sinkInt = sum
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += s.NormFloat64()
	}
	sinkFloat = sum
}

var (
	sinkInt   int
	sinkFloat float64
)
