package resample

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func weightedMean(values, weights []float64) float64 {
	if weights == nil {
		return stats.Mean(values)
	}
	var sum, wsum float64
	for i, v := range values {
		sum += v * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return math.NaN()
	}
	return sum / wsum
}

func TestPoissonWeightsMoments(t *testing.T) {
	src := rng.New(1)
	w := PoissonWeights(src, 200000)
	var m stats.Moments
	for _, v := range w {
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("weight %v is not a non-negative integer", v)
		}
		m.Add(v)
	}
	if math.Abs(m.Mean()-1) > 0.02 {
		t.Errorf("weight mean = %v, want ~1", m.Mean())
	}
	if math.Abs(m.Variance()-1) > 0.03 {
		t.Errorf("weight variance = %v, want ~1", m.Variance())
	}
}

func TestPoissonWeightsRate(t *testing.T) {
	src := rng.New(2)
	w := PoissonWeightsRate(src, 100000, 2.5)
	if m := stats.Mean(w); math.Abs(m-2.5) > 0.05 {
		t.Errorf("rate-2.5 weight mean = %v", m)
	}
	w0 := PoissonWeightsRate(src, 100, 0)
	for _, v := range w0 {
		if v != 0 {
			t.Fatal("rate-0 weights must all be zero")
		}
	}
}

func TestFillPoissonWeightsReusesStorage(t *testing.T) {
	src := rng.New(3)
	w := make([]float64, 1000)
	FillPoissonWeights(src, w)
	sum := stats.Sum(w)
	if sum == 0 {
		t.Fatal("weights all zero")
	}
	FillPoissonWeights(src, w)
	if stats.Sum(w) == sum {
		t.Fatal("refill produced identical weights; RNG not advancing")
	}
}

func TestWeightMatrixShapeAndIndependence(t *testing.T) {
	src := rng.New(4)
	m := WeightMatrix(src, 500, 10)
	if len(m) != 10 {
		t.Fatalf("k = %d", len(m))
	}
	for _, row := range m {
		if len(row) != 500 {
			t.Fatalf("n = %d", len(row))
		}
	}
	// Distinct resamples must differ.
	same := true
	for i := range m[0] {
		if m[0][i] != m[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two resamples have identical weights")
	}
}

func TestExactMultinomialWeightsSumExactly(t *testing.T) {
	src := rng.New(5)
	for _, n := range []int{1, 10, 1000, 20000} {
		w := ExactMultinomialWeights(src, n)
		if got := stats.Sum(w); got != float64(n) {
			t.Fatalf("n=%d: weights sum to %v", n, got)
		}
	}
}

func TestMaterializePreservesSupport(t *testing.T) {
	src := rng.New(6)
	xs := []float64{10, 20, 30}
	out := Materialize(src, xs)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("materialized value %v not in support", v)
		}
	}
}

func TestEstimatesAllStrategiesAgreeOnMean(t *testing.T) {
	// The bootstrap distribution of the mean should be centered on the
	// sample mean with stddev ≈ s/√n under every strategy.
	src := rng.New(7)
	n := 2000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 50 + 10*src.NormFloat64()
	}
	sampleMean := stats.Mean(xs)
	wantSE := math.Sqrt(stats.SampleVariance(xs) / float64(n))
	for _, strat := range []Strategy{Poissonized, ExactMultinomial, TupleAugmentation} {
		ests := Estimates(src, xs, 300, weightedMean, strat)
		if len(ests) != 300 {
			t.Fatalf("%v: got %d estimates", strat, len(ests))
		}
		m := stats.Mean(ests)
		se := stats.Stddev(ests)
		if math.Abs(m-sampleMean) > 4*wantSE {
			t.Errorf("%v: bootstrap mean %v far from sample mean %v", strat, m, sampleMean)
		}
		if se < 0.6*wantSE || se > 1.5*wantSE {
			t.Errorf("%v: bootstrap SE %v, want ~%v", strat, se, wantSE)
		}
	}
}

func TestEstimatesDeterministicUnderSeed(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := Estimates(rng.New(42), xs, 20, weightedMean, Poissonized)
	b := Estimates(rng.New(42), xs, 20, weightedMean, Poissonized)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different bootstrap estimates")
		}
	}
}

func TestUniformLift(t *testing.T) {
	xs := []float64{2, 4, 6}
	if got := Uniform(weightedMean, xs); got != 4 {
		t.Errorf("Uniform mean = %v, want 4", got)
	}
}

func TestStrategyString(t *testing.T) {
	if Poissonized.String() != "poissonized" ||
		ExactMultinomial.String() != "exact-multinomial" ||
		TupleAugmentation.String() != "tuple-augmentation" {
		t.Error("strategy names wrong")
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

// The §5.1 concentration claim: for |S| = 10,000, the Poissonized resample
// size lands in [9500, 10500] with probability ≈ 0.9999994. With 200k
// trials we verify ≥ 0.9999.
func TestSizeConcentrationClaim(t *testing.T) {
	src := rng.New(8)
	p := SizeDistribution(src, 10000, 200000, 9500, 10500)
	if p < 0.9999 {
		t.Errorf("P(size in [9500,10500]) = %v, want >= 0.9999", p)
	}
}

// Property: Poissonized resample sizes concentrate like Normal(n, sqrt(n)):
// ±4σ captures essentially everything.
func TestQuickSizeWithinFourSigma(t *testing.T) {
	src := rng.New(9)
	f := func(nRaw uint16) bool {
		n := int(nRaw)%5000 + 100
		sigma := math.Sqrt(float64(n))
		size := src.Poisson(float64(n))
		return math.Abs(float64(size-n)) < 6*sigma // 6σ: essentially certain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: exact multinomial weights always sum to n and are non-negative.
func TestQuickExactMultinomialInvariant(t *testing.T) {
	src := rng.New(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw) + 1
		w := ExactMultinomialWeights(src, n)
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The §5.2/§5.1 performance claim behind Poissonization: generating
// streamed Poisson weights is far cheaper than materializing resamples
// (TA), which Pol & Jermaine measured at 8–9× a plain query.
func BenchmarkPoissonizedWeights(b *testing.B) {
	src := rng.New(1)
	w := make([]float64, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FillPoissonWeights(src, w)
	}
}

func BenchmarkExactMultinomialWeights(b *testing.B) {
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactMultinomialWeights(src, 100000)
	}
}

func BenchmarkTupleAugmentation(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Materialize(src, xs)
	}
}

func BenchmarkResamplingStrategies(b *testing.B) {
	xs := make([]float64, 20000)
	src := rng.New(2)
	for i := range xs {
		xs[i] = src.NormFloat64()
	}
	for _, strat := range []Strategy{Poissonized, ExactMultinomial, TupleAugmentation} {
		b.Run(strat.String(), func(b *testing.B) {
			s := rng.New(3)
			for i := 0; i < b.N; i++ {
				Estimates(s, xs, 10, weightedMean, strat)
			}
		})
	}
}
