// Package resample implements the resampling strategies of §5 of the
// paper. The production path is Poissonized resampling: instead of
// materializing each bootstrap resample (which requires exact
// with-replacement draws and O(|S|) extra memory per resample), every row
// is independently assigned a Poisson(1) multiplicity per resample. The
// resample size is then only approximately |S| — Normal(|S|, √|S|) — which
// the bootstrap tolerates, and weight generation becomes an embarrassingly
// parallel streaming operation.
//
// Two baselines are provided for the ablation benchmarks: exact
// multinomial resampling (the statistically exact counts, requiring a
// coupled draw) and tuple augmentation (TA), which materializes each
// resample as a physical copy, the strategy Pol & Jermaine found to be
// 8–9× slower than the plain query.
package resample

import (
	"context"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/rng"
)

// PoissonWeights returns n independent Poisson(1) multiplicities as
// float64 (ready to multiply into aggregation columns). This is one
// resample's weight vector.
func PoissonWeights(src *rng.Source, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(src.Poisson1())
	}
	return w
}

// PoissonWeightsRate returns Poisson(rate) multiplicities; rate != 1
// corresponds to TABLESAMPLE POISSONIZED (100*rate) resamples that are
// larger or smaller than the input, used when subsampling and resampling
// are fused.
func PoissonWeightsRate(src *rng.Source, n int, rate float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(src.Poisson(rate))
	}
	return w
}

// FillPoissonWeights writes Poisson(1) multiplicities into w, reusing its
// storage. The hot loop of the consolidated scan calls this once per
// (row-block, resample) pair.
func FillPoissonWeights(src *rng.Source, w []float64) {
	for i := range w {
		w[i] = float64(src.Poisson1())
	}
}

// WeightMatrix returns k independent Poisson(1) weight vectors over n
// rows: the "augment each tuple with k weights" layout of scan
// consolidation (Fig. 6(a)). The result is resample-major: out[r][i] is
// row i's multiplicity in resample r.
func WeightMatrix(src *rng.Source, n, k int) [][]float64 {
	out := make([][]float64, k)
	for r := range out {
		out[r] = PoissonWeights(src, n)
	}
	return out
}

// ExactMultinomialWeights returns multiplicities for one exact bootstrap
// resample: n draws with replacement from n rows, so the weights sum to
// exactly n. This requires the coupled multinomial draw that Poissonization
// removes; it costs n random draws plus a counting pass.
func ExactMultinomialWeights(src *rng.Source, n int) []float64 {
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[src.Intn(n)]++
	}
	return w
}

// Materialize returns a physically copied with-replacement resample of xs
// (the TA strategy): n gathers plus n·8 bytes of fresh memory per
// resample.
func Materialize(src *rng.Source, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = xs[src.Intn(len(xs))]
	}
	return out
}

// WeightedTheta is a query function evaluated on a weighted dataset:
// weights are row multiplicities (0 = row absent from the resample).
type WeightedTheta func(values, weights []float64) float64

// PlainTheta is a query function on an unweighted dataset.
type PlainTheta func(values []float64) float64

// Uniform lifts a weighted query function to the unweighted case by
// passing nil weights; WeightedTheta implementations must treat nil
// weights as all-ones.
func Uniform(theta WeightedTheta, values []float64) float64 {
	return theta(values, nil)
}

// Strategy selects how bootstrap resamples are produced.
type Strategy int

// Resampling strategies.
const (
	// Poissonized streams independent Poisson(1) weights (production path).
	Poissonized Strategy = iota
	// ExactMultinomial draws coupled counts summing to exactly n.
	ExactMultinomial
	// TupleAugmentation materializes each resample as a physical copy.
	TupleAugmentation
)

func (s Strategy) String() string {
	switch s {
	case Poissonized:
		return "poissonized"
	case ExactMultinomial:
		return "exact-multinomial"
	case TupleAugmentation:
		return "tuple-augmentation"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Estimates runs theta on k resamples of values using the given strategy
// and returns the k point estimates — the bootstrap distribution that the
// bootstrap error operator and the diagnostic both consume.
//
// The Poissonized production path runs on the blocked kernel
// (internal/kernel): two draws from src seed the kernel's
// per-(resample, block) streams, weights are generated block-major into a
// pooled buffer, and results are deterministic given src's state.
func Estimates(src *rng.Source, values []float64, k int, theta WeightedTheta, strategy Strategy) []float64 {
	switch strategy {
	case Poissonized:
		seed, stream := src.Uint64(), src.Uint64()
		out, _ := kernel.Generic(context.Background(), values, k, seed, stream, 1, theta)
		return out
	}
	out := make([]float64, k)
	switch strategy {
	case ExactMultinomial:
		for r := 0; r < k; r++ {
			out[r] = theta(values, ExactMultinomialWeights(src, len(values)))
		}
	case TupleAugmentation:
		for r := 0; r < k; r++ {
			out[r] = theta(Materialize(src, values), nil)
		}
	default:
		panic("resample: unknown strategy")
	}
	return out
}

// SizeDistribution draws trials Poissonized resample sizes over n rows and
// reports the fraction whose size falls inside [lo, hi]. It exists to
// verify the §5.1 concentration claim (P(size ∈ [9500, 10500]) ≈ 0.9999994
// for n = 10,000) without materializing weight vectors.
func SizeDistribution(src *rng.Source, n, trials, lo, hi int) float64 {
	inside := 0
	for t := 0; t < trials; t++ {
		// The total of n iid Poisson(1) variates is Poisson(n).
		size := src.Poisson(float64(n))
		if size >= lo && size <= hi {
			inside++
		}
	}
	return float64(inside) / float64(trials)
}
