package watchdog

import (
	"context"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/estimator"
	"repro/internal/obs"
)

// rec builds a one-aggregate Record; the truth map key is {"", "A"}.
func rec(sql string, rejected bool, iv estimator.Interval) Record {
	return Record{SQL: sql, Sample: "1000", Aggs: []AggRecord{{
		Agg: "A", Interval: iv, Technique: "closed-form", Rejected: rejected,
	}}}
}

// coverAudit returns an AuditFunc whose truth covers the unit interval
// around zero for SQL containing "cover" and misses it otherwise.
func coverAudit() AuditFunc {
	return func(_ context.Context, sql string) (map[AggInstance]float64, error) {
		truth := 10.0
		if strings.Contains(sql, "cover") {
			truth = 0
		}
		return map[AggInstance]float64{{Agg: "A"}: truth}, nil
	}
}

func TestBand(t *testing.T) {
	lo, hi := Band(0.5, 16, 1)
	if lo != 0.375 || hi != 0.625 {
		t.Fatalf("Band(0.5,16,1) = [%v,%v], want [0.375,0.625]", lo, hi)
	}
	if lo, hi := Band(0.95, 0, 3); lo != 0 || hi != 1 {
		t.Fatalf("empty-window band = [%v,%v], want [0,1]", lo, hi)
	}
	if lo, hi := Band(0.95, 4, 3); lo < 0 || hi != 1 {
		t.Fatalf("band not clamped to [0,1]: [%v,%v]", lo, hi)
	}
}

// TestUndercoverageStrictEdge pins the no-flaky-boundaries contract: a
// coverage landing exactly on the band edge does not alert; one more
// missed audit pushes it strictly outside and does.
func TestUndercoverageStrictEdge(t *testing.T) {
	w := New(Config{
		Window: 16, MinAudits: 16, AuditFraction: 1,
		Nominal: 0.5, Tolerance: 1, Synchronous: true,
	})
	w.Bind(coverAudit())
	iv := estimator.Interval{Center: 0, HalfWidth: 1}
	// 6 covered then 10 missed: at the 16th audit coverage is 6/16 =
	// 0.375, exactly the band's lower edge for Band(0.5, 16, 1).
	for i := 0; i < 6; i++ {
		w.Observe(rec("cover", false, iv))
	}
	for i := 0; i < 10; i++ {
		w.Observe(rec("miss", false, iv))
	}
	if alerts := w.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("coverage exactly on the band edge alerted: %+v", alerts)
	}
	// One more miss evicts a covered trial: 5/16 = 0.3125 < 0.375.
	w.Observe(rec("miss", false, iv))
	alerts := w.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Kind != Undercoverage {
		t.Fatalf("alerts = %+v, want one undercoverage", alerts)
	}
	a := alerts[0]
	if a.Window != 16 || a.Lo != 0.375 || a.Observed >= a.Lo {
		t.Fatalf("alert fields off: %+v", a)
	}
	// Refill at the nominal 50% rate until the window re-enters the band;
	// the alert must clear and the episode appear exactly once in history.
	for i := 0; i < 8; i++ {
		w.Observe(rec("cover", false, iv))
		w.Observe(rec("miss", false, iv))
	}
	if alerts := w.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alert did not clear after recovery: %+v", alerts)
	}
	if h := w.History(); len(h) != 1 || h[0].Kind != Undercoverage {
		t.Fatalf("history = %+v, want exactly one undercoverage episode", h)
	}
}

func TestOvercoverageStrictEdge(t *testing.T) {
	w := New(Config{
		Window: 16, MinAudits: 16, AuditFraction: 1,
		Nominal: 0.5, Tolerance: 1, Synchronous: true,
	})
	w.Bind(coverAudit())
	iv := estimator.Interval{Center: 0, HalfWidth: 1}
	// 6 missed then 10 covered: 10/16 = 0.625, exactly the upper edge.
	for i := 0; i < 6; i++ {
		w.Observe(rec("miss", false, iv))
	}
	for i := 0; i < 10; i++ {
		w.Observe(rec("cover", false, iv))
	}
	if alerts := w.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("coverage exactly on the band edge alerted: %+v", alerts)
	}
	// One more covered evicts a miss: 11/16 > 0.625.
	w.Observe(rec("cover", false, iv))
	alerts := w.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Kind != Overcoverage {
		t.Fatalf("alerts = %+v, want one overcoverage", alerts)
	}
}

// TestRejectDriftFloorEdge: with a zero-reject baseline the drift band's
// 5/W floor tolerates exactly half the window at W=10; the 5th reject sits
// on the edge (quiet), the 6th drifts out.
func TestRejectDriftFloorEdge(t *testing.T) {
	w := New(Config{Window: 10, Tolerance: 1, Synchronous: true})
	iv := estimator.Interval{Center: 1, HalfWidth: 0.1}
	for i := 0; i < 10; i++ {
		w.Observe(rec("q", false, iv)) // freeze baseline at 0 rejects
	}
	for i := 0; i < 5; i++ {
		w.Observe(rec("q", true, iv))
	}
	if alerts := w.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("reject rate exactly on the floor edge alerted: %+v", alerts)
	}
	w.Observe(rec("q", true, iv)) // 6/10 > 0.5
	alerts := w.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Kind != RejectDrift {
		t.Fatalf("alerts = %+v, want one reject-drift", alerts)
	}
	if alerts[0].Expected != 0 || alerts[0].Hi != 0.5 {
		t.Fatalf("drift band off: %+v", alerts[0])
	}
}

func TestAuditStrideDeterministic(t *testing.T) {
	var calls atomic.Int64
	w := New(Config{Window: 100, AuditFraction: 0.25, Synchronous: true})
	w.Bind(func(context.Context, string) (map[AggInstance]float64, error) {
		calls.Add(1)
		return map[AggInstance]float64{{Agg: "A"}: 0}, nil
	})
	iv := estimator.Interval{Center: 0, HalfWidth: 1}
	for i := 0; i < 8; i++ {
		w.Observe(rec("q", false, iv))
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("audited %d of 8 at fraction 1/4, want exactly 2", got)
	}
}

func TestExactAndNaNAggsSkipCoverage(t *testing.T) {
	var calls atomic.Int64
	w := New(Config{Window: 10, MinAudits: 1, AuditFraction: 1, Synchronous: true})
	w.Bind(func(context.Context, string) (map[AggInstance]float64, error) {
		calls.Add(1)
		return map[AggInstance]float64{{Agg: "A"}: 1e9}, nil
	})
	w.Observe(Record{SQL: "q", Sample: "exact", Aggs: []AggRecord{{
		Agg: "A", Exact: true, Interval: estimator.Interval{Center: 1},
	}}})
	w.Observe(Record{SQL: "q", Sample: "1000", Aggs: []AggRecord{{
		Agg: "A", Interval: estimator.Interval{Center: 1, HalfWidth: math.NaN()},
	}}})
	st := w.Status()
	for _, k := range st.Keys {
		if k.CoverageWindow != 0 {
			t.Fatalf("exact/NaN agg entered the coverage window: %+v", k)
		}
	}
	if len(w.ActiveAlerts()) != 0 {
		t.Fatalf("unexpected alerts: %+v", w.ActiveAlerts())
	}
}

func TestBackgroundAuditsDrainOnClose(t *testing.T) {
	var calls atomic.Int64
	w := New(Config{Window: 100, AuditFraction: 1, AuditQueue: 64})
	w.Bind(func(context.Context, string) (map[AggInstance]float64, error) {
		calls.Add(1)
		return map[AggInstance]float64{{Agg: "A"}: 0}, nil
	})
	iv := estimator.Interval{Center: 0, HalfWidth: 1}
	for i := 0; i < 10; i++ {
		w.Observe(rec("cover", false, iv))
	}
	w.Close()
	if got := calls.Load(); got != 10 {
		t.Fatalf("Close drained %d audits, want 10", got)
	}
	w.Close() // idempotent
	w.Observe(rec("cover", false, iv))
	if w.Status().Observations != 10 {
		t.Fatal("Observe after Close mutated state")
	}
}

func TestMetricsRendered(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{
		Window: 4, MinAudits: 1, AuditFraction: 1,
		Nominal: 0.5, Tolerance: 1, Synchronous: true, Metrics: reg,
	})
	w.Bind(coverAudit())
	iv := estimator.Interval{Center: 0, HalfWidth: 1}
	w.Observe(rec("cover", false, iv))
	w.Observe(rec("miss", true, iv))
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"aqp_calibration_observations_total 2",
		`aqp_calibration_coverage{agg="A",sample="1000"} 0.5`,
		`aqp_calibration_reject_rate{agg="A",sample="1000"} 0.5`,
		"aqp_calibration_nominal 0.5",
		`aqp_calibration_audits_total{result="covered"} 1`,
		`aqp_calibration_audits_total{result="missed"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestNilWatchdogIsNoop(t *testing.T) {
	var w *Watchdog
	w.Observe(rec("q", false, estimator.Interval{}))
	w.Bind(nil)
	w.Close()
	if w.ActiveAlerts() != nil || w.History() != nil {
		t.Fatal("nil watchdog returned non-nil state")
	}
	if st := w.Status(); len(st.Keys) != 0 {
		t.Fatal("nil watchdog returned keys")
	}
}

func TestHandlerServesStatus(t *testing.T) {
	w := New(Config{Window: 8, MinAudits: 1, AuditFraction: 1, Synchronous: true})
	w.Bind(coverAudit())
	w.Observe(rec("cover", false, estimator.Interval{Center: 0, HalfWidth: 1}))
	st := w.Status()
	if st.Observations != 1 || len(st.Keys) != 1 {
		t.Fatalf("status = %+v", st)
	}
	k := st.Keys[0]
	if k.Coverage != 1 || k.CoverageWindow != 1 || k.AuditsTotal != 1 {
		t.Fatalf("key status = %+v", k)
	}
}
