// Package watchdog is the engine's online calibration monitor: the
// production analogue of the paper's runtime diagnostic, lifted from one
// query to the aggregate picture. The per-query diagnostic (§4) asks "can
// this error estimate be trusted for this query?"; the watchdog asks the
// operator's question — "are the 95% intervals we have been reporting
// actually covering the truth 95% of the time, and is the reject rate
// drifting?" — and answers it with ground truth, not extrapolation.
//
// It keeps rolling windows of diagnostic verdicts, relative CI widths and
// estimator outcomes keyed by (aggregate, sample), re-executes a
// configurable fraction of served queries exactly in the background (the
// audit ladder: truth is affordable occasionally, so spend it where it
// pays), and compares rolling empirical coverage against the nominal
// level under a binomial tolerance band. Coverage outside the band, or a
// reject rate drifting from its baseline, raises a typed Alert, bumps
// aqp_calibration_* metrics, and appears on /debug/calibration.
//
// The watchdog consumes no engine randomness and never touches answers:
// it observes finished queries and re-runs them through the engine's
// exact path, whose results are deterministic. Telemetry-on and
// telemetry-off answers are bit-identical (asserted by core's tests).
package watchdog

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/estimator"
	"repro/internal/obs"
)

// Key identifies one calibration population: an aggregate output (the
// alias, e.g. "AVG(Time)") answered on one sample (the row count as a
// string, or "exact" for full-data answers).
type Key struct {
	Agg    string `json:"agg"`
	Sample string `json:"sample"`
}

func (k Key) String() string { return k.Agg + "@" + k.Sample }

// AggRecord is one aggregate's calibration-relevant outcome in a served
// query.
type AggRecord struct {
	// Group is the GROUP BY key ("" for ungrouped queries); audits match
	// on (Group, Agg).
	Group string
	// Agg is the output alias.
	Agg string
	// Kind is the aggregate kind ("AVG", "SUM", ...) — an opaque
	// pass-through to the audit observer, like Record.Table.
	Kind string
	// Interval is the reported confidence interval.
	Interval estimator.Interval
	// Technique names the error-estimation method used.
	Technique string
	// Rejected reports a diagnostic rejection for this aggregate.
	Rejected bool
	// Exact marks an answer computed on the full dataset (fallback);
	// exact answers are excluded from coverage audits — their intervals
	// cover trivially.
	Exact bool
}

// Record is one served query as the watchdog sees it. Table and
// Predicate are opaque pass-throughs: the watchdog keys its own windows
// by (aggregate, sample) only, but hands both to the audit observer so
// downstream consumers (the history store's workload profiles) can file
// coverage outcomes under richer keys.
type Record struct {
	QID uint64
	// TraceID is the query's distributed-trace id (32 hex chars, "" when
	// tracing is off) — an opaque pass-through, stamped onto audit
	// outcomes so an operator can join an audit back to the client call.
	TraceID   string
	SQL       string
	Sample    string // sample label: row count, or "exact"
	Table     string
	Predicate string
	Aggs      []AggRecord
}

// AggInstance identifies one aggregate output within a query for audit
// matching: the exact re-execution returns one truth value per instance.
type AggInstance struct {
	Group string
	Agg   string
}

// AuditFunc re-executes sql exactly and returns the ground-truth value of
// every aggregate output. The engine binds its exact execution path here;
// tests bind synthetic truths.
type AuditFunc func(ctx context.Context, sql string) (map[AggInstance]float64, error)

// AuditOutcome is one audited aggregate's ground-truth comparison, as
// handed to the audit observer the moment the coverage window absorbs it.
type AuditOutcome struct {
	QID       uint64
	TraceID   string // audited query's trace id ("" when tracing is off)
	SQL       string
	Table     string
	Sample    string
	Predicate string
	Group     string
	Agg       string // output alias, e.g. "AVG(Time)"
	Kind      string // aggregate kind, e.g. "AVG"
	Covered   bool
	Truth     float64
	Interval  estimator.Interval
}

// AuditObserver receives every audit outcome. It runs outside the
// watchdog's lock, after the outcome has entered the coverage windows; a
// slow observer delays subsequent audits, never the serving path.
type AuditObserver func(AuditOutcome)

// AlertKind types the watchdog's alerts.
type AlertKind string

// Alert kinds. Undercoverage is the dangerous direction — the paper's
// "optimistic and incorrect" intervals (Fig. 1's closed-form-on-MIN/MAX
// failure mode); overcoverage is waste (pessimism); reject-drift means
// the diagnostic's behaviour changed for this key.
const (
	Undercoverage AlertKind = "undercoverage"
	Overcoverage  AlertKind = "overcoverage"
	RejectDrift   AlertKind = "reject-drift"
)

// Alert is one raised calibration alert.
type Alert struct {
	Kind AlertKind `json:"kind"`
	Key  Key       `json:"key"`
	// Observed is the offending windowed statistic (empirical coverage
	// or reject rate), Expected its reference (nominal coverage or
	// baseline reject rate), and Lo/Hi the tolerance band that Observed
	// left.
	Observed float64 `json:"observed"`
	Expected float64 `json:"expected"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	// Window is the number of trials the statistic was computed over.
	Window int `json:"window"`
	// Seq is the watchdog's observation sequence number when the alert
	// was raised — a deterministic clock for tests and ordering.
	Seq     uint64 `json:"seq"`
	Message string `json:"message"`
}

// Config tunes a Watchdog. Zero values select the defaults.
type Config struct {
	// Window is the rolling window length per key, in trials (0 = 200).
	Window int
	// MinAudits is the minimum audited trials in a key's window before
	// coverage alerting engages (0 = 20) — below it the binomial band is
	// too wide to mean anything.
	MinAudits int
	// AuditFraction is the fraction of served queries re-executed
	// exactly: every ceil(1/fraction)-th observation is audited, a
	// deterministic cadence that consumes no randomness (0 = no audits;
	// cap 1 = every query).
	AuditFraction float64
	// Nominal is the confidence level the reported intervals claim
	// (0 = 0.95). Empirical coverage is compared against it.
	Nominal float64
	// Tolerance is the z-multiplier of the binomial standard error that
	// widths the acceptance band (0 = 3, a three-sigma band).
	Tolerance float64
	// Metrics, when non-nil, receives the aqp_calibration_* series.
	Metrics *obs.Registry
	// Synchronous runs audits inline inside Observe instead of on the
	// background worker — deterministic for tests; production keeps the
	// default background mode so audits never add latency to the serving
	// path.
	Synchronous bool
	// AuditQueue bounds the background audit queue; audits beyond it are
	// dropped and counted (0 = 64).
	AuditQueue int
	// AlertHistory bounds the retained alert history (0 = 64).
	AlertHistory int
}

func (c Config) window() int {
	if c.Window <= 0 {
		return 200
	}
	return c.Window
}

func (c Config) minAudits() int {
	if c.MinAudits <= 0 {
		return 20
	}
	return c.MinAudits
}

func (c Config) nominal() float64 {
	if c.Nominal <= 0 {
		return 0.95
	}
	return c.Nominal
}

func (c Config) tolerance() float64 {
	if c.Tolerance <= 0 {
		return 3
	}
	return c.Tolerance
}

func (c Config) auditQueue() int {
	if c.AuditQueue <= 0 {
		return 64
	}
	return c.AuditQueue
}

func (c Config) alertHistory() int {
	if c.AlertHistory <= 0 {
		return 64
	}
	return c.AlertHistory
}

// stride converts the audit fraction to a deterministic cadence.
func (c Config) stride() uint64 {
	f := c.AuditFraction
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1
	}
	return uint64(math.Ceil(1 / f))
}

// Band returns the binomial tolerance band around an expected proportion
// p for n trials: p ± z·sqrt(p(1−p)/n), clamped to [0,1]. An observed
// proportion strictly outside the band is out of tolerance; landing
// exactly on an edge is within tolerance, so threshold tests at window
// edges are not flaky.
func Band(p float64, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	half := z * math.Sqrt(p*(1-p)/float64(n))
	lo, hi = p-half, p+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// driftHalfWidth is the tolerance half-width for reject-rate drift around
// baseline rate r over a window of n trials: the binomial band plus a
// floor of 5/n so a zero-variance baseline (no rejects ever seen) still
// tolerates a handful of rejects per window before alerting.
func driftHalfWidth(r float64, n int, z float64) float64 {
	half := z * math.Sqrt(r*(1-r)/float64(n))
	if floor := 5 / float64(n); half < floor {
		half = floor
	}
	return half
}

// boolWindow is a rolling window of boolean trials with lifetime totals.
type boolWindow struct {
	buf   []bool
	next  int
	n     int
	trues int

	total      int64
	truesTotal int64
}

func newBoolWindow(size int) *boolWindow { return &boolWindow{buf: make([]bool, size)} }

func (w *boolWindow) push(v bool) {
	if w.n == len(w.buf) {
		if w.buf[w.next] {
			w.trues--
		}
	} else {
		w.n++
	}
	w.buf[w.next] = v
	if v {
		w.trues++
		w.truesTotal++
	}
	w.next = (w.next + 1) % len(w.buf)
	w.total++
}

// rate returns the windowed proportion of true trials and the window
// count.
func (w *boolWindow) rate() (float64, int) {
	if w.n == 0 {
		return 0, 0
	}
	return float64(w.trues) / float64(w.n), w.n
}

// floatWindow is a rolling window of float trials (relative CI widths).
type floatWindow struct {
	buf  []float64
	next int
	n    int
	sum  float64
}

func newFloatWindow(size int) *floatWindow { return &floatWindow{buf: make([]float64, size)} }

func (w *floatWindow) push(v float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.next]
	} else {
		w.n++
	}
	w.buf[w.next] = v
	w.sum += v
	w.next = (w.next + 1) % len(w.buf)
}

func (w *floatWindow) mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// keyState is the rolling record for one (aggregate, sample) key.
type keyState struct {
	verdicts *boolWindow // true = diagnostic rejected
	coverage *boolWindow // true = audited interval covered the truth
	relWidth *floatWindow
	// baselineRejects is the reject rate over the key's first full
	// window, frozen once the window fills — the reference that "drift"
	// is measured against.
	baselineRejects float64
	baselineSet     bool
	techniques      map[string]int64
}

// auditJob carries one query's reported intervals to the audit worker.
type auditJob struct {
	sql       string
	seq       uint64
	qid       uint64
	traceID   string
	table     string
	sample    string
	predicate string
	key       func(g AggRecord) Key
	aggs      []AggRecord
}

// AlertNotifier receives alert lifecycle transitions: firing=true the
// moment a (kind, key) episode first raises, firing=false when it
// clears. Re-raises while an episode is active do not re-notify. The
// notifier runs outside the watchdog's lock — the unified alert bus
// (internal/obs/alert) binds here via the engine.
type AlertNotifier func(a Alert, firing bool)

// alertTransition is one queued notifier delivery.
type alertTransition struct {
	alert  Alert
	firing bool
}

// Watchdog monitors calibration online. Construct with New; a nil
// *Watchdog is a no-op observer, so callers thread it unconditionally.
type Watchdog struct {
	cfg      Config
	audit    AuditFunc
	observer AuditObserver

	mu       sync.Mutex
	keys     map[Key]*keyState
	keyOrder []Key
	seq      uint64
	active   map[alertID]Alert
	history  []Alert
	notifier AlertNotifier
	pending  []alertTransition // queued notifier deliveries, drained outside mu

	auditCh chan auditJob
	wg      sync.WaitGroup
	closed  bool

	mObs       *obs.Counter
	mAudits    func(result string) *obs.Counter
	mDropped   *obs.Counter
	mAlerts    func(kind AlertKind, k Key) *obs.Counter
	mActive    *obs.Gauge
	mCoverage  func(k Key) *obs.GaugeF
	mReject    func(k Key) *obs.GaugeF
	mRelWidth  func(k Key) *obs.GaugeF
	mAuditLagN *obs.Gauge // queued background audits
}

type alertID struct {
	kind AlertKind
	key  Key
}

// New returns a watchdog. Bind an auditor before observing if
// AuditFraction > 0; without one, audits are skipped and counted as
// errors.
func New(cfg Config) *Watchdog {
	reg := cfg.Metrics
	w := &Watchdog{
		cfg:    cfg,
		keys:   map[Key]*keyState{},
		active: map[alertID]Alert{},
		mObs: reg.Counter("aqp_calibration_observations_total",
			"Queries observed by the calibration watchdog."),
		mAudits: func(result string) *obs.Counter {
			return reg.Counter("aqp_calibration_audits_total",
				"Audit re-executions, by result.", "result", result)
		},
		mDropped: reg.Counter("aqp_calibration_audit_dropped_total",
			"Audits dropped because the background queue was full."),
		mAlerts: func(kind AlertKind, k Key) *obs.Counter {
			return reg.Counter("aqp_calibration_alerts_total",
				"Calibration alerts raised, by kind and key.",
				"kind", string(kind), "agg", k.Agg, "sample", k.Sample)
		},
		mActive: reg.Gauge("aqp_calibration_active_alerts",
			"Calibration alerts currently firing."),
		mCoverage: func(k Key) *obs.GaugeF {
			return reg.GaugeFloat("aqp_calibration_coverage",
				"Rolling empirical coverage of reported intervals vs audited truth.",
				"agg", k.Agg, "sample", k.Sample)
		},
		mReject: func(k Key) *obs.GaugeF {
			return reg.GaugeFloat("aqp_calibration_reject_rate",
				"Rolling diagnostic reject rate.", "agg", k.Agg, "sample", k.Sample)
		},
		mRelWidth: func(k Key) *obs.GaugeF {
			return reg.GaugeFloat("aqp_calibration_rel_width",
				"Rolling mean relative CI half-width.", "agg", k.Agg, "sample", k.Sample)
		},
		mAuditLagN: reg.Gauge("aqp_calibration_audit_queue",
			"Background audits waiting to run."),
	}
	reg.GaugeFloat("aqp_calibration_nominal",
		"Nominal coverage level the watchdog holds intervals to.").Set(cfg.nominal())
	if !cfg.Synchronous && cfg.stride() > 0 {
		w.auditCh = make(chan auditJob, cfg.auditQueue())
		w.wg.Add(1)
		go w.auditWorker()
	}
	return w
}

// Bind sets the audit executor. Call once, before the first Observe;
// the engine binds its exact path here at construction.
func (w *Watchdog) Bind(fn AuditFunc) {
	if w == nil {
		return
	}
	w.audit = fn
}

// SetAuditObserver registers a sink for audit outcomes. Call once,
// before the first Observe, alongside Bind.
func (w *Watchdog) SetAuditObserver(fn AuditObserver) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.observer = fn
	w.mu.Unlock()
}

// SetAlertNotifier registers a sink for alert lifecycle transitions.
// Call once, before the first Observe, alongside Bind.
func (w *Watchdog) SetAlertNotifier(fn AlertNotifier) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.notifier = fn
	w.mu.Unlock()
}

// Close stops the background audit worker, draining queued audits.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	if w.auditCh != nil {
		close(w.auditCh)
		w.wg.Wait()
	}
}

// Observe records one served query: verdicts, CI widths and technique
// counts enter the rolling windows immediately; if the deterministic
// audit cadence selects this query, it is re-executed exactly (inline
// when Synchronous, otherwise on the background worker) and its coverage
// outcome enters the window when the audit completes.
func (w *Watchdog) Observe(rec Record) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.seq++
	seq := w.seq
	for _, a := range rec.Aggs {
		k := Key{Agg: a.Agg, Sample: rec.Sample}
		st := w.key(k)
		st.verdicts.push(a.Rejected)
		if !math.IsNaN(a.Interval.RelativeError()) && !math.IsInf(a.Interval.RelativeError(), 0) {
			st.relWidth.push(a.Interval.RelativeError())
		}
		st.techniques[a.Technique]++
		rate, _ := st.verdicts.rate()
		w.mReject(k).Set(rate)
		w.mRelWidth(k).Set(st.relWidth.mean())
		w.checkRejectDriftLocked(k, st, seq)
	}
	stride := w.cfg.stride()
	doAudit := stride > 0 && seq%stride == 0
	w.mu.Unlock()
	w.drainAlerts()
	w.mObs.Inc()

	if !doAudit {
		return
	}
	job := auditJob{sql: rec.SQL, seq: seq, qid: rec.QID, traceID: rec.TraceID,
		table: rec.Table, sample: rec.Sample, predicate: rec.Predicate, aggs: rec.Aggs,
		key: func(a AggRecord) Key { return Key{Agg: a.Agg, Sample: rec.Sample} }}
	if w.cfg.Synchronous || w.auditCh == nil {
		w.runAudit(job)
		return
	}
	select {
	case w.auditCh <- job:
		w.mAuditLagN.Inc()
	default:
		w.mDropped.Inc()
	}
}

// key returns (creating on first use) the state for k; caller holds mu.
func (w *Watchdog) key(k Key) *keyState {
	st, ok := w.keys[k]
	if !ok {
		size := w.cfg.window()
		st = &keyState{
			verdicts:   newBoolWindow(size),
			coverage:   newBoolWindow(size),
			relWidth:   newFloatWindow(size),
			techniques: map[string]int64{},
		}
		w.keys[k] = st
		w.keyOrder = append(w.keyOrder, k)
	}
	return st
}

func (w *Watchdog) auditWorker() {
	defer w.wg.Done()
	for job := range w.auditCh {
		w.mAuditLagN.Dec()
		w.runAudit(job)
	}
}

// runAudit re-executes one query exactly and folds per-aggregate coverage
// into the rolling windows.
func (w *Watchdog) runAudit(job auditJob) {
	if w.audit == nil {
		w.mAudits("error").Inc()
		return
	}
	truths, err := w.audit(context.Background(), job.sql)
	if err != nil {
		w.mAudits("error").Inc()
		return
	}
	var outcomes []AuditOutcome
	w.mu.Lock()
	observer := w.observer
	for _, a := range job.aggs {
		if a.Exact || math.IsNaN(a.Interval.HalfWidth) {
			continue // no estimated interval to hold to account
		}
		truth, ok := truths[AggInstance{Group: a.Group, Agg: a.Agg}]
		if !ok {
			continue
		}
		covered := a.Interval.Contains(truth)
		k := job.key(a)
		st := w.key(k)
		st.coverage.push(covered)
		if covered {
			w.mAudits("covered").Inc()
		} else {
			w.mAudits("missed").Inc()
		}
		cov, _ := st.coverage.rate()
		w.mCoverage(k).Set(cov)
		w.checkCoverageLocked(k, st, job.seq)
		if observer != nil {
			outcomes = append(outcomes, AuditOutcome{
				QID: job.qid, TraceID: job.traceID, SQL: job.sql,
				Table: job.table, Sample: job.sample, Predicate: job.predicate,
				Group: a.Group, Agg: a.Agg, Kind: a.Kind,
				Covered: covered, Truth: truth, Interval: a.Interval,
			})
		}
	}
	w.mu.Unlock()
	w.drainAlerts()
	for _, o := range outcomes {
		observer(o)
	}
}

// drainAlerts delivers queued alert transitions to the notifier, outside
// the lock — a slow notifier delays audits, never the serving path's
// critical section.
func (w *Watchdog) drainAlerts() {
	w.mu.Lock()
	fn := w.notifier
	pend := w.pending
	w.pending = nil
	w.mu.Unlock()
	if fn == nil {
		return
	}
	for _, t := range pend {
		fn(t.alert, t.firing)
	}
}

// checkCoverageLocked re-evaluates the coverage alert for one key; caller
// holds mu.
func (w *Watchdog) checkCoverageLocked(k Key, st *keyState, seq uint64) {
	cov, n := st.coverage.rate()
	if n < w.cfg.minAudits() {
		return
	}
	nominal := w.cfg.nominal()
	lo, hi := Band(nominal, n, w.cfg.tolerance())
	switch {
	case cov < lo:
		w.raiseLocked(Alert{
			Kind: Undercoverage, Key: k, Observed: cov, Expected: nominal,
			Lo: lo, Hi: hi, Window: n, Seq: seq,
			Message: fmt.Sprintf(
				"%s: empirical coverage %.3f below binomial tolerance [%.3f, %.3f] of nominal %.2f over %d audits — reported intervals are too narrow",
				k, cov, lo, hi, nominal, n),
		})
	case cov > hi:
		w.raiseLocked(Alert{
			Kind: Overcoverage, Key: k, Observed: cov, Expected: nominal,
			Lo: lo, Hi: hi, Window: n, Seq: seq,
			Message: fmt.Sprintf(
				"%s: empirical coverage %.3f above binomial tolerance [%.3f, %.3f] of nominal %.2f over %d audits — reported intervals are wastefully wide",
				k, cov, lo, hi, nominal, n),
		})
	default:
		w.clearLocked(Undercoverage, k)
		w.clearLocked(Overcoverage, k)
	}
}

// checkRejectDriftLocked re-evaluates the reject-drift alert for one key;
// caller holds mu. The key's first full window freezes the baseline; the
// rolling rate is then held to baseline ± driftHalfWidth.
func (w *Watchdog) checkRejectDriftLocked(k Key, st *keyState, seq uint64) {
	rate, n := st.verdicts.rate()
	if !st.baselineSet {
		if n == w.cfg.window() {
			st.baselineRejects = rate
			st.baselineSet = true
		}
		return
	}
	half := driftHalfWidth(st.baselineRejects, n, w.cfg.tolerance())
	lo, hi := st.baselineRejects-half, st.baselineRejects+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if rate < lo || rate > hi {
		w.raiseLocked(Alert{
			Kind: RejectDrift, Key: k, Observed: rate, Expected: st.baselineRejects,
			Lo: lo, Hi: hi, Window: n, Seq: seq,
			Message: fmt.Sprintf(
				"%s: rolling reject rate %.3f drifted outside [%.3f, %.3f] around baseline %.3f over %d queries",
				k, rate, lo, hi, st.baselineRejects, n),
		})
	} else {
		w.clearLocked(RejectDrift, k)
	}
}

// raiseLocked activates an alert (idempotent while the condition holds):
// the first raise per (kind, key) episode appends to history and bumps
// the counter; re-raises while active only refresh the observed value.
func (w *Watchdog) raiseLocked(a Alert) {
	id := alertID{a.Kind, a.Key}
	if _, already := w.active[id]; !already {
		w.mAlerts(a.Kind, a.Key).Inc()
		w.history = append(w.history, a)
		if max := w.cfg.alertHistory(); len(w.history) > max {
			w.history = w.history[len(w.history)-max:]
		}
		if w.notifier != nil {
			w.pending = append(w.pending, alertTransition{alert: a, firing: true})
		}
	}
	w.active[id] = a
	w.mActive.Set(int64(len(w.active)))
}

func (w *Watchdog) clearLocked(kind AlertKind, k Key) {
	id := alertID{kind, k}
	a, was := w.active[id]
	if !was {
		return
	}
	delete(w.active, id)
	if w.notifier != nil {
		w.pending = append(w.pending, alertTransition{alert: a, firing: false})
	}
	w.mActive.Set(int64(len(w.active)))
}

// ActiveAlerts returns the alerts currently firing, ordered by key
// registration then kind.
func (w *Watchdog) ActiveAlerts() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alert, 0, len(w.active))
	for _, k := range w.keyOrder {
		for _, kind := range []AlertKind{Undercoverage, Overcoverage, RejectDrift} {
			if a, ok := w.active[alertID{kind, k}]; ok {
				out = append(out, a)
			}
		}
	}
	return out
}

// History returns the retained raised-alert history, oldest first.
func (w *Watchdog) History() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Alert(nil), w.history...)
}
