package watchdog

import (
	"encoding/json"
	"net/http"
)

// KeyStatus is one (aggregate, sample) population's rolling summary as
// rendered by /debug/calibration.
type KeyStatus struct {
	Key Key `json:"key"`
	// Observations is the lifetime count of queries folded into this key.
	Observations int64 `json:"observations"`
	// RejectRate is the rolling diagnostic reject rate and RejectWindow
	// the number of trials it covers.
	RejectRate   float64 `json:"reject_rate"`
	RejectWindow int     `json:"reject_window"`
	// BaselineRejectRate is the frozen first-window reject rate drift is
	// measured against; meaningful once BaselineSet.
	BaselineRejectRate float64 `json:"baseline_reject_rate"`
	BaselineSet        bool    `json:"baseline_set"`
	// Coverage is the rolling empirical coverage over audited queries,
	// CoverageWindow the audited-trial count, and CoverageLo/Hi the
	// binomial tolerance band currently in force.
	Coverage       float64 `json:"coverage"`
	CoverageWindow int     `json:"coverage_window"`
	CoverageLo     float64 `json:"coverage_lo"`
	CoverageHi     float64 `json:"coverage_hi"`
	// AuditsTotal counts lifetime audited trials for the key.
	AuditsTotal int64 `json:"audits_total"`
	// MeanRelWidth is the rolling mean relative CI half-width.
	MeanRelWidth float64 `json:"mean_rel_width"`
	// Techniques counts queries by error-estimation technique.
	Techniques map[string]int64 `json:"techniques,omitempty"`
}

// Status is the full watchdog state snapshot behind /debug/calibration.
type Status struct {
	Nominal       float64     `json:"nominal"`
	Tolerance     float64     `json:"tolerance"`
	Window        int         `json:"window"`
	MinAudits     int         `json:"min_audits"`
	AuditFraction float64     `json:"audit_fraction"`
	Observations  uint64      `json:"observations"`
	Keys          []KeyStatus `json:"keys"`
	ActiveAlerts  []Alert     `json:"active_alerts"`
	History       []Alert     `json:"history"`
}

// Status snapshots the watchdog's rolling state: every key's coverage,
// reject rate and band, plus active alerts and history.
func (w *Watchdog) Status() Status {
	if w == nil {
		return Status{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Status{
		Nominal:       w.cfg.nominal(),
		Tolerance:     w.cfg.tolerance(),
		Window:        w.cfg.window(),
		MinAudits:     w.cfg.minAudits(),
		AuditFraction: w.cfg.AuditFraction,
		Observations:  w.seq,
		Keys:          make([]KeyStatus, 0, len(w.keyOrder)),
	}
	for _, k := range w.keyOrder {
		ks := w.keys[k]
		rej, rejN := ks.verdicts.rate()
		cov, covN := ks.coverage.rate()
		lo, hi := Band(w.cfg.nominal(), covN, w.cfg.tolerance())
		tech := make(map[string]int64, len(ks.techniques))
		for t, n := range ks.techniques {
			tech[t] = n
		}
		st.Keys = append(st.Keys, KeyStatus{
			Key:                k,
			Observations:       ks.verdicts.total,
			RejectRate:         rej,
			RejectWindow:       rejN,
			BaselineRejectRate: ks.baselineRejects,
			BaselineSet:        ks.baselineSet,
			Coverage:           cov,
			CoverageWindow:     covN,
			CoverageLo:         lo,
			CoverageHi:         hi,
			AuditsTotal:        ks.coverage.total,
			MeanRelWidth:       ks.relWidth.mean(),
			Techniques:         tech,
		})
	}
	for _, k := range w.keyOrder {
		for _, kind := range []AlertKind{Undercoverage, Overcoverage, RejectDrift} {
			if a, ok := w.active[alertID{kind, k}]; ok {
				st.ActiveAlerts = append(st.ActiveAlerts, a)
			}
		}
	}
	st.History = append(st.History, w.history...)
	return st
}

// Handler serves the watchdog's Status as indented JSON — mount it at
// /debug/calibration via obs.Route.
func (w *Watchdog) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		if err := enc.Encode(w.Status()); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
		}
	})
}
