package cache

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// answerCap bounds the number of resident answers; beyond it the entry
// with the oldest last use is dropped. Answers are small (group rows and
// interval floats), so a count bound is sufficient.
const answerCap = 1024

// DefaultAnswerTTL bounds reuse of a finished answer when the engine
// config leaves CacheTTL zero. Catalog changes invalidate immediately via
// the generation counter baked into keys; the TTL only bounds staleness
// relative to wall-clock expectations (freshness of Elapsed-style
// telemetry, operator surprise).
const DefaultAnswerTTL = 60 * time.Second

type ansEntry struct {
	val      any
	stored   time.Time
	lastUsed time.Time
}

// AnswerConfig tunes an AnswerCache.
type AnswerConfig struct {
	// TTL is the maximum age of a reusable answer (0 = DefaultAnswerTTL).
	TTL time.Duration
	// Metrics, when non-nil, receives aqp_cache_* counters for the
	// "answer" layer.
	Metrics *obs.Registry
}

// AnswerCache reuses finished answers for exact-match canonical SQL.
// Values are opaque (the engine stores deep-cloned *core.Answer); keys
// embed the engine's catalog generation so RegisterTable and sample
// rebuilds invalidate by construction. Safe for concurrent use.
type AnswerCache struct {
	mu  sync.Mutex
	m   map[string]*ansEntry
	ttl time.Duration

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	mHits, mMisses, mEvicted *obs.Counter
}

// NewAnswerCache returns an empty answer cache.
func NewAnswerCache(cfg AnswerConfig) *AnswerCache {
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = DefaultAnswerTTL
	}
	c := &AnswerCache{m: map[string]*ansEntry{}, ttl: ttl}
	if reg := cfg.Metrics; reg != nil {
		c.mHits = reg.Counter("aqp_cache_hits_total",
			"Cache hits, by layer.", "layer", "answer")
		c.mMisses = reg.Counter("aqp_cache_misses_total",
			"Cache misses, by layer.", "layer", "answer")
		c.mEvicted = reg.Counter("aqp_cache_evicted_total",
			"Cache entries evicted, by layer.", "layer", "answer")
	}
	return c
}

// TTL returns the configured reuse bound.
func (c *AnswerCache) TTL() time.Duration {
	if c == nil {
		return 0
	}
	return c.ttl
}

// Get returns the cached value for key if present and younger than the
// TTL. Expired entries are dropped on the way out.
func (c *AnswerCache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	now := time.Now()
	c.mu.Lock()
	e, ok := c.m[key]
	if ok && now.Sub(e.stored) > c.ttl {
		delete(c.m, key)
		c.evictions.Add(1)
		c.mEvicted.Inc()
		ok = false
	}
	if ok {
		e.lastUsed = now
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		c.mMisses.Inc()
		return nil, false
	}
	c.hits.Add(1)
	c.mHits.Inc()
	return e.val, true
}

// Put stores a finished answer under key, evicting the least-recently
// used entry when the cache is full.
func (c *AnswerCache) Put(key string, val any) {
	if c == nil {
		return
	}
	now := time.Now()
	c.mu.Lock()
	if _, ok := c.m[key]; !ok && len(c.m) >= answerCap {
		var oldest string
		var oldestT time.Time
		for k, e := range c.m {
			if oldest == "" || e.lastUsed.Before(oldestT) {
				oldest, oldestT = k, e.lastUsed
			}
		}
		delete(c.m, oldest)
		c.evictions.Add(1)
		c.mEvicted.Inc()
	}
	c.m[key] = &ansEntry{val: val, stored: now, lastUsed: now}
	c.mu.Unlock()
}

// Len returns the number of resident answers.
func (c *AnswerCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// AnswerStats is a point-in-time summary of the answer layer.
type AnswerStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	TTL       float64 `json:"ttl_seconds"`
}

// Stats returns the answer layer's counters. Zero values on a nil cache.
func (c *AnswerCache) Stats() AnswerStats {
	if c == nil {
		return AnswerStats{}
	}
	c.mu.Lock()
	entries := len(c.m)
	c.mu.Unlock()
	return AnswerStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		TTL:       c.ttl.Seconds(),
	}
}

// CanonicalSQL normalizes a query for exact-match answer reuse: leading
// and trailing whitespace is dropped and interior whitespace runs
// collapse to a single space, except inside single-quoted string
// literals, which are preserved byte for byte. Case is NOT folded —
// string literals are case-sensitive and the tokenizer-free collapse
// cannot tell identifiers from literals, so `where  city = 'NYC'` and
// `where city = 'NYC'` share an entry while `'nyc'` does not.
func CanonicalSQL(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(q); i++ {
		c := q[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = b.Len() > 0
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(c)
			if c == '\'' {
				inStr = true
			}
		}
	}
	return b.String()
}
