package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// skipKey identifies a zone-map admission decision: the storage identity
// (the *table.Table pointer of the scanned table or sample — immutable
// after registration) plus the EXACT predicate text. Skip lists depend on
// literal values (WHERE t < 5 admits different blocks than WHERE t < 50),
// so this layer must NOT use literal-normalized signatures.
type skipKey struct {
	store any
	pred  string
}

type skipEntry struct {
	skip    []bool
	skipped int64
}

// selKey identifies a selectivity observation: storage identity plus the
// literal-normalized predicate signature from internal/obs/history, so
// repeated query *shapes* (same structure, different literals) share one
// estimate for planning hints.
type selKey struct {
	store any
	sig   string
}

// selEntry holds an exponentially-weighted selectivity estimate. Hints
// only pre-size executor buffers and inform planning; they never alter
// which rows pass a predicate, so a stale or shared estimate is
// answer-neutral by construction.
type selEntry struct {
	sel float64
	n   int64
}

// predMemoCap bounds each memo map; admission decisions are small but a
// hostile workload could mint unbounded distinct literals.
const predMemoCap = 4096

// PredMemo caches zone-map admission decisions (exact-keyed) and measured
// predicate selectivity (signature-keyed) across queries. Safe for
// concurrent use.
type PredMemo struct {
	mu    sync.RWMutex
	skips map[skipKey]skipEntry
	sels  map[selKey]selEntry

	hits   atomic.Int64
	misses atomic.Int64

	mHits, mMisses *obs.Counter
}

// NewPredMemo returns an empty predicate memo, registering aqp_cache_*
// metrics for the "predicate" layer when reg is non-nil.
func NewPredMemo(reg *obs.Registry) *PredMemo {
	m := &PredMemo{
		skips: map[skipKey]skipEntry{},
		sels:  map[selKey]selEntry{},
	}
	if reg != nil {
		m.mHits = reg.Counter("aqp_cache_hits_total",
			"Cache hits, by layer.", "layer", "predicate")
		m.mMisses = reg.Counter("aqp_cache_misses_total",
			"Cache misses, by layer.", "layer", "predicate")
	}
	return m
}

// Lookup returns a memoized zone-map skip list for (store, exact
// predicate text), or ok=false when the analyzer walk must run. The
// returned slice is shared read-only.
func (m *PredMemo) Lookup(store any, pred string) (skip []bool, skipped int64, ok bool) {
	if m == nil {
		return nil, 0, false
	}
	m.mu.RLock()
	e, ok := m.skips[skipKey{store, pred}]
	m.mu.RUnlock()
	if ok {
		m.hits.Add(1)
		m.mHits.Inc()
		return e.skip, e.skipped, true
	}
	m.misses.Add(1)
	m.mMisses.Inc()
	return nil, 0, false
}

// Store memoizes a freshly computed skip list. A nil skip list (nothing
// skippable, or zones absent) is memoized too — recomputing "nothing to
// skip" is exactly the walk this layer exists to avoid.
func (m *PredMemo) Store(store any, pred string, skip []bool, skipped int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if len(m.skips) >= predMemoCap {
		m.skips = map[skipKey]skipEntry{}
	}
	m.skips[skipKey{store, pred}] = skipEntry{skip: skip, skipped: skipped}
	m.mu.Unlock()
}

// ObserveSelectivity folds one measured selectivity (rows passed / rows
// scanned) into the shape's running estimate.
func (m *PredMemo) ObserveSelectivity(store any, sig string, sel float64) {
	if m == nil || sig == "" {
		return
	}
	k := selKey{store, sig}
	m.mu.Lock()
	if len(m.sels) >= predMemoCap {
		m.sels = map[selKey]selEntry{}
	}
	e := m.sels[k]
	if e.n == 0 {
		e.sel = sel
	} else {
		// EWMA with a fast-moving constant: serving workloads drift and the
		// hint only needs to be in the right ballpark.
		e.sel = 0.75*e.sel + 0.25*sel
	}
	e.n++
	m.sels[k] = e
	m.mu.Unlock()
}

// Hint returns the remembered selectivity for a predicate shape, or
// ok=false when the shape has not been observed on this store.
func (m *PredMemo) Hint(store any, sig string) (sel float64, ok bool) {
	if m == nil || sig == "" {
		return 0, false
	}
	m.mu.RLock()
	e, ok := m.sels[selKey{store, sig}]
	m.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return e.sel, true
}

// PredStats is a point-in-time summary of the predicate-memo layer.
type PredStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	SkipLists int   `json:"skip_lists"`
	Shapes    int   `json:"shapes"`
}

// Stats returns the memo's counters. Zero values on a nil memo.
func (m *PredMemo) Stats() PredStats {
	if m == nil {
		return PredStats{}
	}
	m.mu.RLock()
	skips, shapes := len(m.skips), len(m.sels)
	m.mu.RUnlock()
	return PredStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		SkipLists: skips,
		Shapes:    shapes,
	}
}
