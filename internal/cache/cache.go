// Package cache provides the engine's cross-query reuse layers: a
// byte-budgeted decoded-block cache sitting between the executor and the
// block-compressed table backings, a predicate memo that remembers
// zone-map admission decisions and measured selectivity per query shape,
// and an answer cache that replays finished answers for exact-match
// repeated SQL.
//
// All three layers are strictly inert with respect to query results:
// block decodes are deterministic (the cache returns the same values
// table.Compress/OpenStore decode today), zone-map skip lists are a pure
// function of (table zones, predicate text), and answers are
// bit-identical on re-execution because all engine randomness derives
// from (seed, stream) pairs. Caching therefore changes latency, never
// answers — pinned by the bit-identity tests in internal/core.
package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// block value kinds; part of the cache key so a column read both widened
// (ReadF64 on an int64 column) and natively never aliases entries.
const (
	kindF64 = iota
	kindI64
	kindStr
)

// entryOverhead is the accounting charge per cache entry beyond its
// payload: key, slice header, ring slot, bookkeeping.
const entryOverhead = 96

// blockKey identifies one decoded block: the base column's identity (the
// column pointer — columns are immutable after registration, so identity
// is also a version), the block index, and the decoded value kind.
type blockKey struct {
	col   any
	block int
	kind  uint8
}

// entry is one resident decoded block. ref is the CLOCK reference bit:
// set on every hit, cleared (once) by the eviction hand before the entry
// becomes a victim, so blocks touched by more than one scan survive a
// one-pass sweep that would flush a plain LRU.
type entry struct {
	key   blockKey
	val   any // []float64, []int64 or []string
	bytes int64
	ref   atomic.Bool
}

// inflight is the singleflight slot for one block being decoded: waiters
// block on done and read val, so N concurrent queries needing the same
// block pay for one decode.
type inflight struct {
	done chan struct{}
	val  any
}

type blockShard struct {
	mu     sync.RWMutex
	m      map[blockKey]*entry
	flight map[blockKey]*inflight
}

// BlockConfig tunes a BlockCache.
type BlockConfig struct {
	// Bytes is the global byte budget. Must be positive; the engine keeps
	// the cache nil (= off) otherwise.
	Bytes int64
	// Shards is the lookup-shard count (0 = 16). Sharding bounds hit-path
	// lock contention; the byte budget and eviction clock stay global so
	// the budget is never exceeded by more than one block.
	Shards int
	// Metrics, when non-nil, receives aqp_cache_* counters and gauges for
	// the block layer.
	Metrics *obs.Registry
}

func (c BlockConfig) shards() int {
	if c.Shards <= 0 {
		return 16
	}
	return c.Shards
}

// BlockCache is a sharded, byte-budgeted cache of decoded storage blocks
// with CLOCK (second-chance) scan-resistant eviction and per-block
// singleflight. It is safe for concurrent use. Cached slices are shared
// read-only: callers copy out of them and must never mutate them.
type BlockCache struct {
	budget int64
	shards []blockShard

	// emu serializes insertion accounting and eviction: the ring, the
	// clock hand, the byte total and the per-column residency map. Hits
	// never take it; misses pay it once after decoding (outside the lock).
	// Lock order is emu -> shard.mu, never the reverse.
	emu      sync.Mutex
	ring     []*entry
	hand     int
	bytes    atomic.Int64
	colBytes map[any]int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	mHits, mMisses, mEvicted *obs.Counter
	mBytes                   *obs.Gauge
}

// NewBlockCache returns a block cache with the given budget. A nil return
// means the configuration disables caching (Bytes <= 0).
func NewBlockCache(cfg BlockConfig) *BlockCache {
	if cfg.Bytes <= 0 {
		return nil
	}
	c := &BlockCache{
		budget:   cfg.Bytes,
		shards:   make([]blockShard, cfg.shards()),
		colBytes: map[any]int64{},
	}
	for i := range c.shards {
		c.shards[i].m = map[blockKey]*entry{}
		c.shards[i].flight = map[blockKey]*inflight{}
	}
	if reg := cfg.Metrics; reg != nil {
		c.mHits = reg.Counter("aqp_cache_hits_total",
			"Cache hits, by layer.", "layer", "block")
		c.mMisses = reg.Counter("aqp_cache_misses_total",
			"Cache misses, by layer.", "layer", "block")
		c.mEvicted = reg.Counter("aqp_cache_evicted_total",
			"Cache entries evicted, by layer.", "layer", "block")
		c.mBytes = reg.Gauge("aqp_cache_bytes",
			"Resident cache bytes, by layer.", "layer", "block")
	}
	return c
}

// shard maps a key to its lookup shard. Column identity barely matters
// here — shards only spread lock contention — so a cheap integer mix of
// the block index is enough.
func (c *BlockCache) shard(k blockKey) *blockShard {
	h := uint32(k.block)*2654435761 + uint32(k.kind)*97
	return &c.shards[h%uint32(len(c.shards))]
}

// GetF64 returns decoded block b of col (bLen values), calling fill to
// decode on a miss. hit reports whether the block was served without
// decoding (fill not called). The returned slice is shared and read-only.
func (c *BlockCache) GetF64(col any, b, bLen int, fill func([]float64)) (vals []float64, hit bool) {
	v, hit := c.get(blockKey{col: col, block: b, kind: kindF64},
		int64(bLen)*8+entryOverhead,
		func() any {
			dst := make([]float64, bLen)
			fill(dst)
			return dst
		})
	return v.([]float64), hit
}

// GetI64 is GetF64 for int64-decoded blocks.
func (c *BlockCache) GetI64(col any, b, bLen int, fill func([]int64)) (vals []int64, hit bool) {
	v, hit := c.get(blockKey{col: col, block: b, kind: kindI64},
		int64(bLen)*8+entryOverhead,
		func() any {
			dst := make([]int64, bLen)
			fill(dst)
			return dst
		})
	return v.([]int64), hit
}

// GetStr is GetF64 for string blocks. sized is called after decode to
// account the payload (string headers plus bytes), since the size is not
// known up front.
func (c *BlockCache) GetStr(col any, b, bLen int, fill func([]string)) (vals []string, hit bool) {
	v, hit := c.getSized(blockKey{col: col, block: b, kind: kindStr},
		func() (any, int64) {
			dst := make([]string, bLen)
			fill(dst)
			sz := int64(entryOverhead)
			for _, s := range dst {
				sz += int64(len(s)) + 16
			}
			return dst, sz
		})
	return v.([]string), hit
}

func (c *BlockCache) get(k blockKey, sz int64, fill func() any) (any, bool) {
	return c.getSized(k, func() (any, int64) { return fill(), sz })
}

func (c *BlockCache) getSized(k blockKey, fill func() (any, int64)) (any, bool) {
	s := c.shard(k)
	s.mu.RLock()
	e := s.m[k]
	s.mu.RUnlock()
	if e != nil {
		e.ref.Store(true)
		c.hits.Add(1)
		c.mHits.Inc()
		return e.val, true
	}

	// Miss: join an in-flight decode when one exists, otherwise own it.
	s.mu.Lock()
	if e := s.m[k]; e != nil {
		s.mu.Unlock()
		e.ref.Store(true)
		c.hits.Add(1)
		c.mHits.Inc()
		return e.val, true
	}
	if call, ok := s.flight[k]; ok {
		s.mu.Unlock()
		<-call.done
		// The leader's decode served us: a hit from this caller's point of
		// view — no decode work was performed here.
		c.hits.Add(1)
		c.mHits.Inc()
		return call.val, true
	}
	call := &inflight{done: make(chan struct{})}
	s.flight[k] = call
	s.mu.Unlock()

	val, sz := fill()
	call.val = val
	c.misses.Add(1)
	c.mMisses.Inc()
	c.insert(k, val, sz)
	s.mu.Lock()
	delete(s.flight, k)
	s.mu.Unlock()
	close(call.done)
	return val, false
}

// insert admits one decoded block under the byte budget: victims are
// evicted FIRST, so the resident total never exceeds the budget while the
// budget can hold at least one block (and never exceeds it by more than
// that one block otherwise).
func (c *BlockCache) insert(k blockKey, val any, sz int64) {
	c.emu.Lock()
	for c.bytes.Load()+sz > c.budget && len(c.ring) > 0 {
		c.evictOneLocked()
	}
	e := &entry{key: k, val: val, bytes: sz}
	c.ring = append(c.ring, e)
	c.bytes.Add(sz)
	c.colBytes[k.col] += sz
	c.mBytes.Set(c.bytes.Load())
	c.emu.Unlock()

	s := c.shard(k)
	s.mu.Lock()
	// If a racing insert beat us between singleflight release and here,
	// the newer entry wins the map slot and the clock reaps the orphan
	// (it stays accounted in the ring until evicted).
	s.m[k] = e
	s.mu.Unlock()
}

// evictOneLocked advances the CLOCK hand until a victim falls out:
// referenced entries get their bit cleared and one more lap of life,
// unreferenced entries are evicted. Called with emu held.
func (c *BlockCache) evictOneLocked() {
	for spins := 2*len(c.ring) + 1; spins > 0; spins-- {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.ref.Load() && spins > 1 {
			e.ref.Store(false)
			c.hand++
			continue
		}
		last := len(c.ring) - 1
		c.ring[c.hand] = c.ring[last]
		c.ring[last] = nil
		c.ring = c.ring[:last]
		c.bytes.Add(-e.bytes)
		if n := c.colBytes[e.key.col] - e.bytes; n > 0 {
			c.colBytes[e.key.col] = n
		} else {
			delete(c.colBytes, e.key.col)
		}
		c.evictions.Add(1)
		c.mEvicted.Inc()
		c.mBytes.Set(c.bytes.Load())
		s := c.shard(e.key)
		s.mu.Lock()
		if s.m[e.key] == e {
			delete(s.m, e.key)
		}
		s.mu.Unlock()
		return
	}
}

// Bytes returns the resident payload bytes (including per-entry
// accounting overhead).
func (c *BlockCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// Budget returns the configured byte budget.
func (c *BlockCache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// BytesFor returns the resident bytes attributable to one column
// identity — the per-table "hot fraction" numerator.
func (c *BlockCache) BytesFor(col any) int64 {
	if c == nil {
		return 0
	}
	c.emu.Lock()
	defer c.emu.Unlock()
	return c.colBytes[col]
}

// BlockStats is a point-in-time summary of the block layer.
type BlockStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget_bytes"`
}

// Stats returns the block layer's counters. Zero values on a nil cache.
func (c *BlockCache) Stats() BlockStats {
	if c == nil {
		return BlockStats{}
	}
	c.emu.Lock()
	entries := len(c.ring)
	c.emu.Unlock()
	return BlockStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     c.bytes.Load(),
		Budget:    c.budget,
	}
}
