package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fillN returns a fill function writing deterministic values derived from
// the block index, and counts how many times it decodes.
func fillN(b int, decodes *atomic.Int64) func([]float64) {
	return func(dst []float64) {
		decodes.Add(1)
		for i := range dst {
			dst[i] = float64(b*1000 + i)
		}
	}
}

func TestBlockCacheHitReturnsSameValues(t *testing.T) {
	c := NewBlockCache(BlockConfig{Bytes: 1 << 20})
	col := new(int)
	var decodes atomic.Int64
	v1, hit1 := c.GetF64(col, 3, 64, fillN(3, &decodes))
	v2, hit2 := c.GetF64(col, 3, 64, fillN(3, &decodes))
	if hit1 || !hit2 {
		t.Fatalf("hit flags = %v, %v; want miss then hit", hit1, hit2)
	}
	if decodes.Load() != 1 {
		t.Fatalf("decodes = %d, want 1", decodes.Load())
	}
	for i := range v1 {
		if v1[i] != v2[i] || v1[i] != float64(3000+i) {
			t.Fatalf("value drift at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func TestBlockCacheKindsDoNotAlias(t *testing.T) {
	c := NewBlockCache(BlockConfig{Bytes: 1 << 20})
	col := new(int)
	var d atomic.Int64
	c.GetF64(col, 0, 8, fillN(0, &d))
	_, hit := c.GetI64(col, 0, 8, func(dst []int64) {
		d.Add(1)
		for i := range dst {
			dst[i] = int64(i)
		}
	})
	if hit {
		t.Fatal("an int64 read aliased a float64 entry for the same block")
	}
	if d.Load() != 2 {
		t.Fatalf("decodes = %d, want 2 (one per kind)", d.Load())
	}
}

func TestBlockCacheBudgetNeverExceeded(t *testing.T) {
	const blockVals = 128
	blockSize := int64(blockVals*8) + entryOverhead
	budget := 4 * blockSize
	c := NewBlockCache(BlockConfig{Bytes: budget})
	col := new(int)
	var d atomic.Int64
	for b := 0; b < 64; b++ {
		c.GetF64(col, b, blockVals, fillN(b, &d))
		if got := c.Bytes(); got > budget {
			t.Fatalf("resident %d exceeds budget %d after block %d", got, budget, b)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("64 blocks through a 4-block budget evicted nothing")
	}
	if st.Entries > 4 {
		t.Fatalf("entries = %d, want <= 4", st.Entries)
	}
}

func TestBlockCacheOversizedBlockStillAdmitted(t *testing.T) {
	// One block larger than the whole budget: the cache may exceed the
	// budget by at most that one block rather than thrash or refuse.
	c := NewBlockCache(BlockConfig{Bytes: 100})
	col := new(int)
	var d atomic.Int64
	v, hit := c.GetF64(col, 0, 512, fillN(0, &d))
	if hit || len(v) != 512 {
		t.Fatalf("oversized fill failed: hit=%v len=%d", hit, len(v))
	}
	if _, hit := c.GetF64(col, 0, 512, fillN(0, &d)); !hit {
		t.Fatal("oversized block was not resident after insert")
	}
	if c.Bytes() > 512*8+entryOverhead {
		t.Fatalf("resident %d exceeds the single oversized block", c.Bytes())
	}
}

func TestBlockCacheScanResistance(t *testing.T) {
	// CLOCK second chance: a block re-referenced between insertions must
	// survive a one-pass sweep of cold blocks that overflows the budget.
	const blockVals = 128
	blockSize := int64(blockVals*8) + entryOverhead
	c := NewBlockCache(BlockConfig{Bytes: 4 * blockSize})
	hot := new(int)
	cold := new(int)
	var d atomic.Int64
	c.GetF64(hot, 0, blockVals, fillN(0, &d))
	for b := 0; b < 16; b++ {
		// Touch the hot block between cold insertions so its ref bit is set
		// whenever the hand sweeps past.
		c.GetF64(hot, 0, blockVals, fillN(0, &d))
		c.GetF64(cold, b, blockVals, fillN(b, &d))
	}
	before := d.Load()
	if _, hit := c.GetF64(hot, 0, blockVals, fillN(0, &d)); !hit {
		t.Fatal("hot block evicted by a cold sweep despite second-chance refs")
	}
	if d.Load() != before {
		t.Fatal("hot-block lookup decoded")
	}
}

func TestBlockCacheSingleflight(t *testing.T) {
	c := NewBlockCache(BlockConfig{Bytes: 1 << 20})
	col := new(int)
	var decodes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	const waiters = 8
	results := make([][]float64, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := c.GetF64(col, 7, 32, func(dst []float64) {
				decodes.Add(1)
				close(started)
				<-release
				for j := range dst {
					dst[j] = float64(j)
				}
			})
			results[i] = v
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	if decodes.Load() != 1 {
		t.Fatalf("concurrent same-block gets decoded %d times, want 1", decodes.Load())
	}
	for i, v := range results {
		if len(v) != 32 || v[31] != 31 {
			t.Fatalf("waiter %d got wrong block: %v", i, v)
		}
	}
}

func TestBlockCacheStrSizing(t *testing.T) {
	c := NewBlockCache(BlockConfig{Bytes: 1 << 20})
	col := new(int)
	v, hit := c.GetStr(col, 0, 4, func(dst []string) {
		for i := range dst {
			dst[i] = fmt.Sprintf("value-%d", i)
		}
	})
	if hit || v[2] != "value-2" {
		t.Fatalf("string fill failed: hit=%v v=%v", hit, v)
	}
	if c.Bytes() <= entryOverhead {
		t.Fatalf("string block accounted %d bytes", c.Bytes())
	}
	if _, hit := c.GetStr(col, 0, 4, func([]string) { t.Fatal("refilled") }); !hit {
		t.Fatal("string block not resident")
	}
}

func TestBytesForTracksColumns(t *testing.T) {
	c := NewBlockCache(BlockConfig{Bytes: 1 << 20})
	a, b := new(int), new(int)
	var d atomic.Int64
	c.GetF64(a, 0, 64, fillN(0, &d))
	c.GetF64(a, 1, 64, fillN(1, &d))
	c.GetF64(b, 0, 64, fillN(0, &d))
	wantA := 2 * (int64(64*8) + entryOverhead)
	if got := c.BytesFor(a); got != wantA {
		t.Fatalf("BytesFor(a) = %d, want %d", got, wantA)
	}
	if got := c.BytesFor(b); got != wantA/2 {
		t.Fatalf("BytesFor(b) = %d, want %d", got, wantA/2)
	}
	if got := c.BytesFor(new(int)); got != 0 {
		t.Fatalf("BytesFor(unknown) = %d, want 0", got)
	}
}

func TestNilBlockCacheSafe(t *testing.T) {
	var c *BlockCache
	if c.Bytes() != 0 || c.Budget() != 0 || c.BytesFor(nil) != 0 {
		t.Fatal("nil cache accessors not zero")
	}
	if st := c.Stats(); st != (BlockStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if NewBlockCache(BlockConfig{Bytes: 0}) != nil {
		t.Fatal("Bytes=0 must disable the cache (nil)")
	}
}

func TestAnswerCacheTTL(t *testing.T) {
	c := NewAnswerCache(AnswerConfig{TTL: 10 * time.Millisecond})
	c.Put("k", "v")
	if v, ok := c.Get("k"); !ok || v != "v" {
		t.Fatalf("fresh get = %v, %v", v, ok)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still resident: len=%d", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnswerCacheCapEvictsOldest(t *testing.T) {
	c := NewAnswerCache(AnswerConfig{})
	for i := 0; i < answerCap; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Refresh k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before overflow")
	}
	c.Put("overflow", "v")
	if c.Len() != answerCap {
		t.Fatalf("len = %d, want %d", c.Len(), answerCap)
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	if _, ok := c.Get("overflow"); !ok {
		t.Fatal("new entry missing after overflow")
	}
}

func TestAnswerCacheDefaultTTL(t *testing.T) {
	if got := NewAnswerCache(AnswerConfig{}).TTL(); got != DefaultAnswerTTL {
		t.Fatalf("default TTL = %v, want %v", got, DefaultAnswerTTL)
	}
	var nilC *AnswerCache
	nilC.Put("k", "v")
	if _, ok := nilC.Get("k"); ok {
		t.Fatal("nil answer cache returned a value")
	}
}

func TestCanonicalSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT 1", "SELECT 1"},
		{"  SELECT   1  ", "SELECT 1"},
		{"SELECT\tAVG(x)\nFROM t", "SELECT AVG(x) FROM t"},
		{"SELECT * FROM t WHERE c = 'a  b'", "SELECT * FROM t WHERE c = 'a  b'"},
		{"SELECT * FROM t WHERE c = 'A\tB'  AND d=1", "SELECT * FROM t WHERE c = 'A\tB' AND d=1"},
		{"select 1", "select 1"}, // case is preserved, not folded
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range cases {
		if got := CanonicalSQL(tc.in); got != tc.want {
			t.Errorf("CanonicalSQL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPredMemoSkipLists(t *testing.T) {
	m := NewPredMemo(nil)
	store := new(int)
	if _, _, ok := m.Lookup(store, "x < 5"); ok {
		t.Fatal("empty memo hit")
	}
	m.Store(store, "x < 5", []bool{true, false}, 1)
	skip, skipped, ok := m.Lookup(store, "x < 5")
	if !ok || skipped != 1 || len(skip) != 2 || !skip[0] || skip[1] {
		t.Fatalf("lookup = %v, %d, %v", skip, skipped, ok)
	}
	// Exact keying: a different literal must not share the entry.
	if _, _, ok := m.Lookup(store, "x < 50"); ok {
		t.Fatal("skip list shared across different literals")
	}
	// Nil skip lists (nothing skippable) are memoized too.
	m.Store(store, "y > 0", nil, 0)
	if skip, _, ok := m.Lookup(store, "y > 0"); !ok || skip != nil {
		t.Fatalf("nil skip list not memoized: %v, %v", skip, ok)
	}
}

func TestPredMemoSelectivityEWMA(t *testing.T) {
	m := NewPredMemo(nil)
	store := new(int)
	if _, ok := m.Hint(store, "sig"); ok {
		t.Fatal("hint before any observation")
	}
	m.ObserveSelectivity(store, "sig", 0.4)
	if sel, ok := m.Hint(store, "sig"); !ok || sel != 0.4 {
		t.Fatalf("first observation hint = %v, %v", sel, ok)
	}
	m.ObserveSelectivity(store, "sig", 0.8)
	want := 0.75*0.4 + 0.25*0.8
	if sel, _ := m.Hint(store, "sig"); sel != want {
		t.Fatalf("EWMA hint = %v, want %v", sel, want)
	}
	var nilM *PredMemo
	nilM.ObserveSelectivity(store, "sig", 1)
	if _, ok := nilM.Hint(store, "sig"); ok {
		t.Fatal("nil memo produced a hint")
	}
}
