package workload

import (
	"fmt"

	"repro/internal/estimator"
	"repro/internal/rng"
)

// Kind selects which production trace's marginal statistics to reproduce.
type Kind int

// Trace kinds.
const (
	// Facebook mimics the week of Hive production queries from §3.
	Facebook Kind = iota
	// Conviva mimics the month of Conviva Hive queries from §3.
	Conviva
)

func (k Kind) String() string {
	switch k {
	case Facebook:
		return "facebook"
	case Conviva:
		return "conviva"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// aggMix is a cumulative-probability table over aggregate kinds.
type aggMixEntry struct {
	cum float64
	agg estimator.AggKind
}

// Facebook marginal mix (§3): MIN 33.35%, COUNT 24.67%, AVG 12.20%, SUM
// 10.11%, MAX 2.87%, UDF 11.01%; the remaining 5.79% is spread over
// VARIANCE, STDEV and PERCENTILES.
var facebookMix = []aggMixEntry{
	{0.3335, estimator.Min},
	{0.5802, estimator.Count},
	{0.7022, estimator.Avg},
	{0.8033, estimator.Sum},
	{0.8320, estimator.Max},
	{0.9421, estimator.UDF},
	{0.9621, estimator.Variance},
	{0.9821, estimator.Stdev},
	{1.0001, estimator.Percentile},
}

// Conviva marginal mix (§3): AVG, COUNT, PERCENTILES and MAX are the most
// popular with a combined 32.3% share; 42.07% of queries carry a UDF; the
// remainder is spread over SUM, MIN, VARIANCE and STDEV.
var convivaMix = []aggMixEntry{
	{0.1200, estimator.Avg},
	{0.2200, estimator.Count},
	{0.2800, estimator.Percentile},
	{0.3230, estimator.Max},
	{0.7437, estimator.UDF},
	{0.8337, estimator.Sum},
	{0.8937, estimator.Min},
	{0.9437, estimator.Variance},
	{1.0001, estimator.Stdev},
}

func (k Kind) mix() []aggMixEntry {
	if k == Facebook {
		return facebookMix
	}
	return convivaMix
}

// adversarialFraction is the probability that a query's underlying column
// is drawn from a heavy-tailed/outlier-contaminated distribution. Conviva's
// video-delivery metrics (bitrates, buffer times) are substantially more
// skewed than Facebook's mix.
func (k Kind) adversarialFraction() float64 {
	if k == Facebook {
		return 0.30
	}
	return 0.40
}

// QuerySpec is one synthetic query: the aggregation θ plus the population
// column it runs over and the size metadata the cluster simulator uses.
type QuerySpec struct {
	ID    int
	Trace Kind
	// Dist is the distribution the population column was drawn from.
	Dist DataDist
	// Population is the post-filter aggregation column of the full
	// dataset D (COUNT queries see an indicator column).
	Population []float64
	// Query is the θ to evaluate, ready for the estimator package.
	Query estimator.Query
	// UDFName is set when Query.Kind == UDF.
	UDFName string
	// BytesPerRow sizes the query's input rows for the cost model.
	BytesPerRow int
	// GroupFanout models the number of groups a production GROUP BY
	// would produce (1 = plain aggregate); the simulator charges
	// aggregation cost proportional to it.
	GroupFanout int
}

// Name renders a short identifier such as "facebook/q17/AVG".
func (q QuerySpec) Name() string {
	return fmt.Sprintf("%s/q%d/%s", q.Trace, q.ID, q.Query.Name())
}

// ClosedFormOK reports whether the query is amenable to closed-form error
// estimation (QSet-1 membership).
func (q QuerySpec) ClosedFormOK() bool { return q.Query.ClosedFormApplicable() }

// TraceConfig parameterizes trace generation.
type TraceConfig struct {
	Kind       Kind
	NumQueries int
	// PopulationSize is |D| per query (default 200,000).
	PopulationSize int
	// Seed makes the trace reproducible.
	Seed uint64
	// AdversarialFraction overrides the trace's default heavy-tail rate
	// when non-negative (set to -1 to use the default).
	AdversarialFraction float64
}

// Generate produces a reproducible synthetic trace with the configured
// marginal statistics.
func Generate(cfg TraceConfig) []QuerySpec {
	if cfg.NumQueries <= 0 {
		return nil
	}
	popSize := cfg.PopulationSize
	if popSize <= 0 {
		popSize = 200000
	}
	pAdv := cfg.AdversarialFraction
	if pAdv < 0 {
		pAdv = cfg.Kind.adversarialFraction()
	}
	out := make([]QuerySpec, 0, cfg.NumQueries)
	for i := 0; i < cfg.NumQueries; i++ {
		src := rng.NewWithStream(cfg.Seed, uint64(cfg.Kind)<<32|uint64(i))
		out = append(out, generateQuery(src, cfg.Kind, i, popSize, pAdv))
	}
	return out
}

func generateQuery(src *rng.Source, kind Kind, id, popSize int, pAdv float64) QuerySpec {
	// Pick the aggregate from the trace's mix.
	u := src.Float64()
	agg := estimator.Avg
	for _, e := range kind.mix() {
		if u < e.cum {
			agg = e.agg
			break
		}
	}

	spec := QuerySpec{
		ID:          id,
		Trace:       kind,
		BytesPerRow: 64 + src.Intn(448), // 64–512 bytes/row
		GroupFanout: 1,
	}
	// ~30% of production aggregates sit under a GROUP BY; model the
	// fan-out for the cost model (each group is treated as a separate
	// query in the statistical experiments, per §2.1).
	if src.Float64() < 0.3 {
		spec.GroupFanout = 1 + src.Intn(32)
	}

	switch agg {
	case estimator.Count:
		// Indicator column with random selectivity; COUNT = scaled SUM.
		sel := 0.01 + 0.89*src.Float64()
		xs := make([]float64, popSize)
		for j := range xs {
			if src.Float64() < sel {
				xs[j] = 1
			}
		}
		spec.Dist = Uniform
		spec.Population = xs
		spec.Query = estimator.Query{Kind: estimator.Count, PopN: popSize,
			Bounds: &[2]float64{0, 1}}
	case estimator.UDF:
		// Production UDFs are mostly well-behaved statistics; fragile
		// functionals (range widths, tail means) are the minority — the
		// paper measures bootstrap failure on 23.19% of UDF queries, not
		// a majority.
		udf := pickUDF(src, 0.25)
		// UDF inputs skew benign: production UDFs mostly digest rates and
		// ratios, not raw heavy-tailed bytes.
		dist := pickDist(src, pAdv*0.5)
		spec.Dist = dist
		spec.UDFName = udf.Name
		spec.Population = GenerateColumn(src, dist, popSize)
		spec.Query = estimator.Query{Kind: estimator.UDF, Fn: udf.Fn, FnName: udf.Name}
	default:
		dist := pickDist(src, pAdv)
		spec.Dist = dist
		spec.Population = GenerateColumn(src, dist, popSize)
		q := estimator.Query{Kind: agg}
		switch agg {
		case estimator.Sum:
			q.PopN = popSize
		case estimator.Percentile:
			q.Pct = []float64{0.5, 0.9, 0.95, 0.99}[src.Intn(4)]
		}
		spec.Query = q
	}
	return spec
}

// QSet1 filters a trace down to queries whose error bars admit closed
// forms (the paper's QSet-1: simple AVG, COUNT, SUM, STDEV, VARIANCE
// aggregates).
func QSet1(trace []QuerySpec) []QuerySpec {
	var out []QuerySpec
	for _, q := range trace {
		if q.ClosedFormOK() {
			out = append(out, q)
		}
	}
	return out
}

// QSet2 filters a trace down to queries that only the bootstrap can
// handle (UDFs, percentiles, MIN/MAX — the paper's "multiple aggregate
// operators, nested subqueries or UDFs" set).
func QSet2(trace []QuerySpec) []QuerySpec {
	var out []QuerySpec
	for _, q := range trace {
		if !q.ClosedFormOK() {
			out = append(out, q)
		}
	}
	return out
}

// GenerateQSets generates a trace and keeps drawing until both query sets
// contain at least want queries each, then truncates both to exactly want.
// This mirrors the paper's "two different sets of 100 real-world queries".
func GenerateQSets(kind Kind, want int, popSize int, seed uint64) (qset1, qset2 []QuerySpec) {
	batch := want * 4
	for tries := 0; tries < 8; tries++ {
		trace := Generate(TraceConfig{
			Kind:                kind,
			NumQueries:          batch,
			PopulationSize:      popSize,
			Seed:                seed,
			AdversarialFraction: -1,
		})
		qset1, qset2 = QSet1(trace), QSet2(trace)
		if len(qset1) >= want && len(qset2) >= want {
			return qset1[:want], qset2[:want]
		}
		batch *= 2
	}
	return qset1, qset2
}

// SQL renders the query as engine SQL over a table holding the population
// in a single numeric column. COUNT queries (whose populations are
// indicator columns) render as a filtered COUNT(*); UDFs render by their
// library name and must be registered with the engine first.
func (q QuerySpec) SQL(tableName, col string) string {
	switch q.Query.Kind {
	case estimator.Count:
		return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = 1", tableName, col)
	case estimator.Percentile:
		return fmt.Sprintf("SELECT PERCENTILE(%s, %g) FROM %s", col, q.Query.Pct, tableName)
	case estimator.UDF:
		return fmt.Sprintf("SELECT %s(%s) FROM %s", q.UDFName, col, tableName)
	case estimator.Sum:
		return fmt.Sprintf("SELECT SUM(%s) FROM %s", col, tableName)
	default:
		return fmt.Sprintf("SELECT %s(%s) FROM %s", q.Query.Kind, col, tableName)
	}
}
