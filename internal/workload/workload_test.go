package workload

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestGenerateColumnShapes(t *testing.T) {
	src := rng.New(1)
	for d := Gaussian; d <= Bimodal; d++ {
		xs := GenerateColumn(src, d, 5000)
		if len(xs) != 5000 {
			t.Fatalf("%v: wrong length", d)
		}
		m := stats.Mean(xs)
		if math.IsNaN(m) || math.IsInf(m, 0) {
			t.Errorf("%v: degenerate mean %v", d, m)
		}
	}
}

func TestGenerateColumnDistinctShapes(t *testing.T) {
	src := rng.New(2)
	// Pareto must be much more skewed than Gaussian.
	g := GenerateColumn(src, Gaussian, 20000)
	p := GenerateColumn(src, ParetoTail, 20000)
	gRatio := stats.Max(g) / stats.Quantile(g, 0.5)
	pRatio := stats.Max(p) / stats.Quantile(p, 0.5)
	if pRatio < 10*gRatio {
		t.Errorf("Pareto max/median %v not far heavier than Gaussian %v", pRatio, gRatio)
	}
	// Spiky: overwhelming majority near 10, rare huge outliers possible.
	s := GenerateColumn(src, Spiky, 100000)
	med := stats.Quantile(s, 0.5)
	if med < 5 || med > 15 {
		t.Errorf("spiky median = %v, want ~10", med)
	}
}

func TestDataDistPredicatesAndNames(t *testing.T) {
	if !ParetoExtreme.HeavyTailed() || !Spiky.HeavyTailed() {
		t.Error("heavy tails not flagged")
	}
	if Gaussian.HeavyTailed() || Uniform.HeavyTailed() {
		t.Error("light tails flagged as heavy")
	}
	if Gaussian.String() != "gaussian" || Spiky.String() != "spiky" {
		t.Error("distribution names wrong")
	}
	if Facebook.String() != "facebook" || Conviva.String() != "conviva" {
		t.Error("trace names wrong")
	}
}

func TestGenerateColumnPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown distribution did not panic")
		}
	}()
	GenerateColumn(rng.New(1), DataDist(99), 10)
}

func TestUDFLibraryEvaluates(t *testing.T) {
	src := rng.New(3)
	xs := GenerateColumn(src, LogNormalMild, 2000)
	w := make([]float64, len(xs))
	for i := range w {
		w[i] = float64(src.Poisson1())
	}
	for _, u := range UDFLibrary {
		plain := u.Fn(xs, nil)
		if math.IsNaN(plain) || math.IsInf(plain, 0) {
			t.Errorf("%s: plain eval degenerate: %v", u.Name, plain)
		}
		weighted := u.Fn(xs, w)
		if math.IsNaN(weighted) || math.IsInf(weighted, 0) {
			t.Errorf("%s: weighted eval degenerate: %v", u.Name, weighted)
		}
		// Weighted result must be in the same ballpark as plain (the
		// resample is a perturbation, not a different statistic).
		if plain != 0 && math.Abs(weighted-plain)/math.Abs(plain) > 1.5 {
			t.Errorf("%s: weighted %v vs plain %v implausibly far", u.Name, weighted, plain)
		}
	}
}

func TestUDFWeightZeroMeansAbsent(t *testing.T) {
	xs := []float64{1, 2, 3, 1000}
	w := []float64{1, 1, 1, 0}
	spec := UDFByName("range_width")
	if spec == nil {
		t.Fatal("range_width missing from library")
	}
	if got := spec.Fn(xs, w); got != 2 {
		t.Errorf("range with outlier zeroed = %v, want 2", got)
	}
	if got := spec.Fn(xs, nil); got != 999 {
		t.Errorf("plain range = %v, want 999", got)
	}
}

func TestUDFByNameMissing(t *testing.T) {
	if UDFByName("no_such_udf") != nil {
		t.Error("unknown UDF should return nil")
	}
}

func TestUDFTrimmedMeanRobust(t *testing.T) {
	spec := UDFByName("trimmed_mean_5")
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 10
	}
	xs[0] = 1e9 // one outlier, inside the trimmed 5%
	if got := spec.Fn(xs, nil); got != 10 {
		t.Errorf("trimmed mean = %v, want 10", got)
	}
}

func TestUDFEmptyInput(t *testing.T) {
	for _, name := range []string{"trimmed_mean_5", "median_abs_dev", "top_decile_mean"} {
		spec := UDFByName(name)
		if got := spec.Fn(nil, nil); !math.IsNaN(got) {
			t.Errorf("%s on empty input = %v, want NaN", name, got)
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	cfg := TraceConfig{Kind: Facebook, NumQueries: 20, PopulationSize: 1000,
		Seed: 7, AdversarialFraction: -1}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("trace lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query.Kind != b[i].Query.Kind || a[i].Dist != b[i].Dist {
			t.Fatalf("query %d differs across identical generations", i)
		}
		for j := range a[i].Population {
			if a[i].Population[j] != b[i].Population[j] {
				t.Fatalf("query %d population differs at row %d", i, j)
			}
		}
	}
}

func TestGenerateMarginalMix(t *testing.T) {
	trace := Generate(TraceConfig{Kind: Facebook, NumQueries: 3000,
		PopulationSize: 100, Seed: 11, AdversarialFraction: -1})
	counts := map[estimator.AggKind]int{}
	for _, q := range trace {
		counts[q.Query.Kind]++
	}
	n := float64(len(trace))
	check := func(kind estimator.AggKind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.03 {
			t.Errorf("Facebook %v share = %v, want ~%v", kind, got, want)
		}
	}
	check(estimator.Min, 0.3335)
	check(estimator.Count, 0.2467)
	check(estimator.Avg, 0.1220)
	check(estimator.Sum, 0.1011)
	check(estimator.Max, 0.0287)
	check(estimator.UDF, 0.1101)
}

func TestGenerateConvivaUDFHeavy(t *testing.T) {
	trace := Generate(TraceConfig{Kind: Conviva, NumQueries: 2000,
		PopulationSize: 100, Seed: 12, AdversarialFraction: -1})
	udf := 0
	for _, q := range trace {
		if q.Query.Kind == estimator.UDF {
			udf++
		}
	}
	frac := float64(udf) / float64(len(trace))
	if math.Abs(frac-0.4207) > 0.03 {
		t.Errorf("Conviva UDF share = %v, want ~0.42", frac)
	}
}

func TestCountQueriesAreIndicators(t *testing.T) {
	trace := Generate(TraceConfig{Kind: Facebook, NumQueries: 400,
		PopulationSize: 500, Seed: 13, AdversarialFraction: -1})
	seen := false
	for _, q := range trace {
		if q.Query.Kind != estimator.Count {
			continue
		}
		seen = true
		for _, v := range q.Population {
			if v != 0 && v != 1 {
				t.Fatalf("COUNT population value %v not an indicator", v)
			}
		}
		if q.Query.PopN != 500 {
			t.Errorf("COUNT PopN = %d", q.Query.PopN)
		}
	}
	if !seen {
		t.Error("no COUNT queries in a 400-query Facebook trace")
	}
}

func TestUDFQueriesHaveBodies(t *testing.T) {
	trace := Generate(TraceConfig{Kind: Conviva, NumQueries: 200,
		PopulationSize: 100, Seed: 14, AdversarialFraction: -1})
	for _, q := range trace {
		if q.Query.Kind == estimator.UDF {
			if q.Query.Fn == nil || q.UDFName == "" {
				t.Fatal("UDF query without body or name")
			}
			if UDFByName(q.UDFName) == nil {
				t.Fatalf("UDF %q not in library", q.UDFName)
			}
		}
	}
}

func TestQSetSplit(t *testing.T) {
	trace := Generate(TraceConfig{Kind: Facebook, NumQueries: 500,
		PopulationSize: 100, Seed: 15, AdversarialFraction: -1})
	q1, q2 := QSet1(trace), QSet2(trace)
	if len(q1)+len(q2) != len(trace) {
		t.Fatalf("QSet split loses queries: %d + %d != %d", len(q1), len(q2), len(trace))
	}
	for _, q := range q1 {
		if !q.ClosedFormOK() {
			t.Fatal("QSet1 contains a non-closed-form query")
		}
	}
	for _, q := range q2 {
		if q.ClosedFormOK() {
			t.Fatal("QSet2 contains a closed-form query")
		}
	}
}

func TestGenerateQSetsExactCounts(t *testing.T) {
	q1, q2 := GenerateQSets(Conviva, 50, 1000, 16)
	if len(q1) != 50 || len(q2) != 50 {
		t.Fatalf("GenerateQSets sizes = %d, %d", len(q1), len(q2))
	}
}

func TestQuerySpecMetadata(t *testing.T) {
	trace := Generate(TraceConfig{Kind: Facebook, NumQueries: 100,
		PopulationSize: 100, Seed: 17, AdversarialFraction: -1})
	fanout := 0
	for _, q := range trace {
		if q.BytesPerRow < 64 || q.BytesPerRow >= 512 {
			t.Fatalf("BytesPerRow = %d outside [64, 512)", q.BytesPerRow)
		}
		if q.GroupFanout < 1 {
			t.Fatal("GroupFanout < 1")
		}
		if q.GroupFanout > 1 {
			fanout++
		}
		if q.Name() == "" {
			t.Fatal("empty query name")
		}
	}
	if fanout == 0 {
		t.Error("no GROUP BY queries generated in 100 draws")
	}
}

func TestGenerateEmptyAndDefaults(t *testing.T) {
	if Generate(TraceConfig{Kind: Facebook, NumQueries: 0}) != nil {
		t.Error("zero queries should return nil")
	}
	trace := Generate(TraceConfig{Kind: Facebook, NumQueries: 1, Seed: 1,
		AdversarialFraction: -1})
	if len(trace[0].Population) != 200000 {
		t.Errorf("default population size = %d, want 200000", len(trace[0].Population))
	}
}

func TestQuerySpecSQL(t *testing.T) {
	mk := func(kind estimator.AggKind, pct float64, udf string) QuerySpec {
		return QuerySpec{Query: estimator.Query{Kind: kind, Pct: pct}, UDFName: udf}
	}
	if got := mk(estimator.Avg, 0, "").SQL("t", "v"); got != "SELECT AVG(v) FROM t" {
		t.Errorf("AVG sql = %q", got)
	}
	if got := mk(estimator.Count, 0, "").SQL("t", "v"); got != "SELECT COUNT(*) FROM t WHERE v = 1" {
		t.Errorf("COUNT sql = %q", got)
	}
	if got := mk(estimator.Percentile, 0.95, "").SQL("t", "v"); got != "SELECT PERCENTILE(v, 0.95) FROM t" {
		t.Errorf("PERCENTILE sql = %q", got)
	}
	if got := mk(estimator.UDF, 0, "trimmed_mean_5").SQL("t", "v"); got != "SELECT trimmed_mean_5(v) FROM t" {
		t.Errorf("UDF sql = %q", got)
	}
	if got := mk(estimator.Sum, 0, "").SQL("t", "v"); got != "SELECT SUM(v) FROM t" {
		t.Errorf("SUM sql = %q", got)
	}
}
