// Package workload generates synthetic query traces that reproduce the
// published marginal statistics of the paper's two production workloads:
// the Facebook trace (69,438 Hive queries; MIN 33.35%, COUNT 24.67%, AVG
// 12.20%, SUM 10.11%, MAX 2.87% of queries, 11.01% containing UDFs) and
// the Conviva trace (18,321 queries; AVG/COUNT/PERCENTILE/MAX ≈ 32.3%
// combined, 42.07% containing UDFs). The underlying data columns mix
// lognormal session-time-like shapes, Pareto heavy tails, Gaussian
// measurement noise and spiky outlier-contaminated columns, which is what
// drives the §3 estimation failures.
//
// The original traces are proprietary; this generator is the substitution
// documented in DESIGN.md, playing the role of the synthetic benchmark the
// authors published for the same reason.
package workload

import (
	"fmt"

	"repro/internal/rng"
)

// DataDist enumerates the column-value distributions in the synthetic
// datasets.
type DataDist int

// Data distributions, roughly ordered from benign to adversarial for
// error estimation.
const (
	// Gaussian: well-behaved measurements; everything works.
	Gaussian DataDist = iota
	// Uniform: bounded, light tails.
	Uniform
	// Exponential: mild skew.
	Exponential
	// LogNormalMild: session-time-like skew (σ=1).
	LogNormalMild
	// LogNormalHeavy: strong skew (σ=2.5); strains CLT normality at
	// moderate n.
	LogNormalHeavy
	// ParetoTail: α=1.5 — infinite variance; breaks CLT/bootstrap for
	// tail-sensitive aggregates and slows convergence for means.
	ParetoTail
	// ParetoExtreme: α=1.05 — barely integrable; MAX/MIN estimation is
	// hopeless, mean estimation unreliable.
	ParetoExtreme
	// Spiky: a constant baseline contaminated by rare huge outliers; the
	// classic silent killer for resampling-based error bars because most
	// samples contain no outlier at all.
	Spiky
	// Bimodal: a two-component Gaussian mixture; fine for means, hard for
	// quantiles near the gap.
	Bimodal
)

func (d DataDist) String() string {
	switch d {
	case Gaussian:
		return "gaussian"
	case Uniform:
		return "uniform"
	case Exponential:
		return "exponential"
	case LogNormalMild:
		return "lognormal-mild"
	case LogNormalHeavy:
		return "lognormal-heavy"
	case ParetoTail:
		return "pareto-1.5"
	case ParetoExtreme:
		return "pareto-1.05"
	case Spiky:
		return "spiky"
	case Bimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("DataDist(%d)", int(d))
	}
}

// HeavyTailed reports whether the distribution has tails heavy enough to
// endanger error estimation for tail-sensitive aggregates.
func (d DataDist) HeavyTailed() bool {
	switch d {
	case ParetoTail, ParetoExtreme, Spiky, LogNormalHeavy:
		return true
	default:
		return false
	}
}

// GenerateColumn produces n values from the distribution.
func GenerateColumn(src *rng.Source, d DataDist, n int) []float64 {
	xs := make([]float64, n)
	switch d {
	case Gaussian:
		for i := range xs {
			xs[i] = 100 + 15*src.NormFloat64()
		}
	case Uniform:
		// Integer-valued, like production id/bucket columns: atoms at the
		// boundary mean MIN/MAX often succeed (the sample extreme IS the
		// population extreme), matching the paper's mixed MIN/MAX record.
		for i := range xs {
			xs[i] = float64(src.Intn(1000))
		}
	case Exponential:
		// Whole seconds, floor-discretized: a fat atom at 0.
		for i := range xs {
			xs[i] = float64(int(30 * src.ExpFloat64()))
		}
	case LogNormalMild:
		for i := range xs {
			xs[i] = src.LogNormal(3, 1)
		}
	case LogNormalHeavy:
		for i := range xs {
			xs[i] = src.LogNormal(2, 2.5)
		}
	case ParetoTail:
		for i := range xs {
			xs[i] = src.Pareto(1, 1.5)
		}
	case ParetoExtreme:
		for i := range xs {
			xs[i] = src.Pareto(1, 1.05)
		}
	case Spiky:
		for i := range xs {
			if src.Float64() < 1e-4 {
				xs[i] = 1e7 * (1 + src.Float64())
			} else {
				xs[i] = 10 + src.NormFloat64()
			}
		}
	case Bimodal:
		for i := range xs {
			if src.Float64() < 0.5 {
				xs[i] = 20 + 3*src.NormFloat64()
			} else {
				xs[i] = 80 + 3*src.NormFloat64()
			}
		}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %v", d))
	}
	return xs
}

// benignDists are shapes on which estimation typically succeeds.
var benignDists = []DataDist{Gaussian, Uniform, Exponential, LogNormalMild, Bimodal}

// adversarialDists are shapes on which estimation often fails.
var adversarialDists = []DataDist{LogNormalHeavy, ParetoTail, ParetoExtreme, Spiky}

// pickDist draws a distribution: adversarial with probability pAdversarial,
// benign otherwise.
func pickDist(src *rng.Source, pAdversarial float64) DataDist {
	if src.Float64() < pAdversarial {
		return adversarialDists[src.Intn(len(adversarialDists))]
	}
	return benignDists[src.Intn(len(benignDists))]
}
