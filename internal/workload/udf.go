package workload

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// UDFSpec is a named user-defined aggregate together with the metadata the
// trace generator needs: whether the statistic is smooth enough that the
// bootstrap usually succeeds on well-behaved data.
type UDFSpec struct {
	Name string
	// Smooth indicates a statistically well-behaved (asymptotically
	// normal, outlier-insensitive) functional.
	Smooth bool
	// Fn evaluates the aggregate on weighted data; nil weights mean all
	// ones, weight zero means the row is absent.
	Fn func(values, weights []float64) float64
}

// UDFLibrary is the catalog of user-defined aggregates appearing in the
// synthetic traces. It deliberately mixes smooth functionals (trimmed
// means, log-means, fractions) with fragile ones (range, top-decile mean)
// to reproduce the paper's finding that bootstrap error estimation failed
// for 23.19% of UDF queries.
var UDFLibrary = []UDFSpec{
	{Name: "trimmed_mean_5", Smooth: true, Fn: trimmedMean(0.05)},
	{Name: "log_mean", Smooth: true, Fn: logMean},
	{Name: "frac_above_median_x2", Smooth: true, Fn: fracAbove},
	{Name: "clamped_mean", Smooth: true, Fn: clampedMean},
	{Name: "median_abs_dev", Smooth: true, Fn: medianAbsDev},
	{Name: "top_decile_mean", Smooth: false, Fn: topFracMean(0.10)},
	{Name: "range_width", Smooth: false, Fn: rangeWidth},
	{Name: "second_moment", Smooth: false, Fn: secondMoment},
}

// pickUDF draws a UDF: a fragile (non-smooth) one with probability
// pFragile, a smooth one otherwise.
func pickUDF(src interface{ Float64() float64 }, pFragile float64) UDFSpec {
	fragile := src.Float64() < pFragile
	var pool []UDFSpec
	for _, u := range UDFLibrary {
		if u.Smooth != fragile {
			pool = append(pool, u)
		}
	}
	idx := int(src.Float64() * float64(len(pool)))
	if idx >= len(pool) {
		idx = len(pool) - 1
	}
	return pool[idx]
}

// UDFByName returns the named UDF spec, or nil when absent.
func UDFByName(name string) *UDFSpec {
	for i := range UDFLibrary {
		if UDFLibrary[i].Name == name {
			return &UDFLibrary[i]
		}
	}
	return nil
}

// expand materializes the weighted multiset as sorted values. Order
// statistics (quantile-style UDFs) need this; weights are expected to be
// small non-negative integers (Poisson multiplicities).
func expandSorted(values, weights []float64) []float64 {
	var out []float64
	if weights == nil {
		out = append([]float64(nil), values...)
	} else {
		out = make([]float64, 0, len(values))
		for i, v := range values {
			for c := 0.0; c < weights[i]; c++ {
				out = append(out, v)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func trimmedMean(frac float64) func(values, weights []float64) float64 {
	return func(values, weights []float64) float64 {
		xs := expandSorted(values, weights)
		n := len(xs)
		if n == 0 {
			return math.NaN()
		}
		cut := int(frac * float64(n))
		trimmed := xs[cut : n-cut]
		if len(trimmed) == 0 {
			trimmed = xs
		}
		return stats.Mean(trimmed)
	}
}

// logMean is the geometric mean via mean of logs; requires positive data
// (negative or zero rows are clamped to a tiny positive value, as the
// production UDF it mimics did).
func logMean(values, weights []float64) float64 {
	var m stats.Moments
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if v < 1e-12 {
			v = 1e-12
		}
		m.AddWeighted(math.Log(v), w)
	}
	return math.Exp(m.Mean())
}

// fracAbove reports the weighted fraction of rows exceeding twice the
// weighted median — a smooth ratio statistic.
func fracAbove(values, weights []float64) float64 {
	med := stats.WeightedQuantile(values, allOnes(weights, len(values)), 0.5)
	threshold := 2 * med
	var above, total float64
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		total += w
		if v > threshold {
			above += w
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return above / total
}

func allOnes(weights []float64, n int) []float64 {
	if weights != nil {
		return weights
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// clampedMean averages values clamped into [0, 1000] — a bounded, smooth
// statistic that even heavy tails cannot break.
func clampedMean(values, weights []float64) float64 {
	var m stats.Moments
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if v < 0 {
			v = 0
		} else if v > 1000 {
			v = 1000
		}
		m.AddWeighted(v, w)
	}
	return m.Mean()
}

// medianAbsDev is the median absolute deviation from the median — robust.
func medianAbsDev(values, weights []float64) float64 {
	xs := expandSorted(values, weights)
	if len(xs) == 0 {
		return math.NaN()
	}
	med := stats.QuantileSorted(xs, 0.5)
	devs := make([]float64, len(xs))
	for i, v := range xs {
		devs[i] = math.Abs(v - med)
	}
	return stats.Quantile(devs, 0.5)
}

// topFracMean averages the top frac of the data — tail-sensitive, so it
// inherits MAX-like fragility on heavy-tailed columns.
func topFracMean(frac float64) func(values, weights []float64) float64 {
	return func(values, weights []float64) float64 {
		xs := expandSorted(values, weights)
		n := len(xs)
		if n == 0 {
			return math.NaN()
		}
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		return stats.Mean(xs[n-k:])
	}
}

// rangeWidth is max − min: maximally outlier-sensitive; error estimation
// for it fails on almost anything interesting.
func rangeWidth(values, weights []float64) float64 {
	var m stats.Moments
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		m.AddWeighted(v, w)
	}
	return m.Max() - m.Min()
}

// secondMoment is E[X²] — finite-sample fine, but on Pareto tails its
// sampling distribution is wildly skewed.
func secondMoment(values, weights []float64) float64 {
	var m stats.Moments
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		m.AddWeighted(v*v, w)
	}
	return m.Mean()
}
