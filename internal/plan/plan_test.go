package plan

import (
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/sql"
)

func analyze(t *testing.T, q string) *QueryDef {
	t.Helper()
	sel := sql.MustParse(q).(*sql.Select)
	def, err := Analyze(sel, func(name string) bool { return name == "MYUDF" })
	if err != nil {
		t.Fatalf("Analyze(%s): %v", q, err)
	}
	return def
}

func TestAnalyzeSimple(t *testing.T) {
	def := analyze(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	if def.Table != "Sessions" {
		t.Errorf("table = %q", def.Table)
	}
	if def.Where == nil {
		t.Error("filter missing")
	}
	if len(def.Aggs) != 1 || def.Aggs[0].Kind != estimator.Avg {
		t.Errorf("aggs = %+v", def.Aggs)
	}
	if def.Aggs[0].Alias != "avg" {
		t.Errorf("default alias = %q", def.Aggs[0].Alias)
	}
}

func TestAnalyzeAllAggregates(t *testing.T) {
	def := analyze(t, "SELECT AVG(x), SUM(x), COUNT(*), MIN(x), MAX(x), VARIANCE(x), STDEV(x), PERCENTILE(x, 0.95), MYUDF(x) FROM t")
	if len(def.Aggs) != 9 {
		t.Fatalf("aggs = %d", len(def.Aggs))
	}
	kinds := []estimator.AggKind{
		estimator.Avg, estimator.Sum, estimator.Count, estimator.Min,
		estimator.Max, estimator.Variance, estimator.Stdev,
		estimator.Percentile, estimator.UDF,
	}
	for i, k := range kinds {
		if def.Aggs[i].Kind != k {
			t.Errorf("agg %d kind = %v, want %v", i, def.Aggs[i].Kind, k)
		}
	}
	if def.Aggs[7].Pct != 0.95 {
		t.Error("percentile level lost")
	}
	if def.Aggs[8].UDFName != "MYUDF" {
		t.Error("UDF name lost")
	}
	if def.Aggs[2].Input != nil {
		t.Error("COUNT(*) should have nil input")
	}
}

func TestAnalyzeGroupBy(t *testing.T) {
	def := analyze(t, "SELECT city, AVG(t) FROM s GROUP BY city")
	if len(def.GroupBy) != 1 || def.GroupBy[0] != "city" {
		t.Errorf("group by = %v", def.GroupBy)
	}
	if len(def.Aggs) != 1 {
		t.Errorf("aggs = %d", len(def.Aggs))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []string{
		"SELECT x FROM t", // bare column, no group by
		"SELECT city, AVG(x) FROM t GROUP BY other",  // column not in group
		"SELECT AVG(x, y) FROM t",                    // arity
		"SELECT AVG(*) FROM t",                       // star in AVG
		"SELECT NOSUCHFN(x) FROM t",                  // unknown function
		"SELECT PERCENTILE(x) FROM t",                // percentile arity
		"SELECT PERCENTILE(x, 2) FROM t",             // bad level
		"SELECT PERCENTILE(x, 'a') FROM t",           // non-numeric level
		"SELECT MYUDF(x, y) FROM t",                  // UDF arity
		"SELECT AVG(a) FROM (SELECT b FROM t) AS sq", // subquery FROM
		"SELECT city FROM t GROUP BY city",           // no aggregate at all
	}
	for _, q := range cases {
		sel := sql.MustParse(q).(*sql.Select)
		if _, err := Analyze(sel, func(n string) bool { return n == "MYUDF" }); err == nil {
			t.Errorf("Analyze(%q) unexpectedly succeeded", q)
		}
	}
}

func TestAnalyzeTableSampleClause(t *testing.T) {
	def := analyze(t, "SELECT AVG(x) FROM t TABLESAMPLE POISSONIZED (100)")
	if def.SampleClause == nil || def.SampleClause.Rate() != 1 {
		t.Error("TABLESAMPLE clause lost")
	}
}

func TestClosedFormOK(t *testing.T) {
	if !analyze(t, "SELECT AVG(x), SUM(y) FROM t").ClosedFormOK() {
		t.Error("AVG+SUM should be closed-form OK")
	}
	if analyze(t, "SELECT AVG(x), MAX(y) FROM t").ClosedFormOK() {
		t.Error("MAX should break closed-form applicability")
	}
}

func TestBuildFullyOptimizedShape(t *testing.T) {
	def := analyze(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	p, err := Build(def, DefaultOptions(100000))
	if err != nil {
		t.Fatal(err)
	}
	// Expected chain root → leaf:
	// Diagnostic → Bootstrap → Aggregate → Resample → Project → Filter → Scan.
	var labels []string
	Walk(p.Root, func(n Node) { labels = append(labels, n.Label()) })
	wantOrder := []string{"Diagnostic", "Bootstrap", "Aggregate",
		"PoissonizedResample", "Project", "Filter", "Scan"}
	if len(labels) != len(wantOrder) {
		t.Fatalf("chain length %d: %v", len(labels), labels)
	}
	for i, w := range wantOrder {
		if !strings.HasPrefix(labels[i], w) {
			t.Errorf("position %d = %q, want prefix %q", i, labels[i], w)
		}
	}
	r := FindResample(p.Root)
	if !r.Consolidated || !r.Pushed {
		t.Error("default options should consolidate and push down")
	}
	if r.WeightColumns() != 100+3*100 {
		t.Errorf("weight columns = %d, want 400", r.WeightColumns())
	}
	if FindScan(p.Root).Table != "Sessions" {
		t.Error("scan table wrong")
	}
}

func TestBuildWithoutPushdownPlacesResampleAboveScan(t *testing.T) {
	def := analyze(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	opt := DefaultOptions(100000)
	opt.OperatorPushdown = false
	p, err := Build(def, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Resample must sit directly above the Scan: chain ... Filter → Resample → Scan.
	var chain []Node
	Walk(p.Root, func(n Node) { chain = append(chain, n) })
	last := chain[len(chain)-1]
	secondLast := chain[len(chain)-2]
	if _, ok := last.(*Scan); !ok {
		t.Fatal("leaf is not Scan")
	}
	if r, ok := secondLast.(*Resample); !ok || r.Pushed {
		t.Errorf("node above scan = %T (pushed=%v), want unpushed Resample",
			secondLast, r != nil && r.Pushed)
	}
}

func TestBuildNaiveNotConsolidated(t *testing.T) {
	def := analyze(t, "SELECT SUM(x) FROM t")
	opt := DefaultOptions(100000)
	opt.ScanConsolidation = false
	p, err := Build(def, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := FindResample(p.Root)
	if r.Consolidated {
		t.Error("resample should not be consolidated")
	}
	if len(r.DiagSizes) != 0 {
		t.Error("naive plan must not fold diagnostic weights into the scan")
	}
	d := p.Root.(*Diagnostic)
	if d.Consolidated {
		t.Error("diagnostic should be naive")
	}
}

func TestBuildPlainAnswerOnly(t *testing.T) {
	def := analyze(t, "SELECT AVG(x) FROM t")
	p, err := Build(def, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Root.(*Aggregate); !ok {
		t.Errorf("root = %T, want bare Aggregate", p.Root)
	}
	if FindResample(p.Root) != nil {
		t.Error("no resample expected without error estimation")
	}
}

func TestBuildValidation(t *testing.T) {
	def := analyze(t, "SELECT AVG(x) FROM t")
	if _, err := Build(def, Options{BootstrapK: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := Build(def, Options{Diagnostics: true}); err == nil {
		t.Error("diagnostics without sizes accepted")
	}
	if _, err := Build(&QueryDef{Table: "t"}, Options{}); err == nil {
		t.Error("no aggregates accepted")
	}
}

func TestPassThroughPrefixLen(t *testing.T) {
	def := analyze(t, "SELECT AVG(x) FROM t WHERE x > 0")
	p, _ := Build(def, Options{}) // Aggregate → Project → Filter → Scan
	if got := PassThroughPrefixLen(p.Root); got != 2 {
		t.Errorf("pass-through prefix = %d, want 2 (filter+project)", got)
	}
	noFilter := analyze(t, "SELECT COUNT(*) FROM t")
	p2, _ := Build(noFilter, Options{}) // Aggregate → Scan
	if got := PassThroughPrefixLen(p2.Root); got != 0 {
		t.Errorf("prefix without filter/project = %d, want 0", got)
	}
}

func TestExplainRendersTree(t *testing.T) {
	def := analyze(t, "SELECT AVG(x) FROM t WHERE x > 1")
	p, _ := Build(def, DefaultOptions(10000))
	out := p.Explain()
	for _, want := range []string{"Diagnostic", "Bootstrap", "Aggregate",
		"PoissonizedResample", "Filter", "Scan(t)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Indentation should increase down the tree.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("Explain lacks indentation:\n%s", out)
	}
}

func TestNaiveRewriteSQLParses(t *testing.T) {
	def := analyze(t, "SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'")
	text := NaiveRewriteSQL(def, 5)
	if !strings.Contains(text, "UNION ALL") ||
		!strings.Contains(text, "TABLESAMPLE POISSONIZED (100)") {
		t.Fatalf("rewrite text = %s", text)
	}
	if got := strings.Count(text, "TABLESAMPLE"); got != 5 {
		t.Errorf("subquery count = %d, want 5", got)
	}
	// The rewrite uses the engine's own dialect except the ERROR()
	// pseudo-aggregate; strip it and the remainder must parse.
	inner := text[strings.Index(text, "FROM (")+len("FROM (") : strings.LastIndex(text, ") AS resamples")]
	if _, err := sql.Parse(inner); err != nil {
		t.Errorf("inner UNION ALL does not parse: %v\n%s", err, inner)
	}
}

func TestAggSpecLabel(t *testing.T) {
	cases := []struct {
		spec AggSpec
		want string
	}{
		{AggSpec{Kind: estimator.Avg, Input: &sql.ColumnRef{Name: "x"}}, "AVG(x)"},
		{AggSpec{Kind: estimator.Count}, "COUNT(*)"},
		{AggSpec{Kind: estimator.Percentile, Pct: 0.9, Input: &sql.ColumnRef{Name: "l"}}, "PERCENTILE(l, 0.9)"},
		{AggSpec{Kind: estimator.UDF, UDFName: "F", Input: &sql.ColumnRef{Name: "x"}}, "F(x)"},
	}
	for _, c := range cases {
		if got := c.spec.Label(); got != c.want {
			t.Errorf("label = %q, want %q", got, c.want)
		}
	}
}
