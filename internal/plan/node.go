// Package plan builds and rewrites logical query plans for the error
// estimation pipeline of §5. A plan is a small operator tree:
//
//	Scan → [Resample] → Filter/Project → [Resample] → Aggregate
//	     → [Bootstrap] → [Diagnostic]
//
// Two §5.3 rewrites are modelled as explicit, independently switchable
// transformations so the Fig. 8 experiments can attribute speedups:
//
//   - Scan consolidation (§5.3.1): one scan computes the plain answer, all
//     K bootstrap resample aggregates and all diagnostic subsample
//     aggregates, by augmenting each tuple with multiple weight columns.
//     Without it, every resample and every diagnostic subsample query is a
//     separate subquery with its own scan (the §5.2 UNION ALL rewrite).
//
//   - Operator pushdown (§5.3.2): the Poissonized resampling operator is
//     inserted after the longest prefix of pass-through operators (filters,
//     projections) rather than directly above the scan, so weights are
//     never generated for rows a filter will discard.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/estimator"
	"repro/internal/sql"
)

// Node is a logical plan operator.
type Node interface {
	// Child returns the input operator (nil for leaves).
	Child() Node
	// Label renders the operator for EXPLAIN output.
	Label() string
}

// Scan reads a stored sample table.
type Scan struct {
	Table string
}

// Child implements Node.
func (*Scan) Child() Node { return nil }

// Label implements Node.
func (s *Scan) Label() string { return "Scan(" + s.Table + ")" }

// Filter drops rows failing the predicate. Filters are pass-through
// operators in the paper's sense: they do not change the statistical
// properties of the columns being aggregated, only which rows survive.
type Filter struct {
	Input Node
	Pred  sql.Expr
}

// Child implements Node.
func (f *Filter) Child() Node { return f.Input }

// Label implements Node.
func (f *Filter) Label() string { return "Filter(" + f.Pred.String() + ")" }

// Project computes the aggregation input expression(s). Also pass-through.
type Project struct {
	Input Node
	Exprs []sql.Expr
}

// Child implements Node.
func (p *Project) Child() Node { return p.Input }

// Label implements Node.
func (p *Project) Label() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Resample is the Poissonized resampling operator: it augments each tuple
// with weight columns — K bootstrap weights, plus P weights per diagnostic
// subsample size when the diagnostic is consolidated into the same scan
// (Fig. 6(a)).
type Resample struct {
	Input Node
	// K is the number of bootstrap resamples (weight columns).
	K int
	// UserRate, when positive, is an explicit TABLESAMPLE POISSONIZED
	// rate from the query text: the *base answer itself* is evaluated on
	// one Poisson(UserRate) resample, the §5.2 building block.
	UserRate float64
	// DiagSizes and DiagP describe the diagnostic weight groups: for each
	// size, P subsample-resample weight sets. Empty when the diagnostic
	// is not consolidated into this scan.
	DiagSizes []int
	DiagP     int
	// Consolidated marks the §5.3.1 multi-weight form. When false the
	// operator represents the naive one-weight-set-per-subquery form and
	// the executor charges one scan per resample.
	Consolidated bool
	// Pushed marks that the §5.3.2 rewrite placed this operator after
	// the pass-through prefix (directly before the aggregate).
	Pushed bool
}

// Child implements Node.
func (r *Resample) Child() Node { return r.Input }

// Label implements Node.
func (r *Resample) Label() string {
	attrs := []string{fmt.Sprintf("K=%d", r.K)}
	if r.UserRate > 0 {
		attrs = append(attrs, fmt.Sprintf("rate=%g", r.UserRate))
	}
	if len(r.DiagSizes) > 0 {
		attrs = append(attrs, fmt.Sprintf("diag=%v×%d", r.DiagSizes, r.DiagP))
	}
	if r.Consolidated {
		attrs = append(attrs, "consolidated")
	}
	if r.Pushed {
		attrs = append(attrs, "pushed")
	}
	return "PoissonizedResample(" + strings.Join(attrs, ", ") + ")"
}

// WeightColumns returns the total number of weight columns this operator
// attaches per tuple — the quantity scan consolidation trades memory for.
func (r *Resample) WeightColumns() int {
	return r.K + len(r.DiagSizes)*r.DiagP
}

// AggSpec describes one aggregate output of an Aggregate node.
type AggSpec struct {
	Kind estimator.AggKind
	// Pct is the percentile level for Kind == Percentile.
	Pct float64
	// UDFName names the registered UDF for Kind == UDF.
	UDFName string
	// Input is the argument expression (nil for COUNT(*)).
	Input sql.Expr
	// Alias is the output column name.
	Alias string
}

// Label renders the aggregate.
func (a AggSpec) Label() string {
	arg := "*"
	if a.Input != nil {
		arg = a.Input.String()
	}
	name := a.Kind.String()
	if a.Kind == estimator.UDF {
		name = a.UDFName
	}
	if a.Kind == estimator.Percentile {
		return fmt.Sprintf("%s(%s, %g)", name, arg, a.Pct)
	}
	return name + "(" + arg + ")"
}

// Aggregate evaluates the aggregates, per group when GroupBy is set. When
// its input carries weight columns the aggregate kernels run once per
// weight set, producing resample aggregates (the §5.3.1 "modify all
// pre-existing aggregate functions to directly operate on weighted data").
type Aggregate struct {
	Input   Node
	Aggs    []AggSpec
	GroupBy []string
	// Weighted marks that the aggregate consumes resample weights.
	Weighted bool
}

// Child implements Node.
func (a *Aggregate) Child() Node { return a.Input }

// Label implements Node.
func (a *Aggregate) Label() string {
	parts := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		parts[i] = s.Label()
	}
	out := "Aggregate(" + strings.Join(parts, ", ")
	if len(a.GroupBy) > 0 {
		out += " GROUP BY " + strings.Join(a.GroupBy, ", ")
	}
	if a.Weighted {
		out += " [weighted]"
	}
	return out + ")"
}

// Bootstrap consumes the resample aggregates and emits the error estimate
// (one of the two new logical operators of §5.3.1).
type Bootstrap struct {
	Input Node
	K     int
	Alpha float64
}

// Child implements Node.
func (b *Bootstrap) Child() Node { return b.Input }

// Label implements Node.
func (b *Bootstrap) Label() string {
	return fmt.Sprintf("Bootstrap(K=%d, α=%g)", b.K, b.Alpha)
}

// Diagnostic consumes subsample point estimates and error estimates and
// emits the accept/reject verdict (the second new logical operator).
type Diagnostic struct {
	Input Node
	Sizes []int
	P     int
	// Consolidated marks single-scan execution; when false the executor
	// charges Sizes×P×(K+1) separate subqueries (the naive §5.2 cost).
	Consolidated bool
}

// Child implements Node.
func (d *Diagnostic) Child() Node { return d.Input }

// Label implements Node.
func (d *Diagnostic) Label() string {
	mode := "naive"
	if d.Consolidated {
		mode = "consolidated"
	}
	return fmt.Sprintf("Diagnostic(sizes=%v, p=%d, %s)", d.Sizes, d.P, mode)
}

// Explain renders the plan as an indented tree, root first.
func Explain(root Node) string {
	var sb strings.Builder
	depth := 0
	for n := root; n != nil; n = n.Child() {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Label())
		sb.WriteString("\n")
		depth++
	}
	return sb.String()
}

// Walk visits the chain from root to leaf, calling fn on each node.
func Walk(root Node, fn func(Node)) {
	for n := root; n != nil; n = n.Child() {
		fn(n)
	}
}

// FindScan returns the Scan at the bottom of the chain, or nil.
func FindScan(root Node) *Scan {
	var out *Scan
	Walk(root, func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = s
		}
	})
	return out
}

// FindResample returns the Resample node in the chain, or nil.
func FindResample(root Node) *Resample {
	var out *Resample
	Walk(root, func(n Node) {
		if r, ok := n.(*Resample); ok {
			out = r
		}
	})
	return out
}
