package plan

import (
	"fmt"
	"strings"

	"repro/internal/sql"
)

// Options selects which pipeline stages and which §5.3 optimizations a
// plan uses. The Fig. 8 ablations toggle ScanConsolidation and
// OperatorPushdown independently.
type Options struct {
	// BootstrapK is the number of bootstrap resamples (0 disables error
	// estimation entirely: plain approximate answer only).
	BootstrapK int
	// Alpha is the confidence level for error bars.
	Alpha float64
	// Diagnostics enables the diagnostic operator.
	Diagnostics bool
	// DiagSizes and DiagP configure the diagnostic ladder.
	DiagSizes []int
	DiagP     int
	// ScanConsolidation enables the §5.3.1 single-scan rewrite.
	ScanConsolidation bool
	// OperatorPushdown enables the §5.3.2 resampling-pushdown rewrite.
	OperatorPushdown bool
}

// DefaultOptions returns the fully optimized pipeline with the paper's
// parameters (K=100 resamples, p=100 subsamples at 3 sizes, α=0.95).
func DefaultOptions(sampleRows int) Options {
	b3 := sampleRows / 200
	if b3 < 4 {
		b3 = 4
	}
	return Options{
		BootstrapK:        100,
		Alpha:             0.95,
		Diagnostics:       true,
		DiagSizes:         []int{b3 / 4, b3 / 2, b3},
		DiagP:             100,
		ScanConsolidation: true,
		OperatorPushdown:  true,
	}
}

// Plan is a planned query: the operator tree plus the analyzed definition.
type Plan struct {
	Root Node
	Def  *QueryDef
	Opt  Options
}

// Explain renders the plan tree.
func (p *Plan) Explain() string { return Explain(p.Root) }

// Build plans the query with the given options. The returned tree always
// has the shape
//
//	Scan → [Resample?] → Filter? → Project → [Resample?] → Aggregate
//	   → Bootstrap? → Diagnostic?
//
// with the Resample placed according to OperatorPushdown and flagged
// according to ScanConsolidation.
func Build(def *QueryDef, opt Options) (*Plan, error) {
	if len(def.Aggs) == 0 {
		return nil, fmt.Errorf("plan: query has no aggregates")
	}
	if opt.BootstrapK < 0 {
		return nil, fmt.Errorf("plan: negative bootstrap K")
	}
	if opt.Alpha == 0 {
		opt.Alpha = 0.95
	}
	if opt.Diagnostics && (len(opt.DiagSizes) == 0 || opt.DiagP <= 0) {
		return nil, fmt.Errorf("plan: diagnostics enabled without sizes/p")
	}

	userRate := 0.0
	if def.SampleClause != nil {
		userRate = def.SampleClause.Rate()
	}
	needResample := opt.BootstrapK > 0 || opt.Diagnostics || userRate > 0
	var resample *Resample
	if needResample {
		resample = &Resample{
			K:            opt.BootstrapK,
			UserRate:     userRate,
			Consolidated: opt.ScanConsolidation,
			Pushed:       opt.OperatorPushdown,
		}
		if opt.Diagnostics && opt.ScanConsolidation {
			resample.DiagSizes = append([]int(nil), opt.DiagSizes...)
			resample.DiagP = opt.DiagP
		}
	}

	var node Node = &Scan{Table: def.Table}
	if needResample && !opt.OperatorPushdown {
		// Naive placement: immediately after the table scan, so weights
		// are generated even for rows the filter will drop (Fig. 6(b),
		// left).
		resample.Input = node
		node = resample
	}
	if def.Where != nil {
		node = &Filter{Input: node, Pred: def.Where}
	}
	var exprs []sql.Expr
	for _, a := range def.Aggs {
		if a.Input != nil {
			exprs = append(exprs, a.Input)
		}
	}
	if len(exprs) > 0 {
		node = &Project{Input: node, Exprs: exprs}
	}
	if needResample && opt.OperatorPushdown {
		// Optimized placement: after the longest pass-through prefix
		// (filters and projections), directly before the aggregate
		// (Fig. 6(b), right).
		resample.Input = node
		node = resample
	}
	node = &Aggregate{
		Input:    node,
		Aggs:     def.Aggs,
		GroupBy:  def.GroupBy,
		Weighted: needResample,
	}
	if opt.BootstrapK > 0 {
		node = &Bootstrap{Input: node, K: opt.BootstrapK, Alpha: opt.Alpha}
	}
	if opt.Diagnostics {
		node = &Diagnostic{
			Input:        node,
			Sizes:        append([]int(nil), opt.DiagSizes...),
			P:            opt.DiagP,
			Consolidated: opt.ScanConsolidation,
		}
	}
	return &Plan{Root: node, Def: def, Opt: opt}, nil
}

// PassThroughPrefixLen counts the consecutive pass-through operators
// (filters, projections) above the scan — the quantity the §5.3.2 rewrite
// maximizes when choosing where to insert the resampling operator.
func PassThroughPrefixLen(root Node) int {
	// Collect the chain bottom-up.
	var chain []Node
	Walk(root, func(n Node) { chain = append(chain, n) })
	// chain is root..leaf; traverse from the leaf upward.
	count := 0
	for i := len(chain) - 2; i >= 0; i-- { // skip the Scan itself
		switch chain[i].(type) {
		case *Filter, *Project:
			count++
		default:
			return count
		}
	}
	return count
}

// NaiveRewriteSQL renders the §5.2 baseline rewrite as SQL text: the
// bootstrap implemented as a UNION ALL of K subqueries, each drawing its
// own Poissonized resample of the sample table. It exists to demonstrate
// (and test) that the naive plan is expressible in the engine's own SQL
// dialect.
func NaiveRewriteSQL(def *QueryDef, k int) string {
	agg := def.Aggs[0]
	inner := agg.Label()
	where := ""
	if def.Where != nil {
		where = " WHERE " + def.Where.String()
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("SELECT %s, ERROR(resample_answer) AS error FROM (", inner))
	for i := 0; i < k; i++ {
		if i > 0 {
			sb.WriteString(" UNION ALL ")
		}
		sb.WriteString(fmt.Sprintf(
			"SELECT %s AS resample_answer FROM %s TABLESAMPLE POISSONIZED (100)%s",
			inner, def.Table, where))
	}
	sb.WriteString(") AS resamples")
	return sb.String()
}
