package plan

import (
	"fmt"
	"strings"

	"repro/internal/estimator"
	"repro/internal/sql"
)

// QueryDef is the analyzed form of a SELECT: which table, which filter,
// which aggregates, which grouping — the input to planning.
type QueryDef struct {
	Table   string
	Where   sql.Expr
	Aggs    []AggSpec
	GroupBy []string
	// SampleClause carries an explicit TABLESAMPLE POISSONIZED rate when
	// the user asked for one directly (§5.2's SQL surface).
	SampleClause *sql.PoissonSample
}

// Analyze validates a parsed SELECT against the engine's supported shape
// and extracts a QueryDef. isUDF reports whether a function name is a
// registered user-defined aggregate.
func Analyze(sel *sql.Select, isUDF func(string) bool) (*QueryDef, error) {
	if isUDF == nil {
		isUDF = func(string) bool { return false }
	}
	tn, ok := sel.From.(*sql.TableName)
	if !ok {
		return nil, fmt.Errorf("plan: FROM must reference a stored table (subqueries are produced only by internal rewrites)")
	}
	def := &QueryDef{
		Table:        tn.Name,
		Where:        sel.Where,
		GroupBy:      append([]string(nil), sel.GroupBy...),
		SampleClause: tn.Sample,
	}
	groupSet := map[string]bool{}
	for _, g := range sel.GroupBy {
		groupSet[strings.ToLower(g)] = true
	}
	for _, item := range sel.Items {
		switch e := item.Expr.(type) {
		case *sql.ColumnRef:
			if !groupSet[strings.ToLower(e.Name)] {
				return nil, fmt.Errorf("plan: non-aggregate column %q must appear in GROUP BY", e.Name)
			}
			// Grouping columns pass through; not an aggregate output.
		case *sql.FuncCall:
			spec, err := analyzeAggregate(e, item.Alias, isUDF)
			if err != nil {
				return nil, err
			}
			def.Aggs = append(def.Aggs, spec)
		default:
			return nil, fmt.Errorf("plan: unsupported select item %s (want aggregate or grouping column)", item.Expr)
		}
	}
	if len(def.Aggs) == 0 {
		return nil, fmt.Errorf("plan: query computes no aggregate")
	}
	return def, nil
}

func analyzeAggregate(call *sql.FuncCall, alias string, isUDF func(string) bool) (AggSpec, error) {
	spec := AggSpec{Alias: alias}
	if spec.Alias == "" {
		spec.Alias = strings.ToLower(call.Name)
	}
	argExpr := func(i int) (sql.Expr, error) {
		if i >= len(call.Args) {
			return nil, fmt.Errorf("plan: %s missing argument %d", call.Name, i+1)
		}
		return call.Args[i], nil
	}
	switch call.Name {
	case "AVG", "SUM", "MIN", "MAX", "VARIANCE", "STDEV":
		if len(call.Args) != 1 {
			return AggSpec{}, fmt.Errorf("plan: %s takes exactly one argument", call.Name)
		}
		arg, err := argExpr(0)
		if err != nil {
			return AggSpec{}, err
		}
		if _, isStar := arg.(*sql.Star); isStar {
			return AggSpec{}, fmt.Errorf("plan: %s(*) is not meaningful", call.Name)
		}
		spec.Input = arg
		spec.Kind = map[string]estimator.AggKind{
			"AVG": estimator.Avg, "SUM": estimator.Sum,
			"MIN": estimator.Min, "MAX": estimator.Max,
			"VARIANCE": estimator.Variance, "STDEV": estimator.Stdev,
		}[call.Name]
		return spec, nil
	case "COUNT":
		if len(call.Args) != 1 {
			return AggSpec{}, fmt.Errorf("plan: COUNT takes exactly one argument")
		}
		spec.Kind = estimator.Count
		if _, isStar := call.Args[0].(*sql.Star); !isStar {
			spec.Input = call.Args[0]
		}
		return spec, nil
	case "PERCENTILE":
		if len(call.Args) != 2 {
			return AggSpec{}, fmt.Errorf("plan: PERCENTILE takes (column, level)")
		}
		lit, ok := call.Args[1].(*sql.Literal)
		if !ok || lit.IsStr || lit.Num <= 0 || lit.Num >= 1 {
			return AggSpec{}, fmt.Errorf("plan: PERCENTILE level must be a literal in (0,1)")
		}
		spec.Kind = estimator.Percentile
		spec.Pct = lit.Num
		spec.Input = call.Args[0]
		return spec, nil
	default:
		if !isUDF(call.Name) {
			return AggSpec{}, fmt.Errorf("plan: unknown function %s", call.Name)
		}
		if len(call.Args) != 1 {
			return AggSpec{}, fmt.Errorf("plan: UDF %s takes exactly one argument", call.Name)
		}
		spec.Kind = estimator.UDF
		spec.UDFName = call.Name
		spec.Input = call.Args[0]
		return spec, nil
	}
}

// ClosedFormOK reports whether every aggregate in the query admits a
// closed-form error estimate (QSet-1 membership at the SQL level).
func (d *QueryDef) ClosedFormOK() bool {
	for _, a := range d.Aggs {
		q := estimator.Query{Kind: a.Kind}
		if !q.ClosedFormApplicable() {
			return false
		}
	}
	return true
}
