package kernel_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/kernel"
	"repro/internal/rng"
)

func testData(seed uint64, n int) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 50 + 5*src.NormFloat64()
	}
	return xs
}

// relDiff is the relative difference, safe around zero.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// The fused Σw·x / Σw accumulators must agree with the generic weighted-θ
// path on identical RNG streams for every closed-form kind, up to
// floating-point summation order.
func TestFusedMatchesGenericWeightedTheta(t *testing.T) {
	xs := testData(1, 5000)
	const k = 50
	const seed, stream = 42, 7
	queries := []estimator.Query{
		{Kind: estimator.Avg},
		{Kind: estimator.Sum},
		{Kind: estimator.Sum, PopN: 100000},
		{Kind: estimator.Count, PopN: 100000},
	}
	for _, q := range queries {
		if !q.FusedApplicable() {
			t.Fatalf("%s: expected fused applicability", q.Name())
		}
		sums := kernel.FusedSums(context.Background(), xs, k, seed, stream, 1)
		ests, _ := kernel.Generic(context.Background(), xs, k, seed, stream, 1, q.EvalWeighted)
		for r := 0; r < k; r++ {
			fused := q.FinalizeFused(sums.WX[r], sums.W[r], len(xs))
			if d := relDiff(fused, ests[r]); d > 1e-12 {
				t.Errorf("%s resample %d: fused %v vs generic %v (rel diff %g)",
					q.Name(), r, fused, ests[r], d)
			}
		}
	}
}

// FusedSums must be bit-identical at every worker count: per-block partials
// are merged serially in block order, so the FP reduction order never
// depends on parallelism.
func TestFusedSumsWorkerInvariance(t *testing.T) {
	xs := testData(2, 20000) // 20 blocks
	const k = 32
	base := kernel.FusedSums(context.Background(), xs, k, 9, 11, 1)
	for _, workers := range []int{2, 4, 8, 64} {
		got := kernel.FusedSums(context.Background(), xs, k, 9, 11, workers)
		for r := 0; r < k; r++ {
			if got.WX[r] != base.WX[r] || got.W[r] != base.W[r] {
				t.Fatalf("workers=%d resample %d: (%v, %v) != serial (%v, %v)",
					workers, r, got.WX[r], got.W[r], base.WX[r], base.W[r])
			}
		}
	}
}

// Generic must likewise be worker-count-invariant: each resample owns its
// per-(resample, block) streams regardless of which goroutine runs it.
func TestGenericWorkerInvariance(t *testing.T) {
	xs := testData(3, 8000)
	const k = 37 // deliberately not a multiple of any worker count
	q := estimator.Query{Kind: estimator.Percentile, Pct: 0.9}
	base, tasks := kernel.Generic(context.Background(), xs, k, 13, 17, 1, q.EvalWeighted)
	if tasks != 1 {
		t.Errorf("serial path reported %d tasks, want 1", tasks)
	}
	for _, workers := range []int{2, 4, 8} {
		got, tasks := kernel.Generic(context.Background(), xs, k, 13, 17, workers, q.EvalWeighted)
		if tasks != workers {
			t.Errorf("workers=%d launched %d tasks", workers, tasks)
		}
		for r := 0; r < k; r++ {
			if got[r] != base[r] {
				t.Fatalf("workers=%d resample %d: %v != serial %v",
					workers, r, got[r], base[r])
			}
		}
	}
}

// FillWeights must reproduce exactly the weights FusedSums consumed: Σw
// matches bit-for-bit (both are integer event counts), and Σw·x matches up
// to floating-point order (FusedSums accumulates in event order, a weight
// vector sums in row order).
func TestFillWeightsMatchesFusedSums(t *testing.T) {
	xs := testData(4, 3000) // 3 blocks, last one partial
	const k = 8
	const seed, stream = 5, 6
	sums := kernel.FusedSums(context.Background(), xs, k, seed, stream, 1)
	w := make([]float64, len(xs))
	for r := 0; r < k; r++ {
		kernel.FillWeights(w, seed, stream, r)
		var totWX, totW float64
		for i, wi := range w {
			totWX += wi * xs[i]
			totW += wi
		}
		if totW != sums.W[r] {
			t.Errorf("resample %d: FillWeights Σw = %v, FusedSums %v",
				r, totW, sums.W[r])
		}
		if d := relDiff(totWX, sums.WX[r]); d > 1e-12 {
			t.Errorf("resample %d: FillWeights Σwx = %v, FusedSums %v (rel diff %g)",
				r, totWX, sums.WX[r], d)
		}
	}
}

// Sanity on the weight distribution: Poisson(1) weights have mean 1 and
// variance 1, and distinct resamples draw distinct streams.
func TestFillWeightsPoissonMoments(t *testing.T) {
	const n = 100000
	w0 := make([]float64, n)
	w1 := make([]float64, n)
	kernel.FillWeights(w0, 21, 22, 0)
	kernel.FillWeights(w1, 21, 22, 1)
	same := 0
	var sum, sumSq float64
	for i := range w0 {
		sum += w0[i]
		sumSq += w0[i] * w0[i]
		if w0[i] == w1[i] {
			same++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("weight mean %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("weight variance %v, want ~1", variance)
	}
	// Identical streams would make every position agree; independent
	// Poisson(1) pairs agree ~41% of the time (Σ P(X=j)²).
	if frac := float64(same) / n; frac > 0.6 {
		t.Errorf("resamples 0 and 1 agree at %v of positions; streams not distinct", frac)
	}
}

func TestKernelEdgeCases(t *testing.T) {
	// k = 0: empty accumulators, no work.
	s := kernel.FusedSums(context.Background(), []float64{1, 2, 3}, 0, 1, 2, 4)
	if len(s.WX) != 0 || len(s.W) != 0 {
		t.Errorf("k=0 returned non-empty sums")
	}
	// Empty input: zero-valued accumulators for every resample.
	s = kernel.FusedSums(context.Background(), nil, 4, 1, 2, 4)
	if len(s.WX) != 4 {
		t.Fatalf("empty input: got %d accumulators, want 4", len(s.WX))
	}
	for r := 0; r < 4; r++ {
		if s.WX[r] != 0 || s.W[r] != 0 {
			t.Errorf("empty input resample %d: nonzero sums", r)
		}
	}
	ests, tasks := kernel.Generic(context.Background(), nil, 0, 1, 2, 4, func(_, _ []float64) float64 { return 0 })
	if len(ests) != 0 || tasks != 0 {
		t.Errorf("k=0 generic: ests=%v tasks=%d", ests, tasks)
	}
}
