// Package kernel implements the blocked, fused, multi-resample aggregation
// kernel behind scan consolidation (§5.3.1). The naive layout of
// Poissonized bootstrapping is resample-major: for each of the K resamples,
// re-stream the whole value column, materialize a fresh n-row weight
// vector, and evaluate θ — K full passes whose working set (values +
// weights) falls out of cache between resamples, plus K buffer
// allocations.
//
// This package turns the loop inside out. The value column is processed in
// cache-sized blocks (BlockSize float64s ≈ 8 KiB); for each block, the
// kernel draws Poisson(1) weights and updates all K resample accumulators
// before moving to the next block. Every value is read from memory once
// and stays L1-resident while the K resamples consume it, and for the
// closed-form family (SUM/COUNT/AVG — anything of the Σw·x / Σw shape) no
// weight vector is ever materialized at all.
//
// Weight generation is event-major (multinomial thinning): i.i.d.
// Poisson(1) weights over a block of B rows are distributionally identical
// to one total N ~ Poisson(B) followed by N events placed uniformly in the
// block. Σw is then N for free, Σw·x is N gathered adds, and — because
// BlockSize is a power of two — full-block placement is a bias-free bit
// shift off one raw Uint64, cheaper than a per-row Poisson inversion.
//
// Determinism: every (resample r, block b) pair owns its own RNG stream,
// derived from a caller-supplied base stream. The weights of resample r
// are therefore a pure function of (seed, stream, r, b), independent of
// which worker processed the block or how many workers ran — results are
// bit-identical at any degree of parallelism, and FillWeights can
// reproduce any resample's exact weight vector for the generic θ fallback
// and for equivalence tests.
package kernel

import (
	"context"
	"sync"

	"repro/internal/rng"
)

// BlockSize is the number of float64 values processed per block. 1024
// values = 8 KiB: comfortably inside L1d, so one block's values stay
// resident while all K resamples stream over it. It must remain a power of
// two — full-block event placement draws the row index as the top bits of
// a raw Uint64.
const BlockSize = 1 << blockBits

const (
	blockBits  = 10
	blockShift = 64 - blockBits
)

// streamFor derives the RNG stream id of (resample r, block b) from the
// caller's base stream by FNV-style mixing. rng.StreamSource runs the
// result through the SplitMix64 finalizer, so light mixing suffices here.
func streamFor(base uint64, r, b int) uint64 {
	h := base ^ 0x517cc1b727220a95
	h ^= uint64(r)
	h *= 1099511628211
	h ^= uint64(b)
	h *= 1099511628211
	return h
}

// bufPool recycles float64 scratch buffers (weight vectors for the generic
// path, per-block partial accumulators for the fused path) across kernel
// invocations, so a steady query stream performs no per-call scratch
// allocation.
var bufPool sync.Pool

func getBuf(n int) []float64 {
	// Undersized pooled buffers are dropped (not re-pooled) so the pool
	// converges to the largest working-set size in use.
	if p, _ := bufPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putBuf(b []float64) {
	bufPool.Put(&b)
}

// Sums holds the fused per-resample accumulators of one kernel run:
// WX[r] = Σ w·x and W[r] = Σ w over resample r's Poisson weights. The
// closed-form aggregates finalize from these two numbers alone (AVG =
// WX/W, scaled SUM/COUNT = |D|·WX/W), so the kernel never materializes a
// weight vector for them.
type Sums struct {
	WX []float64
	W  []float64
	// Tasks is the number of parallel work units that actually performed
	// work: goroutines launched, or 1 for the inline (workers <= 1) path.
	Tasks int
}

// FusedSums streams values block-major and returns the fused accumulators
// for K Poissonized resamples. Parallelism is over contiguous block
// ranges; per-block partials are merged serially in block order afterwards,
// so the result is bit-identical at every worker count.
//
// Cancellation is checked once per block, so the latency of an abort is one
// block's work (8 KiB of values × K resamples), not the whole column. A
// cancelled call returns early with partial sums; callers must check
// ctx.Err() and discard the result. context.Background() (whose Done
// channel is nil) adds no per-block cost.
func FusedSums(ctx context.Context, values []float64, k int, seed, stream uint64, workers int) Sums {
	out := Sums{WX: make([]float64, k), W: make([]float64, k), Tasks: 1}
	n := len(values)
	nb := (n + BlockSize - 1) / BlockSize
	if k == 0 || nb == 0 {
		return out
	}
	done := ctx.Done()
	partWX := getBuf(nb * k)
	partW := getBuf(nb * k)

	process := func(b int) {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		blk := values[lo:hi]
		bl := len(blk)
		base := b * k
		for r := 0; r < k; r++ {
			src := rng.StreamSource(seed, streamFor(stream, r, b))
			// Event-major: the block's total multiplicity is one
			// Poisson(bl) draw; each event gathers one value.
			ev := src.Poisson(float64(bl))
			var wx float64
			if bl == BlockSize {
				for e := 0; e < ev; e++ {
					wx += blk[src.Uint64()>>blockShift]
				}
			} else {
				for e := 0; e < ev; e++ {
					wx += blk[src.Uint64n(uint64(bl))]
				}
			}
			partWX[base+r] = wx
			partW[base+r] = float64(ev)
		}
	}

	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		for b := 0; b < nb; b++ {
			if cancelled() {
				break
			}
			process(b)
		}
	} else {
		chunk := (nb + workers - 1) / workers
		var wg sync.WaitGroup
		launched := 0
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nb {
				hi = nb
			}
			if lo >= hi {
				continue
			}
			launched++
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for b := lo; b < hi; b++ {
					if cancelled() {
						return
					}
					process(b)
				}
			}(lo, hi)
		}
		wg.Wait()
		out.Tasks = launched
	}
	// In-order reduction over blocks: the floating-point merge order is a
	// function of the block layout only, never of the worker count.
	for b := 0; b < nb; b++ {
		base := b * k
		for r := 0; r < k; r++ {
			out.WX[r] += partWX[base+r]
			out.W[r] += partW[base+r]
		}
	}
	putBuf(partWX)
	putBuf(partW)
	return out
}

// FillWeights writes resample r's Poisson(1) weight vector into w — drawn
// block by block from exactly the per-(resample, block) streams and the
// same event sequence FusedSums consumes, so the generic path and the
// fused path see identical weights for identical (seed, stream, r).
func FillWeights(w []float64, seed, stream uint64, r int) {
	n := len(w)
	for b := 0; b*BlockSize < n; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		bl := hi - lo
		blk := w[lo:hi]
		for i := range blk {
			blk[i] = 0
		}
		src := rng.StreamSource(seed, streamFor(stream, r, b))
		ev := src.Poisson(float64(bl))
		if bl == BlockSize {
			for e := 0; e < ev; e++ {
				blk[src.Uint64()>>blockShift]++
			}
		} else {
			for e := 0; e < ev; e++ {
				blk[src.Uint64n(uint64(bl))]++
			}
		}
	}
}

// Generic computes K weighted-θ resample estimates for aggregates without
// a fused accumulator (quantiles, MIN/MAX, black-box UDFs). Weight vectors
// are materialized one resample at a time into pooled buffers; parallelism
// is over resamples. Results are worker-count-invariant because each
// resample's weights come from its own per-(resample, block) streams. The
// returned int counts the parallel tasks that actually ran (goroutines
// launched, or 1 inline). theta may be called concurrently and must be
// safe for that, as estimator.Query.EvalWeighted is.
//
// Cancellation is checked once per resample (one weight fill plus one θ
// evaluation); a cancelled call returns early with partial estimates, which
// callers must discard after checking ctx.Err().
func Generic(ctx context.Context, values []float64, k int, seed, stream uint64, workers int, theta func(values, weights []float64) float64) ([]float64, int) {
	ests := make([]float64, k)
	if k == 0 {
		return ests, 0
	}
	done := ctx.Done()
	run := func(lo, hi int) {
		buf := getBuf(len(values))
		for r := lo; r < hi; r++ {
			if done != nil {
				select {
				case <-done:
					putBuf(buf)
					return
				default:
				}
			}
			FillWeights(buf, seed, stream, r)
			ests[r] = theta(values, buf)
		}
		putBuf(buf)
	}
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		run(0, k)
		return ests, 1
	}
	chunk := (k + workers - 1) / workers
	var wg sync.WaitGroup
	launched := 0
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			continue
		}
		launched++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return ests, launched
}
