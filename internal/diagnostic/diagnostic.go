// Package diagnostic implements the error-estimation diagnostic of Kleiner
// et al. (Algorithm 1 in the paper's appendix), generalized — as §4 of the
// paper proposes — to validate any error-estimation procedure ξ, not just
// the bootstrap.
//
// The idea: disjoint partitions of a shuffled random sample are themselves
// mutually independent random samples of the underlying data. The
// diagnostic therefore evaluates ξ against ground truth on a ladder of
// small subsample sizes b₁ < … < b_k — where ground truth is affordable —
// and extrapolates: if the relative deviation Δᵢ and spread σᵢ of ξ's
// intervals shrink (or are already small) as bᵢ grows, and most intervals
// at b_k are close to truth, then ξ is declared trustworthy at the full
// sample size.
package diagnostic

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/estimator"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/stats"
)

// subStream derives the RNG stream id of subsample j at ladder-size index
// si. rng.NewWithStream finalizes the id, so a collision-free combination
// suffices.
func subStream(si, j int) uint64 {
	return uint64(si)<<32 | uint64(uint32(j))
}

// Config carries Algorithm 1's parameters. The paper's experiments use
// p=100, k=3, c1=c2=0.2, c3=0.5 and ρ=0.95, with subsample sizes equivalent
// to 50, 100 and 200 MB of rows.
type Config struct {
	// SubsampleSizes is the increasing ladder b₁ < … < b_k.
	SubsampleSizes []int
	// P is the number of disjoint subsamples drawn at each size.
	P int
	// C1 bounds an acceptable relative deviation Δᵢ.
	C1 float64
	// C2 bounds an acceptable relative spread σᵢ.
	C2 float64
	// C3 is the per-subsample closeness threshold entering πᵢ.
	C3 float64
	// Rho is the minimum acceptable πₖ at the largest subsample size.
	Rho float64
	// Alpha is the confidence level handed to ξ and used for the true
	// intervals.
	Alpha float64
	// Shuffle controls whether Run re-shuffles the sample before
	// partitioning. Leave true unless the caller guarantees the sample
	// is already in random order.
	Shuffle bool
	// Workers bounds the parallelism of the per-size subsample queries:
	// at each ladder size the P (truth + ξ) evaluations fan out across at
	// most Workers goroutines. <= 1 runs serially. Every subsample owns
	// its own RNG stream, so the verdict and every per-size statistic are
	// identical at any worker count.
	Workers int
	// Span, when non-nil, receives the verdict, rejection reason,
	// subsample-query count and per-size ladder statistics as span
	// attributes, and counts the verdict into the span's metrics registry
	// (aqp_diagnostic_verdicts_total). Nil disables telemetry; the
	// verdict is unaffected either way.
	Span *obs.Span
}

func (c Config) workers() int {
	if c.Workers <= 1 {
		return 1
	}
	return c.Workers
}

// DefaultConfig returns the paper's settings scaled to a sample of n rows:
// k=3 sizes in the ratio 1:2:4 (the 50/100/200 MB ladder), sized so that
// p disjoint subsamples of the largest size fit in n.
func DefaultConfig(n int) Config {
	p := 100
	// Largest size uses half the sample: b3 = n/(2p), b2 = b3/2, b1 = b3/4.
	b3 := n / (2 * p)
	if b3 < 4 {
		b3 = 4
	}
	return Config{
		SubsampleSizes: []int{b3 / 4, b3 / 2, b3},
		P:              p,
		C1:             0.2,
		C2:             0.2,
		C3:             0.5,
		Rho:            0.95,
		Alpha:          0.95,
		Shuffle:        true,
	}
}

// Validate reports whether the configuration is internally consistent and
// feasible for a sample of n rows.
func (c Config) Validate(n int) error {
	if len(c.SubsampleSizes) < 2 {
		return fmt.Errorf("diagnostic: need at least 2 subsample sizes, have %d",
			len(c.SubsampleSizes))
	}
	prev := 0
	for _, b := range c.SubsampleSizes {
		if b <= prev {
			return fmt.Errorf("diagnostic: subsample sizes must be strictly increasing, got %v",
				c.SubsampleSizes)
		}
		prev = b
	}
	if c.P < 2 {
		return fmt.Errorf("diagnostic: p must be >= 2, have %d", c.P)
	}
	bk := c.SubsampleSizes[len(c.SubsampleSizes)-1]
	if bk*c.P > n {
		return fmt.Errorf("diagnostic: largest size %d × p %d exceeds sample size %d",
			bk, c.P, n)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("diagnostic: alpha %v outside (0,1)", c.Alpha)
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("diagnostic: rho %v outside [0,1]", c.Rho)
	}
	return nil
}

// SizeStats records the diagnostic's summary statistics at one subsample
// size (the Δᵢ, σᵢ, πᵢ of Algorithm 1).
type SizeStats struct {
	Size int
	// TrueHalfWidth is xᵢ: the half-width of the smallest symmetric
	// interval around θ(S) covering α·p of the subsample estimates.
	TrueHalfWidth float64
	// Delta is Δᵢ = |mean(x̂ᵢ) − xᵢ| / xᵢ.
	Delta float64
	// Sigma is σᵢ = stddev(x̂ᵢ) / xᵢ.
	Sigma float64
	// Pi is πᵢ: the proportion of subsample estimates within c₃·xᵢ of xᵢ.
	Pi float64
}

// Result is the diagnostic's verdict plus its per-size evidence.
type Result struct {
	// OK reports whether ξ's error estimates can be trusted for this
	// query on this sample.
	OK bool
	// Reason explains a rejection ("" when OK).
	Reason string
	// PerSize holds the ladder statistics, smallest size first.
	PerSize []SizeStats
	// SubsampleQueries counts how many times θ was evaluated — the
	// quantity the paper's systems optimizations exist to make cheap.
	SubsampleQueries int
}

// Run executes Algorithm 1: it checks whether the error-estimation
// procedure est can be trusted for query q on the given sample.
//
// At each ladder size the P subsample evaluations (the true estimate θ on
// the subsample plus ξ's interval) fan out across cfg.Workers goroutines.
// Each (size, subsample) pair owns an RNG stream derived from a single
// draw off src, so the verdict and every per-size statistic are
// bit-identical at any worker count.
//
// Cancellation is checked before every subsample evaluation, and ξ itself
// is cancelled mid-resampling when it implements estimator.ContextEstimator
// (the bootstrap family does). A cancelled run returns ctx's error; all
// worker goroutines exit before Run returns.
func Run(ctx context.Context, src *rng.Source, values []float64, q estimator.Query, est estimator.Estimator, cfg Config) (Result, error) {
	res, err := run(ctx, src, values, q, est, cfg)
	if err == nil {
		cfg.record(&res)
	}
	return res, err
}

// record publishes the verdict and ladder evidence to the configured span
// and metrics registry.
func (cfg Config) record(res *Result) {
	s := cfg.Span
	if s == nil {
		return
	}
	verdict := "accept"
	if !res.OK {
		verdict = "reject"
	}
	s.SetAttr("verdict", verdict)
	if res.Reason != "" {
		s.SetAttr("reason", res.Reason)
	}
	s.AddInt("subsample_queries", int64(res.SubsampleQueries))
	for _, st := range res.PerSize {
		s.SetAttr(fmt.Sprintf("delta_b%d", st.Size), st.Delta)
		s.SetAttr(fmt.Sprintf("sigma_b%d", st.Size), st.Sigma)
		s.SetAttr(fmt.Sprintf("pi_b%d", st.Size), st.Pi)
	}
	s.Metrics().Counter("aqp_diagnostic_verdicts_total",
		"Diagnostic verdicts, by outcome.", "verdict", verdict).Inc()
}

func run(ctx context.Context, src *rng.Source, values []float64, q estimator.Query, est estimator.Estimator, cfg Config) (Result, error) {
	if err := cfg.Validate(len(values)); err != nil {
		return Result{}, err
	}
	if !est.AppliesTo(q) {
		return Result{OK: false, Reason: "estimator not applicable"}, nil
	}
	ce, _ := est.(estimator.ContextEstimator)
	done := ctx.Done()

	s := values
	if cfg.Shuffle {
		s = sample.Shuffled(src, values)
	}
	// Best available estimate of θ(D).
	t := q.Eval(s)
	// Base seed for the per-(size, subsample) streams.
	base := src.Uint64()

	res := Result{PerSize: make([]SizeStats, 0, len(cfg.SubsampleSizes))}
	for si, b := range cfg.SubsampleSizes {
		subs, err := sample.DisjointSubsamples(s, b, cfg.P)
		if err != nil {
			return Result{}, err
		}
		// θ and ξ on each subsample, fanned across the worker pool. ests
		// is the truth ladder; widths is ξ's per-subsample half-width.
		ests := make([]float64, cfg.P)
		widths := make([]float64, cfg.P)
		errs := make([]error, cfg.P)
		evalRange := func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				sub := subs[j]
				ests[j] = q.Eval(sub)
				sr := rng.NewWithStream(base, subStream(si, j))
				var iv estimator.Interval
				var err error
				if ce != nil {
					iv, err = ce.IntervalContext(ctx, sr, sub, q, cfg.Alpha)
				} else {
					iv, err = est.Interval(sr, sub, q, cfg.Alpha)
				}
				if err != nil {
					errs[j] = err
					continue
				}
				widths[j] = iv.HalfWidth
			}
		}
		w := cfg.workers()
		if w > cfg.P {
			w = cfg.P
		}
		if w <= 1 {
			evalRange(0, cfg.P)
		} else {
			var wg sync.WaitGroup
			chunk := (cfg.P + w - 1) / w
			for wi := 0; wi < w; wi++ {
				lo, hi := wi*chunk, (wi+1)*chunk
				if hi > cfg.P {
					hi = cfg.P
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					evalRange(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		for _, err := range errs {
			if err != nil {
				return Result{OK: false, Reason: "estimator failed: " + err.Error()}, nil
			}
		}
		res.SubsampleQueries += cfg.P // truth: one θ per subsample
		x := stats.SymmetricHalfWidth(ests, t, cfg.Alpha)
		res.SubsampleQueries += cfg.P // ξ costs at least one θ-scale pass per subsample

		st := SizeStats{Size: b, TrueHalfWidth: x}
		switch {
		case math.IsNaN(x):
			// Truly uninformative truth at this size.
			st.Delta = math.NaN()
			st.Sigma = math.NaN()
			st.Pi = math.NaN()
		case x == 0:
			// Zero-width truth: every subsample estimate coincides with
			// θ(S) — common for MIN/MAX over columns with atoms at the
			// extremes. ξ agrees exactly when its intervals are also
			// (numerically) zero-width; anything wider disagrees.
			var m stats.Moments
			close := 0
			for _, w := range widths {
				m.Add(w)
				if w <= 1e-12 {
					close++
				}
			}
			if m.Mean() <= 1e-12 {
				st.Delta, st.Sigma = 0, 0
			} else {
				st.Delta, st.Sigma = math.Inf(1), math.Inf(1)
			}
			st.Pi = float64(close) / float64(cfg.P)
		default:
			var m stats.Moments
			close := 0
			for _, w := range widths {
				m.Add(w)
				if math.Abs(w-x)/x <= cfg.C3 {
					close++
				}
			}
			st.Delta = math.Abs(m.Mean()-x) / x
			st.Sigma = m.Stddev() / x
			st.Pi = float64(close) / float64(cfg.P)
		}
		res.PerSize = append(res.PerSize, st)
	}

	// Acceptance criteria.
	for i := 1; i < len(res.PerSize); i++ {
		cur, prev := res.PerSize[i], res.PerSize[i-1]
		if math.IsNaN(cur.Delta) || math.IsNaN(prev.Delta) {
			res.Reason = fmt.Sprintf("degenerate truth interval at size %d", cur.Size)
			return res, nil
		}
		if !(cur.Delta < prev.Delta || cur.Delta < cfg.C1) {
			res.Reason = fmt.Sprintf(
				"average deviation not improving at size %d (Δ=%.3f, prev %.3f, c1=%.2f)",
				cur.Size, cur.Delta, prev.Delta, cfg.C1)
			return res, nil
		}
		if !(cur.Sigma < prev.Sigma || cur.Sigma < cfg.C2) {
			res.Reason = fmt.Sprintf(
				"spread not improving at size %d (σ=%.3f, prev %.3f, c2=%.2f)",
				cur.Size, cur.Sigma, prev.Sigma, cfg.C2)
			return res, nil
		}
	}
	last := res.PerSize[len(res.PerSize)-1]
	if !(last.Pi >= cfg.Rho) {
		res.Reason = fmt.Sprintf(
			"final proportion acceptable π=%.3f below ρ=%.2f at size %d",
			last.Pi, cfg.Rho, last.Size)
		return res, nil
	}
	res.OK = true
	return res, nil
}
