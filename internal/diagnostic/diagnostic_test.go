package diagnostic

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/rng"
	"repro/internal/sample"
)

func gaussianSample(seed uint64, n int, mu, sigma float64) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mu + sigma*src.NormFloat64()
	}
	return xs
}

func paretoSample(seed uint64, n int, alpha float64) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Pareto(1, alpha)
	}
	return xs
}

func smallConfig(n int) Config {
	// The paper's p=100; subsample ladder scaled to the test sample size.
	return DefaultConfig(n)
}

func TestDefaultConfigFeasible(t *testing.T) {
	for _, n := range []int{10000, 100000, 1000000} {
		cfg := DefaultConfig(n)
		if err := cfg.Validate(n); err != nil {
			t.Errorf("DefaultConfig(%d) infeasible: %v", n, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := DefaultConfig(100000)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few sizes", func(c *Config) { c.SubsampleSizes = []int{10} }},
		{"non-increasing", func(c *Config) { c.SubsampleSizes = []int{100, 100, 200} }},
		{"p too small", func(c *Config) { c.P = 1 }},
		{"overdrawn", func(c *Config) { c.SubsampleSizes = []int{100, 200, 5000} }},
		{"bad alpha", func(c *Config) { c.Alpha = 1.5 }},
		{"bad rho", func(c *Config) { c.Rho = -0.1 }},
	}
	for _, c := range cases {
		cfg := good
		cfg.SubsampleSizes = append([]int(nil), good.SubsampleSizes...)
		c.mutate(&cfg)
		if err := cfg.Validate(100000); err == nil {
			t.Errorf("%s: Validate accepted a bad config", c.name)
		}
	}
}

func TestDiagnosticAcceptsClosedFormOnGaussianAvg(t *testing.T) {
	s := gaussianSample(1, 40000, 100, 15)
	cfg := smallConfig(len(s))
	res, err := Run(context.Background(), rng.New(2), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Errorf("diagnostic rejected closed-form AVG on Gaussian data: %s", res.Reason)
	}
	if len(res.PerSize) != 3 {
		t.Fatalf("per-size stats = %d", len(res.PerSize))
	}
	if res.SubsampleQueries == 0 {
		t.Error("subsample query count not recorded")
	}
}

func TestDiagnosticAcceptsBootstrapOnGaussianAvg(t *testing.T) {
	s := gaussianSample(3, 40000, 100, 15)
	cfg := smallConfig(len(s))
	res, err := Run(context.Background(), rng.New(4), s, estimator.Query{Kind: estimator.Avg},
		estimator.Bootstrap{K: 50}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Errorf("diagnostic rejected bootstrap AVG on Gaussian data: %s", res.Reason)
	}
}

func TestDiagnosticRejectsBootstrapOnHeavyTailMax(t *testing.T) {
	// MAX over Pareto(1.1): the canonical failure case — estimates at
	// small subsample sizes neither converge nor concentrate.
	s := paretoSample(5, 40000, 1.1)
	cfg := smallConfig(len(s))
	res, err := Run(context.Background(), rng.New(6), s, estimator.Query{Kind: estimator.Max},
		estimator.Bootstrap{K: 50}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("diagnostic accepted bootstrap MAX on heavy-tailed data")
	}
	if res.Reason == "" {
		t.Error("rejection must carry a reason")
	}
}

func TestDiagnosticRejectsNotApplicableEstimator(t *testing.T) {
	s := gaussianSample(7, 40000, 0, 1)
	cfg := smallConfig(len(s))
	res, err := Run(context.Background(), rng.New(8), s, estimator.Query{Kind: estimator.Max},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Error("diagnostic accepted a not-applicable estimator")
	}
	if !strings.Contains(res.Reason, "not applicable") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestDiagnosticDeterministicUnderSeed(t *testing.T) {
	s := gaussianSample(9, 20000, 5, 2)
	cfg := smallConfig(len(s))
	a, err := Run(context.Background(), rng.New(10), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), rng.New(10), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OK != b.OK || len(a.PerSize) != len(b.PerSize) {
		t.Fatal("diagnostic not deterministic under a fixed seed")
	}
	for i := range a.PerSize {
		if a.PerSize[i] != b.PerSize[i] {
			t.Fatal("per-size statistics differ across identical runs")
		}
	}
}

func TestDiagnosticWorkerCountInvariance(t *testing.T) {
	// The verdict and every per-size statistic must be byte-identical at
	// any worker count: each (size, subsample) pair owns an RNG stream, so
	// the bootstrap draws inside ξ never depend on goroutine scheduling.
	s := gaussianSample(40, 40000, 100, 15)
	q := estimator.Query{Kind: estimator.Avg}
	run := func(workers int) Result {
		cfg := smallConfig(len(s))
		cfg.Workers = workers
		res, err := Run(context.Background(), rng.New(41), s, q, estimator.Bootstrap{K: 50}, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	if !base.OK {
		t.Fatalf("serial diagnostic rejected Gaussian AVG: %s", base.Reason)
	}
	for _, w := range []int{4, 8} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: result differs from serial run\nserial: %+v\ngot:    %+v",
				w, base, got)
		}
	}
}

func TestDiagnosticPerSizeStatsShrinkOnNiceData(t *testing.T) {
	s := gaussianSample(11, 80000, 50, 5)
	cfg := smallConfig(len(s))
	res, err := Run(context.Background(), rng.New(12), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.PerSize[len(res.PerSize)-1]
	if math.IsNaN(last.Delta) || last.Delta > 0.25 {
		t.Errorf("final Δ = %v, want small on Gaussian AVG", last.Delta)
	}
	if last.Pi < 0.9 {
		t.Errorf("final π = %v, want >= 0.9", last.Pi)
	}
	// True half-widths must shrink as subsample size grows (~1/√b).
	for i := 1; i < len(res.PerSize); i++ {
		if res.PerSize[i].TrueHalfWidth >= res.PerSize[i-1].TrueHalfWidth {
			t.Errorf("true half-width not shrinking: %v", res.PerSize)
		}
	}
}

func TestDiagnosticValidatesConfig(t *testing.T) {
	s := gaussianSample(13, 100, 0, 1)
	cfg := DefaultConfig(1000000) // far too big for 100 rows
	if _, err := Run(context.Background(), rng.New(14), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg); err == nil {
		t.Error("oversized config not rejected")
	}
}

func TestDiagnosticNoShuffleUsesGivenOrder(t *testing.T) {
	// A pathologically sorted sample violates the random-order assumption;
	// with Shuffle=false the subsamples are biased and the diagnostic
	// should notice (reject), while Shuffle=true repairs it.
	src := rng.New(15)
	s := make([]float64, 40000)
	for i := range s {
		s[i] = float64(i) // strictly increasing: disjoint chunks differ wildly
	}
	_ = src
	cfg := smallConfig(len(s))
	cfg.Shuffle = false
	resSorted, err := Run(context.Background(), rng.New(16), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resSorted.OK {
		t.Error("diagnostic accepted estimation on adversarially ordered subsamples")
	}
	cfg.Shuffle = true
	resShuffled, err := Run(context.Background(), rng.New(18), s, estimator.Query{Kind: estimator.Avg},
		estimator.ClosedForm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resShuffled.OK {
		t.Errorf("shuffling should repair ordering bias: %s", resShuffled.Reason)
	}
}

func TestAssessMatrix(t *testing.T) {
	cases := []struct {
		diag, truth bool
		want        Outcome
	}{
		{true, true, TrueAccept},
		{false, false, TrueReject},
		{true, false, FalsePositive},
		{false, true, FalseNegative},
	}
	for _, c := range cases {
		if got := Assess(c.diag, c.truth); got != c.want {
			t.Errorf("Assess(%v, %v) = %v, want %v", c.diag, c.truth, got, c.want)
		}
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	tl.Add(TrueAccept)
	tl.Add(TrueAccept)
	tl.Add(TrueReject)
	tl.Add(FalsePositive)
	if tl.Total() != 4 {
		t.Errorf("Total = %d", tl.Total())
	}
	if got := tl.Frac(TrueAccept); got != 0.5 {
		t.Errorf("Frac(TrueAccept) = %v", got)
	}
	if got := tl.AccurateFrac(); got != 0.75 {
		t.Errorf("AccurateFrac = %v", got)
	}
	var empty Tally
	if empty.Frac(TrueAccept) != 0 {
		t.Error("empty tally should report 0")
	}
}

func TestOutcomeString(t *testing.T) {
	if TrueAccept.String() != "accurate-approximation" ||
		FalsePositive.String() != "false-positive" ||
		FalseNegative.String() != "false-negative" ||
		TrueReject.String() != "correct-rejection" {
		t.Error("outcome names wrong")
	}
}

// End-to-end accuracy smoke test in the spirit of Fig. 4: over a small
// batch of easy and hard queries, the diagnostic should be right most of
// the time.
func TestDiagnosticAccuracySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy smoke test is slow")
	}
	type workloadCase struct {
		data []float64
		q    estimator.Query
		est  estimator.Estimator
	}
	cases := []workloadCase{
		{gaussianSample(20, 40000, 100, 10), estimator.Query{Kind: estimator.Avg}, estimator.ClosedForm{}},
		{gaussianSample(21, 40000, 100, 10), estimator.Query{Kind: estimator.Sum, PopN: 400000}, estimator.ClosedForm{}},
		{gaussianSample(22, 40000, 100, 10), estimator.Query{Kind: estimator.Avg}, estimator.Bootstrap{K: 40}},
		{paretoSample(23, 40000, 1.1), estimator.Query{Kind: estimator.Max}, estimator.Bootstrap{K: 40}},
		{paretoSample(24, 40000, 1.05), estimator.Query{Kind: estimator.Max}, estimator.Bootstrap{K: 40}},
	}
	var tally Tally
	src := rng.New(25)
	for i, c := range cases {
		cfg := smallConfig(len(c.data))
		res, err := Run(context.Background(), src, c.data, c.q, c.est, cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Ground truth via the §3 protocol on a fresh "population" — here
		// the sample itself serves as the finite population.
		evalCfg := estimator.EvalConfig{SampleSize: 2000, Trials: 30, TruthP: 40,
			Alpha: 0.95, DeltaTol: 0.2, FailFrac: 0.05}
		works := estimator.EstimationWorks(src, c.data, c.q, c.est, evalCfg)
		tally.Add(Assess(res.OK, works))
	}
	if tally.AccurateFrac() < 0.6 {
		t.Errorf("diagnostic accuracy = %v over %d cases; want >= 0.6",
			tally.AccurateFrac(), tally.Total())
	}
}

func BenchmarkDiagnosticClosedForm(b *testing.B) {
	s := gaussianSample(30, 100000, 10, 3)
	cfg := DefaultConfig(len(s))
	q := estimator.Query{Kind: estimator.Avg}
	src := rng.New(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), src, s, q, estimator.ClosedForm{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiagnosticBootstrap(b *testing.B) {
	s := gaussianSample(32, 100000, 10, 3)
	cfg := DefaultConfig(len(s))
	q := estimator.Query{Kind: estimator.Avg}
	src := rng.New(33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), src, s, q, estimator.Bootstrap{K: 100}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = sample.Shuffled // documents the dependency exercised above
