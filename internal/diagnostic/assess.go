package diagnostic

// Outcome classifies one diagnostic decision against the expensive ground
// truth (§4.2's accuracy evaluation, Fig. 4).
type Outcome int

// Diagnostic assessment outcomes.
const (
	// TrueAccept: diagnostic said OK and estimation really works —
	// "accurate approximation" in Fig. 4.
	TrueAccept Outcome = iota
	// TrueReject: diagnostic said no and estimation really fails.
	TrueReject
	// FalsePositive: diagnostic said OK but estimation fails — the
	// dangerous direction (users would see bad error bars).
	FalsePositive
	// FalseNegative: diagnostic said no but estimation works — wasteful
	// (the system falls back needlessly).
	FalseNegative
)

func (o Outcome) String() string {
	switch o {
	case TrueAccept:
		return "accurate-approximation"
	case TrueReject:
		return "correct-rejection"
	case FalsePositive:
		return "false-positive"
	case FalseNegative:
		return "false-negative"
	default:
		return "unknown"
	}
}

// Assess combines the diagnostic's decision with the ground-truth answer
// to whether estimation actually works.
func Assess(diagnosticOK, estimationWorks bool) Outcome {
	switch {
	case diagnosticOK && estimationWorks:
		return TrueAccept
	case !diagnosticOK && !estimationWorks:
		return TrueReject
	case diagnosticOK:
		return FalsePositive
	default:
		return FalseNegative
	}
}

// Tally accumulates outcomes over a query workload and reports the
// fractions Fig. 4 plots.
type Tally struct {
	counts [4]int
	total  int
}

// Add records one outcome.
func (t *Tally) Add(o Outcome) {
	t.counts[o]++
	t.total++
}

// Total returns the number of recorded outcomes.
func (t *Tally) Total() int { return t.total }

// Frac returns the fraction of outcomes of the given kind.
func (t *Tally) Frac(o Outcome) float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.counts[o]) / float64(t.total)
}

// AccurateFrac is the Fig. 4 headline: the fraction of queries on which the
// diagnostic made the right call (accepting working estimation or rejecting
// broken estimation).
func (t *Tally) AccurateFrac() float64 {
	return t.Frac(TrueAccept) + t.Frac(TrueReject)
}
