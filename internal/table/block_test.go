package table

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strconv"
	"testing"
)

// blockTestTable builds a mixed-type table with compressible structure:
// smooth floats, integral floats, small-range ints, and a tiny string set.
func blockTestTable(n int) *Table {
	rng := rand.New(rand.NewSource(7))
	f := make(Float64Col, n)
	bytesF := make(Float64Col, n)
	ids := make(Int64Col, n)
	city := make(StringCol, n)
	cities := []string{"SF", "NYC", "LDN", "TYO"}
	for i := 0; i < n; i++ {
		f[i] = rng.NormFloat64()*10 + 100
		bytesF[i] = float64(rng.Intn(1 << 20))
		ids[i] = int64(rng.Intn(500))
		city[i] = cities[rng.Intn(len(cities))]
	}
	return MustNew(Schema{
		{Name: "lat", Type: Float64},
		{Name: "bytes", Type: Float64},
		{Name: "id", Type: Int64},
		{Name: "city", Type: String},
	}, f, bytesF, ids, city)
}

func assertTablesEqual(t *testing.T, raw, got *Table) {
	t.Helper()
	if got.NumRows() != raw.NumRows() || got.NumCols() != raw.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d",
			got.NumRows(), got.NumCols(), raw.NumRows(), raw.NumCols())
	}
	n := raw.NumRows()
	for c := 0; c < raw.NumCols(); c++ {
		switch rc := raw.Column(c).(type) {
		case Float64Col:
			dst := make([]float64, n)
			got.Column(c).(F64Reader).ReadF64(dst, 0)
			for i := range rc {
				if math.Float64bits(dst[i]) != math.Float64bits(rc[i]) {
					t.Fatalf("col %d row %d = %v, want %v", c, i, dst[i], rc[i])
				}
			}
		case Int64Col:
			dst := make([]int64, n)
			got.Column(c).(I64Reader).ReadI64(dst, 0)
			for i := range rc {
				if dst[i] != rc[i] {
					t.Fatalf("col %d row %d = %d, want %d", c, i, dst[i], rc[i])
				}
			}
		case StringCol:
			dst := make([]string, n)
			got.Column(c).(StrReader).ReadStr(dst, 0)
			for i := range rc {
				if dst[i] != rc[i] {
					t.Fatalf("col %d row %d = %q, want %q", c, i, dst[i], rc[i])
				}
			}
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	raw := blockTestTable(3*BlockRows + 137)
	ct := Compress(raw)
	assertTablesEqual(t, raw, ct)

	if got, want := ct.SizeBytes(), raw.SizeBytes(); got != want {
		t.Errorf("logical SizeBytes changed: %d, want %d", got, want)
	}
	if ct.PhysicalSizeBytes() >= raw.PhysicalSizeBytes() {
		t.Errorf("compression did not shrink: %d >= %d",
			ct.PhysicalSizeBytes(), raw.PhysicalSizeBytes())
	}
	if !ct.Lazy() || raw.Lazy() {
		t.Error("Lazy() wrong for compressed/raw tables")
	}
}

func TestCompressedZonesMatchRaw(t *testing.T) {
	raw := blockTestTable(2*BlockRows + 55)
	raw.BuildZones()
	ct := Compress(raw)
	if ct.Zones() == nil {
		t.Fatal("Compress did not attach zones")
	}
	for ci := 0; ci < raw.NumCols(); ci++ {
		rz, rok := raw.Zones().Column(ci)
		cz, cok := ct.Zones().Column(ci)
		if rok != cok {
			t.Fatalf("col %d envelope presence %v vs %v", ci, rok, cok)
		}
		for b := range rz.Mins {
			if cz.Mins[b] != rz.Mins[b] || cz.Maxs[b] != rz.Maxs[b] {
				t.Fatalf("col %d block %d envelope [%v,%v], want [%v,%v]",
					ci, b, cz.Mins[b], cz.Maxs[b], rz.Mins[b], rz.Maxs[b])
			}
		}
	}
}

func TestBlockGatherMatchesRawAndStreams(t *testing.T) {
	raw := blockTestTable(4 * BlockRows)
	ct := Compress(raw)
	rng := rand.New(rand.NewSource(9))
	idx := make([]int, 2000)
	for i := range idx {
		idx[i] = rng.Intn(raw.NumRows())
	}
	before := DecodedBlocks()
	got := ct.Gather(idx)
	decodes := DecodedBlocks() - before
	// Each column decodes each *touched* block at most once: 4 columns x 4
	// blocks is the ceiling no matter how shuffled idx is.
	if maxDecodes := int64(4 * 4); decodes > maxDecodes {
		t.Errorf("gather decoded %d blocks, want <= %d (one per touched block)",
			decodes, maxDecodes)
	}
	assertTablesEqual(t, raw.Gather(idx), got)
}

func TestBlockSliceViews(t *testing.T) {
	raw := blockTestTable(3*BlockRows + 10)
	ct := Compress(raw)
	for _, r := range [][2]int{{0, 10}, {5, BlockRows + 5}, {BlockRows, 3 * BlockRows}, {100, 100}} {
		rv, cv := raw.Slice(r[0], r[1]), ct.Slice(r[0], r[1])
		assertTablesEqual(t, rv, cv)
	}
	// Slice of slice.
	assertTablesEqual(t,
		raw.Slice(10, 2*BlockRows).Slice(50, 900),
		ct.Slice(10, 2*BlockRows).Slice(50, 900))
}

func TestBlockBuilderMatchesCompress(t *testing.T) {
	raw := blockTestTable(2*BlockRows + 321)
	bb := NewBlockBuilder(raw.Schema())
	lat := raw.Column(0).(Float64Col)
	byt := raw.Column(1).(Float64Col)
	id := raw.Column(2).(Int64Col)
	city := raw.Column(3).(StringCol)
	for i := 0; i < raw.NumRows(); i++ {
		bb.AppendRow(lat[i], byt[i], id[i], city[i])
	}
	got := bb.Build()
	assertTablesEqual(t, raw, got)
	if got.Zones() == nil {
		t.Error("BlockBuilder did not attach zones")
	}
}

func TestStrDictOverflowFallsBackRaw(t *testing.T) {
	n := strDictMax + BlockRows + 7
	vals := make(StringCol, n)
	for i := range vals {
		// All distinct: must overflow the dictionary.
		vals[i] = "s" + strconv.Itoa(i)
	}
	col := compressStr(vals)
	if col.dict != nil {
		t.Fatal("dictionary survived past strDictMax distinct values")
	}
	got := make([]string, n)
	col.ReadStr(got, 0)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], vals[i])
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	raw := blockTestTable(3*BlockRows + 137)
	raw.BuildZones()
	path := filepath.Join(t.TempDir(), "t.aqps")
	if err := WriteStore(path, raw); err != nil {
		t.Fatal(err)
	}
	got, closer, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	assertTablesEqual(t, raw, got)
	if got.Zones() == nil {
		t.Fatal("OpenStore did not attach zones from metadata")
	}
	// Zones must match without any decode: compare against raw's.
	for ci := 0; ci < raw.NumCols(); ci++ {
		rz, rok := raw.Zones().Column(ci)
		gz, gok := got.Zones().Column(ci)
		if rok != gok {
			t.Fatalf("col %d envelope presence mismatch", ci)
		}
		for b := range rz.Mins {
			if gz.Mins[b] != rz.Mins[b] || gz.Maxs[b] != rz.Maxs[b] {
				t.Fatalf("col %d block %d stored envelope differs", ci, b)
			}
		}
	}
	if got.SizeBytes() != raw.SizeBytes() {
		t.Errorf("store logical size %d, want %d", got.SizeBytes(), raw.SizeBytes())
	}
}

func TestStoreSpecialFloats(t *testing.T) {
	// NaN/±Inf envelopes must survive the JSON metadata round trip.
	f := Float64Col{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1.5}
	raw := MustNew(Schema{{Name: "x", Type: Float64}}, f)
	path := filepath.Join(t.TempDir(), "s.aqps")
	if err := WriteStore(path, raw); err != nil {
		t.Fatal(err)
	}
	got, closer, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	assertTablesEqual(t, raw, got)
}

func TestCursors(t *testing.T) {
	raw := blockTestTable(BlockRows + 77)
	ct := Compress(raw)
	for _, tbl := range []*Table{raw, ct} {
		fc, err := NewF64Cursor(tbl.ColumnByName("lat"))
		if err != nil {
			t.Fatal(err)
		}
		ic, err := NewI64Cursor(tbl.ColumnByName("id"))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewStrCursor(tbl.ColumnByName("city"))
		if err != nil {
			t.Fatal(err)
		}
		lat := raw.Column(0).(Float64Col)
		id := raw.Column(2).(Int64Col)
		city := raw.Column(3).(StringCol)
		// Access pattern mixes forward, backward, and cross-block jumps.
		order := []int{0, BlockRows + 5, 3, BlockRows - 1, BlockRows, 7, BlockRows + 76}
		for _, i := range order {
			if fc.At(i) != lat[i] {
				t.Fatalf("F64Cursor.At(%d) = %v, want %v", i, fc.At(i), lat[i])
			}
			if ic.At(i) != id[i] {
				t.Fatalf("I64Cursor.At(%d) = %v, want %v", i, ic.At(i), id[i])
			}
			if sc.At(i) != city[i] {
				t.Fatalf("StrCursor.At(%d) = %q, want %q", i, sc.At(i), city[i])
			}
		}
		// Int64 widening cursor.
		wc, err := NewF64Cursor(tbl.ColumnByName("id"))
		if err != nil {
			t.Fatal(err)
		}
		if wc.At(5) != float64(id[5]) {
			t.Fatal("widening F64Cursor over int64 column wrong")
		}
	}
}

func TestReadCSVBackedMatchesRaw(t *testing.T) {
	raw := blockTestTable(BlockRows + 400)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, raw); err != nil {
		t.Fatal(err)
	}
	types := []Type{Float64, Float64, Int64, String}
	rawIn, err := ReadCSV(bytes.NewReader(buf.Bytes()), types)
	if err != nil {
		t.Fatal(err)
	}
	backed, err := ReadCSVBacked(bytes.NewReader(buf.Bytes()), types, BackingCompressed)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, rawIn, backed)
	if !backed.Lazy() {
		t.Error("ReadCSVBacked(compressed) returned a raw table")
	}
	if backed.Zones() == nil {
		t.Error("ReadCSVBacked(compressed) did not attach zones")
	}
	// WriteCSV over a compressed table must emit identical bytes.
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, backed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteCSV over compressed table differs from raw")
	}
}

func TestParseBacking(t *testing.T) {
	for s, want := range map[string]Backing{
		"": BackingRaw, "raw": BackingRaw,
		"compressed": BackingCompressed, "mmap": BackingMmap,
	} {
		got, err := ParseBacking(s)
		if err != nil || got != want {
			t.Errorf("ParseBacking(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseBacking("bogus"); err == nil {
		t.Error("ParseBacking accepted bogus backing")
	}
}
