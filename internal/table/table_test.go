package table

import (
	"strings"
	"testing"
	"testing/quick"
)

func demoTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(
		Schema{{"time", Float64}, {"user", Int64}, {"city", String}},
		Float64Col{1.5, 2.5, 3.5, 4.5, 5.5},
		Int64Col{10, 20, 30, 40, 50},
		StringCol{"NYC", "SF", "NYC", "LA", "SF"},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	_, err := New(Schema{{"a", Float64}}, Float64Col{1}, Int64Col{2})
	if err == nil {
		t.Error("arity mismatch not rejected")
	}
	_, err = New(Schema{{"a", Float64}}, Int64Col{1})
	if err == nil {
		t.Error("type mismatch not rejected")
	}
	_, err = New(Schema{{"a", Float64}, {"b", Float64}},
		Float64Col{1, 2}, Float64Col{1})
	if err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestSchemaIndexCaseInsensitive(t *testing.T) {
	tbl := demoTable(t)
	if i := tbl.Schema().Index("CITY"); i != 2 {
		t.Errorf("Index(CITY) = %d, want 2", i)
	}
	if i := tbl.Schema().Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d, want -1", i)
	}
}

func TestSchemaString(t *testing.T) {
	got := Schema{{"a", Float64}, {"b", String}}.String()
	if got != "a FLOAT64, b STRING" {
		t.Errorf("Schema.String() = %q", got)
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Error("unknown type String() should include the code")
	}
}

func TestAccessors(t *testing.T) {
	tbl := demoTable(t)
	if tbl.NumRows() != 5 || tbl.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if c := tbl.ColumnByName("user"); c == nil || c.Type() != Int64 {
		t.Error("ColumnByName(user) wrong")
	}
	if c := tbl.ColumnByName("nope"); c != nil {
		t.Error("ColumnByName(nope) should be nil")
	}
	if tbl.Column(0).Len() != 5 {
		t.Error("Column(0) length wrong")
	}
}

func TestFloat64ColumnByName(t *testing.T) {
	tbl := demoTable(t)
	f, err := tbl.Float64ColumnByName("time")
	if err != nil || f[2] != 3.5 {
		t.Errorf("float column: %v %v", f, err)
	}
	g, err := tbl.Float64ColumnByName("user")
	if err != nil || g[4] != 50 {
		t.Errorf("int coercion: %v %v", g, err)
	}
	if _, err := tbl.Float64ColumnByName("city"); err == nil {
		t.Error("string column should not coerce")
	}
	if _, err := tbl.Float64ColumnByName("zzz"); err == nil {
		t.Error("missing column should error")
	}
}

func TestSliceView(t *testing.T) {
	tbl := demoTable(t)
	v := tbl.Slice(1, 4)
	if v.NumRows() != 3 {
		t.Fatalf("slice rows = %d", v.NumRows())
	}
	if got := v.Column(2).(StringCol)[0]; got != "SF" {
		t.Errorf("slice content = %q", got)
	}
	// Views share storage: no copying of the underlying data.
	base := tbl.Column(0).(Float64Col)
	view := v.Column(0).(Float64Col)
	if &base[1] != &view[0] {
		t.Error("Slice copied column data; want shared storage")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	tbl := demoTable(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice did not panic")
		}
	}()
	tbl.Slice(2, 99)
}

func TestPartition(t *testing.T) {
	tbl := demoTable(t)
	parts := tbl.Partition(2)
	if len(parts) != 2 {
		t.Fatalf("partitions = %d", len(parts))
	}
	if parts[0].NumRows()+parts[1].NumRows() != 5 {
		t.Error("partition sizes do not sum to total")
	}
	// Remainder goes to the leading partitions.
	if parts[0].NumRows() != 3 || parts[1].NumRows() != 2 {
		t.Errorf("partition sizes = %d, %d", parts[0].NumRows(), parts[1].NumRows())
	}
	// More partitions than rows: trailing ones are empty but valid.
	many := tbl.Partition(8)
	total := 0
	for _, p := range many {
		total += p.NumRows()
	}
	if total != 5 {
		t.Error("over-partitioning lost rows")
	}
}

func TestPartitionCoversAllRowsInOrder(t *testing.T) {
	f := func(rowsRaw, kRaw uint8) bool {
		rows := int(rowsRaw)
		k := int(kRaw)%16 + 1
		col := make(Float64Col, rows)
		for i := range col {
			col[i] = float64(i)
		}
		tbl := MustNew(Schema{{"x", Float64}}, col)
		next := 0.0
		for _, p := range tbl.Partition(k) {
			for _, v := range p.Column(0).(Float64Col) {
				if v != next {
					return false
				}
				next++
			}
		}
		return next == float64(rows)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGather(t *testing.T) {
	tbl := demoTable(t)
	g := tbl.Gather([]int{4, 0, 0})
	if g.NumRows() != 3 {
		t.Fatalf("gather rows = %d", g.NumRows())
	}
	times := g.Column(0).(Float64Col)
	if times[0] != 5.5 || times[1] != 1.5 || times[2] != 1.5 {
		t.Errorf("gather values = %v", times)
	}
	cities := g.Column(2).(StringCol)
	if cities[0] != "SF" {
		t.Errorf("gather strings = %v", cities)
	}
	ints := g.Column(1).(Int64Col)
	if ints[0] != 50 {
		t.Errorf("gather ints = %v", ints)
	}
}

func TestWithColumn(t *testing.T) {
	tbl := demoTable(t)
	w, err := tbl.WithColumn(Field{"w", Float64}, Float64Col{1, 1, 1, 1, 1})
	if err != nil {
		t.Fatalf("WithColumn: %v", err)
	}
	if w.NumCols() != 4 || w.Schema().Index("w") != 3 {
		t.Error("WithColumn shape wrong")
	}
	// Original table is untouched.
	if tbl.NumCols() != 3 {
		t.Error("WithColumn mutated the receiver")
	}
	if _, err := tbl.WithColumn(Field{"bad", Float64}, Float64Col{1}); err == nil {
		t.Error("row-count mismatch not rejected")
	}
	if _, err := tbl.WithColumn(Field{"bad", Int64}, Float64Col{1, 2, 3, 4, 5}); err == nil {
		t.Error("type mismatch not rejected")
	}
}

func TestSizeBytes(t *testing.T) {
	tbl := demoTable(t)
	if tbl.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	// Float64 and Int64 columns contribute 8 bytes per row.
	numeric := MustNew(Schema{{"a", Float64}, {"b", Int64}},
		Float64Col{1, 2}, Int64Col{3, 4})
	if numeric.SizeBytes() != 32 {
		t.Errorf("numeric SizeBytes = %d, want 32", numeric.SizeBytes())
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(Schema{{"x", Float64}, {"n", Int64}, {"s", String}})
	b.AppendRow(1.0, int64(2), "three")
	b.AppendRow(4.0, int64(5), "six")
	if b.NumRows() != 2 {
		t.Fatalf("builder rows = %d", b.NumRows())
	}
	tbl := b.Build()
	if tbl.NumRows() != 2 {
		t.Fatalf("built rows = %d", tbl.NumRows())
	}
	if tbl.Column(0).(Float64Col)[1] != 4.0 {
		t.Error("builder float payload wrong")
	}
	if tbl.Column(1).(Int64Col)[0] != 2 {
		t.Error("builder int payload wrong")
	}
	if tbl.Column(2).(StringCol)[1] != "six" {
		t.Error("builder string payload wrong")
	}
}

func TestBuilderPanicsOnArity(t *testing.T) {
	b := NewBuilder(Schema{{"x", Float64}})
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity AppendRow did not panic")
		}
	}()
	b.AppendRow(1.0, 2.0)
}

func TestEmptyTable(t *testing.T) {
	tbl := MustNew(Schema{{"x", Float64}}, Float64Col{})
	if tbl.NumRows() != 0 {
		t.Error("empty table rows != 0")
	}
	parts := tbl.Partition(3)
	for _, p := range parts {
		if p.NumRows() != 0 {
			t.Error("empty partition should be empty")
		}
	}
	if g := tbl.Gather(nil); g.NumRows() != 0 {
		t.Error("empty gather should be empty")
	}
}
