package table

import (
	"math"
	"testing"
)

func zoneTestTable(n int) *Table {
	f := make(Float64Col, n)
	i64 := make(Int64Col, n)
	s := make(StringCol, n)
	for i := 0; i < n; i++ {
		// Clustered: values grow with the row index, so each block's
		// envelope is tight and distinct from its neighbours'.
		f[i] = float64(i) + math.Sin(float64(i))
		i64[i] = int64(n - i)
		s[i] = "x"
	}
	return MustNew(Schema{
		{Name: "f", Type: Float64},
		{Name: "n", Type: Int64},
		{Name: "s", Type: String},
	}, f, i64, s)
}

func TestBuildZonesEnvelopes(t *testing.T) {
	// A size that does not divide evenly by ZoneBlockRows exercises the
	// short final block.
	n := 3*ZoneBlockRows + 137
	tbl := zoneTestTable(n)
	if tbl.Zones() != nil {
		t.Fatal("zones present before BuildZones")
	}
	tbl.BuildZones()
	z := tbl.Zones()
	if z == nil {
		t.Fatal("BuildZones left nil zones")
	}
	wantBlocks := (n + ZoneBlockRows - 1) / ZoneBlockRows
	if z.NumBlocks() != wantBlocks {
		t.Fatalf("NumBlocks = %d, want %d", z.NumBlocks(), wantBlocks)
	}

	f := tbl.ColumnByName("f").(Float64Col)
	i64 := tbl.ColumnByName("n").(Int64Col)
	for ci, col := range []int{tbl.Schema().Index("f"), tbl.Schema().Index("n")} {
		cz, ok := z.Column(col)
		if !ok {
			t.Fatalf("numeric column %d has no envelope", col)
		}
		if len(cz.Mins) != wantBlocks || len(cz.Maxs) != wantBlocks {
			t.Fatalf("envelope length %d/%d, want %d", len(cz.Mins), len(cz.Maxs), wantBlocks)
		}
		for b := 0; b < wantBlocks; b++ {
			lo := b * ZoneBlockRows
			hi := lo + ZoneBlockRows
			if hi > n {
				hi = n
			}
			mn, mx := math.Inf(1), math.Inf(-1)
			for i := lo; i < hi; i++ {
				var v float64
				if ci == 0 {
					v = f[i]
				} else {
					v = float64(i64[i])
				}
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if cz.Mins[b] != mn || cz.Maxs[b] != mx {
				t.Fatalf("col %d block %d envelope [%v, %v], want [%v, %v]",
					col, b, cz.Mins[b], cz.Maxs[b], mn, mx)
			}
		}
	}

	if _, ok := z.Column(tbl.Schema().Index("s")); ok {
		t.Error("string column has a zone-map envelope")
	}
}

func TestBuildZonesIdempotent(t *testing.T) {
	tbl := zoneTestTable(2 * ZoneBlockRows)
	tbl.BuildZones()
	z1 := tbl.Zones()
	tbl.BuildZones()
	if tbl.Zones() != z1 {
		t.Error("second BuildZones replaced the zone maps")
	}
}

func TestViewZoneInheritance(t *testing.T) {
	tbl := zoneTestTable(2*ZoneBlockRows + 10)
	tbl.BuildZones()

	// Unaligned views and gathers must not inherit: their row numbering no
	// longer matches block boundaries.
	if v := tbl.Slice(5, 100); v.Zones() != nil {
		t.Error("unaligned Slice view inherited zones")
	}
	if v := tbl.Gather([]int{3, 1, 2}); v.Zones() != nil {
		t.Error("Gather view inherited zones")
	}

	// Block-aligned slices inherit the covered envelopes.
	v := tbl.Slice(ZoneBlockRows, tbl.NumRows())
	z := v.Zones()
	if z == nil {
		t.Fatal("aligned Slice view did not inherit zones")
	}
	if got, want := z.NumBlocks(), 2; got != want {
		t.Fatalf("aligned slice has %d blocks, want %d", got, want)
	}
	base, _ := tbl.Zones().Column(0)
	cz, ok := z.Column(0)
	if !ok || cz.Mins[0] != base.Mins[1] || cz.Maxs[1] != base.Maxs[2] {
		t.Error("aligned slice envelopes are not the covered sub-range")
	}

	// PartitionAligned partitions all start on block boundaries.
	for i, p := range tbl.PartitionAligned(3) {
		if p.NumRows() > 0 && p.Zones() == nil {
			t.Errorf("aligned partition %d did not inherit zones", i)
		}
	}

	// WithColumn keeps row numbering, so it inherits and extends.
	wv, err := tbl.WithColumn(Field{Name: "f2", Type: Float64},
		Float64Col(make([]float64, tbl.NumRows())))
	if err != nil {
		t.Fatal(err)
	}
	wz := wv.Zones()
	if wz == nil {
		t.Fatal("WithColumn view did not inherit zones")
	}
	ncz, ok := wz.Column(wv.Schema().Index("f2"))
	if !ok {
		t.Fatal("WithColumn did not build an envelope for the new column")
	}
	if ncz.Mins[0] != 0 || ncz.Maxs[0] != 0 {
		t.Error("new column envelope wrong for all-zero column")
	}
}

func TestPartitionAlignedCoversAllRowsInOrder(t *testing.T) {
	for _, n := range []int{0, 1, ZoneBlockRows, 2*ZoneBlockRows + 10, 5 * ZoneBlockRows} {
		for k := 1; k <= 7; k++ {
			tbl := zoneTestTable(n)
			parts := tbl.PartitionAligned(k)
			if len(parts) != k {
				t.Fatalf("n=%d k=%d: got %d partitions", n, k, len(parts))
			}
			total := 0
			f := tbl.ColumnByName("f").(Float64Col)
			for _, p := range parts {
				if p.NumRows() > 0 && total%ZoneBlockRows != 0 {
					t.Fatalf("n=%d k=%d: partition starts at unaligned row %d", n, k, total)
				}
				pf := p.ColumnByName("f").(Float64Col)
				for i, v := range pf {
					if v != f[total+i] {
						t.Fatalf("n=%d k=%d: row %d out of order", n, k, total+i)
					}
				}
				total += p.NumRows()
			}
			if total != n {
				t.Fatalf("n=%d k=%d: partitions cover %d rows", n, k, total)
			}
		}
	}
}

func TestBuildZonesEmptyTable(t *testing.T) {
	tbl := MustNew(Schema{{Name: "x", Type: Float64}}, Float64Col{})
	tbl.BuildZones()
	if z := tbl.Zones(); z.NumBlocks() != 0 {
		t.Errorf("empty table has %d blocks", z.NumBlocks())
	}
}
