package table

import (
	"math"
	"testing"
)

func zoneTestTable(n int) *Table {
	f := make(Float64Col, n)
	i64 := make(Int64Col, n)
	s := make(StringCol, n)
	for i := 0; i < n; i++ {
		// Clustered: values grow with the row index, so each block's
		// envelope is tight and distinct from its neighbours'.
		f[i] = float64(i) + math.Sin(float64(i))
		i64[i] = int64(n - i)
		s[i] = "x"
	}
	return MustNew(Schema{
		{Name: "f", Type: Float64},
		{Name: "n", Type: Int64},
		{Name: "s", Type: String},
	}, f, i64, s)
}

func TestBuildZonesEnvelopes(t *testing.T) {
	// A size that does not divide evenly by ZoneBlockRows exercises the
	// short final block.
	n := 3*ZoneBlockRows + 137
	tbl := zoneTestTable(n)
	if tbl.Zones() != nil {
		t.Fatal("zones present before BuildZones")
	}
	tbl.BuildZones()
	z := tbl.Zones()
	if z == nil {
		t.Fatal("BuildZones left nil zones")
	}
	wantBlocks := (n + ZoneBlockRows - 1) / ZoneBlockRows
	if z.NumBlocks() != wantBlocks {
		t.Fatalf("NumBlocks = %d, want %d", z.NumBlocks(), wantBlocks)
	}

	f := tbl.ColumnByName("f").(Float64Col)
	i64 := tbl.ColumnByName("n").(Int64Col)
	for ci, col := range []int{tbl.Schema().Index("f"), tbl.Schema().Index("n")} {
		cz, ok := z.Column(col)
		if !ok {
			t.Fatalf("numeric column %d has no envelope", col)
		}
		if len(cz.Mins) != wantBlocks || len(cz.Maxs) != wantBlocks {
			t.Fatalf("envelope length %d/%d, want %d", len(cz.Mins), len(cz.Maxs), wantBlocks)
		}
		for b := 0; b < wantBlocks; b++ {
			lo := b * ZoneBlockRows
			hi := lo + ZoneBlockRows
			if hi > n {
				hi = n
			}
			mn, mx := math.Inf(1), math.Inf(-1)
			for i := lo; i < hi; i++ {
				var v float64
				if ci == 0 {
					v = f[i]
				} else {
					v = float64(i64[i])
				}
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if cz.Mins[b] != mn || cz.Maxs[b] != mx {
				t.Fatalf("col %d block %d envelope [%v, %v], want [%v, %v]",
					col, b, cz.Mins[b], cz.Maxs[b], mn, mx)
			}
		}
	}

	if _, ok := z.Column(tbl.Schema().Index("s")); ok {
		t.Error("string column has a zone-map envelope")
	}
}

func TestBuildZonesIdempotent(t *testing.T) {
	tbl := zoneTestTable(2 * ZoneBlockRows)
	tbl.BuildZones()
	z1 := tbl.Zones()
	tbl.BuildZones()
	if tbl.Zones() != z1 {
		t.Error("second BuildZones replaced the zone maps")
	}
}

func TestViewsDoNotInheritZones(t *testing.T) {
	tbl := zoneTestTable(2*ZoneBlockRows + 10)
	tbl.BuildZones()
	if v := tbl.Slice(5, 100); v.Zones() != nil {
		t.Error("Slice view inherited zones")
	}
	if v := tbl.Gather([]int{3, 1, 2}); v.Zones() != nil {
		t.Error("Gather view inherited zones")
	}
	for _, p := range tbl.Partition(3) {
		if p.Zones() != nil {
			t.Error("Partition view inherited zones")
		}
	}
	v, err := tbl.WithColumn(Field{Name: "f2", Type: Float64},
		Float64Col(make([]float64, tbl.NumRows())))
	if err != nil {
		t.Fatal(err)
	}
	if v.Zones() != nil {
		t.Error("WithColumn view inherited zones")
	}
}

func TestBuildZonesEmptyTable(t *testing.T) {
	tbl := MustNew(Schema{{Name: "x", Type: Float64}}, Float64Col{})
	tbl.BuildZones()
	if z := tbl.Zones(); z.NumBlocks() != 0 {
		t.Errorf("empty table has %d blocks", z.NumBlocks())
	}
}
