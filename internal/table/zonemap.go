package table

// Zone maps: per-block min/max summaries of numeric columns, built once per
// stored table and consulted by the executor's predicate-range analyzer to
// skip blocks that provably cannot satisfy a filter. The block size matches
// the bootstrap kernel's streaming unit (8 KiB of float64 values), so a
// skipped block is exactly one unit of scan work avoided.
//
// Zone maps are conservative by construction: a block is only skippable
// when its [min, max] envelope is disjoint from the predicate's feasible
// range for some column, so skipping never changes which rows survive the
// filter (pinned by TestZoneSkipPreservesSelection). Views inherit zone
// maps when their row numbering still lines up with the base table's
// blocks: block-aligned Slice/Partition views get the covered sub-range of
// envelopes, and WithColumn keeps the base envelopes (row numbering is
// unchanged) plus a freshly computed one for the new column. Gather views
// and unaligned slices do not inherit — which degrades them to "never
// skip", not to wrong answers.
//
// Block columns (block.go) capture per-block min/max during encoding, so
// BuildZones on a compressed or mmap-backed table adopts the stored
// envelopes instead of re-scanning.

// ZoneBlockRows is the number of rows summarized per zone-map block: 1024
// float64 values = 8 KiB, the same block the resampling kernel streams.
const ZoneBlockRows = 1024

// ColumnZones is one numeric column's per-block envelope. Blocks b covers
// rows [b*ZoneBlockRows, min((b+1)*ZoneBlockRows, rows)).
type ColumnZones struct {
	// Mins and Maxs hold the per-block extrema, len = ceil(rows/block).
	Mins, Maxs []float64
}

// Zones summarizes a table's numeric columns block-wise. Nil means "no zone
// maps built" and disables skipping.
type Zones struct {
	rows int
	// byCol maps column index -> envelope; string columns are absent.
	byCol map[int]ColumnZones
}

// NumBlocks returns the number of zone-map blocks covering the table.
func (z *Zones) NumBlocks() int {
	if z == nil {
		return 0
	}
	return (z.rows + ZoneBlockRows - 1) / ZoneBlockRows
}

// Column returns the envelope for column index i, if it is numeric.
func (z *Zones) Column(i int) (ColumnZones, bool) {
	if z == nil {
		return ColumnZones{}, false
	}
	cz, ok := z.byCol[i]
	return cz, ok
}

// slice returns the zones covering base rows [i, j), where i is a block
// multiple. The final inherited envelope may cover rows past j; that keeps
// it a superset of the view's last block, which is still conservative. Nil
// receiver or empty range yields nil.
func (z *Zones) slice(i, j int) *Zones {
	if z == nil || i >= j {
		return nil
	}
	lo := i / ZoneBlockRows
	hi := (j + ZoneBlockRows - 1) / ZoneBlockRows
	out := &Zones{rows: j - i, byCol: make(map[int]ColumnZones, len(z.byCol))}
	for ci, cz := range z.byCol {
		out.byCol[ci] = ColumnZones{Mins: cz.Mins[lo:hi], Maxs: cz.Maxs[lo:hi]}
	}
	return out
}

// withColumn extends the zones with an envelope for a newly appended
// column at index ci (numeric columns only). Nil receiver stays nil.
func (z *Zones) withColumn(ci int, c Column) *Zones {
	if z == nil {
		return nil
	}
	out := &Zones{rows: z.rows, byCol: make(map[int]ColumnZones, len(z.byCol)+1)}
	for k, v := range z.byCol {
		out.byCol[k] = v
	}
	if cz, ok := envelopeFor(c, z.NumBlocks()); ok {
		out.byCol[ci] = cz
	}
	return out
}

// BuildZones computes per-block min/max envelopes for every numeric column
// and attaches them to the table. It is idempotent and cheap relative to a
// single scan (one pass per numeric column); call it once at registration
// or sample-build time, before the table is shared across queries — the
// Table is immutable afterwards, so concurrent readers are safe.
func (t *Table) BuildZones() {
	if t.zones != nil || t.rows == 0 {
		return
	}
	z := &Zones{rows: t.rows, byCol: map[int]ColumnZones{}}
	nb := (t.rows + ZoneBlockRows - 1) / ZoneBlockRows
	for ci, col := range t.cols {
		if cz, ok := envelopeFor(col, nb); ok {
			z.byCol[ci] = cz
		}
	}
	t.zones = z
}

// zoneSource is implemented by block columns that captured per-block
// envelopes during encoding.
type zoneSource interface {
	zoneEnvelope() (ColumnZones, bool)
}

// envelopeFor computes (or adopts) the per-block envelope of a numeric
// column spanning nb blocks.
func envelopeFor(col Column, nb int) (ColumnZones, bool) {
	switch c := col.(type) {
	case Float64Col:
		return buildZonesF64(c, nb), true
	case Int64Col:
		return buildZonesI64(c, nb), true
	}
	if zs, ok := col.(zoneSource); ok {
		return zs.zoneEnvelope()
	}
	return ColumnZones{}, false
}

// Zones returns the table's zone maps, or nil when none were built (views
// and unregistered tables).
func (t *Table) Zones() *Zones { return t.zones }

// DropZones detaches the table's zone maps (the DisableZoneMaps ablation:
// Compress attaches envelopes as an encoding by-product, and the ablation
// must observe a table without them). Call before sharing the table across
// queries — Tables are treated as immutable once published.
func (t *Table) DropZones() { t.zones = nil }

func buildZonesF64(c Float64Col, nb int) ColumnZones {
	mins := make([]float64, nb)
	maxs := make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * ZoneBlockRows
		hi := lo + ZoneBlockRows
		if hi > len(c) {
			hi = len(c)
		}
		mn, mx := c[lo], c[lo]
		for _, v := range c[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[b], maxs[b] = mn, mx
	}
	return ColumnZones{Mins: mins, Maxs: maxs}
}

func buildZonesI64(c Int64Col, nb int) ColumnZones {
	mins := make([]float64, nb)
	maxs := make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * ZoneBlockRows
		hi := lo + ZoneBlockRows
		if hi > len(c) {
			hi = len(c)
		}
		mn, mx := c[lo], c[lo]
		for _, v := range c[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[b], maxs[b] = float64(mn), float64(mx)
	}
	return ColumnZones{Mins: mins, Maxs: maxs}
}
