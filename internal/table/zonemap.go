package table

// Zone maps: per-block min/max summaries of numeric columns, built once per
// stored table and consulted by the executor's predicate-range analyzer to
// skip blocks that provably cannot satisfy a filter. The block size matches
// the bootstrap kernel's streaming unit (8 KiB of float64 values), so a
// skipped block is exactly one unit of scan work avoided.
//
// Zone maps are conservative by construction: a block is only skippable
// when its [min, max] envelope is disjoint from the predicate's feasible
// range for some column, so skipping never changes which rows survive the
// filter (pinned by TestZoneSkipPreservesSelection). Views produced by
// Slice, Partition, Gather and WithColumn do not inherit zone maps — their
// row numbering no longer lines up with the base table's blocks — which
// degrades them to "never skip", not to wrong answers.

// ZoneBlockRows is the number of rows summarized per zone-map block: 1024
// float64 values = 8 KiB, the same block the resampling kernel streams.
const ZoneBlockRows = 1024

// ColumnZones is one numeric column's per-block envelope. Blocks b covers
// rows [b*ZoneBlockRows, min((b+1)*ZoneBlockRows, rows)).
type ColumnZones struct {
	// Mins and Maxs hold the per-block extrema, len = ceil(rows/block).
	Mins, Maxs []float64
}

// Zones summarizes a table's numeric columns block-wise. Nil means "no zone
// maps built" and disables skipping.
type Zones struct {
	rows int
	// byCol maps column index -> envelope; string columns are absent.
	byCol map[int]ColumnZones
}

// NumBlocks returns the number of zone-map blocks covering the table.
func (z *Zones) NumBlocks() int {
	if z == nil {
		return 0
	}
	return (z.rows + ZoneBlockRows - 1) / ZoneBlockRows
}

// Column returns the envelope for column index i, if it is numeric.
func (z *Zones) Column(i int) (ColumnZones, bool) {
	if z == nil {
		return ColumnZones{}, false
	}
	cz, ok := z.byCol[i]
	return cz, ok
}

// BuildZones computes per-block min/max envelopes for every numeric column
// and attaches them to the table. It is idempotent and cheap relative to a
// single scan (one pass per numeric column); call it once at registration
// or sample-build time, before the table is shared across queries — the
// Table is immutable afterwards, so concurrent readers are safe.
func (t *Table) BuildZones() {
	if t.zones != nil || t.rows == 0 {
		return
	}
	z := &Zones{rows: t.rows, byCol: map[int]ColumnZones{}}
	nb := (t.rows + ZoneBlockRows - 1) / ZoneBlockRows
	for ci, col := range t.cols {
		var cz ColumnZones
		switch c := col.(type) {
		case Float64Col:
			cz = buildZonesF64(c, nb)
		case Int64Col:
			cz = buildZonesI64(c, nb)
		default:
			continue
		}
		z.byCol[ci] = cz
	}
	t.zones = z
}

// Zones returns the table's zone maps, or nil when none were built (views
// and unregistered tables).
func (t *Table) Zones() *Zones { return t.zones }

func buildZonesF64(c Float64Col, nb int) ColumnZones {
	mins := make([]float64, nb)
	maxs := make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * ZoneBlockRows
		hi := lo + ZoneBlockRows
		if hi > len(c) {
			hi = len(c)
		}
		mn, mx := c[lo], c[lo]
		for _, v := range c[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[b], maxs[b] = mn, mx
	}
	return ColumnZones{Mins: mins, Maxs: maxs}
}

func buildZonesI64(c Int64Col, nb int) ColumnZones {
	mins := make([]float64, nb)
	maxs := make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * ZoneBlockRows
		hi := lo + ZoneBlockRows
		if hi > len(c) {
			hi = len(c)
		}
		mn, mx := c[lo], c[lo]
		for _, v := range c[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		mins[b], maxs[b] = float64(mn), float64(mx)
	}
	return ColumnZones{Mins: mins, Maxs: maxs}
}
