package table

// Block-oriented column backings. A block column stores BlockRows-row blocks
// encoded with the per-block codecs in codec.go, plus per-block metadata:
// payload offsets, codec ids, and min/max zone envelopes captured during
// encoding (so zone maps on compressed tables cost no extra pass). The same
// column types back both the in-memory compressed backing (data on the Go
// heap) and the mmap/disk backing (data is a window into a read-only file
// mapping; see store.go) — decode never cares which.
//
// Exec reaches block columns through the F64Reader/I64Reader/StrReader
// interfaces and decodes per block into pooled scratch only after zone-map
// admission; see internal/exec/expr.go. Raw columns implement the same
// interfaces trivially, so every consumer has one generic slow path and the
// raw fast paths it already had.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// Backing selects the physical representation used for stored tables.
type Backing int

const (
	// BackingRaw keeps columns as plain heap slices (the historical layout).
	BackingRaw Backing = iota
	// BackingCompressed re-encodes columns into per-block compressed form.
	BackingCompressed
	// BackingMmap persists the compressed form to a store file and serves
	// column data from a read-only memory mapping.
	BackingMmap
)

func (b Backing) String() string {
	switch b {
	case BackingRaw:
		return "raw"
	case BackingCompressed:
		return "compressed"
	case BackingMmap:
		return "mmap"
	default:
		return fmt.Sprintf("Backing(%d)", int(b))
	}
}

// ParseBacking converts a knob string ("raw", "compressed", "mmap") to a
// Backing.
func ParseBacking(s string) (Backing, error) {
	switch s {
	case "", "raw":
		return BackingRaw, nil
	case "compressed":
		return BackingCompressed, nil
	case "mmap":
		return BackingMmap, nil
	}
	return BackingRaw, fmt.Errorf("table: unknown backing %q", s)
}

// BlockRows is the row count per storage block. It deliberately equals
// ZoneBlockRows: one zone-map envelope governs exactly one decodable unit,
// so a skipped block avoids its decode entirely.
const BlockRows = ZoneBlockRows

func numBlocksFor(rows int) int { return (rows + BlockRows - 1) / BlockRows }

// decodedBlocksTotal counts block decodes process-wide; tests use it to
// assert streaming one-pass behavior (e.g. sample build decodes each block
// at most once per column).
var decodedBlocksTotal atomic.Int64

// DecodedBlocks returns the process-wide count of storage block decodes.
func DecodedBlocks() int64 { return decodedBlocksTotal.Load() }

// F64Reader is a float64 column readable in row ranges. Block columns
// implement it by decoding; raw columns by copying.
type F64Reader interface {
	Column
	// ReadF64 fills dst with the values of rows [off, off+len(dst)).
	ReadF64(dst []float64, off int)
}

// I64Reader is an int64 column readable in row ranges.
type I64Reader interface {
	Column
	// ReadI64 fills dst with the values of rows [off, off+len(dst)).
	ReadI64(dst []int64, off int)
}

// StrReader is a string column readable in row ranges.
type StrReader interface {
	Column
	// ReadStr fills dst with the values of rows [off, off+len(dst)).
	ReadStr(dst []string, off int)
}

// Lazy reports whether the column decodes on access (block-compressed or
// mmap-backed) rather than living as a raw slice.
func Lazy(c Column) bool { return c.lazy() }

// Raw column reader implementations: trivial copies, so the generic decode
// path works uniformly. Hot paths still type-switch to the raw slices first
// and never come through here.

// ReadF64 copies rows [off, off+len(dst)) into dst.
func (c Float64Col) ReadF64(dst []float64, off int) { copy(dst, c[off:]) }

// ReadI64 copies rows [off, off+len(dst)) into dst.
func (c Int64Col) ReadI64(dst []int64, off int) { copy(dst, c[off:]) }

// ReadF64 widens rows [off, off+len(dst)) into dst, mirroring the widening
// Float64ColumnByName has always performed for int64 columns.
func (c Int64Col) ReadF64(dst []float64, off int) {
	for i := range dst {
		dst[i] = float64(c[off+i])
	}
}

// ReadStr copies rows [off, off+len(dst)) into dst.
func (c StringCol) ReadStr(dst []string, off int) { copy(dst, c[off:]) }

func (c Float64Col) lazy() bool { return false }
func (c Int64Col) lazy() bool   { return false }
func (c StringCol) lazy() bool  { return false }

func (c Float64Col) physBytes() int64 { return c.sizeBytes() }
func (c Int64Col) physBytes() int64   { return c.sizeBytes() }
func (c StringCol) physBytes() int64  { return c.sizeBytes() }

// --- float64 block column. ---

// F64BlockCol is a float64 column stored as per-block encoded payloads.
// data may point into a heap buffer or an mmap'd store file.
type F64BlockCol struct {
	data   []byte
	offs   []uint32 // len nb+1; block b payload is data[offs[b]:offs[b+1]]
	codecs []byte   // len nb
	mins   []float64
	maxs   []float64
	rows   int
}

// Len returns the number of rows.
func (c *F64BlockCol) Len() int { return c.rows }

// Type returns Float64.
func (c *F64BlockCol) Type() Type { return Float64 }

func (c *F64BlockCol) lazy() bool { return true }

func (c *F64BlockCol) sizeBytes() int64 { return int64(c.rows) * 8 }

func (c *F64BlockCol) physBytes() int64 {
	return int64(len(c.data)) + int64(len(c.offs))*4 + int64(len(c.codecs)) +
		int64(len(c.mins)+len(c.maxs))*8
}

func (c *F64BlockCol) blockLen(b int) int {
	if n := c.rows - b*BlockRows; n < BlockRows {
		return n
	}
	return BlockRows
}

func (c *F64BlockCol) decodeBlock(b int, dst []float64, iscratch []int64) {
	decodeF64Block(c.codecs[b], c.data[c.offs[b]:c.offs[b+1]], dst, iscratch)
	decodedBlocksTotal.Add(1)
}

// ReadF64 fills dst with rows [off, off+len(dst)), decoding each touched
// block once. Block-aligned full-block reads decode straight into dst.
func (c *F64BlockCol) ReadF64(dst []float64, off int) {
	var tmp []float64
	iscratch := make([]int64, BlockRows)
	for len(dst) > 0 {
		b := off / BlockRows
		bStart := b * BlockRows
		bLen := c.blockLen(b)
		if off == bStart && len(dst) >= bLen {
			c.decodeBlock(b, dst[:bLen], iscratch)
			dst = dst[bLen:]
			off += bLen
			continue
		}
		if tmp == nil {
			tmp = make([]float64, BlockRows)
		}
		blk := tmp[:bLen]
		c.decodeBlock(b, blk, iscratch)
		k := copy(dst, blk[off-bStart:])
		dst = dst[k:]
		off += k
	}
}

func (c *F64BlockCol) slice(i, j int) Column {
	return &f64BlockView{c: c, off: i, n: j - i}
}

func (c *F64BlockCol) gather(idx []int) Column {
	out := make(Float64Col, len(idx))
	// Sort positions by block so every touched block decodes exactly once.
	order := sortedByRow(idx)
	buf := make([]float64, BlockRows)
	iscratch := make([]int64, BlockRows)
	cur := -1
	for _, k := range order {
		r := idx[k]
		b := r / BlockRows
		if b != cur {
			c.decodeBlock(b, buf[:c.blockLen(b)], iscratch)
			cur = b
		}
		out[k] = buf[r-b*BlockRows]
	}
	return out
}

func (c *F64BlockCol) zoneEnvelope() (ColumnZones, bool) {
	return ColumnZones{Mins: c.mins, Maxs: c.maxs}, true
}

type f64BlockView struct {
	c      *F64BlockCol
	off, n int
}

func (v *f64BlockView) Len() int          { return v.n }
func (v *f64BlockView) Type() Type        { return Float64 }
func (v *f64BlockView) lazy() bool        { return true }
func (v *f64BlockView) sizeBytes() int64  { return int64(v.n) * 8 }
func (v *f64BlockView) physBytes() int64  { return 0 } // storage owned by base column
func (v *f64BlockView) slice(i, j int) Column {
	return &f64BlockView{c: v.c, off: v.off + i, n: j - i}
}

func (v *f64BlockView) gather(idx []int) Column {
	shifted := shiftIdx(idx, v.off)
	return v.c.gather(shifted)
}

// ReadF64 fills dst with view rows [off, off+len(dst)).
func (v *f64BlockView) ReadF64(dst []float64, off int) { v.c.ReadF64(dst, v.off+off) }

// --- int64 block column. ---

// I64BlockCol is an int64 column stored as per-block encoded payloads.
type I64BlockCol struct {
	data   []byte
	offs   []uint32
	codecs []byte
	mins   []float64
	maxs   []float64
	rows   int
}

// Len returns the number of rows.
func (c *I64BlockCol) Len() int { return c.rows }

// Type returns Int64.
func (c *I64BlockCol) Type() Type { return Int64 }

func (c *I64BlockCol) lazy() bool { return true }

func (c *I64BlockCol) sizeBytes() int64 { return int64(c.rows) * 8 }

func (c *I64BlockCol) physBytes() int64 {
	return int64(len(c.data)) + int64(len(c.offs))*4 + int64(len(c.codecs)) +
		int64(len(c.mins)+len(c.maxs))*8
}

func (c *I64BlockCol) blockLen(b int) int {
	if n := c.rows - b*BlockRows; n < BlockRows {
		return n
	}
	return BlockRows
}

func (c *I64BlockCol) decodeBlock(b int, dst []int64) {
	decodeI64Block(c.codecs[b], c.data[c.offs[b]:c.offs[b+1]], dst)
	decodedBlocksTotal.Add(1)
}

// ReadI64 fills dst with rows [off, off+len(dst)), decoding each touched
// block once.
func (c *I64BlockCol) ReadI64(dst []int64, off int) {
	var tmp []int64
	for len(dst) > 0 {
		b := off / BlockRows
		bStart := b * BlockRows
		bLen := c.blockLen(b)
		if off == bStart && len(dst) >= bLen {
			c.decodeBlock(b, dst[:bLen])
			dst = dst[bLen:]
			off += bLen
			continue
		}
		if tmp == nil {
			tmp = make([]int64, BlockRows)
		}
		blk := tmp[:bLen]
		c.decodeBlock(b, blk)
		k := copy(dst, blk[off-bStart:])
		dst = dst[k:]
		off += k
	}
}

// ReadF64 widens rows [off, off+len(dst)) into dst, matching Int64Col.
func (c *I64BlockCol) ReadF64(dst []float64, off int) {
	tmp := make([]int64, len(dst))
	c.ReadI64(tmp, off)
	for i, v := range tmp {
		dst[i] = float64(v)
	}
}

func (c *I64BlockCol) slice(i, j int) Column {
	return &i64BlockView{c: c, off: i, n: j - i}
}

func (c *I64BlockCol) gather(idx []int) Column {
	out := make(Int64Col, len(idx))
	order := sortedByRow(idx)
	buf := make([]int64, BlockRows)
	cur := -1
	for _, k := range order {
		r := idx[k]
		b := r / BlockRows
		if b != cur {
			c.decodeBlock(b, buf[:c.blockLen(b)])
			cur = b
		}
		out[k] = buf[r-b*BlockRows]
	}
	return out
}

func (c *I64BlockCol) zoneEnvelope() (ColumnZones, bool) {
	return ColumnZones{Mins: c.mins, Maxs: c.maxs}, true
}

type i64BlockView struct {
	c      *I64BlockCol
	off, n int
}

func (v *i64BlockView) Len() int         { return v.n }
func (v *i64BlockView) Type() Type       { return Int64 }
func (v *i64BlockView) lazy() bool       { return true }
func (v *i64BlockView) sizeBytes() int64 { return int64(v.n) * 8 }
func (v *i64BlockView) physBytes() int64 { return 0 }
func (v *i64BlockView) slice(i, j int) Column {
	return &i64BlockView{c: v.c, off: v.off + i, n: j - i}
}

func (v *i64BlockView) gather(idx []int) Column {
	return v.c.gather(shiftIdx(idx, v.off))
}

// ReadI64 fills dst with view rows [off, off+len(dst)).
func (v *i64BlockView) ReadI64(dst []int64, off int) { v.c.ReadI64(dst, v.off+off) }

// ReadF64 widens view rows [off, off+len(dst)) into dst.
func (v *i64BlockView) ReadF64(dst []float64, off int) { v.c.ReadF64(dst, v.off+off) }

// --- string block column. ---

// strDictMax bounds the column-wide string dictionary; past this the column
// falls back to raw per-block payloads.
const strDictMax = 1 << 16

// StrBlockCol is a string column stored either as a column-wide dictionary
// with per-block bit-packed codes (dict != nil) or as raw per-block
// varint-length payloads.
type StrBlockCol struct {
	dict    []string
	widths  []byte // dict mode: per-block code bit width
	data    []byte
	offs    []uint32
	rows    int
	logical int64 // logical bytes as a raw StringCol would report
}

// Len returns the number of rows.
func (c *StrBlockCol) Len() int { return c.rows }

// Type returns String.
func (c *StrBlockCol) Type() Type { return String }

func (c *StrBlockCol) lazy() bool { return true }

func (c *StrBlockCol) sizeBytes() int64 { return c.logical }

func (c *StrBlockCol) physBytes() int64 {
	n := int64(len(c.data)) + int64(len(c.offs))*4 + int64(len(c.widths))
	for _, s := range c.dict {
		n += int64(len(s)) + 16
	}
	return n
}

func (c *StrBlockCol) blockLen(b int) int {
	if n := c.rows - b*BlockRows; n < BlockRows {
		return n
	}
	return BlockRows
}

func (c *StrBlockCol) decodeBlock(b int, dst []string) {
	payload := c.data[c.offs[b]:c.offs[b+1]]
	if c.dict != nil {
		width := uint(c.widths[b])
		for i := range dst {
			dst[i] = c.dict[readPackedCode(payload, i, width)]
		}
	} else {
		decodeRawStrBlock(payload, dst)
	}
	decodedBlocksTotal.Add(1)
}

// ReadStr fills dst with rows [off, off+len(dst)), decoding each touched
// block once.
func (c *StrBlockCol) ReadStr(dst []string, off int) {
	var tmp []string
	for len(dst) > 0 {
		b := off / BlockRows
		bStart := b * BlockRows
		bLen := c.blockLen(b)
		if off == bStart && len(dst) >= bLen {
			c.decodeBlock(b, dst[:bLen])
			dst = dst[bLen:]
			off += bLen
			continue
		}
		if tmp == nil {
			tmp = make([]string, BlockRows)
		}
		blk := tmp[:bLen]
		c.decodeBlock(b, blk)
		k := copy(dst, blk[off-bStart:])
		dst = dst[k:]
		off += k
	}
}

func (c *StrBlockCol) slice(i, j int) Column {
	return &strBlockView{c: c, off: i, n: j - i}
}

func (c *StrBlockCol) gather(idx []int) Column {
	out := make(StringCol, len(idx))
	order := sortedByRow(idx)
	buf := make([]string, BlockRows)
	cur := -1
	for _, k := range order {
		r := idx[k]
		b := r / BlockRows
		if b != cur {
			c.decodeBlock(b, buf[:c.blockLen(b)])
			cur = b
		}
		out[k] = buf[r-b*BlockRows]
	}
	return out
}

type strBlockView struct {
	c      *StrBlockCol
	off, n int
}

func (v *strBlockView) Len() int   { return v.n }
func (v *strBlockView) Type() Type { return String }
func (v *strBlockView) lazy() bool { return true }
func (v *strBlockView) sizeBytes() int64 {
	if v.c.rows == 0 {
		return 0
	}
	return v.c.logical * int64(v.n) / int64(v.c.rows)
}
func (v *strBlockView) physBytes() int64 { return 0 }
func (v *strBlockView) slice(i, j int) Column {
	return &strBlockView{c: v.c, off: v.off + i, n: j - i}
}

func (v *strBlockView) gather(idx []int) Column {
	return v.c.gather(shiftIdx(idx, v.off))
}

// ReadStr fills dst with view rows [off, off+len(dst)).
func (v *strBlockView) ReadStr(dst []string, off int) { v.c.ReadStr(dst, v.off+off) }

// --- shared small helpers. ---

func shiftIdx(idx []int, off int) []int {
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = v + off
	}
	return out
}

// sortedByRow returns positions into idx ordered by ascending row, so block
// decodes during gather happen once per touched block.
func sortedByRow(idx []int) []int {
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	return order
}

func appendRawStrBlock(dst []byte, vals []string) []byte {
	for _, s := range vals {
		dst = appendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

func decodeRawStrBlock(payload []byte, dst []string) {
	for i := range dst {
		n, sz := binary.Uvarint(payload)
		payload = payload[sz:]
		dst[i] = string(payload[:n])
		payload = payload[n:]
	}
}

// --- compression entry points. ---

// Compress re-encodes every column of t into block-compressed form and
// returns a new table with zone maps attached (the envelopes fall out of
// encoding for free). The input table is unchanged; already-compressed
// columns are reused as-is.
func Compress(t *Table) *Table {
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = compressColumn(c)
	}
	nt := &Table{schema: t.schema, cols: cols, rows: t.rows}
	nt.BuildZones()
	return nt
}

func compressColumn(c Column) Column {
	switch col := c.(type) {
	case Float64Col:
		return compressF64(col)
	case Int64Col:
		return compressI64(col)
	case StringCol:
		return compressStr(col)
	default:
		return c // already block-backed (or a view; views are not re-encoded)
	}
}

func compressF64(c Float64Col) *F64BlockCol {
	nb := numBlocksFor(len(c))
	col := &F64BlockCol{
		rows:   len(c),
		offs:   make([]uint32, 1, nb+1),
		codecs: make([]byte, 0, nb),
		mins:   make([]float64, 0, nb),
		maxs:   make([]float64, 0, nb),
	}
	for b := 0; b < nb; b++ {
		lo := b * BlockRows
		hi := lo + BlockRows
		if hi > len(c) {
			hi = len(c)
		}
		vals := c[lo:hi]
		codec, data := encodeF64Block(col.data, vals)
		col.data = data
		col.codecs = append(col.codecs, codec)
		col.offs = append(col.offs, uint32(len(data)))
		mn, mx := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		col.mins = append(col.mins, mn)
		col.maxs = append(col.maxs, mx)
	}
	return col
}

func compressI64(c Int64Col) *I64BlockCol {
	nb := numBlocksFor(len(c))
	col := &I64BlockCol{
		rows:   len(c),
		offs:   make([]uint32, 1, nb+1),
		codecs: make([]byte, 0, nb),
		mins:   make([]float64, 0, nb),
		maxs:   make([]float64, 0, nb),
	}
	for b := 0; b < nb; b++ {
		lo := b * BlockRows
		hi := lo + BlockRows
		if hi > len(c) {
			hi = len(c)
		}
		vals := c[lo:hi]
		codec, data := encodeI64Block(col.data, vals)
		col.data = data
		col.codecs = append(col.codecs, codec)
		col.offs = append(col.offs, uint32(len(data)))
		mn, mx := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		col.mins = append(col.mins, float64(mn))
		col.maxs = append(col.maxs, float64(mx))
	}
	return col
}

func compressStr(c StringCol) *StrBlockCol {
	enc := newStrBlockEnc()
	for lo := 0; lo < len(c); lo += BlockRows {
		hi := lo + BlockRows
		if hi > len(c) {
			hi = len(c)
		}
		enc.appendBlock(c[lo:hi])
	}
	return enc.finish()
}

// strBlockEnc incrementally encodes a string column block by block; shared
// between Compress and the streaming BlockBuilder. It starts in dictionary
// mode and rewrites itself to raw payloads if the distinct count exceeds
// strDictMax (the dictionary still decodes the already-written blocks).
type strBlockEnc struct {
	dict    []string
	index   map[string]uint32
	raw     bool
	data    []byte
	offs    []uint32
	widths  []byte
	rows    int
	logical int64
	codes   []uint32 // scratch
}

func newStrBlockEnc() *strBlockEnc {
	return &strBlockEnc{index: map[string]uint32{}, offs: []uint32{0}}
}

func (e *strBlockEnc) appendBlock(vals []string) {
	for _, s := range vals {
		e.logical += int64(len(s)) + 16
	}
	e.rows += len(vals)
	if !e.raw {
		e.codes = e.codes[:0]
		maxCode := uint32(0)
		for _, s := range vals {
			code, ok := e.index[s]
			if !ok {
				code = uint32(len(e.dict))
				e.index[s] = code
				e.dict = append(e.dict, s)
			}
			if code > maxCode {
				maxCode = code
			}
			e.codes = append(e.codes, code)
		}
		if len(e.dict) <= strDictMax {
			width := uint(0)
			for maxCode>>width != 0 {
				width++
			}
			e.data = packCodes(e.data, e.codes, width)
			e.widths = append(e.widths, byte(width))
			e.offs = append(e.offs, uint32(len(e.data)))
			return
		}
		e.switchToRaw(vals)
		return
	}
	e.data = appendRawStrBlock(e.data, vals)
	e.offs = append(e.offs, uint32(len(e.data)))
}

// switchToRaw re-encodes every already-written dictionary block as a raw
// payload (decoding through the still-complete dictionary), then appends
// the current block raw. One-time cost, paid only by high-cardinality
// columns that looked dictionary-friendly at first.
func (e *strBlockEnc) switchToRaw(cur []string) {
	old := &StrBlockCol{dict: e.dict, widths: e.widths, data: e.data, offs: e.offs,
		rows: e.rows - len(cur)}
	var data []byte
	offs := []uint32{0}
	buf := make([]string, BlockRows)
	for b := 0; b+1 < len(e.offs); b++ {
		n := old.blockLen(b)
		payload := old.data[old.offs[b]:old.offs[b+1]]
		width := uint(old.widths[b])
		blk := buf[:n]
		for i := range blk {
			blk[i] = old.dict[readPackedCode(payload, i, width)]
		}
		data = appendRawStrBlock(data, blk)
		offs = append(offs, uint32(len(data)))
	}
	data = appendRawStrBlock(data, cur)
	offs = append(offs, uint32(len(data)))
	e.raw = true
	e.dict, e.index, e.widths = nil, nil, nil
	e.data, e.offs = data, offs
}

func (e *strBlockEnc) finish() *StrBlockCol {
	return &StrBlockCol{dict: e.dict, widths: e.widths, data: e.data,
		offs: e.offs, rows: e.rows, logical: e.logical}
}

// --- streaming block builder. ---

// BlockBuilder accumulates rows and encodes full blocks as they fill, so
// ingesting into a compressed backing never materializes whole raw columns
// for numeric types. (String columns buffer only the current block plus the
// dictionary.) The result is a compressed table with zone maps attached.
type BlockBuilder struct {
	schema Schema
	f64s   map[int]*f64BlockEnc
	i64s   map[int]*i64BlockEnc
	strs   map[int]*strStreamEnc
	rows   int
}

// NewBlockBuilder returns a streaming builder for the given schema.
func NewBlockBuilder(schema Schema) *BlockBuilder {
	b := &BlockBuilder{
		schema: schema,
		f64s:   map[int]*f64BlockEnc{},
		i64s:   map[int]*i64BlockEnc{},
		strs:   map[int]*strStreamEnc{},
	}
	for i, f := range schema {
		switch f.Type {
		case Float64:
			b.f64s[i] = &f64BlockEnc{col: &F64BlockCol{offs: []uint32{0}}}
		case Int64:
			b.i64s[i] = &i64BlockEnc{col: &I64BlockCol{offs: []uint32{0}}}
		case String:
			b.strs[i] = &strStreamEnc{enc: newStrBlockEnc()}
		}
	}
	return b
}

// AppendRow appends one row; vals must match the schema (float64, int64 or
// string per field). Panics on mismatch, like Builder.AppendRow.
func (b *BlockBuilder) AppendRow(vals ...any) {
	if len(vals) != len(b.schema) {
		panic(fmt.Sprintf("table: AppendRow got %d values for %d fields",
			len(vals), len(b.schema)))
	}
	for i, v := range vals {
		switch b.schema[i].Type {
		case Float64:
			b.f64s[i].append(v.(float64))
		case Int64:
			b.i64s[i].append(v.(int64))
		case String:
			b.strs[i].append(v.(string))
		}
	}
	b.rows++
}

// NumRows returns the number of rows appended so far.
func (b *BlockBuilder) NumRows() int { return b.rows }

// Build finalizes the builder into a compressed table with zone maps. The
// builder must not be used afterwards.
func (b *BlockBuilder) Build() *Table {
	cols := make([]Column, len(b.schema))
	for i, f := range b.schema {
		switch f.Type {
		case Float64:
			cols[i] = b.f64s[i].finish()
		case Int64:
			cols[i] = b.i64s[i].finish()
		case String:
			cols[i] = b.strs[i].finish()
		}
	}
	t := MustNew(b.schema, cols...)
	t.BuildZones()
	return t
}

type f64BlockEnc struct {
	col *F64BlockCol
	buf []float64
}

func (e *f64BlockEnc) append(v float64) {
	e.buf = append(e.buf, v)
	if len(e.buf) == BlockRows {
		e.flush()
	}
}

func (e *f64BlockEnc) flush() {
	if len(e.buf) == 0 {
		return
	}
	c := e.col
	codec, data := encodeF64Block(c.data, e.buf)
	c.data = data
	c.codecs = append(c.codecs, codec)
	c.offs = append(c.offs, uint32(len(data)))
	mn, mx := e.buf[0], e.buf[0]
	for _, v := range e.buf[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	c.mins = append(c.mins, mn)
	c.maxs = append(c.maxs, mx)
	c.rows += len(e.buf)
	e.buf = e.buf[:0]
}

func (e *f64BlockEnc) finish() *F64BlockCol {
	e.flush()
	return e.col
}

type i64BlockEnc struct {
	col *I64BlockCol
	buf []int64
}

func (e *i64BlockEnc) append(v int64) {
	e.buf = append(e.buf, v)
	if len(e.buf) == BlockRows {
		e.flush()
	}
}

func (e *i64BlockEnc) flush() {
	if len(e.buf) == 0 {
		return
	}
	c := e.col
	codec, data := encodeI64Block(c.data, e.buf)
	c.data = data
	c.codecs = append(c.codecs, codec)
	c.offs = append(c.offs, uint32(len(data)))
	mn, mx := e.buf[0], e.buf[0]
	for _, v := range e.buf[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	c.mins = append(c.mins, float64(mn))
	c.maxs = append(c.maxs, float64(mx))
	c.rows += len(e.buf)
	e.buf = e.buf[:0]
}

func (e *i64BlockEnc) finish() *I64BlockCol {
	e.flush()
	return e.col
}

type strStreamEnc struct {
	enc *strBlockEnc
	buf []string
}

func (e *strStreamEnc) append(s string) {
	e.buf = append(e.buf, s)
	if len(e.buf) == BlockRows {
		e.enc.appendBlock(e.buf)
		e.buf = e.buf[:0]
	}
}

func (e *strStreamEnc) finish() *StrBlockCol {
	if len(e.buf) > 0 {
		e.enc.appendBlock(e.buf)
	}
	return e.enc.finish()
}

// --- block-buffered cursors. ---

// F64Cursor provides random access over any float64-readable column with a
// one-block decode buffer; raw columns are accessed directly. Not safe for
// concurrent use.
type F64Cursor struct {
	raw    []float64
	rawI   []int64
	r      F64Reader
	buf    []float64
	lo, hi int
}

// NewF64Cursor returns a cursor over c, which must be numeric (int64
// columns are widened).
func NewF64Cursor(c Column) (*F64Cursor, error) {
	switch col := c.(type) {
	case Float64Col:
		return &F64Cursor{raw: col}, nil
	case Int64Col:
		return &F64Cursor{rawI: col}, nil
	}
	if r, ok := c.(F64Reader); ok {
		return &F64Cursor{r: r, lo: -1, hi: -1}, nil
	}
	return nil, fmt.Errorf("table: column type %v is not float64-readable", c.Type())
}

// At returns the value at row i.
func (cu *F64Cursor) At(i int) float64 {
	if cu.raw != nil {
		return cu.raw[i]
	}
	if cu.rawI != nil {
		return float64(cu.rawI[i])
	}
	if i < cu.lo || i >= cu.hi {
		cu.fill(i)
	}
	return cu.buf[i-cu.lo]
}

func (cu *F64Cursor) fill(i int) {
	lo := i - i%BlockRows
	hi := lo + BlockRows
	if n := cu.r.Len(); hi > n {
		hi = n
	}
	if cu.buf == nil {
		cu.buf = make([]float64, BlockRows)
	}
	cu.r.ReadF64(cu.buf[:hi-lo], lo)
	cu.lo, cu.hi = lo, hi
}

// I64Cursor is F64Cursor's int64 counterpart.
type I64Cursor struct {
	raw    []int64
	r      I64Reader
	buf    []int64
	lo, hi int
}

// NewI64Cursor returns a cursor over c, which must be an int64 column.
func NewI64Cursor(c Column) (*I64Cursor, error) {
	switch col := c.(type) {
	case Int64Col:
		return &I64Cursor{raw: col}, nil
	}
	if r, ok := c.(I64Reader); ok {
		return &I64Cursor{r: r, lo: -1, hi: -1}, nil
	}
	return nil, fmt.Errorf("table: column type %v is not int64-readable", c.Type())
}

// At returns the value at row i.
func (cu *I64Cursor) At(i int) int64 {
	if cu.raw != nil {
		return cu.raw[i]
	}
	if i < cu.lo || i >= cu.hi {
		lo := i - i%BlockRows
		hi := lo + BlockRows
		if n := cu.r.Len(); hi > n {
			hi = n
		}
		if cu.buf == nil {
			cu.buf = make([]int64, BlockRows)
		}
		cu.r.ReadI64(cu.buf[:hi-lo], lo)
		cu.lo, cu.hi = lo, hi
	}
	return cu.buf[i-cu.lo]
}

// StrCursor is F64Cursor's string counterpart.
type StrCursor struct {
	raw    []string
	r      StrReader
	buf    []string
	lo, hi int
}

// NewStrCursor returns a cursor over c, which must be a string column.
func NewStrCursor(c Column) (*StrCursor, error) {
	switch col := c.(type) {
	case StringCol:
		return &StrCursor{raw: col}, nil
	}
	if r, ok := c.(StrReader); ok {
		return &StrCursor{r: r, lo: -1, hi: -1}, nil
	}
	return nil, fmt.Errorf("table: column type %v is not string-readable", c.Type())
}

// At returns the value at row i.
func (cu *StrCursor) At(i int) string {
	if cu.raw != nil {
		return cu.raw[i]
	}
	if i < cu.lo || i >= cu.hi {
		lo := i - i%BlockRows
		hi := lo + BlockRows
		if n := cu.r.Len(); hi > n {
			hi = n
		}
		if cu.buf == nil {
			cu.buf = make([]string, BlockRows)
		}
		cu.r.ReadStr(cu.buf[:hi-lo], lo)
		cu.lo, cu.hi = lo, hi
	}
	return cu.buf[i-cu.lo]
}

// BlockBase unwraps a column (or a row-range view of one) to its
// underlying block column and the view's row offset within it. The base
// column's identity is stable across queries and views — a registered
// table or sample holds one block column per field for its lifetime — so
// it serves as the cache key for decoded blocks: block b of the base
// covers base rows [b*BlockRows, (b+1)*BlockRows). Non-block columns
// return (nil, 0); raw columns are already decoded, so caching them would
// only duplicate memory.
func BlockBase(c Column) (base Column, off int) {
	switch v := c.(type) {
	case *F64BlockCol:
		return v, 0
	case *I64BlockCol:
		return v, 0
	case *StrBlockCol:
		return v, 0
	case *f64BlockView:
		return v.c, v.off
	case *i64BlockView:
		return v.c, v.off
	case *strBlockView:
		return v.c, v.off
	}
	return nil, 0
}

// ensure interfaces are satisfied (compile-time checks).
var (
	_ F64Reader = Float64Col(nil)
	_ F64Reader = Int64Col(nil)
	_ I64Reader = Int64Col(nil)
	_ StrReader = StringCol(nil)
	_ F64Reader = (*F64BlockCol)(nil)
	_ F64Reader = (*f64BlockView)(nil)
	_ I64Reader = (*I64BlockCol)(nil)
	_ F64Reader = (*I64BlockCol)(nil)
	_ I64Reader = (*i64BlockView)(nil)
	_ StrReader = (*StrBlockCol)(nil)
	_ StrReader = (*strBlockView)(nil)
)
