package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "time,user,city\n1.5,10,NYC\n2.25,20,SF\n"
	tbl, err := ReadCSV(strings.NewReader(in), []Type{Float64, Int64, String})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 || tbl.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column(0).(Float64Col)[1] != 2.25 {
		t.Error("float payload wrong")
	}
	if tbl.Column(1).(Int64Col)[0] != 10 {
		t.Error("int payload wrong")
	}
	if tbl.Column(2).(StringCol)[1] != "SF" {
		t.Error("string payload wrong")
	}
	if tbl.Schema().Index("city") != 2 {
		t.Error("header names lost")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
		types    []Type
	}{
		{"empty", "", []Type{Float64}},
		{"type count mismatch", "a,b\n1,2\n", []Type{Float64}},
		{"bad float", "a\nxyz\n", []Type{Float64}},
		{"bad int", "a\n1.5\n", []Type{Int64}},
		{"ragged row", "a,b\n1\n", []Type{Float64, Float64}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), c.types); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := MustNew(
		Schema{{Name: "x", Type: Float64}, {Name: "n", Type: Int64}, {Name: "s", Type: String}},
		Float64Col{1.5, -2.75, 1e-9},
		Int64Col{1, -2, 3},
		StringCol{"a", "hello world", "c,with,commas"},
	)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, []Type{Float64, Int64, String})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() {
		t.Fatalf("rows %d != %d", back.NumRows(), orig.NumRows())
	}
	for c := 0; c < orig.NumCols(); c++ {
		switch col := orig.Column(c).(type) {
		case Float64Col:
			got := back.Column(c).(Float64Col)
			for i := range col {
				if got[i] != col[i] {
					t.Errorf("col %d row %d: %v != %v", c, i, got[i], col[i])
				}
			}
		case Int64Col:
			got := back.Column(c).(Int64Col)
			for i := range col {
				if got[i] != col[i] {
					t.Errorf("col %d row %d: %v != %v", c, i, got[i], col[i])
				}
			}
		case StringCol:
			got := back.Column(c).(StringCol)
			for i := range col {
				if got[i] != col[i] {
					t.Errorf("col %d row %d: %q != %q", c, i, got[i], col[i])
				}
			}
		}
	}
}
