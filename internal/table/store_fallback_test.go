package table

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStoreFallbackRoundTrip covers the !unix mapFile path on every
// platform: the read-into-memory fallback must reconstruct the identical
// table, zones included.
func TestStoreFallbackRoundTrip(t *testing.T) {
	raw := blockTestTable(2*BlockRows + 41)
	raw.BuildZones()
	path := filepath.Join(t.TempDir(), "t.aqps")
	if err := WriteStore(path, raw); err != nil {
		t.Fatal(err)
	}
	got, closer, err := openStoreFallback(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	assertTablesEqual(t, raw, got)
	if got.Zones() == nil {
		t.Fatal("fallback open did not attach zones from metadata")
	}
}

// TestStoreFallbackErrors pins the fallback's failure modes: a missing
// file, a truncated store, and corrupt magic must all surface errors
// instead of a half-built table.
func TestStoreFallbackErrors(t *testing.T) {
	dir := t.TempDir()

	if _, _, err := openStoreFallback(filepath.Join(dir, "absent.aqps")); err == nil {
		t.Fatal("opening a missing store succeeded")
	}

	raw := blockTestTable(BlockRows + 13)
	path := filepath.Join(dir, "t.aqps")
	if err := WriteStore(path, raw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	trunc := filepath.Join(dir, "trunc.aqps")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openStoreFallback(trunc); err == nil {
		t.Fatal("opening a truncated store succeeded")
	}

	bad := append([]byte(nil), data...)
	copy(bad, "NOTSTORE")
	badPath := filepath.Join(dir, "bad.aqps")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = openStoreFallback(badPath)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic error = %v, want bad-magic error", err)
	}
}
