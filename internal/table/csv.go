package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a table from CSV data with a header row. Column types are
// given explicitly (one per header column); numeric parse failures abort
// with a row/column-addressed error. It round-trips the files cmd/aqpgen
// writes.
func ReadCSV(r io.Reader, types []Type) (*Table, error) {
	return readCSV(r, types, BackingRaw)
}

// ReadCSVBacked is ReadCSV with a storage backing choice. BackingCompressed
// (and BackingMmap, whose ingest side is identical — persistence happens
// via WriteStore) streams rows through a BlockBuilder, encoding each
// numeric block as it fills, so ingestion never materializes full raw
// columns.
func ReadCSVBacked(r io.Reader, types []Type, backing Backing) (*Table, error) {
	return readCSV(r, types, backing)
}

// rowAppender abstracts Builder/BlockBuilder for ingestion.
type rowAppender interface {
	AppendRow(vals ...any)
	Build() *Table
}

func readCSV(r io.Reader, types []Type, backing Backing) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	if len(header) != len(types) {
		return nil, fmt.Errorf("table: CSV has %d columns but %d types given",
			len(header), len(types))
	}
	schema := make(Schema, len(header))
	for i, name := range header {
		schema[i] = Field{Name: strings.TrimSpace(name), Type: types[i]}
	}
	var b rowAppender
	if backing == BackingRaw {
		b = NewBuilder(schema)
	} else {
		b = NewBlockBuilder(schema)
	}
	row := make([]any, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line, err)
		}
		for i, cell := range rec {
			switch types[i] {
			case Float64:
				v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
				if err != nil {
					return nil, fmt.Errorf("table: line %d column %q: %w",
						line, schema[i].Name, err)
				}
				row[i] = v
			case Int64:
				v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("table: line %d column %q: %w",
						line, schema[i].Name, err)
				}
				row[i] = v
			case String:
				row[i] = cell
			}
		}
		b.AppendRow(row...)
	}
	return b.Build(), nil
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.NumCols())
	for i, f := range t.Schema() {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Cursor per column: raw columns read directly, block columns decode
	// one block at a time as the row loop sweeps forward.
	type colWriter func(r int) string
	writers := make([]colWriter, t.NumCols())
	for c := 0; c < t.NumCols(); c++ {
		switch col := t.Column(c).(type) {
		case Float64Col:
			writers[c] = func(r int) string {
				return strconv.FormatFloat(col[r], 'g', -1, 64)
			}
		case Int64Col:
			writers[c] = func(r int) string { return strconv.FormatInt(col[r], 10) }
		case StringCol:
			writers[c] = func(r int) string { return col[r] }
		default:
			switch t.Schema()[c].Type {
			case Float64:
				cu, err := NewF64Cursor(col)
				if err != nil {
					return err
				}
				writers[c] = func(r int) string {
					return strconv.FormatFloat(cu.At(r), 'g', -1, 64)
				}
			case Int64:
				cu, err := NewI64Cursor(col)
				if err != nil {
					return err
				}
				writers[c] = func(r int) string {
					return strconv.FormatInt(cu.At(r), 10)
				}
			case String:
				cu, err := NewStrCursor(col)
				if err != nil {
					return err
				}
				writers[c] = func(r int) string { return cu.At(r) }
			}
		}
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := range writers {
			rec[c] = writers[c](r)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
