//go:build !unix

package table

import (
	"fmt"
	"io"
	"os"
)

// mapFile reads path fully into memory on platforms without the unix mmap
// path; the store still decodes lazily per block, it just loses the
// skip-avoids-page-faults property.
func mapFile(path string) ([]byte, io.Closer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading store: %w", err)
	}
	return data, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
