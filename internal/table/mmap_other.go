//go:build !unix

package table

import "io"

// mapFile reads path fully into memory on platforms without the unix mmap
// path, via the build-tag-neutral fallback that unix tests also cover.
func mapFile(path string) ([]byte, io.Closer, error) {
	return readFileFallback(path)
}
