package table

import (
	"fmt"
	"io"
	"os"
)

// readFileFallback loads a store file fully into memory: the mapFile
// implementation for platforms without unix mmap, and the seam that lets
// every platform's tests exercise that path. The store still decodes
// lazily per block; it just loses the skip-avoids-page-faults property.
func readFileFallback(path string) ([]byte, io.Closer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading store: %w", err)
	}
	return data, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// openStoreFallback is OpenStore through the read-into-memory path,
// regardless of platform. Tests use it to cover the !unix build's
// behaviour from unix CI runners.
func openStoreFallback(path string) (*Table, io.Closer, error) {
	data, closer, err := readFileFallback(path)
	if err != nil {
		return nil, nil, err
	}
	t, err := storeFromBytes(data)
	if err != nil {
		closer.Close()
		return nil, nil, err
	}
	return t, closer, nil
}
