package table

// Lightweight per-block codecs for the compressed and mmap column backings.
// Every codec is bit-exact: decode(encode(x)) reproduces the original values
// down to the float64 bit pattern (NaN payloads, -0, subnormals), which is
// what lets the engine promise bit-identical answers and confidence
// intervals across storage backings (pinned by the codec fuzz tests).
//
// Codec selection is per block (BlockRows values): a single stats pass —
// min/max, run count, capped distinct count, integrality, a sampled XOR
// profile — gates which candidate encodings are even attempted, the
// candidates are encoded for real, and the smallest wins. Raw is always the
// fallback, so a block never grows past its uncompressed size plus the
// fixed per-block metadata.

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// Codec identifiers, stored one byte per block. Float and int codecs live
// in disjoint ranges so a corrupt store cannot silently decode a float
// block with an int codec.
const (
	codecRawF64   byte = 0 // 8 bytes/value, little-endian float64 bits
	codecConstF64 byte = 1 // one 8-byte bit pattern for the whole block
	codecXorF64   byte = 2 // Gorilla-style XOR-with-previous bit packing
	codecIntF64   byte = 3 // integral floats re-encoded with an int codec

	codecRawI64   byte = 16 // 8 bytes/value, little-endian
	codecConstI64 byte = 17 // one zigzag-varint value
	codecForI64   byte = 18 // frame-of-reference bit packing: min + deltas
	codecRleI64   byte = 19 // (zigzag-varint value, varint run) pairs
	codecDictI64  byte = 20 // distinct values + bit-packed indexes
)

// --- Bit-level I/O (LSB-first within the byte stream). ---

type bitWriter struct {
	buf []byte
	acc uint64
	n   uint // bits occupied in acc
}

// writeBits appends the low nb bits of v (nb <= 64).
func (w *bitWriter) writeBits(v uint64, nb uint) {
	if nb == 0 {
		return
	}
	if nb < 64 {
		v &= (uint64(1) << nb) - 1
	}
	w.acc |= v << w.n
	if w.n+nb >= 64 {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], w.acc)
		w.buf = append(w.buf, tmp[:]...)
		// Go defines shifts >= 64 as zero, so w.n == 0 leaves acc empty.
		w.acc = v >> (64 - w.n)
		w.n = w.n + nb - 64
	} else {
		w.n += nb
	}
}

// finish flushes the partial tail word and returns the byte stream.
func (w *bitWriter) finish() []byte {
	for w.n > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		if w.n >= 8 {
			w.n -= 8
		} else {
			w.n = 0
		}
	}
	return w.buf
}

type bitReader struct {
	buf []byte
	pos int
	acc uint64
	n   uint
}

// read32 returns the next nb bits (nb <= 32).
func (r *bitReader) read32(nb uint) uint64 {
	for r.n < nb {
		if r.pos < len(r.buf) {
			r.acc |= uint64(r.buf[r.pos]) << r.n
			r.pos++
		} else {
			// Past the end of a well-formed stream only the final partial
			// byte's padding is read; zero-fill keeps that defined.
			break
		}
		r.n += 8
	}
	v := r.acc & ((uint64(1) << nb) - 1)
	r.acc >>= nb
	if r.n >= nb {
		r.n -= nb
	} else {
		r.n = 0
	}
	return v
}

// readBits returns the next nb bits (nb <= 64), composed LSB-first.
func (r *bitReader) readBits(nb uint) uint64 {
	if nb > 32 {
		lo := r.read32(32)
		hi := r.read32(nb - 32)
		return lo | hi<<32
	}
	return r.read32(nb)
}

// --- Varint / zigzag helpers. ---

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// --- int64 block codecs. ---

// i64Stats is the one-pass profile the chooser gates candidates on.
type i64Stats struct {
	min, max int64
	runs     int // count of value-change boundaries + 1
	distinct int // capped at dictMaxDistinct+1
}

// dictMaxDistinct bounds the dictionary codec: past 256 distinct values per
// 1024-row block the index width approaches the FOR width anyway.
const dictMaxDistinct = 256

func statsI64(vals []int64) i64Stats {
	s := i64Stats{min: vals[0], max: vals[0], runs: 1}
	seen := make(map[int64]struct{}, dictMaxDistinct+1)
	seen[vals[0]] = struct{}{}
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
		if v != vals[i-1] {
			s.runs++
		}
		if len(seen) <= dictMaxDistinct {
			seen[v] = struct{}{}
		}
	}
	s.distinct = len(seen)
	return s
}

// encodeI64Block picks a codec for vals and appends the encoded payload to
// dst, returning the codec id and the grown buffer. vals must be non-empty.
func encodeI64Block(dst []byte, vals []int64) (byte, []byte) {
	s := statsI64(vals)
	if s.min == s.max {
		return codecConstI64, appendUvarint(dst, zigzag(vals[0]))
	}
	rawSize := 8 * len(vals)
	best := codecRawI64
	var bestBuf []byte

	// Frame-of-reference: always a candidate — cheap and usually competitive.
	// Delta arithmetic is two's-complement, so min == MinInt64 wraps safely.
	if width := uint(bits.Len64(uint64(s.max - s.min))); width < 64 {
		var buf []byte
		buf = appendUvarint(buf, zigzag(s.min))
		buf = append(buf, byte(width))
		w := bitWriter{buf: buf}
		for _, v := range vals {
			w.writeBits(uint64(v-s.min), width)
		}
		buf = w.finish()
		if len(buf) < rawSize {
			best, bestBuf = codecForI64, buf
		}
	}

	// Run-length: only worth encoding when runs are long on average.
	if s.runs*4 <= len(vals) {
		var buf []byte
		buf = appendUvarint(buf, uint64(s.runs))
		start := 0
		for i := 1; i <= len(vals); i++ {
			if i == len(vals) || vals[i] != vals[start] {
				buf = appendUvarint(buf, zigzag(vals[start]))
				buf = appendUvarint(buf, uint64(i-start))
				start = i
			}
		}
		if len(buf) < rawSize && (bestBuf == nil || len(buf) < len(bestBuf)) {
			best, bestBuf = codecRleI64, buf
		}
	}

	// Dictionary: few distinct but wide-ranging values (sparse IDs).
	if s.distinct <= dictMaxDistinct {
		var dict []int64
		index := make(map[int64]uint64, s.distinct)
		codes := make([]uint64, len(vals))
		for i, v := range vals {
			c, ok := index[v]
			if !ok {
				c = uint64(len(dict))
				index[v] = c
				dict = append(dict, v)
			}
			codes[i] = c
		}
		width := uint(bits.Len64(uint64(len(dict) - 1)))
		var buf []byte
		buf = appendUvarint(buf, uint64(len(dict)))
		for _, v := range dict {
			buf = appendUvarint(buf, zigzag(v))
		}
		buf = append(buf, byte(width))
		w := bitWriter{buf: buf}
		for _, c := range codes {
			w.writeBits(c, width)
		}
		buf = w.finish()
		if len(buf) < rawSize && (bestBuf == nil || len(buf) < len(bestBuf)) {
			best, bestBuf = codecDictI64, buf
		}
	}

	if best == codecRawI64 {
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		return codecRawI64, dst
	}
	return best, append(dst, bestBuf...)
}

// decodeI64Block decodes n values of the given codec from payload into
// dst[:n]. payload must be exactly the block's encoded bytes.
func decodeI64Block(codec byte, payload []byte, dst []int64) {
	n := len(dst)
	switch codec {
	case codecRawI64:
		for i := 0; i < n; i++ {
			dst[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case codecConstI64:
		u, _ := binary.Uvarint(payload)
		v := unzigzag(u)
		for i := range dst {
			dst[i] = v
		}
	case codecForI64:
		u, sz := binary.Uvarint(payload)
		min := unzigzag(u)
		width := uint(payload[sz])
		r := bitReader{buf: payload[sz+1:]}
		for i := 0; i < n; i++ {
			dst[i] = min + int64(r.readBits(width))
		}
	case codecRleI64:
		runs, sz := binary.Uvarint(payload)
		payload = payload[sz:]
		i := 0
		for run := uint64(0); run < runs; run++ {
			u, sz := binary.Uvarint(payload)
			payload = payload[sz:]
			v := unzigzag(u)
			cnt, sz := binary.Uvarint(payload)
			payload = payload[sz:]
			for j := uint64(0); j < cnt && i < n; j++ {
				dst[i] = v
				i++
			}
		}
	case codecDictI64:
		ndist, sz := binary.Uvarint(payload)
		payload = payload[sz:]
		dict := make([]int64, ndist)
		for i := range dict {
			u, sz := binary.Uvarint(payload)
			payload = payload[sz:]
			dict[i] = unzigzag(u)
		}
		width := uint(payload[0])
		r := bitReader{buf: payload[1:]}
		for i := 0; i < n; i++ {
			dst[i] = dict[r.readBits(width)]
		}
	default:
		panic("table: unknown int64 block codec")
	}
}

// --- float64 block codecs. ---

// integralF64 reports whether v survives a float64 → int64 → float64 round
// trip bit-exactly: finite, integer-valued, in int64 range, and not -0
// (whose sign bit the round trip would erase).
func integralF64(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	if v == 0 {
		return !math.Signbit(v)
	}
	// Integral float64 values with |v| < 2^63 convert exactly both ways.
	return v == math.Trunc(v) && v >= -9.223372036854775e18 && v <= 9.223372036854775e18
}

// encodeF64Block picks a codec for vals and appends the payload to dst.
// vals must be non-empty.
func encodeF64Block(dst []byte, vals []float64) (byte, []byte) {
	first := math.Float64bits(vals[0])
	allConst, allInt := true, true
	for _, v := range vals {
		if math.Float64bits(v) != first {
			allConst = false
		}
		if allInt && !integralF64(v) {
			allInt = false
		}
		if !allConst && !allInt {
			break
		}
	}
	if allConst {
		return codecConstF64, binary.LittleEndian.AppendUint64(dst, first)
	}
	rawSize := 8 * len(vals)

	// Integral floats (counts, IDs, cents) re-encode through the int64
	// chooser, which typically beats any float scheme by a wide margin.
	if allInt {
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i] = int64(v)
		}
		var buf []byte
		codec, buf := encodeI64Block(buf, ints)
		if len(buf)+1 < rawSize {
			dst = append(dst, codec)
			return codecIntF64, append(dst, buf...)
		}
	}

	// XOR packing: profile a sample of adjacent pairs first — high-entropy
	// mantissas (uniform noise) make XOR a guaranteed loss, and the sample
	// spots that without paying for a full encode.
	if xorProfitable(vals) {
		buf := encodeXorF64(nil, vals)
		if len(buf) < rawSize {
			return codecXorF64, append(dst, buf...)
		}
	}

	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return codecRawF64, dst
}

// xorProfitable estimates the XOR codec's bits/value on up to 128 sampled
// adjacent pairs and accepts when the estimate beats raw by ~15%.
func xorProfitable(vals []float64) bool {
	pairs := len(vals) - 1
	if pairs <= 0 {
		return false
	}
	stride := 1
	if pairs > 128 {
		stride = pairs / 128
	}
	bitsTotal, n := 0, 0
	for i := stride; i < len(vals); i += stride {
		xor := math.Float64bits(vals[i-1]) ^ math.Float64bits(vals[i])
		if xor == 0 {
			bitsTotal++
		} else {
			sig := 64 - bits.LeadingZeros64(xor) - bits.TrailingZeros64(xor)
			bitsTotal += 14 + sig // control + window header + significant bits
		}
		n++
	}
	return float64(bitsTotal)/float64(n) < 54 // ~0.85 * 64
}

// encodeXorF64 is Gorilla-style XOR compression: each value XORs with its
// predecessor; a zero XOR costs one bit, a nonzero XOR reuses the previous
// (leading, significant) window when it still fits, or opens a new one.
func encodeXorF64(dst []byte, vals []float64) []byte {
	w := bitWriter{buf: dst}
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	var prevLead, prevSig, prevTrail uint
	haveWindow := false
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.writeBits(0, 1)
			continue
		}
		lead := uint(bits.LeadingZeros64(xor))
		if lead > 63 {
			lead = 63
		}
		trail := uint(bits.TrailingZeros64(xor))
		if haveWindow && lead >= prevLead && trail >= prevTrail {
			w.writeBits(0b01, 2) // '1' then '0': reuse window
			w.writeBits(xor>>prevTrail, prevSig)
			continue
		}
		sig := 64 - lead - trail
		w.writeBits(0b11, 2) // '1' then '1': new window
		w.writeBits(uint64(lead), 6)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>trail, sig)
		prevLead, prevSig, prevTrail = lead, sig, trail
		haveWindow = true
	}
	return w.finish()
}

// decodeF64Block decodes n values of the given codec from payload into
// dst[:n]. scratch supplies an int64 buffer for codecIntF64 (nil allocates).
func decodeF64Block(codec byte, payload []byte, dst []float64, scratch []int64) {
	n := len(dst)
	switch codec {
	case codecRawF64:
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case codecConstF64:
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		for i := range dst {
			dst[i] = v
		}
	case codecIntF64:
		if cap(scratch) < n {
			scratch = make([]int64, n)
		}
		ints := scratch[:n]
		decodeI64Block(payload[0], payload[1:], ints)
		for i, v := range ints {
			dst[i] = float64(v)
		}
	case codecXorF64:
		r := bitReader{buf: payload}
		prev := r.readBits(64)
		dst[0] = math.Float64frombits(prev)
		var lead, sig, trail uint
		for i := 1; i < n; i++ {
			if r.readBits(1) == 0 {
				dst[i] = math.Float64frombits(prev)
				continue
			}
			if r.readBits(1) == 1 {
				lead = uint(r.readBits(6))
				sig = uint(r.readBits(6)) + 1
				trail = 64 - lead - sig
			}
			xor := r.readBits(sig) << trail
			prev ^= xor
			dst[i] = math.Float64frombits(prev)
		}
	default:
		panic("table: unknown float64 block codec")
	}
}

// --- Packed string codes (dictionary columns). ---

// packCodes bit-packs codes at the given width, byte-aligned per call so a
// block's codes can be addressed independently.
func packCodes(dst []byte, codes []uint32, width uint) []byte {
	w := bitWriter{buf: dst}
	for _, c := range codes {
		w.writeBits(uint64(c), width)
	}
	return w.finish()
}

// readPackedCode extracts the idx-th width-bit code from a packed buffer.
// width <= 32, so the value spans at most five bytes.
func readPackedCode(buf []byte, idx int, width uint) uint32 {
	if width == 0 {
		return 0
	}
	bitPos := uint64(idx) * uint64(width)
	byteOff := bitPos >> 3
	shift := uint(bitPos & 7)
	var v uint64
	for i := uint(0); i*8 < shift+width; i++ {
		if int(byteOff)+int(i) < len(buf) {
			v |= uint64(buf[byteOff+uint64(i)]) << (8 * i)
		}
	}
	return uint32((v >> shift) & ((1 << width) - 1))
}
