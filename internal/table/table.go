// Package table implements the in-memory columnar storage substrate of the
// engine: typed columns, schemas, immutable table views, contiguous
// partitioning (the unit of parallel task scheduling) and row gathering.
//
// Tables are append-built with a Builder and immutable afterwards; Slice
// and Partition return views that share column storage, which is what makes
// "any subset of a shuffled sample is itself a random sample" free at the
// storage layer (§5.3 of the paper).
package table

import (
	"fmt"
	"strings"
)

// Type enumerates column types supported by the engine.
type Type int

// Column types.
const (
	Float64 Type = iota
	Int64
	String
)

func (t Type) String() string {
	switch t {
	case Float64:
		return "FLOAT64"
	case Int64:
		return "INT64"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Field is a named, typed column slot in a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// Index returns the position of the named field, or -1 if absent. Lookup is
// case-insensitive, matching the SQL layer.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// String renders the schema as "name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Name + " " + f.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Column is a typed vector of values.
type Column interface {
	Len() int
	Type() Type
	// slice returns a view of rows [i, j) sharing storage.
	slice(i, j int) Column
	// gather returns a new column of the rows at idx.
	gather(idx []int) Column
	// sizeBytes is the LOGICAL size: what the decoded values occupy. It is
	// backing-invariant, so BytesScanned stays comparable across backings.
	sizeBytes() int64
	// physBytes is the resident size of the physical representation
	// (encoded payloads + block metadata for block columns).
	physBytes() int64
	// lazy reports whether access decodes blocks rather than reading a raw
	// slice; the executor uses it to pick the block-walk path.
	lazy() bool
}

// Float64Col is a vector of float64 values.
type Float64Col []float64

// Len returns the number of rows.
func (c Float64Col) Len() int { return len(c) }

// Type returns Float64.
func (c Float64Col) Type() Type { return Float64 }

func (c Float64Col) slice(i, j int) Column { return c[i:j] }

func (c Float64Col) gather(idx []int) Column {
	out := make(Float64Col, len(idx))
	for k, i := range idx {
		out[k] = c[i]
	}
	return out
}

func (c Float64Col) sizeBytes() int64 { return int64(len(c)) * 8 }

// Int64Col is a vector of int64 values.
type Int64Col []int64

// Len returns the number of rows.
func (c Int64Col) Len() int { return len(c) }

// Type returns Int64.
func (c Int64Col) Type() Type { return Int64 }

func (c Int64Col) slice(i, j int) Column { return c[i:j] }

func (c Int64Col) gather(idx []int) Column {
	out := make(Int64Col, len(idx))
	for k, i := range idx {
		out[k] = c[i]
	}
	return out
}

func (c Int64Col) sizeBytes() int64 { return int64(len(c)) * 8 }

// StringCol is a vector of string values.
type StringCol []string

// Len returns the number of rows.
func (c StringCol) Len() int { return len(c) }

// Type returns String.
func (c StringCol) Type() Type { return String }

func (c StringCol) slice(i, j int) Column { return c[i:j] }

func (c StringCol) gather(idx []int) Column {
	out := make(StringCol, len(idx))
	for k, i := range idx {
		out[k] = c[i]
	}
	return out
}

func (c StringCol) sizeBytes() int64 {
	var n int64
	for _, s := range c {
		n += int64(len(s)) + 16
	}
	return n
}

// Table is an immutable columnar table (or a view into one).
type Table struct {
	schema Schema
	cols   []Column
	rows   int
	// zones holds per-block min/max envelopes for numeric columns, built
	// once via BuildZones on stored tables. Views inherit them when their
	// row numbering still lines up with block boundaries (block-aligned
	// Slice/Partition, WithColumn); Gather views and unaligned slices leave
	// it nil, which simply disables skipping.
	zones *Zones
}

// New assembles a table from a schema and matching columns. All columns
// must have equal length and types matching the schema.
func New(schema Schema, cols ...Column) (*Table, error) {
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("table: schema has %d fields but %d columns given",
			len(schema), len(cols))
	}
	rows := 0
	for i, c := range cols {
		if c.Type() != schema[i].Type {
			return nil, fmt.Errorf("table: column %q is %v but schema says %v",
				schema[i].Name, c.Type(), schema[i].Type)
		}
		if i == 0 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d",
				schema[i].Name, c.Len(), rows)
		}
	}
	return &Table{schema: schema, cols: cols, rows: rows}, nil
}

// MustNew is New but panics on error; for tests and generators with static
// shape.
func MustNew(schema Schema, cols ...Column) *Table {
	t, err := New(schema, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Schema returns the table schema. Callers must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// Column returns the i-th column.
func (t *Table) Column(i int) Column { return t.cols[i] }

// ColumnByName returns the named column, or nil if absent.
func (t *Table) ColumnByName(name string) Column {
	i := t.schema.Index(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// Float64ColumnByName returns the named column coerced to float64 values.
// Int64 columns are converted (copied); Float64 columns are returned
// directly. It returns an error for string columns or missing names.
func (t *Table) Float64ColumnByName(name string) ([]float64, error) {
	c := t.ColumnByName(name)
	if c == nil {
		return nil, fmt.Errorf("table: no column %q", name)
	}
	switch col := c.(type) {
	case Float64Col:
		return col, nil
	case Int64Col:
		out := make([]float64, len(col))
		for i, v := range col {
			out[i] = float64(v)
		}
		return out, nil
	}
	if r, ok := c.(F64Reader); ok {
		out := make([]float64, r.Len())
		r.ReadF64(out, 0)
		return out, nil
	}
	return nil, fmt.Errorf("table: column %q is %v, not numeric", name, c.Type())
}

// Slice returns a zero-copy view of rows [i, j). When i falls on a zone
// block boundary the view inherits the base table's zone maps (sliced to
// the covered blocks): the view's row b*ZoneBlockRows is exactly row
// i+b*ZoneBlockRows of the base, so each inherited envelope covers a
// superset of the view's block and skipping stays conservative. Unaligned
// slices get nil zones, which degrades to "never skip".
func (t *Table) Slice(i, j int) *Table {
	if i < 0 || j > t.rows || i > j {
		panic(fmt.Sprintf("table: Slice(%d, %d) out of range [0, %d]", i, j, t.rows))
	}
	cols := make([]Column, len(t.cols))
	for k, c := range t.cols {
		cols[k] = c.slice(i, j)
	}
	out := &Table{schema: t.schema, cols: cols, rows: j - i}
	if i%ZoneBlockRows == 0 {
		out.zones = t.zones.slice(i, j)
	}
	return out
}

// Partition splits the table into k contiguous, zero-copy views of
// near-equal size. Remainder rows are spread across the leading
// partitions. k must be >= 1; partitions beyond the row count are empty.
func (t *Table) Partition(k int) []*Table {
	if k < 1 {
		panic("table: Partition with k < 1")
	}
	parts := make([]*Table, k)
	base := t.rows / k
	rem := t.rows % k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		parts[i] = t.Slice(start, start+size)
		start += size
	}
	return parts
}

// PartitionAligned splits the table into k contiguous views whose
// boundaries fall on zone-block multiples (except the final row). Aligned
// partitions inherit zone maps and decode whole blocks, so the executor
// prefers this over Partition for scan scheduling. Row order across the
// concatenated partitions is identical to Partition's input order, which is
// what keeps answers bit-identical regardless of the split. Trailing
// partitions may be empty when the table has fewer blocks than k.
func (t *Table) PartitionAligned(k int) []*Table {
	if k < 1 {
		panic("table: PartitionAligned with k < 1")
	}
	nb := (t.rows + ZoneBlockRows - 1) / ZoneBlockRows
	parts := make([]*Table, k)
	base := nb / k
	rem := nb % k
	start := 0
	for i := 0; i < k; i++ {
		blocks := base
		if i < rem {
			blocks++
		}
		end := start + blocks*ZoneBlockRows
		if end > t.rows || i == k-1 {
			end = t.rows
		}
		if start > end {
			start = end
		}
		parts[i] = t.Slice(start, end)
		start = end
	}
	return parts
}

// Gather returns a new table containing the rows at idx, in order. Indices
// may repeat (sampling with replacement).
func (t *Table) Gather(idx []int) *Table {
	cols := make([]Column, len(t.cols))
	for k, c := range t.cols {
		cols[k] = c.gather(idx)
	}
	return &Table{schema: t.schema, cols: cols, rows: len(idx)}
}

// WithColumn returns a new table view with an extra column appended. The
// column must match the table's row count.
func (t *Table) WithColumn(f Field, c Column) (*Table, error) {
	if c.Len() != t.rows {
		return nil, fmt.Errorf("table: new column %q has %d rows, want %d",
			f.Name, c.Len(), t.rows)
	}
	if c.Type() != f.Type {
		return nil, fmt.Errorf("table: new column %q type mismatch", f.Name)
	}
	schema := make(Schema, 0, len(t.schema)+1)
	schema = append(schema, t.schema...)
	schema = append(schema, f)
	cols := make([]Column, 0, len(t.cols)+1)
	cols = append(cols, t.cols...)
	cols = append(cols, c)
	out := &Table{schema: schema, cols: cols, rows: t.rows}
	// Row numbering is unchanged, so existing envelopes stay valid; extend
	// them with an envelope for the new column when it is numeric.
	out.zones = t.zones.withColumn(len(t.cols), c)
	return out, nil
}

// SizeBytes estimates the LOGICAL in-memory footprint of the table's data —
// what the decoded values occupy. It is deliberately backing-invariant so
// BytesScanned (and the cluster cost model built on it) reads the same for
// raw, compressed and mmap backings of the same data.
func (t *Table) SizeBytes() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.sizeBytes()
	}
	return n
}

// PhysicalSizeBytes reports the resident footprint of the table's physical
// representation: raw slices for raw columns, encoded payloads plus block
// metadata for compressed and mmap-backed columns.
func (t *Table) PhysicalSizeBytes() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.physBytes()
	}
	return n
}

// Lazy reports whether any column decodes on access (block-compressed or
// mmap-backed).
func (t *Table) Lazy() bool {
	for _, c := range t.cols {
		if c.lazy() {
			return true
		}
	}
	return false
}

// Builder accumulates rows for a schema and produces an immutable Table.
type Builder struct {
	schema Schema
	f64s   map[int][]float64
	i64s   map[int][]int64
	strs   map[int][]string
	rows   int
}

// NewBuilder returns a builder for the given schema.
func NewBuilder(schema Schema) *Builder {
	b := &Builder{
		schema: schema,
		f64s:   map[int][]float64{},
		i64s:   map[int][]int64{},
		strs:   map[int][]string{},
	}
	for i, f := range schema {
		switch f.Type {
		case Float64:
			b.f64s[i] = nil
		case Int64:
			b.i64s[i] = nil
		case String:
			b.strs[i] = nil
		}
	}
	return b
}

// AppendRow appends one row. vals must match the schema arity and types
// (float64, int64 or string per field). It panics on mismatch, since
// builders are driven by generators with static shape.
func (b *Builder) AppendRow(vals ...any) {
	if len(vals) != len(b.schema) {
		panic(fmt.Sprintf("table: AppendRow got %d values for %d fields",
			len(vals), len(b.schema)))
	}
	for i, v := range vals {
		switch b.schema[i].Type {
		case Float64:
			b.f64s[i] = append(b.f64s[i], v.(float64))
		case Int64:
			b.i64s[i] = append(b.i64s[i], v.(int64))
		case String:
			b.strs[i] = append(b.strs[i], v.(string))
		}
	}
	b.rows++
}

// NumRows returns the number of rows appended so far.
func (b *Builder) NumRows() int { return b.rows }

// Build finalizes the builder into a Table. The builder must not be used
// afterwards.
func (b *Builder) Build() *Table {
	cols := make([]Column, len(b.schema))
	for i, f := range b.schema {
		switch f.Type {
		case Float64:
			cols[i] = Float64Col(b.f64s[i])
		case Int64:
			cols[i] = Int64Col(b.i64s[i])
		case String:
			cols[i] = StringCol(b.strs[i])
		}
	}
	return MustNew(b.schema, cols...)
}
