//go:build unix

package table

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns its bytes plus a closer that
// unmaps. Empty files return an empty slice with a no-op closer.
func mapFile(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("table: opening store: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("table: stat store: %w", err)
	}
	if st.Size() == 0 {
		return nil, nopCloser{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()),
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("table: mmap store: %w", err)
	}
	return data, mmapCloser{data: data}, nil
}

type mmapCloser struct{ data []byte }

func (m mmapCloser) Close() error { return syscall.Munmap(m.data) }
