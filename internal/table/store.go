package table

// On-disk block store. A store file is the compressed backing made durable:
//
//	[8]  magic "AQPSTOR1"
//	[8]  little-endian uint64 offset of the metadata section
//	[..] column data payloads, back to back (each column's encoded blocks)
//	[..] metadata: JSON, from the recorded offset to EOF
//
// All block metadata — codec ids, payload offsets and the zone-map min/max
// envelopes — lives in the JSON section, so OpenStore can attach zone maps
// without touching a single data byte: a query whose predicate excludes a
// block never faults its pages in, which is what turns zone-map skipping
// into an I/O win rather than just a CPU win. Envelopes are persisted as
// IEEE-754 bit patterns (uint64) because JSON cannot represent NaN/±Inf.
//
// On unix the data section is served from a read-only memory mapping; other
// platforms fall back to reading the file into memory (store_fallback).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

const storeMagic = "AQPSTOR1"

type storeColumn struct {
	Name    string   `json:"name"`
	Type    Type     `json:"type"`
	DataOff uint64   `json:"data_off"`
	DataLen uint64   `json:"data_len"`
	Offs    []uint32 `json:"offs"`
	// Codecs holds per-block codec ids for numeric columns and per-block
	// code bit widths for dictionary string columns.
	Codecs []byte `json:"codecs,omitempty"`
	// MinBits/MaxBits are zone envelopes as float64 bit patterns.
	MinBits []uint64 `json:"min_bits,omitempty"`
	MaxBits []uint64 `json:"max_bits,omitempty"`
	// Dict is the column-wide string dictionary; nil with Type==String
	// means raw per-block string payloads.
	Dict    []string `json:"dict,omitempty"`
	Logical int64    `json:"logical,omitempty"`
}

type storeMeta struct {
	Rows    int           `json:"rows"`
	Columns []storeColumn `json:"columns"`
}

func f64sToBits(vals []float64) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

func bitsToF64s(bits []uint64) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// WriteStore persists t to path in block-store format. Raw columns are
// compressed on the way out; block-backed columns are written as-is.
func WriteStore(path string, t *Table) (err error) {
	ct := t
	if !allBlockBacked(t) {
		ct = Compress(t)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table: creating store: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("table: closing store: %w", cerr)
		}
	}()

	meta := storeMeta{Rows: ct.rows}
	var header [16]byte
	copy(header[:8], storeMagic)
	if _, err := f.Write(header[:]); err != nil {
		return fmt.Errorf("table: writing store header: %w", err)
	}
	dataOff := uint64(len(header))
	for i, col := range ct.cols {
		sc := storeColumn{Name: ct.schema[i].Name, Type: ct.schema[i].Type}
		var data []byte
		switch c := col.(type) {
		case *F64BlockCol:
			data = c.data
			sc.Offs, sc.Codecs = c.offs, c.codecs
			sc.MinBits, sc.MaxBits = f64sToBits(c.mins), f64sToBits(c.maxs)
		case *I64BlockCol:
			data = c.data
			sc.Offs, sc.Codecs = c.offs, c.codecs
			sc.MinBits, sc.MaxBits = f64sToBits(c.mins), f64sToBits(c.maxs)
		case *StrBlockCol:
			data = c.data
			sc.Offs, sc.Codecs = c.offs, c.widths
			sc.Dict, sc.Logical = c.dict, c.logical
		default:
			return fmt.Errorf("table: column %q is not block-backed after Compress",
				sc.Name)
		}
		sc.DataOff, sc.DataLen = dataOff, uint64(len(data))
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("table: writing store column %q: %w", sc.Name, err)
		}
		dataOff += uint64(len(data))
		meta.Columns = append(meta.Columns, sc)
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("table: encoding store metadata: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		return fmt.Errorf("table: writing store metadata: %w", err)
	}
	binary.LittleEndian.PutUint64(header[8:], dataOff)
	if _, err := f.WriteAt(header[8:16], 8); err != nil {
		return fmt.Errorf("table: writing store meta offset: %w", err)
	}
	return nil
}

func allBlockBacked(t *Table) bool {
	for _, c := range t.cols {
		switch c.(type) {
		case *F64BlockCol, *I64BlockCol, *StrBlockCol:
		default:
			return false
		}
	}
	return len(t.cols) > 0
}

// OpenStore maps the store at path and reconstructs its table. Column data
// stays in the file mapping (unix) and is decoded lazily per block; zone
// maps come straight from metadata, so skipped blocks cost no I/O. The
// returned closer releases the mapping; the table must not be used after
// Close.
func OpenStore(path string) (*Table, io.Closer, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, nil, err
	}
	t, err := storeFromBytes(data)
	if err != nil {
		closer.Close()
		return nil, nil, err
	}
	return t, closer, nil
}

func storeFromBytes(data []byte) (*Table, error) {
	if len(data) < 16 || string(data[:8]) != storeMagic {
		return nil, fmt.Errorf("table: not a block store (bad magic)")
	}
	metaOff := binary.LittleEndian.Uint64(data[8:16])
	if metaOff < 16 || metaOff > uint64(len(data)) {
		return nil, fmt.Errorf("table: corrupt store (meta offset %d of %d bytes)",
			metaOff, len(data))
	}
	var meta storeMeta
	if err := json.Unmarshal(data[metaOff:], &meta); err != nil {
		return nil, fmt.Errorf("table: decoding store metadata: %w", err)
	}
	schema := make(Schema, len(meta.Columns))
	cols := make([]Column, len(meta.Columns))
	for i, sc := range meta.Columns {
		schema[i] = Field{Name: sc.Name, Type: sc.Type}
		end := sc.DataOff + sc.DataLen
		if sc.DataOff < 16 || end > metaOff {
			return nil, fmt.Errorf("table: corrupt store (column %q data range)",
				sc.Name)
		}
		payload := data[sc.DataOff:end]
		nb := numBlocksFor(meta.Rows)
		if len(sc.Offs) != nb+1 {
			return nil, fmt.Errorf("table: corrupt store (column %q has %d offsets, want %d)",
				sc.Name, len(sc.Offs), nb+1)
		}
		switch sc.Type {
		case Float64:
			cols[i] = &F64BlockCol{data: payload, offs: sc.Offs, codecs: sc.Codecs,
				mins: bitsToF64s(sc.MinBits), maxs: bitsToF64s(sc.MaxBits),
				rows: meta.Rows}
		case Int64:
			cols[i] = &I64BlockCol{data: payload, offs: sc.Offs, codecs: sc.Codecs,
				mins: bitsToF64s(sc.MinBits), maxs: bitsToF64s(sc.MaxBits),
				rows: meta.Rows}
		case String:
			cols[i] = &StrBlockCol{data: payload, offs: sc.Offs, widths: sc.Codecs,
				dict: sc.Dict, rows: meta.Rows, logical: sc.Logical}
		default:
			return nil, fmt.Errorf("table: corrupt store (column %q type %d)",
				sc.Name, sc.Type)
		}
	}
	t, err := New(schema, cols...)
	if err != nil {
		return nil, err
	}
	t.rows = meta.Rows
	t.BuildZones()
	return t, nil
}
