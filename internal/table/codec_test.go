package table

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// adversarialI64 are the int64 block shapes the codecs must round-trip
// bit-exactly: constants, long runs, tiny dictionaries, dense ranges,
// all-distinct wide values, and the integer extremes.
func adversarialI64() map[string][]int64 {
	rng := rand.New(rand.NewSource(1))
	long := make([]int64, BlockRows)
	for i := range long {
		long[i] = int64(i / 100)
	}
	wide := make([]int64, BlockRows)
	for i := range wide {
		wide[i] = rng.Int63() - rng.Int63()
	}
	dict := make([]int64, BlockRows)
	vals := []int64{math.MinInt64, -1, 0, 7, math.MaxInt64}
	for i := range dict {
		dict[i] = vals[rng.Intn(len(vals))]
	}
	dense := make([]int64, BlockRows)
	for i := range dense {
		dense[i] = 1_000_000 + int64(i)
	}
	return map[string][]int64{
		"single":       {42},
		"constant":     {7, 7, 7, 7, 7, 7, 7},
		"constantMin":  {math.MinInt64, math.MinInt64, math.MinInt64},
		"extremes":     {math.MinInt64, math.MaxInt64, 0, -1, 1, math.MinInt64 + 1},
		"runs":         long,
		"wide":         wide,
		"sparseDict":   dict,
		"denseRange":   dense,
		"negativeRun":  {-5, -5, -5, -5, -4, -4, -4, -4, -3, -3, -3, -3},
		"alternating":  {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1},
		"fullRangePair": {math.MinInt64, math.MaxInt64},
	}
}

func TestI64CodecRoundTrip(t *testing.T) {
	for name, vals := range adversarialI64() {
		codec, buf := encodeI64Block(nil, vals)
		got := make([]int64, len(vals))
		decodeI64Block(codec, buf, got)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%s (codec %d): value %d = %d, want %d",
					name, codec, i, got[i], vals[i])
			}
		}
		if len(buf) > 8*len(vals) {
			t.Errorf("%s: encoded %d bytes > raw %d", name, len(buf), 8*len(vals))
		}
	}
}

// adversarialF64 covers the float64 bit patterns that naive codecs corrupt:
// NaN (including non-default payloads), ±Inf, -0, subnormals, extreme
// exponents, integral values at the int64-exactness boundary.
func adversarialF64() map[string][]float64 {
	rng := rand.New(rand.NewSource(2))
	noise := make([]float64, BlockRows)
	for i := range noise {
		noise[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
	}
	smooth := make([]float64, BlockRows)
	for i := range smooth {
		smooth[i] = 20.5 + math.Sin(float64(i)/50)*0.25
	}
	ints := make([]float64, BlockRows)
	for i := range ints {
		ints[i] = float64(rng.Intn(10000))
	}
	nanPayload := math.Float64frombits(0x7ff8dead_beef0001)
	return map[string][]float64{
		"single":     {3.14},
		"constant":   {2.5, 2.5, 2.5, 2.5},
		"constNaN":   {math.NaN(), math.NaN(), math.NaN()},
		"specials":   {math.NaN(), nanPayload, math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)},
		"negZeroRun": {math.Copysign(0, -1), math.Copysign(0, -1), 0, 0},
		"subnormals": {5e-324, -5e-324, math.SmallestNonzeroFloat64, 1e-310},
		"extremes":   {math.MaxFloat64, -math.MaxFloat64, 1e308, -1e-308},
		"intBoundary": {
			9.223372036854775e18, -9.223372036854775e18,
			9007199254740992, 9007199254740993, // 2^53, 2^53+1 (rounds to 2^53)
		},
		"integral": ints,
		"smooth":   smooth,
		"noise":    noise,
	}
}

func TestF64CodecRoundTrip(t *testing.T) {
	for name, vals := range adversarialF64() {
		codec, buf := encodeF64Block(nil, vals)
		got := make([]float64, len(vals))
		decodeF64Block(codec, buf, got, nil)
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("%s (codec %d): value %d = %x, want %x",
					name, codec, i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
		if len(buf) > 8*len(vals) {
			t.Errorf("%s: encoded %d bytes > raw %d", name, len(buf), 8*len(vals))
		}
	}
}

func TestIntegralF64(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want bool
	}{
		{0, true},
		{math.Copysign(0, -1), false}, // -0 would lose its sign bit
		{1.5, false},
		{float64(1 << 62), true},
		{math.NaN(), false},
		{math.Inf(1), false},
		{9.3e18, false}, // beyond int64
		{-9.3e18, false},
	} {
		if got := integralF64(tc.v); got != tc.want {
			t.Errorf("integralF64(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestBitWriterReader(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	widths := make([]uint, 200)
	vals := make([]uint64, 200)
	for i := range widths {
		widths[i] = uint(rng.Intn(64) + 1)
		vals[i] = rng.Uint64() & ((uint64(1) << widths[i]) - 1)
		if widths[i] == 64 {
			vals[i] = rng.Uint64()
		}
	}
	var w bitWriter
	for i := range vals {
		w.writeBits(vals[i], widths[i])
	}
	r := bitReader{buf: w.finish()}
	for i := range vals {
		if got := r.readBits(widths[i]); got != vals[i] {
			t.Fatalf("bits %d (width %d) = %x, want %x", i, widths[i], got, vals[i])
		}
	}
}

func TestPackedCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, width := range []uint{0, 1, 3, 7, 8, 13, 16, 17} {
		codes := make([]uint32, 300)
		for i := range codes {
			if width > 0 {
				codes[i] = rng.Uint32() & ((1 << width) - 1)
			}
		}
		buf := packCodes(nil, codes, width)
		for i, want := range codes {
			if got := readPackedCode(buf, i, width); got != want {
				t.Fatalf("width %d code %d = %d, want %d", width, i, got, want)
			}
		}
	}
}

// FuzzI64Codec round-trips arbitrary int64 blocks through the chooser.
func FuzzI64Codec(f *testing.F) {
	for _, vals := range adversarialI64() {
		f.Add(i64sToBytes(vals))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := bytesToI64s(raw)
		if len(vals) == 0 || len(vals) > BlockRows {
			return
		}
		codec, buf := encodeI64Block(nil, vals)
		got := make([]int64, len(vals))
		decodeI64Block(codec, buf, got)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("codec %d: value %d = %d, want %d", codec, i, got[i], vals[i])
			}
		}
	})
}

// FuzzF64Codec round-trips arbitrary float64 bit patterns (NaN payloads
// included) through the chooser, comparing at the bit level.
func FuzzF64Codec(f *testing.F) {
	for _, vals := range adversarialF64() {
		f.Add(f64sToBytes(vals))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := bytesToF64s(raw)
		if len(vals) == 0 || len(vals) > BlockRows {
			return
		}
		codec, buf := encodeF64Block(nil, vals)
		got := make([]float64, len(vals))
		decodeF64Block(codec, buf, got, nil)
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("codec %d: value %d = %x, want %x",
					codec, i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	})
}

// FuzzStrBlock round-trips arbitrary string blocks through both dictionary
// and raw encodings.
func FuzzStrBlock(f *testing.F) {
	f.Add([]byte("a\x00b\x00a\x00c"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var vals []string
		for start, i := 0, 0; i <= len(raw); i++ {
			if i == len(raw) || raw[i] == 0 {
				vals = append(vals, string(raw[start:i]))
				start = i + 1
			}
			if len(vals) >= BlockRows {
				break
			}
		}
		if len(vals) == 0 {
			return
		}
		enc := newStrBlockEnc()
		enc.appendBlock(vals)
		col := enc.finish()
		got := make([]string, len(vals))
		col.ReadStr(got, 0)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("value %d = %q, want %q", i, got[i], vals[i])
			}
		}
	})
}

func i64sToBytes(vals []int64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

func bytesToI64s(raw []byte) []int64 {
	out := make([]int64, 0, len(raw)/8)
	for i := 0; i+8 <= len(raw); i += 8 {
		out = append(out, int64(binary.LittleEndian.Uint64(raw[i:])))
	}
	return out
}

func f64sToBytes(vals []float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

func bytesToF64s(raw []byte) []float64 {
	out := make([]float64, 0, len(raw)/8)
	for i := 0; i+8 <= len(raw); i += 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
	}
	return out
}
