package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/stats"
)

func gaussianData(seed uint64, n int, mu, sigma float64) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mu + sigma*src.NormFloat64()
	}
	return xs
}

func paretoData(seed uint64, n int, alpha float64) []float64 {
	src := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.Pareto(1, alpha)
	}
	return xs
}

// --- Query evaluation ---

func TestQueryEvalKinds(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		q    Query
		want float64
	}{
		{Query{Kind: Avg}, 2.5},
		{Query{Kind: Sum}, 10},
		{Query{Kind: Sum, PopN: 8}, 20}, // scaled by 8/4
		{Query{Kind: Count, PopN: 8}, 20},
		{Query{Kind: Min}, 1},
		{Query{Kind: Max}, 4},
		{Query{Kind: Variance}, 1.25},
		{Query{Kind: Stdev}, math.Sqrt(1.25)},
		{Query{Kind: Percentile, Pct: 0.5}, 2.5},
	}
	for _, c := range cases {
		if got := c.q.Eval(xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.Eval = %v, want %v", c.q.Name(), got, c.want)
		}
	}
}

func TestQueryEvalWeighted(t *testing.T) {
	xs := []float64{1, 2, 3}
	w := []float64{0, 2, 1} // multiset {2, 2, 3}
	if got := (Query{Kind: Avg}).EvalWeighted(xs, w); math.Abs(got-7.0/3) > 1e-12 {
		t.Errorf("weighted AVG = %v", got)
	}
	if got := (Query{Kind: Sum}).EvalWeighted(xs, w); got != 7 {
		t.Errorf("weighted SUM = %v", got)
	}
	// Zero-weight row must not influence MIN.
	if got := (Query{Kind: Min}).EvalWeighted(xs, w); got != 2 {
		t.Errorf("weighted MIN = %v, want 2", got)
	}
	if got := (Query{Kind: Max}).EvalWeighted(xs, w); got != 3 {
		t.Errorf("weighted MAX = %v", got)
	}
	if got := (Query{Kind: Percentile, Pct: 0.5}).EvalWeighted(xs, w); got != 2 {
		t.Errorf("weighted median = %v, want 2", got)
	}
}

func TestQuerySumScaledWeighted(t *testing.T) {
	// Scaled SUM on a resample: scale = PopN/n regardless of Σw.
	q := Query{Kind: Sum, PopN: 100}
	xs := []float64{1, 1, 1, 1} // n = 4, scale = 25
	w := []float64{2, 0, 1, 1}  // Σwx = 4
	if got := q.EvalWeighted(xs, w); got != 100 {
		t.Errorf("scaled weighted SUM = %v, want 100", got)
	}
}

func TestQueryUDF(t *testing.T) {
	q := Query{Kind: UDF, FnName: "range", Fn: func(v, w []float64) float64 {
		var m stats.Moments
		if w == nil {
			for _, x := range v {
				m.Add(x)
			}
		} else {
			for i, x := range v {
				m.AddWeighted(x, w[i])
			}
		}
		return m.Max() - m.Min()
	}}
	if got := q.Eval([]float64{3, 9, 5}); got != 6 {
		t.Errorf("UDF eval = %v", got)
	}
	if q.Name() != "UDF:range" {
		t.Errorf("UDF name = %q", q.Name())
	}
	empty := Query{Kind: UDF}
	if !math.IsNaN(empty.Eval([]float64{1})) {
		t.Error("UDF without Fn should evaluate to NaN")
	}
}

func TestQueryEmptyInput(t *testing.T) {
	for _, k := range []AggKind{Avg, Sum, Min, Max, Variance, Stdev, Percentile} {
		if got := (Query{Kind: k, Pct: 0.5}).Eval(nil); !math.IsNaN(got) {
			t.Errorf("%v.Eval(nil) = %v, want NaN", k, got)
		}
	}
}

func TestApplicabilityPredicates(t *testing.T) {
	for _, k := range []AggKind{Avg, Sum, Count, Variance, Stdev} {
		if !(Query{Kind: k}).ClosedFormApplicable() {
			t.Errorf("%v should be closed-form applicable", k)
		}
	}
	for _, k := range []AggKind{Min, Max, Percentile, UDF} {
		if (Query{Kind: k}).ClosedFormApplicable() {
			t.Errorf("%v should not be closed-form applicable", k)
		}
	}
	if !(Query{Kind: Avg}).LargeDeviationApplicable() ||
		(Query{Kind: Max}).LargeDeviationApplicable() {
		t.Error("large-deviation applicability wrong")
	}
}

func TestAggKindString(t *testing.T) {
	if Avg.String() != "AVG" || UDF.String() != "UDF" {
		t.Error("AggKind names wrong")
	}
	if (Query{Kind: Percentile, Pct: 0.99}).Name() != "PERCENTILE(0.99)" {
		t.Errorf("percentile name = %q", Query{Kind: Percentile, Pct: 0.99}.Name())
	}
}

// --- Interval & Delta ---

func TestIntervalGeometry(t *testing.T) {
	iv := Interval{Center: 10, HalfWidth: 2}
	if iv.Lo() != 8 || iv.Hi() != 12 || iv.Width() != 4 {
		t.Error("interval geometry wrong")
	}
	if !iv.Contains(10) || !iv.Contains(8) || iv.Contains(12.001) {
		t.Error("Contains wrong")
	}
	if iv.RelativeError() != 0.2 {
		t.Errorf("RelativeError = %v", iv.RelativeError())
	}
	if !math.IsInf((Interval{Center: 0, HalfWidth: 1}).RelativeError(), 1) {
		t.Error("zero-center relative error should be +Inf")
	}
	if iv.String() == "" {
		t.Error("String empty")
	}
}

func TestDeltaSignConvention(t *testing.T) {
	truth := Interval{Center: 0, HalfWidth: 1}
	// Estimate twice as wide: pessimistic, δ = +1.
	if d := Delta(Interval{Center: 0, HalfWidth: 2}, truth); d != 1 {
		t.Errorf("wide delta = %v, want 1", d)
	}
	// Estimate half as wide: optimistic, δ = −0.5.
	if d := Delta(Interval{Center: 0, HalfWidth: 0.5}, truth); d != -0.5 {
		t.Errorf("narrow delta = %v, want -0.5", d)
	}
	if !math.IsNaN(Delta(Interval{0, 1}, Interval{0, 0})) {
		t.Error("zero truth width should give NaN")
	}
}

// --- Closed form ---

func TestClosedFormAvgMatchesFormula(t *testing.T) {
	xs := gaussianData(1, 1000, 100, 15)
	cf := ClosedForm{}
	iv, err := cf.Interval(nil, xs, Query{Kind: Avg}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.959963984540054 * math.Sqrt(stats.SampleVariance(xs)/1000)
	if math.Abs(iv.HalfWidth-want)/want > 1e-9 {
		t.Errorf("AVG half-width = %v, want %v", iv.HalfWidth, want)
	}
	if math.Abs(iv.Center-stats.Mean(xs)) > 1e-9 {
		t.Error("interval not centered on sample mean")
	}
}

func TestClosedFormCoverage(t *testing.T) {
	// 95% CIs over repeated samples should cover θ(D) about 95% of the
	// time for well-behaved data.
	src := rng.New(2)
	pop := gaussianData(3, 200000, 50, 10)
	q := Query{Kind: Avg}
	truthMean := q.Eval(pop)
	cf := ClosedForm{}
	covered := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		s := sample.WithReplacement(src, pop, 500)
		iv, err := cf.Interval(nil, s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truthMean) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.91 || frac > 0.99 {
		t.Errorf("closed-form coverage = %v, want ~0.95", frac)
	}
}

func TestClosedFormSumScaling(t *testing.T) {
	xs := gaussianData(4, 400, 10, 2)
	q := Query{Kind: Sum, PopN: 4000} // scale 10
	iv, err := ClosedForm{}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ClosedForm{}.Interval(nil, xs, Query{Kind: Sum}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.HalfWidth/plain.HalfWidth-10) > 1e-9 {
		t.Errorf("scaled SUM half-width ratio = %v, want 10",
			iv.HalfWidth/plain.HalfWidth)
	}
}

func TestClosedFormVarianceAndStdev(t *testing.T) {
	// Coverage check for the VARIANCE closed form on Gaussian data.
	src := rng.New(5)
	pop := gaussianData(6, 100000, 0, 3)
	q := Query{Kind: Variance}
	truth := q.Eval(pop)
	covered := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		s := sample.WithReplacement(src, pop, 1000)
		iv, err := ClosedForm{}.Interval(nil, s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truth) {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 0.88 {
		t.Errorf("VARIANCE closed-form coverage = %v", frac)
	}
	// STDEV half-width should be roughly VARIANCE half-width / (2σ).
	s := sample.WithReplacement(src, pop, 1000)
	ivV, _ := ClosedForm{}.Interval(nil, s, Query{Kind: Variance}, 0.95)
	ivS, _ := ClosedForm{}.Interval(nil, s, Query{Kind: Stdev}, 0.95)
	wantRatio := 2 * math.Sqrt(stats.Variance(s))
	gotRatio := ivV.HalfWidth / ivS.HalfWidth
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.05 {
		t.Errorf("VAR/STDEV width ratio = %v, want ~%v", gotRatio, wantRatio)
	}
}

func TestClosedFormNotApplicable(t *testing.T) {
	for _, k := range []AggKind{Min, Max, Percentile} {
		_, err := ClosedForm{}.Interval(nil, []float64{1, 2}, Query{Kind: k, Pct: 0.5}, 0.95)
		if err == nil {
			t.Errorf("%v should not have a closed form", k)
		}
	}
	if _, err := (ClosedForm{}).Interval(nil, nil, Query{Kind: Avg}, 0.95); err == nil {
		t.Error("empty sample should error")
	}
}

func TestClosedFormStudentT(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z, _ := ClosedForm{}.Interval(nil, xs, Query{Kind: Avg}, 0.95)
	tt, _ := ClosedForm{UseStudentT: true}.Interval(nil, xs, Query{Kind: Avg}, 0.95)
	if tt.HalfWidth <= z.HalfWidth {
		t.Error("t interval should be wider than z interval at n=5")
	}
}

// --- Bootstrap ---

func TestBootstrapCoverageOnMean(t *testing.T) {
	src := rng.New(7)
	pop := gaussianData(8, 100000, 20, 5)
	q := Query{Kind: Avg}
	truthMean := q.Eval(pop)
	bs := Bootstrap{K: 100}
	covered := 0
	const trials = 150
	for i := 0; i < trials; i++ {
		s := sample.WithReplacement(src, pop, 400)
		iv, err := bs.Interval(src, s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truthMean) {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 0.88 {
		t.Errorf("bootstrap coverage = %v, want ~0.95", frac)
	}
}

func TestBootstrapAppliesToEverything(t *testing.T) {
	bs := Bootstrap{}
	for _, k := range []AggKind{Avg, Sum, Min, Max, Variance, Percentile} {
		if !bs.AppliesTo(Query{Kind: k, Pct: 0.5}) {
			t.Errorf("bootstrap should apply to %v", k)
		}
	}
	if bs.AppliesTo(Query{Kind: UDF}) {
		t.Error("bootstrap should reject a UDF with no body")
	}
	if !bs.AppliesTo(Query{Kind: UDF, Fn: func(v, w []float64) float64 { return 0 }}) {
		t.Error("bootstrap should accept a UDF with a body")
	}
}

func TestBootstrapAgreesWithClosedFormOnAvg(t *testing.T) {
	xs := gaussianData(9, 2000, 0, 1)
	q := Query{Kind: Avg}
	src := rng.New(10)
	bIv, err := Bootstrap{K: 400}.Interval(src, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cIv, err := ClosedForm{}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ratio := bIv.HalfWidth / cIv.HalfWidth
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("bootstrap/closed-form width ratio = %v, want ~1", ratio)
	}
}

func TestBootstrapDeterministicUnderSeed(t *testing.T) {
	xs := gaussianData(11, 100, 0, 1)
	q := Query{Kind: Avg}
	a, _ := Bootstrap{K: 50}.Interval(rng.New(1), xs, q, 0.95)
	b, _ := Bootstrap{K: 50}.Interval(rng.New(1), xs, q, 0.95)
	if a != b {
		t.Error("same seed produced different bootstrap intervals")
	}
}

func TestBootstrapDistributionLength(t *testing.T) {
	xs := gaussianData(12, 50, 0, 1)
	d := Bootstrap{K: 37}.Distribution(rng.New(1), xs, Query{Kind: Avg})
	if len(d) != 37 {
		t.Errorf("distribution length = %d", len(d))
	}
	d = Bootstrap{}.Distribution(rng.New(1), xs, Query{Kind: Avg})
	if len(d) != DefaultBootstrapK {
		t.Errorf("default distribution length = %d", len(d))
	}
}

func TestBootstrapEmptySample(t *testing.T) {
	if _, err := (Bootstrap{}).Interval(rng.New(1), nil, Query{Kind: Avg}, 0.95); err == nil {
		t.Error("empty sample should error")
	}
}

// --- Large deviation ---

func TestHoeffdingIsPessimistic(t *testing.T) {
	xs := gaussianData(13, 1000, 0.5, 0.1) // data roughly within [0,1]
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	h, err := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClosedForm{}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// With σ = 0.1 and range 1, Hoeffding is ~4-7x wider than the CLT
	// interval; assert at least 2x.
	if h.HalfWidth < 2*c.HalfWidth {
		t.Errorf("Hoeffding %v not clearly wider than closed form %v",
			h.HalfWidth, c.HalfWidth)
	}
}

func TestHoeffdingKnownValue(t *testing.T) {
	xs := make([]float64, 100)
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	iv, err := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(math.Log(2/0.05) / 200.0)
	if math.Abs(iv.HalfWidth-want) > 1e-12 {
		t.Errorf("Hoeffding half-width = %v, want %v", iv.HalfWidth, want)
	}
}

func TestBernsteinTighterThanHoeffdingOnLowVariance(t *testing.T) {
	// σ tiny relative to range: Bernstein should win.
	xs := gaussianData(14, 10000, 0.5, 0.01)
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	h, _ := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, q, 0.95)
	b, _ := LargeDeviation{Bound: Bernstein}.Interval(nil, xs, q, 0.95)
	if b.HalfWidth >= h.HalfWidth {
		t.Errorf("Bernstein %v not tighter than Hoeffding %v on low-variance data",
			b.HalfWidth, h.HalfWidth)
	}
}

func TestMcDiarmidEqualsHoeffdingForMean(t *testing.T) {
	xs := gaussianData(15, 500, 0, 1)
	q := Query{Kind: Avg, Bounds: &[2]float64{-5, 5}}
	h, _ := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, q, 0.95)
	m, _ := LargeDeviation{Bound: McDiarmid}.Interval(nil, xs, q, 0.95)
	if h.HalfWidth != m.HalfWidth {
		t.Error("McDiarmid should coincide with Hoeffding for the sample mean")
	}
}

func TestLargeDeviationGuaranteedCoverage(t *testing.T) {
	// Hoeffding coverage must be ≥ α (in practice ≈ 1).
	src := rng.New(16)
	pop := make([]float64, 50000)
	for i := range pop {
		pop[i] = src.Float64() // uniform [0,1)
	}
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	truthMean := q.Eval(pop)
	covered := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		s := sample.WithReplacement(src, pop, 200)
		iv, err := LargeDeviation{Bound: Hoeffding}.Interval(nil, s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truthMean) {
			covered++
		}
	}
	if covered < trials*95/100 {
		t.Errorf("Hoeffding coverage %d/%d below nominal", covered, trials)
	}
}

func TestLargeDeviationScaledSum(t *testing.T) {
	xs := gaussianData(17, 100, 0.5, 0.1)
	avg := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	sum := Query{Kind: Sum, PopN: 1000, Bounds: &[2]float64{0, 1}}
	a, _ := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, avg, 0.95)
	s, _ := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, sum, 0.95)
	// SUM bound = AVG bound × scale × n = ×1000.
	if math.Abs(s.HalfWidth/a.HalfWidth-1000) > 1e-6 {
		t.Errorf("SUM/AVG bound ratio = %v, want 1000", s.HalfWidth/a.HalfWidth)
	}
}

func TestLargeDeviationNotApplicable(t *testing.T) {
	if _, err := (LargeDeviation{}).Interval(nil, []float64{1}, Query{Kind: Max}, 0.95); err == nil {
		t.Error("MAX should have no large-deviation bound")
	}
	if _, err := (LargeDeviation{}).Interval(nil, nil, Query{Kind: Avg}, 0.95); err == nil {
		t.Error("empty sample should error")
	}
}

func TestBoundAndVerdictStrings(t *testing.T) {
	if Hoeffding.String() != "hoeffding" || Bernstein.String() != "bernstein" ||
		McDiarmid.String() != "mcdiarmid" {
		t.Error("bound names wrong")
	}
	if Correct.String() != "correct" || Optimistic.String() != "optimistic" ||
		Pessimistic.String() != "pessimistic" || NotApplicable.String() != "not-applicable" {
		t.Error("verdict names wrong")
	}
	if (LargeDeviation{Bound: Bernstein}).Name() != "large-deviation/bernstein" {
		t.Error("estimator name wrong")
	}
}

// --- Truth & Evaluate ---

func TestComputeTruth(t *testing.T) {
	src := rng.New(18)
	pop := gaussianData(19, 50000, 10, 2)
	q := Query{Kind: Avg}
	truth := ComputeTruth(src, pop, q, 500, 200, 0.95)
	if truth.Answer != q.Eval(pop) {
		t.Error("truth answer wrong")
	}
	if len(truth.Estimates) != 200 {
		t.Error("truth estimate count wrong")
	}
	// True half width ≈ z * σ/√n.
	want := 1.96 * math.Sqrt(stats.Variance(pop)/500)
	if truth.Interval.HalfWidth < 0.5*want || truth.Interval.HalfWidth > 1.8*want {
		t.Errorf("true half-width = %v, want ~%v", truth.Interval.HalfWidth, want)
	}
	errs := truth.SamplingError()
	if len(errs) != 200 {
		t.Error("sampling error length wrong")
	}
	if m := stats.Mean(errs); math.Abs(m) > 4*want {
		t.Errorf("sampling errors not centered: %v", m)
	}
}

func TestEvaluateClosedFormCorrectOnGaussianMean(t *testing.T) {
	src := rng.New(20)
	pop := gaussianData(21, 100000, 100, 10)
	cfg := DefaultEvalConfig(1000)
	res := Evaluate(src, pop, Query{Kind: Avg}, ClosedForm{}, cfg)
	if res.Verdict != Correct {
		t.Errorf("closed form on Gaussian AVG: %v (opt=%v pess=%v)",
			res.Verdict, res.FracOptimistic, res.FracPessimistic)
	}
	if len(res.Deltas) != cfg.Trials {
		t.Error("delta count wrong")
	}
}

func TestEvaluateBootstrapFailsOnHeavyTailMax(t *testing.T) {
	// MAX over heavy-tailed data is the canonical failure (§2.3.1): the
	// bootstrap cannot see beyond the sample's own maximum.
	src := rng.New(22)
	pop := paretoData(23, 200000, 1.1)
	cfg := EvalConfig{SampleSize: 500, Trials: 60, TruthP: 60,
		Alpha: 0.95, DeltaTol: 0.2, FailFrac: 0.05}
	res := Evaluate(src, pop, Query{Kind: Max}, Bootstrap{K: 60}, cfg)
	if res.Verdict == Correct {
		t.Errorf("bootstrap on Pareto MAX unexpectedly correct (opt=%v pess=%v)",
			res.FracOptimistic, res.FracPessimistic)
	}
}

func TestEvaluateHoeffdingPessimistic(t *testing.T) {
	src := rng.New(24)
	pop := gaussianData(25, 100000, 0.5, 0.05)
	for i := range pop { // clamp into [0,1] so the bound's range is honest
		pop[i] = math.Max(0, math.Min(1, pop[i]))
	}
	cfg := EvalConfig{SampleSize: 1000, Trials: 50, TruthP: 100,
		Alpha: 0.95, DeltaTol: 0.2, FailFrac: 0.05}
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	res := Evaluate(src, pop, q, LargeDeviation{Bound: Hoeffding}, cfg)
	if res.Verdict != Pessimistic {
		t.Errorf("Hoeffding verdict = %v, want pessimistic", res.Verdict)
	}
}

func TestEvaluateNotApplicable(t *testing.T) {
	src := rng.New(26)
	pop := gaussianData(27, 1000, 0, 1)
	res := Evaluate(src, pop, Query{Kind: Max}, ClosedForm{}, DefaultEvalConfig(100))
	if res.Verdict != NotApplicable {
		t.Errorf("verdict = %v, want not-applicable", res.Verdict)
	}
}

func TestEstimationWorks(t *testing.T) {
	src := rng.New(28)
	pop := gaussianData(29, 50000, 10, 1)
	cfg := EvalConfig{SampleSize: 500, Trials: 40, TruthP: 60,
		Alpha: 0.95, DeltaTol: 0.2, FailFrac: 0.05}
	if !EstimationWorks(src, pop, Query{Kind: Avg}, ClosedForm{}, cfg) {
		t.Error("closed form should work on Gaussian AVG")
	}
}

// Property: for any data, the bootstrap interval is centered on θ(S).
func TestQuickBootstrapCentering(t *testing.T) {
	src := rng.New(30)
	f := func(seed uint64) bool {
		s := rng.New(seed)
		n := 20 + s.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.LogNormal(0, 1)
		}
		q := Query{Kind: Avg}
		iv, err := Bootstrap{K: 30}.Interval(src, xs, q, 0.9)
		if err != nil {
			return false
		}
		return iv.Center == q.Eval(xs) && iv.HalfWidth >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Hoeffding width shrinks as 1/√n.
func TestQuickHoeffdingShrinks(t *testing.T) {
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	f := func(nRaw uint8) bool {
		n := int(nRaw)%500 + 10
		small := make([]float64, n)
		big := make([]float64, 4*n)
		a, err1 := LargeDeviation{}.Interval(nil, small, q, 0.95)
		b, err2 := LargeDeviation{}.Interval(nil, big, q, 0.95)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.HalfWidth/b.HalfWidth-2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkClosedFormAvg(b *testing.B) {
	xs := gaussianData(31, 100000, 0, 1)
	q := Query{Kind: Avg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ClosedForm{}).Interval(nil, xs, q, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapAvgK100(b *testing.B) {
	xs := gaussianData(32, 100000, 0, 1)
	q := Query{Kind: Avg}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Bootstrap{K: 100}).Interval(src, xs, q, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBootstrapIntervalMethods(t *testing.T) {
	xs := gaussianData(50, 3000, 100, 10)
	q := Query{Kind: Avg}
	widths := map[IntervalMethod]float64{}
	for _, m := range []IntervalMethod{SymmetricCentered, NormalApprox, PercentileMethod} {
		iv, err := (Bootstrap{K: 300, Method: m}).Interval(rng.New(9), xs, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		widths[m] = iv.HalfWidth
	}
	// On symmetric Gaussian data all three constructions agree closely.
	for m, w := range widths {
		ref := widths[SymmetricCentered]
		if r := w / ref; r < 0.8 || r > 1.25 {
			t.Errorf("%v width %v vs symmetric %v (ratio %v)", m, w, ref, r)
		}
	}
	if SymmetricCentered.String() != "symmetric-centered" ||
		NormalApprox.String() != "normal-approx" ||
		PercentileMethod.String() != "percentile" {
		t.Error("method names wrong")
	}
}

// Property: AVG intervals scale linearly when the data is scaled.
func TestQuickIntervalScaleEquivariance(t *testing.T) {
	base := gaussianData(51, 400, 10, 2)
	q := Query{Kind: Avg}
	f := func(scaleRaw uint8) bool {
		c := 1 + float64(scaleRaw%50)
		scaled := make([]float64, len(base))
		for i, v := range base {
			scaled[i] = c * v
		}
		a, err1 := (ClosedForm{}).Interval(nil, base, q, 0.95)
		b, err2 := (ClosedForm{}).Interval(nil, scaled, q, 0.95)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(b.HalfWidth-c*a.HalfWidth) < 1e-9*c*a.HalfWidth+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestChernoffTighterForSmallProportions(t *testing.T) {
	// A 2% indicator column (a selective COUNT): Chernoff's width scales
	// with sqrt(p), Hoeffding's with the full range.
	src := rng.New(60)
	xs := make([]float64, 20000)
	for i := range xs {
		if src.Float64() < 0.02 {
			xs[i] = 1
		}
	}
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	ch, err := LargeDeviation{Bound: Chernoff}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ch.HalfWidth >= ho.HalfWidth/2 {
		t.Errorf("Chernoff %v not clearly tighter than Hoeffding %v on a 2%% proportion",
			ch.HalfWidth, ho.HalfWidth)
	}
	if Chernoff.String() != "chernoff" {
		t.Error("bound name wrong")
	}
}

func TestChernoffCoverage(t *testing.T) {
	// Chernoff coverage must stay ≥ α.
	src := rng.New(61)
	pop := make([]float64, 100000)
	for i := range pop {
		if src.Float64() < 0.05 {
			pop[i] = 1
		}
	}
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	truthMean := q.Eval(pop)
	covered := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		s := sample.WithReplacement(src, pop, 2000)
		iv, err := LargeDeviation{Bound: Chernoff}.Interval(nil, s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truthMean) {
			covered++
		}
	}
	if covered < trials*95/100 {
		t.Errorf("Chernoff coverage %d/%d below nominal", covered, trials)
	}
}

func TestChernoffDegenerateFallsBack(t *testing.T) {
	// All-zero data: normalized mean 0 → falls back to the Hoeffding form.
	xs := make([]float64, 100)
	q := Query{Kind: Avg, Bounds: &[2]float64{0, 1}}
	ch, err := LargeDeviation{Bound: Chernoff}.Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ho, _ := LargeDeviation{Bound: Hoeffding}.Interval(nil, xs, q, 0.95)
	if ch.HalfWidth != ho.HalfWidth {
		t.Errorf("degenerate Chernoff %v != Hoeffding %v", ch.HalfWidth, ho.HalfWidth)
	}
}
