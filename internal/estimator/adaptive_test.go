package estimator

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestAdaptiveBootstrapConvergesOnEasyQuery(t *testing.T) {
	xs := gaussianData(100, 5000, 50, 5)
	q := Query{Kind: Avg}
	ab := AdaptiveBootstrap{MinK: 25, MaxK: 400, Tolerance: 0.05}
	iv, k, err := ab.IntervalK(rng.New(1), xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if k >= 400 {
		t.Errorf("adaptive K = %d, want early convergence on Gaussian AVG", k)
	}
	if k < 25 {
		t.Errorf("adaptive K = %d below MinK", k)
	}
	// Width should agree with a large fixed-K bootstrap within ~25%.
	fixed, err := (Bootstrap{K: 400}).Interval(rng.New(2), xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r := iv.HalfWidth / fixed.HalfWidth; r < 0.7 || r > 1.4 {
		t.Errorf("adaptive width ratio vs fixed K=400: %v", r)
	}
}

func TestAdaptiveBootstrapRespectsMaxK(t *testing.T) {
	// Heavy-tail MAX: widths never stabilize, so K must cap at MaxK.
	xs := paretoData(101, 5000, 1.05)
	q := Query{Kind: Max}
	ab := AdaptiveBootstrap{MinK: 20, MaxK: 100, Tolerance: 0.01}
	_, k, err := ab.IntervalK(rng.New(3), xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if k > 100 {
		t.Errorf("adaptive K = %d exceeded MaxK", k)
	}
}

func TestAdaptiveBootstrapDefaultsAndErrors(t *testing.T) {
	ab := AdaptiveBootstrap{}
	if ab.Name() != "adaptive-bootstrap" {
		t.Error("name wrong")
	}
	if !ab.AppliesTo(Query{Kind: Percentile, Pct: 0.5}) {
		t.Error("should apply to percentiles")
	}
	if ab.AppliesTo(Query{Kind: UDF}) {
		t.Error("should reject bodiless UDFs")
	}
	if _, err := ab.Interval(rng.New(4), nil, Query{Kind: Avg}, 0.95); err == nil {
		t.Error("empty sample accepted")
	}
	xs := gaussianData(102, 500, 0, 1)
	iv, err := ab.Interval(rng.New(5), xs, Query{Kind: Avg}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(iv.HalfWidth) || iv.HalfWidth <= 0 {
		t.Errorf("degenerate interval %v", iv)
	}
}

func TestAdaptiveBootstrapDeterministic(t *testing.T) {
	xs := gaussianData(103, 1000, 10, 2)
	q := Query{Kind: Avg}
	a, ka, _ := (AdaptiveBootstrap{}).IntervalK(rng.New(6), xs, q, 0.95)
	b, kb, _ := (AdaptiveBootstrap{}).IntervalK(rng.New(6), xs, q, 0.95)
	if a != b || ka != kb {
		t.Error("adaptive bootstrap not deterministic under a seed")
	}
}

func TestBlockJackknifeMatchesClosedFormOnAvg(t *testing.T) {
	xs := gaussianData(200, 8000, 50, 8)
	q := Query{Kind: Avg}
	jk, err := (BlockJackknife{Blocks: 40}).Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := (ClosedForm{}).Interval(nil, xs, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r := jk.HalfWidth / cf.HalfWidth; r < 0.7 || r > 1.4 {
		t.Errorf("jackknife/closed-form width ratio = %v, want ~1", r)
	}
	if jk.Center != cf.Center {
		t.Error("jackknife not centered on θ(S)")
	}
}

func TestBlockJackknifeCoverage(t *testing.T) {
	src := rng.New(201)
	pop := gaussianData(202, 100000, 20, 4)
	q := Query{Kind: Avg}
	truth := q.Eval(pop)
	covered := 0
	const trials = 120
	for i := 0; i < trials; i++ {
		s := make([]float64, 600)
		for j := range s {
			s[j] = pop[src.Intn(len(pop))]
		}
		iv, err := (BlockJackknife{Blocks: 30}).Interval(nil, s, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(truth) {
			covered++
		}
	}
	if covered < trials*85/100 {
		t.Errorf("jackknife coverage %d/%d below nominal", covered, trials)
	}
}

func TestBlockJackknifeDiagnosableAndEdges(t *testing.T) {
	jk := BlockJackknife{}
	if jk.Name() != "block-jackknife" {
		t.Error("name wrong")
	}
	if _, err := jk.Interval(nil, nil, Query{Kind: Avg}, 0.95); err == nil {
		t.Error("empty sample accepted")
	}
	if jk.AppliesTo(Query{Kind: UDF}) {
		t.Error("bodiless UDF accepted")
	}
	// Fewer rows than blocks: clamps.
	xs := []float64{1, 2, 3}
	if _, err := jk.Interval(nil, xs, Query{Kind: Avg}, 0.95); err != nil {
		t.Errorf("tiny sample should still work: %v", err)
	}
	// The diagnostic accepts the jackknife as a ξ and rejects it for MAX
	// on heavy tails just like the bootstrap.
	s := paretoData(203, 40000, 1.1)
	dcfg := diagCfgFor(len(s))
	res, err := runDiagWith(s, Query{Kind: Max}, jk, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res {
		t.Error("diagnostic accepted jackknife MAX on extreme Pareto data")
	}
}

// diagCfgFor and runDiagWith adapt the diagnostic package without a direct
// import cycle (diagnostic imports estimator); the tiny shims live here.
func diagCfgFor(n int) int { return n }

func runDiagWith(s []float64, q Query, xi Estimator, _ int) (bool, error) {
	// Minimal inline re-implementation of the diagnostic's largest-size
	// check: does the estimator's width at small subsamples concentrate
	// near the true spread? Full Algorithm 1 lives in internal/diagnostic;
	// this shim only exercises ξ-plugging from the estimator side.
	src := rng.New(7)
	const p = 40
	b := len(s) / (2 * p)
	tAll := q.Eval(s)
	ests := make([]float64, p)
	widths := make([]float64, p)
	for i := 0; i < p; i++ {
		sub := s[i*b : (i+1)*b]
		ests[i] = q.Eval(sub)
		iv, err := xi.Interval(src, sub, q, 0.95)
		if err != nil {
			return false, err
		}
		widths[i] = iv.HalfWidth
	}
	x := stats.SymmetricHalfWidth(ests, tAll, 0.95)
	if x == 0 || math.IsNaN(x) {
		return false, nil
	}
	close := 0
	for _, w := range widths {
		if math.Abs(w-x)/x <= 0.5 {
			close++
		}
	}
	return float64(close)/p >= 0.95, nil
}
