package estimator

import (
	"fmt"
	"math"
)

// Interval is a symmetric centered confidence interval
// [Center-HalfWidth, Center+HalfWidth], the evaluation object of §2.2.
type Interval struct {
	Center    float64
	HalfWidth float64
}

// Lo returns the lower endpoint.
func (iv Interval) Lo() float64 { return iv.Center - iv.HalfWidth }

// Hi returns the upper endpoint.
func (iv Interval) Hi() float64 { return iv.Center + iv.HalfWidth }

// Width returns the full interval width.
func (iv Interval) Width() float64 { return 2 * iv.HalfWidth }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Lo() && x <= iv.Hi()
}

// RelativeError returns HalfWidth / |Center|: the relative error bound the
// engine compares against user-specified error bounds. Returns +Inf for a
// zero center.
func (iv Interval) RelativeError() float64 {
	if iv.Center == 0 {
		return math.Inf(1)
	}
	return iv.HalfWidth / math.Abs(iv.Center)
}

func (iv Interval) String() string {
	return fmt.Sprintf("%g ± %g", iv.Center, iv.HalfWidth)
}

// Delta computes the paper's δ accuracy statistic comparing an estimated
// interval width against the true interval width:
//
//	δ = (estimated width − true width) / true width
//
// δ > 0.2 flags a pessimistic estimate (interval too wide), δ < −0.2 an
// optimistic and incorrect one (interval too narrow). The sign convention
// follows §3's classification (pessimism = overestimation of error).
// Returns NaN when the true width is zero or either width is NaN.
func Delta(estimated, truth Interval) float64 {
	tw := truth.Width()
	ew := estimated.Width()
	if tw == 0 || math.IsNaN(tw) || math.IsNaN(ew) {
		return math.NaN()
	}
	return (ew - tw) / tw
}
