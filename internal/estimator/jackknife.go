package estimator

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
)

// BlockJackknife estimates the sampling variance of θ(S) by the
// delete-a-block jackknife: partition the sample into g blocks, evaluate θ
// with each block left out, and scale the spread of the leave-one-out
// estimates. Efron's bootstrap (ref [16] of the paper, "another look at
// the jackknife") generalizes it; the jackknife remains attractive when θ
// is smooth and g ≪ K bootstrap replicates are affordable. Like all
// linearization methods it is unreliable for non-smooth θ (quantiles,
// extremes) — the diagnostic applies to it unchanged.
type BlockJackknife struct {
	// Blocks is g, the number of delete blocks (0 = 20).
	Blocks int
}

func (j BlockJackknife) blocks() int {
	if j.Blocks <= 1 {
		return 20
	}
	return j.Blocks
}

// Name implements Estimator.
func (BlockJackknife) Name() string { return "block-jackknife" }

// AppliesTo implements Estimator: anything evaluable applies, but accuracy
// is only expected for smooth θ.
func (BlockJackknife) AppliesTo(q Query) bool { return (Bootstrap{}).AppliesTo(q) }

// Interval implements Estimator.
func (j BlockJackknife) Interval(_ *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	n := len(values)
	if n == 0 {
		return Interval{}, fmt.Errorf("estimator: empty sample")
	}
	if !j.AppliesTo(q) {
		return Interval{}, fmt.Errorf("%w: UDF without function body", ErrNotApplicable)
	}
	g := j.blocks()
	if g > n {
		g = n
	}
	center := q.Eval(values)

	// Leave-one-block-out estimates via a weight mask: block rows get
	// weight 0, everything else weight 1.
	w := make([]float64, n)
	ests := make([]float64, 0, g)
	blockSize := n / g
	for b := 0; b < g; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if b == g-1 {
			hi = n
		}
		for i := range w {
			w[i] = 1
		}
		for i := lo; i < hi; i++ {
			w[i] = 0
		}
		est := q.EvalWeighted(values, w)
		if math.IsNaN(est) {
			return Interval{}, fmt.Errorf("estimator: jackknife replicate %d degenerate", b)
		}
		ests = append(ests, est)
	}
	mean := stats.Mean(ests)
	sum := 0.0
	for _, e := range ests {
		d := e - mean
		sum += d * d
	}
	gf := float64(len(ests))
	variance := (gf - 1) / gf * sum
	z := stats.StdNormalQuantile(0.5 + alpha/2)
	return Interval{Center: center, HalfWidth: z * math.Sqrt(variance)}, nil
}
