package estimator

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// AdaptiveBootstrap is a bootstrap whose resample count K is tuned
// automatically (the paper's §2.3.1 notes K "can be tuned automatically",
// citing Efron & Tibshirani): it starts at MinK and doubles until the
// confidence interval's half-width stabilizes to within Tolerance, or
// MaxK is reached. On easy queries this saves half or more of the
// resampling work; on hard ones it converges to the fixed-K answer.
type AdaptiveBootstrap struct {
	// MinK is the starting resample count (0 = 25).
	MinK int
	// MaxK caps the total resamples (0 = 400).
	MaxK int
	// Tolerance is the acceptable relative half-width change per doubling
	// (0 = 0.05).
	Tolerance float64
	// Obs, when non-nil, counts drawn resamples exactly as Bootstrap.Obs
	// does; the adaptive schedule makes the counter reflect the savings.
	Obs *obs.Registry
}

func (ab AdaptiveBootstrap) minK() int {
	if ab.MinK <= 0 {
		return 25
	}
	return ab.MinK
}

func (ab AdaptiveBootstrap) maxK() int {
	if ab.MaxK <= 0 {
		return 400
	}
	return ab.MaxK
}

func (ab AdaptiveBootstrap) tolerance() float64 {
	if ab.Tolerance <= 0 {
		return 0.05
	}
	return ab.Tolerance
}

// Name implements Estimator.
func (AdaptiveBootstrap) Name() string { return "adaptive-bootstrap" }

// AppliesTo implements Estimator.
func (AdaptiveBootstrap) AppliesTo(q Query) bool { return (Bootstrap{}).AppliesTo(q) }

// Interval implements Estimator.
func (ab AdaptiveBootstrap) Interval(src *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	iv, _, err := ab.IntervalK(src, values, q, alpha)
	return iv, err
}

// IntervalContext implements ContextEstimator: the adaptive doubling loop
// checks ctx between batches, so a cancelled query stops growing K.
func (ab AdaptiveBootstrap) IntervalContext(ctx context.Context, src *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	iv, _, err := ab.IntervalKContext(ctx, src, values, q, alpha)
	return iv, err
}

// IntervalK is Interval but also reports the number of resamples drawn.
func (ab AdaptiveBootstrap) IntervalK(src *rng.Source, values []float64, q Query, alpha float64) (Interval, int, error) {
	return ab.IntervalKContext(context.Background(), src, values, q, alpha)
}

// IntervalKContext is IntervalK honouring cancellation: ctx is checked
// before every resample batch (and inside the kernel per block), so the
// abort latency is bounded by one batch of the smallest size MinK.
func (ab AdaptiveBootstrap) IntervalKContext(ctx context.Context, src *rng.Source, values []float64, q Query, alpha float64) (Interval, int, error) {
	if len(values) == 0 {
		return Interval{}, 0, fmt.Errorf("estimator: empty sample")
	}
	if !ab.AppliesTo(q) {
		return Interval{}, 0, fmt.Errorf("%w: UDF without function body", ErrNotApplicable)
	}
	center := q.Eval(values)
	var ests []float64
	draw := func(k int) {
		b := Bootstrap{K: k, Obs: ab.Obs}
		ests = append(ests, b.estimatesContext(ctx, src, values, q, k)...)
	}
	if err := ctx.Err(); err != nil {
		return Interval{}, 0, err
	}
	// The stopping rule tracks the pooled bootstrap standard deviation
	// rather than the reported half-width: the symmetric centered
	// half-width is an extreme order statistic of the pool and fluctuates
	// far more than Tolerance between doublings even when the underlying
	// spread has long stabilized. The stddev has the same scale (so the
	// relative-change test is equivalent in expectation) but concentrates
	// at the usual 1/√K rate.
	draw(ab.minK())
	prev := stats.Stddev(ests)
	for len(ests) < ab.maxK() {
		if err := ctx.Err(); err != nil {
			return Interval{}, len(ests), err
		}
		grow := len(ests)
		if len(ests)+grow > ab.maxK() {
			grow = ab.maxK() - len(ests)
		}
		draw(grow)
		if err := ctx.Err(); err != nil {
			return Interval{}, len(ests), err
		}
		cur := stats.Stddev(ests)
		if prev > 0 && math.Abs(cur-prev)/prev < ab.tolerance() {
			half := stats.SymmetricHalfWidth(ests, center, alpha)
			return Interval{Center: center, HalfWidth: half}, len(ests), nil
		}
		prev = cur
	}
	if err := ctx.Err(); err != nil {
		return Interval{}, len(ests), err
	}
	half := stats.SymmetricHalfWidth(ests, center, alpha)
	return Interval{Center: center, HalfWidth: half}, len(ests), nil
}
