// Package estimator implements the error-estimation procedures compared in
// the paper — closed-form CLT estimates, the nonparametric bootstrap and
// large-deviation bounds — behind a single interface, together with the
// ground-truth ("true confidence interval") machinery and the δ-based
// accuracy evaluation of §3.
package estimator

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// AggKind enumerates the aggregate function computed by a query θ.
type AggKind int

// Aggregate kinds. Count is modelled as the population-scaled sum of an
// indicator column (1 per matching row), which makes it a special case of
// Sum and matches how the engine compiles COUNT(*) over a filtered scan.
const (
	Avg AggKind = iota
	Sum
	Count
	Min
	Max
	Variance
	Stdev
	Percentile
	UDF
)

func (k AggKind) String() string {
	switch k {
	case Avg:
		return "AVG"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Variance:
		return "VARIANCE"
	case Stdev:
		return "STDEV"
	case Percentile:
		return "PERCENTILE"
	case UDF:
		return "UDF"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Query is the θ of §2.1: an aggregation function mapping a dataset (the
// values of the aggregation column after filters and projections) to a
// single real number. A Query evaluates both unweighted data and
// Poisson-weighted resamples, so one definition serves the plain answer,
// the bootstrap, and the diagnostic.
type Query struct {
	Kind AggKind

	// Pct is the percentile level in (0, 1) for Kind == Percentile.
	Pct float64

	// PopN is |D|, used to scale Sum and Count estimates up to the
	// population (θ̂ = |D|/n · Σ x). Zero means "report the unscaled
	// sample aggregate".
	PopN int

	// Bounds, when non-nil, give known population bounds [lo, hi] of the
	// aggregation column. Large-deviation estimators require them; the
	// paper notes this sensitivity quantity must be precomputed per θ.
	Bounds *[2]float64

	// Fn is the user-defined aggregate for Kind == UDF. It must treat a
	// nil weight slice as all-ones and must ignore rows with weight zero.
	Fn func(values, weights []float64) float64

	// FnName labels the UDF in reports.
	FnName string
}

// Name renders a short human-readable label for the query.
func (q Query) Name() string {
	switch q.Kind {
	case Percentile:
		return fmt.Sprintf("PERCENTILE(%.2g)", q.Pct)
	case UDF:
		if q.FnName != "" {
			return "UDF:" + q.FnName
		}
		return "UDF"
	default:
		return q.Kind.String()
	}
}

// Eval computes θ on unweighted values.
func (q Query) Eval(values []float64) float64 { return q.EvalWeighted(values, nil) }

// EvalWeighted computes θ on a weighted dataset. weights may be nil (all
// ones). A weight of zero means the row is absent; fractional weights are
// permitted and treated as fractional multiplicity.
func (q Query) EvalWeighted(values, weights []float64) float64 {
	n := len(values)
	if n == 0 {
		return math.NaN()
	}
	switch q.Kind {
	case Avg:
		var m stats.Moments
		foldWeighted(&m, values, weights)
		return m.Mean()
	case Sum, Count:
		// Population-scaled sums are self-normalized: θ̂ = |D|·Σwx/Σw.
		// Scaling by the nominal |D|/n instead would let the Poissonized
		// resample's random size leak into the estimate, inflating the
		// bootstrap's variance for any sum whose values don't center on
		// zero (most COUNTs and SUMs) — the estimator would look
		// systematically pessimistic.
		var sum, wsum float64
		if weights == nil {
			for _, v := range values {
				sum += v
			}
			wsum = float64(n)
		} else {
			for i, v := range values {
				sum += v * weights[i]
				wsum += weights[i]
			}
		}
		if q.PopN > 0 {
			if wsum == 0 {
				return math.NaN()
			}
			return float64(q.PopN) * sum / wsum
		}
		return sum
	case Min:
		var m stats.Moments
		foldWeighted(&m, values, weights)
		return m.Min()
	case Max:
		var m stats.Moments
		foldWeighted(&m, values, weights)
		return m.Max()
	case Variance:
		var m stats.Moments
		foldWeighted(&m, values, weights)
		return m.Variance()
	case Stdev:
		var m stats.Moments
		foldWeighted(&m, values, weights)
		return m.Stddev()
	case Percentile:
		if weights == nil {
			return stats.Quantile(values, q.Pct)
		}
		return stats.WeightedQuantile(values, weights, q.Pct)
	case UDF:
		if q.Fn == nil {
			return math.NaN()
		}
		return q.Fn(values, weights)
	default:
		return math.NaN()
	}
}

// scale returns the population scale factor |D|/n for Sum/Count queries.
func (q Query) scale(n int) float64 {
	if q.PopN <= 0 || n == 0 {
		return 1
	}
	return float64(q.PopN) / float64(n)
}

func foldWeighted(m *stats.Moments, values, weights []float64) {
	if weights == nil {
		for _, v := range values {
			m.Add(v)
		}
		return
	}
	for i, v := range values {
		m.AddWeighted(v, weights[i])
	}
}

// FusedApplicable reports whether the blocked multi-resample kernel has a
// fused closed-form accumulator for q: the Σw·x / Σw family (AVG, and
// population-scaled or plain SUM/COUNT). For these the kernel never
// materializes a weight vector; everything else takes the generic
// weighted-θ fallback.
func (q Query) FusedApplicable() bool {
	switch q.Kind {
	case Avg, Sum, Count:
		return true
	default:
		return false
	}
}

// FinalizeFused turns one resample's fused accumulators (wx = Σw·x, w =
// Σw) into θ, matching EvalWeighted's semantics for the fused kinds up to
// floating-point summation order. n is the number of input rows (needed to
// reproduce EvalWeighted's NaN on empty input).
func (q Query) FinalizeFused(wx, w float64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	switch q.Kind {
	case Avg:
		if w == 0 {
			return math.NaN()
		}
		return wx / w
	case Sum, Count:
		if q.PopN > 0 {
			if w == 0 {
				return math.NaN()
			}
			return float64(q.PopN) * wx / w
		}
		return wx
	default:
		return math.NaN()
	}
}

// ClosedFormApplicable reports whether a closed-form CLT variance estimate
// is known for the query. Per the paper, this covers COUNT, SUM, AVG,
// VARIANCE and STDEV; MIN, MAX, percentiles and black-box UDFs have no
// known closed form.
func (q Query) ClosedFormApplicable() bool {
	switch q.Kind {
	case Avg, Sum, Count, Variance, Stdev:
		return true
	default:
		return false
	}
}

// LargeDeviationApplicable reports whether the large-deviation estimators
// apply: they require the aggregate to be a bounded-sensitivity mean-like
// statistic with known bounds.
func (q Query) LargeDeviationApplicable() bool {
	switch q.Kind {
	case Avg, Sum, Count:
		return true
	default:
		return false
	}
}
