package estimator

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
)

// ClosedForm estimates confidence intervals from a normal approximation of
// the sampling distribution with a closed-form variance estimate (§2.3.2).
// It covers AVG, SUM, COUNT, VARIANCE and STDEV; other aggregates have no
// known closed form and return ErrNotApplicable.
type ClosedForm struct {
	// UseStudentT applies a t-distribution critical value instead of the
	// normal one; this matters only for the small subsamples used inside
	// the diagnostic.
	UseStudentT bool
}

// Name implements Estimator.
func (ClosedForm) Name() string { return "closed-form" }

// AppliesTo implements Estimator.
func (ClosedForm) AppliesTo(q Query) bool { return q.ClosedFormApplicable() }

// Interval implements Estimator. The returned interval is centered on the
// sample estimate θ(S) with half-width z·σ̂, where σ̂ is the closed-form
// standard error for the aggregate.
func (cf ClosedForm) Interval(_ *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	if !cf.AppliesTo(q) {
		return Interval{}, fmt.Errorf("%w: %s has no closed form", ErrNotApplicable, q.Name())
	}
	n := len(values)
	if n == 0 {
		return Interval{}, fmt.Errorf("estimator: empty sample")
	}
	se, err := closedFormStdErr(values, q)
	if err != nil {
		return Interval{}, err
	}
	crit := critValue(alpha, float64(n-1), cf.UseStudentT)
	return Interval{Center: q.Eval(values), HalfWidth: crit * se}, nil
}

func critValue(alpha, df float64, useT bool) float64 {
	p := 0.5 + alpha/2
	if useT && df >= 1 {
		return stats.StudentTQuantile(p, df)
	}
	return stats.StdNormalQuantile(p)
}

// closedFormStdErr returns σ̂, the estimated standard deviation of the
// sampling distribution of θ(S), for the closed-form aggregates.
func closedFormStdErr(values []float64, q Query) (float64, error) {
	n := float64(len(values))
	var m stats.Moments
	for _, v := range values {
		m.Add(v)
	}
	s2 := m.SampleVariance()
	if math.IsNaN(s2) {
		s2 = 0 // single observation: no spread information
	}
	switch q.Kind {
	case Avg:
		// Var(x̄) = s²/n.
		return math.Sqrt(s2 / n), nil
	case Sum, Count:
		// θ̂ = scale·Σx = scale·n·x̄, so σ̂ = scale·n·s/√n = scale·s·√n.
		return q.scale(len(values)) * math.Sqrt(s2*n), nil
	case Variance:
		// Var(s²) ≈ (μ₄ − σ⁴)/n (asymptotic; e.g. Rice §6).
		mu4 := centralMoment4(values, m.Mean())
		v := (mu4 - s2*s2) / n
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v), nil
	case Stdev:
		// Delta method: Var(s) ≈ Var(s²) / (4σ²).
		mu4 := centralMoment4(values, m.Mean())
		v := (mu4 - s2*s2) / n
		if v < 0 {
			v = 0
		}
		if s2 == 0 {
			return 0, nil
		}
		return math.Sqrt(v / (4 * s2)), nil
	default:
		return 0, fmt.Errorf("%w: %s", ErrNotApplicable, q.Name())
	}
}

func centralMoment4(values []float64, mean float64) float64 {
	sum := 0.0
	for _, v := range values {
		d := v - mean
		d2 := d * d
		sum += d2 * d2
	}
	return sum / float64(len(values))
}
