package estimator

import (
	"math"

	"repro/internal/rng"
	"repro/internal/sample"
)

// Verdict classifies how an error-estimation technique behaves on a query,
// following §3: estimation "fails" when the relative width deviation δ
// falls outside [−DeltaTol, +DeltaTol] on at least FailFrac of the trial
// samples, split by the direction of failure.
type Verdict int

// Evaluation verdicts.
const (
	// Correct: the technique produced acceptably sized intervals.
	Correct Verdict = iota
	// Optimistic: intervals too narrow (δ < −tol) — the dangerous case.
	Optimistic
	// Pessimistic: intervals too wide (δ > +tol) — wasteful.
	Pessimistic
	// NotApplicable: the technique cannot be applied to the query.
	NotApplicable
)

func (v Verdict) String() string {
	switch v {
	case Correct:
		return "correct"
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	case NotApplicable:
		return "not-applicable"
	default:
		return "unknown"
	}
}

// EvalConfig carries the §3 evaluation protocol's parameters. The zero
// value is invalid; use DefaultEvalConfig.
type EvalConfig struct {
	SampleSize int     // n: rows per trial sample
	Trials     int     // number of trial samples (paper: 100)
	TruthP     int     // samples used to compute the true interval
	Alpha      float64 // confidence level (paper: 0.95)
	DeltaTol   float64 // acceptable |δ| (paper: 0.2)
	FailFrac   float64 // fraction of trials outside tol ⇒ failure (paper: 0.05)
}

// DefaultEvalConfig mirrors §3: 100 samples, δ tolerance 0.2, failure when
// ≥5% of samples deviate, 95% confidence intervals.
func DefaultEvalConfig(sampleSize int) EvalConfig {
	return EvalConfig{
		SampleSize: sampleSize,
		Trials:     100,
		TruthP:     100,
		Alpha:      0.95,
		DeltaTol:   0.2,
		FailFrac:   0.05,
	}
}

// EvalResult reports the outcome of evaluating one technique on one query.
type EvalResult struct {
	Verdict Verdict
	// Deltas are the per-trial δ values (empty when not applicable).
	Deltas []float64
	// FracOptimistic and FracPessimistic are the fractions of trials with
	// δ below −tol and above +tol respectively.
	FracOptimistic  float64
	FracPessimistic float64
	// Truth is the ground truth used for comparison.
	Truth Truth
}

// Evaluate runs the §3 protocol: compute the true confidence interval for
// (population, q, n), then draw cfg.Trials fresh samples, estimate an
// interval on each with est, and classify the technique by how often and
// in which direction δ leaves the tolerance band.
func Evaluate(src *rng.Source, population []float64, q Query, est Estimator, cfg EvalConfig) EvalResult {
	if !est.AppliesTo(q) {
		return EvalResult{Verdict: NotApplicable}
	}
	truth := ComputeTruth(src, population, q, cfg.SampleSize, cfg.TruthP, cfg.Alpha)
	res := EvalResult{Truth: truth, Deltas: make([]float64, 0, cfg.Trials)}
	optim, pessim := 0, 0
	for t := 0; t < cfg.Trials; t++ {
		s := sample.WithReplacement(src, population, cfg.SampleSize)
		iv, err := est.Interval(src, s, q, cfg.Alpha)
		if err != nil {
			return EvalResult{Verdict: NotApplicable}
		}
		d := Delta(iv, truth.Interval)
		res.Deltas = append(res.Deltas, d)
		switch {
		case math.IsNaN(d):
			// Degenerate truth width: treat as optimistic failure only if
			// the estimate is nonzero... a zero-width truth means the
			// estimator cannot be meaningfully scored; skip the trial.
		case d < -cfg.DeltaTol:
			optim++
		case d > cfg.DeltaTol:
			pessim++
		}
	}
	n := float64(cfg.Trials)
	res.FracOptimistic = float64(optim) / n
	res.FracPessimistic = float64(pessim) / n
	switch {
	case res.FracOptimistic >= cfg.FailFrac && res.FracOptimistic >= res.FracPessimistic:
		res.Verdict = Optimistic
	case res.FracPessimistic >= cfg.FailFrac:
		res.Verdict = Pessimistic
	default:
		res.Verdict = Correct
	}
	return res
}

// EstimationWorks is the boolean ground truth the diagnostic is evaluated
// against (§4.2): true when the technique's verdict on this query is
// Correct.
func EstimationWorks(src *rng.Source, population []float64, q Query, est Estimator, cfg EvalConfig) bool {
	return Evaluate(src, population, q, est, cfg).Verdict == Correct
}
