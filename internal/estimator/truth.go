package estimator

import (
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Truth holds the ground-truth quantities of §2.2 for one (dataset, query,
// sample size) triple: the exact answer θ(D) and the "true confidence
// interval" — the symmetric interval around θ(D) covering exactly α of the
// sampling distribution of θ(S), approximated with p fresh samples.
type Truth struct {
	Answer    float64   // θ(D)
	Interval  Interval  // centered on θ(D)
	Estimates []float64 // the p sample estimates θ(S₁)...θ(S_p)
}

// ComputeTruth draws p independent samples of size n (with replacement)
// from population, evaluates θ on each, and returns the ground truth. This
// is the expensive oracle the diagnostic exists to avoid; the evaluation
// harness and the tests use it directly.
func ComputeTruth(src *rng.Source, population []float64, q Query, n, p int, alpha float64) Truth {
	answer := q.Eval(population)
	ests := make([]float64, p)
	for i := range ests {
		s := sample.WithReplacement(src, population, n)
		ests[i] = q.Eval(s)
	}
	half := stats.SymmetricHalfWidth(ests, answer, alpha)
	return Truth{
		Answer:    answer,
		Interval:  Interval{Center: answer, HalfWidth: half},
		Estimates: ests,
	}
}

// SamplingError returns the realized sampling errors θ(Sᵢ) − θ(D) of the
// truth's estimates (the ε distribution of §2.1).
func (t Truth) SamplingError() []float64 {
	out := make([]float64, len(t.Estimates))
	for i, e := range t.Estimates {
		out[i] = e - t.Answer
	}
	return out
}
