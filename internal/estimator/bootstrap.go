package estimator

import (
	"context"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/resample"
	"repro/internal/rng"
	"repro/internal/stats"
)

// DefaultBootstrapK is the paper's resample count (§2.3.1: "a reasonably
// large number, like 100").
const DefaultBootstrapK = 100

// IntervalMethod selects how a confidence interval is read off the
// bootstrap distribution.
type IntervalMethod int

// Bootstrap interval constructions.
const (
	// SymmetricCentered is the paper's §2.2 construction: the smallest
	// interval around θ(S) covering α of the bootstrap distribution.
	SymmetricCentered IntervalMethod = iota
	// NormalApprox fits N(θ(S), sd(bootstrap)²) and uses ±z·sd. Less
	// noisy at small K, blind to skew.
	NormalApprox
	// PercentileMethod uses the (1±α)/2 bootstrap quantiles re-centered
	// on θ(S) (half-width = half the quantile range).
	PercentileMethod
)

func (m IntervalMethod) String() string {
	switch m {
	case SymmetricCentered:
		return "symmetric-centered"
	case NormalApprox:
		return "normal-approx"
	case PercentileMethod:
		return "percentile"
	default:
		return "unknown"
	}
}

// Bootstrap is Efron's nonparametric bootstrap (§2.3.1): it approximates
// the sampling distribution of θ(S) by the distribution of θ over K
// resamples of S, produced by the configured resampling strategy
// (Poissonized by default). It applies to every aggregate, including
// black-box UDFs.
type Bootstrap struct {
	// K is the number of resamples; zero means DefaultBootstrapK.
	K int
	// Strategy selects the resampling implementation; the zero value is
	// resample.Poissonized, the production path.
	Strategy resample.Strategy
	// Method selects the interval construction; the zero value is the
	// paper's symmetric centered interval.
	Method IntervalMethod
	// Obs, when non-nil, counts the resample estimates this estimator
	// draws (aqp_bootstrap_resamples_total) — the quantity the paper's
	// systems optimizations exist to make cheap. Nil disables accounting;
	// intervals are identical either way.
	Obs *obs.Registry
}

// Name implements Estimator.
func (Bootstrap) Name() string { return "bootstrap" }

// AppliesTo implements Estimator: the bootstrap is fully generic.
func (Bootstrap) AppliesTo(q Query) bool {
	return q.Kind != UDF || q.Fn != nil
}

// Interval implements Estimator. The interval is centered on θ(S) with the
// half-width chosen as the smallest symmetric radius covering α of the
// bootstrap distribution (§2.2's symmetric centered construction).
func (b Bootstrap) Interval(src *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	return b.IntervalContext(context.Background(), src, values, q, alpha)
}

// IntervalContext implements ContextEstimator: Interval, aborting the
// resampling kernel when ctx is cancelled. The cancellation latency is one
// kernel block (fused path) or one resample (generic path).
func (b Bootstrap) IntervalContext(ctx context.Context, src *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	if len(values) == 0 {
		return Interval{}, fmt.Errorf("estimator: empty sample")
	}
	if !b.AppliesTo(q) {
		return Interval{}, fmt.Errorf("%w: UDF without function body", ErrNotApplicable)
	}
	k := b.K
	if k <= 0 {
		k = DefaultBootstrapK
	}
	center := q.Eval(values)
	ests := b.estimatesContext(ctx, src, values, q, k)
	if err := ctx.Err(); err != nil {
		return Interval{}, err
	}
	var half float64
	switch b.Method {
	case NormalApprox:
		half = stats.StdNormalQuantile(0.5+alpha/2) * stats.Stddev(ests)
	case PercentileMethod:
		lo := stats.Quantile(ests, (1-alpha)/2)
		hi := stats.Quantile(ests, (1+alpha)/2)
		half = (hi - lo) / 2
	default:
		half = stats.SymmetricHalfWidth(ests, center, alpha)
	}
	return Interval{Center: center, HalfWidth: half}, nil
}

// Distribution returns the raw bootstrap distribution (the K resample
// estimates) for callers that need more than an interval, such as the
// diagnostic's spread statistics.
func (b Bootstrap) Distribution(src *rng.Source, values []float64, q Query) []float64 {
	k := b.K
	if k <= 0 {
		k = DefaultBootstrapK
	}
	return b.estimatesContext(context.Background(), src, values, q, k)
}

// estimatesContext produces the K resample estimates. The Poissonized
// production path runs on the blocked multi-resample kernel: fused
// Σw·x / Σw accumulators for the closed-form family (no weight vectors
// materialized), the generic weighted-θ fallback otherwise. Both consume
// the same two draws from src and the same per-(resample, block) streams,
// so fused and generic agree on identical weights for identical queries.
// Cancellation aborts the kernel mid-column; the partial estimates are
// meaningless and callers must check ctx.Err() before using them.
func (b Bootstrap) estimatesContext(ctx context.Context, src *rng.Source, values []float64, q Query, k int) []float64 {
	b.Obs.Counter("aqp_bootstrap_resamples_total",
		"Bootstrap resample estimates drawn by ξ.").Add(int64(k))
	if b.Strategy != resample.Poissonized {
		return resample.Estimates(src, values, k, q.EvalWeighted, b.Strategy)
	}
	if !q.FusedApplicable() {
		seed, stream := src.Uint64(), src.Uint64()
		out, _ := kernel.Generic(ctx, values, k, seed, stream, 1, q.EvalWeighted)
		return out
	}
	seed, stream := src.Uint64(), src.Uint64()
	sums := kernel.FusedSums(ctx, values, k, seed, stream, 1)
	out := make([]float64, k)
	for r := range out {
		out[r] = q.FinalizeFused(sums.WX[r], sums.W[r], len(values))
	}
	return out
}
