package estimator

import (
	"context"
	"errors"

	"repro/internal/rng"
)

// ErrNotApplicable is returned by an Estimator whose technique does not
// cover the given query (e.g. closed forms for MIN).
var ErrNotApplicable = errors.New("estimator: technique not applicable to this query")

// Estimator produces an α-confidence interval for θ(D) from a single
// sample. This is the ξ of Algorithm 1: the diagnostic validates any
// implementation of this interface at runtime.
type Estimator interface {
	// Name identifies the technique ("bootstrap", "closed-form", ...).
	Name() string
	// AppliesTo reports whether the technique covers the query at all.
	AppliesTo(q Query) bool
	// Interval estimates a symmetric centered α confidence interval for
	// θ(D) given sample values. Implementations that need randomness
	// (the bootstrap) draw from src; deterministic ones ignore it.
	Interval(src *rng.Source, values []float64, q Query, alpha float64) (Interval, error)
}

// ContextEstimator is implemented by estimators whose Interval computation
// is long enough to warrant cooperative cancellation (the bootstrap family;
// closed forms finish in microseconds and have no need). Callers that hold
// a context — the diagnostic's subsample loop, the engine's serving layer —
// probe for this interface and prefer IntervalContext so a cancelled query
// aborts resampling mid-flight instead of running it to completion.
type ContextEstimator interface {
	Estimator
	// IntervalContext is Interval honouring ctx: a cancelled context makes
	// it return ctx's error promptly (within one resample's work).
	IntervalContext(ctx context.Context, src *rng.Source, values []float64, q Query, alpha float64) (Interval, error)
}
