package estimator

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Bound selects the concentration inequality used by LargeDeviation.
type Bound int

// Supported large-deviation inequalities.
const (
	// Hoeffding uses only the data range; the loosest and most common
	// choice (used by online aggregation and Aqua).
	Hoeffding Bound = iota
	// Bernstein additionally exploits the sample variance and is tighter
	// when the variance is small relative to the range.
	Bernstein
	// McDiarmid is the bounded-differences inequality; for a sample mean
	// each coordinate change moves the mean by at most (b−a)/n, making it
	// equivalent to Hoeffding here, but it is kept distinct because the
	// engine also applies it to general bounded-sensitivity statistics.
	McDiarmid
	// Chernoff is the multiplicative Chernoff bound for sums of [0,1]
	// variables: P(|x̄−μ| ≥ δμ) ≤ 2exp(−δ²nμ/3). Much tighter than
	// Hoeffding for small proportions (selective COUNTs), since its width
	// scales with √μ̂ rather than the full range.
	Chernoff
)

func (b Bound) String() string {
	switch b {
	case Hoeffding:
		return "hoeffding"
	case Bernstein:
		return "bernstein"
	case McDiarmid:
		return "mcdiarmid"
	case Chernoff:
		return "chernoff"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

// LargeDeviation produces confidence intervals from distribution-free tail
// bounds (§2.3.3). The intervals are guaranteed to have coverage at least
// α but are typically far wider than the true interval — the extreme
// pessimism visible in Fig. 1. It requires known bounds on the data; when
// the query carries none, the observed sample range is used as a proxy
// (optimistic for genuinely unbounded data, which the tests exercise).
type LargeDeviation struct {
	Bound Bound
}

// Name implements Estimator.
func (ld LargeDeviation) Name() string { return "large-deviation/" + ld.Bound.String() }

// AppliesTo implements Estimator.
func (LargeDeviation) AppliesTo(q Query) bool { return q.LargeDeviationApplicable() }

// Interval implements Estimator.
func (ld LargeDeviation) Interval(_ *rng.Source, values []float64, q Query, alpha float64) (Interval, error) {
	if !ld.AppliesTo(q) {
		return Interval{}, fmt.Errorf("%w: no tail bound derived for %s",
			ErrNotApplicable, q.Name())
	}
	n := len(values)
	if n == 0 {
		return Interval{}, fmt.Errorf("estimator: empty sample")
	}
	lo, hi := dataBounds(values, q)
	rangeWidth := hi - lo
	delta := 1 - alpha
	if delta <= 0 {
		delta = 1e-12
	}
	logTerm := math.Log(2 / delta)
	nf := float64(n)

	var meanHalf float64 // half-width for the mean of the sample
	switch ld.Bound {
	case Hoeffding, McDiarmid:
		// P(|x̄−μ| ≥ t) ≤ 2exp(−2nt²/(b−a)²)  ⇒  t = (b−a)√(ln(2/δ)/2n).
		meanHalf = rangeWidth * math.Sqrt(logTerm/(2*nf))
	case Bernstein:
		// |x̄−μ| ≤ √(2σ²ln(2/δ)/n) + (b−a)ln(2/δ)/(3n) w.p. ≥ 1−δ.
		s2 := stats.SampleVariance(values)
		if math.IsNaN(s2) {
			s2 = 0
		}
		meanHalf = math.Sqrt(2*s2*logTerm/nf) + rangeWidth*logTerm/(3*nf)
	case Chernoff:
		// Multiplicative Chernoff for [0,1]-valued data, rescaled to the
		// declared range: δ = √(3·ln(2/δc)/(n·μ̂₀₁)) where μ̂₀₁ is the mean
		// mapped into [0,1]. Requires a nonzero normalized mean.
		mu := stats.Mean(values)
		mu01 := 0.0
		if rangeWidth > 0 {
			mu01 = (mu - lo) / rangeWidth
		}
		if mu01 <= 0 {
			// Degenerate: fall back to the Hoeffding form.
			meanHalf = rangeWidth * math.Sqrt(logTerm/(2*nf))
		} else {
			deltaRel := math.Sqrt(3 * logTerm / (nf * mu01))
			meanHalf = deltaRel * mu01 * rangeWidth
		}
	default:
		return Interval{}, fmt.Errorf("estimator: unknown bound %v", ld.Bound)
	}

	center := q.Eval(values)
	half := meanHalf
	if q.Kind == Sum || q.Kind == Count {
		// θ̂ = scale·n·x̄ ⇒ the bound scales by scale·n.
		half = meanHalf * q.scale(n) * nf
	}
	return Interval{Center: center, HalfWidth: half}, nil
}

func dataBounds(values []float64, q Query) (lo, hi float64) {
	if q.Bounds != nil {
		return q.Bounds[0], q.Bounds[1]
	}
	return stats.Min(values), stats.Max(values)
}
